// TCP over U-Net with injected cell loss: an echo session that makes the
// §7.7-7.8 reliability machinery visible.
//
// A client transfers 256 KB to an echo server over U-Net TCP while the
// switch drops a burst of ATM cells mid-stream. One lost cell discards a
// whole AAL5 segment (Romanow & Floyd's observation), so TCP must recover
// — with its 1 ms timers and fast retransmit the stall is barely visible,
// which is the paper's argument for user-level protocol timing. The
// program prints throughput and the retransmission statistics.
//
// Run with: go run ./examples/tcpecho [-loss 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"unet/internal/atm"
	"unet/internal/ip/tcp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

func main() {
	lossCells := flag.Int("loss", 5, "number of consecutive cells to drop mid-stream")
	flag.Parse()

	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	client := tcp.New(ca, 43210, 7, tcp.DefaultParams())
	server := tcp.New(cb, 7, 43210, tcp.DefaultParams())

	// Drop a burst of cells on the server's downlink mid-transfer.
	cell := 0
	tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
		cell++
		return cell >= 2000 && cell < 2000+*lossCells
	})

	const total = 256 << 10
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i % 251)
	}

	tb.Hosts[1].Spawn("echo-server", func(p *sim.Proc) {
		if err := server.Accept(p, time.Second); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 32<<10)
		echoed := 0
		for echoed < total {
			n, err := server.Read(p, buf, time.Second)
			if err != nil {
				log.Fatalf("server read: %v", err)
			}
			if n == 0 {
				continue
			}
			if err := server.Write(p, buf[:n]); err != nil {
				log.Fatalf("server write: %v", err)
			}
			echoed += n
		}
		for k := 0; k < 50; k++ {
			server.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})

	tb.Hosts[0].Spawn("client", func(p *sim.Proc) {
		if err := client.Dial(p, time.Second); err != nil {
			log.Fatal(err)
		}
		start := p.Now()
		got := make([]byte, 0, total)
		buf := make([]byte, 32<<10)
		sent := 0
		for len(got) < total {
			if sent < total {
				chunk := min(8192, total-sent)
				if err := client.Write(p, payload[sent:sent+chunk]); err != nil {
					log.Fatal(err)
				}
				sent += chunk
			}
			n, err := client.Read(p, buf, 100*time.Millisecond)
			if err != nil {
				log.Fatalf("client read: %v", err)
			}
			got = append(got, buf[:n]...)
		}
		elapsed := p.Now() - start
		for i := range got {
			if got[i] != payload[i] {
				log.Fatalf("echo corrupted at byte %d", i)
			}
		}
		fmt.Printf("echoed %d KB in %v of virtual time — %.2f MB/s each way\n",
			total>>10, elapsed.Round(time.Microsecond),
			float64(total)/elapsed.Seconds()/1e6)
	})

	tb.Eng.Run()
	cs, ss := client.Stats(), server.Stats()
	fmt.Printf("client: %d segments out, %d retransmits (%d fast), %d timeouts\n",
		cs.SegsOut, cs.Retransmits, cs.FastRetransmits, cs.Timeouts)
	fmt.Printf("server: %d segments out, %d retransmits (%d fast), %d timeouts\n",
		ss.SegsOut, ss.Retransmits, ss.FastRetransmits, ss.Timeouts)
	fmt.Printf("(dropped %d cells on the wire — every loss cost a whole AAL5 segment)\n", *lossCells)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
