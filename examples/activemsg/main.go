// Active Messages on an 8-node cluster: a tiny distributed key-value
// service built on U-Net Active Messages (paper §5).
//
// Node 0 acts as a directory server; the other seven nodes issue lookup
// requests (single-cell Active Messages) and bulk-store their results into
// the server's memory with GAM block stores. The example prints the
// request/reply latencies observed and the final protocol statistics —
// note how few explicit acks the reliable layer needed.
//
// Run with: go run ./examples/activemsg
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
)

const (
	hLookup = 1 // request: key -> handler replies with value
	hReply  = 2
	hStored = 3 // bulk-store completion
)

func main() {
	const nodes = 8
	tb := testbed.New(testbed.Config{Hosts: nodes})
	defer tb.Close()

	// One UAM instance per node, fully connected (each pair gets a
	// channel and preallocated 4w buffers, §5.1.1).
	us := make([]*uam.UAM, nodes)
	for i := range us {
		var err error
		us[i], err = uam.New(tb.Hosts[i].NewProcess("kv"), i, uam.Config{MaxPeers: nodes})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if err := uam.Connect(tb.Manager, us[i], us[j]); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The server's handler runs when the message is pulled out of the
	// network; it replies with the "value" (key squared).
	server := us[0]
	server.RegisterHandler(hLookup, func(u *uam.UAM, p *sim.Proc, src int, key uint32, data []byte) {
		var val [4]byte
		binary.BigEndian.PutUint32(val[:], key*key)
		if err := u.Reply(p, hReply, key, val[:]); err != nil {
			log.Fatal(err)
		}
	})
	stored := 0
	server.RegisterHandler(hStored, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		stored++
	})

	serving := true
	tb.Hosts[0].Spawn("server", func(p *sim.Proc) {
		for serving {
			server.PollWait(p, time.Millisecond)
		}
	})

	done := 0
	for i := 1; i < nodes; i++ {
		i := i
		u := us[i]
		u.RegisterHandler(hReply, func(_ *uam.UAM, p *sim.Proc, src int, key uint32, data []byte) {
			// reply handlers may not reply (§5) — just record the value.
			_ = binary.BigEndian.Uint32(data)
		})
		tb.Hosts[i].Spawn("client", func(p *sim.Proc) {
			// Latency-bound phase: 20 request/reply lookups.
			t0 := p.Now()
			for k := 0; k < 20; k++ {
				if err := u.Request(p, 0, hLookup, uint32(i*100+k), nil); err != nil {
					log.Fatal(err)
				}
				u.PollWait(p, time.Millisecond)
			}
			rtt := (p.Now() - t0) / 20
			fmt.Printf("node %d: mean lookup round trip %v\n", i, rtt.Round(100*time.Nanosecond))

			// Bandwidth-bound phase: bulk-store 64 KB of results into the
			// server's memory region at a per-client offset.
			blob := make([]byte, 64<<10)
			for b := range blob {
				blob[b] = byte(i)
			}
			if err := u.Store(p, 0, (i-1)*(64<<10), blob, hStored, uint32(i)); err != nil {
				log.Fatal(err)
			}
			u.Flush(p, 0)
			done++
		})
	}

	// Stop the server once all clients are finished.
	tb.Hosts[0].Spawn("supervisor", func(p *sim.Proc) {
		for done < nodes-1 {
			p.Sleep(time.Millisecond)
		}
		p.Sleep(5 * time.Millisecond) // grace: absorb final acks
		serving = false
	})

	tb.Eng.Run()

	st := server.Stats()
	fmt.Printf("\nserver at %v: %d requests, %d bulk stores completed\n",
		tb.Eng.Now().Round(time.Microsecond), st.ReqRecv, stored)
	fmt.Printf("reliability: %d store segments, %d retransmissions, %d explicit acks sent\n",
		st.StoreSegs, st.Retransmits, st.AcksSent)
	for i := 1; i < 3; i++ {
		seg := server.Mem()[(i-1)*(64<<10) : (i-1)*(64<<10)+4]
		fmt.Printf("server memory from node %d starts with % x\n", i, seg)
	}
}
