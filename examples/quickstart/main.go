// Quickstart: two simulated workstations, one ATM switch, raw U-Net.
//
// The program builds the smallest possible U-Net deployment, walks through
// the §3 architecture by hand — create endpoints, connect a channel,
// provide receive buffers, push a send descriptor, poll the receive queue
// — and prints the virtual-time cost of each step.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

func main() {
	// A 2-host cluster: SPARCstation-20-class nodes, SBA-200 interfaces
	// running the U-Net firmware, one ASX-200 switch.
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()

	// Endpoints are created through the kernel (the only kernel
	// involvement — §3.1): each gets a communication segment and
	// send/receive/free queues.
	alice := tb.Hosts[0].NewProcess("alice")
	bob := tb.Hosts[1].NewProcess("bob")
	epA, err := tb.Hosts[0].Kernel.CreateEndpoint(nil, alice, unet.EndpointConfig{})
	if err != nil {
		log.Fatal(err)
	}
	epB, err := tb.Hosts[1].Kernel.CreateEndpoint(nil, bob, unet.EndpointConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// The network manager allocates the VCI pair, programs the switch and
	// registers the tags with both interfaces (§3.2).
	ch, err := tb.Manager.Connect(nil, epA, epB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel established: VCIs %d/%d\n", ch.AtoB, ch.BtoA)

	// Bob hands receive buffers to his interface through the free queue.
	if _, err := epB.ProvideRecvBuffers(nil, 0, 8); err != nil {
		log.Fatal(err)
	}

	// Bob blocks on his receive queue; Alice sends one small message
	// (single-cell fast path) and one 2 KB message (buffered path).
	tb.Hosts[1].Spawn("bob", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			rd := epB.Recv(p)
			if rd.Inline != nil {
				fmt.Printf("[%8v] bob: %d B inline (single-cell fast path): %q\n",
					p.Now().Round(time.Microsecond), rd.Length, rd.Inline)
				epB.Consume(rd) // return the pooled inline slab to the NI
				continue
			}
			data := make([]byte, rd.Length)
			n := 0
			for _, off := range rd.Buffers {
				chunk := min(rd.Length-n, epB.Config().RecvBufSize)
				epB.ReadBuf(p, off, data[n:n+chunk])
				n += chunk
				epB.PushFree(p, off) // recycle the buffer
			}
			fmt.Printf("[%8v] bob: %d B via %d receive buffer(s), first bytes %q...\n",
				p.Now().Round(time.Microsecond), rd.Length, len(rd.Buffers), data[:12])
			epB.Consume(rd) // return the pooled offset list too
		}
	})

	tb.Hosts[0].Spawn("alice", func(p *sim.Proc) {
		t0 := p.Now()
		// Small message: data travels inside the descriptor (§3.4).
		if err := epA.Send(p, unet.SendDesc{Channel: ch.ChanA, Inline: []byte("hello U-Net")}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] alice: small send queued (%v of CPU)\n",
			p.Now().Round(time.Microsecond), p.Now()-t0)

		// Larger message: composed in the communication segment first.
		stage := testbed.SendBase(epA, 0)
		payload := make([]byte, 2048)
		copy(payload, "two kilobytes of application data")
		if err := epA.Compose(p, stage, payload); err != nil {
			log.Fatal(err)
		}
		if err := epA.Send(p, unet.SendDesc{Channel: ch.ChanA, Offset: stage, Length: len(payload)}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] alice: 2 KB send queued\n", p.Now().Round(time.Microsecond))
	})

	tb.Eng.Run()
	fmt.Printf("simulation quiescent at %v; endpoint B stats: %+v\n",
		tb.Eng.Now().Round(time.Microsecond), epB.Stats())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
