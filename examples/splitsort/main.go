// Split-C sample sort on three machines: the §6 experiment in miniature.
//
// The same distributed sample-sort program (internal/splitc/apps) runs on
// the simulated U-Net ATM cluster, the CM-5 model and the Meiko CS-2
// model, in both its small-message and bulk-transfer variants, and the
// program prints the normalized execution times — the shape of Figure 5:
// the CM-5's cheap small messages win the small-message variant, bulk
// transfers flip the ranking, and the ATM cluster lands near the Meiko.
//
// Run with: go run ./examples/splitsort [-keys 8192] [-procs 8]
package main

import (
	"flag"
	"fmt"
	"time"

	"unet/internal/experiments"
	"unet/internal/splitc/apps"
)

func main() {
	keys := flag.Int("keys", 8192, "keys per processor")
	procs := flag.Int("procs", 8, "processors")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Procs = *procs
	sc.Sort = apps.SortConfig{KeysPerNode: *keys, Oversample: 64, Seed: 1}

	machines := []experiments.MachineKind{
		experiments.MachineCM5,
		experiments.MachineUNetATM,
		experiments.MachineMeiko,
	}
	for _, variant := range []string{"sample sort (small msg)", "sample sort (bulk)"} {
		fmt.Printf("%s — %d keys on %d processors\n", variant, *keys**procs, *procs)
		var base time.Duration
		for _, m := range machines {
			r := experiments.RunSplitCBench(m, variant, sc)
			if m == experiments.MachineCM5 {
				base = r.Time
			}
			fmt.Printf("  %-12s %10v  (%.2f× CM-5)   comm %v / compute %v\n",
				m, r.Time.Round(10*time.Microsecond), float64(r.Time)/float64(base),
				r.Comm.Round(10*time.Microsecond), r.Compute.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
}
