// Multiple services over one U-Net channel: the §7.1 flow demultiplexer.
//
// U-Net endpoints and channels are finite resources, so the paper plans an
// "IP-over-ATM" mode where one dedicated channel carries all IP traffic
// between two hosts and an extra demultiplexing level dispatches packets
// by [flow-id, source] tag — with unresolved tags handed to the kernel.
// This example runs a TCP byte service and a UDP datagram service over a
// single pair of U-Net endpoints, plus one stray flow that lands in the
// kernel fallback.
//
// Run with: go run ./examples/multiservice
package main

import (
	"fmt"
	"log"
	"time"

	"unet/internal/ip"
	"unet/internal/ip/tcp"
	"unet/internal/ip/udp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

func main() {
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()

	// One U-Net channel for everything.
	base0, base1, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	mux0, mux1 := ip.NewFlowMux(base0), ip.NewFlowMux(base1)

	// Flow 1: TCP. Flow 2: UDP. Flow 7: nobody listens — kernel fallback.
	tcp0, _ := mux0.Open(1)
	tcp1, _ := mux1.Open(1)
	udp0, _ := mux0.Open(2)
	udp1, _ := mux1.Open(2)
	stray, _ := mux0.Open(7)
	mux1.SetFallback(func(p *sim.Proc, pkt []byte) {
		fmt.Printf("[%8v] kernel fallback: %d-byte packet on flow %d\n",
			p.Now().Round(time.Microsecond), len(pkt), ip.FlowLabel(pkt))
	})

	tconn0 := tcp.New(tcp0, 9000, 80, tcp.DefaultParams())
	tconn1 := tcp.New(tcp1, 80, 9000, tcp.DefaultParams())
	ustack0 := udp.NewStack(udp0, udp.DefaultParams())
	ustack1 := udp.NewStack(udp1, udp.DefaultParams())
	usock0, _ := ustack0.Bind(100, 0)
	usock1, _ := ustack1.Bind(200, 0)

	// Host 1 serves both protocols from separate processes.
	tb.Hosts[1].Spawn("tcp-server", func(p *sim.Proc) {
		if err := tconn1.Accept(p, time.Second); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 4096)
		echoed := 0
		for echoed < 16<<10 {
			n, err := tconn1.Read(p, buf, time.Second)
			if err != nil {
				log.Fatal(err)
			}
			tconn1.Write(p, buf[:n])
			echoed += n
		}
		for k := 0; k < 50; k++ {
			tconn1.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[1].Spawn("udp-server", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			data, src, ok := usock1.RecvFrom(p, 50*time.Millisecond)
			if !ok {
				return
			}
			fmt.Printf("[%8v] udp service: %q\n", p.Now().Round(time.Microsecond), data)
			usock1.SendTo(p, src, append([]byte("ack: "), data...))
		}
	})

	// Host 0 exercises all three flows.
	tb.Hosts[0].Spawn("tcp-client", func(p *sim.Proc) {
		if err := tconn0.Dial(p, time.Second); err != nil {
			log.Fatal(err)
		}
		payload := make([]byte, 16<<10)
		t0 := p.Now()
		tconn0.Write(p, payload)
		buf := make([]byte, 4096)
		got := 0
		for got < len(payload) {
			n, err := tconn0.Read(p, buf, time.Second)
			if err != nil {
				log.Fatal(err)
			}
			got += n
		}
		fmt.Printf("[%8v] tcp echo of 16 KB done in %v\n",
			p.Now().Round(time.Microsecond), p.Now()-t0)
	})
	tb.Hosts[0].Spawn("udp-client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			usock0.SendTo(p, 200, []byte(fmt.Sprintf("datagram %d", i)))
			if data, _, ok := usock0.RecvFrom(p, 50*time.Millisecond); ok {
				fmt.Printf("[%8v] udp client: %q\n", p.Now().Round(time.Microsecond), data)
			}
		}
	})
	tb.Hosts[0].Spawn("stray", func(p *sim.Proc) {
		pkt := make([]byte, ip.HeaderSize+6)
		ip.Header{Proto: ip.ProtoUDP, Length: len(pkt), Src: stray.LocalAddr(), Dst: stray.RemoteAddr()}.Encode(pkt)
		copy(pkt[ip.HeaderSize:], "stray!")
		stray.Send(p, pkt)
	})

	tb.Eng.Run()
	st := mux1.Stats()
	fmt.Printf("host 1 demux: %d dispatched to flows, %d to the kernel fallback\n",
		st.Dispatched, st.Fallback)
}
