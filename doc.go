// Package unet is a library-scale reproduction of "U-Net: A User-Level
// Network Interface for Parallel and Distributed Computing" (von Eicken,
// Basu, Buch, Vogels — SOSP 1995).
//
// The U-Net architecture itself — endpoints, communication segments,
// send/receive/free queues, message tags, protection, kernel emulation and
// direct access — is implemented in full in internal/unet; the 1995
// hardware it ran on (Fore ATM interfaces, an ASX-200 switch,
// SPARCstations under SunOS) is replaced by calibrated discrete-event
// models, so every latency and bandwidth experiment in the paper can be
// regenerated deterministically on a laptop.
//
// Layout:
//
//	internal/sim        process-oriented discrete-event engine
//	internal/atm        cells, VCIs, AAL5 segmentation + CRC-32
//	internal/fabric     fiber links, ASX-200 switch, cluster topology
//	internal/nic        SBA-200 (U-Net firmware), SBA-100, Fore firmware
//	internal/unet       the U-Net architecture (the paper's contribution)
//	internal/uam        U-Net Active Messages (GAM 1.1 style)
//	internal/splitc     Split-C runtime + the seven §6 benchmarks
//	internal/machine    CM-5 and Meiko CS-2 models (Table 2)
//	internal/ip         IP-over-U-Net, UDP (§7.6), TCP (§7.7-7.8)
//	internal/kernelpath BSD kernel-path baseline (mbufs, sockets, drivers)
//	internal/experiments  per-table / per-figure harnesses
//	cmd/unetbench       regenerate every table and figure
//	cmd/unetsim         ad-hoc measurements
//	examples/           runnable walkthroughs of the public API
//
// See DESIGN.md for the substitution rationale and the experiment index,
// and EXPERIMENTS.md for paper-versus-measured results.
package unet
