# U-Net simulation repo. Tier-1 verification is `make check`; `make bench`
# is the PR performance gate (tier-1 + race + benchmarks + $(BENCH_OUT));
# `make lint` runs the determinism lint suite (DESIGN.md §9); `make ci`
# mirrors the GitHub Actions workflow.

GO ?= go
BENCH_OUT ?= BENCH_PR10.json
FUZZTIME ?= 10s

# Pinned external linter versions (kept in sync with .github/workflows/ci.yml).
STATICCHECK_VERSION = 2025.1.1
GOVULNCHECK_VERSION = v1.1.4

.PHONY: all build check test race raceshards shardcheck alloccheck serve chaos clos gossip lint lint-extra fuzz bench ci clean

all: build

build:
	$(GO) build ./...

check: build test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/...
	$(GO) test -race ./internal/fabric/...
	$(GO) test -race ./internal/nic/...
	GOMAXPROCS=4 $(GO) test -race -run 'Golden' ./internal/experiments/

# raceshards is the dedicated shard-sweep race job: both synchronization
# protocols (neighbor-synchronized windows and the barrier reference — SPSC
# rings, published clocks, quiescence scan, per-pair lookahead, fused
# barriers, parking, fast-forward) under the race detector with real
# parallelism pinned at GOMAXPROCS=4.
raceshards:
	GOMAXPROCS=4 $(GO) test -race -run 'TestShard|TestSPSC' ./internal/sim/ ./internal/fabric/ ./internal/testbed/
	GOMAXPROCS=4 $(GO) test -race -run 'TestGoldenShardSweep|TestGoldenSyncSweep|TestGoldenFaultDeterminism' ./internal/experiments/

shardcheck:
	GOMAXPROCS=4 $(GO) test -run 'TestGoldenShardSweep|TestGoldenSyncSweep' ./internal/experiments/
	$(GO) test -run 'TestSharded' ./internal/testbed/

# alloccheck proves the steady-state data path allocates nothing per
# message (DESIGN.md §10): raw echo (single-cell and buffered) and the UAM
# round trip, measured with testing.AllocsPerRun.
alloccheck:
	$(GO) test -run 'TestSteadyStateAllocs' -v ./internal/experiments/

# serve is the scheduler + serving-workload smoke: the heap/wheel
# differential and shard-identity gates on the open-loop serve experiment,
# the wheel edge-case suite, the scheduler steady-state allocation gate,
# and the saturation-knee calibration (DESIGN.md §12).
serve:
	$(GO) test -run 'TestWheel|TestAfterZero|TestSchedulerDifferentialFiringOrder|TestSchedulerSteadyStateAllocs' ./internal/sim/
	$(GO) test -run 'TestServe' -v ./internal/experiments/

# chaos runs the deterministic fault-injection gates (DESIGN.md §11): the
# seeded loss sweep and chaos soak must render byte-identically at every
# shard count, the reliable layers must deliver 100% under ≤1% cell loss
# with bounded retransmissions, and the seeded-loss protocol goldens must
# recover identically at shards 1/2/4.
chaos:
	GOMAXPROCS=4 $(GO) test -run 'TestGoldenFaultDeterminism|TestLossRecoveryDelivery' -v ./internal/experiments/
	$(GO) test -run 'TestSeededLossNthCellGolden|TestDeadPeerFailsInBoundedTime' ./internal/uam/ ./internal/ip/tcp/

# clos is the multi-switch fabric smoke (DESIGN.md §15): the Clos storm
# goldens must render byte-identically serial vs shards 1/2/4/8 under both
# sync protocols, and the CLI path across a 64-host two-stage Clos must
# finish with zero queue drops and zero undelivered cells.
clos:
	GOMAXPROCS=4 $(GO) test -run 'TestGoldenTopoSweep' -v ./internal/experiments/
	$(GO) run ./cmd/unetbench -experiment clos -topo clos2 -racks 8 -perrack 8 -spine 2 -shards 4 -count 4

# gossip is the 1k-endpoint island-overlay smoke: bounded per-island
# forwarding queues, deterministic failed-neighbor removal under seeded
# uplink flaps, identical renders serial vs sharded.
gossip:
	GOMAXPROCS=4 $(GO) test -run 'TestGossipDeterministic' -v ./internal/experiments/
	$(GO) run ./cmd/unetbench -experiment gossip -islands 256 -shards 4

# lint runs go vet plus unetlint, the repo's own determinism analyzers
# (nondeterminism, rawgo, mapiter, costcharge, seedflow, hotpathalloc,
# barrierstate — see DESIGN.md §9, §13). The analyzers fan out over
# GOMAXPROCS workers by default; `go build` first warms the build cache so
# hotpathalloc's -gcflags=-m extraction replays compiler diagnostics
# instead of recompiling, and -stale fails the build on //unetlint:allow
# directives that no longer suppress anything.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/unetlint -stale ./...

# lint-extra adds the external linters when they are installed (CI installs
# them at the pinned versions above; locally they are optional).
lint-extra: lint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

# fuzz gives each AAL5/wire fuzz target a short deterministic-budget run
# (the seed corpus always runs as part of `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzAAL5RoundTrip' -fuzztime $(FUZZTIME) ./internal/atm/
	$(GO) test -run '^$$' -fuzz 'FuzzCellHeader' -fuzztime $(FUZZTIME) ./internal/atm/

ci: build
	$(MAKE) lint
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) raceshards
	$(MAKE) shardcheck
	$(MAKE) alloccheck
	$(MAKE) serve
	$(MAKE) chaos
	$(MAKE) clos
	$(MAKE) gossip

bench:
	sh scripts/bench.sh $(BENCH_OUT)

clean:
	rm -f BENCH_PR1.json BENCH_PR1.txt BENCH_PR2.json BENCH_PR2.txt BENCH_PR4.json BENCH_PR4.txt BENCH_PR5.json BENCH_PR5.txt BENCH_PR6.json BENCH_PR6.txt BENCH_PR7.json BENCH_PR7.txt BENCH_PR9.json BENCH_PR9.txt BENCH_PR10.json BENCH_PR10.txt
