# U-Net simulation repo. Tier-1 verification is `make check`; `make bench`
# is the PR performance gate (tier-1 + race + benchmarks + $(BENCH_OUT));
# `make ci` mirrors the GitHub Actions workflow.

GO ?= go
BENCH_OUT ?= BENCH_PR2.json

.PHONY: all build check test race shardcheck bench ci clean

all: build

build:
	$(GO) build ./...

check: build test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/...
	$(GO) test -race ./internal/fabric/...
	$(GO) test -race ./internal/nic/...
	GOMAXPROCS=4 $(GO) test -race -run 'Golden' ./internal/experiments/

shardcheck:
	GOMAXPROCS=4 $(GO) test -run 'TestGoldenShardSweep' ./internal/experiments/
	$(GO) test -run 'TestSharded' ./internal/testbed/

ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) shardcheck

bench:
	sh scripts/bench.sh $(BENCH_OUT)

clean:
	rm -f BENCH_PR1.json BENCH_PR1.txt BENCH_PR2.json BENCH_PR2.txt
