# U-Net simulation repo. Tier-1 verification is `make check`; `make bench`
# is the PR performance gate (tier-1 + race + benchmarks + BENCH_PR1.json).

GO ?= go

.PHONY: all build check test race bench clean

all: build

build:
	$(GO) build ./...

check: build test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/...
	GOMAXPROCS=4 $(GO) test -race -run 'Golden' ./internal/experiments/

bench:
	sh scripts/bench.sh BENCH_PR1.json

clean:
	rm -f BENCH_PR1.json BENCH_PR1.txt
