// Command unetlint is the multichecker for the repo's determinism lint
// suite (internal/lint): it type-checks the requested packages — test
// files included — and runs every analyzer that machine-checks the
// simulator's reproducibility invariants (DESIGN.md §9).
//
// Usage:
//
//	unetlint [-only nondeterminism,rawgo] [packages]
//
// Packages default to ./... . The exit status is 1 when any finding is
// reported, so `make lint` (and CI) fail on a new violation; intentional
// exceptions are annotated in source with //unetlint:allow <analyzer>
// <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"unet/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "unetlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unetlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunUnits(units, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "unetlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
