// Command unetlint is the multichecker for the repo's determinism lint
// suite (internal/lint): it type-checks the requested packages — test
// files included — and runs every analyzer that machine-checks the
// simulator's reproducibility invariants (DESIGN.md §9, §13).
//
// Usage:
//
//	unetlint [-only nondeterminism,rawgo] [-stale] [-json] [packages]
//
// Packages default to ./... . The exit status is 1 when any finding is
// reported, so `make lint` (and CI) fail on a new violation; intentional
// exceptions are annotated in source with //unetlint:allow <analyzer>
// <reason>.
//
// -stale additionally reports every //unetlint:allow that no longer
// suppresses anything (only meaningful when the full suite runs — a -only
// subset leaves other analyzers' allows legitimately unused, so -stale
// with -only is rejected). -json renders findings as a JSON array on
// stdout for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"unet/internal/lint"
)

// jsonDiag is the CI artifact schema for one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the analyzers and exit")
	stale := flag.Bool("stale", false, "also report //unetlint:allow directives that suppress nothing (full suite only)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	serial := flag.Bool("serial", false, "run analyzers one at a time instead of in parallel")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All
	if *only != "" {
		if *stale {
			fmt.Fprintln(os.Stderr, "unetlint: -stale needs the full suite; drop -only")
			os.Exit(2)
		}
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "unetlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unetlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunUnitsOpts(units, analyzers, lint.Options{
		Stale:    *stale,
		Parallel: !*serial,
	})
	cwd, _ := os.Getwd()
	relativize := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     relativize(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "unetlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relativize(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "unetlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
