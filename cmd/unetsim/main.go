// Command unetsim runs ad-hoc experiments on the simulated U-Net cluster:
// a single latency/bandwidth measurement for a chosen protocol stack and
// message size, printed as one line. Useful for exploring the parameter
// space beyond the paper's sweeps.
//
// Usage:
//
//	unetsim -proto raw  -size 40         # raw U-Net ping-pong
//	unetsim -proto uam  -size 4096 -bw   # UAM block-store bandwidth
//	unetsim -proto udp  -path kernel-atm # kernel UDP over the Fore ATM
//	unetsim -proto tcp  -bw -window 8192
//	unetsim -proto fore -size 32         # the stock-firmware baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"unet/internal/experiments"
	"unet/internal/nic"
	"unet/internal/stats"
	"unet/internal/uam"
)

func main() {
	var (
		proto  = flag.String("proto", "raw", "raw | fore | sba100 | uam | udp | tcp")
		path   = flag.String("path", "unet", "udp/tcp path: unet | kernel-atm | kernel-eth")
		size   = flag.Int("size", 32, "message size in bytes")
		bw     = flag.Bool("bw", false, "measure streaming bandwidth instead of round-trip latency")
		rounds = flag.Int("rounds", 50, "ping-pong rounds")
		count  = flag.Int("count", 300, "messages per bandwidth run")
		window = flag.Int("window", 8192, "TCP window in bytes")
	)
	flag.Parse()

	kind := experiments.PathUNet
	switch *path {
	case "unet":
	case "kernel-atm":
		kind = experiments.PathKernelATM
	case "kernel-eth":
		kind = experiments.PathKernelEth
	default:
		fmt.Fprintf(os.Stderr, "unetsim: unknown path %q\n", *path)
		os.Exit(2)
	}

	switch *proto {
	case "raw", "fore", "sba100":
		params := nic.SBA200Params()
		if *proto == "fore" {
			params = nic.ForeParams()
		} else if *proto == "sba100" {
			params = nic.SBA100Params()
		}
		if *bw {
			res := experiments.RawBandwidth(params, *size, *count)
			fmt.Printf("%s bandwidth @%dB: %.2f MB/s (%d delivered, %d dropped)\n",
				*proto, *size, res.MBps(), res.Delivered, res.Dropped)
		} else {
			rtt := experiments.RawRTT(params, *size, *rounds)
			fmt.Printf("%s RTT @%dB: %.1f µs\n", *proto, *size, stats.US(rtt))
		}
	case "uam":
		if *bw {
			fmt.Printf("uam store bandwidth @%dB: %.2f MB/s\n", *size,
				experiments.UAMStoreBandwidth(uam.Config{}, *size, *count))
		} else {
			fmt.Printf("uam RTT @%dB: %.1f µs\n", *size,
				stats.US(experiments.UAMPingPong(uam.Config{}, *size, *rounds)))
		}
	case "udp":
		if *bw {
			sent, recv := experiments.UDPBandwidth(kind, *size, *count)
			fmt.Printf("udp/%s bandwidth @%dB: sent %.2f MB/s, received %.2f MB/s\n",
				kind, *size, sent, recv)
		} else {
			fmt.Printf("udp/%s RTT @%dB: %.1f µs\n", kind, *size,
				stats.US(experiments.UDPRTT(kind, *size, *rounds)))
		}
	case "tcp":
		if *bw {
			fmt.Printf("tcp/%s bandwidth (window %d, %dB writes): %.2f MB/s\n",
				kind, *window, *size, experiments.TCPBandwidth(kind, *window, *size, 2<<20))
		} else {
			fmt.Printf("tcp/%s RTT @%dB: %.1f µs\n", kind, *size,
				stats.US(experiments.TCPRTT(kind, *size, *rounds)))
		}
	default:
		fmt.Fprintf(os.Stderr, "unetsim: unknown proto %q\n", *proto)
		os.Exit(2)
	}
}
