// Command unetbench regenerates every table and figure from the paper's
// evaluation (Tables 1-3, Figures 3-9) as text tables.
//
// Usage:
//
//	unetbench                      # run everything at quick scale
//	unetbench -experiment fig4     # one experiment
//	unetbench -experiment table3,fig8
//	unetbench -paper               # paper-scale Split-C problem sizes
//	unetbench -rounds 100          # more ping-pong rounds per point
//	unetbench -shards -1           # shard each simulation across all cores
//	unetbench -experiment figloss  # goodput/RTT-vs-loss sweep
//	unetbench -experiment chaos -loss 0.01 -faultseed 7
//	unetbench -experiment storm -shards 4 -simprof   # window profiler dump
//	unetbench -experiment storm -shards 4 -simprof -sync barrier
//	                                   # same storm under the PR 6 barrier
//	                                   # protocol: compare the sync-wait share
//	                                   # and per-edge wait ranking against the
//	                                   # default neighbor protocol
//	unetbench -experiment serve                      # open-loop serving sweep
//	unetbench -experiment serve -serveclients 64 -servelogical 16384 -servebursty
//	unetbench -experiment clos -topo clos2 -racks 8 -perrack 8 -spine 2 -count 4
//	                                   # all-to-all storm over a 64-host
//	                                   # 2-stage Clos (multi-hop VCI routes)
//	unetbench -experiment clos -topo clos3 -racks 4 -perrack 2 -spine 2 -count 4
//	unetbench -experiment gossip -islands 1024 -shards 8
//	                                   # 1k-island gossip overlay with flapping
//	                                   # uplinks and failure detection
//
// Experiments: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// figloss chaos ablations storm serve clos gossip
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"unet/internal/experiments"
	"unet/internal/sim"
)

func main() {
	var (
		expFlag  = flag.String("experiment", "all", "comma-separated experiment ids (table1..3, fig3..9, all)")
		paper    = flag.Bool("paper", false, "use the paper's full Split-C problem sizes (slower)")
		rounds   = flag.Int("rounds", 40, "ping-pong rounds per latency point")
		count    = flag.Int("count", 200, "messages per bandwidth point")
		parallel = flag.Int("parallel", 0, "sweep-point workers (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		shards   = flag.Int("shards", 0, "shard engines per simulation (0 = serial, <0 = GOMAXPROCS; output is identical either way)")
		syncMode = flag.String("sync", "neighbor", "sharded synchronization protocol: neighbor or barrier (output is identical either way)")
		hosts    = flag.Int("hosts", 8, "storm: cluster size")
		simprof  = flag.Bool("simprof", false, "storm: dump the per-shard window-protocol profile (wall-clock diagnostics)")

		topoKind = flag.String("topo", "clos2", "clos: topology shape (clos2, clos3, ring, island)")
		racks    = flag.Int("racks", 8, "clos: top-of-rack switches (pods×2 for clos3; islands for ring/island)")
		perRack  = flag.Int("perrack", 8, "clos: hosts per rack")
		spine    = flag.Int("spine", 2, "clos: spine (clos2) or core (clos3) switches")
		islands  = flag.Int("islands", 1024, "gossip: island switches (one host each)")

		serveClients  = flag.Int("serveclients", 0, "serve: load-generating hosts (0 = default 6)")
		serveServers  = flag.Int("serveservers", 0, "serve: serving hosts (0 = default 2)")
		serveLogical  = flag.Int("servelogical", 0, "serve: logical clients multiplexed per client host (0 = default 4096)")
		serveDuration = flag.Duration("serveduration", 0, "serve: arrival window of virtual time (0 = default 20ms)")
		serveLoads    = flag.String("serveloads", "20000,40000,60000,80000,100000,140000", "serve: comma-separated offered loads (req/s)")
		serveBursty   = flag.Bool("servebursty", false, "serve: batched (bursty) arrivals instead of Poisson")

		faultSeed = flag.Int64("faultseed", experiments.FaultSeed, "seed for the deterministic fault injectors (figloss, chaos)")
		loss      = flag.Float64("loss", -1, "chaos: override the i.i.d. cell-loss rate (per-cell probability)")
		burst     = flag.Float64("burst", -1, "chaos: override the Gilbert-Elliott good→bad rate (0 disables burst loss)")
		flap      = flag.Duration("flap", -1, "chaos: override the link flap period (down for period/10; 0 disables flaps)")
	)
	flag.Parse()
	experiments.MaxParallel = *parallel
	experiments.Shards = *shards
	syncKind, ok := sim.ParseSyncKind(*syncMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "unetbench: unknown -sync %q (have neighbor, barrier)\n", *syncMode)
		os.Exit(2)
	}
	experiments.Sync = syncKind

	sc := experiments.QuickScale()
	if *paper {
		sc = experiments.PaperScale()
	}

	run := map[string]func(){
		"table1":    func() { fmt.Println(experiments.Table1()) },
		"table2":    func() { fmt.Println(experiments.Table2(*rounds)) },
		"table3":    func() { fmt.Println(experiments.Table3(*rounds, *count)) },
		"fig3":      func() { fmt.Println(experiments.Fig3(*rounds)) },
		"fig4":      func() { fmt.Println(experiments.Fig4(*count)) },
		"fig5":      func() { fmt.Println(experiments.Fig5(sc)) },
		"fig6":      func() { fmt.Println(experiments.Fig6(*rounds / 2)) },
		"fig7":      func() { fmt.Println(experiments.Fig7(*count)) },
		"fig8":      func() { fmt.Println(experiments.Fig8(1 << 20)) },
		"fig9":      func() { fmt.Println(experiments.Fig9(*rounds / 2)) },
		"ablations": func() { fmt.Println(experiments.AblationTable(*rounds / 2)) },
		"figloss":   func() { fmt.Println(experiments.TableLoss(*faultSeed, *rounds/2, *count/4)) },
		"chaos": func() {
			cfg := experiments.DefaultChaos(*faultSeed)
			if *loss >= 0 {
				cfg.Plan.LossRate = *loss
			}
			if *burst >= 0 {
				cfg.Plan.BurstPGB = *burst
			}
			if *flap >= 0 {
				cfg.Plan.FlapPeriod = *flap
				cfg.Plan.FlapDown = *flap / 10
			}
			fmt.Println(experiments.Chaos(cfg))
		},
		"storm": func() {
			n := *shards
			if n < 0 {
				n = runtime.GOMAXPROCS(0)
			}
			t0 := time.Now()
			report, prof := experiments.Storm(*hosts, n, *count)
			wall := time.Since(t0)
			fmt.Print(report)
			if *simprof {
				if len(prof.Shards) == 0 {
					fmt.Println("simprof: serial run — no shard group; rerun with -shards ≥ 2")
					return
				}
				fmt.Printf("simprof (sync=%v GOMAXPROCS=%d NumCPU=%d, wall %v):\n%s",
					syncKind, runtime.GOMAXPROCS(0), runtime.NumCPU(), wall.Round(time.Microsecond), prof)
				// Sync-wait share: fraction of the shards' aggregate
				// wall-clock budget spent synchronizing (barrier crossings or
				// neighbor stalls) rather than simulating.
				total := prof.Total()
				share := 100 * float64(total.BarrierWait) / (float64(wall) * float64(len(prof.Shards)))
				fmt.Printf("sync-wait share: %.1f%% of %d shards × %v wall (sync=%v)\n",
					share, len(prof.Shards), wall.Round(time.Microsecond), syncKind)
			}
		},
		"clos": func() {
			n := *shards
			if n < 0 {
				n = runtime.GOMAXPROCS(0)
			}
			// The storm is all-to-all: scale the per-host count down from the
			// pair-experiment default so the quick run stays quick.
			msgs := *count
			if msgs > 8 {
				msgs = 8
			}
			t0 := time.Now()
			report, prof := experiments.TopoStorm(*topoKind, *racks, *perRack, *spine, n, msgs)
			wall := time.Since(t0)
			fmt.Print(report)
			if *simprof && len(prof.Shards) > 0 {
				fmt.Printf("simprof (sync=%v, wall %v):\n%s", syncKind, wall.Round(time.Microsecond), prof)
			}
		},
		"gossip": func() {
			n := *shards
			if n < 0 {
				n = runtime.GOMAXPROCS(0)
			}
			cfg := experiments.DefaultGossip(*islands)
			cfg.Shards = n
			cfg.Sync = syncKind
			t0 := time.Now()
			res := experiments.Gossip(cfg)
			wall := time.Since(t0)
			fmt.Print(res.Render())
			fmt.Printf("  [diag] events=%d wall=%v events/sec=%.0f\n",
				res.Delivered, wall.Round(time.Microsecond), float64(res.Delivered)/wall.Seconds())
		},
		"serve": func() {
			loads := make([]float64, 0, 8)
			for _, s := range strings.Split(*serveLoads, ",") {
				var v float64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &v); err != nil || v <= 0 {
					fmt.Fprintf(os.Stderr, "unetbench: bad -serveloads entry %q\n", s)
					os.Exit(2)
				}
				loads = append(loads, v)
			}
			n := *shards
			if n < 0 {
				n = runtime.GOMAXPROCS(0)
			}
			base := experiments.ServeConfig{
				ClientHosts:    *serveClients,
				Servers:        *serveServers,
				LogicalPerHost: *serveLogical,
				Duration:       *serveDuration,
				Bursty:         *serveBursty,
				Shards:         n,
				Sync:           syncKind,
			}
			report, results := experiments.ServeSweep(base, loads)
			fmt.Print(report)
			// Wall-clock diagnostics (not part of the deterministic report).
			for _, r := range results {
				fmt.Printf("  [diag] load=%.0f/s events=%d wall=%v events/sec=%.0f\n",
					r.Cfg.Rate, r.Steps, r.Wall.Round(time.Microsecond),
					float64(r.Steps)/r.Wall.Seconds())
			}
		},
	}
	order := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablations", "figloss", "chaos", "storm", "serve", "clos", "gossip"}

	ids := order
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		fn, ok := run[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unetbench: unknown experiment %q (have %s)\n", id, strings.Join(order, " "))
			os.Exit(2)
		}
		t0 := time.Now()
		fn()
		fmt.Printf("(%s regenerated in %v wall time)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}
