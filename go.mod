module unet

go 1.22
