package unet_test

// One benchmark per paper table and figure, plus ablations for the design
// choices DESIGN.md calls out. Each benchmark regenerates the experiment's
// key data point(s) per iteration and reports the paper-relevant metric
// via b.ReportMetric, so `go test -bench=. -benchmem` reproduces the
// evaluation end to end. Wall time per iteration is simulation time, not
// network time — the virtual clock makes the runs deterministic.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"unet/internal/experiments"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/stats"
	"unet/internal/testbed"
	"unet/internal/topo"
	"unet/internal/uam"
	"unet/internal/unet"
)

const benchRounds = 30

func us(d time.Duration) float64 { return stats.US(d) }

// --- Tables ---

// BenchmarkTable1_SBA100 regenerates the SBA-100 cost breakup: 66 µs
// single-cell round trip and 6.8 MB/s at 1 KB (paper Table 1).
func BenchmarkTable1_SBA100(b *testing.B) {
	var rtt, bw float64
	for i := 0; i < b.N; i++ {
		rtt = us(experiments.RawRTT(nic.SBA100Params(), 32, benchRounds))
		bw = experiments.RawBandwidth(nic.SBA100Params(), 1024, 150).MBps()
	}
	b.ReportMetric(rtt, "µs/rtt")
	b.ReportMetric(bw, "MB/s@1KB")
}

// BenchmarkTable2_Machines measures the three machines' small-message
// round trips (paper Table 2: 12 / 25 / 71 µs).
func BenchmarkTable2_Machines(b *testing.B) {
	var cm5, meiko, atm float64
	for i := 0; i < b.N; i++ {
		cm5 = us(experiments.SplitCRPCRTT(experiments.MachineCM5, benchRounds))
		meiko = us(experiments.SplitCRPCRTT(experiments.MachineMeiko, benchRounds))
		atm = us(experiments.SplitCRPCRTT(experiments.MachineUNetATM, benchRounds))
	}
	b.ReportMetric(cm5, "µs/cm5")
	b.ReportMetric(meiko, "µs/meiko")
	b.ReportMetric(atm, "µs/atm")
}

// BenchmarkTable3_Summary regenerates the protocol summary (paper Table 3:
// Raw 65 µs, UAM 71, UDP 138, TCP 157 with ~115-120 Mbit/s at 4 KB).
func BenchmarkTable3_Summary(b *testing.B) {
	var raw, am, udpRTT, tcpRTT float64
	for i := 0; i < b.N; i++ {
		raw = us(experiments.RawRTT(nic.SBA200Params(), 32, benchRounds))
		am = us(experiments.UAMPingPong(uam.Config{}, 16, benchRounds))
		udpRTT = us(experiments.UDPRTT(experiments.PathUNet, 4, benchRounds))
		tcpRTT = us(experiments.TCPRTT(experiments.PathUNet, 4, benchRounds))
	}
	b.ReportMetric(raw, "µs/raw")
	b.ReportMetric(am, "µs/uam")
	b.ReportMetric(udpRTT, "µs/udp")
	b.ReportMetric(tcpRTT, "µs/tcp")
}

// --- Figures ---

// BenchmarkFig3_RTT sweeps the round-trip latency curve (paper Figure 3).
func BenchmarkFig3_RTT(b *testing.B) {
	var single, multi float64
	for i := 0; i < b.N; i++ {
		single = us(experiments.RawRTT(nic.SBA200Params(), 40, benchRounds))
		multi = us(experiments.RawRTT(nic.SBA200Params(), 48, benchRounds))
	}
	b.ReportMetric(single, "µs/40B")
	b.ReportMetric(multi, "µs/48B")
}

// BenchmarkFig4_Bandwidth regenerates the full bandwidth sweep — all 18
// message sizes across the AAL-5 limit, raw U-Net, UAM store and UAM get
// series (paper Figure 4: saturation from ~800 B, UAM 14.8 MB/s at 4 KB
// with the 4164-byte dip). This is the repo's end-to-end wall-clock
// benchmark: it exercises the pooled event engine, cell-train batching and
// the parallel sweep pool together.
func BenchmarkFig4_Bandwidth(b *testing.B) {
	var raw800, store4k, store4164 float64
	for i := 0; i < b.N; i++ {
		f := experiments.Fig4(120)
		for _, s := range f.Series {
			switch s.Name {
			case "Raw U-Net":
				raw800, _ = s.At(800)
			case "UAM store":
				store4k, _ = s.At(4096)
				store4164, _ = s.At(4164)
			}
		}
	}
	b.ReportMetric(raw800, "MB/s@800B")
	b.ReportMetric(store4k, "MB/s@4K")
	b.ReportMetric(store4164, "MB/s@4164B")
}

// BenchmarkFig5_SplitC runs the seven Split-C benchmarks on the three
// machines (paper Figure 5). Quick problem sizes; use cmd/unetbench
// -paper for the full 4M-key runs.
func BenchmarkFig5_SplitC(b *testing.B) {
	sc := experiments.QuickScale()
	sc.Procs = 4
	var atmNorm float64
	for i := 0; i < b.N; i++ {
		cm5 := experiments.RunSplitCBench(experiments.MachineCM5, "sample sort (bulk)", sc)
		atm := experiments.RunSplitCBench(experiments.MachineUNetATM, "sample sort (bulk)", sc)
		atmNorm = float64(atm.Time) / float64(cm5.Time)
	}
	b.ReportMetric(atmNorm, "atm/cm5")
}

// BenchmarkFig6_KernelLatency measures the kernel ATM-vs-Ethernet
// round-trip comparison (paper Figure 6).
func BenchmarkFig6_KernelLatency(b *testing.B) {
	var atm, eth float64
	for i := 0; i < b.N; i++ {
		atm = us(experiments.UDPRTT(experiments.PathKernelATM, 8, 10))
		eth = us(experiments.UDPRTT(experiments.PathKernelEth, 8, 10))
	}
	b.ReportMetric(atm, "µs/atm")
	b.ReportMetric(eth, "µs/eth")
}

// BenchmarkFig7_UDPBandwidth measures U-Net vs kernel UDP streaming
// (paper Figure 7).
func BenchmarkFig7_UDPBandwidth(b *testing.B) {
	var un, kSent, kRecv float64
	for i := 0; i < b.N; i++ {
		_, un = experiments.UDPBandwidth(experiments.PathUNet, 4096, 150)
		kSent, kRecv = experiments.UDPBandwidth(experiments.PathKernelATM, 4096, 150)
	}
	b.ReportMetric(un, "MB/s-unet")
	b.ReportMetric(kSent, "MB/s-ksend")
	b.ReportMetric(kRecv, "MB/s-krecv")
}

// BenchmarkFig8_TCPBandwidth measures TCP bandwidth vs window (paper
// Figure 8: U-Net 14-15 MB/s with 8 KB; kernel ≤ 9-10 with 64 KB).
func BenchmarkFig8_TCPBandwidth(b *testing.B) {
	var un, kern float64
	for i := 0; i < b.N; i++ {
		un = experiments.TCPBandwidth(experiments.PathUNet, 8<<10, 8192, 1<<20)
		kern = experiments.TCPBandwidth(experiments.PathKernelATM, 64<<10, 8192, 8<<20)
	}
	b.ReportMetric(un, "MB/s-unet8K")
	b.ReportMetric(kern, "MB/s-kern64K")
}

// BenchmarkFig9_IPLatency measures U-Net vs kernel UDP/TCP round trips
// (paper Figure 9).
func BenchmarkFig9_IPLatency(b *testing.B) {
	var uu, ut, ku, kt float64
	for i := 0; i < b.N; i++ {
		uu = us(experiments.UDPRTT(experiments.PathUNet, 4, benchRounds))
		ut = us(experiments.TCPRTT(experiments.PathUNet, 4, benchRounds))
		ku = us(experiments.UDPRTT(experiments.PathKernelATM, 4, 10))
		kt = us(experiments.TCPRTT(experiments.PathKernelATM, 4, 10))
	}
	b.ReportMetric(uu, "µs/unet-udp")
	b.ReportMetric(ut, "µs/unet-tcp")
	b.ReportMetric(ku, "µs/kern-udp")
	b.ReportMetric(kt, "µs/kern-tcp")
}

// BenchmarkFigLoss_Recovery runs the goodput-under-loss points the fault
// subsystem pins (DESIGN.md §11): reliable delivery at 1% cell loss for
// UAM and TCP, and the raw AAL5 survival rate, all from the seeded
// impairment streams.
func BenchmarkFigLoss_Recovery(b *testing.B) {
	var uamBW, tcpBW, rawDel float64
	var uamRetx, tcpRetx uint64
	for i := 0; i < b.N; i++ {
		_, uamBW, uamRetx = experiments.UAMGoodputUnderLoss(experiments.FaultSeed, 0.01, 60, 1024)
		_, tcpBW, tcpRetx = experiments.TCPGoodputUnderLoss(experiments.FaultSeed, 0.01, 60<<10, 2048)
		rawDel, _ = experiments.RawGoodputUnderLoss(experiments.FaultSeed, 0.01, 100, 1024)
	}
	b.ReportMetric(uamBW, "MB/s-uam@1%")
	b.ReportMetric(float64(uamRetx), "retx-uam")
	b.ReportMetric(tcpBW, "MB/s-tcp@1%")
	b.ReportMetric(float64(tcpRetx), "retx-tcp")
	b.ReportMetric(rawDel*100, "%-raw-delivered")
}

// --- Ablations (design choices from DESIGN.md §5) ---

// BenchmarkAblation_SingleCellFastPath disables the inline-descriptor
// optimization (§4.2.2) and shows small-message RTT degrade to the
// multi-cell path.
func BenchmarkAblation_SingleCellFastPath(b *testing.B) {
	var with, without float64
	off := nic.SBA200Params()
	off.SingleCellMax = 0
	for i := 0; i < b.N; i++ {
		with = us(experiments.RawRTT(nic.SBA200Params(), 32, benchRounds))
		without = us(experiments.RawRTT(off, 32, benchRounds))
	}
	b.ReportMetric(with, "µs/fastpath")
	b.ReportMetric(without, "µs/no-fastpath")
}

// BenchmarkAblation_UpcallVsPolling compares polling pickup against
// UNIX-signal upcalls (§4.2.3: +30 µs per end).
func BenchmarkAblation_UpcallVsPolling(b *testing.B) {
	var poll, signal float64
	for i := 0; i < b.N; i++ {
		poll, signal = measureUpcallDelta()
	}
	b.ReportMetric(poll, "µs/poll-delivery")
	b.ReportMetric(signal, "µs/signal-delivery")
}

// measureUpcallDelta delivers one message under each reception mode and
// returns the two one-way delivery times in µs.
func measureUpcallDelta() (pollUS, signalUS float64) {
	measure := func(signal bool) float64 {
		tb := testbed.New(testbed.Config{Hosts: 2})
		defer tb.Close()
		pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 4)
		if err != nil {
			panic(err)
		}
		var at time.Duration
		pr.EpB.SetUpcall(unet.UpcallNonEmpty, signal, func() { at = tb.Eng.Now() })
		tb.Hosts[0].Spawn("tx", func(p *sim.Proc) {
			pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{1}})
		})
		tb.Eng.Run()
		return us(at)
	}
	return measure(false), measure(true)
}

// BenchmarkAblation_UDPChecksum measures the §7.6 checksum elision.
func BenchmarkAblation_UDPChecksum(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = us(experiments.UDPRTT(experiments.PathUNet, 1024, benchRounds))
		without = us(experiments.UNetUDPNoChecksumRTT(1024, benchRounds))
	}
	b.ReportMetric(with, "µs/checksum")
	b.ReportMetric(without, "µs/no-checksum")
}

// BenchmarkAblation_UAMWindow sweeps the UAM flow-control window (§5.1.1).
func BenchmarkAblation_UAMWindow(b *testing.B) {
	var w1, w8 float64
	for i := 0; i < b.N; i++ {
		w1 = experiments.UAMStoreBandwidth(uam.Config{Window: 1}, 4096, 100)
		w8 = experiments.UAMStoreBandwidth(uam.Config{Window: 8}, 4096, 100)
	}
	b.ReportMetric(w1, "MB/s-w1")
	b.ReportMetric(w8, "MB/s-w8")
}

// BenchmarkAblation_TCPSegment compares the standard 2048-byte segments
// (§7.8) against small 512-byte segments over U-Net.
func BenchmarkAblation_TCPSegment(b *testing.B) {
	var mss2048, mss512 float64
	for i := 0; i < b.N; i++ {
		mss2048 = experiments.TCPBandwidth(experiments.PathUNet, 8<<10, 8192, 1<<20)
		mss512 = experiments.TCPBandwidthMSS(experiments.PathUNet, 8<<10, 512, 8192, 1<<20)
	}
	b.ReportMetric(mss2048, "MB/s-mss2048")
	b.ReportMetric(mss512, "MB/s-mss512")
}

// BenchmarkAblation_TCPDelayedAck compares a short one-way U-Net TCP
// transfer with delayed acks disabled (the paper's choice, §7.8) and
// enabled: the delayed variant stalls on the 200 ms ack timer during slow
// start.
func BenchmarkAblation_TCPDelayedAck(b *testing.B) {
	var eager, delayed float64
	for i := 0; i < b.N; i++ {
		eager = us(experiments.TCPShortTransferTime(false))
		delayed = us(experiments.TCPShortTransferTime(true))
	}
	b.ReportMetric(eager, "µs/64K-eager")
	b.ReportMetric(delayed, "µs/64K-delayed")
}

// BenchmarkAblation_EmulatedEndpoints compares a kernel-emulated endpoint
// (§3.5) against a real one.
func BenchmarkAblation_EmulatedEndpoints(b *testing.B) {
	var real, emu float64
	for i := 0; i < b.N; i++ {
		real = us(experiments.RawRTT(nic.SBA200Params(), 32, benchRounds))
		emu = us(experiments.EmulatedEndpointRTT(32, benchRounds))
	}
	b.ReportMetric(real, "µs/real-endpoint")
	b.ReportMetric(emu, "µs/emulated")
}

// --- Sharded execution ---

// benchStorm runs the 8-host all-to-all cell storm once at the given shard
// count and sync protocol, and returns the total messages received (a fixed
// number — the storm is deterministic — so any divergence shows up as a
// changed metric) plus the run's window-protocol profile (zero for a serial
// run).
func benchStorm(shards, count int, kind sim.SyncKind) (int, sim.GroupProfile) {
	tb := testbed.New(testbed.Config{Hosts: 8, Shards: shards, Sync: kind})
	defer tb.Close()
	mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	if err != nil {
		panic(err)
	}
	res, _ := mesh.Storm(count, 1024)
	total := 0
	for _, r := range res {
		total += r.Received
	}
	var prof sim.GroupProfile
	if g := tb.Eng.Group(); g != nil {
		prof = g.Profile()
	}
	return total, prof
}

// benchmarkClusterSharded measures the wall-clock cost of the same 8-host
// storm at a given shard count: the workload, the virtual timeline and the
// results are identical at every count (the testbed shard tests assert so);
// only the number of cores simulating them changes. A sharded configuration
// on fewer cores than shards measures window-protocol overhead rather than
// parallel speedup, so those shapes are skipped unless UNET_BENCH_OVERSUB=1
// explicitly asks for the oversubscribed measurement (scripts/bench.sh sets
// it so BENCH_*.json always carries the entries — alongside the recorded
// core counts that make an oversubscribed artifact impossible to misread).
// The reported metrics attribute wall-clock to work vs. synchronization:
// sync-wait share of the shards' aggregate time, windows run, and
// single-barrier (fused) rounds. Sharded shapes run as sub-benchmarks under
// both synchronization protocols (sync=neighbor, sync=barrier) so the
// artifact records the protocols side by side.
func benchmarkClusterSharded(b *testing.B, shards int) {
	if shards > runtime.NumCPU() && os.Getenv("UNET_BENCH_OVERSUB") == "" {
		b.Skipf("%d shards on %d CPUs would measure window overhead, not speedup; set UNET_BENCH_OVERSUB=1 to force", shards, runtime.NumCPU())
	}
	if shards <= 1 {
		clusterStorm(b, shards, sim.SyncNeighbor) // serial: sync is ignored
		return
	}
	for _, kind := range []sim.SyncKind{sim.SyncNeighbor, sim.SyncBarrier} {
		kind := kind
		b.Run("sync="+kind.String(), func(b *testing.B) { clusterStorm(b, shards, kind) })
	}
}

func clusterStorm(b *testing.B, shards int, kind sim.SyncKind) {
	b.ReportAllocs()
	var total int
	var prof sim.GroupProfile
	start := time.Now()
	for i := 0; i < b.N; i++ {
		total, prof = benchStorm(shards, 200, kind)
	}
	wall := time.Since(start)
	b.ReportMetric(float64(total), "msgs")
	b.ReportMetric(float64(shards), "shards")
	if n := len(prof.Shards); n > 0 {
		// The profile accumulates over one storm (the testbed is rebuilt per
		// iteration), while wall covers all b.N iterations.
		t := prof.Total()
		share := 100 * float64(t.BarrierWait) * float64(b.N) / (float64(wall) * float64(n))
		b.ReportMetric(share, "%sync-wait")
		b.ReportMetric(float64(t.Windows)/float64(n), "windows")
		b.ReportMetric(float64(t.FusedBarriers)/float64(n), "fused")
	}
}

func BenchmarkCluster_Sharded1(b *testing.B) { benchmarkClusterSharded(b, 0) }
func BenchmarkCluster_Sharded2(b *testing.B) { benchmarkClusterSharded(b, 2) }
func BenchmarkCluster_Sharded4(b *testing.B) { benchmarkClusterSharded(b, 4) }
func BenchmarkCluster_Sharded8(b *testing.B) { benchmarkClusterSharded(b, 8) }

// BenchmarkAblation_DirectAccess compares base-level buffered delivery
// against direct-access deposits (§3.6).
func BenchmarkAblation_DirectAccess(b *testing.B) {
	var base, direct float64
	for i := 0; i < b.N; i++ {
		base, direct = experiments.DirectAccessRTT(2048, benchRounds)
	}
	b.ReportMetric(base, "µs/base-level")
	b.ReportMetric(direct, "µs/direct-access")
}

// benchmarkServe measures the wall-clock cost of the open-loop serving
// workload (internal/experiments Serve): seeded Poisson arrivals from a
// large multiplexed logical-client population against a server pool,
// near the saturation knee. The virtual-time results are identical at
// every shard count; only wall-clock and events/sec change. Shard counts
// above the core count are skipped unless UNET_BENCH_OVERSUB=1, as for
// the cluster benchmarks above; sharded shapes run under both sync
// protocols.
func benchmarkServe(b *testing.B, shards int) {
	if shards > runtime.NumCPU() && os.Getenv("UNET_BENCH_OVERSUB") == "" {
		b.Skipf("%d shards on %d CPUs would measure window overhead, not speedup; set UNET_BENCH_OVERSUB=1 to force", shards, runtime.NumCPU())
	}
	if shards <= 1 {
		serveBench(b, shards, sim.SyncNeighbor) // serial: sync is ignored
		return
	}
	for _, kind := range []sim.SyncKind{sim.SyncNeighbor, sim.SyncBarrier} {
		kind := kind
		b.Run("sync="+kind.String(), func(b *testing.B) { serveBench(b, shards, kind) })
	}
}

func serveBench(b *testing.B, shards int, kind sim.SyncKind) {
	b.ReportAllocs()
	var r experiments.ServeResult
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r = experiments.Serve(experiments.ServeConfig{Rate: 80_000, Shards: shards, Sync: kind})
	}
	wall := time.Since(start)
	b.ReportMetric(float64(r.Sent), "reqs")
	b.ReportMetric(float64(r.Latency.Quantile(0.99))/1e3, "µs-p99")
	b.ReportMetric(float64(r.Steps)*float64(b.N)/wall.Seconds(), "events/sec")
	b.ReportMetric(float64(shards), "shards")
}

func BenchmarkServe_OpenLoop(b *testing.B)         { benchmarkServe(b, 0) }
func BenchmarkServe_OpenLoopSharded4(b *testing.B) { benchmarkServe(b, 4) }

// --- Multi-switch topologies (internal/topo) ---

// benchClosStorm runs the all-to-all storm over a 64-host 2-stage Clos
// (8 racks × 8 hosts, 2 spines) once, with topology-aware shard
// placement, and returns total messages received.
func benchClosStorm(shards, count int, kind sim.SyncKind) (int, sim.GroupProfile) {
	tb := testbed.New(testbed.Config{Topology: topo.Clos2(8, 8, 2), Shards: shards, Sync: kind})
	defer tb.Close()
	mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	if err != nil {
		panic(err)
	}
	res, _ := mesh.Storm(count, 1024)
	total := 0
	for _, r := range res {
		total += r.Received
	}
	var prof sim.GroupProfile
	if g := tb.Eng.Group(); g != nil {
		prof = g.Profile()
	}
	return total, prof
}

func closStorm(b *testing.B, shards int, kind sim.SyncKind) {
	b.ReportAllocs()
	var total int
	var prof sim.GroupProfile
	start := time.Now()
	for i := 0; i < b.N; i++ {
		total, prof = benchClosStorm(shards, 4, kind)
	}
	wall := time.Since(start)
	b.ReportMetric(float64(total), "msgs")
	b.ReportMetric(float64(shards), "shards")
	if n := len(prof.Shards); n > 0 {
		t := prof.Total()
		share := 100 * float64(t.BarrierWait) * float64(b.N) / (float64(wall) * float64(n))
		b.ReportMetric(share, "%sync-wait")
		b.ReportMetric(float64(t.Windows)/float64(n), "windows")
	}
}

// benchmarkClosStorm measures the 64-host Clos storm at a given shard
// count; like the single-switch cluster benchmarks, the virtual timeline
// is identical at every count (TestGoldenTopoSweep asserts so). Sharded
// shapes run under both sync protocols; sub-benchmark names carry the
// topology shape so scripts/benchjson records it in the artifact.
func benchmarkClosStorm(b *testing.B, shards int) {
	if shards > runtime.NumCPU() && os.Getenv("UNET_BENCH_OVERSUB") == "" {
		b.Skipf("%d shards on %d CPUs would measure window overhead, not speedup; set UNET_BENCH_OVERSUB=1 to force", shards, runtime.NumCPU())
	}
	name := "topo=clos2/hosts=64/switches=10/stages=2"
	if shards <= 1 {
		b.Run(name, func(b *testing.B) { closStorm(b, shards, sim.SyncNeighbor) })
		return
	}
	for _, kind := range []sim.SyncKind{sim.SyncNeighbor, sim.SyncBarrier} {
		kind := kind
		b.Run(name+"/sync="+kind.String(), func(b *testing.B) { closStorm(b, shards, kind) })
	}
}

func BenchmarkClosStorm_Serial(b *testing.B)   { benchmarkClosStorm(b, 0) }
func BenchmarkClosStorm_Sharded4(b *testing.B) { benchmarkClosStorm(b, 4) }
func BenchmarkClosStorm_Sharded8(b *testing.B) { benchmarkClosStorm(b, 8) }

// BenchmarkGossip_Scale is the host-count scaling sweep of the island
// gossip overlay: the same per-island protocol at 256, 512 and 1024
// islands, reporting simulated gossip events per wall-clock second. The
// sub-benchmark names carry the topology metadata for the artifact.
func BenchmarkGossip_Scale(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		cfg := experiments.DefaultGossip(n)
		spec := topo.Island(n, 1)
		name := fmt.Sprintf("topo=island/hosts=%d/switches=%d/stages=%d", n, len(spec.Switches), spec.Stages())
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var r experiments.GossipResult
			start := time.Now()
			for i := 0; i < b.N; i++ {
				r = experiments.Gossip(cfg)
			}
			wall := time.Since(start)
			b.ReportMetric(float64(r.Delivered), "events")
			b.ReportMetric(float64(r.Delivered)*float64(b.N)/wall.Seconds(), "events/sec")
			b.ReportMetric(float64(r.Removed), "removed")
		})
	}
}
