package testbed

import (
	"fmt"
	"testing"
	"time"

	"unet/internal/unet"
)

// pingPongAt runs the standard pair ping-pong on a testbed with the given
// shard layout and returns the measured RTT.
func pingPongAt(t *testing.T, shards int) time.Duration {
	t.Helper()
	tb := New(Config{Hosts: 2, Shards: shards})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	return pr.PingPong(20, 32)
}

func TestShardedPairMatchesSerial(t *testing.T) {
	serial := pingPongAt(t, 0)
	if serial <= 0 {
		t.Fatalf("serial RTT = %v", serial)
	}
	for _, k := range []int{1, 2, 4} {
		if got := pingPongAt(t, k); got != serial {
			t.Fatalf("shards=%d RTT %v != serial %v", k, got, serial)
		}
	}
}

// stormAt renders an all-to-all storm's full result set as a string so runs
// can be compared byte-for-byte.
func stormAt(t *testing.T, hosts, shards, count int) string {
	t.Helper()
	tb := New(Config{Hosts: hosts, Shards: shards})
	defer tb.Close()
	mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, end := mesh.Storm(count, 1024)
	out := fmt.Sprintf("end=%v\n", end)
	for i, r := range res {
		out += fmt.Sprintf("host%d sent=%d recv=%d last=%v\n", i, r.Sent, r.Received, r.LastRecv)
	}
	return out
}

func TestShardedStormMatchesSerial(t *testing.T) {
	// The storm contends for shared switch output ports from every input at
	// once — the hardest case for cross-shard determinism.
	serial := stormAt(t, 8, 0, 50)
	for _, k := range []int{2, 4, 8} {
		if got := stormAt(t, 8, k, 50); got != serial {
			t.Fatalf("shards=%d diverged:\n--- serial ---\n%s--- sharded ---\n%s", k, serial, got)
		}
	}
}

func TestShardedStormCompletes(t *testing.T) {
	res, _ := func() ([]StormResult, time.Duration) {
		tb := New(Config{Hosts: 4, Shards: 4})
		defer tb.Close()
		mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
		if err != nil {
			t.Fatal(err)
		}
		return mesh.Storm(30, 256)
	}()
	for i, r := range res {
		if r.Sent != 30 {
			t.Fatalf("host %d sent %d, want 30", i, r.Sent)
		}
		if r.Received == 0 {
			t.Fatalf("host %d received nothing", i)
		}
	}
}
