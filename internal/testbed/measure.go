package testbed

import (
	"time"

	"unet/internal/sim"
	"unet/internal/unet"
)

// Recycle returns a received message's buffers to the endpoint's free
// queue, charging the pushes to p, and hands the descriptor's pooled
// memory back to the device (DESIGN.md §10).
func Recycle(p *sim.Proc, ep *unet.Endpoint, rd unet.RecvDesc) {
	for _, off := range rd.Buffers {
		if err := ep.PushFree(p, off); err != nil {
			panic(err)
		}
	}
	ep.Consume(rd)
}

// sendDesc builds the appropriate descriptor for a size-byte message:
// inline when the device's single-cell fast path accepts it, staged in the
// segment at stage otherwise.
func sendDesc(ep *unet.Endpoint, ch unet.ChannelID, stage, size int) unet.SendDesc {
	if size <= ep.Host().Device().SingleCellMax() {
		return unet.SendDesc{Channel: ch, Inline: ep.Segment()[stage : stage+size]}
	}
	return unet.SendDesc{Channel: ch, Offset: stage, Length: size}
}

// PingPong measures the mean round-trip time of size-byte messages echoed
// between the pair's endpoints, the experiment behind Figure 3's Raw U-Net
// curve. One warm-up round precedes measurement.
func (pr *Pair) PingPong(rounds, size int) time.Duration {
	tb := pr.TB
	stageA, stageB := pr.StageA, pr.StageB
	var start, end time.Duration

	pr.EpB.Host().Spawn("echo", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			rd := pr.EpB.Recv(p)
			Recycle(p, pr.EpB, rd)
			if err := pr.EpB.SendBlock(p, sendDesc(pr.EpB, pr.ChB, stageB, size)); err != nil {
				panic(err)
			}
		}
	})
	pr.EpA.Host().Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			if err := pr.EpA.SendBlock(p, sendDesc(pr.EpA, pr.ChA, stageA, size)); err != nil {
				panic(err)
			}
			rd := pr.EpA.Recv(p)
			Recycle(p, pr.EpA, rd)
		}
		end = p.Now()
	})
	tb.Eng.Run()
	return (end - start) / time.Duration(rounds)
}

// StreamResult reports a one-way streaming experiment.
type StreamResult struct {
	Messages  int
	Bytes     int
	Elapsed   time.Duration
	Delivered int
	Dropped   uint64
}

// MBps is the receiver-observed payload bandwidth in megabytes per second.
func (r StreamResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// Stream blasts count size-byte messages from endpoint A to endpoint B as
// fast as the send queue accepts them and reports the receiver-observed
// bandwidth — the experiment behind Figure 4's Raw U-Net curve.
func (pr *Pair) Stream(count, size int) StreamResult {
	tb := pr.TB
	stageA := pr.StageA
	res := StreamResult{Messages: count}
	var start, end time.Duration

	pr.EpB.Host().Spawn("sink", func(p *sim.Proc) {
		for got := 0; got < count; got++ {
			rd := pr.EpB.Recv(p)
			Recycle(p, pr.EpB, rd)
			res.Delivered++
			if got == 0 {
				// The first delivery opens the measurement window; its own
				// bytes are excluded so that Bytes/Elapsed is unbiased.
				start = p.Now()
			} else {
				res.Bytes += rd.Length
			}
			end = p.Now()
		}
	})
	pr.EpA.Host().Spawn("blast", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := pr.EpA.SendBlock(p, sendDesc(pr.EpA, pr.ChA, stageA, size)); err != nil {
				panic(err)
			}
		}
	})
	// A lossy stream never delivers count messages; bound the run.
	tb.Eng.RunUntil(time.Duration(count)*time.Millisecond + time.Second)
	st := pr.EpB.Stats()
	res.Dropped = st.DroppedNoBuffer + st.DroppedQueueFull + st.DroppedReassembly
	res.Elapsed = end - start
	return res
}
