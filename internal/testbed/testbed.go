// Package testbed assembles complete simulated clusters — engine, fabric,
// switch, hosts, NICs, manager — matching the paper's experimental set-up
// (§4.2: eight SPARCstations on a Fore ASX-200 with 140 Mbit/s TAXI
// links). It is the shared fixture for tests, benchmarks, the harness and
// the examples.
package testbed

import (
	"fmt"
	"time"

	"unet/internal/fabric"
	"unet/internal/faults"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/topo"
	"unet/internal/unet"
)

// Config selects the cluster's shape and models.
type Config struct {
	// Hosts is the number of workstations (default 2).
	Hosts int
	// Seed drives all randomness (default 1).
	Seed int64
	// Node is the host CPU cost model (default DefaultNodeParams).
	Node *unet.NodeParams
	// NIC is the interface model (default SBA200Params).
	NIC *nic.Params
	// Link is the fiber timing (default 140 Mbit/s TAXI).
	Link *fabric.LinkParams
	// SwitchLatency is the ASX-200 forwarding latency (default 2 µs).
	SwitchLatency time.Duration
	// Shards selects the parallel execution layout: 0 or 1 builds the
	// classic serial testbed (hosts and switch on one engine); k ≥ 2
	// partitions the hosts round-robin onto min(k, Hosts) shard engines,
	// each run on its own goroutine under the conservative window protocol
	// (see internal/sim shard.go). Results are byte-identical to serial.
	Shards int
	// Sync selects the sharded synchronization protocol (the zero value is
	// sim.SyncNeighbor; sim.SyncBarrier selects the PR 6 reference
	// protocol). Results are byte-identical across both, at every shard
	// count — that equivalence is what TestGoldenSyncSweep pins. Ignored
	// for serial layouts.
	Sync sim.SyncKind
	// Faults applies a deterministic impairment plan (internal/faults) to
	// every uplink and downlink and, if SwitchQueueCells is set, bounds the
	// switch output queues. nil (or an all-zero plan) is the perfect wire —
	// byte-identical to the fault-free testbed at any shard count.
	Faults *faults.Plan
	// Scheduler selects the engines' far-horizon event scheduler (the zero
	// value is the hierarchical timer wheel). Both kinds fire events in the
	// same (at, seq) order — results are byte-identical — so SchedulerHeap
	// exists only for differential tests and microbenchmarks. Shards inherit
	// the root engine's choice.
	Scheduler sim.SchedulerKind
	// Topology, when set, compiles a declarative multi-switch fabric
	// (internal/topo) instead of the single-switch cluster: Hosts is taken
	// from the spec, shard placement is topology-aware (each top-of-rack
	// switch with its hosts on one shard, higher stages on the root
	// engine), and routes become multi-hop. Everything else — NIC model,
	// manager, fault plans, sync protocol — applies unchanged.
	Topology *topo.Spec
}

// Testbed is an assembled cluster.
type Testbed struct {
	Eng *sim.Engine
	// Net is the fabric the hosts attach to: *fabric.Cluster for the
	// classic single-switch testbed, *topo.Fabric when Config.Topology is
	// set. Code that only needs uplinks, downlinks and routes programs
	// against this.
	Net fabric.Network
	// Fabric is the single-switch cluster (nil when a Topology is set).
	Fabric *fabric.Cluster
	// Topo is the compiled multi-switch fabric (nil without a Topology).
	Topo    *topo.Fabric
	Manager *unet.Manager
	Hosts   []*unet.Host
	Devices []*nic.Device

	// UpFaults and DownFaults are the per-link injector chains installed by
	// Config.Faults (nil entries when the plan leaves links clean): host i's
	// transmit path into the switch and the switch's output toward host i.
	UpFaults   []*faults.Chain
	DownFaults []*faults.Chain
}

// New builds a cluster per cfg.
func New(cfg Config) *Testbed {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	node := unet.DefaultNodeParams()
	if cfg.Node != nil {
		node = *cfg.Node
	}
	nicp := nic.SBA200Params()
	if cfg.NIC != nil {
		nicp = *cfg.NIC
	}
	link := fabric.DefaultLinkParams()
	if cfg.Link != nil {
		link = *cfg.Link
	}
	if cfg.SwitchLatency == 0 {
		cfg.SwitchLatency = fabric.DefaultSwitchLatency
	}

	e := sim.NewWithScheduler(cfg.Seed, cfg.Scheduler)
	tb := &Testbed{Eng: e}
	if spec := cfg.Topology; spec != nil {
		cfg.Hosts = len(spec.Hosts)
		if cfg.SwitchLatency != fabric.DefaultSwitchLatency && spec.SwitchLatency == 0 {
			spec.SwitchLatency = cfg.SwitchLatency
		}
		hostEng := make([]*sim.Engine, len(spec.Hosts))
		swEng := make([]*sim.Engine, len(spec.Switches))
		if k := cfg.Shards; k > 1 {
			// One shard can hold several racks but never a fraction of one:
			// cap the shard count at the number of stage-0 switches.
			tors := 0
			for j := range spec.Switches {
				if spec.Switches[j].Stage == 0 {
					tors++
				}
			}
			if k > tors {
				k = tors
			}
			hostShard, swShard := topo.Place(spec, k)
			shardEng := make([]*sim.Engine, k)
			for j := 0; j < k; j++ {
				shardEng[j] = e.NewShard(cfg.Seed + int64(j) + 1)
			}
			for i, s := range hostShard {
				if s >= 0 {
					hostEng[i] = shardEng[s]
				}
			}
			for i, s := range swShard {
				if s >= 0 {
					swEng[i] = shardEng[s]
				}
			}
			e.Group().SetSync(cfg.Sync)
		}
		tb.Topo = topo.MustCompile(e, spec, hostEng, swEng)
		tb.Net = tb.Topo
	} else {
		hostEng := make([]*sim.Engine, cfg.Hosts)
		if k := cfg.Shards; k > 1 {
			if k > cfg.Hosts {
				k = cfg.Hosts
			}
			shardEng := make([]*sim.Engine, k)
			for j := 0; j < k; j++ {
				shardEng[j] = e.NewShard(cfg.Seed + int64(j) + 1)
			}
			for i := range hostEng {
				hostEng[i] = shardEng[i%k]
			}
			e.Group().SetSync(cfg.Sync)
		}
		tb.Fabric = fabric.NewShardedCluster(e, "atm", hostEng, link, cfg.SwitchLatency)
		tb.Net = tb.Fabric
	}
	m := unet.NewManager(tb.Net)
	tb.Manager = m
	for i := 0; i < cfg.Hosts; i++ {
		h := unet.NewHost(tb.Net.HostEngine(i), fmt.Sprintf("host%d", i), node)
		d := nic.Attach(h, tb.Net, m, i, nicp)
		tb.Hosts = append(tb.Hosts, h)
		tb.Devices = append(tb.Devices, d)
	}
	if cfg.Faults != nil {
		pl := *cfg.Faults
		tb.UpFaults = make([]*faults.Chain, cfg.Hosts)
		tb.DownFaults = make([]*faults.Chain, cfg.Hosts)
		for i := 0; i < cfg.Hosts; i++ {
			// Per-link streams are keyed by the fixed link names ("atm.up0",
			// "clos2.leaf1.port3", ...), so the fault pattern a host sees
			// depends on the topology, never on the shard layout.
			if ch := pl.Build(tb.Net.Uplink(i).Name()); ch != nil {
				tb.UpFaults[i] = ch
				tb.Net.Uplink(i).SetInjector(ch)
			}
			if ch := pl.Build(tb.Net.Downlink(i).Name()); ch != nil {
				tb.DownFaults[i] = ch
				tb.Net.Downlink(i).SetInjector(ch)
			}
		}
		if pl.SwitchQueueCells > 0 {
			if tb.Fabric != nil {
				tb.Fabric.Switch.SetOutputQueueCells(pl.SwitchQueueCells)
			} else {
				tb.Topo.SetOutputQueueCells(pl.SwitchQueueCells)
			}
		}
	}
	return tb
}

// FaultTotal sums impairment accounting over every installed injector
// chain (zero when Config.Faults was nil).
func (tb *Testbed) FaultTotal() faults.FaultStats {
	var sum faults.FaultStats
	for _, chains := range [][]*faults.Chain{tb.UpFaults, tb.DownFaults} {
		for _, ch := range chains {
			if ch == nil {
				continue
			}
			s := ch.Stats()
			sum.Cells += s.Cells
			sum.Dropped += s.Dropped
			sum.Corrupted += s.Corrupted
			sum.HdrDamage += s.HdrDamage
			sum.Duplicate += s.Duplicate
			sum.Delayed += s.Delayed
			sum.DownDrops += s.DownDrops
		}
	}
	return sum
}

// Close shuts the engine down, unwinding all simulated processes.
func (tb *Testbed) Close() { tb.Eng.Shutdown() }

// TotalSteps sums executed-event counts over every engine in the cluster
// (the root plus any shards). For a fixed shard layout the total is
// scheduler-invariant — the heap and wheel engines execute exactly the same
// events — but it can differ by a handful across layouts, because
// cross-shard links re-arm their delivery events per mailbox drain rather
// than per cell. Virtual-time results are identical regardless; treat this
// as a volume diagnostic, not a golden quantity across shard counts.
func (tb *Testbed) TotalSteps() uint64 {
	total := tb.Eng.Steps()
	seen := map[*sim.Engine]bool{tb.Eng: true}
	for i := range tb.Hosts {
		if e := tb.Net.HostEngine(i); !seen[e] {
			seen[e] = true
			total += e.Steps()
		}
	}
	return total
}

// Pair is a connected endpoint pair on hosts 0 and 1 with receive buffers
// provided, ready for ping-pong style experiments.
type Pair struct {
	TB       *Testbed
	EpA, EpB *unet.Endpoint
	ChA, ChB unet.ChannelID
	// StageA and StageB are segment offsets past the receive buffers,
	// usable as send staging space.
	StageA, StageB int
}

// NewPair creates endpoints on hosts a and b with cfg (zero value for
// defaults), connects them, and provisions nbufs receive buffers each,
// starting at segment offset 0. Send-side staging space begins at the
// returned SendBase offset.
func (tb *Testbed) NewPair(a, b int, cfg unet.EndpointConfig, nbufs int) (*Pair, error) {
	prA := tb.Hosts[a].NewProcess("app")
	prB := tb.Hosts[b].NewProcess("app")
	epA, err := tb.Hosts[a].Kernel.CreateEndpoint(nil, prA, cfg)
	if err != nil {
		return nil, err
	}
	epB, err := tb.Hosts[b].Kernel.CreateEndpoint(nil, prB, cfg)
	if err != nil {
		return nil, err
	}
	ch, err := tb.Manager.Connect(nil, epA, epB)
	if err != nil {
		return nil, err
	}
	if nbufs > 0 {
		if _, err := epA.ProvideRecvBuffers(nil, 0, nbufs); err != nil {
			return nil, err
		}
		if _, err := epB.ProvideRecvBuffers(nil, 0, nbufs); err != nil {
			return nil, err
		}
	}
	return &Pair{
		TB: tb, EpA: epA, EpB: epB, ChA: ch.ChanA, ChB: ch.ChanB,
		StageA: SendBase(epA, nbufs), StageB: SendBase(epB, nbufs),
	}, nil
}

// SendBase returns the first segment offset past n receive buffers of the
// endpoint's configured size — where send staging space starts for
// fixtures built with NewPair.
func SendBase(ep *unet.Endpoint, nbufs int) int {
	return nbufs * ep.Config().RecvBufSize
}
