package testbed

import (
	"fmt"
	"time"

	"unet/internal/sim"
	"unet/internal/unet"
)

// Mesh is an all-to-all fixture: one endpoint per host, a channel between
// every host pair, receive buffers provisioned. It is the workload that
// actually exercises sharded execution — every host both sends and
// receives, so every window carries traffic across every shard boundary.
type Mesh struct {
	TB  *Testbed
	Eps []*unet.Endpoint
	// Chans[i][j] is host i's channel toward host j (zero for i == j).
	Chans [][]unet.ChannelID
	// Stage[i] is the first segment offset past host i's receive buffers,
	// usable as send staging space.
	Stage []int
}

// NewMesh creates one endpoint per host with cfg (zero value for defaults),
// connects every pair, and provisions nbufs receive buffers per endpoint.
func (tb *Testbed) NewMesh(cfg unet.EndpointConfig, nbufs int) (*Mesh, error) {
	n := len(tb.Hosts)
	m := &Mesh{TB: tb, Eps: make([]*unet.Endpoint, n), Chans: make([][]unet.ChannelID, n), Stage: make([]int, n)}
	for i := 0; i < n; i++ {
		pr := tb.Hosts[i].NewProcess("app")
		ep, err := tb.Hosts[i].Kernel.CreateEndpoint(nil, pr, cfg)
		if err != nil {
			return nil, fmt.Errorf("host %d endpoint: %w", i, err)
		}
		m.Eps[i] = ep
		m.Chans[i] = make([]unet.ChannelID, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ch, err := tb.Manager.Connect(nil, m.Eps[i], m.Eps[j])
			if err != nil {
				return nil, fmt.Errorf("connect %d-%d: %w", i, j, err)
			}
			m.Chans[i][j] = ch.ChanA
			m.Chans[j][i] = ch.ChanB
		}
	}
	for i := 0; i < n; i++ {
		if nbufs > 0 {
			if _, err := m.Eps[i].ProvideRecvBuffers(nil, 0, nbufs); err != nil {
				return nil, fmt.Errorf("host %d buffers: %w", i, err)
			}
		}
		m.Stage[i] = SendBase(m.Eps[i], nbufs)
	}
	return m, nil
}

// StormResult reports one host's share of an all-to-all storm.
type StormResult struct {
	Sent     int
	Received int
	LastRecv time.Duration
}

// Storm runs the all-to-all cell storm: every host sends count size-byte
// messages, striped round-robin over its peers, as fast as its send queue
// accepts them, while concurrently receiving everything its peers throw at
// it. It returns per-host results and the final virtual time.
//
// All mutable state is confined to the owning host's processes (each slot
// of the results slice is written by exactly one receiver), so the storm is
// shard-safe and its results byte-identical at any shard count.
func (m *Mesh) Storm(count, size int) ([]StormResult, time.Duration) {
	n := len(m.Eps)
	res := make([]StormResult, n)
	expect := make([]int, n)
	for i := 0; i < n; i++ {
		c := count
		for k := 0; k < c; k++ {
			expect[(i+1+k%(n-1))%n]++
		}
	}
	for i := 0; i < n; i++ {
		i := i
		ep := m.Eps[i]
		m.TB.Hosts[i].Spawn("recv", func(p *sim.Proc) {
			for got := 0; got < expect[i]; got++ {
				rd := ep.Recv(p)
				Recycle(p, ep, rd)
				res[i].Received++
				res[i].LastRecv = p.Now()
			}
		})
		m.TB.Hosts[i].Spawn("send", func(p *sim.Proc) {
			for k := 0; k < count; k++ {
				peer := (i + 1 + k%(n-1)) % n
				d := sendDesc(ep, m.Chans[i][peer], m.Stage[i], size)
				if err := ep.SendBlock(p, d); err != nil {
					panic(err)
				}
				res[i].Sent++
			}
		})
	}
	end := m.TB.Eng.RunUntil(time.Duration(count*n)*time.Millisecond + time.Second)
	return res, end
}
