package testbed

import (
	"unet/internal/ip"
	"unet/internal/unet"
)

// NewIPConduitPair builds the §7.1 configuration between hosts a and b:
// one endpoint each, one U-Net channel carrying all IP traffic, receive
// buffers provisioned, and an ip.UNetConduit on each side.
func (tb *Testbed) NewIPConduitPair(a, b int) (*ip.UNetConduit, *ip.UNetConduit, error) {
	// IP staging needs room for the conduit's send ring plus the receive
	// buffers: use a 1 MB segment with 9 KB receive buffers.
	cfg := unet.EndpointConfig{
		SegmentSize:  1 << 20,
		RecvBufSize:  ip.MTU,
		SendQueueCap: 64,
		RecvQueueCap: 128,
		FreeQueueCap: 64,
	}
	for _, h := range []int{a, b} {
		k := tb.Hosts[h].Kernel
		lim := k.Limits()
		if lim.MaxQueueCap < cfg.RecvQueueCap {
			lim.MaxQueueCap = cfg.RecvQueueCap
			k.SetLimits(lim)
		}
	}
	pr, err := tb.NewPair(a, b, cfg, 36)
	if err != nil {
		return nil, nil, err
	}
	ca := ip.NewUNetConduit(pr.EpA, pr.ChA, uint32(a+1), uint32(b+1), pr.StageA)
	cb := ip.NewUNetConduit(pr.EpB, pr.ChB, uint32(b+1), uint32(a+1), pr.StageB)
	return ca, cb, nil
}
