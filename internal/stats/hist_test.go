package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 {
		t.Fatalf("Count = %d, want 64", h.Count())
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("Min/Max = %d/%d, want 0/63", h.Min(), h.Max())
	}
	// Values below 64 are exact: every quantile returns the true sample.
	for v := int64(0); v < 64; v++ {
		q := (float64(v) + 1) / 64
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, v)
		}
	}
}

func TestHistogramIndexRoundTrip(t *testing.T) {
	// Bucket mapping is monotone and contiguous, and each value lies in
	// [lo, lo+width) of its own bucket.
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345} {
		idx := histIndex(v)
		if idx <= prev && v != 0 {
			// Only equal-bucket collisions are allowed, never inversions.
			if idx < prev {
				t.Fatalf("index inversion at %d: %d < %d", v, idx, prev)
			}
		}
		lo := histValueLo(idx)
		if v < lo {
			t.Fatalf("value %d below its bucket floor %d (idx %d)", v, lo, idx)
		}
		if idx+1 < 1<<20 { // next bucket's floor bounds this bucket
			hi := histValueLo(idx + 1)
			if v >= hi {
				t.Fatalf("value %d at/above next bucket floor %d (idx %d)", v, hi, idx)
			}
		}
		prev = idx
	}
}

// TestHistogramQuantileErrorBound checks the advertised guarantee: rank
// selection is exact and the reported value is within 1/64 relative error
// of the true rank-selected sample.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 200_000)
	for i := 0; i < 200_000; i++ {
		// Log-uniform over ~6 decades plus a heavy tail, like a latency mix.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v + 1)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999} {
		rank := int(q * float64(len(samples)))
		if float64(rank) < q*float64(len(samples)) {
			rank++
		}
		if rank == 0 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/64+1e-9 {
			t.Errorf("Quantile(%v) = %d, exact %d, rel err %.4f > 1/64", q, got, exact, relErr)
		}
	}
}

func TestHistogramMergeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Histogram
	for i := 0; i < 50_000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged Min/Max = %d/%d, want %d/%d", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, want %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op; merging into empty copies.
	var empty, into Histogram
	a.Merge(&empty)
	if a.Count() != whole.Count() {
		t.Fatal("merging empty changed count")
	}
	into.Merge(&a)
	if into.Count() != a.Count() || into.Quantile(0.5) != a.Quantile(0.5) {
		t.Fatal("merge into empty lost samples")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Record(1_000_000)
	if h.Quantile(0) != 0 || h.Quantile(1) != 1_000_000 {
		t.Fatalf("q0/q1 = %d/%d", h.Quantile(0), h.Quantile(1))
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not empty histogram")
	}
	h.RecordN(100, 3)
	if h.Count() != 3 || h.Quantile(0.5) != 100 {
		t.Fatalf("RecordN: n=%d q50=%d", h.Count(), h.Quantile(0.5))
	}
}
