package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesAddAndAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if y, ok := s.At(2); !ok || y != 20 {
		t.Fatalf("At(2) = %v, %v", y, ok)
	}
	if y, ok := s.At(3.1); !ok || y != 40 {
		t.Fatalf("At(3.1) = %v (nearest should be x=4)", y)
	}
	var empty Series
	if _, ok := empty.At(1); ok {
		t.Fatal("At on empty series reported ok")
	}
}

func TestSeriesMaxY(t *testing.T) {
	var s Series
	s.Add(1, 3)
	s.Add(2, 9)
	s.Add(3, 6)
	if got := s.MaxY(); got != 9 {
		t.Fatalf("MaxY = %v, want 9", got)
	}
	var empty Series
	if got := empty.MaxY(); got != 0 {
		t.Fatalf("empty MaxY = %v, want 0", got)
	}
}

func TestSeriesMaxYAllNegative(t *testing.T) {
	// Regression: seeding the scan at 0 instead of the first point made
	// MaxY report 0 for series that never cross the x-axis.
	var s Series
	s.Add(1, -7)
	s.Add(2, -3)
	s.Add(3, -12)
	if got := s.MaxY(); got != -3 {
		t.Fatalf("all-negative MaxY = %v, want -3", got)
	}
}

func TestFigureString(t *testing.T) {
	f := &Figure{Title: "T", XLabel: "x", YLabel: "y"}
	a := &Series{Name: "A"}
	a.Add(1, 1.5)
	a.Add(2, 2.5)
	b := &Series{Name: "B"}
	b.Add(2, 9)
	f.Series = []*Series{a, b}
	out := f.String()
	for _, want := range []string{"== T ==", "A", "B", "1.50", "9.00", "(y: y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Series B has no point at x=1: rendered as "-".
	line1 := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "1 ") {
			line1 = l
		}
	}
	if !strings.Contains(line1, "-") {
		t.Errorf("missing point not rendered as '-': %q", line1)
	}
}

func TestFigureGet(t *testing.T) {
	f := &Figure{Series: []*Series{{Name: "x"}, {Name: "y"}}}
	if f.Get("y") == nil || f.Get("z") != nil {
		t.Fatal("Get lookup broken")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo")
	tb.Header("a", "longer")
	tb.Row("xxxxxxx", "1")
	tb.Row("y", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "--") {
		t.Fatalf("missing header rule:\n%s", out)
	}
}

func TestUSAndMBps(t *testing.T) {
	if got := US(1500 * time.Nanosecond); got != 1.5 {
		t.Fatalf("US = %v, want 1.5", got)
	}
	if got := MBps(2_000_000, time.Second); got != 2.0 {
		t.Fatalf("MBps = %v, want 2.0", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("MBps with zero duration = %v, want 0", got)
	}
}
