// Package stats provides the small measurement-collection and text-table
// vocabulary shared by the benchmark harness: (x, y) series for figures,
// aligned tables for the paper's tables, and unit helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a named curve, e.g. "Raw U-Net" in Figure 3.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// At returns the y value at the x closest to the requested one (series are
// swept over discrete parameter grids).
func (s *Series) At(x float64) (float64, bool) {
	best, bestDist := 0.0, math.Inf(1)
	found := false
	for _, p := range s.Points {
		if d := math.Abs(p.X - x); d < bestDist {
			best, bestDist, found = p.Y, d, true
		}
	}
	return best, found
}

// MaxY returns the largest y in the series (0 for an empty series).
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	max := s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// Figure is a set of series sharing axes, reproducing one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// String renders the figure as an aligned text table with one row per x
// value and one column per series, suitable for plotting elsewhere.
func (f *Figure) String() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	t := NewTable(f.Title)
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t.Header(headers...)
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			y := math.NaN()
			for _, p := range s.Points {
				if p.X == x {
					y = p.Y
					break
				}
			}
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", y))
			}
		}
		t.Row(row...)
	}
	if f.YLabel != "" {
		return t.String() + "(y: " + f.YLabel + ")\n"
	}
	return t.String()
}

// Table is an aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a titled table.
func NewTable(title string) *Table { return &Table{Title: title} }

// Header sets the column headers.
func (t *Table) Header(cols ...string) { t.headers = cols }

// Row appends a row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	all := t.rows
	if t.headers != nil {
		all = append([][]string{t.headers}, t.rows...)
	}
	widths := map[int]int{}
	for _, row := range all {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range all {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
		if ri == 0 && t.headers != nil {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// US converts a duration to float microseconds.
func US(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// MBps computes megabytes per second.
func MBps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.2f", x)
}
