package stats

import "math/bits"

// Histogram is a streaming log-bucketed histogram of non-negative int64
// samples (latencies in nanoseconds), in the style of HdrHistogram. Values
// below 64 land in exact unit buckets; above that each power-of-two octave
// is split into 32 sub-buckets, so the bucket containing a value is never
// wider than value/32 and a quantile read off the bucket midpoint carries
// at most ~1.56% (1/64) relative error. Counts are exact, so rank selection
// (which sample a quantile names) is exact; only the reported value is
// quantized. Recording is O(1) with no allocation once the counts array has
// grown to cover the observed range (at most ~1.9k buckets for all of
// int64), and histograms recorded independently merge losslessly.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // 64: values below this are exact
	histSubHalf  = histSubCount / 2
)

// histIndex maps a non-negative value to its bucket index. The mapping is
// monotone and contiguous: value 63 is the last unit bucket and value 64
// opens the first split octave.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	b := bits.Len64(uint64(v)) - histSubBits
	s := int(v >> uint(b)) // in [histSubHalf, histSubCount)
	return b*histSubHalf + s
}

// histValueLo returns the smallest value mapping to bucket idx.
func histValueLo(idx int) int64 {
	if idx < histSubHalf {
		return int64(idx)
	}
	b := idx/histSubHalf - 1
	s := idx - b*histSubHalf
	return int64(s) << uint(b)
}

// histValueMid returns the representative (midpoint) value of bucket idx.
func histValueMid(idx int) int64 {
	if idx < histSubHalf {
		return int64(idx)
	}
	b := idx/histSubHalf - 1
	lo := histValueLo(idx)
	return lo + (int64(1)<<uint(b))/2
}

// Record adds one sample. Negative values clamp to zero.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n samples of the same value.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := histIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += n
	h.sum += v * int64(n)
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total += n
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the exact smallest recorded value (0 if empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded value (0 if empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the value at quantile q in [0, 1]: the bucket midpoint of
// the sample with (1-based) rank ceil(q·count), clamped to the exact
// observed [Min, Max]. Rank selection is exact; the value is quantized to
// its bucket, so the result is within 1/64 relative error of the true
// sample. q ≤ 0 returns Min, q ≥ 1 returns Max; an empty histogram returns
// 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if float64(rank) < q*float64(h.total) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histValueMid(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds every sample recorded in o into h. Merging is lossless: the
// result is bucket-for-bucket identical to recording both sample streams
// into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for idx, c := range o.counts {
		h.counts[idx] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.total == 0 || o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset empties the histogram, keeping the counts array for reuse.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.min, h.max = 0, 0, 0, 0
}
