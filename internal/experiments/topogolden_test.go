package experiments

import (
	"testing"

	"unet/internal/sim"
)

// TestGoldenTopoSweep extends the shard-equivalence contract to
// multi-switch fabrics: the all-to-all storm over a 64-host 2-stage Clos
// (8 racks × 8 hosts, 2 spines) and over a small 3-stage Clos must render
// byte-identically — same virtual times, same stats — at shards 1, 2, 4
// and 8 under both sync protocols, with shard placement following the
// topology (each rack with its ToR on one shard, spines on the root
// engine). Only the shards= layout annotation may differ.
func TestGoldenTopoSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("topo golden sweep is not short")
	}
	norm := func(s string) string { return shardLabel.ReplaceAllString(s, "shards=*") }

	for _, tc := range []struct {
		kind                  string
		racks, perRack, spine int
		count                 int
	}{
		{"clos2", 8, 8, 2, 4},
		{"clos3", 4, 2, 2, 4},
	} {
		serial, _ := TopoStorm(tc.kind, tc.racks, tc.perRack, tc.spine, 0, tc.count)
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial rendering", tc.kind)
		}
		for _, kind := range []sim.SyncKind{sim.SyncNeighbor, sim.SyncBarrier} {
			defer func(k sim.SyncKind) { Sync = k }(Sync)
			Sync = kind
			for _, k := range []int{1, 2, 4, 8} {
				got, _ := TopoStorm(tc.kind, tc.racks, tc.perRack, tc.spine, k, tc.count)
				if norm(got) != norm(serial) {
					t.Fatalf("%s sync=%v shards=%d diverged from serial:\n--- serial ---\n%s\n--- got ---\n%s",
						tc.kind, kind, k, norm(serial), norm(got))
				}
			}
		}
	}
}

// TestGossipDeterministic pins the 1k-endpoint island gossip: with every
// 16th island's uplink flapping, the full run — rumor spread, bounded
// queues, failure detection and removal — must be byte-identical between
// the serial engine and sharded execution under both protocols, and the
// failure detector must actually have fired (removals are part of the
// pinned rendering, so a nondeterministic detector cannot hide).
func TestGossipDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-island gossip is not short")
	}
	cfg := DefaultGossip(1024)
	serial := Gossip(cfg)
	if serial.Removed == 0 {
		t.Fatal("no neighbor removals; the flap plan never tripped the failure detector")
	}
	if serial.Delivered == 0 || serial.Coverage < 2 {
		t.Fatalf("gossip did not spread: %+v", serial)
	}
	want := serial.Render()
	for _, tc := range []struct {
		shards int
		sync   sim.SyncKind
	}{
		{2, sim.SyncNeighbor},
		{8, sim.SyncNeighbor},
		{8, sim.SyncBarrier},
	} {
		cfg.Shards, cfg.Sync = tc.shards, tc.sync
		if got := Gossip(cfg).Render(); got != want {
			t.Fatalf("shards=%d sync=%v diverged:\n--- serial ---\n%s\n--- got ---\n%s",
				tc.shards, tc.sync, want, got)
		}
	}
}
