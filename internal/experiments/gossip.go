package experiments

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"unet/internal/faults"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/topo"
	"unet/internal/unet"
)

// GossipConfig shapes the island-overlay gossip experiment: a ring of
// islands (with antipodal chords, topo.Island) whose hosts flood rumors
// to their overlay neighbors in fixed rounds, with a bounded per-island
// forward queue (drop-oldest), bounded switch output queues, and
// deterministic failed-neighbor removal — an island whose uplink flap
// keeps it silent for FailAfter rounds is struck from its neighbors' send
// lists and never re-added.
type GossipConfig struct {
	// Islands is the number of island switches; PerIsland hosts attach to
	// each (default 1).
	Islands   int
	PerIsland int
	// Rounds and Period set the gossip cadence: every host wakes at
	// r*Period, drains its receive queue, and forwards.
	Rounds int
	Period time.Duration
	// FanoutPerRound bounds how many queued rumors a host forwards to each
	// live neighbor per round (its own heartbeat rumor always goes out).
	FanoutPerRound int
	// ForwardQueue bounds the per-host rumor forward queue; a rumor
	// learned while the queue is full evicts the oldest (drop-oldest, the
	// netislands discipline — fresh gossip beats stale gossip).
	ForwardQueue int
	// FailAfter is the failure detector: a neighbor silent for more than
	// FailAfter rounds is removed.
	FailAfter int
	// QueueCells bounds every island switch's output queues (tail drop).
	QueueCells int
	// FlapEvery flaps the uplink of every FlapEvery-th host (0 disables
	// faults): down for FlapDown every FlapPeriod, offset staggered
	// deterministically per host.
	FlapEvery  int
	FlapPeriod time.Duration
	FlapDown   time.Duration

	Shards int
	Sync   sim.SyncKind
	Seed   int64
}

// DefaultGossip returns the standard configuration for n islands: a
// 3.6 ms run of 12 rounds in which every 16th island goes dark long
// enough to be removed by its neighbors.
func DefaultGossip(islands int) GossipConfig {
	return GossipConfig{
		Islands: islands, PerIsland: 1,
		Rounds: 12, Period: 300 * time.Microsecond,
		FanoutPerRound: 4, ForwardQueue: 16, FailAfter: 3,
		QueueCells: 64,
		FlapEvery:  16,
		FlapPeriod: 8 * time.Millisecond, // one down window per run
		FlapDown:   2 * time.Millisecond, // ≈ 6 rounds of silence
		Seed:       1,
	}
}

// GossipResult aggregates one gossip run.
type GossipResult struct {
	Hosts     int
	Switches  int
	Rounds    int
	Sent      uint64 // messages handed to the NIs
	Delivered uint64 // messages received and merged
	Learned   uint64 // rumor first-sightings across all hosts
	Removed   int    // neighbor-list removals by the failure detector
	FQDrops   uint64 // forward-queue drop-oldest evictions
	SwDrops   uint64 // switch finite-queue tail drops
	Coverage  int    // hosts that know host 0's rumor at the end
	End       time.Duration
}

// Render formats the result deterministically (golden-comparable).
func (r GossipResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "island gossip: hosts=%d switches=%d rounds=%d end=%v\n", r.Hosts, r.Switches, r.Rounds, r.End)
	fmt.Fprintf(&b, "  sent=%d delivered=%d learned=%d coverage=%d\n", r.Sent, r.Delivered, r.Learned, r.Coverage)
	fmt.Fprintf(&b, "  removed=%d fqdrops=%d swdrops=%d\n", r.Removed, r.FQDrops, r.SwDrops)
	return b.String()
}

// gossipPeers returns host h's overlay neighbors on an Islands-ring with
// antipodal chords, in deterministic order (previous, next, chord). It
// mirrors the trunk set topo.Island declares, so the overlay gossips
// exactly along the fabric's one-trunk paths.
func gossipPeers(h, n int) []int {
	if n <= 1 {
		return nil
	}
	if n == 2 {
		return []int{1 - h}
	}
	peers := []int{(h - 1 + n) % n, (h + 1) % n}
	if n >= 4 {
		half := n / 2
		if h < half && h+half < n {
			peers = append(peers, h+half)
		} else if h >= half && h-half < n-half {
			peers = append(peers, h-half)
		}
	}
	return peers
}

// Gossip runs the island gossip experiment. All mutable protocol state is
// confined to each host's own process and messages travel only through
// U-Net channels over the compiled fabric, so the result is byte-identical
// at every shard count and under both sync protocols.
func Gossip(cfg GossipConfig) GossipResult {
	if cfg.PerIsland <= 0 {
		cfg.PerIsland = 1
	}
	spec := topo.Island(cfg.Islands, cfg.PerIsland)
	for j := range spec.Switches {
		spec.Switches[j].QueueCells = cfg.QueueCells
	}
	tb := testbed.New(testbed.Config{Topology: spec, Shards: cfg.Shards, Sync: cfg.Sync, Seed: cfg.Seed})
	defer tb.Close()
	n := tb.Topo.Size()

	if cfg.FlapEvery > 0 {
		for i := 0; i < n; i += cfg.FlapEvery {
			// Stagger the down windows a little per island; the offsets are
			// pure arithmetic in the host index, so the flap schedule is a
			// function of the topology alone.
			off := cfg.Period + time.Duration(i%5)*(cfg.Period/8)
			tb.Net.Uplink(i).SetInjector(faults.NewFlap(cfg.FlapPeriod, cfg.FlapDown, off))
		}
	}

	// One endpoint per host; one channel per overlay edge, connected in
	// declared host order so VCI allocation is deterministic.
	eps := make([]*unet.Endpoint, n)
	epCfg := unet.EndpointConfig{SegmentSize: 8 << 10}
	for i := 0; i < n; i++ {
		pr := tb.Hosts[i].NewProcess("app")
		ep, err := tb.Hosts[i].Kernel.CreateEndpoint(nil, pr, epCfg)
		mustNoErr(err, "gossip endpoint")
		eps[i] = ep
	}
	chans := make([]map[int]unet.ChannelID, n) // host → peer → channel
	for i := range chans {
		chans[i] = make(map[int]unet.ChannelID)
	}
	for i := 0; i < n; i++ {
		for _, peer := range gossipPeers(i, n) {
			if peer < i {
				continue // edge already connected from the lower host
			}
			ch, err := tb.Manager.Connect(nil, eps[i], eps[peer])
			mustNoErr(err, "gossip connect")
			chans[i][peer] = ch.ChanA
			chans[peer][i] = ch.ChanB
		}
	}

	stats := make([]GossipResult, n) // per-host counters, merged at the end
	for i := 0; i < n; i++ {
		i := i
		ep := eps[i]
		peers := gossipPeers(i, n)
		chanNbr := make(map[unet.ChannelID]int, len(peers))
		nbrChan := make([]unet.ChannelID, len(peers))
		for nb, peer := range peers {
			chanNbr[chans[i][peer]] = nb
			nbrChan[nb] = chans[i][peer]
		}
		tb.Hosts[i].Spawn("gossip", func(p *sim.Proc) {
			st := &stats[i]
			known := make([]bool, n)
			known[i] = true
			fq := []uint16{}
			lastHeard := make([]int, len(peers))
			alive := make([]bool, len(peers))
			for nb := range alive {
				alive[nb] = true
			}
			seg := ep.Segment()
			seq := 0
			for r := 0; r < cfg.Rounds; r++ {
				if target := time.Duration(r) * cfg.Period; target > p.Now() {
					p.Sleep(target - p.Now())
				}
				for {
					rd, ok := ep.PollRecv(p)
					if !ok {
						break
					}
					if len(rd.Inline) >= 2 {
						st.Delivered++
						origin := int(binary.BigEndian.Uint16(rd.Inline))
						if nb, ok := chanNbr[rd.Channel]; ok {
							lastHeard[nb] = r
						}
						if origin < n && !known[origin] {
							known[origin] = true
							st.Learned++
							fq = append(fq, uint16(origin))
							if len(fq) > cfg.ForwardQueue {
								fq = fq[1:]
								st.FQDrops++
							}
						}
					}
					testbed.Recycle(p, ep, rd)
				}
				for nb := range peers {
					if alive[nb] && r-lastHeard[nb] > cfg.FailAfter {
						alive[nb] = false
						st.Removed++
					}
				}
				batch := []uint16{uint16(i)}
				for take := cfg.FanoutPerRound; take > 0 && len(fq) > 0; take-- {
					batch = append(batch, fq[0])
					fq = fq[1:]
				}
				for nb := range peers {
					if !alive[nb] {
						continue
					}
					for _, origin := range batch {
						// Rotating staging slots: the inline payload is copied
						// out by the NI asynchronously, so a slot is reused
						// only long after its send has left the queue.
						off := (seq % 512) * 4
						binary.BigEndian.PutUint16(seg[off:], origin)
						seg[off+2] = byte(r)
						err := ep.SendBlock(p, unet.SendDesc{Channel: nbrChan[nb], Inline: seg[off : off+4]})
						mustNoErr(err, "gossip send")
						st.Sent++
						seq++
					}
				}
			}
			if known[0] {
				st.Coverage = 1
			}
		})
	}

	end := tb.Eng.RunUntil(time.Duration(cfg.Rounds)*cfg.Period + 10*time.Millisecond)
	out := GossipResult{Hosts: n, Switches: len(spec.Switches), Rounds: cfg.Rounds, End: end, SwDrops: tb.Topo.TotalQueueDrops()}
	for i := range stats {
		out.Sent += stats[i].Sent
		out.Delivered += stats[i].Delivered
		out.Learned += stats[i].Learned
		out.Removed += stats[i].Removed
		out.FQDrops += stats[i].FQDrops
		out.Coverage += stats[i].Coverage
	}
	return out
}
