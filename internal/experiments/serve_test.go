package experiments

import (
	"testing"
	"time"

	"unet/internal/sim"
)

// serveTestCfg is a small, fast serve scenario shared by the determinism
// tests below.
func serveTestCfg() ServeConfig {
	return ServeConfig{
		ClientHosts:    4,
		Servers:        2,
		LogicalPerHost: 256,
		Rate:           60_000,
		Duration:       5 * time.Millisecond,
	}
}

// TestServeDifferentialSchedulers runs the same seeded serve scenario under
// the heap-only and wheel schedulers and asserts identical event firing
// (step counts), identical virtual end times, and an identical rendered
// report — the tentpole's heap-equivalence invariant, proven on a workload
// that churns thousands of timeout timers.
func TestServeDifferentialSchedulers(t *testing.T) {
	cfg := serveTestCfg()
	cfg.Scheduler = sim.SchedulerWheel
	wheel := Serve(cfg)
	cfg.Scheduler = sim.SchedulerHeap
	heap := Serve(cfg)
	if wheel.Steps != heap.Steps {
		t.Errorf("steps differ: wheel=%d heap=%d", wheel.Steps, heap.Steps)
	}
	if wheel.End != heap.End {
		t.Errorf("virtual end differs: wheel=%v heap=%v", wheel.End, heap.End)
	}
	if wl, hl := wheel.Line(), heap.Line(); wl != hl {
		t.Errorf("reports differ:\nwheel: %s\nheap:  %s", wl, hl)
	}
	if wheel.Sent == 0 || wheel.Replied != wheel.Sent {
		t.Errorf("scenario too trivial: sent=%d replied=%d", wheel.Sent, wheel.Replied)
	}
}

// TestServeShardIdentical pins the serve report byte-identical across shard
// layouts (and bursty arrivals along the way).
func TestServeShardIdentical(t *testing.T) {
	for _, bursty := range []bool{false, true} {
		var want string
		for _, shards := range []int{0, 2, 4, 8} {
			cfg := serveTestCfg()
			cfg.Bursty = bursty
			cfg.Shards = shards
			got := Serve(cfg).Line()
			if shards == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("bursty=%v shards=%d report diverged:\nserial: %s\nshard:  %s",
					bursty, shards, want, got)
			}
		}
	}
}

// TestServeKneeCalibration pins the saturation knee of the default serve
// cluster (6 client hosts, 2 servers, 2µs service time): offered load below
// the knee keeps open-loop p99 in the low hundreds of microseconds, while
// load past the knee pushes it beyond the tolerance threshold. The band
// (60k req/s healthy, 100k req/s saturated, 1ms threshold) was calibrated
// empirically; a capacity regression in the serving path moves the knee and
// trips it.
func TestServeKneeCalibration(t *testing.T) {
	threshold := int64(time.Millisecond)

	below := Serve(ServeConfig{Rate: 60_000})
	if below.Dropped != 0 || below.Replied != below.Sent {
		t.Errorf("below knee: sent=%d replied=%d dropped=%d", below.Sent, below.Replied, below.Dropped)
	}
	if p99 := below.Latency.Quantile(0.99); p99 >= threshold {
		t.Errorf("below knee: p99 = %v, want < %v", time.Duration(p99), time.Duration(threshold))
	}

	above := Serve(ServeConfig{Rate: 100_000})
	if p99 := above.Latency.Quantile(0.99); p99 <= threshold {
		t.Errorf("above knee: p99 = %v, want > %v", time.Duration(p99), time.Duration(threshold))
	}
}
