// Package experiments contains the measurement drivers and the per-table /
// per-figure harnesses that regenerate every result in the paper's
// evaluation (Tables 1-3, Figures 3-9). The cmd/unetbench binary and the
// top-level benchmarks both call into this package, so `go test -bench`
// and the CLI print the same numbers.
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
	"unet/internal/unet"
)

// RawRTT measures the raw U-Net round-trip time for size-byte messages on
// an SBA-200 pair (Figure 3, "Raw U-Net").
func RawRTT(nicp nic.Params, size, rounds int) time.Duration {
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp, Shards: shardCount(), Sync: Sync})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		panic(err)
	}
	return pr.PingPong(rounds, size)
}

// RawBandwidth measures raw U-Net streaming bandwidth (Figure 4, "Raw
// U-Net").
func RawBandwidth(nicp nic.Params, size, count int) testbed.StreamResult {
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp, Shards: shardCount(), Sync: Sync})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		panic(err)
	}
	return pr.Stream(count, size)
}

// uamPairTB builds two connected UAM nodes. The caller owns tb.Close.
func uamPairTB(cfg uam.Config) (*testbed.Testbed, *uam.UAM, *uam.UAM) {
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync})
	a, err := uam.New(tb.Hosts[0].NewProcess("am"), 0, cfg)
	if err != nil {
		panic(err)
	}
	b, err := uam.New(tb.Hosts[1].NewProcess("am"), 1, cfg)
	if err != nil {
		panic(err)
	}
	if err := uam.Connect(tb.Manager, a, b); err != nil {
		panic(err)
	}
	return tb, a, b
}

// Handler indices used by the drivers.
const (
	hEcho  = 1
	hEchoR = 2
	hNoop  = 3
)

// UAMPingPong measures the UAM request/reply round-trip time with
// size-byte payloads (Figure 3, "UAM" for ≤32 B and "UAM xfer" beyond).
func UAMPingPong(cfg uam.Config, size, rounds int) time.Duration {
	tb, a, b := uamPairTB(cfg)
	defer tb.Close()
	payload := make([]byte, size)
	// done crosses hosts — and, when sharded, goroutines. It flips only
	// after the measurement is complete, so it never perturbs timing.
	//unetlint:allow rawgo cross-shard completion flag; set once after measurement, ordered by the group's window barriers
	var done atomic.Bool
	gotReply := false
	b.RegisterHandler(hEcho, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		if err := u.Reply(p, hEchoR, arg, data); err != nil {
			panic(err)
		}
	})
	a.RegisterHandler(hEchoR, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		gotReply = true
	})
	var start, end time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done.Load() {
			if b.PollWait(p, time.Millisecond) == 0 && done.Load() {
				return
			}
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			gotReply = false
			if err := a.Request(p, 1, hEcho, uint32(i), payload); err != nil {
				panic(err)
			}
			for !gotReply {
				a.PollWait(p, time.Millisecond)
			}
		}
		end = p.Now()
		done.Store(true)
	})
	tb.Eng.Run()
	return (end - start) / time.Duration(rounds)
}

// UAMStoreBandwidth measures GAM block-store streaming bandwidth
// (Figure 4, "UAM store"): blocks of the given size are stored to the
// remote node in a loop and the total time measured (§5.2).
func UAMStoreBandwidth(cfg uam.Config, size, count int) float64 {
	tb, a, b := uamPairTB(cfg)
	defer tb.Close()
	block := make([]byte, size)
	//unetlint:allow rawgo cross-shard completion flag; set once after measurement, ordered by the group's window barriers
	var done atomic.Bool
	var elapsed time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done.Load() {
			b.PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		// Warm the pipe with one block, then measure.
		if err := a.Store(p, 1, 0, block, 0, 0); err != nil {
			panic(err)
		}
		a.Flush(p, 1)
		t0 := p.Now()
		for i := 0; i < count; i++ {
			if err := a.Store(p, 1, 0, block, 0, 0); err != nil {
				panic(err)
			}
		}
		a.Flush(p, 1)
		elapsed = p.Now() - t0
		done.Store(true)
	})
	tb.Eng.Run()
	return float64(size*count) / elapsed.Seconds() / 1e6
}

// UAMGetBandwidth measures GAM block-get streaming bandwidth (Figure 4,
// "UAM get"): a series of requests fetches blocks from the remote node
// and the caller waits until all arrive (§5.2).
func UAMGetBandwidth(cfg uam.Config, size, count int) float64 {
	tb, a, b := uamPairTB(cfg)
	defer tb.Close()
	//unetlint:allow rawgo cross-shard completion flag; set once after measurement, ordered by the group's window barriers
	var done atomic.Bool
	var elapsed time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done.Load() {
			b.PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		warm, err := a.Get(p, 1, 0, 0, size)
		if err != nil {
			panic(err)
		}
		a.WaitGet(p, warm)
		t0 := p.Now()
		tags := make([]uint32, 0, count)
		for i := 0; i < count; i++ {
			tag, err := a.Get(p, 1, 0, 0, size)
			if err != nil {
				panic(err)
			}
			tags = append(tags, tag)
		}
		for _, tag := range tags {
			a.WaitGet(p, tag)
		}
		elapsed = p.Now() - t0
		done.Store(true)
	})
	tb.Eng.Run()
	return float64(size*count) / elapsed.Seconds() / 1e6
}

// AAL5Limit is the theoretical peak payload bandwidth of the fiber for
// size-byte messages, with the 48-byte cell quantization sawtooth
// (Figure 4, "AAL-5 limit").
func AAL5Limit(size int) float64 {
	cells := (size + 8 + 47) / 48
	wire := time.Duration(cells) * 3158 * time.Nanosecond
	return float64(size) / wire.Seconds() / 1e6
}

func mustNoErr(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", what, err))
	}
}
