package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// faultScale is the scaled-down rendering used by the golden tests: small
// enough to run in seconds, large enough that every impairment model and
// recovery path actually fires.
func renderFaults() string {
	return fmt.Sprintf("%v\n%v", TableLoss(FaultSeed, 4, 30), Chaos(DefaultChaos(FaultSeed)))
}

// TestGoldenFaultDeterminism is the determinism contract of the fault
// subsystem: with a fixed seed, the full loss sweep and the chaos soak
// must render byte-identically on reruns and at every shard count — the
// impairment streams are keyed per link, never per execution layout.
func TestGoldenFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fault golden sweep is not short")
	}
	defer func(old int) { Shards = old }(Shards)

	Shards = 0
	serial := renderFaults()
	if len(serial) == 0 {
		t.Fatal("empty serial rendering")
	}
	if again := renderFaults(); again != serial {
		t.Fatalf("same-seed reruns diverged:\n--- first ---\n%s\n--- second ---\n%s", serial, again)
	}
	for _, k := range []int{1, 2, 4} {
		Shards = k
		if got := renderFaults(); got != serial {
			t.Fatalf("shards=%d diverged from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
				k, serial, got)
		}
	}
	if !strings.Contains(serial, "5.0%") {
		t.Fatalf("sweep did not reach the 5%% loss point:\n%s", serial)
	}
}

// TestLossRecoveryDelivery pins the acceptance criterion of the recovery
// paths: at ≤1% cell loss the reliable layers deliver 100% of the data
// with a bounded number of retransmissions, while raw AAL5 loses PDUs
// roughly in proportion to the cell-loss rate.
func TestLossRecoveryDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("loss recovery sweep is not short")
	}
	const count = 60

	uamDel, _, uamRetx := UAMGoodputUnderLoss(FaultSeed, 0.01, count, 1024)
	if uamDel != 1.0 {
		t.Fatalf("UAM delivered %.1f%% at 1%% cell loss, want 100%%", uamDel*100)
	}
	if uamRetx == 0 {
		t.Fatal("UAM saw no retransmissions at 1% cell loss")
	}
	// Each 1024B store is one 22-cell PDU crossing two lossy links, so at
	// 1% cell loss roughly a third of PDUs need at least one go-back-N
	// replay (which resends the whole window). That bounds retransmits
	// well under count*window.
	if uamRetx > uint64(count*8) {
		t.Fatalf("UAM retransmits = %d for %d stores: recovery not bounded", uamRetx, count)
	}

	tcpDel, _, tcpRetx := TCPGoodputUnderLoss(FaultSeed, 0.01, count*1024, 2048)
	if tcpDel != 1.0 {
		t.Fatalf("TCP delivered %.1f%% at 1%% cell loss, want 100%%", tcpDel*100)
	}
	if tcpRetx == 0 {
		t.Fatal("TCP saw no retransmissions at 1% cell loss")
	}

	rawDel, _ := RawGoodputUnderLoss(FaultSeed, 0.02, 200, 1024)
	if rawDel >= 1.0 {
		t.Fatalf("raw AAL5 delivered %.1f%% at 2%% cell loss, want visible PDU loss", rawDel*100)
	}
	// 1024B = 22 cells per PDU: expected survival (0.98)^22 ≈ 64%. Allow a
	// wide band — the point is proportional loss, not the exact binomial.
	if rawDel < 0.3 || rawDel > 0.95 {
		t.Fatalf("raw AAL5 delivered %.1f%% at 2%% cell loss, want roughly (1-p)^cells ≈ 64%%", rawDel*100)
	}
}
