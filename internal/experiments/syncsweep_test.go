package experiments

import (
	"fmt"
	"regexp"
	"testing"

	"unet/internal/sim"
)

// shardLabel is the storm header's layout annotation — the one part of the
// rendering that legitimately varies with the shard count.
var shardLabel = regexp.MustCompile(`shards=\d+`)

// TestGoldenSyncSweep is the equivalence contract of the two sharded
// synchronization protocols: the neighbor-synchronized windows (PR 9) and
// the barrier reference (PR 6) must render byte-identical output on the
// storm, serve and fault-injection fixtures at every shard count — same
// virtual times, same stats, same formatting — and both must match the
// serial rendering. Synchronization changes wall-clock time, never results.
func TestGoldenSyncSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sync golden sweep is not short")
	}
	defer func(s int, k sim.SyncKind) { Shards, Sync = s, k }(Shards, Sync)

	render := func() string {
		storm, _ := Storm(8, Shards, 40)
		storm = shardLabel.ReplaceAllString(storm, "shards=*")
		cfg := serveTestCfg()
		cfg.Shards = Shards
		cfg.Sync = Sync
		return fmt.Sprintf("%v\n%v\n%v", storm, Serve(cfg).Line(), Chaos(DefaultChaos(FaultSeed)))
	}

	Shards = 0
	serial := render()
	if len(serial) == 0 {
		t.Fatal("empty serial rendering")
	}
	for _, kind := range []sim.SyncKind{sim.SyncNeighbor, sim.SyncBarrier} {
		Sync = kind
		for _, k := range []int{1, 2, 4, 8} {
			Shards = k
			if got := render(); got != serial {
				t.Fatalf("sync=%v shards=%d diverged from serial:\n--- serial ---\n%s\n--- got ---\n%s",
					kind, k, serial, got)
			}
		}
	}
}
