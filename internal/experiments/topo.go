package experiments

import (
	"fmt"
	"strings"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/topo"
	"unet/internal/unet"
)

// TopoStorm runs the all-to-all storm of Storm on a compiled multi-switch
// topology instead of the single-switch cluster: kind/racks/perRack/spine
// select the generated shape (see topo.Generate), shard placement follows
// the topology (each rack with its top-of-rack switch on one shard), and
// every message crosses the stages of the fabric. The rendering is
// byte-identical at every shard count and under both sync protocols — the
// golden topo sweep pins this, extending the single-switch equivalence
// contract to multi-hop fabrics.
func TopoStorm(kind string, racks, perRack, spine, shards, count int) (string, sim.GroupProfile) {
	spec, err := topo.Generate(kind, racks, perRack, spine)
	mustNoErr(err, "generate topology")
	tb := testbed.New(testbed.Config{Topology: spec, Shards: shards, Sync: Sync})
	defer tb.Close()
	mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	if err != nil {
		panic(err)
	}
	res, end := mesh.Storm(count, 1024)

	var b strings.Builder
	fmt.Fprintf(&b, "topo storm: topo=%s hosts=%d switches=%d stages=%d shards=%d msgs=%d×1KB end=%v\n",
		spec.Kind, tb.Topo.Size(), len(spec.Switches), spec.Stages(), shards, count, end)
	for i, r := range res {
		fmt.Fprintf(&b, "  host%d sent=%d recv=%d last=%v\n", i, r.Sent, r.Received, r.LastRecv)
	}
	fmt.Fprintf(&b, "  trunks=%d qdrops=%d undelivered=%d\n",
		tb.Topo.TrunkCount(), tb.Topo.TotalQueueDrops(), tb.Topo.UndeliveredCells())
	var prof sim.GroupProfile
	if g := tb.Eng.Group(); g != nil {
		prof = g.Profile()
	}
	return b.String(), prof
}

// ClosStorm is the headline multi-switch configuration: an all-to-all
// storm over a 2-stage Clos of racks×perRack hosts with spine spines.
func ClosStorm(racks, perRack, spine, shards, count int) (string, sim.GroupProfile) {
	return TopoStorm("clos2", racks, perRack, spine, shards, count)
}
