package experiments

import (
	"runtime"
	"sync"
)

// MaxParallel caps how many sweep points run concurrently. 0 (the default)
// means one worker per GOMAXPROCS; 1 forces serial execution. Sweep points
// are embarrassingly parallel — every driver builds its own sim.Engine with
// its own seed — and callers store results by point index, so the output is
// bit-identical at any parallelism (the golden determinism test checks
// serial against parallel).
var MaxParallel = 0

// ParallelPoints runs fn(0), …, fn(n-1) across a bounded worker pool and
// returns when all have finished. fn must not touch state shared with other
// points except its own result slot.
//
//unetlint:allow rawgo wall-clock worker pool over independent engines; each point owns its seed and result slot, so output is order-free (golden tests assert serial == parallel)
func ParallelPoints(n int, fn func(i int)) {
	workers := MaxParallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
