package experiments

import (
	"fmt"
	"time"

	"unet/internal/ip/tcp"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/stats"
	"unet/internal/testbed"
	"unet/internal/uam"
	"unet/internal/unet"
)

// Drivers for the ablation benchmarks (DESIGN.md §5): variations of one
// design choice at a time against the calibrated default.

// TCPBandwidthMSS is TCPBandwidth with an explicit maximum segment size.
func TCPBandwidthMSS(kind PathKind, window, mss, writeSize, total int) float64 {
	tb, ca, cb := ipPairSock(kind, window+(16<<10))
	defer tb.Close()
	params := tcpParamsFor(kind, window)
	params.MSS = mss
	a := tcp.New(ca, 5000, 80, params)
	bConn := tcp.New(cb, 80, 5000, params)
	return runTCPTransfer(tb, a, bConn, writeSize, total)
}

// TCPRTTDelayedAck measures U-Net TCP round trips with the BSD delayed-ack
// strategy re-enabled — the §7.8 ablation showing why the paper disabled
// it.
func TCPRTTDelayedAck(size, rounds int) time.Duration {
	tb, ca, cb := ipPair(PathUNet)
	defer tb.Close()
	params := tcpParamsFor(PathUNet, 0)
	params.DelayedAck = true
	a := tcp.New(ca, 5000, 80, params)
	bConn := tcp.New(cb, 80, 5000, params)
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := bConn.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		for i := 0; i < rounds+1; i++ {
			if !readFull(p, bConn, buf) {
				return
			}
			bConn.Write(p, buf)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			a.Write(p, buf)
			if !readFull(p, a, buf) {
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

// runTCPTransfer is the shared bulk-transfer skeleton.
func runTCPTransfer(tb *testbed.Testbed, a, b *tcp.Conn, writeSize, total int) float64 {
	var start, end time.Duration
	got := 0
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 120*time.Second
		for got < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 500*time.Millisecond)
			if err != nil {
				return
			}
			if n > 0 {
				got += n
				end = p.Now()
			}
		}
		for k := 0; k < 300; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		start = p.Now()
		buf := make([]byte, writeSize)
		for off := 0; off < total; off += writeSize {
			if err := a.Write(p, buf); err != nil {
				return
			}
		}
		a.Flush(p, 100*time.Second)
	})
	tb.Eng.Run()
	if end <= start {
		return 0
	}
	return float64(got) / (end - start).Seconds() / 1e6
}

// TCPShortTransferTime measures the elapsed time of a short one-way U-Net
// TCP transfer (64 KB) with and without delayed acknowledgments. With
// delayed acks the slow-start ramp stalls on the 200 ms ack timer — the
// §7.8 justification for disabling them: "the available send window is
// updated in the most timely manner possible".
func TCPShortTransferTime(delayed bool) time.Duration {
	tb, ca, cb := ipPair(PathUNet)
	defer tb.Close()
	params := tcpParamsFor(PathUNet, 0)
	params.DelayedAck = delayed
	a := tcp.New(ca, 5000, 80, params)
	bConn := tcp.New(cb, 80, 5000, params)
	const total = 64 << 10
	var start, end time.Duration
	got := 0
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := bConn.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, total)
		deadline := p.Now() + 5*time.Second
		for got < total && p.Now() < deadline {
			n, err := bConn.Read(p, buf, 500*time.Millisecond)
			if err != nil {
				return
			}
			if n > 0 {
				got += n
				end = p.Now()
			}
		}
		for k := 0; k < 300; k++ {
			bConn.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		start = p.Now()
		a.Write(p, make([]byte, total))
		a.Flush(p, 5*time.Second)
	})
	tb.Eng.Run()
	return end - start
}

// EmulatedEndpointRTT measures a ping-pong over kernel-emulated endpoints
// (§3.5): every operation traps into the kernel and crosses an extra copy,
// in contrast to the 65 µs of real endpoints.
func EmulatedEndpointRTT(size, rounds int) time.Duration {
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()
	for _, h := range tb.Hosts {
		mustNoErr(h.Kernel.EnableEmulation(nil), "enable emulation")
	}
	ea, err := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, tb.Hosts[0].NewProcess("app"))
	mustNoErr(err, "emu endpoint")
	eb, err := tb.Hosts[1].Kernel.CreateEmuEndpoint(nil, tb.Hosts[1].NewProcess("app"))
	mustNoErr(err, "emu endpoint")
	chA, chB, err := unet.EmuConnect(nil, tb.Manager, ea, eb)
	mustNoErr(err, "emu connect")

	payload := make([]byte, size)
	var rtt time.Duration
	tb.Hosts[1].Spawn("echo", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			r := eb.Recv(p)
			eb.Send(p, chB, r.Data)
		}
	})
	tb.Hosts[0].Spawn("ping", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			if err := ea.Send(p, chA, payload); err != nil {
				panic(err)
			}
			ea.Recv(p)
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

// DirectAccessRTT compares base-level buffered delivery with direct-access
// deposits (§3.6) for size-byte messages, returning both round-trip times
// in µs.
func DirectAccessRTT(size, rounds int) (baseUS, directUS float64) {
	measure := func(direct bool) float64 {
		tb := testbed.New(testbed.Config{Hosts: 2})
		defer tb.Close()
		cfg := unet.EndpointConfig{DirectAccess: true}
		pr, err := tb.NewPair(0, 1, cfg, 16)
		mustNoErr(err, "pair")
		const dstOff = 200 << 10
		mkDesc := func(ch unet.ChannelID, stage int) unet.SendDesc {
			d := unet.SendDesc{Channel: ch, Offset: stage, Length: size}
			if direct {
				d.Direct = true
				d.DstOffset = dstOff
			}
			return d
		}
		// consume models the application integrating the data: base-level
		// delivery needs a copy out of the receive buffers, while a
		// direct-access deposit already sits at its final offset (§3.6's
		// "true zero copy").
		scratch := make([]byte, size)
		consume := func(p *sim.Proc, ep *unet.Endpoint, rd unet.RecvDesc) {
			if rd.Direct {
				return
			}
			n := 0
			for _, off := range rd.Buffers {
				chunk := rd.Length - n
				if bs := ep.Config().RecvBufSize; chunk > bs {
					chunk = bs
				}
				ep.ReadBuf(p, off, scratch[n:n+chunk])
				n += chunk
			}
			testbed.Recycle(p, ep, rd)
		}
		var rtt time.Duration
		pr.EpB.Host().Spawn("echo", func(p *sim.Proc) {
			for i := 0; i < rounds+1; i++ {
				rd := pr.EpB.Recv(p)
				consume(p, pr.EpB, rd)
				pr.EpB.SendBlock(p, mkDesc(pr.ChB, pr.StageB))
			}
		})
		pr.EpA.Host().Spawn("ping", func(p *sim.Proc) {
			var start time.Duration
			for i := 0; i < rounds+1; i++ {
				if i == 1 {
					start = p.Now()
				}
				pr.EpA.SendBlock(p, mkDesc(pr.ChA, pr.StageA))
				rd := pr.EpA.Recv(p)
				consume(p, pr.EpA, rd)
			}
			rtt = (p.Now() - start) / time.Duration(rounds)
		})
		tb.Eng.Run()
		return float64(rtt) / float64(time.Microsecond)
	}
	return measure(false), measure(true)
}

// AblationTable regenerates the DESIGN.md §5 ablation summary as one text
// table (the same measurements as the BenchmarkAblation_* targets).
func AblationTable(rounds int) *stats.Table {
	t := stats.NewTable("Ablations: one design choice at a time")
	t.Header("Ablation", "Default", "Ablated")

	fp := nic.SBA200Params()
	noFP := nic.SBA200Params()
	noFP.SingleCellMax = 0
	t.Row("single-cell fast path off (§4.2.2), 32B RTT µs",
		fmt.Sprintf("%.0f", stats.US(RawRTT(fp, 32, rounds))),
		fmt.Sprintf("%.0f", stats.US(RawRTT(noFP, 32, rounds))))

	base, direct := DirectAccessRTT(2048, rounds)
	t.Row("direct-access deposit (§3.6), 2KB RTT µs",
		fmt.Sprintf("%.0f", base), fmt.Sprintf("%.0f", direct))

	t.Row("kernel-emulated endpoints (§3.5), 32B RTT µs",
		fmt.Sprintf("%.0f", stats.US(RawRTT(fp, 32, rounds))),
		fmt.Sprintf("%.0f", stats.US(EmulatedEndpointRTT(32, rounds))))

	t.Row("UDP checksum (§7.6), 1KB RTT µs",
		fmt.Sprintf("%.0f", stats.US(UDPRTT(PathUNet, 1024, rounds))),
		fmt.Sprintf("%.0f", stats.US(UNetUDPNoChecksumRTT(1024, rounds))))

	t.Row("UAM window 8 vs 1 (§5.1.1), 4KB store MB/s",
		fmt.Sprintf("%.1f", UAMStoreBandwidth(uam.Config{Window: 8}, 4096, 100)),
		fmt.Sprintf("%.1f", UAMStoreBandwidth(uam.Config{Window: 1}, 4096, 100)))

	t.Row("TCP MSS 2048 vs 512 (§7.8), MB/s",
		fmt.Sprintf("%.1f", TCPBandwidth(PathUNet, 8<<10, 8192, 1<<20)),
		fmt.Sprintf("%.1f", TCPBandwidthMSS(PathUNet, 8<<10, 512, 8192, 1<<20)))

	t.Row("TCP delayed acks off vs on (§7.8), 64KB transfer µs",
		fmt.Sprintf("%.0f", stats.US(TCPShortTransferTime(false))),
		fmt.Sprintf("%.0f", stats.US(TCPShortTransferTime(true))))
	return t
}
