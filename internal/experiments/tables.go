package experiments

import (
	"fmt"
	"time"

	"unet/internal/machine"
	"unet/internal/nic"
	"unet/internal/stats"
	"unet/internal/uam"
)

// Table1 reproduces the SBA-100 cost breakup (paper Table 1): the
// trap-level one-way time, the AAL5 send/receive software overheads (with
// their CRC shares), the summed one-way time — plus the measured
// round-trip and 1 KB streaming bandwidth the breakdown predicts.
func Table1() *stats.Table {
	p := nic.SBA100Params()
	rtt := RawRTT(p, 32, 50)
	bw := RawBandwidth(p, 1024, 300)

	t := stats.NewTable("Table 1: SBA-100 cost breakup for a single-cell round-trip (AAL5)")
	t.Header("Operation", "Time (µs)")
	oneWayWire := stats.US(rtt)/2 - stats.US(p.TxPerCell) - stats.US(p.RxPerCell)
	t.Row("1-way send and rcv across switch (at trap level)", fmt.Sprintf("%.0f", oneWayWire))
	t.Row("Send overhead (AAL5)", fmt.Sprintf("%.0f  (%.0f%% CRC)", stats.US(p.TxPerCell), nic.SBA100CRCShareTx*100))
	t.Row("Receive overhead (AAL5)", fmt.Sprintf("%.0f  (%.0f%% CRC)", stats.US(p.RxPerCell), nic.SBA100CRCShareRx*100))
	t.Row("Total (one-way)", fmt.Sprintf("%.0f", stats.US(rtt)/2))
	t.Row("Measured round-trip", fmt.Sprintf("%.1f", stats.US(rtt)))
	t.Row("Measured bandwidth @1KB (MB/s)", fmt.Sprintf("%.2f", bw.MBps()))
	return t
}

// Table2 reproduces the machine comparison (paper Table 2): CPU speed,
// per-message overhead, round-trip latency and network bandwidth for the
// CM-5, the Meiko CS-2 and the U-Net ATM cluster — parameters for the
// models, measurements for all three.
func Table2(rounds int) *stats.Table {
	t := stats.NewTable("Table 2: CM-5, Meiko CS-2 and U-Net ATM cluster characteristics")
	t.Header("Machine", "CPU (rel. 60MHz SS)", "msg overhead (µs)", "round-trip (µs)", "net bandwidth (MB/s)")

	type row struct {
		kind     MachineKind
		cpu      float64
		overhead float64
	}
	cm5, meiko := machine.CM5Params(), machine.MeikoParams()
	rows := []row{
		{MachineCM5, cm5.CPU, stats.US(cm5.OSend)},
		{MachineMeiko, meiko.CPU, stats.US(meiko.OSend)},
		{MachineUNetATM, 0.92, 6},
	}
	for _, r := range rows {
		rtt := SplitCRPCRTT(r.kind, rounds)
		bw := SplitCBulkBandwidth(r.kind, 16384, 60)
		t.Row(r.kind.String(),
			fmt.Sprintf("%.2f", r.cpu),
			fmt.Sprintf("%.0f", r.overhead),
			fmt.Sprintf("%.0f", stats.US(rtt)),
			fmt.Sprintf("%.1f", bw))
	}
	return t
}

// Table3 reproduces the protocol summary (paper Table 3): round-trip
// latency for small messages and bandwidth with 4 KB packets for every
// layer built on U-Net.
func Table3(rounds, streamCount int) *stats.Table {
	t := stats.NewTable("Table 3: U-Net latency and bandwidth summary")
	t.Header("Protocol", "Round-trip latency (µs)", "Bandwidth 4K packets (Mbit/s)")

	type row struct {
		name string
		rtt  time.Duration
		mbps float64
	}
	rows := make([]row, 5)
	ParallelPoints(len(rows), func(i int) {
		switch i {
		case 0:
			rows[i] = row{"Raw AAL5",
				RawRTT(nic.SBA200Params(), 32, rounds),
				RawBandwidth(nic.SBA200Params(), 4096, streamCount).MBps()}
		case 1:
			rows[i] = row{"Active Msgs",
				UAMPingPong(uam.Config{}, 16, rounds),
				UAMStoreBandwidth(uam.Config{}, 4096, streamCount)}
		case 2:
			rtt := UDPRTT(PathUNet, 4, rounds)
			_, bw := UDPBandwidth(PathUNet, 4096, streamCount)
			rows[i] = row{"UDP", rtt, bw}
		case 3:
			rows[i] = row{"TCP",
				TCPRTT(PathUNet, 4, rounds),
				TCPBandwidth(PathUNet, 8<<10, 4096, 1<<20)}
		case 4:
			rows[i] = row{"Split-C store",
				SplitCRPCRTT(MachineUNetATM, rounds),
				SplitCBulkBandwidth(MachineUNetATM, 4096, streamCount)}
		}
	})
	for _, r := range rows {
		t.Row(r.name, fmt.Sprintf("%.0f", stats.US(r.rtt)), fmt.Sprintf("%.0f", r.mbps*8))
	}
	return t
}
