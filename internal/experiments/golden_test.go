package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// TestGoldenDeterminism is the determinism invariant behind every wall-clock
// optimization in the fast path (pooled events, cell-train batching,
// arithmetic NIC cost accounting, parallel sweeps): rendering Table 3 and
// Figure 4 twice with the same seeds must produce byte-identical output —
// same virtual times, same stats series, same formatting.
func TestGoldenDeterminism(t *testing.T) {
	render := func() string {
		return fmt.Sprintf("%v\n%v", Table3(10, 60), Fig4(40))
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("same-seed reruns diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty rendering")
	}
}

// TestGoldenShardSweep is the determinism contract of the sharded engine:
// partitioning a simulation's hosts across shard goroutines must be
// invisible in the results. Figure 4 and Table 3 rendered at every shard
// count — including degenerate single-shard groups and oversubscribed
// counts beyond GOMAXPROCS — must be byte-identical to the serial
// rendering: same virtual times, same stats, same formatting.
func TestGoldenShardSweep(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)

	Shards = 0
	serial := fmt.Sprintf("%v\n%v", Table3(10, 60), Fig4(40))
	if len(serial) == 0 {
		t.Fatal("empty serial rendering")
	}
	for _, k := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} { //unetlint:allow rawgo the shard sweep deliberately includes the machine's core count
		Shards = k
		if got := fmt.Sprintf("%v\n%v", Table3(10, 60), Fig4(40)); got != serial {
			t.Fatalf("shards=%d diverged from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
				k, serial, got)
		}
	}
}

// TestGoldenParallelMatchesSerial checks that the sweep worker pool is
// invisible in the output: every parallelism level must produce the bytes
// the serial sweep produces.
func TestGoldenParallelMatchesSerial(t *testing.T) {
	defer func(old int) { MaxParallel = old }(MaxParallel)

	MaxParallel = 1
	serial := fmt.Sprintf("%v\n%v", Fig4(40), Fig3(10))
	for _, workers := range []int{2, 8} {
		MaxParallel = workers
		if got := fmt.Sprintf("%v\n%v", Fig4(40), Fig3(10)); got != serial {
			t.Fatalf("parallel=%d diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}
