package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"unet/internal/faults"
	"unet/internal/ip/tcp"
	"unet/internal/sim"
	"unet/internal/stats"
	"unet/internal/testbed"
	"unet/internal/uam"
	"unet/internal/unet"
)

// LossRates is the cell-loss sweep for the goodput-under-loss experiments:
// 0 → 5%. The paper's networks are nearly loss-free (§5.1: cells are
// "practically never lost"), so the interesting regime for the recovery
// protocols is the low-percent range where Romanow & Floyd's observation
// bites — one lost cell costs a whole PDU.
var LossRates = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}

// FaultSeed is the default seed for the fault experiments; every impairment
// stream derives from it per link, so all results are reproducible and
// shard-count invariant.
const FaultSeed int64 = 42

// lossPlan is a pure i.i.d. cell-loss plan.
func lossPlan(seed int64, rate float64) *faults.Plan {
	return &faults.Plan{Seed: seed, LossRate: rate}
}

// LossPoint is one row of the goodput-vs-loss sweep.
type LossPoint struct {
	Rate                  float64
	RawDelivered, RawMBps float64
	UAMRTT                time.Duration
	UAMMBps               float64
	UAMRetx               uint64
	TCPRTT                time.Duration
	TCPDelivered, TCPMBps float64
	TCPRetx               uint64
}

// RawGoodputUnderLoss streams count size-byte messages over a lossy fabric
// with no recovery protocol: the delivered fraction falls with the PDU
// loss rate (≈ 1-(1-p)^cells) and the surviving goodput with it.
func RawGoodputUnderLoss(seed int64, rate float64, count, size int) (delivered, mbps float64) {
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync, Faults: lossPlan(seed, rate)})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	mustNoErr(err, "raw loss pair")
	res := pr.Stream(count, size)
	return float64(res.Delivered) / float64(count), res.MBps()
}

// uamPairFaultTB is uamPairTB over an impaired fabric.
func uamPairFaultTB(cfg uam.Config, pl *faults.Plan) (*testbed.Testbed, *uam.UAM, *uam.UAM) {
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync, Faults: pl})
	a, err := uam.New(tb.Hosts[0].NewProcess("am"), 0, cfg)
	mustNoErr(err, "uam node 0")
	b, err := uam.New(tb.Hosts[1].NewProcess("am"), 1, cfg)
	mustNoErr(err, "uam node 1")
	mustNoErr(uam.Connect(tb.Manager, a, b), "uam connect")
	return tb, a, b
}

// UAMRTTUnderLoss measures the UAM request/reply round trip over a lossy
// fabric: lost requests or replies are recovered by the go-back-N
// retransmission timer, which shows up as a loss-proportional tail on the
// mean.
func UAMRTTUnderLoss(seed int64, rate float64, size, rounds int) (rtt time.Duration, retx uint64) {
	tb, a, b := uamPairFaultTB(uam.Config{}, lossPlan(seed, rate))
	defer tb.Close()
	payload := make([]byte, size)
	//unetlint:allow rawgo cross-shard completion flag; set once after measurement, ordered by the group's window barriers
	var done atomic.Bool
	gotReply := false
	b.RegisterHandler(hEcho, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		if err := u.Reply(p, hEchoR, arg, data); err != nil && !errors.Is(err, uam.ErrPeerDead) {
			panic(err)
		}
	})
	a.RegisterHandler(hEchoR, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		gotReply = true
	})
	var start, end time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done.Load() {
			b.PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		deadline := p.Now() + time.Duration(rounds+1)*100*time.Millisecond
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			gotReply = false
			if err := a.Request(p, 1, hEcho, uint32(i), payload); err != nil {
				break
			}
			for !gotReply && p.Now() < deadline {
				a.PollWait(p, time.Millisecond)
			}
		}
		end = p.Now()
		done.Store(true)
	})
	tb.Eng.Run()
	return (end - start) / time.Duration(rounds), a.Stats().Retransmits + b.Stats().Retransmits
}

// UAMGoodputUnderLoss stores count size-byte blocks through the reliable
// UAM layer over a lossy fabric. At low-percent loss rates delivery stays
// at 100% — the protocol converts loss into retransmissions and reduced
// goodput, not missing data. At the high end of the sweep whole-PDU loss
// is so amplified (every cell of every segment must survive two lossy
// links) that the retry budget can run out and declare the peer dead.
func UAMGoodputUnderLoss(seed int64, rate float64, count, size int) (delivered, mbps float64, retx uint64) {
	tb, a, b := uamPairFaultTB(uam.Config{}, lossPlan(seed, rate))
	defer tb.Close()
	block := make([]byte, size)
	//unetlint:allow rawgo cross-shard completion flag; set once after measurement, ordered by the group's window barriers
	var done atomic.Bool
	var elapsed time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done.Load() {
			b.PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < count; i++ {
			if err := a.Store(p, 1, 0, block, 0, 0); err != nil {
				break
			}
		}
		a.FlushTimeout(p, 1, time.Duration(count)*10*time.Millisecond+500*time.Millisecond)
		elapsed = p.Now() - t0
		done.Store(true)
	})
	tb.Eng.Run()
	segs := (size + a.Config().BulkMax - 1) / a.Config().BulkMax
	delivered = float64(b.Stats().StoreSegs) / float64(count*segs)
	if elapsed > 0 {
		mbps = float64(size*count) / elapsed.Seconds() / 1e6
	}
	return delivered, mbps, a.Stats().Retransmits
}

// tcpLossPair builds a U-Net TCP connection pair over an impaired fabric.
func tcpLossPair(pl *faults.Plan) (*testbed.Testbed, *tcp.Conn, *tcp.Conn) {
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync, Faults: pl})
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	mustNoErr(err, "tcp loss pair")
	return tb, tcp.New(ca, 5000, 80, tcp.DefaultParams()), tcp.New(cb, 80, 5000, tcp.DefaultParams())
}

// TCPRTTUnderLoss measures the TCP echo round trip over a lossy fabric.
func TCPRTTUnderLoss(seed int64, rate float64, size, rounds int) time.Duration {
	tb, a, b := tcpLossPair(lossPlan(seed, rate))
	defer tb.Close()
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		for i := 0; i < rounds+1; i++ {
			if !readFull(p, b, buf) {
				return
			}
			if b.Write(p, buf) != nil {
				return
			}
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			if a.Write(p, buf) != nil {
				return
			}
			if !readFull(p, a, buf) {
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

// TCPGoodputUnderLoss transfers total bytes over a lossy fabric. A single
// lost cell voids a whole 2 KB segment at the AAL5 CRC (the §7.8 MSS
// remark), so cell loss is amplified ~40× at the segment level; past a few
// percent the retry budget can run out and the transfer reports partial
// delivery.
func TCPGoodputUnderLoss(seed int64, rate float64, total, writeSize int) (delivered, mbps float64, retx uint64) {
	tb, a, b := tcpLossPair(lossPlan(seed, rate))
	defer tb.Close()
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i*13 + i>>8)
	}
	received := 0
	var t0, t1 time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 20*time.Second
		for received < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 50*time.Millisecond)
			if err != nil {
				break
			}
			received += n
			t1 = p.Now()
		}
		for k := 0; k < 50; k++ { // ack the tail
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		t0 = p.Now()
		for off := 0; off < total; off += writeSize {
			hi := off + writeSize
			if hi > total {
				hi = total
			}
			if a.Write(p, src[off:hi]) != nil {
				return
			}
		}
		a.Flush(p, 20*time.Second)
	})
	tb.Eng.Run()
	delivered = float64(received) / float64(total)
	if t1 > t0 {
		mbps = float64(received) / (t1 - t0).Seconds() / 1e6
	}
	st := a.Stats()
	return delivered, mbps, st.Retransmits + st.FastRetransmits
}

// LossSweep runs the full goodput/RTT-vs-loss sweep at the given scale.
func LossSweep(seed int64, rounds, count int) []LossPoint {
	pts := make([]LossPoint, len(LossRates))
	ParallelPoints(len(LossRates), func(i int) {
		rate := LossRates[i]
		pts[i].Rate = rate
		pts[i].RawDelivered, pts[i].RawMBps = RawGoodputUnderLoss(seed, rate, count, 1024)
		pts[i].UAMRTT, _ = UAMRTTUnderLoss(seed, rate, 32, rounds)
		_, pts[i].UAMMBps, pts[i].UAMRetx = UAMGoodputUnderLoss(seed, rate, count, 1024)
		pts[i].TCPRTT = TCPRTTUnderLoss(seed, rate, 32, rounds)
		pts[i].TCPDelivered, pts[i].TCPMBps, pts[i].TCPRetx = TCPGoodputUnderLoss(seed, rate, count*1024, 2048)
	})
	return pts
}

// TableLoss renders the goodput-under-loss sweep: raw AAL5 loses PDUs in
// proportion to the cell-loss rate while the reliable layers keep
// delivering at the cost of retransmissions, latency tails and goodput.
func TableLoss(seed int64, rounds, count int) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Goodput and RTT under cell loss (seed %d)", seed))
	t.Header("loss", "raw del", "raw MB/s", "UAM RTT µs", "UAM MB/s", "UAM retx", "TCP RTT µs", "TCP del", "TCP MB/s", "TCP retx")
	for _, pt := range LossSweep(seed, rounds, count) {
		t.Row(
			fmt.Sprintf("%.1f%%", pt.Rate*100),
			fmt.Sprintf("%.1f%%", pt.RawDelivered*100),
			fmt.Sprintf("%.1f", pt.RawMBps),
			fmt.Sprintf("%.0f", float64(pt.UAMRTT)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", pt.UAMMBps),
			fmt.Sprintf("%d", pt.UAMRetx),
			fmt.Sprintf("%.0f", float64(pt.TCPRTT)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f%%", pt.TCPDelivered*100),
			fmt.Sprintf("%.1f", pt.TCPMBps),
			fmt.Sprintf("%d", pt.TCPRetx),
		)
	}
	return t
}

// ChaosConfig parameterizes the chaos soak: an all-to-all storm on the
// 8-host mesh with every impairment model active at once.
type ChaosConfig struct {
	Hosts int
	Count int // messages per host
	Size  int
	Plan  faults.Plan
}

// DefaultChaos is the standard chaos soak: moderate i.i.d. loss, bursty
// Gilbert-Elliott loss, payload and header corruption, duplication,
// bounded jitter, periodic link flaps and a finite switch output queue —
// all seeded, all deterministic.
func DefaultChaos(seed int64) ChaosConfig {
	return ChaosConfig{
		Hosts: 8,
		Count: 40,
		Size:  1024,
		Plan: faults.Plan{
			Seed:             seed,
			LossRate:         0.002,
			BurstPGB:         0.001,
			BurstPBG:         0.25,
			BurstLoss:        1,
			CorruptRate:      0.001,
			HdrCorruptRate:   0.0005,
			DupRate:          0.001,
			JitterRate:       0.01,
			JitterBound:      10 * time.Microsecond,
			FlapPeriod:       20 * time.Millisecond,
			FlapDown:         400 * time.Microsecond,
			FlapOffset:       3 * time.Millisecond,
			SwitchQueueCells: 64,
		},
	}
}

// Chaos runs the seeded chaos soak and reports per-host delivery alongside
// the impairment and drop accounting from every layer: injected faults,
// switch queue tail-drops and NIC CRC rejections. The output is
// deterministic for a given seed and identical at any shard count.
func Chaos(cfg ChaosConfig) *stats.Table {
	tb := testbed.New(testbed.Config{Hosts: cfg.Hosts, Shards: shardCount(), Sync: Sync, Faults: &cfg.Plan})
	defer tb.Close()
	m, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	mustNoErr(err, "chaos mesh")
	res, end := m.Storm(cfg.Count, cfg.Size)

	t := stats.NewTable(fmt.Sprintf("Chaos soak: %d hosts, %d×%dB all-to-all (seed %d)",
		cfg.Hosts, cfg.Count, cfg.Size, cfg.Plan.Seed))
	t.Header("host", "sent", "received", "last recv µs")
	sent, recv := 0, 0
	for i, r := range res {
		t.Row(fmt.Sprintf("%d", i), fmt.Sprintf("%d", r.Sent), fmt.Sprintf("%d", r.Received),
			fmt.Sprintf("%.0f", float64(r.LastRecv)/float64(time.Microsecond)))
		sent += r.Sent
		recv += r.Received
	}
	ft := tb.FaultTotal()
	var crc, badPDUs uint64
	for _, d := range tb.Devices {
		crc += d.Stats().CrcDrops
		badPDUs += d.Stats().BadPDUs
	}
	t.Row("total", fmt.Sprintf("%d", sent), fmt.Sprintf("%d", recv),
		fmt.Sprintf("%.0f", float64(end)/float64(time.Microsecond)))
	t.Row("faults", fmt.Sprintf("cells %d", ft.Cells),
		fmt.Sprintf("drop %d+%d", ft.Dropped, ft.DownDrops),
		fmt.Sprintf("corrupt %d/%d dup %d delay %d", ft.Corrupted, ft.HdrDamage, ft.Duplicate, ft.Delayed))
	t.Row("drops", fmt.Sprintf("switchq %d", tb.Fabric.Switch.TotalQueueDrops()),
		fmt.Sprintf("crc %d", crc), fmt.Sprintf("badpdu %d", badPDUs))
	return t
}
