package experiments

import (
	"runtime"

	"unet/internal/sim"
)

// Shards selects the testbed execution layout for the pair experiments:
// 0 runs each simulation serially on one engine (the default); k ≥ 2 places
// each host on its own shard engine, run on parallel goroutines under the
// conservative window protocol (internal/sim shard.go). Negative values
// mean GOMAXPROCS. Results are byte-identical at any setting — sharding
// changes wall-clock time, never virtual time; the golden shard-sweep test
// enforces this.
//
// Experiments whose model is inherently single-engine keep running
// serially regardless: the kernel/Ethernet path (its shared-medium Ethernet
// model couples both hosts on one engine), the Split-C machine sweeps, and
// the machine comparison tables.
var Shards = 0

// Sync selects the sharded synchronization protocol for every experiment
// driver that honors Shards (the zero value is sim.SyncNeighbor). Results
// are byte-identical across both protocols at every shard count — the
// golden sync sweep pins the equivalence — so this knob, like Shards,
// changes wall-clock behavior only.
var Sync sim.SyncKind

// shardCount resolves the Shards knob to a concrete shard count.
func shardCount() int {
	if Shards < 0 {
		return runtime.GOMAXPROCS(0) //unetlint:allow rawgo reads core count to size the shard fleet; outputs are shard-count-invariant by the determinism guarantee
	}
	return Shards
}
