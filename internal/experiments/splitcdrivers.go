package experiments

import (
	"time"

	"unet/internal/machine"
	"unet/internal/sim"
	"unet/internal/splitc"
	"unet/internal/splitc/apps"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// MachineKind selects a Split-C target machine (Table 2).
type MachineKind int

// The three machines of §6.
const (
	MachineCM5 MachineKind = iota
	MachineMeiko
	MachineUNetATM
)

func (m MachineKind) String() string {
	switch m {
	case MachineCM5:
		return "CM-5"
	case MachineMeiko:
		return "Meiko CS-2"
	default:
		return "U-Net ATM"
	}
}

// splitcNodes builds n Split-C nodes on the requested machine. The caller
// owns close().
func splitcNodes(kind MachineKind, n int) (nodes []*splitc.Node, close func()) {
	switch kind {
	case MachineUNetATM:
		tb := testbed.New(testbed.Config{Hosts: n})
		ams := make([]*uam.UAM, n)
		for i := 0; i < n; i++ {
			var err error
			ams[i], err = uam.New(tb.Hosts[i].NewProcess("splitc"), i, uam.Config{MaxPeers: n})
			mustNoErr(err, "uam node")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				mustNoErr(uam.Connect(tb.Manager, ams[i], ams[j]), "uam connect")
			}
		}
		nodes = make([]*splitc.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = splitc.NewNode(splitc.NewUAMTransport(ams[i], tb.Hosts[i], n))
		}
		return nodes, tb.Close
	default:
		e := sim.New(1)
		pm := machine.CM5Params()
		if kind == MachineMeiko {
			pm = machine.MeikoParams()
		}
		m := machine.New(e, pm, n)
		nodes = make([]*splitc.Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = splitc.NewNode(m.Node(i))
		}
		return nodes, e.Shutdown
	}
}

// SplitCScale selects the benchmark problem sizes.
type SplitCScale struct {
	Procs int
	Sort  apps.SortConfig
	MM    apps.MMConfig
	CC    apps.CCConfig
	CG    apps.CGConfig
}

// QuickScale runs in seconds of wall time (default for tests/benches).
func QuickScale() SplitCScale {
	return SplitCScale{
		Procs: 8,
		Sort:  apps.SortConfig{KeysPerNode: 4096, Oversample: 64, Seed: 1},
		MM:    apps.MMConfig{Grid: 4, Block: 32},
		CC:    apps.CCConfig{VerticesPerNode: 1024, Degree: 4, Seed: 3},
		CG:    apps.CGConfig{Grid: 64, Iters: 25},
	}
}

// PaperScale matches §6's problem sizes (4M keys, 128² blocks).
func PaperScale() SplitCScale {
	return SplitCScale{
		Procs: 8,
		Sort:  apps.PaperSortConfig(),
		MM:    apps.PaperMMConfig(),
		CC:    apps.PaperCCConfig(),
		CG:    apps.PaperCGConfig(),
	}
}

// BenchResult is one benchmark on one machine.
type BenchResult struct {
	Machine MachineKind
	Name    string
	Time    time.Duration
	Comm    time.Duration
	Compute time.Duration
}

// SplitCBenchNames lists the seven §6 applications in figure order.
var SplitCBenchNames = []string{
	"matrix multiply",
	"sample sort (small msg)",
	"sample sort (bulk)",
	"radix sort (small msg)",
	"radix sort (bulk)",
	"connected components",
	"conjugate gradient",
}

// RunSplitCBench runs one named benchmark on one machine.
func RunSplitCBench(kind MachineKind, name string, sc SplitCScale) BenchResult {
	nodes, close := splitcNodes(kind, sc.Procs)
	defer close()
	var res apps.Result
	switch name {
	case "matrix multiply":
		res, _ = apps.RunMM(nodes, sc.MM)
	case "sample sort (small msg)":
		res, _ = apps.RunSampleSort(nodes, sc.Sort, false)
	case "sample sort (bulk)":
		res, _ = apps.RunSampleSort(nodes, sc.Sort, true)
	case "radix sort (small msg)":
		res, _ = apps.RunRadixSort(nodes, sc.Sort, false)
	case "radix sort (bulk)":
		res, _ = apps.RunRadixSort(nodes, sc.Sort, true)
	case "connected components":
		res, _ = apps.RunCC(nodes, sc.CC)
	case "conjugate gradient":
		res, _ = apps.RunCG(nodes, sc.CG)
	default:
		panic("experiments: unknown Split-C benchmark " + name)
	}
	return BenchResult{
		Machine: kind,
		Name:    name,
		Time:    res.Time,
		Comm:    res.MaxComm(),
		Compute: res.MaxCompute(),
	}
}

// SplitCRPCRTT measures a small Split-C request/reply (a global-pointer
// dereference) on the given machine — Table 2's round-trip column and
// Table 3's "Split-C store" row.
func SplitCRPCRTT(kind MachineKind, rounds int) time.Duration {
	nodes, close := splitcNodes(kind, 2)
	defer close()
	nodes[1].OnSmall(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		return arg, data
	})
	var rtt time.Duration
	done := false
	times := splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		if nd.Self() == 1 {
			for !done {
				nd.PollWait(p, time.Millisecond)
			}
			return
		}
		var start time.Duration
		payload := make([]byte, 4)
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			nd.RPC(p, 1, uint32(i), payload)
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
		done = true
	})
	_ = times
	return rtt
}

// SplitCBulkBandwidth measures Split-C bulk-store streaming bandwidth in
// MB/s on the given machine.
func SplitCBulkBandwidth(kind MachineKind, size, count int) float64 {
	nodes, close := splitcNodes(kind, 2)
	defer close()
	got := 0
	var start, end time.Duration
	nodes[1].OnBulk(func(p *sim.Proc, src int, data []byte) {
		if got == 0 {
			start = p.Now()
		} else {
			end = p.Now()
		}
		got += len(data)
	})
	splitc.Run(nodes, func(p *sim.Proc, nd *splitc.Node) {
		if nd.Self() == 1 {
			for got < size*count {
				nd.PollWait(p, time.Millisecond)
			}
			return
		}
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			nd.Bulk(p, 1, buf)
		}
		nd.Flush(p)
	})
	if end <= start {
		return 0
	}
	return float64(got-size) / (end - start).Seconds() / 1e6
}
