package experiments

import (
	"fmt"
	"strings"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

// Storm runs the all-to-all cell storm — every host sends count 1 KB
// messages to every other host — on a cluster with the given shape and
// returns the rendered per-host results plus the window-protocol profile
// of the run. The report is deterministic: it is byte-identical at every
// shard count (the golden shard sweeps pin this). The profile is a
// wall-clock diagnostic — windows run, events per window, barrier waits,
// fast-forwards — and is empty for a serial run; it never feeds virtual
// time and is not part of any golden output.
func Storm(hosts, shards, count int) (string, sim.GroupProfile) {
	tb := testbed.New(testbed.Config{Hosts: hosts, Shards: shards, Sync: Sync})
	defer tb.Close()
	mesh, err := tb.NewMesh(unet.EndpointConfig{SegmentSize: 1 << 20}, 64)
	if err != nil {
		panic(err)
	}
	res, end := mesh.Storm(count, 1024)

	var b strings.Builder
	fmt.Fprintf(&b, "all-to-all storm: hosts=%d shards=%d msgs=%d×1KB end=%v\n",
		hosts, shards, count, end)
	for i, r := range res {
		fmt.Fprintf(&b, "  host%d sent=%d recv=%d last=%v\n", i, r.Sent, r.Received, r.LastRecv)
	}
	var prof sim.GroupProfile
	if g := tb.Eng.Group(); g != nil {
		prof = g.Profile()
	}
	return b.String(), prof
}
