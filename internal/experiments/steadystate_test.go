package experiments

import (
	"testing"
	"time"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
	"unet/internal/unet"
)

// These tests pin the steady-state zero-allocation property of the data
// path (DESIGN.md §10): once pools and rings have reached their high-water
// marks, moving a message end to end — endpoint send queue, NIC SAR,
// fabric, NIC reassembly, receive queue, application consume — allocates
// nothing. Each harness builds a persistent simulation whose driver
// process parks on a Cond between rounds; one kick runs one full round
// trip and returns with the engine quiescent, so testing.AllocsPerRun can
// measure exactly one round per iteration.

// kickCond is the static engine callback waking a parked driver process;
// with a pointer arg it schedules without allocating.
func kickCond(a any) { a.(*sim.Cond).Signal() }

// echoRig is a raw U-Net ping-pong fixture: a persistent echo process on
// host 1 and a kick-driven ping process on host 0.
type echoRig struct {
	tb   *testbed.Testbed
	kick sim.Cond
}

func newEchoRig(t testing.TB, size int) *echoRig {
	tb := testbed.New(testbed.Config{Hosts: 2})
	if tt, ok := t.(*testing.T); ok {
		tt.Cleanup(tb.Close)
	}
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	desc := func(ep *unet.Endpoint, ch unet.ChannelID, stage int) unet.SendDesc {
		if size <= ep.Host().Device().SingleCellMax() {
			return unet.SendDesc{Channel: ch, Inline: ep.Segment()[stage : stage+size]}
		}
		return unet.SendDesc{Channel: ch, Offset: stage, Length: size}
	}
	rig := &echoRig{tb: tb}
	tb.Hosts[1].Spawn("echo", func(p *sim.Proc) {
		for {
			rd := pr.EpB.Recv(p)
			testbed.Recycle(p, pr.EpB, rd)
			if err := pr.EpB.SendBlock(p, desc(pr.EpB, pr.ChB, pr.StageB)); err != nil {
				panic(err)
			}
		}
	})
	tb.Hosts[0].Spawn("ping", func(p *sim.Proc) {
		for {
			p.Wait(&rig.kick)
			if err := pr.EpA.SendBlock(p, desc(pr.EpA, pr.ChA, pr.StageA)); err != nil {
				panic(err)
			}
			rd := pr.EpA.Recv(p)
			testbed.Recycle(p, pr.EpA, rd)
		}
	})
	tb.Eng.Run() // both processes park: echo in Recv, ping on the kick
	return rig
}

// round runs one complete round trip and returns at quiescence.
func (r *echoRig) round() {
	r.tb.Eng.AtArg(r.tb.Eng.Now(), kickCond, &r.kick)
	r.tb.Eng.Run()
}

// steadyAllocs warms a rig up past its pool high-water marks, then
// measures allocations per round.
func steadyAllocs(warmup int, round func()) float64 {
	for i := 0; i < warmup; i++ {
		round()
	}
	return testing.AllocsPerRun(100, round)
}

func TestSteadyStateAllocsSingleCell(t *testing.T) {
	rig := newEchoRig(t, 32) // single-cell inline fast path
	if allocs := steadyAllocs(20, rig.round); allocs != 0 {
		t.Fatalf("single-cell round trip allocates %.1f objects/round in steady state, want 0", allocs)
	}
}

func TestSteadyStateAllocsBuffered(t *testing.T) {
	rig := newEchoRig(t, 2048) // multi-cell buffered receive path
	if allocs := steadyAllocs(20, rig.round); allocs != 0 {
		t.Fatalf("buffered round trip allocates %.1f objects/round in steady state, want 0", allocs)
	}
}

// uamRig drives a full UAM request/reply round trip per kick. One driver
// process plays both sides sequentially (the serial engine allows any
// process to service any endpoint), so the simulation quiesces between
// rounds with no free-running poll loops.
type uamRig struct {
	tb   *testbed.Testbed
	kick sim.Cond
}

var uamEchoPayload = []byte("steady state!") // ≤32 B: single-cell with header

func newUAMRig(t testing.TB) *uamRig {
	tb := testbed.New(testbed.Config{Hosts: 2})
	if tt, ok := t.(*testing.T); ok {
		tt.Cleanup(tb.Close)
	}
	uA, err := uam.New(tb.Hosts[0].NewProcess("amA"), 0, uam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	uB, err := uam.New(tb.Hosts[1].NewProcess("amB"), 1, uam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := uam.Connect(tb.Manager, uA, uB); err != nil {
		t.Fatal(err)
	}
	var done bool
	if err := uB.RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		if err := u.Reply(p, 2, arg, data); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := uA.RegisterHandler(2, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	rig := &uamRig{tb: tb}
	tb.Hosts[0].Spawn("driver", func(p *sim.Proc) {
		for {
			p.Wait(&rig.kick)
			done = false
			if err := uA.Request(p, 1, 1, 7, uamEchoPayload); err != nil {
				panic(err)
			}
			uB.PollWait(p, time.Millisecond) // serve the request, send the reply
			for !done {
				uA.PollWait(p, time.Millisecond)
			}
		}
	})
	tb.Eng.Run()
	return rig
}

func (r *uamRig) round() {
	r.tb.Eng.AtArg(r.tb.Eng.Now(), kickCond, &r.kick)
	r.tb.Eng.Run()
}

func TestSteadyStateAllocsUAMRoundTrip(t *testing.T) {
	rig := newUAMRig(t)
	if allocs := steadyAllocs(20, rig.round); allocs != 0 {
		t.Fatalf("UAM round trip allocates %.1f objects/round in steady state, want 0", allocs)
	}
}

// BenchmarkEchoSingleCell is the regression bench for the single-cell
// fast-path delivery (formerly one payload copy + alloc per message).
func BenchmarkEchoSingleCell(b *testing.B) {
	rig := newEchoRig(b, 32)
	defer rig.tb.Close()
	rig.round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.round()
	}
}

// BenchmarkEchoBuffered covers the multi-cell reassemble-and-scatter path.
func BenchmarkEchoBuffered(b *testing.B) {
	rig := newEchoRig(b, 2048)
	defer rig.tb.Close()
	rig.round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.round()
	}
}

// BenchmarkUAMRoundTrip covers the reliable-stream request/reply path.
func BenchmarkUAMRoundTrip(b *testing.B) {
	rig := newUAMRig(b)
	defer rig.tb.Close()
	rig.round()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.round()
	}
}
