package experiments_test

import (
	"strings"
	"testing"

	"unet/internal/experiments"
	"unet/internal/nic"
	"unet/internal/stats"
	"unet/internal/uam"
)

// These tests assert the *shapes* the paper's figures report — who wins,
// where the jumps and crossovers sit — using the same drivers that
// regenerate the tables and figures.

func TestFig3Shape(t *testing.T) {
	p := nic.SBA200Params()
	r40 := stats.US(experiments.RawRTT(p, 40, 20))
	r48 := stats.US(experiments.RawRTT(p, 48, 20))
	r1024 := stats.US(experiments.RawRTT(p, 1024, 20))
	// Single-cell fast path, then the jump to the multi-cell path, then
	// the ~6 µs/cell slope.
	if r48 < 1.7*r40 {
		t.Errorf("no fast-path jump: RTT(48)=%.0f vs RTT(40)=%.0f", r48, r40)
	}
	if r1024 <= r48 {
		t.Errorf("RTT not increasing with size: %.0f vs %.0f", r1024, r48)
	}
	am16 := stats.US(experiments.UAMPingPong(uam.Config{}, 16, 20))
	if am16 <= r40 {
		t.Errorf("UAM RTT %.0f not above raw %.0f", am16, r40)
	}
}

func TestFig4Shape(t *testing.T) {
	p := nic.SBA200Params()
	for _, n := range []int{256, 800, 4096} {
		raw := experiments.RawBandwidth(p, n, 150).MBps()
		limit := experiments.AAL5Limit(n)
		if raw > limit*1.02 {
			t.Errorf("raw bandwidth %.2f exceeds AAL-5 limit %.2f at %d", raw, limit, n)
		}
		if n >= 800 && raw < 0.93*limit {
			t.Errorf("fiber not saturated at %d: %.2f vs limit %.2f", n, raw, limit)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine Split-C sweep")
	}
	sc := experiments.QuickScale()
	sc.Procs = 4 // keep the all-to-all UAM mesh affordable in tests

	norm := func(name string) (atm, meiko float64) {
		cm5 := experiments.RunSplitCBench(experiments.MachineCM5, name, sc)
		a := experiments.RunSplitCBench(experiments.MachineUNetATM, name, sc)
		m := experiments.RunSplitCBench(experiments.MachineMeiko, name, sc)
		return float64(a.Time) / float64(cm5.Time), float64(m.Time) / float64(cm5.Time)
	}

	// Bulk-optimized matrix multiply: the CM-5's slow CPU and low
	// bandwidth lose; the ATM cluster and Meiko come out ahead.
	atmMM, meikoMM := norm("matrix multiply")
	if atmMM >= 1 || meikoMM >= 1 {
		t.Errorf("matrix multiply: ATM %.2f / Meiko %.2f should beat CM-5 (<1)", atmMM, meikoMM)
	}
	// Small-message sample sort: the CM-5's per-message overhead advantage
	// wins against the ATM cluster.
	atmSS, _ := norm("sample sort (small msg)")
	if atmSS <= 1 {
		t.Errorf("small-message sample sort: ATM %.2f should lose to CM-5 (>1)", atmSS)
	}
	// ATM cluster and Meiko roughly equivalent overall (§6).
	if atmSS > 0 {
		_, meikoSS := norm("sample sort (small msg)")
		ratio := atmSS / meikoSS
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("ATM/Meiko sample-sort ratio %.2f not 'roughly equivalent'", ratio)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	small := 8
	large := 1400
	atmS := experiments.UDPRTT(experiments.PathKernelATM, small, 10)
	ethS := experiments.UDPRTT(experiments.PathKernelEth, small, 10)
	atmL := experiments.UDPRTT(experiments.PathKernelATM, large, 10)
	ethL := experiments.UDPRTT(experiments.PathKernelEth, large, 10)
	if atmS <= ethS {
		t.Errorf("small messages: kernel ATM RTT %v ≤ Ethernet %v", atmS, ethS)
	}
	if atmL >= ethL {
		t.Errorf("large messages: kernel ATM RTT %v ≥ Ethernet %v", atmL, ethL)
	}
	tcpS := experiments.TCPRTT(experiments.PathKernelATM, small, 10)
	udpS := atmS
	if tcpS <= udpS {
		t.Errorf("kernel TCP RTT %v not above kernel UDP %v", tcpS, udpS)
	}
}

func TestFig7Shape(t *testing.T) {
	// U-Net UDP lossless and far above the kernel received curve.
	_, un := experiments.UDPBandwidth(experiments.PathUNet, 4096, 150)
	ks, kr := experiments.UDPBandwidth(experiments.PathKernelATM, 4096, 150)
	if un < 13 {
		t.Errorf("U-Net UDP at 4K = %.2f MB/s, want near the AAL-5 limit", un)
	}
	if kr >= un {
		t.Errorf("kernel received %.2f ≥ U-Net %.2f", kr, un)
	}
	if kr > ks*1.02 {
		t.Errorf("kernel received %.2f above sender-perceived %.2f", kr, ks)
	}
	// Mbuf sawtooth: a packet rounding to clusters beats a slightly
	// smaller one needing small-mbuf chains.
	_, r1500 := experiments.UDPBandwidth(experiments.PathKernelATM, 1500-28, 150)
	_, r1536 := experiments.UDPBandwidth(experiments.PathKernelATM, 1536-28, 150)
	if r1536 <= r1500 {
		t.Errorf("no mbuf sawtooth: recv(1536)=%.2f ≤ recv(1500)=%.2f", r1536, r1500)
	}
}

func TestFig8Shape(t *testing.T) {
	un := experiments.TCPBandwidth(experiments.PathUNet, 8<<10, 8192, 1<<20)
	k64 := experiments.TCPBandwidth(experiments.PathKernelATM, 64<<10, 8192, 8<<20)
	if un < 13.5 || un > 15.5 {
		t.Errorf("U-Net TCP (8K window) = %.2f MB/s, want 14-15", un)
	}
	if k64 < 7 || k64 > 11 {
		t.Errorf("kernel TCP (64K window) = %.2f MB/s, want ~9-10", k64)
	}
	if un <= k64 {
		t.Errorf("U-Net TCP %.2f not above kernel TCP %.2f despite 8x smaller window", un, k64)
	}
}

func TestFig9Shape(t *testing.T) {
	uu := experiments.UDPRTT(experiments.PathUNet, 4, 20)
	ut := experiments.TCPRTT(experiments.PathUNet, 4, 20)
	ku := experiments.UDPRTT(experiments.PathKernelATM, 4, 10)
	kt := experiments.TCPRTT(experiments.PathKernelATM, 4, 10)
	if ku < 3*uu || kt < 3*ut {
		t.Errorf("kernel (%v/%v) not ≫ U-Net (%v/%v)", ku, kt, uu, ut)
	}
	if ut <= uu {
		t.Errorf("U-Net TCP RTT %v not above UDP %v", ut, uu)
	}
}

func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full table generation")
	}
	t1 := experiments.Table1().String()
	if !strings.Contains(t1, "Send overhead (AAL5)") {
		t.Errorf("Table 1 missing rows:\n%s", t1)
	}
	t3 := experiments.Table3(20, 120).String()
	for _, proto := range []string{"Raw AAL5", "Active Msgs", "UDP", "TCP", "Split-C store"} {
		if !strings.Contains(t3, proto) {
			t.Errorf("Table 3 missing %q:\n%s", proto, t3)
		}
	}
}

func TestTable2Measured(t *testing.T) {
	if testing.Short() {
		t.Skip("machine sweep")
	}
	tab := experiments.Table2(20).String()
	for _, m := range []string{"CM-5", "Meiko CS-2", "U-Net ATM"} {
		if !strings.Contains(tab, m) {
			t.Errorf("Table 2 missing %q:\n%s", m, tab)
		}
	}
}
