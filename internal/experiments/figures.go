package experiments

import (
	"fmt"

	"unet/internal/nic"
	"unet/internal/stats"
	"unet/internal/uam"
)

// Fig3Sizes is the message-size sweep of Figure 3 (0-1 KB).
var Fig3Sizes = []int{4, 8, 16, 32, 40, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}

// Fig3 reproduces Figure 3: U-Net round-trip times as a function of
// message size — Raw U-Net, UAM single-cell request/reply (≤ 32 B) and
// UAM block transfers.
func Fig3(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 3: round-trip times vs message size",
		XLabel: "bytes",
		YLabel: "µs",
	}
	raw := &stats.Series{Name: "Raw U-Net"}
	am := &stats.Series{Name: "UAM"}
	xfer := &stats.Series{Name: "UAM xfer"}
	pts := make([]struct{ raw, am float64 }, len(Fig3Sizes))
	ParallelPoints(len(Fig3Sizes), func(i int) {
		n := Fig3Sizes[i]
		pts[i].raw = stats.US(RawRTT(nic.SBA200Params(), n, rounds))
		pts[i].am = stats.US(UAMPingPong(uam.Config{}, n, rounds))
	})
	for i, n := range Fig3Sizes {
		raw.Add(float64(n), pts[i].raw)
		if n <= 32 {
			am.Add(float64(n), pts[i].am)
		} else {
			xfer.Add(float64(n), pts[i].am)
		}
	}
	f.Series = []*stats.Series{raw, am, xfer}
	return f
}

// Fig4Sizes is the message-size sweep of Figure 4 (4 B-5 KB).
var Fig4Sizes = []int{
	4, 8, 16, 32, 40, 64, 128, 256, 512, 800, 1024, 1536, 2048, 3072, 4096,
	4160, 4164, 5120,
}

// Fig4 reproduces Figure 4: U-Net bandwidth as a function of message size
// — the AAL-5 fiber limit (with its cell-quantization sawtooth), raw
// U-Net, and UAM block store/get.
func Fig4(count int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 4: bandwidth vs message size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	limit := &stats.Series{Name: "AAL-5 limit"}
	raw := &stats.Series{Name: "Raw U-Net"}
	store := &stats.Series{Name: "UAM store"}
	get := &stats.Series{Name: "UAM get"}
	pts := make([]struct{ limit, raw, store, get float64 }, len(Fig4Sizes))
	ParallelPoints(len(Fig4Sizes), func(i int) {
		n := Fig4Sizes[i]
		pts[i].limit = AAL5Limit(n)
		pts[i].raw = RawBandwidth(nic.SBA200Params(), n, count).MBps()
		pts[i].store = UAMStoreBandwidth(uam.Config{}, n, count)
		pts[i].get = UAMGetBandwidth(uam.Config{}, n, count/2)
	})
	for i, n := range Fig4Sizes {
		limit.Add(float64(n), pts[i].limit)
		raw.Add(float64(n), pts[i].raw)
		store.Add(float64(n), pts[i].store)
		get.Add(float64(n), pts[i].get)
	}
	f.Series = []*stats.Series{limit, raw, store, get}
	return f
}

// Fig5 reproduces Figure 5: the seven Split-C benchmarks on the CM-5, the
// U-Net ATM cluster and the Meiko CS-2, normalized to the CM-5, with the
// communication/computation split.
func Fig5(sc SplitCScale) *stats.Table {
	t := stats.NewTable("Figure 5: Split-C benchmarks (execution time normalized to CM-5)")
	t.Header("Benchmark", "CM-5", "U-Net ATM", "Meiko CS-2",
		"ATM comm/comp", "CM-5 comm/comp")
	pts := make([]struct{ cm5, atm, meiko BenchResult }, len(SplitCBenchNames))
	ParallelPoints(len(SplitCBenchNames), func(i int) {
		name := SplitCBenchNames[i]
		pts[i].cm5 = RunSplitCBench(MachineCM5, name, sc)
		pts[i].atm = RunSplitCBench(MachineUNetATM, name, sc)
		pts[i].meiko = RunSplitCBench(MachineMeiko, name, sc)
	})
	for i, name := range SplitCBenchNames {
		cm5, atm, meiko := pts[i].cm5, pts[i].atm, pts[i].meiko
		base := float64(cm5.Time)
		t.Row(name,
			"1.00",
			fmt.Sprintf("%.2f", float64(atm.Time)/base),
			fmt.Sprintf("%.2f", float64(meiko.Time)/base),
			fmt.Sprintf("%.0f%%/%.0f%%",
				100*float64(atm.Comm)/float64(atm.Time),
				100*float64(atm.Compute)/float64(atm.Time)),
			fmt.Sprintf("%.0f%%/%.0f%%",
				100*float64(cm5.Comm)/float64(cm5.Time),
				100*float64(cm5.Compute)/float64(cm5.Time)))
	}
	return t
}

// Fig6Sizes is the small-message sweep of Figure 6.
var Fig6Sizes = []int{8, 32, 64, 128, 256, 512, 1024, 1400}

// Fig6 reproduces Figure 6: kernel TCP and UDP round-trip latencies over
// ATM and over Ethernet — for small messages ATM is *worse*, the
// observation that motivates §7.
func Fig6(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 6: kernel TCP/UDP round-trip latencies, ATM vs Ethernet",
		XLabel: "bytes",
		YLabel: "µs",
	}
	udpATM := &stats.Series{Name: "UDP ATM"}
	udpEth := &stats.Series{Name: "UDP Ethernet"}
	tcpATM := &stats.Series{Name: "TCP ATM"}
	tcpEth := &stats.Series{Name: "TCP Ethernet"}
	pts := make([]struct{ ua, ue, ta, te float64 }, len(Fig6Sizes))
	ParallelPoints(len(Fig6Sizes), func(i int) {
		n := Fig6Sizes[i]
		pts[i].ua = stats.US(UDPRTT(PathKernelATM, n, rounds))
		pts[i].ue = stats.US(UDPRTT(PathKernelEth, n, rounds))
		pts[i].ta = stats.US(TCPRTT(PathKernelATM, n, rounds))
		pts[i].te = stats.US(TCPRTT(PathKernelEth, n, rounds))
	})
	for i, n := range Fig6Sizes {
		udpATM.Add(float64(n), pts[i].ua)
		udpEth.Add(float64(n), pts[i].ue)
		tcpATM.Add(float64(n), pts[i].ta)
		tcpEth.Add(float64(n), pts[i].te)
	}
	f.Series = []*stats.Series{udpATM, udpEth, tcpATM, tcpEth}
	return f
}

// Fig7Sizes is the datagram-size sweep of Figure 7.
var Fig7Sizes = []int{512, 1024, 1500, 1536, 2048, 2500, 3072, 4096, 6144, 8192}

// Fig7 reproduces Figure 7: UDP bandwidth as a function of message size —
// U-Net UDP (lossless, near the AAL-5 limit) against the kernel's
// sender-perceived and actually-received bandwidths, whose divergence is
// kernel buffering loss and whose jagged shape is the 1 KB mbuf sawtooth.
func Fig7(count int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 7: UDP bandwidth vs message size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	unetRecv := &stats.Series{Name: "U-Net UDP"}
	kSend := &stats.Series{Name: "kernel UDP (sender)"}
	kRecv := &stats.Series{Name: "kernel UDP (received)"}
	pts := make([]struct{ ur, ks, kr float64 }, len(Fig7Sizes))
	ParallelPoints(len(Fig7Sizes), func(i int) {
		n := Fig7Sizes[i]
		_, pts[i].ur = UDPBandwidth(PathUNet, n, count)
		pts[i].ks, pts[i].kr = UDPBandwidth(PathKernelATM, n, count)
	})
	for i, n := range Fig7Sizes {
		unetRecv.Add(float64(n), pts[i].ur)
		kSend.Add(float64(n), pts[i].ks)
		kRecv.Add(float64(n), pts[i].kr)
	}
	f.Series = []*stats.Series{unetRecv, kSend, kRecv}
	return f
}

// Fig8Writes is the application write-size sweep of Figure 8.
var Fig8Writes = []int{512, 1024, 2048, 4096, 8192, 16384}

// Fig8 reproduces Figure 8: TCP bandwidth as a function of the data
// generation by the application — U-Net TCP with its standard 8 KB window
// against the kernel TCP with a 64 KB window (and the kernel's default
// 52 KB socket buffer).
func Fig8(total int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 8: TCP bandwidth vs application write size",
		XLabel: "bytes per write",
		YLabel: "MB/s",
	}
	un := &stats.Series{Name: "U-Net TCP (8K window)"}
	k64 := &stats.Series{Name: "kernel TCP (64K window)"}
	k52 := &stats.Series{Name: "kernel TCP (52K window)"}
	pts := make([]struct{ un, k64, k52 float64 }, len(Fig8Writes))
	ParallelPoints(len(Fig8Writes), func(i int) {
		w := Fig8Writes[i]
		pts[i].un = TCPBandwidth(PathUNet, 8<<10, w, total)
		// The kernel path needs a longer stream: its slow-start stalls on
		// the 200 ms delayed-ack timer and only amortizes over megabytes.
		pts[i].k64 = TCPBandwidth(PathKernelATM, 64<<10, w, 8*total)
		pts[i].k52 = TCPBandwidth(PathKernelATM, 52<<10, w, 8*total)
	})
	for i, w := range Fig8Writes {
		un.Add(float64(w), pts[i].un)
		k64.Add(float64(w), pts[i].k64)
		k52.Add(float64(w), pts[i].k52)
	}
	f.Series = []*stats.Series{un, k64, k52}
	return f
}

// Fig9Sizes is the message-size sweep of Figure 9.
var Fig9Sizes = []int{4, 64, 256, 512, 1024, 2048, 4096}

// Fig9 reproduces Figure 9: UDP and TCP round-trip latencies as a
// function of message size — the U-Net implementations against the
// in-kernel ones over the same ATM hardware.
func Fig9(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 9: UDP and TCP round-trip latencies, U-Net vs kernel",
		XLabel: "bytes",
		YLabel: "µs",
	}
	uu := &stats.Series{Name: "U-Net UDP"}
	ut := &stats.Series{Name: "U-Net TCP"}
	ku := &stats.Series{Name: "kernel UDP"}
	kt := &stats.Series{Name: "kernel TCP"}
	pts := make([]struct{ uu, ut, ku, kt float64 }, len(Fig9Sizes))
	ParallelPoints(len(Fig9Sizes), func(i int) {
		n := Fig9Sizes[i]
		pts[i].uu = stats.US(UDPRTT(PathUNet, n, rounds))
		pts[i].ut = stats.US(TCPRTT(PathUNet, n, rounds))
		pts[i].ku = stats.US(UDPRTT(PathKernelATM, n, rounds))
		pts[i].kt = stats.US(TCPRTT(PathKernelATM, n, rounds))
	})
	for i, n := range Fig9Sizes {
		uu.Add(float64(n), pts[i].uu)
		ut.Add(float64(n), pts[i].ut)
		ku.Add(float64(n), pts[i].ku)
		kt.Add(float64(n), pts[i].kt)
	}
	f.Series = []*stats.Series{uu, ut, ku, kt}
	return f
}
