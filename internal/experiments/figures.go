package experiments

import (
	"fmt"

	"unet/internal/nic"
	"unet/internal/stats"
	"unet/internal/uam"
)

// Fig3Sizes is the message-size sweep of Figure 3 (0-1 KB).
var Fig3Sizes = []int{4, 8, 16, 32, 40, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}

// Fig3 reproduces Figure 3: U-Net round-trip times as a function of
// message size — Raw U-Net, UAM single-cell request/reply (≤ 32 B) and
// UAM block transfers.
func Fig3(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 3: round-trip times vs message size",
		XLabel: "bytes",
		YLabel: "µs",
	}
	raw := &stats.Series{Name: "Raw U-Net"}
	am := &stats.Series{Name: "UAM"}
	xfer := &stats.Series{Name: "UAM xfer"}
	for _, n := range Fig3Sizes {
		raw.Add(float64(n), stats.US(RawRTT(nic.SBA200Params(), n, rounds)))
		if n <= 32 {
			am.Add(float64(n), stats.US(UAMPingPong(uam.Config{}, n, rounds)))
		} else {
			xfer.Add(float64(n), stats.US(UAMPingPong(uam.Config{}, n, rounds)))
		}
	}
	f.Series = []*stats.Series{raw, am, xfer}
	return f
}

// Fig4Sizes is the message-size sweep of Figure 4 (4 B-5 KB).
var Fig4Sizes = []int{
	4, 8, 16, 32, 40, 64, 128, 256, 512, 800, 1024, 1536, 2048, 3072, 4096,
	4160, 4164, 5120,
}

// Fig4 reproduces Figure 4: U-Net bandwidth as a function of message size
// — the AAL-5 fiber limit (with its cell-quantization sawtooth), raw
// U-Net, and UAM block store/get.
func Fig4(count int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 4: bandwidth vs message size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	limit := &stats.Series{Name: "AAL-5 limit"}
	raw := &stats.Series{Name: "Raw U-Net"}
	store := &stats.Series{Name: "UAM store"}
	get := &stats.Series{Name: "UAM get"}
	for _, n := range Fig4Sizes {
		limit.Add(float64(n), AAL5Limit(n))
		raw.Add(float64(n), RawBandwidth(nic.SBA200Params(), n, count).MBps())
		store.Add(float64(n), UAMStoreBandwidth(uam.Config{}, n, count))
		get.Add(float64(n), UAMGetBandwidth(uam.Config{}, n, count/2))
	}
	f.Series = []*stats.Series{limit, raw, store, get}
	return f
}

// Fig5 reproduces Figure 5: the seven Split-C benchmarks on the CM-5, the
// U-Net ATM cluster and the Meiko CS-2, normalized to the CM-5, with the
// communication/computation split.
func Fig5(sc SplitCScale) *stats.Table {
	t := stats.NewTable("Figure 5: Split-C benchmarks (execution time normalized to CM-5)")
	t.Header("Benchmark", "CM-5", "U-Net ATM", "Meiko CS-2",
		"ATM comm/comp", "CM-5 comm/comp")
	for _, name := range SplitCBenchNames {
		cm5 := RunSplitCBench(MachineCM5, name, sc)
		atm := RunSplitCBench(MachineUNetATM, name, sc)
		meiko := RunSplitCBench(MachineMeiko, name, sc)
		base := float64(cm5.Time)
		t.Row(name,
			"1.00",
			fmt.Sprintf("%.2f", float64(atm.Time)/base),
			fmt.Sprintf("%.2f", float64(meiko.Time)/base),
			fmt.Sprintf("%.0f%%/%.0f%%",
				100*float64(atm.Comm)/float64(atm.Time),
				100*float64(atm.Compute)/float64(atm.Time)),
			fmt.Sprintf("%.0f%%/%.0f%%",
				100*float64(cm5.Comm)/float64(cm5.Time),
				100*float64(cm5.Compute)/float64(cm5.Time)))
	}
	return t
}

// Fig6Sizes is the small-message sweep of Figure 6.
var Fig6Sizes = []int{8, 32, 64, 128, 256, 512, 1024, 1400}

// Fig6 reproduces Figure 6: kernel TCP and UDP round-trip latencies over
// ATM and over Ethernet — for small messages ATM is *worse*, the
// observation that motivates §7.
func Fig6(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 6: kernel TCP/UDP round-trip latencies, ATM vs Ethernet",
		XLabel: "bytes",
		YLabel: "µs",
	}
	udpATM := &stats.Series{Name: "UDP ATM"}
	udpEth := &stats.Series{Name: "UDP Ethernet"}
	tcpATM := &stats.Series{Name: "TCP ATM"}
	tcpEth := &stats.Series{Name: "TCP Ethernet"}
	for _, n := range Fig6Sizes {
		udpATM.Add(float64(n), stats.US(UDPRTT(PathKernelATM, n, rounds)))
		udpEth.Add(float64(n), stats.US(UDPRTT(PathKernelEth, n, rounds)))
		tcpATM.Add(float64(n), stats.US(TCPRTT(PathKernelATM, n, rounds)))
		tcpEth.Add(float64(n), stats.US(TCPRTT(PathKernelEth, n, rounds)))
	}
	f.Series = []*stats.Series{udpATM, udpEth, tcpATM, tcpEth}
	return f
}

// Fig7Sizes is the datagram-size sweep of Figure 7.
var Fig7Sizes = []int{512, 1024, 1500, 1536, 2048, 2500, 3072, 4096, 6144, 8192}

// Fig7 reproduces Figure 7: UDP bandwidth as a function of message size —
// U-Net UDP (lossless, near the AAL-5 limit) against the kernel's
// sender-perceived and actually-received bandwidths, whose divergence is
// kernel buffering loss and whose jagged shape is the 1 KB mbuf sawtooth.
func Fig7(count int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 7: UDP bandwidth vs message size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	unetRecv := &stats.Series{Name: "U-Net UDP"}
	kSend := &stats.Series{Name: "kernel UDP (sender)"}
	kRecv := &stats.Series{Name: "kernel UDP (received)"}
	for _, n := range Fig7Sizes {
		_, ur := UDPBandwidth(PathUNet, n, count)
		unetRecv.Add(float64(n), ur)
		ks, kr := UDPBandwidth(PathKernelATM, n, count)
		kSend.Add(float64(n), ks)
		kRecv.Add(float64(n), kr)
	}
	f.Series = []*stats.Series{unetRecv, kSend, kRecv}
	return f
}

// Fig8Writes is the application write-size sweep of Figure 8.
var Fig8Writes = []int{512, 1024, 2048, 4096, 8192, 16384}

// Fig8 reproduces Figure 8: TCP bandwidth as a function of the data
// generation by the application — U-Net TCP with its standard 8 KB window
// against the kernel TCP with a 64 KB window (and the kernel's default
// 52 KB socket buffer).
func Fig8(total int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 8: TCP bandwidth vs application write size",
		XLabel: "bytes per write",
		YLabel: "MB/s",
	}
	un := &stats.Series{Name: "U-Net TCP (8K window)"}
	k64 := &stats.Series{Name: "kernel TCP (64K window)"}
	k52 := &stats.Series{Name: "kernel TCP (52K window)"}
	for _, w := range Fig8Writes {
		un.Add(float64(w), TCPBandwidth(PathUNet, 8<<10, w, total))
		// The kernel path needs a longer stream: its slow-start stalls on
		// the 200 ms delayed-ack timer and only amortizes over megabytes.
		k64.Add(float64(w), TCPBandwidth(PathKernelATM, 64<<10, w, 8*total))
		k52.Add(float64(w), TCPBandwidth(PathKernelATM, 52<<10, w, 8*total))
	}
	f.Series = []*stats.Series{un, k64, k52}
	return f
}

// Fig9Sizes is the message-size sweep of Figure 9.
var Fig9Sizes = []int{4, 64, 256, 512, 1024, 2048, 4096}

// Fig9 reproduces Figure 9: UDP and TCP round-trip latencies as a
// function of message size — the U-Net implementations against the
// in-kernel ones over the same ATM hardware.
func Fig9(rounds int) *stats.Figure {
	f := &stats.Figure{
		Title:  "Figure 9: UDP and TCP round-trip latencies, U-Net vs kernel",
		XLabel: "bytes",
		YLabel: "µs",
	}
	uu := &stats.Series{Name: "U-Net UDP"}
	ut := &stats.Series{Name: "U-Net TCP"}
	ku := &stats.Series{Name: "kernel UDP"}
	kt := &stats.Series{Name: "kernel TCP"}
	for _, n := range Fig9Sizes {
		uu.Add(float64(n), stats.US(UDPRTT(PathUNet, n, rounds)))
		ut.Add(float64(n), stats.US(TCPRTT(PathUNet, n, rounds)))
		ku.Add(float64(n), stats.US(UDPRTT(PathKernelATM, n, rounds)))
		kt.Add(float64(n), stats.US(TCPRTT(PathKernelATM, n, rounds)))
	}
	f.Series = []*stats.Series{uu, ut, ku, kt}
	return f
}
