package experiments

import (
	"fmt"
	"strings"
	"time"

	"unet/internal/faults"
	"unet/internal/sim"
	"unet/internal/stats"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// Serve is the open-loop serving workload (ROADMAP item 2, first cut): a
// bank of client hosts multiplexes a large population of logical clients
// onto a small number of U-Net endpoints and drives seeded Poisson (or
// bursty) request arrivals at a configured offered load against a pool of
// server hosts, open-loop — arrivals do not wait for completions, so
// beyond the saturation knee queueing delay grows without bound and the
// tail quantiles show it. Latency is measured from each request's
// *scheduled* arrival time to the reply handler's dispatch, so send-side
// queueing (the flow-control window filling up) is part of the measurement,
// as an open-loop harness requires. Per-host latencies stream into
// per-host histograms (internal/stats) merged after the run.
//
// Everything is deterministic: arrival streams derive from per-host seeded
// PRNGs keyed by stable host names (never the engine's), all mutable state
// is owned by a single host's processes, and the report is byte-identical
// at any shard count and under either scheduler kind.

// Handler indices for the serve workload.
const (
	hServeReq = 11
	hServeRep = 12
)

// ServeConfig shapes one open-loop serving run.
type ServeConfig struct {
	// ClientHosts and Servers are the load-generating and serving host
	// counts (defaults 6 and 2). Client host i talks to every server,
	// striping requests round-robin.
	ClientHosts int
	Servers     int
	// LogicalPerHost is the number of logical clients multiplexed onto each
	// client host's endpoint (default 4096). The superposition of n
	// independent Poisson streams of rate r/n is exactly a Poisson stream of
	// rate r, so multiplexing is exact: each arrival is attributed to a
	// uniformly drawn logical client.
	LogicalPerHost int
	// Rate is the aggregate offered load in requests per second of virtual
	// time, across all client hosts (default 100_000).
	Rate float64
	// Duration is the arrival window (default 20ms). After it closes,
	// clients drain outstanding replies for up to DrainCap.
	Duration time.Duration
	// DrainCap bounds the post-window drain (default 50ms); requests still
	// unanswered then count as dropped.
	DrainCap time.Duration
	// Payload is the request payload size (default 16 bytes — the U-Net
	// single-cell fast path).
	Payload int
	// Service is the simulated per-request server CPU time before the reply
	// (default 2µs).
	Service time.Duration
	// Bursty batches arrivals: each arrival point carries a uniformly drawn
	// burst of 1..15 back-to-back requests (mean 8) with inter-point gaps
	// stretched 8× to preserve the offered load.
	Bursty bool
	// Seed drives the arrival PRNGs and the testbed (default 1).
	Seed int64
	// Shards is the testbed shard count (0 = serial).
	Shards int
	// Sync selects the sharded synchronization protocol (zero =
	// sim.SyncNeighbor); results are byte-identical across protocols.
	Sync sim.SyncKind
	// Scheduler selects the engine scheduler (default the timer wheel).
	Scheduler sim.SchedulerKind
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.ClientHosts <= 0 {
		c.ClientHosts = 6
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.LogicalPerHost <= 0 {
		c.LogicalPerHost = 4096
	}
	if c.Rate <= 0 {
		c.Rate = 100_000
	}
	if c.Duration <= 0 {
		c.Duration = 20 * time.Millisecond
	}
	if c.DrainCap <= 0 {
		c.DrainCap = 50 * time.Millisecond
	}
	if c.Payload <= 0 {
		c.Payload = 16
	}
	if c.Service <= 0 {
		c.Service = 2 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeResult is one run's outcome. Everything except Wall is
// deterministic.
type ServeResult struct {
	Cfg     ServeConfig
	Sent    int
	Replied int
	Dropped int
	// Active is the number of distinct logical clients that issued at least
	// one request.
	Active int
	// End is the virtual time when the last client finished draining.
	End time.Duration
	// Steps is the total number of events executed across all engines. For
	// a fixed shard layout it is scheduler-invariant (the differential test
	// pins heap == wheel); across layouts it may differ by a few cross-shard
	// delivery re-arms, so it stays out of the golden report line.
	Steps uint64
	// Latency is the merged request-latency histogram (nanoseconds).
	Latency stats.Histogram
	// Wall is the host wall-clock time of the run — a diagnostic, never
	// part of golden output.
	Wall time.Duration
}

// Serve runs one open-loop serving experiment.
func Serve(cfg ServeConfig) ServeResult {
	cfg = cfg.withDefaults()
	nhosts := cfg.ClientHosts + cfg.Servers
	tb := testbed.New(testbed.Config{
		Hosts: nhosts, Seed: cfg.Seed, Shards: cfg.Shards, Sync: cfg.Sync,
		Scheduler: cfg.Scheduler,
	})
	defer tb.Close()

	// Small payloads: size the UAM buffers for them instead of the 4KB bulk
	// default, so a server peered with many clients stays compact.
	mkCfg := func(peers int) uam.Config {
		return uam.Config{BulkMax: 256, MaxPeers: peers}
	}
	clients := make([]*uam.UAM, cfg.ClientHosts)
	for i := range clients {
		u, err := uam.New(tb.Hosts[i].NewProcess("am"), i, mkCfg(cfg.Servers))
		mustNoErr(err, "client uam")
		clients[i] = u
	}
	servers := make([]*uam.UAM, cfg.Servers)
	for j := range servers {
		u, err := uam.New(tb.Hosts[cfg.ClientHosts+j].NewProcess("am"), cfg.ClientHosts+j, mkCfg(cfg.ClientHosts))
		mustNoErr(err, "server uam")
		servers[j] = u
	}
	for i := range clients {
		for j := range servers {
			mustNoErr(uam.Connect(tb.Manager, clients[i], servers[j]), "connect")
		}
	}

	// Servers: charge the service time, echo the token back, then block on
	// the endpoint (PollBlock leaves no pending timer while idle, so the
	// run quiesces naturally once the clients stop).
	for j := range servers {
		srv := servers[j]
		mustNoErr(srv.RegisterHandler(hServeReq, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
			p.Sleep(cfg.Service)
			if err := u.Reply(p, hServeRep, arg, nil); err != nil {
				panic(err)
			}
		}), "server handler")
		tb.Hosts[cfg.ClientHosts+j].Spawn("srv", func(p *sim.Proc) {
			for {
				srv.PollBlock(p)
			}
		})
	}

	res := ServeResult{Cfg: cfg}
	type hostState struct {
		sent, replied, dropped int
		end                    time.Duration
		active                 int
		hist                   stats.Histogram
	}
	states := make([]hostState, cfg.ClientHosts)
	payload := make([]byte, cfg.Payload)
	perHost := cfg.Rate / float64(cfg.ClientHosts)
	for i := range clients {
		i := i
		cli := clients[i]
		st := &states[i]
		// pend maps an in-flight request token to its scheduled arrival
		// time; the reply handler (dispatched on this host's own process)
		// closes the measurement.
		pend := make(map[uint32]time.Duration)
		mustNoErr(cli.RegisterHandler(hServeRep, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
			if t0, ok := pend[arg]; ok {
				delete(pend, arg)
				st.hist.Record(int64(p.Now() - t0))
				st.replied++
			}
		}), "client handler")
		tb.Hosts[i].Spawn("cli", func(p *sim.Proc) {
			// Per-host arrival stream, keyed by a stable name so the
			// schedule is independent of the shard layout.
			rng := faults.NewRand(cfg.Seed, fmt.Sprintf("serve.cli%d", i))
			seen := make([]uint64, (cfg.LogicalPerHost+63)/64)
			var token uint32
			var next time.Duration
			for {
				burst := 1
				mean := 1.0
				if cfg.Bursty {
					burst = 1 + rng.Intn(15) // uniform 1..15, mean 8
					mean = 8.0
				}
				next += time.Duration(rng.ExpFloat64() * mean / perHost * float64(time.Second))
				if next > cfg.Duration {
					break
				}
				// Poll (processing replies) until the scheduled arrival.
				for p.Now() < next {
					cli.PollWait(p, next-p.Now())
				}
				for k := 0; k < burst; k++ {
					lc := rng.Intn(cfg.LogicalPerHost)
					if seen[lc/64]&(1<<(lc%64)) == 0 {
						seen[lc/64] |= 1 << (lc % 64)
						st.active++
					}
					token++
					pend[token] = next
					st.sent++
					sv := (i + st.sent) % cfg.Servers
					if err := cli.Request(p, cfg.ClientHosts+sv, hServeReq, token, payload); err != nil {
						panic(err)
					}
				}
			}
			// Drain: collect outstanding replies up to the cap.
			limit := cfg.Duration + cfg.DrainCap
			for len(pend) > 0 && p.Now() < limit {
				cli.PollWait(p, time.Millisecond)
			}
			st.dropped = len(pend)
			st.end = p.Now()
		})
	}

	res.Wall = runTimed(tb.Eng, cfg.Duration+cfg.DrainCap+time.Second)
	for i := range states {
		st := &states[i]
		res.Sent += st.sent
		res.Replied += st.replied
		res.Dropped += st.dropped
		res.Active += st.active
		if st.end > res.End {
			res.End = st.end
		}
		res.Latency.Merge(&st.hist)
	}
	res.Steps = tb.TotalSteps()
	return res
}

// runTimed drives the engine and returns the host wall-clock time spent —
// the events/sec diagnostic in ServeResult.Wall, kept out of all golden
// output.
//
//unetlint:allow nondeterminism wall-clock events-per-second diagnostic only; never feeds virtual time
func runTimed(e *sim.Engine, until time.Duration) time.Duration {
	w0 := time.Now()
	e.RunUntil(until)
	return time.Since(w0)
}

// Line renders the deterministic one-line summary of a run.
func (r ServeResult) Line() string {
	q := func(p float64) float64 { return stats.US(time.Duration(r.Latency.Quantile(p))) }
	return fmt.Sprintf(
		"load=%.0f/s sent=%d replied=%d dropped=%d active=%d p50=%.1fµs p99=%.1fµs p999=%.1fµs mean=%.1fµs end=%v",
		r.Cfg.Rate, r.Sent, r.Replied, r.Dropped, r.Active,
		q(0.50), q(0.99), q(0.999), r.Latency.Mean()/1e3, r.End)
}

// ServeSweep runs Serve over a set of offered loads and renders the
// latency-CDF-vs-offered-load figure plus per-load summary lines. The
// returned string is deterministic (golden-able); the slice carries the
// full results for callers that want diagnostics (wall time, events/sec).
func ServeSweep(base ServeConfig, loads []float64) (string, []ServeResult) {
	base = base.withDefaults()
	fig := &stats.Figure{
		Title:  "serving at scale: latency vs offered load",
		XLabel: "load(kreq/s)",
		YLabel: "latency µs (open-loop, from scheduled arrival)",
	}
	p50 := &stats.Series{Name: "p50"}
	p99 := &stats.Series{Name: "p99"}
	p999 := &stats.Series{Name: "p999"}
	fig.Series = []*stats.Series{p50, p99, p999}

	var b strings.Builder
	mode := "poisson"
	if base.Bursty {
		mode = "bursty"
	}
	fmt.Fprintf(&b, "open-loop serve: clients=%d×%d logical servers=%d shards=%d %s window=%v\n",
		base.ClientHosts, base.LogicalPerHost, base.Servers, base.Shards, mode, base.Duration)
	results := make([]ServeResult, 0, len(loads))
	for _, load := range loads {
		cfg := base
		cfg.Rate = load
		r := Serve(cfg)
		results = append(results, r)
		fmt.Fprintf(&b, "  %s\n", r.Line())
		x := load / 1000
		p50.Add(x, stats.US(time.Duration(r.Latency.Quantile(0.50))))
		p99.Add(x, stats.US(time.Duration(r.Latency.Quantile(0.99))))
		p999.Add(x, stats.US(time.Duration(r.Latency.Quantile(0.999))))
	}
	b.WriteString(fig.String())
	return b.String(), results
}
