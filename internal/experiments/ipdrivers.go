package experiments

import (
	"time"

	"unet/internal/ip"
	"unet/internal/ip/tcp"
	"unet/internal/ip/udp"
	"unet/internal/kernelpath"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/testbed"
)

// PathKind selects the packet path under test.
type PathKind int

// The three §7 execution environments.
const (
	PathUNet      PathKind = iota // U-Net user-level path (SBA-200 firmware)
	PathKernelATM                 // in-kernel path over the Fore firmware ATM
	PathKernelEth                 // in-kernel path over 10 Mbit/s Ethernet
)

func (k PathKind) String() string {
	switch k {
	case PathUNet:
		return "U-Net"
	case PathKernelATM:
		return "kernel/ATM"
	default:
		return "kernel/Ethernet"
	}
}

// ipPair assembles a conduit pair of the requested kind on a fresh
// testbed. The caller owns tb.Close.
func ipPair(kind PathKind) (*testbed.Testbed, ip.Conduit, ip.Conduit) {
	return ipPairSock(kind, 0)
}

// ipPairSock is ipPair with an overridden kernel socket buffer. TCP sizes
// the socket buffer to its window (setsockopt SO_RCVBUF), so TCP
// experiments pass the window here; 0 keeps the SunOS default.
func ipPairSock(kind PathKind, sockBuf int) (*testbed.Testbed, ip.Conduit, ip.Conduit) {
	kp := kernelpath.DefaultParams()
	if sockBuf > 0 {
		kp.SockBufBytes = sockBuf
	}
	switch kind {
	case PathUNet:
		tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync})
		ca, cb, err := tb.NewIPConduitPair(0, 1)
		mustNoErr(err, "unet ip pair")
		return tb, ca, cb
	case PathKernelATM:
		fore := nic.ForeParams()
		tb := testbed.New(testbed.Config{Hosts: 2, NIC: &fore, Shards: shardCount(), Sync: Sync})
		ia, ib, err := tb.NewIPConduitPair(0, 1)
		mustNoErr(err, "kernel atm pair")
		ka := kernelpath.New(tb.Hosts[0], ia, kp)
		kb := kernelpath.New(tb.Hosts[1], ib, kp)
		return tb, ka, kb
	default:
		// The shared-medium Ethernet model couples both hosts on one
		// engine; this path always runs serially.
		tb := testbed.New(testbed.Config{Hosts: 2})
		en := kernelpath.NewEthernet(tb.Eng)
		pa := en.NewPort(1, 2)
		pb := en.NewPort(2, 1)
		ka := kernelpath.New(tb.Hosts[0], pa, kp)
		kb := kernelpath.New(tb.Hosts[1], pb, kp)
		return tb, ka, kb
	}
}

func udpParamsFor(kind PathKind) udp.Params {
	if kind == PathUNet {
		return udp.DefaultParams()
	}
	return kernelpath.UDPParams()
}

func tcpParamsFor(kind PathKind, window int) tcp.Params {
	if kind == PathUNet {
		p := tcp.DefaultParams()
		if window > 0 {
			p.WindowBytes = window
		}
		return p
	}
	p := kernelpath.TCPParams(window)
	if kind == PathKernelEth {
		p.MSS = 1460 // Ethernet MTU
	}
	return p
}

// UDPRTT measures the UDP echo round trip for size-byte payloads.
func UDPRTT(kind PathKind, size, rounds int) time.Duration {
	tb, ca, cb := ipPair(kind)
	defer tb.Close()
	sa := udp.NewStack(ca, udpParamsFor(kind))
	sb := udp.NewStack(cb, udpParamsFor(kind))
	ska, err := sa.Bind(1, 0)
	mustNoErr(err, "bind")
	skb, err := sb.Bind(2, 0)
	mustNoErr(err, "bind")
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			data, src, ok := skb.RecvFrom(p, time.Second)
			if !ok {
				return
			}
			skb.SendTo(p, src, data)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			ska.SendTo(p, 2, make([]byte, size))
			if _, _, ok := ska.RecvFrom(p, time.Second); !ok {
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

// UDPBandwidth blasts count size-byte datagrams and reports the
// sender-perceived and receiver-observed bandwidths in MB/s (the two
// kernel curves of Figure 7; for U-Net they coincide because nothing is
// lost).
func UDPBandwidth(kind PathKind, size, count int) (sentMBps, recvMBps float64) {
	tb, ca, cb := ipPair(kind)
	defer tb.Close()
	sa := udp.NewStack(ca, udpParamsFor(kind))
	sb := udp.NewStack(cb, udpParamsFor(kind))
	ska, err := sa.Bind(1, 0)
	mustNoErr(err, "bind")
	skb, err := sb.Bind(2, 0)
	mustNoErr(err, "bind")
	var sendElapsed time.Duration
	received := 0
	var recvStart, recvEnd time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for {
			if _, _, ok := skb.RecvFrom(p, 20*time.Millisecond); !ok {
				return
			}
			received++
			if received == 1 {
				recvStart = p.Now()
			} else {
				recvEnd = p.Now()
			}
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < count; i++ {
			ska.SendTo(p, 2, make([]byte, size))
		}
		sendElapsed = p.Now() - start
	})
	tb.Eng.Run()
	sentMBps = float64(size*count) / sendElapsed.Seconds() / 1e6
	if recvEnd > recvStart {
		recvMBps = float64(size*(received-1)) / (recvEnd - recvStart).Seconds() / 1e6
	}
	return sentMBps, recvMBps
}

// TCPRTT measures the TCP echo round trip for size-byte messages.
func TCPRTT(kind PathKind, size, rounds int) time.Duration {
	tb, ca, cb := ipPairSock(kind, 64<<10)
	defer tb.Close()
	a := tcp.New(ca, 5000, 80, tcpParamsFor(kind, 0))
	b := tcp.New(cb, 80, 5000, tcpParamsFor(kind, 0))
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		for i := 0; i < rounds+1; i++ {
			if !readFull(p, b, buf) {
				return
			}
			b.Write(p, buf)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, size)
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			a.Write(p, buf)
			if !readFull(p, a, buf) {
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

func readFull(p *sim.Proc, c *tcp.Conn, buf []byte) bool {
	n := 0
	for n < len(buf) {
		m, err := c.Read(p, buf[n:], 2*time.Second)
		if err != nil {
			return false
		}
		if m == 0 {
			return false
		}
		n += m
	}
	return true
}

// TCPBandwidth transfers total bytes written in writeSize chunks with the
// given receive window and reports MB/s (Figure 8).
func TCPBandwidth(kind PathKind, window, writeSize, total int) float64 {
	tb, ca, cb := ipPairSock(kind, window+(16<<10))
	defer tb.Close()
	a := tcp.New(ca, 5000, 80, tcpParamsFor(kind, window))
	b := tcp.New(cb, 80, 5000, tcpParamsFor(kind, window))
	var start, end time.Duration
	got := 0
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, time.Second); err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 120*time.Second
		for got < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 500*time.Millisecond)
			if err != nil {
				return
			}
			if n > 0 {
				got += n
				end = p.Now()
			}
		}
		for k := 0; k < 300; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, time.Second); err != nil {
			return
		}
		start = p.Now()
		buf := make([]byte, writeSize)
		for off := 0; off < total; off += writeSize {
			if err := a.Write(p, buf); err != nil {
				return
			}
		}
		a.Flush(p, 100*time.Second)
	})
	tb.Eng.Run()
	if end <= start {
		return 0
	}
	return float64(got) / (end - start).Seconds() / 1e6
}

// UNetUDPNoChecksumRTT measures UDP round trips with the checksum
// switched off (§7.6 ablation).
func UNetUDPNoChecksumRTT(size, rounds int) time.Duration {
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shardCount(), Sync: Sync})
	defer tb.Close()
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	mustNoErr(err, "pair")
	params := udp.DefaultParams()
	params.Checksum = false
	sa := udp.NewStack(ca, params)
	sb := udp.NewStack(cb, params)
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			d, src, ok := skb.RecvFrom(p, time.Second)
			if !ok {
				return
			}
			skb.SendTo(p, src, d)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			ska.SendTo(p, 2, make([]byte, size))
			if _, _, ok := ska.RecvFrom(p, time.Second); !ok {
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}
