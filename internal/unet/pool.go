package unet

// Free-list pools backing the steady-state zero-allocation data path
// (DESIGN.md §10). The paper's core claim (§2.1) is that per-message
// processing overhead, not wire time, dominates small-message cost; in this
// simulator the analogous overhead is the Go allocator on the per-message
// path. These pools recycle the two kinds of NI-owned descriptor memory —
// inline payload slabs and buffer-offset lists — so that once a workload
// reaches its high-water mark, moving a message end to end allocates
// nothing.
//
// Ownership protocol: the NIC takes memory out of a pool when it assembles
// a RecvDesc, the descriptor carries it through the receive queue, and the
// application returns it with Endpoint.Consume when it has finished with
// the descriptor. Consume is optional for correctness — an unreturned slab
// is simply garbage-collected and the pool allocates a replacement — but
// required for the zero-allocation steady state; PoolStats.Live makes
// forgotten returns visible to tests.

// PoolStats counts pool traffic. Gets - Puts is the number of items
// currently checked out; Allocs is how many had to be freshly allocated
// (zero in steady state).
type PoolStats struct {
	Gets   uint64
	Puts   uint64
	Allocs uint64
}

// Live reports how many items are checked out of the pool right now.
func (s PoolStats) Live() int { return int(s.Gets - s.Puts) }

// BufPool is a free-list arena of byte slabs. The zero value is ready to
// use. Slabs are handed out at zero length and whatever capacity they last
// grew to; consumers extend them with append, so the arena converges on the
// workload's high-water slab size and then stops allocating. GetBuf/PutBuf
// satisfy atm.BufSource, making the pool pluggable as a reassembly arena.
type BufPool struct {
	free  [][]byte
	stats PoolStats
}

// GetBuf pops a slab (len 0), allocating only when the free list is empty.
func (p *BufPool) GetBuf() []byte {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	p.stats.Allocs++
	return nil // grown by the consumer's append
}

// PutBuf returns a slab to the pool. The caller must not use b afterwards.
func (p *BufPool) PutBuf(b []byte) {
	p.stats.Puts++
	p.free = append(p.free, b[:0])
}

// Stats returns a snapshot of the pool counters.
func (p *BufPool) Stats() PoolStats { return p.stats }

// OffsetsPool is a free-list arena of buffer-offset lists (the Buffers
// field of multi-buffer RecvDescs). The zero value is ready to use.
type OffsetsPool struct {
	free  [][]int
	stats PoolStats
}

// GetOffsets pops an offset list (len 0).
func (p *OffsetsPool) GetOffsets() []int {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	p.stats.Allocs++
	return nil
}

// PutOffsets returns an offset list to the pool.
func (p *OffsetsPool) PutOffsets(s []int) {
	p.stats.Puts++
	p.free = append(p.free, s[:0])
}

// Stats returns a snapshot of the pool counters.
func (p *OffsetsPool) Stats() PoolStats { return p.stats }

// DescRecycler is implemented by devices whose RecvDesc memory is
// pool-backed. Endpoint.Consume routes descriptor memory back through it;
// devices without pools simply don't implement it and Consume is a no-op.
type DescRecycler interface {
	// RecycleInline takes back the Inline slab of a consumed descriptor.
	RecycleInline(buf []byte)
	// RecycleOffsets takes back the Buffers list of a consumed descriptor
	// (the offsets themselves must already have been returned through the
	// free queue with PushFree).
	RecycleOffsets(offs []int)
}
