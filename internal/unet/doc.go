// Package unet implements the U-Net user-level network interface
// architecture (paper §3): the paper's primary contribution.
//
// The architecture gives each process the illusion of owning the network
// interface. Its three building blocks are implemented here exactly as
// described:
//
//   - Endpoints are an application's handle into the network (§3.1). Each
//     endpoint owns a communication segment — a bounded region of memory
//     holding message data — and three message queues: a send queue of
//     descriptors for outgoing messages, a receive queue of descriptors for
//     arrived messages, and a free queue of buffers handed to the network
//     interface for arriving data.
//
//   - Communication channels (§3.2) bind an endpoint pair to the message
//     tag — here, an ATM transmit/receive VCI pair — that the network
//     interface multiplexes and demultiplexes on. Channels are created by
//     the kernel agent (Kernel, Manager) which performs authentication,
//     route set-up and tag registration; the data path never enters the
//     kernel.
//
//   - Protection (§3.2) follows from endpoints, segments and queues being
//     accessible only to the owning process, and from the NI tagging
//     outgoing messages with the originating endpoint's channel and
//     demultiplexing incoming messages to the correct destination endpoint
//     only.
//
// The package implements the base-level architecture (§3.4) including the
// single-cell descriptor optimization for small messages, the optional
// direct-access mode (§3.6) where senders name a deposit offset in the
// receiver's segment, and kernel-emulated endpoints (§3.5) multiplexed
// over one real endpoint.
//
// Hardware independence: unet talks to the network through the Device
// interface; internal/nic provides the SBA-200 (custom i960 firmware,
// §4.2) and SBA-100 (§4.1) device models. Applications run as simulated
// processes (internal/sim) and every operation charges the calibrated CPU
// costs in NodeParams, so that latency and bandwidth measured against this
// package reproduce the paper's Figures 3-4 and Tables 1 and 3.
package unet
