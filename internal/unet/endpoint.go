package unet

import (
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// EndpointConfig sizes an endpoint's resources. The base-level architecture
// treats communication segments as a limited resource with a bounded size
// (§3.4); the kernel enforces Limits against these values.
type EndpointConfig struct {
	// SegmentSize is the communication segment size in bytes.
	SegmentSize int
	// RecvBufSize is the fixed size of receive buffers provided through
	// the free queue. UAM uses 4160-byte buffers (§5.2).
	RecvBufSize int
	// SendQueueCap, RecvQueueCap and FreeQueueCap bound the three message
	// queues.
	SendQueueCap int
	RecvQueueCap int
	FreeQueueCap int
	// DirectAccess permits senders to deposit data at offsets in this
	// segment (direct-access U-Net, §3.6).
	DirectAccess bool
}

// DefaultEndpointConfig returns the sizing used by the prototype layers.
func DefaultEndpointConfig() EndpointConfig {
	return EndpointConfig{
		SegmentSize:  256 << 10,
		RecvBufSize:  4160,
		SendQueueCap: 64,
		RecvQueueCap: 64,
		FreeQueueCap: 256,
	}
}

func (c *EndpointConfig) fillDefaults() {
	d := DefaultEndpointConfig()
	if c.SegmentSize <= 0 {
		c.SegmentSize = d.SegmentSize
	}
	if c.RecvBufSize <= 0 {
		c.RecvBufSize = d.RecvBufSize
	}
	if c.SendQueueCap <= 0 {
		c.SendQueueCap = d.SendQueueCap
	}
	if c.RecvQueueCap <= 0 {
		c.RecvQueueCap = d.RecvQueueCap
	}
	if c.FreeQueueCap <= 0 {
		c.FreeQueueCap = d.FreeQueueCap
	}
}

// UpcallMode selects the receive-queue condition that triggers the upcall
// (§3.1): non-empty for event-driven reception, almost-full to react before
// the queue overflows.
type UpcallMode int

// Upcall trigger conditions.
const (
	UpcallNone UpcallMode = iota
	UpcallNonEmpty
	UpcallAlmostFull
)

type chanInfo struct {
	tx, rx atm.VCI
	open   bool
}

// Endpoint is an application's handle into the network (§3.1): a
// communication segment plus send, receive and free queues. All methods
// must be called from simulation context; methods taking a *sim.Proc
// charge that process the host CPU cost of the operation (a nil proc
// performs the operation free of charge, for set-up code).
type Endpoint struct {
	host  *Host
	owner *Process
	cfg   EndpointConfig
	seg   []byte

	sendQ *sim.FIFO[SendDesc]
	recvQ *sim.FIFO[RecvDesc]
	freeQ *sim.FIFO[int]

	chans []chanInfo

	txSpace sim.Cond // signaled when the NI consumes a send descriptor

	upcall         func()
	upcallMode     UpcallMode
	upcallSignal   bool
	upcallDisabled bool
	upcallPending  bool

	stats  EndpointStats
	closed bool
}

func newEndpoint(owner *Process, cfg EndpointConfig) *Endpoint {
	return &Endpoint{
		host:  owner.host,
		owner: owner,
		cfg:   cfg,
		seg:   make([]byte, cfg.SegmentSize),
		sendQ: sim.NewFIFO[SendDesc](cfg.SendQueueCap),
		recvQ: sim.NewFIFO[RecvDesc](cfg.RecvQueueCap),
		freeQ: sim.NewFIFO[int](cfg.FreeQueueCap),
	}
}

// Host returns the endpoint's host.
func (ep *Endpoint) Host() *Host { return ep.host }

// Owner returns the owning process.
func (ep *Endpoint) Owner() *Process { return ep.owner }

// Config returns the endpoint's configuration.
func (ep *Endpoint) Config() EndpointConfig { return ep.cfg }

// Stats returns a snapshot of the endpoint counters.
func (ep *Endpoint) Stats() EndpointStats { return ep.stats }

// Closed reports whether the endpoint has been destroyed.
func (ep *Endpoint) Closed() bool { return ep.closed }

// Segment exposes the communication segment. Holding the *Endpoint is the
// access capability; the segment is never shared between processes.
func (ep *Endpoint) Segment() []byte { return ep.seg }

func (ep *Endpoint) checkRange(off, n int) error {
	if off < 0 || n < 0 || off+n > len(ep.seg) {
		return ErrBadOffset
	}
	return nil
}

// Compose copies data into the segment at off, charging the copy cost.
// This is the application-to-segment copy that base-level U-Net ("zero
// copy" in the vernacular, §3.3) cannot avoid.
func (ep *Endpoint) Compose(p *sim.Proc, off int, data []byte) error {
	if err := ep.checkRange(off, len(data)); err != nil {
		return err
	}
	charge(p, ep.host.Params.CopyCost(len(data)))
	copy(ep.seg[off:], data)
	return nil
}

// ReadBuf copies n bytes out of the segment at off into buf, charging the
// copy cost. True zero copy (§3.4) is reading via Segment() directly
// without this call, when the data needs no longer-term home.
func (ep *Endpoint) ReadBuf(p *sim.Proc, off int, buf []byte) error {
	if err := ep.checkRange(off, len(buf)); err != nil {
		return err
	}
	charge(p, ep.host.Params.CopyCost(len(buf)))
	copy(buf, ep.seg[off:off+len(buf)])
	return nil
}

// Send pushes a message descriptor onto the send queue (§3.1). It
// validates the channel and buffer bounds, charges the descriptor-push
// cost, and returns ErrSendQueueFull when the NI is backed up, the
// back-pressure the architecture specifies.
func (ep *Endpoint) Send(p *sim.Proc, d SendDesc) error {
	if ep.closed {
		return ErrClosed
	}
	dev := ep.host.dev
	if dev == nil {
		return ErrNoDevice
	}
	if int(d.Channel) < 0 || int(d.Channel) >= len(ep.chans) || !ep.chans[d.Channel].open {
		return ErrNoChannel
	}
	if d.Inline != nil {
		d.Length = len(d.Inline)
		if d.Length > dev.SingleCellMax() {
			// Inline data too large for the fast path: stage it in the
			// segment? No — the architecture makes buffer management the
			// process's job, so reject rather than hide a copy.
			return ErrTooLong
		}
	} else if err := ep.checkRange(d.Offset, d.Length); err != nil {
		return err
	}
	if d.Length > dev.MTU() {
		return ErrTooLong
	}
	charge(p, ep.host.Params.DescriptorPush)
	if !ep.sendQ.TryPut(d) {
		return ErrSendQueueFull
	}
	dev.KickTx(ep)
	return nil
}

// SendBlock is Send that waits out back-pressure instead of failing.
func (ep *Endpoint) SendBlock(p *sim.Proc, d SendDesc) error {
	for {
		err := ep.Send(p, d)
		if err != ErrSendQueueFull {
			return err
		}
		p.Wait(&ep.txSpace)
	}
}

// SendFree reports how many descriptors fit in the send queue right now.
func (ep *Endpoint) SendFree() int { return ep.cfg.SendQueueCap - ep.sendQ.Len() }

// PollRecv checks the receive queue once (§3.1 polling reception),
// charging the poll cost.
func (ep *Endpoint) PollRecv(p *sim.Proc) (RecvDesc, bool) {
	charge(p, ep.host.Params.Poll)
	return ep.recvQ.TryGet()
}

// RecvPending reports how many descriptors wait in the receive queue,
// without charging a poll (used by layers that just drained it).
func (ep *Endpoint) RecvPending() int { return ep.recvQ.Len() }

// Recv blocks until a message descriptor is available. It models the
// polling receive loop the paper's measurements use (§4.2.3): the process
// is idle until arrival and pays one poll to pick the descriptor up. For
// the cost of UNIX-signal-driven reception use SetUpcall with signal=true;
// for an explicit select(2)-style block, RecvSelect.
func (ep *Endpoint) Recv(p *sim.Proc) RecvDesc {
	for {
		if rd, ok := ep.recvQ.TryGet(); ok {
			return rd
		}
		p.Wait(ep.recvQ.NotEmpty())
		charge(p, ep.host.Params.Poll)
	}
}

// RecvSelect blocks like Recv but charges the kernel select(2) wake-up
// cost, modeling a process that sleeps in the kernel instead of polling.
func (ep *Endpoint) RecvSelect(p *sim.Proc) RecvDesc {
	for {
		if rd, ok := ep.recvQ.TryGet(); ok {
			return rd
		}
		p.Wait(ep.recvQ.NotEmpty())
		charge(p, ep.host.Params.SelectWake)
	}
}

// RecvTimeout is Recv with a deadline; ok is false on timeout.
func (ep *Endpoint) RecvTimeout(p *sim.Proc, d time.Duration) (RecvDesc, bool) {
	rd, ok, tm := ep.RecvDeadline(p, p.Now()+d, sim.Timer{})
	tm.Cancel()
	return rd, ok
}

// RecvDeadline is Recv with an absolute deadline and a reusable timeout
// timer: tm carries the (possibly still armed) timeout event of the
// caller's previous RecvDeadline on this process, and the returned timer
// carries it onward. Protocol loops that repeatedly wait out the same
// retransmit deadline (UAM window stalls, TCP timer-granularity pumps)
// thread the timer through instead of scheduling and canceling an event
// per wake — under the wheel scheduler a re-arm is a sequence-number bump.
// The caller should Cancel the last returned timer when the wait episode
// ends; an un-canceled one is inert (the engine discards a detached
// timeout without advancing the clock) but occupies a queue slot until its
// deadline passes.
func (ep *Endpoint) RecvDeadline(p *sim.Proc, deadline time.Duration, tm sim.Timer) (RecvDesc, bool, sim.Timer) {
	for {
		if rd, ok := ep.recvQ.TryGet(); ok {
			return rd, true, tm
		}
		if deadline-p.Now() <= 0 {
			tm.Cancel()
			return RecvDesc{}, false, sim.Timer{}
		}
		ok, next := p.WaitUntil(ep.recvQ.NotEmpty(), deadline, tm)
		tm = next
		if ok {
			charge(p, ep.host.Params.Poll)
		}
	}
}

// Consume returns a received descriptor's NI-owned memory — the Inline
// payload slab of a single-cell arrival, the Buffers offset list of a
// multi-buffer one — to the device's pools (DESIGN.md §10). Call it once,
// after the last use of rd; the descriptor's Inline and Buffers must not be
// touched afterwards. Consume is free of virtual cost (the memory is a
// simulator artifact, not a modeled resource) and is optional for
// correctness: skipping it only costs allocations. Note that Consume does
// not push buffer offsets back onto the free queue — that is PushFree's
// job, with its modeled cost.
func (ep *Endpoint) Consume(rd RecvDesc) {
	rec, ok := ep.host.dev.(DescRecycler)
	if !ok {
		return
	}
	if rd.Inline != nil {
		rec.RecycleInline(rd.Inline)
	}
	if rd.Buffers != nil {
		rec.RecycleOffsets(rd.Buffers)
	}
}

// PushFree returns a receive buffer at segment offset off to the NI
// through the free queue (§3.1). Buffers must lie in the segment and are
// RecvBufSize bytes long.
func (ep *Endpoint) PushFree(p *sim.Proc, off int) error {
	if err := ep.checkRange(off, ep.cfg.RecvBufSize); err != nil {
		return err
	}
	charge(p, ep.host.Params.FreePush)
	if !ep.freeQ.TryPut(off) {
		return ErrLimit
	}
	return nil
}

// FreePending reports how many buffers are queued for the NI.
func (ep *Endpoint) FreePending() int { return ep.freeQ.Len() }

// ProvideRecvBuffers carves n receive buffers from the segment starting at
// base and pushes them all onto the free queue. Convenience for set-up
// code; returns the offset just past the last buffer.
func (ep *Endpoint) ProvideRecvBuffers(p *sim.Proc, base, n int) (int, error) {
	off := base
	for i := 0; i < n; i++ {
		if err := ep.PushFree(p, off); err != nil {
			return off, err
		}
		off += ep.cfg.RecvBufSize
	}
	return off, nil
}

// SetUpcall registers fn to run when the receive queue satisfies mode
// (§3.1). When signal is true the dispatch charges the UNIX-signal
// delivery latency; otherwise it models a cheap user-level interrupt.
// U-Net does not specify the upcall's nature, so fn runs in engine context
// and typically signals or spawns a handler process.
func (ep *Endpoint) SetUpcall(mode UpcallMode, signal bool, fn func()) {
	ep.upcallMode = mode
	ep.upcallSignal = signal
	ep.upcall = fn
}

// DisableUpcalls enters a critical section atomic w.r.t. message reception
// (§3.1). Cheap: it is a flag write.
func (ep *Endpoint) DisableUpcalls() { ep.upcallDisabled = true }

// EnableUpcalls leaves the critical section, firing a deferred upcall if
// the trigger condition occurred meanwhile.
func (ep *Endpoint) EnableUpcalls() {
	ep.upcallDisabled = false
	if ep.upcallPending {
		ep.upcallPending = false
		ep.fireUpcall()
	}
}

func (ep *Endpoint) fireUpcall() {
	if ep.upcall == nil || ep.upcallMode == UpcallNone {
		return
	}
	if ep.upcallDisabled {
		ep.upcallPending = true
		return
	}
	delay := time.Duration(0)
	if ep.upcallSignal {
		delay = ep.host.Params.SignalDelivery
	}
	fn := ep.upcall
	ep.host.Eng.After(delay, fn)
}

func (ep *Endpoint) maybeUpcall() {
	switch ep.upcallMode {
	case UpcallNonEmpty:
		if ep.recvQ.Len() == 1 {
			ep.fireUpcall()
		}
	case UpcallAlmostFull:
		if ep.recvQ.Len() >= ep.cfg.RecvQueueCap-1 {
			ep.fireUpcall()
		}
	}
}

// registerChannel is called by the Manager during channel set-up.
func (ep *Endpoint) registerChannel(tx, rx atm.VCI) ChannelID {
	ep.chans = append(ep.chans, chanInfo{tx: tx, rx: rx, open: true})
	return ChannelID(len(ep.chans) - 1)
}

func (ep *Endpoint) closeChannel(ch ChannelID) {
	if int(ch) >= 0 && int(ch) < len(ep.chans) {
		ep.chans[ch].open = false
	}
}

// ChannelVCIs reports the tag pair of a registered channel.
func (ep *Endpoint) ChannelVCIs(ch ChannelID) (tx, rx atm.VCI, ok bool) {
	if int(ch) < 0 || int(ch) >= len(ep.chans) || !ep.chans[ch].open {
		return 0, 0, false
	}
	ci := ep.chans[ch]
	return ci.tx, ci.rx, true
}

// --- Device-facing interface (the NI side of the queues) ---

// DevPopSend removes the next send descriptor for the NI, releasing one
// unit of back-pressure.
func (ep *Endpoint) DevPopSend() (SendDesc, bool) {
	d, ok := ep.sendQ.TryGet()
	if ok {
		ep.stats.Sent++
		ep.txSpace.Broadcast()
	}
	return d, ok
}

// DevSendPending reports whether send descriptors are waiting.
func (ep *Endpoint) DevSendPending() bool { return ep.sendQ.Len() > 0 }

// DevPopFree takes a receive buffer offset off the free queue.
func (ep *Endpoint) DevPopFree() (int, bool) { return ep.freeQ.TryGet() }

// DevDeliver pushes an arrival descriptor onto the receive queue,
// accounting a drop when the queue is full, and triggers the upcall
// machinery.
func (ep *Endpoint) DevDeliver(rd RecvDesc) bool {
	if !ep.recvQ.TryPut(rd) {
		ep.stats.DroppedQueueFull++
		return false
	}
	ep.stats.Received++
	ep.maybeUpcall()
	return true
}

// DevDropNoBuffer records an arrival discarded for want of a free buffer.
func (ep *Endpoint) DevDropNoBuffer() { ep.stats.DroppedNoBuffer++ }

// DevDropReassembly records an arrival discarded by AAL5 validation.
func (ep *Endpoint) DevDropReassembly() { ep.stats.DroppedReassembly++ }

// DevWriteSegment is the NI's DMA into the communication segment. Bounds
// are clipped: hardware writes through a validated map, so out-of-range
// indicates a model bug and panics.
func (ep *Endpoint) DevWriteSegment(off int, data []byte) {
	if err := ep.checkRange(off, len(data)); err != nil {
		panic("unet: device DMA outside segment")
	}
	copy(ep.seg[off:], data)
}

// DevReadSegment is the NI's DMA out of the communication segment.
func (ep *Endpoint) DevReadSegment(off, n int) []byte {
	return ep.DevReadSegmentAppend(nil, off, n)
}

// DevReadSegmentAppend is DevReadSegment writing into dst (which it extends
// and returns, like append), letting the NI reuse one DMA staging buffer
// across messages.
func (ep *Endpoint) DevReadSegmentAppend(dst []byte, off, n int) []byte {
	if err := ep.checkRange(off, n); err != nil {
		panic("unet: device DMA outside segment")
	}
	return append(dst, ep.seg[off:off+n]...)
}
