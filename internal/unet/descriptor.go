package unet

// ChannelID names a communication channel registered on an endpoint. It is
// the application-visible form of the message tag (§3.2): outgoing
// descriptors carry it so the NI can apply the right VCI, and incoming
// descriptors carry it to signal the message's origin.
type ChannelID int

// SendDesc describes one outgoing message (§3.4). The data either lies in
// the communication segment at [Offset, Offset+Length) or — for messages no
// larger than the device's single-cell limit — travels inline in the
// descriptor itself, the small-message optimization of §3.4 that "avoids
// buffer management overheads and can improve the round-trip latency
// substantially".
type SendDesc struct {
	// Channel selects the registered destination.
	Channel ChannelID
	// Offset and Length locate the message in the communication segment
	// when Inline is nil.
	Offset int
	Length int
	// Inline, when non-nil, carries the entire message in the descriptor.
	Inline []byte
	// Direct marks a direct-access send (§3.6): the data is deposited in
	// the destination communication segment at DstOffset instead of into
	// receive buffers. The destination endpoint must enable direct access.
	Direct    bool
	DstOffset int
}

// RecvDesc describes one arrived message (§3.4).
//
// Buffer ownership (DESIGN.md §10): the Inline slab and the Buffers list
// are NI-owned pooled memory on loan to the application. The application
// returns them — after its last use of the descriptor — with
// Endpoint.Consume; until then they are exclusively the application's
// (the NI never rewrites a delivered descriptor's memory).
type RecvDesc struct {
	// Channel identifies the channel the message arrived on (its origin).
	Channel ChannelID
	// Length is the total message length.
	Length int
	// Inline holds the whole message for single-cell arrivals, which the
	// NI stores directly in the receive-queue entry (§4.2.2). The slab is
	// pool-backed; return it with Endpoint.Consume.
	Inline []byte
	// Buffers lists the segment offsets of the fixed-size receive buffers
	// holding the data, in order. Multi-buffer messages occur when a PDU
	// exceeds the endpoint's receive buffer size. The buffers themselves
	// are recycled through PushFree; the list is pool-backed and returned
	// with Endpoint.Consume.
	Buffers []int
	// Direct reports a direct-access deposit (§3.6): the data was written
	// straight into the segment at DirectOffset and no receive buffers
	// were consumed.
	Direct       bool
	DirectOffset int
}

// EndpointStats counts data-path events on one endpoint.
type EndpointStats struct {
	// Sent counts descriptors consumed by the NI.
	Sent uint64
	// Received counts descriptors delivered to the receive queue.
	Received uint64
	// DroppedNoBuffer counts arrivals discarded because the free queue was
	// empty.
	DroppedNoBuffer uint64
	// DroppedQueueFull counts arrivals discarded because the receive queue
	// was full.
	DroppedQueueFull uint64
	// DroppedReassembly counts arrivals discarded due to AAL5 CRC/length
	// failure (lost or corrupted cells).
	DroppedReassembly uint64
}
