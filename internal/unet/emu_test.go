package unet_test

import (
	"bytes"
	"testing"
	"time"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

// Kernel-emulated endpoint tests (§3.5): emulated endpoints look like real
// ones to the application but are multiplexed by the kernel over a single
// real endpoint per host, trading performance for NI resources.

func emuFixture(t *testing.T, hosts int) *testbed.Testbed {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: hosts})
	t.Cleanup(tb.Close)
	for _, h := range tb.Hosts {
		if err := h.Kernel.EnableEmulation(nil); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestEmulatedRoundTrip(t *testing.T) {
	tb := emuFixture(t, 2)
	ea, err := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, tb.Hosts[0].NewProcess("a"))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := tb.Hosts[1].Kernel.CreateEmuEndpoint(nil, tb.Hosts[1].NewProcess("b"))
	if err != nil {
		t.Fatal(err)
	}
	chA, chB, err := unet.EmuConnect(nil, tb.Manager, ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		r := eb.Recv(p)
		got = r.Data
		eb.Send(p, chB, append([]byte("re: "), r.Data...))
	})
	var reply []byte
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := ea.Send(p, chA, []byte("ping")); err != nil {
			t.Error(err)
			return
		}
		reply = ea.Recv(p).Data
	})
	tb.Eng.Run()
	if !bytes.Equal(got, []byte("ping")) || !bytes.Equal(reply, []byte("re: ping")) {
		t.Fatalf("got %q, reply %q", got, reply)
	}
}

func TestEmulatedEndpointsShareOneRealEndpoint(t *testing.T) {
	// Many emulated endpoints must not consume NI endpoint slots: the
	// device still serves exactly one (kernel) endpoint per host.
	tb := emuFixture(t, 2)
	before := tb.Hosts[0].Kernel.Endpoints()
	owner := tb.Hosts[0].NewProcess("many")
	for i := 0; i < 50; i++ {
		if _, err := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, owner); err != nil {
			t.Fatalf("emulated endpoint %d: %v", i, err)
		}
	}
	if got := tb.Hosts[0].Kernel.Endpoints(); got != before {
		t.Fatalf("real endpoints grew from %d to %d", before, got)
	}
}

func TestEmulatedDemultiplexing(t *testing.T) {
	// Two emulated endpoints per host over the same kernel channel:
	// messages must reach the right one.
	tb := emuFixture(t, 2)
	mk := func(h int, name string) *unet.EmuEndpoint {
		ee, err := tb.Hosts[h].Kernel.CreateEmuEndpoint(nil, tb.Hosts[h].NewProcess(name))
		if err != nil {
			t.Fatal(err)
		}
		return ee
	}
	a1, a2 := mk(0, "a1"), mk(0, "a2")
	b1, b2 := mk(1, "b1"), mk(1, "b2")
	ch1a, _, err := unet.EmuConnect(nil, tb.Manager, a1, b1)
	if err != nil {
		t.Fatal(err)
	}
	ch2a, _, err := unet.EmuConnect(nil, tb.Manager, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	var got1, got2 []byte
	tb.Hosts[1].Spawn("b1", func(p *sim.Proc) { got1 = b1.Recv(p).Data })
	tb.Hosts[1].Spawn("b2", func(p *sim.Proc) { got2 = b2.Recv(p).Data })
	tb.Hosts[0].Spawn("a", func(p *sim.Proc) {
		a1.Send(p, ch1a, []byte("for b1"))
		a2.Send(p, ch2a, []byte("for b2"))
	})
	tb.Eng.Run()
	if string(got1) != "for b1" || string(got2) != "for b2" {
		t.Fatalf("demux failed: b1=%q b2=%q", got1, got2)
	}
}

func TestEmulatedSlowerThanReal(t *testing.T) {
	// §3.5: "the performance characteristics are quite different". An
	// emulated round trip pays four traps and extra copies.
	tb := emuFixture(t, 2)
	ea, _ := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, tb.Hosts[0].NewProcess("a"))
	eb, _ := tb.Hosts[1].Kernel.CreateEmuEndpoint(nil, tb.Hosts[1].NewProcess("b"))
	chA, chB, err := unet.EmuConnect(nil, tb.Manager, ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	var emuRTT time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			r := eb.Recv(p)
			eb.Send(p, chB, r.Data)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			ea.Send(p, chA, []byte("x"))
			ea.Recv(p)
		}
		emuRTT = (p.Now() - start) / rounds
	})
	tb.Eng.Run()
	// Real endpoints round-trip a small message in ~65 µs; emulation must
	// cost visibly more (≥ 4 × Syscall on top).
	minExpected := 65*time.Microsecond + 4*tb.Hosts[0].Params.Syscall
	if emuRTT < minExpected {
		t.Fatalf("emulated RTT %v suspiciously fast (< %v)", emuRTT, minExpected)
	}
}

func TestEmulatedOversizedRejected(t *testing.T) {
	tb := emuFixture(t, 2)
	ea, _ := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, tb.Hosts[0].NewProcess("a"))
	eb, _ := tb.Hosts[1].Kernel.CreateEmuEndpoint(nil, tb.Hosts[1].NewProcess("b"))
	chA, _, err := unet.EmuConnect(nil, tb.Manager, ea, eb)
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		sendErr = ea.Send(p, chA, make([]byte, 64<<10))
	})
	tb.Eng.Run()
	if sendErr == nil {
		t.Fatal("oversized emulated send accepted")
	}
}

func TestEmulationBeforeEnableFails(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	if _, err := tb.Hosts[0].Kernel.CreateEmuEndpoint(nil, tb.Hosts[0].NewProcess("a")); err == nil {
		t.Fatal("CreateEmuEndpoint succeeded without EnableEmulation")
	}
}
