package unet

import "time"

// NodeParams is the host CPU cost model: the time a SPARCstation-20-class
// workstation spends on each U-Net host-side operation. The values are
// calibrated against the paper's measurements; calibration tests assert the
// headline numbers they combine into.
type NodeParams struct {
	// CopyPerByte is the cost of moving one byte between application data
	// structures and the communication segment. Calibration: the UAM block
	// transfer slope of 0.2 µs/byte round trip (§5.2) is the raw per-byte
	// wire cost plus two of these copies each way.
	CopyPerByte time.Duration

	// ChecksumPerByte is the cost of summing one byte in software.
	// Calibration: "1 µs per 100 bytes on a SPARCstation-20" (§7.6).
	ChecksumPerByte time.Duration

	// DescriptorPush is the cost of pushing a descriptor onto an
	// NI-resident queue: a double-word store across the I/O bus (§4.2.2).
	DescriptorPush time.Duration

	// Poll is the cost of checking the (host-memory-resident) receive
	// queue once.
	Poll time.Duration

	// FreePush is the cost of returning a buffer to the NI-resident free
	// queue.
	FreePush time.Duration

	// Syscall is the trap+return cost of entering the kernel, paid only on
	// the set-up path (endpoint and channel management) and by emulated
	// endpoints on every operation.
	Syscall time.Duration

	// SignalDelivery is the cost of taking a UNIX signal as the upcall
	// mechanism. Calibration: "using a UNIX signal to indicate message
	// arrival instead of polling adds approximately another 30 µs on each
	// end" (§4.2.3).
	SignalDelivery time.Duration

	// SelectWake is the scheduler cost of unblocking from a select-style
	// blocking receive.
	SelectWake time.Duration
}

// DefaultNodeParams returns the SPARCstation-20 (60 MHz SuperSPARC,
// SunOS 4.1.3) cost model used throughout the paper's measurements.
func DefaultNodeParams() NodeParams {
	return NodeParams{
		CopyPerByte:     17 * time.Nanosecond, // ~59 MB/s memcpy
		ChecksumPerByte: 10 * time.Nanosecond, // 1 µs / 100 bytes (§7.6)
		DescriptorPush:  800 * time.Nanosecond,
		Poll:            300 * time.Nanosecond,
		FreePush:        500 * time.Nanosecond,
		Syscall:         15 * time.Microsecond,
		SignalDelivery:  30 * time.Microsecond, // §4.2.3
		SelectWake:      5 * time.Microsecond,
	}
}

// CopyCost returns the CPU time to copy n bytes.
func (p *NodeParams) CopyCost(n int) time.Duration {
	return time.Duration(n) * p.CopyPerByte
}

// ChecksumCost returns the CPU time to checksum n bytes.
func (p *NodeParams) ChecksumCost(n int) time.Duration {
	return time.Duration(n) * p.ChecksumPerByte
}
