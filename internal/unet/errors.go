package unet

import "errors"

// Errors returned by the U-Net API.
var (
	// ErrSendQueueFull reports back-pressure: the NI has not yet drained
	// the send queue (§3.1: "eventually exert back-pressure to the user
	// process when the queue becomes full").
	ErrSendQueueFull = errors.New("unet: send queue full")
	// ErrNoChannel reports a send on an unregistered channel identifier —
	// the protection check that prevents a process from injecting messages
	// with tags it does not own (§3.2).
	ErrNoChannel = errors.New("unet: channel not registered on endpoint")
	// ErrTooLong reports a message exceeding the device MTU.
	ErrTooLong = errors.New("unet: message exceeds device MTU")
	// ErrBadOffset reports a descriptor naming memory outside the
	// communication segment — enforced because segments are the protection
	// boundary for NI memory access (§3.4).
	ErrBadOffset = errors.New("unet: buffer outside communication segment")
	// ErrNotOwner reports an operation by a process that does not own the
	// endpoint (§3.2: endpoints, segments and queues are only accessible
	// by the owning process).
	ErrNotOwner = errors.New("unet: caller does not own endpoint")
	// ErrLimit reports kernel resource-limit exhaustion (§3: managing
	// limited communication resources).
	ErrLimit = errors.New("unet: kernel resource limit exceeded")
	// ErrClosed reports use of a destroyed endpoint.
	ErrClosed = errors.New("unet: endpoint closed")
	// ErrNoDirectAccess reports a direct-access send toward an endpoint
	// that was not created with direct-access enabled (§3.6).
	ErrNoDirectAccess = errors.New("unet: endpoint does not allow direct access")
	// ErrNoDevice reports an operation on a host with no attached network
	// interface.
	ErrNoDevice = errors.New("unet: host has no attached network interface")
)
