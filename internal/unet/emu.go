package unet

import (
	"encoding/binary"
	"fmt"

	"unet/internal/sim"
)

// Kernel-emulated U-Net endpoints (§3.5). Communication segments and
// message queues are scarce, and many applications do not need full U-Net
// performance, so the kernel multiplexes any number of emulated endpoints
// onto a single real endpoint that it owns. To the application the API
// mirrors a regular endpoint, but every operation is a system call and the
// data crosses an extra kernel copy — exactly the performance difference
// the paper predicts, demonstrated by BenchmarkAblation in the harness.

// emuHeaderSize prefixes each emulated message: destination and source
// emulated-endpoint identifiers.
const emuHeaderSize = 4

// emuMTU bounds one emulated message (the kernel's staging buffers are a
// shared resource).
const emuMTU = 8192

// EmuChannelID names a channel registered on an emulated endpoint.
type EmuChannelID int

// EmuRecv is one message delivered to an emulated endpoint. Data lives in a
// kernel staging buffer on loan to the application: it is valid until the
// owner's next Recv or successful PollRecv on the same endpoint, which
// reclaims it (the §3.5 emulation's analogue of a socket buffer). Retain by
// copying.
type EmuRecv struct {
	Channel EmuChannelID
	Data    []byte
	slab    []byte // the staging buffer backing Data, recycled on the next Recv
}

type emuChan struct {
	kch      ChannelID // kernel endpoint channel toward the peer host
	remoteID uint16
	open     bool
}

// EmuEndpoint is a kernel-emulated U-Net endpoint (§3.5).
type EmuEndpoint struct {
	k       *Kernel
	owner   *Process
	id      uint16
	chans   []emuChan
	rx      *sim.FIFO[EmuRecv]
	drops   uint64
	pending []byte // last delivered slab, reclaimed on the next Recv/PollRecv
}

type emuState struct {
	proc   *Process
	kep    *Endpoint
	emus   map[uint16]*EmuEndpoint
	nextID uint16
	peerCh map[*Host]ChannelID
	txBase int // staging region base in the kernel segment
	txSize int
	txNext int
	// pool recycles receive staging slabs (out through EmuRecv, back on the
	// consumer's next Recv) and transmit packet-assembly buffers, keeping
	// the emulation path allocation-free in steady state like the real one.
	pool BufPool
}

// EnableEmulation sets up the kernel's real endpoint and service process.
// Idempotent.
func (k *Kernel) EnableEmulation(p *sim.Proc) error {
	if k.emu != nil {
		return nil
	}
	owner := k.host.NewProcess("kernel")
	cfg := EndpointConfig{
		SegmentSize:  512 << 10,
		RecvBufSize:  4160,
		SendQueueCap: 16,
		RecvQueueCap: 128,
		FreeQueueCap: 128,
	}
	// The kernel is not subject to its own user-process limits.
	saved := k.limits
	k.limits = Limits{MaxEndpoints: saved.MaxEndpoints + 1, MaxSegmentBytes: cfg.SegmentSize, MaxQueueCap: 1024}
	kep, err := k.CreateEndpoint(p, owner, cfg)
	k.limits = saved
	if err != nil {
		return fmt.Errorf("unet: enabling emulation: %w", err)
	}
	st := &emuState{
		proc:   owner,
		kep:    kep,
		emus:   make(map[uint16]*EmuEndpoint),
		peerCh: make(map[*Host]ChannelID),
		txBase: 0,
		txSize: 160 << 10,
	}
	// Receive buffers occupy the rest of the kernel segment.
	if _, err := kep.ProvideRecvBuffers(p, st.txSize, 64); err != nil {
		return err
	}
	k.emu = st
	k.host.Spawn("kernel-emu", k.emuService)
	return nil
}

// emuService is the kernel process that demultiplexes arrivals on the real
// endpoint to emulated endpoints.
func (k *Kernel) emuService(p *sim.Proc) {
	st := k.emu
	for {
		rd := st.kep.Recv(p)
		data := k.emuGather(p, rd)
		if len(data) < emuHeaderSize {
			st.pool.PutBuf(data)
			continue
		}
		dst := binary.BigEndian.Uint16(data[0:2])
		src := binary.BigEndian.Uint16(data[2:4])
		ee, ok := st.emus[dst]
		if !ok {
			st.pool.PutBuf(data)
			continue
		}
		ch, ok := ee.chanFrom(rd.Channel, src)
		if !ok {
			st.pool.PutBuf(data)
			continue
		}
		if !ee.rx.TryPut(EmuRecv{Channel: ch, Data: data[emuHeaderSize:], slab: data}) {
			ee.drops++
			st.pool.PutBuf(data)
		}
	}
}

// emuGather copies a received message out of the kernel endpoint's buffers
// (the extra kernel copy emulation costs) into a pooled staging slab and
// recycles the buffers and the descriptor's pooled memory.
func (k *Kernel) emuGather(p *sim.Proc, rd RecvDesc) []byte {
	st := k.emu
	out := st.pool.GetBuf()
	if rd.Inline != nil {
		out = append(out, rd.Inline...)
		st.kep.Consume(rd)
		return out
	}
	for cap(out) < rd.Length {
		out = append(out[:cap(out)], 0)
	}
	out = out[:rd.Length]
	n := 0
	for _, off := range rd.Buffers {
		chunk := rd.Length - n
		if chunk > st.kep.cfg.RecvBufSize {
			chunk = st.kep.cfg.RecvBufSize
		}
		if err := st.kep.ReadBuf(p, off, out[n:n+chunk]); err != nil {
			panic(err)
		}
		n += chunk
		if err := st.kep.PushFree(p, off); err != nil {
			panic(err)
		}
	}
	st.kep.Consume(rd)
	return out
}

// chanFrom maps (kernel channel, remote emu id) back to the local channel.
func (ee *EmuEndpoint) chanFrom(kch ChannelID, remote uint16) (EmuChannelID, bool) {
	for i, c := range ee.chans {
		if c.open && c.kch == kch && c.remoteID == remote {
			return EmuChannelID(i), true
		}
	}
	return 0, false
}

// CreateEmuEndpoint allocates an emulated endpoint for owner. Unlike real
// endpoints these consume no NI resources (§3.5), so no device or segment
// limits apply.
func (k *Kernel) CreateEmuEndpoint(p *sim.Proc, owner *Process) (*EmuEndpoint, error) {
	charge(p, k.host.Params.Syscall)
	if k.emu == nil {
		return nil, fmt.Errorf("unet: emulation not enabled on host %s", k.host.Name)
	}
	st := k.emu
	st.nextID++
	ee := &EmuEndpoint{k: k, owner: owner, id: st.nextID, rx: sim.NewFIFO[EmuRecv](256)}
	st.emus[ee.id] = ee
	return ee, nil
}

// EmuConnect builds a full-duplex channel between two emulated endpoints,
// reusing (or creating) the single kernel-to-kernel channel between the two
// hosts.
func EmuConnect(p *sim.Proc, m *Manager, a, b *EmuEndpoint) (EmuChannelID, EmuChannelID, error) {
	ka, kb := a.k, b.k
	if ka.emu == nil || kb.emu == nil {
		return 0, 0, fmt.Errorf("unet: emulation not enabled")
	}
	kchA, okA := ka.emu.peerCh[kb.host]
	kchB, okB := kb.emu.peerCh[ka.host]
	if !okA || !okB {
		ch, err := m.Connect(p, ka.emu.kep, kb.emu.kep)
		if err != nil {
			return 0, 0, err
		}
		kchA, kchB = ch.ChanA, ch.ChanB
		ka.emu.peerCh[kb.host] = kchA
		kb.emu.peerCh[ka.host] = kchB
	}
	a.chans = append(a.chans, emuChan{kch: kchA, remoteID: b.id, open: true})
	b.chans = append(b.chans, emuChan{kch: kchB, remoteID: a.id, open: true})
	return EmuChannelID(len(a.chans) - 1), EmuChannelID(len(b.chans) - 1), nil
}

// Send transmits data on ch. The call traps into the kernel, copies the
// message into a kernel staging buffer and queues it on the kernel's real
// endpoint — the §3.5 cost structure.
func (ee *EmuEndpoint) Send(p *sim.Proc, ch EmuChannelID, data []byte) error {
	k := ee.k
	st := k.emu
	if int(ch) < 0 || int(ch) >= len(ee.chans) || !ee.chans[ch].open {
		return ErrNoChannel
	}
	if len(data) > emuMTU {
		return ErrTooLong
	}
	charge(p, k.host.Params.Syscall)
	c := ee.chans[ch]
	// Assemble in a pooled buffer, not a shared scratch: Compose can park
	// this process on its copy charge, letting another process enter Send
	// meanwhile. The buffer is done once Compose has copied it into the
	// staging region, so it goes back to the pool before SendBlock blocks.
	pkt := st.pool.GetBuf()
	pkt = binary.BigEndian.AppendUint16(pkt, c.remoteID)
	pkt = binary.BigEndian.AppendUint16(pkt, ee.id)
	pkt = append(pkt, data...)
	off := st.allocTx(len(pkt))
	err := st.kep.Compose(p, off, pkt)
	n := len(pkt)
	st.pool.PutBuf(pkt)
	if err != nil {
		return err
	}
	return st.kep.SendBlock(p, SendDesc{Channel: c.kch, Offset: off, Length: n})
}

// allocTx bump-allocates a staging buffer in the kernel segment. The
// region is large enough that a buffer cannot still be queued by the time
// it is reused (send queue cap × MTU < region size).
func (st *emuState) allocTx(n int) int {
	if st.txNext+n > st.txBase+st.txSize {
		st.txNext = st.txBase
	}
	off := st.txNext
	st.txNext += n
	return off
}

// reclaim returns the previously delivered staging slab to the kernel pool;
// the application's window on that Data has closed.
func (ee *EmuEndpoint) reclaim() {
	if ee.pending != nil {
		ee.k.emu.pool.PutBuf(ee.pending)
		ee.pending = nil
	}
}

// Recv blocks for the next message; the data has already been copied into
// kernel memory, and the final copy to the application plus the trap are
// charged here. The returned Data remains valid until the next Recv or
// successful PollRecv on this endpoint.
func (ee *EmuEndpoint) Recv(p *sim.Proc) EmuRecv {
	r := ee.rx.Get(p)
	ee.reclaim()
	ee.pending = r.slab
	charge(p, ee.k.host.Params.Syscall)
	charge(p, ee.k.host.Params.CopyCost(len(r.Data)))
	return r
}

// PollRecv checks for a message without blocking (still a trap).
func (ee *EmuEndpoint) PollRecv(p *sim.Proc) (EmuRecv, bool) {
	charge(p, ee.k.host.Params.Syscall)
	r, ok := ee.rx.TryGet()
	if ok {
		ee.reclaim()
		ee.pending = r.slab
		charge(p, ee.k.host.Params.CopyCost(len(r.Data)))
	}
	return r, ok
}

// Drops reports messages discarded because the emulated receive queue was
// full.
func (ee *EmuEndpoint) Drops() uint64 { return ee.drops }
