package unet_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

func newPair(t *testing.T, cfg unet.EndpointConfig, nbufs int) (*testbed.Testbed, *testbed.Pair) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, cfg, nbufs)
	if err != nil {
		t.Fatal(err)
	}
	return tb, pr
}

func TestSingleCellMessageRoundTrip(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 8)
	msg := []byte("ping!")
	var got []byte
	var gotCh unet.ChannelID
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		rd := pr.EpB.Recv(p)
		if rd.Inline == nil {
			t.Error("small message not delivered inline")
		}
		got = append([]byte(nil), rd.Inline...)
		gotCh = rd.Channel
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		if err := pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: msg}); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
	if gotCh != pr.ChB {
		t.Fatalf("origin channel = %d, want %d", gotCh, pr.ChB)
	}
}

func TestBufferedMessageRoundTrip(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 8)
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 600) // 1200 bytes, multi-cell
	var got []byte
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		rd := pr.EpB.Recv(p)
		if rd.Inline != nil {
			t.Error("large message delivered inline")
		}
		got = make([]byte, rd.Length)
		n := 0
		for _, off := range rd.Buffers {
			chunk := min(rd.Length-n, pr.EpB.Config().RecvBufSize)
			if err := pr.EpB.ReadBuf(p, off, got[n:n+chunk]); err != nil {
				t.Error(err)
			}
			n += chunk
		}
		testbed.Recycle(p, pr.EpB, rd)
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		if err := pr.EpA.Compose(p, pr.StageA, payload); err != nil {
			t.Error(err)
		}
		if err := pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: len(payload)}); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
}

func TestMultiBufferScatter(t *testing.T) {
	// A message larger than one receive buffer must scatter across several.
	cfg := unet.EndpointConfig{RecvBufSize: 1024}
	tb, pr := newPair(t, cfg, 8)
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var nbufs int
	var got []byte
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		rd := pr.EpB.Recv(p)
		nbufs = len(rd.Buffers)
		got = make([]byte, rd.Length)
		for i, off := range rd.Buffers {
			lo := i * 1024
			hi := min(lo+1024, rd.Length)
			pr.EpB.ReadBuf(p, off, got[lo:hi])
		}
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Compose(p, pr.StageA, payload)
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: len(payload)})
	})
	tb.Eng.Run()
	if nbufs != 3 {
		t.Fatalf("scattered into %d buffers, want 3", nbufs)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after scatter")
	}
}

func TestSendUnregisteredChannelRejected(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4)
	var err1, err2 error
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		err1 = pr.EpA.Send(p, unet.SendDesc{Channel: 99, Inline: []byte("x")})
		err2 = pr.EpA.Send(p, unet.SendDesc{Channel: -1, Inline: []byte("x")})
	})
	tb.Eng.Run()
	if !errors.Is(err1, unet.ErrNoChannel) || !errors.Is(err2, unet.ErrNoChannel) {
		t.Fatalf("errs = %v, %v; want ErrNoChannel", err1, err2)
	}
}

func TestSendOutOfSegmentRejected(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4)
	var errs []error
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		seg := len(pr.EpA.Segment())
		errs = append(errs,
			pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: seg - 10, Length: 100}),
			pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: -1, Length: 10}),
			pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: 0, Length: -5}),
		)
	})
	tb.Eng.Run()
	for i, err := range errs {
		if !errors.Is(err, unet.ErrBadOffset) {
			t.Fatalf("case %d: err = %v, want ErrBadOffset", i, err)
		}
	}
}

func TestSendBlockDrainsBackpressure(t *testing.T) {
	cfg := unet.EndpointConfig{SendQueueCap: 2}
	tb, pr := newPair(t, cfg, 8)
	const n = 30
	received := 0
	sawFull := false
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			rd := pr.EpB.Recv(p)
			testbed.Recycle(p, pr.EpB, rd)
			received++
		}
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// Demonstrate that plain Send reports back-pressure at least once
			// with a 2-deep queue, and that SendBlock always gets through.
			if err := pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}}); err != nil {
				if !errors.Is(err, unet.ErrSendQueueFull) {
					t.Error(err)
					return
				}
				sawFull = true
				if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}}); err != nil {
					t.Error(err)
				}
			}
		}
	})
	tb.Eng.Run()
	if received != n {
		t.Fatalf("received %d, want %d", received, n)
	}
	if !sawFull {
		t.Fatal("2-deep send queue never exerted back-pressure")
	}
}

func TestNoFreeBuffersDropsAndCounts(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 0) // no receive buffers at B
	payload := make([]byte, 500)
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Compose(p, pr.StageA, payload)
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: len(payload)})
	})
	tb.Eng.Run()
	st := pr.EpB.Stats()
	if st.DroppedNoBuffer != 1 {
		t.Fatalf("DroppedNoBuffer = %d, want 1", st.DroppedNoBuffer)
	}
	if st.Received != 0 {
		t.Fatalf("Received = %d, want 0", st.Received)
	}
}

func TestSingleCellNeedsNoFreeBuffer(t *testing.T) {
	// The receive fast path stores small messages in the queue entry
	// itself (§4.2.2), so they arrive even with an empty free queue.
	tb, pr := newPair(t, unet.EndpointConfig{}, 0)
	delivered := false
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		rd := pr.EpB.Recv(p)
		delivered = rd.Inline != nil
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte("small")})
	})
	tb.Eng.Run()
	if !delivered {
		t.Fatal("single-cell message not delivered without free buffers")
	}
}

func TestRecvQueueOverflowDrops(t *testing.T) {
	cfg := unet.EndpointConfig{RecvQueueCap: 4}
	tb, pr := newPair(t, cfg, 8)
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}})
		}
	})
	// No receiver drains B.
	tb.Eng.Run()
	st := pr.EpB.Stats()
	if st.Received != 4 {
		t.Fatalf("Received = %d, want 4 (queue cap)", st.Received)
	}
	if st.DroppedQueueFull != 6 {
		t.Fatalf("DroppedQueueFull = %d, want 6", st.DroppedQueueFull)
	}
}

func TestUpcallNonEmpty(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4)
	var upcalls int
	var drained int
	pr.EpB.SetUpcall(unet.UpcallNonEmpty, false, func() {
		upcalls++
		// Consume all pending messages in a single upcall (§3.1).
		for {
			rd, ok := pr.EpB.PollRecv(nil)
			if !ok {
				break
			}
			drained++
			_ = rd
		}
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}})
		}
	})
	tb.Eng.Run()
	if drained != 3 {
		t.Fatalf("drained %d messages, want 3", drained)
	}
	if upcalls == 0 {
		t.Fatal("upcall never fired")
	}
}

func TestUpcallDisableDefers(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4)
	fired := 0
	pr.EpB.SetUpcall(unet.UpcallNonEmpty, false, func() { fired++ })
	pr.EpB.DisableUpcalls()
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{1}})
	})
	tb.Eng.Run()
	if fired != 0 {
		t.Fatal("upcall fired inside critical section")
	}
	pr.EpB.EnableUpcalls()
	tb.Eng.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after EnableUpcalls, want 1", fired)
	}
}

func TestUpcallSignalCostsThirtyMicroseconds(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4)
	var polled, signaled time.Duration
	pr.EpB.SetUpcall(unet.UpcallNonEmpty, false, func() { polled = tb.Eng.Now() })
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{1}})
	})
	tb.Eng.Run()

	tb2, pr2 := newPair(t, unet.EndpointConfig{}, 4)
	pr2.EpB.SetUpcall(unet.UpcallNonEmpty, true, func() { signaled = tb2.Eng.Now() })
	pr2.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr2.EpA.Send(p, unet.SendDesc{Channel: pr2.ChA, Inline: []byte{1}})
	})
	tb2.Eng.Run()

	diff := signaled - polled
	want := pr2.EpB.Host().Params.SignalDelivery
	if diff != want {
		t.Fatalf("signal upcall added %v, want %v", diff, want)
	}
}

func TestUpcallAlmostFull(t *testing.T) {
	cfg := unet.EndpointConfig{RecvQueueCap: 4}
	tb, pr := newPair(t, cfg, 8)
	firedAt := -1
	pr.EpB.SetUpcall(unet.UpcallAlmostFull, false, func() {
		if firedAt < 0 {
			firedAt = int(pr.EpB.RecvPending())
		}
	})
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}})
		}
	})
	tb.Eng.Run()
	if firedAt != 3 {
		t.Fatalf("almost-full upcall at queue depth %d, want 3 (cap-1)", firedAt)
	}
}

func TestEndpointLimitEnforced(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	h := tb.Hosts[0]
	h.Kernel.SetLimits(unet.Limits{MaxEndpoints: 2, MaxSegmentBytes: 1 << 20, MaxQueueCap: 1024})
	owner := h.NewProcess("app")
	for i := 0; i < 2; i++ {
		if _, err := h.Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{}); err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
	}
	if _, err := h.Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{}); !errors.Is(err, unet.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestSegmentLimitEnforced(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	h := tb.Hosts[0]
	owner := h.NewProcess("app")
	big := unet.EndpointConfig{SegmentSize: 64 << 20}
	if _, err := h.Kernel.CreateEndpoint(nil, owner, big); !errors.Is(err, unet.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	// Direct-access endpoints may span the whole address space (§3.6).
	big.DirectAccess = true
	if _, err := h.Kernel.CreateEndpoint(nil, owner, big); err != nil {
		t.Fatalf("direct-access large segment rejected: %v", err)
	}
}

func TestDestroyRequiresOwner(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	h := tb.Hosts[0]
	owner := h.NewProcess("alice")
	mallory := h.NewProcess("mallory")
	ep, err := h.Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Kernel.DestroyEndpoint(nil, mallory, ep); !errors.Is(err, unet.ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
	if err := h.Kernel.DestroyEndpoint(nil, owner, ep); err != nil {
		t.Fatal(err)
	}
	if !ep.Closed() {
		t.Fatal("endpoint not closed after destroy")
	}
	var sendErr error
	h.Spawn("tx", func(p *sim.Proc) { sendErr = ep.Send(p, unet.SendDesc{}) })
	tb.Eng.Run()
	if !errors.Is(sendErr, unet.ErrClosed) {
		t.Fatalf("send on destroyed endpoint: %v, want ErrClosed", sendErr)
	}
}

func TestIsolationBetweenPairs(t *testing.T) {
	// Two independent channels on a 4-host cluster: traffic on one must
	// never appear on endpoints of the other (§3.2 protection).
	tb := testbed.New(testbed.Config{Hosts: 4})
	t.Cleanup(tb.Close)
	pr1, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := tb.NewPair(2, 3, unet.EndpointConfig{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr1.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			pr1.EpA.SendBlock(p, unet.SendDesc{Channel: pr1.ChA, Inline: []byte{byte(i)}})
		}
	})
	tb.Eng.Run()
	if got := pr1.EpB.Stats().Received; got != 5 {
		t.Fatalf("pair1 B received %d, want 5", got)
	}
	if got := pr2.EpB.Stats().Received; got != 0 {
		t.Fatalf("pair2 B received %d, want 0 (isolation violated)", got)
	}
	if got := pr2.EpA.Stats().Received; got != 0 {
		t.Fatalf("pair2 A received %d, want 0 (isolation violated)", got)
	}
}

func TestDirectAccessDeposit(t *testing.T) {
	cfg := unet.EndpointConfig{DirectAccess: true}
	tb, pr := newPair(t, cfg, 4)
	payload := bytes.Repeat([]byte{0x5A}, 2048)
	const dst = 100 << 10
	var rd unet.RecvDesc
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) { rd = pr.EpB.Recv(p) })
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Compose(p, pr.StageA, payload)
		err := pr.EpA.Send(p, unet.SendDesc{
			Channel: pr.ChA, Offset: pr.StageA, Length: len(payload),
			Direct: true, DstOffset: dst,
		})
		if err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !rd.Direct || rd.DirectOffset != dst {
		t.Fatalf("rd = %+v, want direct deposit at %d", rd, dst)
	}
	if len(rd.Buffers) != 0 {
		t.Fatal("direct deposit consumed receive buffers")
	}
	if !bytes.Equal(pr.EpB.Segment()[dst:dst+len(payload)], payload) {
		t.Fatal("data not deposited at destination offset")
	}
}

func TestDirectAccessDeniedWithoutCapability(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 4) // B is base-level only
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Compose(p, pr.StageA, make([]byte, 256))
		pr.EpA.Send(p, unet.SendDesc{
			Channel: pr.ChA, Offset: pr.StageA, Length: 256,
			Direct: true, DstOffset: 0,
		})
	})
	tb.Eng.Run()
	if got := pr.EpB.Stats().Received; got != 0 {
		t.Fatalf("direct PDU delivered to non-direct endpoint (%d)", got)
	}
	if pr.EpB.Stats().DroppedNoBuffer == 0 {
		t.Fatal("denied direct PDU not accounted")
	}
}

func TestComposeReadBufBounds(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 0)
	defer tb.Eng.Shutdown()
	if err := pr.EpA.Compose(nil, len(pr.EpA.Segment())-1, []byte{1, 2}); !errors.Is(err, unet.ErrBadOffset) {
		t.Fatalf("Compose out of range: %v", err)
	}
	if err := pr.EpA.ReadBuf(nil, -1, make([]byte, 1)); !errors.Is(err, unet.ErrBadOffset) {
		t.Fatalf("ReadBuf out of range: %v", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 0)
	var ok bool
	var woke time.Duration
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) {
		_, ok = pr.EpB.RecvTimeout(p, 50*time.Microsecond)
		woke = p.Now()
	})
	tb.Eng.Run()
	if ok {
		t.Fatal("RecvTimeout reported a message on an idle endpoint")
	}
	if woke != 50*time.Microsecond {
		t.Fatalf("woke at %v, want 50µs", woke)
	}
}

func TestManagerDisconnectStopsTraffic(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	prA := tb.Hosts[0].NewProcess("a")
	prB := tb.Hosts[1].NewProcess("b")
	epA, _ := tb.Hosts[0].Kernel.CreateEndpoint(nil, prA, unet.EndpointConfig{})
	epB, _ := tb.Hosts[1].Kernel.CreateEndpoint(nil, prB, unet.EndpointConfig{})
	ch, err := tb.Manager.Connect(nil, epA, epB)
	if err != nil {
		t.Fatal(err)
	}
	tb.Manager.Disconnect(nil, ch)
	var sendErr error
	tb.Hosts[0].Spawn("tx", func(p *sim.Proc) {
		sendErr = epA.Send(p, unet.SendDesc{Channel: ch.ChanA, Inline: []byte{1}})
	})
	tb.Eng.Run()
	if !errors.Is(sendErr, unet.ErrNoChannel) {
		t.Fatalf("send after disconnect: %v, want ErrNoChannel", sendErr)
	}
}

func TestMTUEnforced(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{SegmentSize: 1 << 20}, 0)
	defer tb.Eng.Shutdown()
	mtu := tb.Devices[0].MTU()
	if err := pr.EpA.Send(nil, unet.SendDesc{Channel: pr.ChA, Offset: 0, Length: mtu + 1}); !errors.Is(err, unet.ErrTooLong) {
		t.Fatalf("oversized send: %v, want ErrTooLong", err)
	}
}

func TestForeDeviceHasNoFastPath(t *testing.T) {
	nicp := nic.ForeParams()
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var rd unet.RecvDesc
	pr.EpB.Host().Spawn("rx", func(p *sim.Proc) { rd = pr.EpB.Recv(p) })
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		pr.EpA.Compose(p, pr.StageA, []byte("tiny"))
		pr.EpA.Send(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: 4})
	})
	tb.Eng.Run()
	if rd.Inline != nil {
		t.Fatal("Fore firmware model delivered inline (fast path should be absent)")
	}
	if rd.Length != 4 || len(rd.Buffers) != 1 {
		t.Fatalf("rd = %+v", rd)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAlmostFullUpcallPreventsOverflow(t *testing.T) {
	// The almost-full condition exists so a process can drain before the
	// receive queue overflows (§3.1). A receiver that drains from the
	// upcall survives a burst that would otherwise drop.
	cfg := unet.EndpointConfig{RecvQueueCap: 8}
	tb, pr := newPair(t, cfg, 8)
	drained := 0
	pr.EpB.SetUpcall(unet.UpcallAlmostFull, false, func() {
		for {
			rd, ok := pr.EpB.PollRecv(nil)
			if !ok {
				break
			}
			testbed.Recycle(nil, pr.EpB, rd)
			drained++
		}
	})
	const n = 64
	pr.EpA.Host().Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	tb.Eng.Run()
	st := pr.EpB.Stats()
	if st.DroppedQueueFull != 0 {
		t.Fatalf("dropped %d despite almost-full upcall", st.DroppedQueueFull)
	}
	if drained+pr.EpB.RecvPending() != n {
		t.Fatalf("drained %d + pending %d != %d", drained, pr.EpB.RecvPending(), n)
	}
}

func TestMultipleEndpointsPerProcess(t *testing.T) {
	// One process may own several endpoints (§3.1: "creates one or more
	// endpoints"); traffic stays per-endpoint.
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	owner := tb.Hosts[0].NewProcess("multi")
	peerOwner := tb.Hosts[1].NewProcess("peer")
	var eps []*unet.Endpoint
	var chans []unet.ChannelID
	var peers []*unet.Endpoint
	for i := 0; i < 3; i++ {
		ep, err := tb.Hosts[0].Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pe, err := tb.Hosts[1].Kernel.CreateEndpoint(nil, peerOwner, unet.EndpointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ch, err := tb.Manager.Connect(nil, ep, pe)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
		chans = append(chans, ch.ChanA)
		peers = append(peers, pe)
	}
	tb.Hosts[0].Spawn("tx", func(p *sim.Proc) {
		for i, ep := range eps {
			ep.Send(p, unet.SendDesc{Channel: chans[i], Inline: []byte{byte(10 + i)}})
		}
	})
	tb.Eng.Run()
	for i, pe := range peers {
		rd, ok := pe.PollRecv(nil)
		if !ok || rd.Inline[0] != byte(10+i) {
			t.Fatalf("peer %d: got %+v", i, rd)
		}
	}
}

func TestDeviceEndpointTableLimit(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	h := tb.Hosts[0]
	h.Kernel.SetLimits(unet.Limits{MaxEndpoints: 1000, MaxSegmentBytes: 1 << 20, MaxQueueCap: 1024})
	owner := h.NewProcess("greedy")
	max := h.Device().MaxEndpoints()
	for i := 0; i < max; i++ {
		if _, err := h.Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{}); err != nil {
			t.Fatalf("endpoint %d (device max %d): %v", i, max, err)
		}
	}
	if _, err := h.Kernel.CreateEndpoint(nil, owner, unet.EndpointConfig{}); err == nil {
		t.Fatal("device endpoint table exceeded")
	}
}

func TestChannelVCIsAccessor(t *testing.T) {
	tb, pr := newPair(t, unet.EndpointConfig{}, 0)
	defer tb.Eng.Shutdown()
	tx, rx, ok := pr.EpA.ChannelVCIs(pr.ChA)
	if !ok || tx == rx {
		t.Fatalf("ChannelVCIs = %d/%d/%v", tx, rx, ok)
	}
	txB, rxB, _ := pr.EpB.ChannelVCIs(pr.ChB)
	if tx != rxB || rx != txB {
		t.Fatalf("VCI pair mismatch: A %d/%d vs B %d/%d", tx, rx, txB, rxB)
	}
	if _, _, ok := pr.EpA.ChannelVCIs(99); ok {
		t.Fatal("bogus channel reported VCIs")
	}
}

func TestPinnedMemoryBudget(t *testing.T) {
	// §4.2.4: concurrent applications are limited by pinnable memory and
	// DMA space; destroying an endpoint returns its budget.
	tb := testbed.New(testbed.Config{Hosts: 1})
	t.Cleanup(tb.Close)
	h := tb.Hosts[0]
	h.Kernel.SetLimits(unet.Limits{
		MaxEndpoints:    16,
		MaxSegmentBytes: 1 << 20,
		MaxQueueCap:     1024,
		MaxPinnedBytes:  600 << 10,
	})
	owner := h.NewProcess("apps")
	cfg := unet.EndpointConfig{SegmentSize: 256 << 10}
	ep1, err := h.Kernel.CreateEndpoint(nil, owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Kernel.CreateEndpoint(nil, owner, cfg); err != nil {
		t.Fatal(err)
	}
	if got := h.Kernel.PinnedBytes(); got != 512<<10 {
		t.Fatalf("PinnedBytes = %d, want 512K", got)
	}
	// Third endpoint exceeds the 600K budget.
	if _, err := h.Kernel.CreateEndpoint(nil, owner, cfg); !errors.Is(err, unet.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit (pinned budget)", err)
	}
	// Destroying one returns budget and the create succeeds.
	if err := h.Kernel.DestroyEndpoint(nil, owner, ep1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Kernel.CreateEndpoint(nil, owner, cfg); err != nil {
		t.Fatalf("create after destroy: %v", err)
	}
}
