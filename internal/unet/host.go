package unet

import (
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// Host is one workstation: a CPU cost model, a kernel agent, and (once a
// NIC model attaches) a network device. Application code runs on the host
// as simulated processes.
type Host struct {
	Name   string
	Eng    *sim.Engine
	Params NodeParams
	Kernel *Kernel
	dev    Device
	nextID int
}

// NewHost creates a host with the given cost model.
func NewHost(e *sim.Engine, name string, params NodeParams) *Host {
	h := &Host{Name: name, Eng: e, Params: params}
	h.Kernel = newKernel(h, DefaultLimits())
	return h
}

// SetDevice attaches the network interface; NIC models call this.
func (h *Host) SetDevice(d Device) { h.dev = d }

// Device returns the attached network interface (nil if none).
func (h *Host) Device() Device { return h.dev }

// NewProcess creates a protection domain (an unprivileged UNIX process in
// the paper's terms) on the host.
func (h *Host) NewProcess(name string) *Process {
	h.nextID++
	return &Process{host: h, name: name, id: h.nextID}
}

// Spawn starts a simulated thread of execution on this host.
func (h *Host) Spawn(name string, fn func(*sim.Proc)) *sim.Proc {
	return h.Eng.Spawn(h.Name+"/"+name, fn)
}

// charge advances p by d when running in process context; engine-context
// callers (p == nil) are not charged.
func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// Process is a protection domain. Endpoints are owned by exactly one
// process and the kernel validates ownership on management operations;
// on the data path the *Endpoint value itself is the unforgeable
// capability, as the paper's memory mappings are.
type Process struct {
	host *Host
	name string
	id   int
}

// Host returns the process's host.
func (pr *Process) Host() *Host { return pr.host }

// Name returns the process name.
func (pr *Process) Name() string { return pr.name }

func (pr *Process) String() string {
	return fmt.Sprintf("%s:%s#%d", pr.host.Name, pr.name, pr.id)
}

// Device is the hardware-dependent half of U-Net: the multiplexing /
// demultiplexing agent of Figure 1(b). NIC models (internal/nic) implement
// it; the unet kernel agent drives the management methods and endpoints
// kick the data path.
type Device interface {
	// AttachEndpoint makes the device service ep's queues. It may fail
	// when device resources (DMA space, on-board memory) are exhausted.
	AttachEndpoint(ep *Endpoint) error
	// DetachEndpoint stops servicing ep.
	DetachEndpoint(ep *Endpoint)
	// OpenChannel registers the (txVCI, rxVCI) message-tag pair for
	// channel ch of ep, enabling the device to mux outgoing messages onto
	// txVCI and demux arrivals on rxVCI to ep.
	OpenChannel(ep *Endpoint, ch ChannelID, tx, rx atm.VCI) error
	// CloseChannel removes the registration.
	CloseChannel(ep *Endpoint, ch ChannelID)
	// KickTx tells the device ep's send queue became non-empty. It models
	// the NI noticing the descriptor on its next poll.
	KickTx(ep *Endpoint)
	// SingleCellMax is the largest message the device accepts inline in a
	// descriptor (0 when the fast path is absent).
	SingleCellMax() int
	// MTU is the largest message the device will segment.
	MTU() int
	// MaxEndpoints bounds concurrently attached endpoints (on-board
	// memory, pinned pages and DMA space are finite — §4.2.4).
	MaxEndpoints() int
}
