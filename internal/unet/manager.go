package unet

import (
	"fmt"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/sim"
)

// Manager is the operating-system service of §3.2 that "assists the
// application in determining the correct tag to use": it allocates VCI
// pairs, programs switch routes, performs the authorization checks, and
// registers the tags with each host's U-Net device. One Manager serves a
// fabric — the single-switch cluster or a topo-compiled multi-switch
// fabric, whose Route walks the path and installs a per-stage entry at
// every switch between the two hosts.
type Manager struct {
	cluster fabric.Network
	ports   map[*Host]int
	nextVCI atm.VCI
}

// firstUserVCI skips the VCIs reserved by ATM signalling conventions.
const firstUserVCI atm.VCI = 32

// NewManager creates the connection-management service for a fabric.
func NewManager(c fabric.Network) *Manager {
	return &Manager{cluster: c, ports: make(map[*Host]int), nextVCI: firstUserVCI}
}

// Register associates a host with its switch port. NIC attach helpers call
// this.
func (m *Manager) Register(h *Host, port int) { m.ports[h] = port }

// Port returns the switch port of a registered host.
func (m *Manager) Port(h *Host) (int, bool) {
	p, ok := m.ports[h]
	return p, ok
}

// Channel is the result of connecting two endpoints: the per-endpoint
// channel identifiers that name the full-duplex VCI pair.
type Channel struct {
	A, B  *Endpoint
	AtoB  atm.VCI
	BtoA  atm.VCI
	ChanA ChannelID
	ChanB ChannelID
}

// Connect establishes a full-duplex communication channel between two
// endpoints (§3.2, §4.2.2: "the tags used for the ATM network consist of a
// VCI pair"). It allocates the two one-way VCIs, programs the switch
// routes, and registers the tag pair with both devices. The cost of the
// two system calls is charged to p.
func (m *Manager) Connect(p *sim.Proc, a, b *Endpoint) (*Channel, error) {
	if a.closed || b.closed {
		return nil, ErrClosed
	}
	portA, okA := m.ports[a.host]
	portB, okB := m.ports[b.host]
	if !okA || !okB {
		return nil, fmt.Errorf("unet: host not registered with manager")
	}
	charge(p, a.host.Params.Syscall)
	charge(p, b.host.Params.Syscall)

	vAB := m.allocVCI()
	vBA := m.allocVCI()
	// Routes are provisioned per input port: vAB is only valid arriving
	// from A's port, vBA only from B's — no third host can inject cells
	// on this channel (§3.2).
	if err := m.cluster.Route(portA, vAB, portB); err != nil {
		return nil, err
	}
	if err := m.cluster.Route(portB, vBA, portA); err != nil {
		return nil, err
	}
	chA := a.registerChannel(vAB, vBA)
	chB := b.registerChannel(vBA, vAB)
	if err := a.host.dev.OpenChannel(a, chA, vAB, vBA); err != nil {
		return nil, err
	}
	if err := b.host.dev.OpenChannel(b, chB, vBA, vAB); err != nil {
		return nil, err
	}
	return &Channel{A: a, B: b, AtoB: vAB, BtoA: vBA, ChanA: chA, ChanB: chB}, nil
}

// Disconnect tears a channel down: deregisters the tags and removes the
// switch routes.
func (m *Manager) Disconnect(p *sim.Proc, ch *Channel) {
	charge(p, ch.A.host.Params.Syscall)
	charge(p, ch.B.host.Params.Syscall)
	ch.A.host.dev.CloseChannel(ch.A, ch.ChanA)
	ch.B.host.dev.CloseChannel(ch.B, ch.ChanB)
	ch.A.closeChannel(ch.ChanA)
	ch.B.closeChannel(ch.ChanB)
	portA, _ := m.ports[ch.A.host]
	portB, _ := m.ports[ch.B.host]
	m.cluster.Unroute(portA, ch.AtoB)
	m.cluster.Unroute(portB, ch.BtoA)
}

func (m *Manager) allocVCI() atm.VCI {
	v := m.nextVCI
	m.nextVCI++
	return v
}
