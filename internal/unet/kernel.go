package unet

import (
	"fmt"

	"unet/internal/sim"
)

// Limits bounds the communication resources the kernel will grant (§3:
// "managing limited communication resources without the aid of a kernel
// path"; §4.2.4: pinned memory, DMA space and NI memory are finite).
type Limits struct {
	// MaxEndpoints bounds endpoints per host (further bounded by the
	// device's own MaxEndpoints).
	MaxEndpoints int
	// MaxSegmentBytes bounds one endpoint's communication segment — the
	// base-level architecture's bounded-segment rule (§3.4). Direct-access
	// endpoints are exempt (§3.6 lets segments span the address space).
	MaxSegmentBytes int
	// MaxQueueCap bounds each message queue's capacity.
	MaxQueueCap int
	// MaxPinnedBytes bounds the host-wide total of pinned communication-
	// segment memory — §4.2.4's scalability concern: "the number of
	// distinct applications that can be run concurrently is ... limited by
	// the amount of memory that can be pinned down on the host [and] the
	// size of the DMA address space". Destroying an endpoint returns its
	// budget. Zero means 8× MaxSegmentBytes.
	MaxPinnedBytes int
}

// DefaultLimits mirrors the prototype's pinned-memory budget.
func DefaultLimits() Limits {
	return Limits{
		MaxEndpoints:    16,
		MaxSegmentBytes: 1 << 20,
		MaxQueueCap:     1024,
		MaxPinnedBytes:  8 << 20,
	}
}

// Kernel is the per-host kernel agent. It participates only in set-up and
// tear-down — endpoint creation, channel registration, resource limits —
// and is entirely absent from the send/receive path (Figure 1b).
type Kernel struct {
	host   *Host
	limits Limits
	eps    map[*Endpoint]struct{}
	pinned int // pinned segment bytes across live endpoints (§4.2.4)

	emu *emuState
}

func newKernel(h *Host, l Limits) *Kernel {
	return &Kernel{host: h, limits: l, eps: make(map[*Endpoint]struct{})}
}

// SetLimits replaces the kernel's resource limits.
func (k *Kernel) SetLimits(l Limits) { k.limits = l }

// Limits returns the active resource limits.
func (k *Kernel) Limits() Limits { return k.limits }

// Endpoints reports how many endpoints are currently attached.
func (k *Kernel) Endpoints() int { return len(k.eps) }

// PinnedBytes reports the pinned communication-segment memory in use.
func (k *Kernel) PinnedBytes() int { return k.pinned }

// CreateEndpoint allocates an endpoint for owner: it validates the
// configuration against resource limits, pins the communication segment
// and attaches it to the device. This is a system call (cost charged to p).
func (k *Kernel) CreateEndpoint(p *sim.Proc, owner *Process, cfg EndpointConfig) (*Endpoint, error) {
	charge(p, k.host.Params.Syscall)
	if owner.host != k.host {
		return nil, fmt.Errorf("unet: process %v is not on host %s", owner, k.host.Name)
	}
	dev := k.host.dev
	if dev == nil {
		return nil, ErrNoDevice
	}
	cfg.fillDefaults()
	if len(k.eps) >= k.limits.MaxEndpoints || len(k.eps) >= dev.MaxEndpoints() {
		return nil, fmt.Errorf("%w: %d endpoints attached", ErrLimit, len(k.eps))
	}
	if !cfg.DirectAccess && cfg.SegmentSize > k.limits.MaxSegmentBytes {
		return nil, fmt.Errorf("%w: segment %d > %d", ErrLimit, cfg.SegmentSize, k.limits.MaxSegmentBytes)
	}
	if cfg.SendQueueCap > k.limits.MaxQueueCap || cfg.RecvQueueCap > k.limits.MaxQueueCap ||
		cfg.FreeQueueCap > k.limits.MaxQueueCap {
		return nil, fmt.Errorf("%w: queue capacity too large", ErrLimit)
	}
	// Direct-access segments are not pinned wholesale — they rely on the
	// NI's memory mapping (§3.6) — so only base-level segments consume the
	// pinned/DMA budget.
	if !cfg.DirectAccess {
		budget := k.limits.MaxPinnedBytes
		if budget <= 0 {
			budget = 8 * k.limits.MaxSegmentBytes
		}
		if k.pinned+cfg.SegmentSize > budget {
			return nil, fmt.Errorf("%w: %d of %d pinned bytes in use", ErrLimit, k.pinned, budget)
		}
	}
	ep := newEndpoint(owner, cfg)
	if err := dev.AttachEndpoint(ep); err != nil {
		return nil, err
	}
	k.eps[ep] = struct{}{}
	if !cfg.DirectAccess {
		k.pinned += cfg.SegmentSize
	}
	return ep, nil
}

// DestroyEndpoint tears an endpoint down. Only the owner may destroy it
// (§3.2 protection).
func (k *Kernel) DestroyEndpoint(p *sim.Proc, caller *Process, ep *Endpoint) error {
	charge(p, k.host.Params.Syscall)
	if ep.owner != caller {
		return ErrNotOwner
	}
	if _, ok := k.eps[ep]; !ok {
		return ErrClosed
	}
	delete(k.eps, ep)
	if !ep.cfg.DirectAccess {
		k.pinned -= ep.cfg.SegmentSize
	}
	ep.closed = true
	k.host.dev.DetachEndpoint(ep)
	return nil
}
