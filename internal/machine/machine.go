// Package machine provides abstract parallel-machine models for the
// Split-C comparison of paper §6: the Thinking Machines CM-5 and the Meiko
// CS-2, characterized by the Table 2 parameters (CPU speed, per-message
// overhead, round-trip latency, network bandwidth). Each model implements
// splitc.Transport, so the benchmark programs run unmodified on all three
// machines.
//
// The model is LogGP-flavoured: a send busies the sending processor for
// OSend plus GPerByte per byte, the message arrives Latency later, and
// reception busies the receiving processor for ORecv plus GPerByte per
// byte when it polls. Delivery is reliable and in order per node pair, as
// on the real machines' networks.
package machine

import (
	"fmt"
	"time"

	"unet/internal/sim"
	"unet/internal/splitc"
)

// Params characterizes a machine (Table 2).
type Params struct {
	Name string
	// CPU is the relative processor speed (1.0 = 60 MHz SuperSPARC).
	CPU float64
	// OSend and ORecv are the per-message processor overheads.
	OSend, ORecv time.Duration
	// Latency is the one-way network latency between injection and
	// availability at the receiver.
	Latency time.Duration
	// GPerByte is the inverse bandwidth, charged at both ends.
	GPerByte time.Duration
}

// CM5Params returns the Thinking Machines CM-5 model: 33 MHz SPARC-2
// nodes (slow CPU), 3 µs message overhead, 12 µs round trip, 10 MB/s
// (Table 2).
func CM5Params() Params {
	return Params{
		Name:     "CM-5",
		CPU:      0.30,                 // 33 MHz SPARC-2 vs 60 MHz SuperSPARC
		OSend:    3 * time.Microsecond, // Table 2's per-message overhead
		ORecv:    1500 * time.Nanosecond,
		Latency:  1500 * time.Nanosecond,
		GPerByte: 100 * time.Nanosecond, // 10 MB/s
	}
}

// MeikoParams returns the Meiko CS-2 model: 40 MHz SuperSPARC nodes,
// 11 µs message overhead, 25 µs round trip, 39 MB/s (Table 2).
func MeikoParams() Params {
	return Params{
		Name:     "Meiko CS-2",
		CPU:      0.67,                  // 40 MHz vs 60 MHz SuperSPARC
		OSend:    11 * time.Microsecond, // Table 2's per-message overhead
		ORecv:    1 * time.Microsecond,  // the Elan co-processor delivers
		Latency:  500 * time.Nanosecond,
		GPerByte: 26 * time.Nanosecond, // ~39 MB/s
	}
}

// RTT returns the model's small-message round-trip time
// (2 × (OSend + Latency + ORecv)), for Table 2 verification.
func (p Params) RTT() time.Duration {
	return 2 * (p.OSend + p.Latency + p.ORecv)
}

// Bandwidth returns the model's asymptotic bandwidth in MB/s.
func (p Params) Bandwidth() float64 {
	return 1.0 / p.GPerByte.Seconds() / 1e6
}

// kinds of model messages.
const (
	mSend = iota + 1
	mRPC
	mRPCR
	mBulk
)

type mmsg struct {
	src   int
	kind  int
	token uint32
	arg   uint32
	data  []byte
}

// Machine is an n-node instance of a model.
type Machine struct {
	e     *sim.Engine
	p     Params
	nodes []*Node
}

// New builds an n-node machine on engine e.
func New(e *sim.Engine, p Params, n int) *Machine {
	m := &Machine{e: e, p: p}
	for i := 0; i < n; i++ {
		m.nodes = append(m.nodes, &Node{
			m:    m,
			self: i,
			mbox: sim.NewFIFO[mmsg](0),
			rpcs: make(map[uint32]*rpcResult),
		})
	}
	return m
}

// Node returns the transport of processor i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// Params returns the machine's parameter set.
func (m *Machine) Params() Params { return m.p }

// Node is one processor's transport endpoint. It implements
// splitc.Transport.
type Node struct {
	m    *Machine
	self int
	mbox *sim.FIFO[mmsg]

	onReq  splitc.RequestHandler
	onBulk splitc.BulkHandler

	nextTok uint32
	rpcs    map[uint32]*rpcResult

	// pending counts messages sent but not yet delivered to the peer
	// mailbox (Flush waits on the network having drained, which the
	// hardware's send-complete conditions provide).
	pending int
	drained sim.Cond
}

type rpcResult struct {
	done bool
	arg  uint32
	data []byte
}

var _ splitc.Transport = (*Node)(nil)

// Self returns the processor number.
func (nd *Node) Self() int { return nd.self }

// Size returns the machine width.
func (nd *Node) Size() int { return len(nd.m.nodes) }

// SetRequestHandler installs the small-message dispatch target.
func (nd *Node) SetRequestHandler(fn splitc.RequestHandler) { nd.onReq = fn }

// SetBulkHandler installs the bulk dispatch target.
func (nd *Node) SetBulkHandler(fn splitc.BulkHandler) { nd.onBulk = fn }

// CPU reports the relative processor speed.
func (nd *Node) CPU() float64 { return nd.m.p.CPU }

// Engine returns the simulation engine.
func (nd *Node) Engine() *sim.Engine { return nd.m.e }

// Spawn starts the node's thread of control.
func (nd *Node) Spawn(name string, fn func(*sim.Proc)) *sim.Proc {
	return nd.m.e.Spawn(fmt.Sprintf("%s/%d/%s", nd.m.p.Name, nd.self, name), fn)
}

// MaxSmall bounds small-message payloads.
func (nd *Node) MaxSmall() int { return 1024 }

// transmit charges the sender and schedules delivery.
func (nd *Node) transmit(p *sim.Proc, dst int, msg mmsg) {
	cost := nd.m.p.OSend + time.Duration(len(msg.data))*nd.m.p.GPerByte
	p.Sleep(cost)
	// Injection is serialized per node; bulk pipelining happens because
	// the per-byte cost is charged while the processor streams the data.
	target := nd.m.nodes[dst]
	nd.pending++
	nd.m.e.After(nd.m.p.Latency, func() {
		target.mbox.TryPut(msg)
		nd.pending--
		if nd.pending == 0 {
			nd.drained.Broadcast()
		}
	})
}

// receive processes one mailbox entry, charging receive overhead.
func (nd *Node) receive(p *sim.Proc, msg mmsg) {
	p.Sleep(nd.m.p.ORecv + time.Duration(len(msg.data))*nd.m.p.GPerByte)
	switch msg.kind {
	case mSend:
		if nd.onReq != nil {
			nd.onReq(p, msg.src, msg.arg, msg.data)
		}
	case mRPC:
		var rarg uint32
		var rdata []byte
		if nd.onReq != nil {
			rarg, rdata = nd.onReq(p, msg.src, msg.arg, msg.data)
		}
		nd.transmit(p, msg.src, mmsg{src: nd.self, kind: mRPCR, token: msg.token, arg: rarg, data: rdata})
	case mRPCR:
		if res, ok := nd.rpcs[msg.token]; ok {
			res.arg = msg.arg
			res.data = msg.data
			res.done = true
		}
	case mBulk:
		if nd.onBulk != nil {
			nd.onBulk(p, msg.src, msg.data)
		}
	}
}

// Send transmits a one-way small message.
func (nd *Node) Send(p *sim.Proc, dst int, arg uint32, data []byte) {
	nd.transmit(p, dst, mmsg{src: nd.self, kind: mSend, arg: arg, data: append([]byte(nil), data...)})
}

// RPC performs a blocking request/reply exchange.
func (nd *Node) RPC(p *sim.Proc, dst int, arg uint32, data []byte) (uint32, []byte) {
	nd.nextTok++
	tok := nd.nextTok
	res := &rpcResult{}
	nd.rpcs[tok] = res
	nd.transmit(p, dst, mmsg{src: nd.self, kind: mRPC, token: tok, arg: arg, data: append([]byte(nil), data...)})
	for !res.done {
		nd.PollWait(p, time.Millisecond)
	}
	delete(nd.rpcs, tok)
	return res.arg, res.data
}

// Bulk transmits a one-way block transfer.
func (nd *Node) Bulk(p *sim.Proc, dst int, data []byte) {
	nd.transmit(p, dst, mmsg{src: nd.self, kind: mBulk, data: append([]byte(nil), data...)})
}

// Poll drains the mailbox without blocking.
func (nd *Node) Poll(p *sim.Proc) {
	for {
		msg, ok := nd.mbox.TryGet()
		if !ok {
			return
		}
		nd.receive(p, msg)
	}
}

// PollWait blocks up to d for the first arrival, then drains.
func (nd *Node) PollWait(p *sim.Proc, d time.Duration) {
	if nd.mbox.Len() == 0 {
		if !p.WaitTimeout(nd.mbox.NotEmpty(), d) {
			return
		}
	}
	nd.Poll(p)
}

// Flush waits until this node's injected messages have reached their
// destination mailboxes.
func (nd *Node) Flush(p *sim.Proc) {
	for nd.pending > 0 {
		p.Wait(&nd.drained)
	}
}
