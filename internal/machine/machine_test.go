package machine_test

import (
	"testing"
	"time"

	"unet/internal/machine"
	"unet/internal/sim"
	"unet/internal/splitc"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.2f, want %.2f ± %.0f%%", name, got, want, tol*100)
	}
}

// Table 2 round-trip latencies: CM-5 12 µs, Meiko 25 µs.
func TestTable2RTTParams(t *testing.T) {
	if got := machine.CM5Params().RTT(); got != 12*time.Microsecond {
		t.Errorf("CM-5 RTT = %v, want 12µs", got)
	}
	if got := machine.MeikoParams().RTT(); got != 25*time.Microsecond {
		t.Errorf("Meiko RTT = %v, want 25µs", got)
	}
}

// Table 2 bandwidths: CM-5 10 MB/s, Meiko 39 MB/s.
func TestTable2Bandwidth(t *testing.T) {
	within(t, "CM-5 bandwidth", machine.CM5Params().Bandwidth(), 10, 0.02)
	within(t, "Meiko bandwidth", machine.MeikoParams().Bandwidth(), 39, 0.03)
}

// Measured RPC round trip on the model should match the parameter RTT.
func TestModelRPCMatchesRTT(t *testing.T) {
	for _, pm := range []machine.Params{machine.CM5Params(), machine.MeikoParams()} {
		e := sim.New(1)
		m := machine.New(e, pm, 2)
		m.Node(1).SetRequestHandler(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
			return arg + 1, nil
		})
		m.Node(0).SetRequestHandler(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
			return 0, nil
		})
		done := false
		var rtt time.Duration
		m.Node(1).Spawn("srv", func(p *sim.Proc) {
			for !done {
				m.Node(1).PollWait(p, time.Millisecond)
			}
		})
		m.Node(0).Spawn("cli", func(p *sim.Proc) {
			const rounds = 20
			// warm-up
			m.Node(0).RPC(p, 1, 0, nil)
			t0 := p.Now()
			for i := 0; i < rounds; i++ {
				if a, _ := m.Node(0).RPC(p, 1, uint32(i), nil); a != uint32(i)+1 {
					t.Errorf("rpc reply arg = %d, want %d", a, i+1)
				}
			}
			rtt = (p.Now() - t0) / rounds
			done = true
		})
		e.Run()
		e.Shutdown()
		within(t, pm.Name+" measured RTT", float64(rtt)/float64(time.Microsecond),
			float64(pm.RTT())/float64(time.Microsecond), 0.02)
	}
}

// Bulk transfers approach the parameter bandwidth.
func TestModelBulkBandwidth(t *testing.T) {
	pm := machine.CM5Params()
	e := sim.New(1)
	m := machine.New(e, pm, 2)
	got := 0
	var last time.Duration
	m.Node(1).SetBulkHandler(func(p *sim.Proc, src int, data []byte) {
		got += len(data)
		last = p.Now()
	})
	m.Node(1).SetRequestHandler(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) { return 0, nil })
	const count, size = 50, 16384
	m.Node(1).Spawn("srv", func(p *sim.Proc) {
		for got < count*size {
			m.Node(1).PollWait(p, time.Millisecond)
		}
	})
	m.Node(0).Spawn("cli", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			m.Node(0).Bulk(p, 1, buf)
		}
	})
	e.Run()
	e.Shutdown()
	bw := float64(got) / last.Seconds() / 1e6
	// Sender and receiver each charge G per byte but overlap; the
	// bottleneck is one side ≈ 1/G.
	within(t, "CM-5 bulk bandwidth", bw, pm.Bandwidth(), 0.10)
}

// Ordering: messages between a pair are delivered in order.
func TestModelOrdering(t *testing.T) {
	e := sim.New(1)
	m := machine.New(e, machine.CM5Params(), 2)
	var got []uint32
	m.Node(1).SetRequestHandler(func(p *sim.Proc, src int, arg uint32, data []byte) (uint32, []byte) {
		got = append(got, arg)
		return 0, nil
	})
	m.Node(1).Spawn("srv", func(p *sim.Proc) {
		for len(got) < 20 {
			m.Node(1).PollWait(p, time.Millisecond)
		}
	})
	m.Node(0).Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			m.Node(0).Send(p, 1, uint32(i), nil)
		}
		m.Node(0).Flush(p)
	})
	e.Run()
	e.Shutdown()
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

var _ splitc.Transport = (*machine.Node)(nil)
