package faults_test

import (
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/faults"
	"unet/internal/sim"
)

func cellSeq(n int) []atm.Cell {
	cells := make([]atm.Cell, n)
	for i := range cells {
		cells[i].VCI = atm.VCI(64 + i%4)
		cells[i].Payload[0] = byte(i)
		cells[i].EOP = true
	}
	return cells
}

// judgeAll runs cells through inj at one-cell spacing and returns the
// verdicts.
func judgeAll(inj fabric.Injector, cells []atm.Cell) []fabric.Verdict {
	out := make([]fabric.Verdict, len(cells))
	for i := range cells {
		c := cells[i]
		out[i] = inj.Judge(&c, time.Duration(i)*fabric.DefaultCellTime)
	}
	return out
}

// TestSeededStreamsAreReproducible pins the determinism contract: the
// same seed and link name reproduce the exact verdict sequence, and a
// different link name yields an independent stream.
func TestSeededStreamsAreReproducible(t *testing.T) {
	cells := cellSeq(4000)
	a := judgeAll(faults.NewIID(7, "atm.up0", 0.05), cells)
	b := judgeAll(faults.NewIID(7, "atm.up0", 0.05), cells)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identically-seeded injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Drop {
			drops++
		}
	}
	if drops == 0 || drops > 4000/5 {
		t.Fatalf("5%% i.i.d. loss dropped %d of 4000 cells", drops)
	}
	c := judgeAll(faults.NewIID(7, "atm.up1", 0.05), cells)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different link names produced identical fault streams")
	}
}

// TestGilbertElliottIsBursty checks that with a lossy bad state the
// drops cluster into runs instead of being scattered i.i.d.: the number
// of distinct loss runs must be well below the number of lost cells.
func TestGilbertElliottIsBursty(t *testing.T) {
	ge := faults.NewGilbertElliott(3, "atm.up0", 0.01, 0.25, 0, 1)
	v := judgeAll(ge, cellSeq(20000))
	losses, runs := 0, 0
	prev := false
	for _, w := range v {
		if w.Drop {
			losses++
			if !prev {
				runs++
			}
		}
		prev = w.Drop
	}
	if losses == 0 {
		t.Fatal("burst model produced no loss")
	}
	if runs*2 > losses {
		t.Fatalf("loss not bursty: %d losses in %d runs (mean run %.2f, want ≥ 2)", losses, runs, float64(losses)/float64(runs))
	}
}

// TestCorruptorHeaderDamageIsCaughtByHEC: every single-bit header flip
// must be rejected by the real HEC/format codec, i.e. surface as a drop.
func TestCorruptorHeaderDamageIsCaughtByHEC(t *testing.T) {
	co := faults.NewCorruptor(9, "atm.up0", 0, 1)
	v := judgeAll(co, cellSeq(2000))
	st := co.Stats()
	if st.HdrDamage != 2000 {
		t.Fatalf("HdrDamage = %d, want 2000", st.HdrDamage)
	}
	for i, w := range v {
		if !w.Drop {
			t.Fatalf("cell %d: header bit flip not caught by the HEC codec", i)
		}
	}
}

// TestCorruptorPayloadFlipsOneBit: payload corruption must change
// exactly one bit and be delivered (the AAL5 CRC's job, not the wire's).
func TestCorruptorPayloadFlipsOneBit(t *testing.T) {
	co := faults.NewCorruptor(9, "atm.up0", 1, 0)
	c := atm.Cell{VCI: 64}
	orig := c.Payload
	v := co.Judge(&c, 0)
	if v.Drop || v.Duplicate || v.Delay != 0 {
		t.Fatalf("payload corruption changed the verdict: %+v", v)
	}
	diff := 0
	for i := range c.Payload {
		for b := 0; b < 8; b++ {
			if (c.Payload[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("payload corruption flipped %d bits, want 1", diff)
	}
}

// TestFlapSchedule pins the arithmetic down-window: offset 1ms, down
// 200µs of every 1ms.
func TestFlapSchedule(t *testing.T) {
	fl := faults.NewFlap(time.Millisecond, 200*time.Microsecond, time.Millisecond)
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{0, false},
		{999 * time.Microsecond, false},
		{time.Millisecond, true},
		{1199 * time.Microsecond, true},
		{1200 * time.Microsecond, false},
		{2100 * time.Microsecond, true},
	} {
		if got := fl.Down(tc.at); got != tc.down {
			t.Errorf("Down(%v) = %v, want %v", tc.at, got, tc.down)
		}
	}
}

// TestNthCellDropsExactlyOne: the deterministic probe drops cell n and
// nothing else.
func TestNthCellDropsExactlyOne(t *testing.T) {
	in := faults.NewNthCell(5)
	v := judgeAll(in, cellSeq(10))
	for i, w := range v {
		if w.Drop != (i == 4) {
			t.Fatalf("cell %d: drop = %v", i+1, w.Drop)
		}
	}
	if st := in.Stats(); st.Dropped != 1 || st.Cells != 10 {
		t.Fatalf("stats = %+v, want 1 drop of 10 cells", st)
	}
}

// TestChainShortCircuitAndPerVCI: a drop consumes the cell before later
// models see it, and per-VCI accounting comes back sorted.
func TestChainShortCircuitAndPerVCI(t *testing.T) {
	dup := faults.NewDuplicator(1, "l", 1) // would duplicate every cell it sees
	ch := faults.NewChain(faults.NewNthCell(2), dup)
	cells := []atm.Cell{{VCI: 70}, {VCI: 65}, {VCI: 65}}
	v := judgeAll(ch, cells)
	if !v[1].Drop {
		t.Fatal("chain lost the NthCell drop")
	}
	if v[1].Duplicate {
		t.Fatal("dropped cell was still judged by the duplicator")
	}
	if !v[0].Duplicate || !v[2].Duplicate {
		t.Fatal("surviving cells were not duplicated")
	}
	per := ch.PerVCIDrops()
	if len(per) != 1 || per[0].VCI != 65 || per[0].Drops != 1 {
		t.Fatalf("PerVCIDrops = %+v, want [{65 1}]", per)
	}
	st := ch.Stats()
	if st.Cells != 3 || st.Dropped != 1 || st.Duplicate != 2 {
		t.Fatalf("chain stats = %+v", st)
	}
}

// TestPlanBuild: the zero plan builds nothing; an enabled plan builds a
// chain whose streams differ per link but reproduce per seed.
func TestPlanBuild(t *testing.T) {
	if ch := (faults.Plan{}).Build("atm.up0"); ch != nil {
		t.Fatal("zero plan built an injector chain")
	}
	pl := faults.Plan{Seed: 11, LossRate: 0.02, DupRate: 0.01, CorruptRate: 0.01}
	cells := cellSeq(5000)
	a := judgeAll(pl.Build("atm.up0"), cells)
	b := judgeAll(pl.Build("atm.up0"), cells)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan-built chains disagree at cell %d", i)
		}
	}
}

// sinkRec records per-cell deliveries with their arrival times.
type sinkRec struct {
	e     *sim.Engine
	cells []atm.Cell
	times []time.Duration
}

func (s *sinkRec) DeliverCell(c atm.Cell) {
	s.cells = append(s.cells, c)
	s.times = append(s.times, s.e.Now())
}

// TestLinkInjectorIntegration drives a real fabric link: duplication
// delivers an extra copy, jitter delays without reordering, and drops
// are counted as CellsLost.
func TestLinkInjectorIntegration(t *testing.T) {
	e := sim.New(1)
	rec := &sinkRec{e: e}
	l := fabric.NewLink(e, "l", fabric.DefaultLinkParams(), rec)

	// Drop cell 2, duplicate everything that survives, jitter cell 3 (the
	// jitter stream is seeded so we only assert ordering, not exact times).
	l.SetInjector(faults.NewChain(
		faults.NewNthCell(2),
		faults.NewDuplicator(5, "l", 1),
		faults.NewJitter(5, "l", 0.5, 10*time.Microsecond),
	))
	cells := cellSeq(6)
	e.At(0, func() {
		for i := range cells {
			l.Send(cells[i])
		}
	})
	e.Run()

	if got := l.Stats().CellsLost; got != 1 {
		t.Fatalf("CellsLost = %d, want 1", got)
	}
	if got := l.Stats().CellsDuplicated; got != 5 {
		t.Fatalf("CellsDuplicated = %d, want 5", got)
	}
	if len(rec.cells) != 10 { // 5 survivors × 2 copies
		t.Fatalf("delivered %d cells, want 10", len(rec.cells))
	}
	for i := 1; i < len(rec.times); i++ {
		if rec.times[i] < rec.times[i-1] {
			t.Fatalf("arrivals reordered: %v after %v", rec.times[i], rec.times[i-1])
		}
	}
	// Survivor payload order must be preserved: 0,0,2,2,3,3,...
	want := []byte{0, 0, 2, 2, 3, 3, 4, 4, 5, 5}
	for i, c := range rec.cells {
		if c.Payload[0] != want[i] {
			t.Fatalf("delivery %d carries payload %d, want %d", i, c.Payload[0], want[i])
		}
	}
}

// TestSwitchTailDrop bounds an output queue and overruns it from two
// input ports at once: the overflow must be tail-dropped and counted,
// and the survivors delivered intact.
func TestSwitchTailDrop(t *testing.T) {
	e := sim.New(1)
	rec := &sinkRec{e: e}
	lp := fabric.DefaultLinkParams()
	sw := fabric.NewSwitch(e, "sw", 2, time.Microsecond, lp, []fabric.CellSink{rec, fabric.SinkFunc(func(atm.Cell) {})})
	if err := sw.Route(0, 64, 0); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(1, 64, 0); err != nil {
		t.Fatal(err)
	}
	sw.SetOutputQueueCells(4)

	// Two uplinks blast 32 cells each into port 0 simultaneously; the
	// output link serializes one cell per CellTime, so the 4-cell queue
	// must overflow.
	upA := fabric.NewLink(e, "upA", lp, sw.PortSink(0))
	upB := fabric.NewLink(e, "upB", lp, sw.PortSink(1))
	e.At(0, func() {
		for i := 0; i < 32; i++ {
			upA.Send(atm.Cell{VCI: 64})
			upB.Send(atm.Cell{VCI: 64})
		}
	})
	e.Run()

	drops := sw.QueueDrops(0)
	if drops == 0 {
		t.Fatal("no tail drops despite a 4-cell queue under 2:1 overload")
	}
	if got := uint64(len(rec.cells)) + drops; got != 64 {
		t.Fatalf("delivered %d + dropped %d ≠ 64 offered", len(rec.cells), drops)
	}
	if sw.TotalQueueDrops() != drops {
		t.Fatalf("TotalQueueDrops = %d, want %d", sw.TotalQueueDrops(), drops)
	}
}
