// Package faults is the deterministic fault-injection subsystem: seeded
// wire impairments that plug into fabric links via the fabric.Injector
// hook (DESIGN.md §11).
//
// The paper's Active Messages layer leans on ATM being "highly reliable"
// (§4): loss is rare, so UAM ships a simple window/retransmit scheme and
// TCP its standard machinery. On a perfect simulated wire those recovery
// paths are dead code. This package makes the wire imperfect — cell loss
// (i.i.d. and Gilbert–Elliott bursts), payload and header bit corruption
// (caught by the real AAL5 CRC-32 and HEC CRC-8 codecs), bounded-jitter
// delay, duplication, and scheduled link-down episodes — while keeping
// every run exactly reproducible.
//
// Determinism contract: an injector owns a *rand.Rand seeded from the
// fault seed and the link's name (DeriveSeed), and consumes it only
// inside Judge. Each link has a single transmitting process, so the
// sequence of Judge calls it sees is the link's cell order — which the
// sharded conservative protocol already guarantees is independent of
// shard count. Injectors therefore never touch the engine's RNG (whose
// streams are per-shard) or the wall clock, and they charge no virtual
// time: impairments reshape the delivery schedule, they never stall the
// transmitter. The nondeterminism and costcharge analyzers machine-check
// both halves of this contract for the package.
package faults

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
)

// Injector is a fabric injector that also reports impairment accounting.
type Injector interface {
	fabric.Injector
	Stats() FaultStats
}

// FaultStats counts one injector's impairment decisions.
type FaultStats struct {
	Cells     uint64 // cells judged
	Dropped   uint64 // cells discarded (loss, bursts, header damage, link down)
	Corrupted uint64 // cells with payload bits flipped (delivered; AAL5 CRC catches them)
	HdrDamage uint64 // cells with header bits flipped (HEC discards them at the receiver)
	Duplicate uint64 // cells delivered twice
	Delayed   uint64 // cells given extra jitter delay
	DownDrops uint64 // subset of Dropped: cells lost to link-down episodes
}

// add merges s2 into s (Cells is owned by the chain, so it is excluded).
func (s *FaultStats) add(s2 FaultStats) {
	s.Dropped += s2.Dropped
	s.Corrupted += s2.Corrupted
	s.HdrDamage += s2.HdrDamage
	s.Duplicate += s2.Duplicate
	s.Delayed += s2.Delayed
	s.DownDrops += s2.DownDrops
}

// DeriveSeed maps a plan seed and a link name to that link's PRNG seed.
// Hashing the name (stable across runs and shard counts) rather than a
// construction index keeps per-link fault streams identical no matter how
// the testbed is partitioned.
func DeriveSeed(seed int64, link string) int64 {
	h := fnv.New64a()
	h.Write([]byte(link))
	return seed ^ int64(h.Sum64())
}

// NewRand returns the seeded PRNG for one injector on one link.
func NewRand(seed int64, link string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, link)))
}

// VCIDrops is one VCI's tail of the per-VCI drop accounting.
type VCIDrops struct {
	VCI   atm.VCI
	Drops uint64
}

// Chain composes injectors in order over each cell. A drop verdict
// short-circuits the rest of the chain (the cell is gone; later models
// never see it), delays add, and duplication is sticky. The chain keeps
// the per-VCI drop accounting that testbeds surface.
type Chain struct {
	injs   []Injector
	cells  uint64
	perVCI map[atm.VCI]uint64
}

// NewChain composes injectors into one. The chain's Stats sums theirs.
func NewChain(injs ...Injector) *Chain {
	return &Chain{injs: injs, perVCI: make(map[atm.VCI]uint64)}
}

// Judge implements fabric.Injector.
func (ch *Chain) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	ch.cells++
	var v fabric.Verdict
	for _, in := range ch.injs {
		w := in.Judge(c, depart)
		if w.Drop {
			ch.perVCI[c.VCI]++
			v.Drop = true
			return v
		}
		v.Duplicate = v.Duplicate || w.Duplicate
		v.Delay += w.Delay
	}
	return v
}

// Stats sums the chained injectors' accounting under the chain's judged
// cell count.
func (ch *Chain) Stats() FaultStats {
	s := FaultStats{Cells: ch.cells}
	for _, in := range ch.injs {
		s.add(in.Stats())
	}
	return s
}

// PerVCIDrops returns the dropped-cell count per VCI in ascending VCI
// order (collect-and-sort keeps the map iteration order-invisible).
func (ch *Chain) PerVCIDrops() []VCIDrops {
	keys := make([]atm.VCI, 0, len(ch.perVCI))
	for vci := range ch.perVCI {
		keys = append(keys, vci)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]VCIDrops, len(keys))
	for i, vci := range keys {
		out[i] = VCIDrops{VCI: vci, Drops: ch.perVCI[vci]}
	}
	return out
}
