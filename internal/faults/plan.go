package faults

import "time"

// Plan is a declarative impairment configuration for a whole testbed:
// the same model parameters stamped onto every link, with statistically
// independent (but individually deterministic) per-link PRNG streams
// derived from Seed and the link name. The zero Plan is a perfect wire.
type Plan struct {
	// Seed is the fault seed every per-link PRNG stream derives from.
	Seed int64

	// LossRate is the i.i.d. per-cell drop probability.
	LossRate float64

	// BurstPGB/BurstPBG/BurstLoss parameterize Gilbert–Elliott burst loss:
	// good→bad and bad→good transition probabilities per cell, and the
	// drop probability while in the bad state (the good state is
	// loss-free; combine with LossRate for residual background loss).
	BurstPGB  float64
	BurstPBG  float64
	BurstLoss float64

	// CorruptRate/HdrCorruptRate are per-cell payload and header bit-flip
	// probabilities (payload flips are caught by the AAL5 CRC-32 at
	// reassembly, header flips by the HEC CRC-8 at the receiver).
	CorruptRate    float64
	HdrCorruptRate float64

	// DupRate is the per-cell duplication probability.
	DupRate float64

	// JitterRate/JitterBound: with probability JitterRate a cell's arrival
	// slips by a uniform draw from (0, JitterBound].
	JitterRate  float64
	JitterBound time.Duration

	// FlapPeriod/FlapDown/FlapOffset schedule link-down episodes: starting
	// at FlapOffset, each link is dead for FlapDown out of every
	// FlapPeriod.
	FlapPeriod time.Duration
	FlapDown   time.Duration
	FlapOffset time.Duration

	// SwitchQueueCells bounds each switch output queue (tail drop on
	// overflow). 0 keeps the seed's unbounded queues.
	SwitchQueueCells int
}

// Enabled reports whether the plan impairs links at all (the switch
// queue bound is separate: it applies even to an otherwise clean plan).
func (pl Plan) Enabled() bool {
	return pl.LossRate > 0 || pl.BurstPGB > 0 || pl.CorruptRate > 0 ||
		pl.HdrCorruptRate > 0 || pl.DupRate > 0 || pl.JitterRate > 0 ||
		(pl.FlapPeriod > 0 && pl.FlapDown > 0)
}

// Build assembles the plan's injector chain for one link, or nil when
// the plan leaves links untouched. Each enabled model gets its own PRNG
// stream (seed ⊕ hash(link) ⊕ model salt) so toggling one model never
// re-randomizes another.
func (pl Plan) Build(link string) *Chain {
	if !pl.Enabled() {
		return nil
	}
	var injs []Injector
	if pl.FlapPeriod > 0 && pl.FlapDown > 0 {
		injs = append(injs, NewFlap(pl.FlapPeriod, pl.FlapDown, pl.FlapOffset))
	}
	if pl.LossRate > 0 {
		injs = append(injs, NewIID(pl.Seed^0x11, link, pl.LossRate))
	}
	if pl.BurstPGB > 0 {
		injs = append(injs, NewGilbertElliott(pl.Seed^0x22, link, pl.BurstPGB, pl.BurstPBG, 0, pl.BurstLoss))
	}
	if pl.CorruptRate > 0 || pl.HdrCorruptRate > 0 {
		injs = append(injs, NewCorruptor(pl.Seed^0x33, link, pl.CorruptRate, pl.HdrCorruptRate))
	}
	if pl.DupRate > 0 {
		injs = append(injs, NewDuplicator(pl.Seed^0x44, link, pl.DupRate))
	}
	if pl.JitterRate > 0 && pl.JitterBound > 0 {
		injs = append(injs, NewJitter(pl.Seed^0x55, link, pl.JitterRate, pl.JitterBound))
	}
	return NewChain(injs...)
}

// BurstPlan returns a plan whose Gilbert–Elliott parameters yield a
// stationary loss rate of roughly target: bursts of mean length
// 1/pBG cells, always lossy while bad, entered just often enough that
// the time-average matches. Useful as the burst analogue of
// Plan{LossRate: target}.
func BurstPlan(seed int64, target float64) Plan {
	const pBG = 0.25 // mean burst length 4 cells
	if target <= 0 || target >= 1 {
		return Plan{Seed: seed}
	}
	return Plan{
		Seed:      seed,
		BurstPGB:  target * pBG / (1 - target),
		BurstPBG:  pBG,
		BurstLoss: 1,
	}
}
