package faults

import (
	"math/rand"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
)

// IID drops cells independently with a fixed probability — the memoryless
// loss of a marginal fiber or an overrun FIFO.
type IID struct {
	rng   *rand.Rand
	rate  float64
	stats FaultStats
}

// NewIID returns an i.i.d. cell-loss injector for the named link.
func NewIID(seed int64, link string, rate float64) *IID {
	return &IID{rng: NewRand(seed, link), rate: rate}
}

// Judge implements fabric.Injector.
func (in *IID) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.rate > 0 && in.rng.Float64() < in.rate {
		in.stats.Dropped++
		return fabric.Verdict{Drop: true}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *IID) Stats() FaultStats { return in.stats }

// GilbertElliott is the classic two-state burst-loss channel: a good
// state with loss probability lossGood and a bad state with lossBad,
// with per-cell transition probabilities pGB (good→bad) and pBG
// (bad→good). Runs in the bad state produce the correlated loss bursts
// that stress go-back-N windows far harder than i.i.d. loss of the same
// average rate.
type GilbertElliott struct {
	rng               *rand.Rand
	pGB, pBG          float64
	lossGood, lossBad float64
	bad               bool
	stats             FaultStats
}

// NewGilbertElliott returns a burst-loss injector for the named link.
func NewGilbertElliott(seed int64, link string, pGB, pBG, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{rng: NewRand(seed, link), pGB: pGB, pBG: pBG, lossGood: lossGood, lossBad: lossBad}
}

// Judge implements fabric.Injector. The state transition is evaluated
// before the loss draw, so a burst can begin on the cell that triggers
// the transition.
func (in *GilbertElliott) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.bad {
		if in.rng.Float64() < in.pBG {
			in.bad = false
		}
	} else if in.rng.Float64() < in.pGB {
		in.bad = true
	}
	loss := in.lossGood
	if in.bad {
		loss = in.lossBad
	}
	if loss > 0 && in.rng.Float64() < loss {
		in.stats.Dropped++
		return fabric.Verdict{Drop: true}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *GilbertElliott) Stats() FaultStats { return in.stats }

// Corruptor flips bits. A payload flip is delivered and left for the
// AAL5 CRC-32 to catch at reassembly; a header flip is pushed through
// the real 5-byte UNI codec — the HEC CRC-8 catches every single-bit
// header error, and receiving hardware discards such cells silently, so
// the verdict is a drop. (If a multi-bit future variant ever produced a
// decodable damaged header, the decoded routing fields would be used —
// a misrouted cell — which is why the codec round trip is real and not
// an assumption.)
type Corruptor struct {
	rng         *rand.Rand
	payloadRate float64
	headerRate  float64
	stats       FaultStats
}

// NewCorruptor returns a bit-corruption injector for the named link.
func NewCorruptor(seed int64, link string, payloadRate, headerRate float64) *Corruptor {
	return &Corruptor{rng: NewRand(seed, link), payloadRate: payloadRate, headerRate: headerRate}
}

// Judge implements fabric.Injector.
func (in *Corruptor) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.headerRate > 0 && in.rng.Float64() < in.headerRate {
		in.stats.HdrDamage++
		h := c.EncodeHeader()
		bit := in.rng.Intn(len(h) * 8)
		h[bit/8] ^= 1 << (bit % 8)
		dec, err := atm.DecodeHeader(h)
		if err != nil {
			// HEC mismatch (or non-canonical header): the receiver's framing
			// hardware discards the cell before it reaches any NIC model.
			in.stats.Dropped++
			return fabric.Verdict{Drop: true}
		}
		c.VCI, c.EOP, c.Direct = dec.VCI, dec.EOP, dec.Direct
	}
	if in.payloadRate > 0 && in.rng.Float64() < in.payloadRate {
		bit := in.rng.Intn(atm.PayloadSize * 8)
		c.Payload[bit/8] ^= 1 << (bit % 8)
		in.stats.Corrupted++
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *Corruptor) Stats() FaultStats { return in.stats }

// Duplicator re-delivers cells with a fixed probability, one extra copy
// a cell slot behind the original — the switch-reconfiguration ghost
// cells that exercise duplicate suppression above AAL5.
type Duplicator struct {
	rng   *rand.Rand
	rate  float64
	stats FaultStats
}

// NewDuplicator returns a duplication injector for the named link.
func NewDuplicator(seed int64, link string, rate float64) *Duplicator {
	return &Duplicator{rng: NewRand(seed, link), rate: rate}
}

// Judge implements fabric.Injector.
func (in *Duplicator) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.rate > 0 && in.rng.Float64() < in.rate {
		in.stats.Duplicate++
		return fabric.Verdict{Duplicate: true}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *Duplicator) Stats() FaultStats { return in.stats }

// Jitter adds bounded extra delay to a fraction of cells. The link keeps
// arrivals monotonic (a fiber never reorders), so a jittered cell also
// delays the cells serialized behind it — head-of-line blocking, exactly
// what a slow path through a real switch fabric does.
type Jitter struct {
	rng   *rand.Rand
	rate  float64
	bound time.Duration
	stats FaultStats
}

// NewJitter returns a delay injector for the named link: with
// probability rate a cell's arrival is pushed back by a uniform draw
// from (0, bound].
func NewJitter(seed int64, link string, rate float64, bound time.Duration) *Jitter {
	return &Jitter{rng: NewRand(seed, link), rate: rate, bound: bound}
}

// Judge implements fabric.Injector.
func (in *Jitter) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.rate > 0 && in.bound > 0 && in.rng.Float64() < in.rate {
		in.stats.Delayed++
		return fabric.Verdict{Delay: time.Duration(in.rng.Int63n(int64(in.bound))) + 1}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *Jitter) Stats() FaultStats { return in.stats }

// Flap models scheduled link-down/up episodes: every cell whose departure
// falls inside a down window is lost. The schedule is periodic and purely
// arithmetic — no events, no state — so a flapping link costs nothing
// when idle and stays deterministic at any shard count.
type Flap struct {
	period  time.Duration
	downFor time.Duration
	offset  time.Duration
	stats   FaultStats
}

// NewFlap returns a link-down injector: starting at offset, the link is
// down for downFor out of every period.
func NewFlap(period, downFor, offset time.Duration) *Flap {
	return &Flap{period: period, downFor: downFor, offset: offset}
}

// Down reports whether the link is down at virtual time t.
func (in *Flap) Down(t time.Duration) bool {
	if in.period <= 0 || in.downFor <= 0 || t < in.offset {
		return false
	}
	return (t-in.offset)%in.period < in.downFor
}

// Judge implements fabric.Injector.
func (in *Flap) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.Down(depart) {
		in.stats.Dropped++
		in.stats.DownDrops++
		return fabric.Verdict{Drop: true}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *Flap) Stats() FaultStats { return in.stats }

// NthCell drops exactly the nth cell (1-based) it judges and nothing
// else — the deterministic single-loss probe the seeded-loss golden
// tests are built on.
type NthCell struct {
	n     uint64
	stats FaultStats
}

// NewNthCell returns an injector that drops only cell number n.
func NewNthCell(n uint64) *NthCell { return &NthCell{n: n} }

// Judge implements fabric.Injector.
func (in *NthCell) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.stats.Cells == in.n {
		in.stats.Dropped++
		return fabric.Verdict{Drop: true}
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *NthCell) Stats() FaultStats { return in.stats }

// NthCellCorrupt flips one payload bit of exactly the nth cell it
// judges: the deterministic probe for the receive-side CRC drop path
// (nic Stats.CrcDrops, pool recycling).
type NthCellCorrupt struct {
	n     uint64
	bit   int
	stats FaultStats
}

// NewNthCellCorrupt returns an injector that flips payload bit `bit` of
// cell number n.
func NewNthCellCorrupt(n uint64, bit int) *NthCellCorrupt {
	return &NthCellCorrupt{n: n, bit: bit % (atm.PayloadSize * 8)}
}

// Judge implements fabric.Injector.
func (in *NthCellCorrupt) Judge(c *atm.Cell, depart time.Duration) fabric.Verdict {
	in.stats.Cells++
	if in.stats.Cells == in.n {
		c.Payload[in.bit/8] ^= 1 << (in.bit % 8)
		in.stats.Corrupted++
	}
	return fabric.Verdict{}
}

// Stats implements Injector.
func (in *NthCellCorrupt) Stats() FaultStats { return in.stats }
