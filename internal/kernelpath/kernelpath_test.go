package kernelpath_test

import (
	"testing"
	"time"

	"unet/internal/ip"
	"unet/internal/ip/udp"
	"unet/internal/kernelpath"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/testbed"
)

// atmPair builds two kernel conduits over a Fore-firmware ATM path.
func atmPair(t *testing.T) (*testbed.Testbed, *kernelpath.Conduit, *kernelpath.Conduit) {
	tb, ka, kb, _, _ := atmPairFull(t)
	return tb, ka, kb
}

func atmPairFull(t *testing.T) (*testbed.Testbed, *kernelpath.Conduit, *kernelpath.Conduit, *ip.UNetConduit, *ip.UNetConduit) {
	t.Helper()
	fore := nic.ForeParams()
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &fore})
	t.Cleanup(tb.Close)
	ia, ib, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ka := kernelpath.New(tb.Hosts[0], ia, kernelpath.DefaultParams())
	kb := kernelpath.New(tb.Hosts[1], ib, kernelpath.DefaultParams())
	return tb, ka, kb, ia, ib
}

// ethPair builds two kernel conduits over a shared Ethernet segment.
func ethPair(t *testing.T) (*testbed.Testbed, *kernelpath.Conduit, *kernelpath.Conduit) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	en := kernelpath.NewEthernet(tb.Eng)
	pa := en.NewPort(1, 2)
	pb := en.NewPort(2, 1)
	ka := kernelpath.New(tb.Hosts[0], pa, kernelpath.DefaultParams())
	kb := kernelpath.New(tb.Hosts[1], pb, kernelpath.DefaultParams())
	return tb, ka, kb
}

func TestMbufChain(t *testing.T) {
	cases := []struct{ n, clusters, smalls int }{
		{0, 0, 0},
		{100, 0, 1},
		{112, 0, 1},
		{113, 0, 2},
		{511, 0, 5},
		{512, 1, 0},
		{1024, 1, 0},
		{1025, 1, 1}, // 1 byte remainder → one small mbuf
		{1535, 1, 5}, // 511-byte remainder → five small mbufs (expensive)
		{1536, 2, 0}, // 512-byte remainder → another cluster (cheap)
		{8192, 8, 0},
		{8300, 8, 1},
	}
	for _, c := range cases {
		cl, sm := kernelpath.MbufChain(c.n)
		if cl != c.clusters || sm != c.smalls {
			t.Errorf("MbufChain(%d) = (%d, %d), want (%d, %d)", c.n, cl, sm, c.clusters, c.smalls)
		}
	}
}

// udpRTT measures a kernel UDP echo round trip.
func udpRTT(t *testing.T, tb *testbed.Testbed, ka, kb ip.Conduit, size, rounds int) time.Duration {
	t.Helper()
	sa := udp.NewStack(ka, kernelpath.UDPParams())
	sb := udp.NewStack(kb, kernelpath.UDPParams())
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			data, src, ok := skb.RecvFrom(p, 100*time.Millisecond)
			if !ok {
				t.Error("server timeout")
				return
			}
			skb.SendTo(p, src, data)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			ska.SendTo(p, 2, make([]byte, size))
			if _, _, ok := ska.RecvFrom(p, 100*time.Millisecond); !ok {
				t.Error("client timeout")
				return
			}
		}
		rtt = (p.Now() - start) / time.Duration(rounds)
	})
	tb.Eng.Run()
	return rtt
}

func TestKernelUDPRTTIsHundredsOfMicroseconds(t *testing.T) {
	tb, ka, kb := atmPair(t)
	rtt := udpRTT(t, tb, ka, kb, 8, 20)
	us := float64(rtt) / float64(time.Microsecond)
	// Figure 6/9: kernel round trips sit far above U-Net's 138 µs.
	if us < 400 || us > 1200 {
		t.Fatalf("kernel ATM UDP RTT = %.0f µs, want within 400-1200", us)
	}
}

func TestATMWorseThanEthernetForSmallMessages(t *testing.T) {
	// Figure 6: "for small messages the latency of both UDP and TCP
	// messages is larger using ATM than going over Ethernet".
	tbA, kaA, kbA := atmPair(t)
	atm := udpRTT(t, tbA, kaA, kbA, 8, 20)
	tbE, kaE, kbE := ethPair(t)
	eth := udpRTT(t, tbE, kaE, kbE, 8, 20)
	if atm <= eth {
		t.Fatalf("small messages: ATM RTT %v ≤ Ethernet RTT %v (Figure 6 inverted)", atm, eth)
	}
}

func TestATMBeatsEthernetForLargeMessages(t *testing.T) {
	tbA, kaA, kbA := atmPair(t)
	atm := udpRTT(t, tbA, kaA, kbA, 1400, 20)
	tbE, kaE, kbE := ethPair(t)
	eth := udpRTT(t, tbE, kaE, kbE, 1400, 20)
	if atm >= eth {
		t.Fatalf("1400B messages: ATM RTT %v ≥ Ethernet RTT %v (crossover missing)", atm, eth)
	}
}

func TestMbufSawtooth(t *testing.T) {
	// A 1500-byte packet needs five 112-byte mbufs for its 476-byte
	// remainder; a 1536-byte packet rounds to two clusters. Despite being
	// larger, the 1536-byte packet must be cheaper end to end (Figure 7's
	// sawtooth).
	tb1, ka1, kb1 := atmPair(t)
	jagged := udpRTT(t, tb1, ka1, kb1, 1500-28, 20) // payload; +28 headers = 1500 on wire
	tb2, ka2, kb2 := atmPair(t)
	smooth := udpRTT(t, tb2, ka2, kb2, 1536-28, 20)
	if jagged <= smooth {
		t.Fatalf("RTT(1500-byte packet) %v ≤ RTT(1536-byte packet) %v — no mbuf sawtooth", jagged, smooth)
	}
}

func TestKernelUDPBlastLosesAtReceiver(t *testing.T) {
	// Figure 7: the kernel's sender-perceived bandwidth exceeds what is
	// actually received. Losses are kernel buffering: the saturated
	// receiver CPU lets either the driver's receive buffers or the socket
	// buffer overflow (§7.3).
	tb, ka, kb, _, ib := atmPairFull(t)
	sa := udp.NewStack(ka, kernelpath.UDPParams())
	sb := udp.NewStack(kb, kernelpath.UDPParams())
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	const count, size = 400, 1024
	received := 0
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for {
			if _, _, ok := skb.RecvFrom(p, 5*time.Millisecond); !ok {
				return
			}
			received++
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			ska.SendTo(p, 2, make([]byte, size))
		}
	})
	tb.Eng.Run()
	st := kb.Stats()
	if received >= count {
		t.Fatalf("no loss: received %d of %d", received, count)
	}
	epDrops := ib.Endpoint().Stats().DroppedNoBuffer + ib.Endpoint().Stats().DroppedQueueFull
	if st.SockBufDrops == 0 && ka.Stats().TxQueueDrops == 0 && epDrops == 0 {
		t.Fatalf("loss not attributed to kernel buffering: %+v / %+v", st, ka.Stats())
	}
}

func TestUNetUDPFarFasterThanKernel(t *testing.T) {
	// The headline of Figure 9: U-Net UDP at 138 µs vs kernel UDP in the
	// high hundreds.
	tbK, ka, kb := atmPair(t)
	kernel := udpRTT(t, tbK, ka, kb, 8, 20)

	tbU := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tbU.Close)
	ua, ub, err := tbU.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	unetRTT := func() time.Duration {
		sa := udp.NewStack(ua, udp.DefaultParams())
		sb := udp.NewStack(ub, udp.DefaultParams())
		ska, _ := sa.Bind(1, 0)
		skb, _ := sb.Bind(2, 0)
		var rtt time.Duration
		tbU.Hosts[1].Spawn("srv", func(p *sim.Proc) {
			for i := 0; i < 21; i++ {
				d, src, ok := skb.RecvFrom(p, 100*time.Millisecond)
				if !ok {
					return
				}
				skb.SendTo(p, src, d)
			}
		})
		tbU.Hosts[0].Spawn("cli", func(p *sim.Proc) {
			var start time.Duration
			for i := 0; i < 21; i++ {
				if i == 1 {
					start = p.Now()
				}
				ska.SendTo(p, 2, make([]byte, 8))
				if _, _, ok := ska.RecvFrom(p, 100*time.Millisecond); !ok {
					return
				}
			}
			rtt = (p.Now() - start) / 20
		})
		tbU.Eng.Run()
		return rtt
	}()
	if kernel < 3*unetRTT {
		t.Fatalf("kernel RTT %v not ≫ U-Net RTT %v", kernel, unetRTT)
	}
}

func TestTxQueueBoundsAndDriverDrains(t *testing.T) {
	tb, ka, kb := atmPair(t)
	_ = kb
	done := false
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := ka.Send(p, make([]byte, ip.HeaderSize+100)); err != nil {
				t.Error(err)
			}
		}
		done = true
	})
	tb.Eng.RunUntil(50 * time.Millisecond)
	if !done {
		t.Fatal("sender blocked — kernel send must not block the app")
	}
	if ka.Stats().Sent != 10 {
		t.Fatalf("Sent = %d, want 10", ka.Stats().Sent)
	}
}

func TestEthernetSharedMediumContention(t *testing.T) {
	// Two simultaneous conversations on one 10 Mbit/s segment must share
	// the wire: together they cannot exceed the medium's capacity.
	tb := testbed.New(testbed.Config{Hosts: 4})
	t.Cleanup(tb.Close)
	en := kernelpath.NewEthernet(tb.Eng)
	mk := func(h int, local, remote uint32) *kernelpath.Conduit {
		return kernelpath.New(tb.Hosts[h], en.NewPort(local, remote), kernelpath.DefaultParams())
	}
	kA, kB := mk(0, 1, 2), mk(1, 2, 1)
	kC, kD := mk(2, 3, 4), mk(3, 4, 3)

	const count, size = 40, 1400
	recv := func(k *kernelpath.Conduit, got *int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for {
				if _, ok := k.Recv(p, 100*time.Millisecond); !ok {
					return
				}
				*got++
			}
		}
	}
	send := func(k *kernelpath.Conduit) func(*sim.Proc) {
		return func(p *sim.Proc) {
			pkt := make([]byte, ip.HeaderSize+size)
			for i := 0; i < count; i++ {
				k.Send(p, pkt)
			}
		}
	}
	gotB, gotD := 0, 0
	var endB, endD time.Duration
	tb.Hosts[1].Spawn("rxB", func(p *sim.Proc) { recv(kB, &gotB)(p); endB = p.Now() })
	tb.Hosts[3].Spawn("rxD", func(p *sim.Proc) { recv(kD, &gotD)(p); endD = p.Now() })
	tb.Hosts[0].Spawn("txA", send(kA))
	tb.Hosts[2].Spawn("txC", send(kC))
	tb.Eng.Run()
	if gotB == 0 || gotD == 0 {
		t.Fatalf("a conversation was starved: %d / %d", gotB, gotD)
	}
	// Wire time for all frames: 2 × 40 × (1428+38) × 0.8 µs ≈ 94 ms. The
	// last delivery cannot beat the shared medium's serialization.
	last := endB
	if endD > last {
		last = endD
	}
	minWire := time.Duration(2*count*(size+28+38)) * 800 * time.Nanosecond
	// Subtract the receive-side timeout tail (100 ms) included in endX.
	if last-100*time.Millisecond < minWire-10*time.Millisecond {
		t.Fatalf("two flows finished in %v — faster than the shared 10 Mbit/s wire allows (%v)", last, minWire)
	}
}
