package kernelpath

import (
	"time"

	"unet/internal/sim"
)

// Ethernet models the 10 Mbit/s shared segment the paper's Figure 6
// compares the ATM against: frames serialize on one medium at 0.8 µs per
// byte (plus framing overhead), and the transmitting driver busy-waits
// for transmit completion, as the LANCE-era adapters did.
type Ethernet struct {
	e *sim.Engine
	// PerByte is the serialization cost (10 Mbit/s ≈ 0.8 µs/byte).
	PerByte time.Duration
	// FrameOverhead is preamble + header + CRC + gap, charged per frame.
	FrameOverhead int
	// Latency is propagation plus adapter latency.
	Latency time.Duration

	nextFree time.Duration
	ports    []*EthPort
}

// EthMTU is the Ethernet maximum frame payload.
const EthMTU = 1500

// NewEthernet creates a shared segment.
func NewEthernet(e *sim.Engine) *Ethernet {
	return &Ethernet{
		e:             e,
		PerByte:       800 * time.Nanosecond,
		FrameOverhead: 38,
		Latency:       20 * time.Microsecond,
	}
}

// EthPort is one station's attachment. It implements ip.Conduit as the
// "wire" layer beneath the kernel Conduit. Ports are point-to-point
// addressed: a frame is delivered to the port whose address matches dst.
type EthPort struct {
	net    *Ethernet
	local  uint32
	remote uint32
	rx     *sim.FIFO[[]byte]
}

// NewPort attaches a station with the given local/remote addresses.
func (en *Ethernet) NewPort(local, remote uint32) *EthPort {
	p := &EthPort{net: en, local: local, remote: remote, rx: sim.NewFIFO[[]byte](0)}
	en.ports = append(en.ports, p)
	return p
}

// LocalAddr returns the port's station address.
func (pt *EthPort) LocalAddr() uint32 { return pt.local }

// RemoteAddr returns the peer station address.
func (pt *EthPort) RemoteAddr() uint32 { return pt.remote }

// MTU returns the Ethernet frame payload limit.
func (pt *EthPort) MTU() int { return EthMTU }

// Send serializes the frame on the shared medium; the caller (the driver
// process) is busy until transmission completes.
func (pt *EthPort) Send(p *sim.Proc, pkt []byte) error {
	en := pt.net
	wire := time.Duration(len(pkt)+en.FrameOverhead) * en.PerByte
	start := p.Now()
	if en.nextFree > start {
		start = en.nextFree
	}
	depart := start + wire
	en.nextFree = depart
	buf := make([]byte, len(pkt))
	copy(buf, pkt)
	dst := pt.remote
	en.e.At(depart+en.Latency, func() {
		for _, other := range en.ports {
			if other.local == dst {
				other.rx.TryPut(buf)
				return
			}
		}
	})
	// Busy-wait for transmit completion (and any deferral on the shared
	// medium).
	p.Sleep(depart - p.Now())
	return nil
}

// Recv blocks up to timeout for the next frame; a negative timeout blocks
// until one arrives.
func (pt *EthPort) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	if timeout < 0 {
		return pt.rx.Get(p), true
	}
	deadline := p.Now() + timeout
	for pt.rx.Len() == 0 {
		remain := deadline - p.Now()
		if remain <= 0 {
			return nil, false
		}
		p.WaitTimeout(pt.rx.NotEmpty(), remain)
	}
	return pt.rx.Get(p), true
}

// TryRecv polls without blocking.
func (pt *EthPort) TryRecv(p *sim.Proc) ([]byte, bool) {
	return pt.rx.TryGet()
}
