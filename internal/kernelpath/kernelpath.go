// Package kernelpath models the traditional in-kernel networking path the
// paper uses as its baseline (Figure 1a, §7): BSD-style sockets on SunOS
// 4.1.3 with mbuf buffering, bounded socket buffers, per-packet system
// calls, copies and interrupts — over either the Fore ATM adapter (with
// the original firmware) or 10 Mbit/s Ethernet.
//
// The same UDP and TCP modules that run over U-Net run over this package's
// Conduit; only the execution environment differs, which is precisely the
// comparison of Figures 6-9. The kernel path is modeled as cost layers
// wrapped around an inner wire conduit:
//
//	application ──syscall+copyin+stack+mbuf──▶ driver queue ──driver──▶ wire
//	wire ──interrupt+stack+mbuf──▶ socket buffer ──wakeup+syscall+copyout──▶ application
//
// The mbuf allocator reproduces the §7.3 pathology: data is placed in
// 1 Kbyte cluster buffers, and a remainder of less than 512 bytes is
// copied into chains of 112-byte small mbufs, which lack reference counts
// and are expensive — the source of the 1 KB-period sawtooth in Figure 7.
package kernelpath

import (
	"time"

	"unet/internal/ip"
	"unet/internal/ip/tcp"
	"unet/internal/ip/udp"
	"unet/internal/sim"
	"unet/internal/unet"
)

// Params is the kernel-path cost model (SunOS 4.1.3 on a SPARCstation-20).
type Params struct {
	// Syscall is the trap in/out cost paid on every send and receive.
	Syscall time.Duration
	// CopyPerByte is the user/kernel boundary copy cost (uiomove) —
	// slower than a tuned memcpy because of page-wise checks.
	CopyPerByte time.Duration
	// StackPerPacket is the generic IP + socket layer processing per
	// packet in the kernel (excluding UDP/TCP protocol costs, which the
	// protocol modules charge).
	StackPerPacket time.Duration
	// ClusterCost and SmallMbufCost price the mbuf allocate/free work for
	// 1 KB clusters and 112-byte small mbufs (§7.3: the small ones have
	// no reference counts and degrade performance).
	ClusterCost   time.Duration
	SmallMbufCost time.Duration
	// Interrupt is the per-packet receive interrupt overhead.
	Interrupt time.Duration
	// Wakeup is the scheduler cost of waking the blocked receiver.
	Wakeup time.Duration
	// DriverTx is the device-driver transmit handoff per packet.
	DriverTx time.Duration
	// TxQueuePackets bounds the device transmit queue; SunOS "will drop
	// random packets from the device transmit queue if there is overload
	// without notifying the sending application" (§7.4).
	TxQueuePackets int
	// SockBufBytes is the socket receive buffer (§7.3: max 52 Kbytes in
	// SunOS) — the overflow point for kernel UDP receive losses.
	SockBufBytes int
}

// DefaultParams returns the calibrated SunOS model.
func DefaultParams() Params {
	return Params{
		Syscall:        17 * time.Microsecond,
		CopyPerByte:    80 * time.Nanosecond,
		StackPerPacket: 30 * time.Microsecond,
		ClusterCost:    4 * time.Microsecond,
		SmallMbufCost:  8 * time.Microsecond,
		Interrupt:      40 * time.Microsecond,
		Wakeup:         60 * time.Microsecond,
		DriverTx:       15 * time.Microsecond,
		TxQueuePackets: 40,
		SockBufBytes:   52 << 10,
	}
}

// MbufChain returns the buffer chain the SunOS allocator builds for an
// n-byte packet: full 1 KB clusters, and either one more cluster (when the
// remainder is at least 512 bytes) or a chain of 112-byte small mbufs.
func MbufChain(n int) (clusters, smalls int) {
	clusters = n / 1024
	rem := n % 1024
	switch {
	case rem == 0:
	case rem >= 512:
		clusters++
	default:
		smalls = (rem + 111) / 112
	}
	return clusters, smalls
}

// mbufCost prices allocating (or freeing) the chain for n bytes.
func (pr *Params) mbufCost(n int) time.Duration {
	clusters, smalls := MbufChain(n)
	return time.Duration(clusters)*pr.ClusterCost + time.Duration(smalls)*pr.SmallMbufCost
}

// UDPParams returns the kernel UDP protocol configuration: heavier
// per-packet processing and — faithful to SunOS defaults — no UDP
// checksum.
func UDPParams() udp.Params {
	return udp.Params{
		ProcTx:          25 * time.Microsecond,
		ProcRx:          25 * time.Microsecond,
		PCBMiss:         8 * time.Microsecond,
		Checksum:        false,
		ChecksumPerByte: 10 * time.Nanosecond,
	}
}

// TCPParams returns the kernel TCP configuration (§7.8): 500 ms
// pr_slow_timeout granularity, delayed acknowledgments, a large MSS
// matching the IP-over-ATM MTU, and the socket-buffer-sized window.
func TCPParams(windowBytes int) tcp.Params {
	if windowBytes <= 0 {
		windowBytes = 52 << 10
	}
	return tcp.Params{
		MSS:              8192,
		WindowBytes:      windowBytes,
		SendBufBytes:     64 << 10,
		TimerGranularity: 500 * time.Millisecond,
		DelayedAck:       true,
		DelayedAckDelay:  200 * time.Millisecond,
		ProcTx:           35 * time.Microsecond,
		ProcRx:           35 * time.Microsecond,
		Checksum:         true,
		ChecksumPerByte:  10 * time.Nanosecond,
	}
}

// Stats counts kernel-path events.
type Stats struct {
	Sent, Received  uint64
	TxQueueDrops    uint64
	SockBufDrops    uint64
	ClustersAlloced uint64
	SmallsAlloced   uint64
}

// Conduit is the in-kernel packet path between two hosts. It implements
// ip.Conduit so the UDP/TCP modules run over it unchanged.
type Conduit struct {
	host   *unet.Host
	inner  ip.Conduit
	params Params

	txq *sim.FIFO[[]byte]

	sockBytes int
	sockQ     [][]byte
	sockCond  sim.Cond

	// The kernel path shares one CPU between the application's system
	// calls and the interrupt/driver work — unlike U-Net, where the i960
	// runs in parallel with the host. cpuBusy serializes the charged work,
	// and interrupt-level work takes priority over system calls, which is
	// what lets a receive flood starve the application (receive livelock)
	// and overflow the socket buffer.
	cpuBusy     bool
	intrWaiting int
	cpuFree     sim.Cond

	stats Stats
}

// withCPU runs d of system-call-level kernel work on the (single) CPU,
// deferring to any pending interrupt-level work.
func (c *Conduit) withCPU(p *sim.Proc, d time.Duration) {
	for c.cpuBusy || c.intrWaiting > 0 {
		p.Wait(&c.cpuFree)
	}
	c.cpuBusy = true
	charge(p, d)
	c.cpuBusy = false
	c.cpuFree.Broadcast()
}

// withCPUIntr runs d of interrupt-level work, which preempts (waits only
// for the current holder, never behind other system calls).
func (c *Conduit) withCPUIntr(p *sim.Proc, d time.Duration) {
	c.intrWaiting++
	for c.cpuBusy {
		p.Wait(&c.cpuFree)
	}
	c.intrWaiting--
	c.cpuBusy = true
	charge(p, d)
	c.cpuBusy = false
	c.cpuFree.Broadcast()
}

// New wraps the inner wire conduit (an ATM endpoint path or an Ethernet
// port) in the kernel cost layers and starts the driver and interrupt
// service processes on host.
func New(host *unet.Host, inner ip.Conduit, params Params) *Conduit {
	c := &Conduit{
		host:   host,
		inner:  inner,
		params: params,
		txq:    sim.NewFIFO[[]byte](params.TxQueuePackets),
	}
	host.Spawn("kernel-tx", c.txProc)
	host.Spawn("kernel-rx", c.rxProc)
	return c
}

// Stats returns a snapshot of the conduit counters.
func (c *Conduit) Stats() Stats { return c.stats }

// LocalAddr returns the local host address.
func (c *Conduit) LocalAddr() uint32 { return c.inner.LocalAddr() }

// RemoteAddr returns the peer host address.
func (c *Conduit) RemoteAddr() uint32 { return c.inner.RemoteAddr() }

// MTU returns the wire MTU.
func (c *Conduit) MTU() int { return c.inner.MTU() }

// Send runs the kernel transmit path: trap, copyin into an mbuf chain,
// stack processing, and the device queue — which silently drops on
// overload (§7.4).
func (c *Conduit) Send(p *sim.Proc, pkt []byte) error {
	pr := &c.params
	c.withCPU(p, pr.Syscall+time.Duration(len(pkt))*pr.CopyPerByte+
		pr.mbufCost(len(pkt))+pr.StackPerPacket)
	c.accountMbufs(len(pkt))
	c.stats.Sent++
	buf := make([]byte, len(pkt))
	copy(buf, pkt)
	if !c.txq.TryPut(buf) {
		c.stats.TxQueueDrops++ // silent: the application is not told
	}
	return nil
}

func (c *Conduit) accountMbufs(n int) {
	cl, sm := MbufChain(n)
	c.stats.ClustersAlloced += uint64(cl)
	c.stats.SmallsAlloced += uint64(sm)
}

// txProc is the driver's transmit side: it drains the device queue onto
// the wire.
func (c *Conduit) txProc(p *sim.Proc) {
	for {
		pkt := c.txq.Get(p)
		c.withCPU(p, c.params.DriverTx)
		if err := c.inner.Send(p, pkt); err != nil {
			continue
		}
	}
}

// rxProc is the interrupt side: packets come off the wire, pay interrupt
// and stack costs, and land in the bounded socket buffer.
func (c *Conduit) rxProc(p *sim.Proc) {
	pr := &c.params
	for {
		pkt, ok := c.inner.Recv(p, -1)
		if !ok {
			continue
		}
		c.withCPUIntr(p, pr.Interrupt+pr.StackPerPacket+pr.mbufCost(len(pkt)))
		c.accountMbufs(len(pkt))
		if c.sockBytes+len(pkt) > pr.SockBufBytes {
			c.stats.SockBufDrops++
			continue
		}
		c.sockQ = append(c.sockQ, pkt)
		c.sockBytes += len(pkt)
		c.stats.Received++
		c.sockCond.Broadcast()
	}
}

func (c *Conduit) pop() ([]byte, bool) {
	if len(c.sockQ) == 0 {
		return nil, false
	}
	pkt := c.sockQ[0]
	c.sockQ = c.sockQ[1:]
	c.sockBytes -= len(pkt)
	return pkt, true
}

// Recv runs the kernel receive path visible to the application: block in
// the kernel, be woken, copy out.
func (c *Conduit) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	pr := &c.params
	c.withCPU(p, pr.Syscall)
	deadline := p.Now() + timeout
	for {
		if pkt, ok := c.pop(); ok {
			c.withCPU(p, pr.Wakeup+time.Duration(len(pkt))*pr.CopyPerByte)
			return pkt, true
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			return nil, false
		}
		p.WaitTimeout(&c.sockCond, remain)
	}
}

// TryRecv polls the socket buffer without blocking.
func (c *Conduit) TryRecv(p *sim.Proc) ([]byte, bool) {
	pr := &c.params
	c.withCPU(p, pr.Syscall)
	pkt, ok := c.pop()
	if !ok {
		return nil, false
	}
	c.withCPU(p, time.Duration(len(pkt))*pr.CopyPerByte)
	return pkt, true
}

func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}
