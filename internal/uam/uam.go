// Package uam implements U-Net Active Messages (paper §5): a user-level
// library conforming to the Generic Active Messages (GAM) 1.1 style of
// interface, built directly on U-Net endpoints.
//
// Communication is by requests and matching replies: an Active Message
// carries a handler index and an argument word (plus payload); the handler
// runs when the message is pulled out of the network by Poll. To prevent
// live-lock, a reply handler may not send another reply (§5).
//
// Reliability (§5.1.1): each peer pair maintains a window-based flow
// control protocol with fixed window w. Requests, replies and bulk
// segments form one go-back-N reliable stream per direction; cumulative
// acknowledgments piggyback on every message, and arrivals that generate
// no reverse traffic are explicitly acknowledged. Every endpoint
// preallocates 4w buffers per peer it communicates with: w staging slots
// for its own stream and 2w receive buffers, with the final w kept as
// receive-queue headroom.
//
// Reception is by explicit polling (§5.1.2): Poll loops through the
// receive queue, dispatches handlers, sends acknowledgments, and recycles
// buffers. All blocking operations poll internally, including while
// waiting out send-window back-pressure, as the paper describes.
package uam

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"unet/internal/sim"
	"unet/internal/unet"
)

// Errors reported by the UAM layer.
var (
	ErrNoPeer     = errors.New("uam: destination not connected")
	ErrTooLong    = errors.New("uam: payload exceeds bulk buffer size")
	ErrBadHandler = errors.New("uam: handler index not registered")
	ErrReplyCtx   = errors.New("uam: Reply outside a request handler")
	ErrMemRange   = errors.New("uam: offset outside exposed memory")
	// ErrPeerDead reports that MaxRetries consecutive retransmissions went
	// unacknowledged: the peer is declared dead and blocking operations
	// toward it fail instead of retransmitting forever.
	ErrPeerDead = errors.New("uam: peer unresponsive, retry limit exceeded")
)

// Config tunes the UAM instance.
type Config struct {
	// Window is the flow-control window w (§5.1.1). Default 8.
	Window int
	// BulkMax is the data capacity of one message and of each
	// preallocated buffer; transfers are segmented to this size. The
	// prototype used 4160 bytes (§5.2) — the cause of the Figure 4
	// bandwidth dip at 4164 bytes.
	BulkMax int
	// MaxPeers bounds the peers this instance can connect to; buffer
	// space is preallocated per peer. Default 8 (the paper's cluster).
	MaxPeers int
	// MemSize is the size of the memory region exposed to bulk store/get.
	MemSize int
	// RetransmitTimeout is the initial go-back-N timer. Default 2 ms.
	// Consecutive unacknowledged retransmissions back off exponentially
	// from here (doubling per retry) up to RetransmitMax.
	RetransmitTimeout time.Duration
	// RetransmitMax caps the backed-off retransmit interval. Default 32 ms
	// (never below RetransmitTimeout).
	RetransmitMax time.Duration
	// MaxRetries is the number of consecutive unacknowledged
	// retransmissions after which the peer is declared dead and blocking
	// operations return ErrPeerDead. Default 10.
	MaxRetries int
	// OpOverhead is the per-operation bookkeeping cost of the UAM library
	// (header build/parse, window accounting). Calibration: UAM adds
	// ~6 µs to the raw U-Net single-cell round trip (§5.2: 71 µs vs 65).
	OpOverhead time.Duration
	// BulkOverhead is the additional per-operation cost of the multi-cell
	// transfer path (transmit/receive buffer management). Calibration:
	// UAM block transfers take roughly 135 µs + 0.2 µs/byte round trip
	// (§5.2), ~15 µs above the raw U-Net multi-cell fixed cost.
	BulkOverhead time.Duration
}

// DefaultConfig returns the prototype configuration.
func DefaultConfig() Config {
	return Config{
		Window:            8,
		BulkMax:           4160,
		MaxPeers:          8,
		MemSize:           1 << 20,
		RetransmitTimeout: 2 * time.Millisecond,
		RetransmitMax:     32 * time.Millisecond,
		MaxRetries:        10,
		OpOverhead:        400 * time.Nanosecond,
		BulkOverhead:      3500 * time.Nanosecond,
	}
}

// Handler is an Active Message handler. src is the sending node, arg the
// 32-bit argument word, data the payload (valid only during the call).
// Request handlers may call u.Reply; reply handlers must not.
type Handler func(u *UAM, p *sim.Proc, src int, arg uint32, data []byte)

// Stats counts UAM protocol events.
type Stats struct {
	ReqSent, ReqRecv     uint64
	ReplySent, ReplyRecv uint64
	AcksSent, AcksRecv   uint64
	StoreSegs, GetSegs   uint64
	Retransmits          uint64
	Duplicates           uint64
	// AcksSuppressed counts duplicates that did not force a fresh explicit
	// ack because one was already pending — a whole go-back-N window replay
	// solicits one ack, not one per duplicate.
	AcksSuppressed uint64
}

type txSlot struct {
	off int // staging offset in the communication segment
	n   int // staged message length (header + data)
}

type peer struct {
	node int
	ch   unet.ChannelID

	// Transmit side of the reliable stream.
	nextSeq  uint8
	ackedTo  uint8
	slots    []txSlot
	deadline time.Duration // retransmit deadline; 0 = nothing outstanding
	retries  int           // consecutive retransmissions without ack progress
	dead     bool          // retry budget exhausted; sticky

	// Receive side.
	expected    uint8
	lastAckSent uint8 // cumulative ack last carried to this peer
	needAck     bool
	forceAck    bool // duplicate seen or ack explicitly solicited by ping
	dupPending  bool // a duplicate already forced an ack that has not gone out
}

// UAM is one node's Active Messages instance, bound to one U-Net endpoint.
type UAM struct {
	node     int
	ep       *unet.Endpoint
	cfg      Config
	handlers []Handler
	peers    map[int]*peer
	// peerList holds the peers in ascending node-id order. Every loop with
	// a protocol effect (retransmission, acks, flushes) walks this list, not
	// the map: map iteration order is random per run and would feed the
	// event schedule — and hence the golden outputs — from a random
	// permutation (unetlint's mapiter analyzer enforces this).
	peerList []*peer
	byChan   map[unet.ChannelID]*peer
	mem      []byte
	gets     map[uint32]int // transfer tag → bytes remaining
	nextTag  uint32
	replyTo  *peer // non-nil while dispatching a request handler
	inReply  bool  // true while dispatching a reply handler
	draining bool  // re-entrance guard for pre-send queue draining
	stats    Stats
	slotBase int // next free segment offset for peer slot allocation

	// nextDeadline coalesces the per-peer retransmit deadlines into one
	// lower bound (0 = none armed since the last full scan), so checkTimers
	// is O(1) on an instance with thousands of connected peers unless a
	// timer is actually due. nacks counts peers with needAck set, gating
	// flushAcks the same way.
	nextDeadline time.Duration
	nacks        int

	// scratch is a free-list stack of message staging buffers (gather
	// output, store/get segment assembly). A stack — not a single buffer —
	// because handlers re-enter the library: a dispatch can send, which
	// drains the receive queue, which gathers and dispatches again before
	// the outer buffer is released.
	scratch [][]byte

	// Control messages (acks, ack pings) are unsequenced, so they have no
	// window slot to stage in; their inline bytes must nonetheless stay
	// stable until the NIC pops the descriptor. They rotate through a
	// dedicated segment ring of SendQueueCap+1 slots: at most SendQueueCap
	// descriptors can be queued, so a slot is never rewritten while a
	// descriptor still points at it.
	ctrlBase int
	ctrlNext int
}

// New creates a UAM instance for owner with the given node id, creating
// the underlying U-Net endpoint sized for cfg.
func New(owner *unet.Process, node int, cfg Config) (*UAM, error) {
	def := DefaultConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.Window > 64 {
		return nil, fmt.Errorf("uam: window %d too large for 8-bit sequence space", cfg.Window)
	}
	if cfg.BulkMax <= 0 {
		cfg.BulkMax = def.BulkMax
	}
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = def.MaxPeers
	}
	if cfg.MemSize <= 0 {
		cfg.MemSize = def.MemSize
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = def.RetransmitTimeout
	}
	if cfg.RetransmitMax <= 0 {
		cfg.RetransmitMax = def.RetransmitMax
	}
	if cfg.RetransmitMax < cfg.RetransmitTimeout {
		cfg.RetransmitMax = cfg.RetransmitTimeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = def.MaxRetries
	}
	if cfg.OpOverhead <= 0 {
		cfg.OpOverhead = def.OpOverhead
	}
	if cfg.BulkOverhead <= 0 {
		cfg.BulkOverhead = def.BulkOverhead
	}
	slot := headerSize + cfg.BulkMax
	perPeer := cfg.Window*slot + 2*cfg.Window*(headerSize+cfg.BulkMax)
	ctrlRing := (cfg.Window*cfg.MaxPeers + 1) * headerSize // control staging slots
	epCfg := unet.EndpointConfig{
		SegmentSize:  cfg.MaxPeers*perPeer + ctrlRing,
		RecvBufSize:  headerSize + cfg.BulkMax,
		SendQueueCap: cfg.Window * cfg.MaxPeers,
		RecvQueueCap: 4 * cfg.Window * cfg.MaxPeers,
		FreeQueueCap: 2 * cfg.Window * cfg.MaxPeers,
	}
	k := owner.Host().Kernel
	// UAM segments outgrow the default per-process cap; raise it the way a
	// site administrator would for a parallel-computing node.
	lim := k.Limits()
	if lim.MaxSegmentBytes < epCfg.SegmentSize {
		lim.MaxSegmentBytes = epCfg.SegmentSize
		k.SetLimits(lim)
	}
	if lim.MaxQueueCap < epCfg.RecvQueueCap {
		lim.MaxQueueCap = epCfg.RecvQueueCap
		k.SetLimits(lim)
	}
	ep, err := k.CreateEndpoint(nil, owner, epCfg)
	if err != nil {
		return nil, err
	}
	return &UAM{
		node:     node,
		ep:       ep,
		cfg:      cfg,
		handlers: make([]Handler, 256),
		peers:    make(map[int]*peer),
		byChan:   make(map[unet.ChannelID]*peer),
		mem:      make([]byte, cfg.MemSize),
		gets:     make(map[uint32]int),
		ctrlBase: cfg.MaxPeers * perPeer,
	}, nil
}

// popScratch takes a staging buffer (len 0) off the free list, or returns
// nil for append-growth. Buffers converge on the workload's high-water
// message size and then recirculate without allocation.
func (u *UAM) popScratch() []byte {
	if n := len(u.scratch); n > 0 {
		b := u.scratch[n-1]
		u.scratch[n-1] = nil
		u.scratch = u.scratch[:n-1]
		return b
	}
	return nil
}

// putScratch returns a staging buffer to the free list.
func (u *UAM) putScratch(b []byte) { u.scratch = append(u.scratch, b[:0]) }

// Node returns this instance's node id.
func (u *UAM) Node() int { return u.node }

// Endpoint exposes the underlying U-Net endpoint.
func (u *UAM) Endpoint() *unet.Endpoint { return u.ep }

// Mem exposes the bulk-transfer memory region (the GAM "virtual memory"
// stores and gets address).
func (u *UAM) Mem() []byte { return u.mem }

// Stats returns a snapshot of protocol counters.
func (u *UAM) Stats() Stats { return u.stats }

// Config returns the resolved configuration (defaults filled in).
func (u *UAM) Config() Config { return u.cfg }

// Peers returns the connected node ids in ascending order.
func (u *UAM) Peers() []int {
	out := make([]int, 0, len(u.peerList))
	for _, pe := range u.peerList {
		out = append(out, pe.node)
	}
	return out
}

// RegisterHandler binds index id (1-255) to h.
func (u *UAM) RegisterHandler(id int, h Handler) error {
	if id <= 0 || id > 255 {
		return fmt.Errorf("uam: handler id %d out of range", id)
	}
	u.handlers[id] = h
	return nil
}

// Connect joins two UAM instances with a U-Net channel and preallocates
// the per-peer buffers on both sides (§5.1.1).
func Connect(m *unet.Manager, a, b *UAM) error {
	if len(a.peers) >= a.cfg.MaxPeers || len(b.peers) >= b.cfg.MaxPeers {
		return fmt.Errorf("uam: peer table full")
	}
	if _, dup := a.peers[b.node]; dup {
		return fmt.Errorf("uam: nodes %d and %d already connected", a.node, b.node)
	}
	ch, err := m.Connect(nil, a.ep, b.ep)
	if err != nil {
		return err
	}
	if err := a.addPeer(b.node, ch.ChanA); err != nil {
		return err
	}
	return b.addPeer(a.node, ch.ChanB)
}

func (u *UAM) addPeer(node int, ch unet.ChannelID) error {
	pe := &peer{node: node, ch: ch, slots: make([]txSlot, u.cfg.Window)}
	slotSize := headerSize + u.cfg.BulkMax
	for i := range pe.slots {
		pe.slots[i] = txSlot{off: u.slotBase}
		u.slotBase += slotSize
	}
	// 2w receive buffers per peer (§5.1.1).
	base, err := u.ep.ProvideRecvBuffers(nil, u.slotBase, 2*u.cfg.Window)
	if err != nil {
		return err
	}
	u.slotBase = base
	u.peers[node] = pe
	i := sort.Search(len(u.peerList), func(i int) bool { return u.peerList[i].node >= node })
	u.peerList = append(u.peerList, nil)
	copy(u.peerList[i+1:], u.peerList[i:])
	u.peerList[i] = pe
	u.byChan[ch] = pe
	return nil
}

// peerFor validates the destination.
func (u *UAM) peerFor(dst int) (*peer, error) {
	pe, ok := u.peers[dst]
	if !ok {
		return nil, fmt.Errorf("%w: node %d", ErrNoPeer, dst)
	}
	return pe, nil
}
