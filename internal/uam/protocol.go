package uam

import (
	"fmt"
	"time"

	"unet/internal/sim"
	"unet/internal/unet"
)

// deadErr wraps ErrPeerDead with the peer's identity.
func deadErr(pe *peer) error { return fmt.Errorf("%w: node %d", ErrPeerDead, pe.node) }

// outstanding reports how many unacknowledged messages the stream to pe
// holds.
func (pe *peer) outstanding() int { return seqDiff(pe.nextSeq, pe.ackedTo) }

// sendReliable stages a message in the next window slot and transmits it.
// When the window is full it polls for incoming messages until space opens
// or the retransmit timer fires (§5.1.2: "the sender polls for incoming
// messages until there is space in the send window or until a time-out
// occurs and all unacknowledged messages are retransmitted").
//
//unetlint:hotpath UAM reliable send; the steady-state transmit path
func (u *UAM) sendReliable(p *sim.Proc, pe *peer, typ, handler uint8, arg uint32, data []byte) error {
	if len(data) > u.cfg.BulkMax {
		return ErrTooLong
	}
	// "To send a request message, UAM first processes any outstanding
	// messages in the receive queue" (§5.1.2): this keeps acknowledgments
	// flowing in all-to-all communication patterns without explicit
	// polling in the application.
	u.drainIncoming(p)
	// One timeout event serves the whole window stall: each wake re-arms it
	// to the (possibly ack-advanced) retransmit deadline instead of
	// scheduling and canceling a timer per wake.
	var tm sim.Timer
	for pe.outstanding() >= u.cfg.Window {
		if pe.dead {
			tm.Cancel()
			return deadErr(pe)
		}
		tm = u.pollOrTimeout(p, pe, tm)
	}
	tm.Cancel()
	if pe.dead {
		return deadErr(pe)
	}
	charge(p, u.cfg.OpOverhead)
	seq := pe.nextSeq
	slot := &pe.slots[int(seq)%u.cfg.Window]
	// Solicit a prompt ack once the window is half committed, so steady
	// one-way flows never stall waiting for the retransmit timer.
	reqAck := 2*(pe.outstanding()+1) >= u.cfg.Window
	h := header{typ: typ, reqAck: reqAck, handler: handler, seq: seq, ack: pe.expected, arg: arg}
	pe.lastAckSent = pe.expected
	var hdr [headerSize]byte
	h.encode(hdr[:])
	if err := u.ep.Compose(p, slot.off, hdr[:]); err != nil {
		return err
	}
	if err := u.ep.Compose(p, slot.off+headerSize, data); err != nil {
		return err
	}
	slot.n = headerSize + len(data)
	if slot.n > u.ep.Host().Device().SingleCellMax() {
		charge(p, u.cfg.BulkOverhead)
	}
	u.clearNeedAck(pe)
	pe.dupPending = false // the piggybacked ack just went out
	pe.nextSeq++
	if pe.deadline == 0 {
		u.armDeadline(pe, p.Now()+u.cfg.RetransmitTimeout)
	}
	return u.transmitSlot(p, pe, *slot)
}

// transmitSlot pushes a staged message to the endpoint, inline when it
// fits a single cell.
func (u *UAM) transmitSlot(p *sim.Proc, pe *peer, slot txSlot) error {
	var d unet.SendDesc
	if slot.n <= u.ep.Host().Device().SingleCellMax() {
		d = unet.SendDesc{Channel: pe.ch, Inline: u.ep.Segment()[slot.off : slot.off+slot.n]}
	} else {
		d = unet.SendDesc{Channel: pe.ch, Offset: slot.off, Length: slot.n}
	}
	return u.ep.SendBlock(p, d)
}

// sendAck emits an explicit cumulative acknowledgment (unsequenced).
func (u *UAM) sendAck(p *sim.Proc, pe *peer) {
	u.sendControl(p, pe, typeAck)
	u.stats.AcksSent++
}

// sendAckPing solicits an immediate ack from the peer (used by Flush when
// the tail of a transfer generated no solicitation of its own).
func (u *UAM) sendAckPing(p *sim.Proc, pe *peer) {
	u.sendControl(p, pe, typeAckPing)
}

// sendControl emits an unsequenced single-cell control message carrying
// the cumulative ack.
func (u *UAM) sendControl(p *sim.Proc, pe *peer, typ uint8) {
	charge(p, u.cfg.OpOverhead)
	h := header{typ: typ, ack: pe.expected}
	var hdr [headerSize]byte
	h.encode(hdr[:])
	pe.lastAckSent = pe.expected
	u.clearNeedAck(pe)
	pe.forceAck = false
	pe.dupPending = false
	// Control messages are single-cell and unsequenced: losing one only
	// delays the sender until the next solicitation or a retransmission.
	// Stage the header in the next control-ring slot of the segment (a
	// direct store, like any write to mapped memory — no Compose cost) so
	// the inline descriptor's bytes stay stable until the NIC pops it.
	off := u.ctrlBase + u.ctrlNext*headerSize
	u.ctrlNext = (u.ctrlNext + 1) % (u.ep.Config().SendQueueCap + 1)
	buf := u.ep.Segment()[off : off+headerSize]
	copy(buf, hdr[:])
	_ = u.ep.SendBlock(p, unet.SendDesc{Channel: pe.ch, Inline: buf})
}

// drainIncoming processes whatever is already in the receive queue,
// guarding against re-entrance from handlers that themselves send.
// Deliberately no explicit-ack flush here: this runs on the send path,
// where our own outgoing messages piggyback the cumulative ack — explicit
// acks are only worth their NIC slot when the node is idle (Poll/PollWait)
// or stalled on a full window (pollOrTimeout).
//
//unetlint:hotpath UAM receive drain; the steady-state receive path
func (u *UAM) drainIncoming(p *sim.Proc) {
	if u.draining {
		return
	}
	u.draining = true
	for {
		rd, ok := u.ep.PollRecv(p)
		if !ok {
			break
		}
		u.process(p, rd)
	}
	u.draining = false
}

// Poll drains the receive queue, dispatching handlers and recycling
// buffers, then flushes pending acknowledgments and fires due retransmit
// timers (§5.1.2). It returns the number of messages processed.
func (u *UAM) Poll(p *sim.Proc) int {
	n := 0
	for {
		rd, ok := u.ep.PollRecv(p)
		if !ok {
			break
		}
		u.process(p, rd)
		n++
	}
	u.flushAcks(p)
	u.checkTimers(p)
	return n
}

// PollWait blocks up to d for at least one message, then drains like Poll.
func (u *UAM) PollWait(p *sim.Proc, d time.Duration) int {
	rd, ok := u.ep.RecvTimeout(p, d)
	if !ok {
		u.checkTimers(p)
		return 0
	}
	u.process(p, rd)
	return 1 + u.Poll(p)
}

// PollBlock blocks until at least one message arrives, then drains like
// Poll. Unlike PollWait it arms no timer at all: a blocked server process
// leaves nothing in the event queue, so a simulation whose clients have
// finished quiesces instead of grinding timeout wakes — the idle-server
// primitive for large serving testbeds. The caller must be sure traffic is
// coming (or that permanent silence means the run is over): with no
// deadline, retransmit timers are only checked once a message arrives.
func (u *UAM) PollBlock(p *sim.Proc) int {
	rd := u.ep.Recv(p)
	u.process(p, rd)
	return 1 + u.Poll(p)
}

// pollOrTimeout waits for traffic until pe's retransmit deadline, then
// retransmits if nothing moved the window. The timeout event rides along
// in tm across the caller's stall loop (lazy re-arm — see RecvDeadline);
// the caller cancels the last returned timer when the stall ends.
func (u *UAM) pollOrTimeout(p *sim.Proc, pe *peer, tm sim.Timer) sim.Timer {
	wait := pe.deadline - p.Now()
	if wait <= 0 {
		u.retransmit(p, pe)
		return tm
	}
	rd, ok, tm := u.ep.RecvDeadline(p, pe.deadline, tm)
	if !ok {
		u.retransmit(p, pe)
		return tm
	}
	u.process(p, rd)
	for {
		rd, ok := u.ep.PollRecv(p)
		if !ok {
			break
		}
		u.process(p, rd)
	}
	u.flushAcks(p)
	return tm
}

// checkTimers retransmits every peer whose deadline has passed, in node-id
// order so the retransmission schedule is reproducible. The per-peer
// deadlines are coalesced into nextDeadline, a lower bound maintained by
// armDeadline, so the common poll — nothing due — is O(1) instead of a
// walk over every connected peer; the walk (and a fresh bound) happens
// only when the bound itself has passed. Skipping the walk early is
// behavior-preserving: no peer's deadline can be due before the bound.
func (u *UAM) checkTimers(p *sim.Proc) {
	if u.nextDeadline == 0 || p.Now() < u.nextDeadline {
		return
	}
	for _, pe := range u.peerList {
		if pe.deadline != 0 && p.Now() >= pe.deadline {
			u.retransmit(p, pe)
		}
	}
	u.nextDeadline = 0
	for _, pe := range u.peerList {
		if pe.deadline != 0 && (u.nextDeadline == 0 || pe.deadline < u.nextDeadline) {
			u.nextDeadline = pe.deadline
		}
	}
}

// armDeadline sets pe's retransmit deadline and folds it into the
// coalesced lower bound. Deadline clears (pe.deadline = 0) leave the bound
// stale-low, costing at most one wasted walk, never a missed timer.
func (u *UAM) armDeadline(pe *peer, d time.Duration) {
	pe.deadline = d
	if u.nextDeadline == 0 || d < u.nextDeadline {
		u.nextDeadline = d
	}
}

// setNeedAck marks pe as owing an explicit ack, keeping the owing-peer
// count that gates flushAcks.
func (u *UAM) setNeedAck(pe *peer) {
	if !pe.needAck {
		pe.needAck = true
		u.nacks++
	}
}

// clearNeedAck is setNeedAck's inverse (piggyback or explicit ack sent).
func (u *UAM) clearNeedAck(pe *peer) {
	if pe.needAck {
		pe.needAck = false
		u.nacks--
	}
}

// retransmit implements go-back-N: every unacknowledged staged message is
// resent in order (§5.1.1). Consecutive retransmissions without ack
// progress back off exponentially; when the retry budget is exhausted the
// peer is declared dead rather than retransmitted forever — blocking
// operations surface ErrPeerDead.
func (u *UAM) retransmit(p *sim.Proc, pe *peer) {
	if pe.outstanding() == 0 {
		pe.deadline = 0
		pe.retries = 0
		return
	}
	if pe.dead {
		pe.deadline = 0
		return
	}
	if pe.retries >= u.cfg.MaxRetries {
		pe.dead = true
		pe.deadline = 0
		return
	}
	pe.retries++
	for s := pe.ackedTo; s != pe.nextSeq; s++ {
		slot := pe.slots[int(s)%u.cfg.Window]
		u.stats.Retransmits++
		charge(p, u.cfg.OpOverhead)
		if err := u.transmitSlot(p, pe, slot); err != nil {
			return
		}
	}
	u.armDeadline(pe, p.Now()+u.backoff(pe.retries))
}

// backoff returns the retransmit interval after the nth consecutive
// retransmission: the base interval doubling per retry, capped at
// RetransmitMax. Retry 1 uses the base interval, so a single recovered
// loss behaves exactly like the fixed-interval protocol.
func (u *UAM) backoff(retries int) time.Duration {
	d := u.cfg.RetransmitTimeout
	for i := 1; i < retries && d < u.cfg.RetransmitMax; i++ {
		d *= 2
	}
	if d > u.cfg.RetransmitMax {
		d = u.cfg.RetransmitMax
	}
	return d
}

// flushAcks sends explicit acks where piggybacking has fallen behind:
// either the peer saw a duplicate (it missed our acks), or our outgoing
// traffic has not carried a cumulative ack for half a window of arrivals.
// In traffic patterns with reverse data flow this sends almost nothing —
// the data itself acknowledges — which keeps explicit acks off the NIC's
// critical path.
func (u *UAM) flushAcks(p *sim.Proc) {
	if u.nacks == 0 {
		// No peer owes an ack: the walk below would be a no-op. The count
		// makes idle polls O(1) on instances with thousands of peers.
		return
	}
	for _, pe := range u.peerList {
		if !pe.needAck {
			continue
		}
		if pe.forceAck || 2*seqDiff(pe.expected, pe.lastAckSent) >= u.cfg.Window {
			u.sendAck(p, pe)
		}
	}
}

// gather copies a received message out of U-Net buffers into contiguous
// memory (one of the two UAM copies, §5.3) and recycles the buffers. The
// output lives in a pooled scratch buffer — the caller returns it with
// putScratch — and the descriptor's pooled memory goes home via Consume.
func (u *UAM) gather(p *sim.Proc, rd unet.RecvDesc) []byte {
	out := u.popScratch()
	if rd.Inline != nil {
		charge(p, u.ep.Host().Params.CopyCost(len(rd.Inline)))
		out = append(out, rd.Inline...)
		u.ep.Consume(rd)
		return out
	}
	for cap(out) < rd.Length {
		out = append(out[:cap(out)], 0)
	}
	out = out[:rd.Length]
	n := 0
	bufSize := u.ep.Config().RecvBufSize
	for _, off := range rd.Buffers {
		chunk := rd.Length - n
		if chunk > bufSize {
			chunk = bufSize
		}
		if err := u.ep.ReadBuf(p, off, out[n:n+chunk]); err != nil {
			panic(err)
		}
		n += chunk
		if err := u.ep.PushFree(p, off); err != nil {
			panic(err)
		}
	}
	u.ep.Consume(rd)
	return out
}

// process handles one arrival: acknowledgment bookkeeping, in-order
// acceptance, handler dispatch.
func (u *UAM) process(p *sim.Proc, rd unet.RecvDesc) {
	pe, ok := u.byChan[rd.Channel]
	if !ok {
		return
	}
	msg := u.gather(p, rd)
	u.processMsg(p, pe, msg)
	u.putScratch(msg)
}

// processMsg is process after gathering; msg is a pooled scratch buffer
// owned by the caller (handlers see sub-slices of it, valid only during
// the dispatch, as the Handler contract states).
func (u *UAM) processMsg(p *sim.Proc, pe *peer, msg []byte) {
	h, err := decodeHeader(msg)
	if err != nil {
		return
	}
	charge(p, u.cfg.OpOverhead)
	if len(msg) > u.ep.Host().Device().SingleCellMax() {
		charge(p, u.cfg.BulkOverhead)
	}
	u.applyAck(pe, h.ack)
	switch h.typ {
	case typeAck:
		u.stats.AcksRecv++
		return
	case typeAckPing:
		u.setNeedAck(pe)
		pe.forceAck = true
		return
	}
	if h.seq != pe.expected {
		// Out-of-order or duplicate under go-back-N: drop, but make sure
		// the sender learns our cumulative position again — it evidently
		// missed our earlier acknowledgments. A whole window replay arrives
		// as a burst of duplicates; forcing one explicit ack per burst (not
		// per duplicate) is enough to restart the sender and keeps ack
		// storms off the wire.
		u.stats.Duplicates++
		u.setNeedAck(pe)
		if pe.dupPending {
			u.stats.AcksSuppressed++
		} else {
			pe.dupPending = true
			pe.forceAck = true
		}
		return
	}
	pe.expected++
	if h.reqAck {
		u.setNeedAck(pe)
	}
	u.dispatch(p, pe, h, msg[headerSize:])
}

// applyAck advances the transmit window to a cumulative ack. Progress
// restarts the go-back-N timer for the messages still outstanding;
// otherwise a long pipelined transfer would spuriously retransmit its
// tail while earlier acknowledgments were still in flight.
func (u *UAM) applyAck(pe *peer, ack uint8) {
	adv := seqDiff(ack, pe.ackedTo)
	if adv <= 0 || adv > pe.outstanding() {
		return
	}
	pe.ackedTo = ack
	pe.retries = 0 // ack progress refills the retry budget
	if pe.outstanding() == 0 {
		pe.deadline = 0
	} else {
		u.armDeadline(pe, u.ep.Host().Eng.Now()+u.cfg.RetransmitTimeout)
	}
}

func (u *UAM) dispatch(p *sim.Proc, pe *peer, h header, data []byte) {
	switch h.typ {
	case typeReq:
		u.stats.ReqRecv++
		fn := u.handlers[h.handler]
		if fn == nil {
			return
		}
		prev := u.replyTo
		u.replyTo = pe
		fn(u, p, pe.node, h.arg, data) //unetlint:allow hotpathalloc user-registered request handler; what user code allocates is the user's budget, not the transport's
		u.replyTo = prev
	case typeReply:
		u.stats.ReplyRecv++
		fn := u.handlers[h.handler]
		if fn == nil {
			return
		}
		prevR := u.inReply
		u.inReply = true
		fn(u, p, pe.node, h.arg, data) //unetlint:allow hotpathalloc user-registered reply handler; what user code allocates is the user's budget, not the transport's
		u.inReply = prevR
	case typeStore:
		u.stats.StoreSegs++
		u.handleStore(p, pe, h, data)
	case typeGetReq:
		u.handleGetReq(p, pe, h, data)
	case typeGetData:
		u.stats.GetSegs++
		u.handleGetData(p, pe, h, data)
	}
}

// charge advances p by d (nil-safe, mirroring unet's convention).
func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}
