package uam_test

import (
	"testing"
	"time"

	"unet/internal/experiments"
	"unet/internal/nic"
	"unet/internal/uam"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	lo, hi := want*(1-tol), want*(1+tol)
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want %.2f ± %.0f%%", name, got, want, tol*100)
	}
}

const usF = float64(time.Microsecond)

// §5.2 (1): single-cell request/reply round trips start at 71 µs — about
// 6 µs over raw U-Net.
func TestUAMSingleCellRTT71us(t *testing.T) {
	got := float64(experiments.UAMPingPong(uam.Config{}, 16, 40)) / usF
	within(t, "UAM single-cell RTT", got, 71, 0.05)
}

func TestUAMOverheadOverRawIsAFewMicroseconds(t *testing.T) {
	raw := float64(experiments.RawRTT(nic.SBA200Params(), 16, 40)) / usF
	am := float64(experiments.UAMPingPong(uam.Config{}, 16, 40)) / usF
	over := am - raw
	if over < 3 || over > 10 {
		t.Fatalf("UAM overhead over raw = %.1fµs, want ~6µs", over)
	}
}

// §5.2 (2): N-byte block transfers take roughly 135 µs + N·0.2 µs round
// trip.
func TestUAMBlockTransferSlope(t *testing.T) {
	for _, n := range []int{256, 512, 1024, 2048} {
		got := float64(experiments.UAMPingPong(uam.Config{}, n, 25)) / usF
		want := 135 + 0.2*float64(n)
		within(t, "UAM xfer RTT", got, want, 0.08)
	}
}

// §5.2 (3): block store reaches 80% of the AAL-5 limit by ~2 KB and peaks
// at 14.8 MB/s at 4 KB.
func TestUAMStoreBandwidth(t *testing.T) {
	bw2k := experiments.UAMStoreBandwidth(uam.Config{}, 2048, 150)
	if lim := experiments.AAL5Limit(2048); bw2k < 0.8*lim {
		t.Errorf("2KB store bandwidth %.2f MB/s < 80%% of AAL-5 limit %.2f", bw2k, lim)
	}
	bw4k := experiments.UAMStoreBandwidth(uam.Config{}, 4096, 150)
	within(t, "4KB store bandwidth", bw4k, 14.8, 0.05)
}

// §5.2: "The dip in performance at 4164 bytes is caused by the fact that
// UAM uses buffers holding 4160 bytes" — one block then needs two
// messages.
func TestUAMStoreDipAt4164(t *testing.T) {
	at4160 := experiments.UAMStoreBandwidth(uam.Config{}, 4160, 120)
	at4164 := experiments.UAMStoreBandwidth(uam.Config{}, 4164, 120)
	if at4164 >= at4160 {
		t.Fatalf("no dip: store(4164)=%.2f ≥ store(4160)=%.2f MB/s", at4164, at4160)
	}
}

// §5.2 (4): block get performance is nearly identical to block store.
func TestUAMGetMatchesStore(t *testing.T) {
	store := experiments.UAMStoreBandwidth(uam.Config{}, 4096, 120)
	get := experiments.UAMGetBandwidth(uam.Config{}, 4096, 120)
	within(t, "get vs store bandwidth", get, store, 0.10)
}

// Ablation sanity: a window of 1 serializes the pipe and loses most of the
// streaming bandwidth.
func TestUAMWindowOneCollapsesBandwidth(t *testing.T) {
	w8 := experiments.UAMStoreBandwidth(uam.Config{}, 4096, 100)
	w1 := experiments.UAMStoreBandwidth(uam.Config{Window: 1}, 4096, 100)
	if w1 >= 0.8*w8 {
		t.Fatalf("window=1 bandwidth %.2f not far below window=8 %.2f", w1, w8)
	}
}
