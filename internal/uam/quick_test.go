package uam_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// Property: under any pattern of cell loss (within a recoverable rate) the
// reliable stream delivers every message exactly once and in order.
func TestReliableStreamPropertyUnderLoss(t *testing.T) {
	prop := func(seed int64, lossPct uint8, nMsgs uint8, sizeSel uint8) bool {
		// Multi-cell messages amplify cell loss through AAL5 (a 1500-byte
		// message spans 32 cells), so keep the per-cell rate low enough
		// that the go-back-N recovery converges within the test budget.
		rate := float64(lossPct%40) / 1000 // 0-3.9% cell loss
		n := 5 + int(nMsgs%40)
		size := []int{0, 4, 16, 32, 64, 300, 1500}[int(sizeSel)%7]

		tb := testbed.New(testbed.Config{Hosts: 2, Seed: seed})
		defer tb.Close()
		a, err := uam.New(tb.Hosts[0].NewProcess("a"), 0, uam.Config{RetransmitTimeout: 300 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		b, err := uam.New(tb.Hosts[1].NewProcess("b"), 1, uam.Config{RetransmitTimeout: 300 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := uam.Connect(tb.Manager, a, b); err != nil {
			t.Fatal(err)
		}
		// Independent per-cell loss in both directions (acks can be lost
		// too).
		rng := rand.New(rand.NewSource(seed))
		loss := func(atm.Cell) bool { return rng.Float64() < rate }
		tb.Fabric.Downlink(0).SetLossFunc(loss)
		tb.Fabric.Downlink(1).SetLossFunc(loss)

		var got []uint32
		b.RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
			if len(data) != size {
				t.Errorf("payload length %d, want %d", len(data), size)
			}
			got = append(got, arg)
		})
		tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
			deadline := p.Now() + 2*time.Second
			for len(got) < n && p.Now() < deadline {
				b.PollWait(p, time.Millisecond)
			}
			for k := 0; k < 60; k++ {
				b.Poll(p)
				p.Sleep(300 * time.Microsecond)
			}
		})
		ok := true
		tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
			payload := make([]byte, size)
			for k := 0; k < n; k++ {
				if err := a.Request(p, 1, 1, uint32(k), payload); err != nil {
					ok = false
					return
				}
			}
			a.FlushTimeout(p, 1, 2*time.Second)
		})
		tb.Eng.Run()
		if !ok || len(got) != n {
			t.Logf("seed=%d rate=%.2f n=%d size=%d: delivered %d/%d", seed, rate, n, size, len(got), n)
			return false
		}
		for k, v := range got {
			if v != uint32(k) {
				t.Logf("out of order at %d: %d", k, v)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: bulk stores land byte-exact at their offsets regardless of
// chunking, for arbitrary sizes and offsets within the exposed memory.
func TestStorePlacementProperty(t *testing.T) {
	prop := func(sizeRaw uint16, offRaw uint16, fill byte) bool {
		size := int(sizeRaw)%12000 + 1
		off := int(offRaw) % 50000
		tb := testbed.New(testbed.Config{Hosts: 2})
		defer tb.Close()
		a, _ := uam.New(tb.Hosts[0].NewProcess("a"), 0, uam.Config{})
		b, _ := uam.New(tb.Hosts[1].NewProcess("b"), 1, uam.Config{})
		if err := uam.Connect(tb.Manager, a, b); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		for i := range data {
			data[i] = fill ^ byte(i)
		}
		done := false
		tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
			deadline := p.Now() + time.Second
			for !done && p.Now() < deadline {
				b.PollWait(p, time.Millisecond)
			}
			for k := 0; k < 30; k++ {
				b.Poll(p)
				p.Sleep(200 * time.Microsecond)
			}
		})
		tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
			if err := a.Store(p, 1, off, data, 0, 0); err != nil {
				t.Error(err)
			}
			a.FlushTimeout(p, 1, time.Second)
			done = true
		})
		tb.Eng.Run()
		mem := b.Mem()[off : off+size]
		for i := range mem {
			if mem[i] != data[i] {
				t.Logf("mismatch at %d (size=%d off=%d)", i, size, off)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
