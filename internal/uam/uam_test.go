package uam_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// fixture builds n connected UAM nodes on an n-host cluster.
func fixture(t *testing.T, n int, cfg uam.Config) (*testbed.Testbed, []*uam.UAM) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: n})
	t.Cleanup(tb.Close)
	us := make([]*uam.UAM, n)
	for i := 0; i < n; i++ {
		var err error
		us[i], err = uam.New(tb.Hosts[i].NewProcess("am"), i, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := uam.Connect(tb.Manager, us[i], us[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tb, us
}

func TestRequestReply(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	var gotReq, gotReply []byte
	var gotArg uint32
	done := false
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		gotReq = append([]byte(nil), data...)
		gotArg = arg
		if err := u.Reply(p, 2, arg+1, []byte("pong")); err != nil {
			t.Error(err)
		}
	})
	us[0].RegisterHandler(2, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		gotReply = append([]byte(nil), data...)
		done = true
	})
	us[0].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	us[1].RegisterHandler(2, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})

	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done && p.Now() < 10*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := us[0].Request(p, 1, 1, 41, []byte("ping")); err != nil {
			t.Error(err)
		}
		for !done && p.Now() < 10*time.Millisecond {
			us[0].PollWait(p, time.Millisecond)
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(gotReq, []byte("ping")) || gotArg != 41 {
		t.Fatalf("request: data=%q arg=%d", gotReq, gotArg)
	}
	if !bytes.Equal(gotReply, []byte("pong")) {
		t.Fatalf("reply: %q", gotReply)
	}
}

func TestReplyOutsideHandlerRejected(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	us[0].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	var err error
	tb.Hosts[0].Spawn("p", func(p *sim.Proc) { err = us[0].Reply(p, 1, 0, nil) })
	tb.Eng.Run()
	if !errors.Is(err, uam.ErrReplyCtx) {
		t.Fatalf("err = %v, want ErrReplyCtx", err)
	}
}

func TestReplyFromReplyHandlerRejected(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	var replyErr error
	done := false
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		u.Reply(p, 2, 0, nil)
	})
	us[0].RegisterHandler(2, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		replyErr = u.Reply(p, 2, 0, nil) // must be rejected: live-lock rule
		done = true
	})
	us[0].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	us[1].RegisterHandler(2, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done && p.Now() < 5*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		us[0].Request(p, 1, 1, 0, nil)
		for !done && p.Now() < 5*time.Millisecond {
			us[0].PollWait(p, time.Millisecond)
		}
	})
	tb.Eng.Run()
	if !errors.Is(replyErr, uam.ErrReplyCtx) {
		t.Fatalf("reply-from-reply err = %v, want ErrReplyCtx", replyErr)
	}
}

func TestUnknownDestinationAndHandler(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	defer tb.Eng.Shutdown()
	us[0].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	if err := us[0].Request(nil, 7, 1, 0, nil); !errors.Is(err, uam.ErrNoPeer) {
		t.Fatalf("unknown dst: %v, want ErrNoPeer", err)
	}
	if err := us[0].Request(nil, 1, 300, 0, nil); !errors.Is(err, uam.ErrBadHandler) {
		t.Fatalf("out-of-range handler: %v, want ErrBadHandler", err)
	}
}

func TestStoreDeliversToRemoteMemory(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	payload := bytes.Repeat([]byte{0xC3, 0x3C}, 5000) // 10 KB: 3 segments
	const dst = 4096
	completed := false
	us[1].RegisterHandler(3, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		if arg == 777 {
			completed = true
		}
	})
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !completed && p.Now() < 20*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
		// Keep servicing the network briefly: polling-based UAM only acks
		// and absorbs retransmissions while the application polls, so a
		// peer that is still Flushing needs us alive (§5.1.2).
		for k := 0; k < 30; k++ {
			us[1].Poll(p)
			p.Sleep(200 * time.Microsecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := us[0].Store(p, 1, dst, payload, 3, 777); err != nil {
			t.Error(err)
		}
		us[0].Flush(p, 1)
	})
	tb.Eng.Run()
	if !completed {
		t.Fatal("completion handler never ran")
	}
	if !bytes.Equal(us[1].Mem()[dst:dst+len(payload)], payload) {
		t.Fatal("stored data mismatch")
	}
}

func TestGetFetchesRemoteMemory(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{})
	want := bytes.Repeat([]byte{7, 8, 9}, 4000) // 12 KB
	copy(us[1].Mem()[1000:], want)
	srvDone := false
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !srvDone && p.Now() < 50*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		tag, err := us[0].Get(p, 1, 1000, 2000, len(want))
		if err != nil {
			t.Error(err)
			srvDone = true
			return
		}
		us[0].WaitGet(p, tag)
		srvDone = true
	})
	tb.Eng.Run()
	if !bytes.Equal(us[0].Mem()[2000:2000+len(want)], want) {
		t.Fatal("fetched data mismatch")
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := uam.Config{Window: 4}
	tb, us := fixture(t, 2, cfg)
	const n = 40
	recv := 0
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) { recv++ })
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for recv < n && p.Now() < 50*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
		// Keep servicing the network briefly: polling-based UAM only acks
		// and absorbs retransmissions while the application polls, so a
		// peer that is still Flushing needs us alive (§5.1.2).
		for k := 0; k < 30; k++ {
			us[1].Poll(p)
			p.Sleep(200 * time.Microsecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := us[0].Request(p, 1, 1, uint32(i), nil); err != nil {
				t.Error(err)
				return
			}
		}
		us[0].Flush(p, 1)
	})
	tb.Eng.Run()
	if recv != n {
		t.Fatalf("received %d, want %d", recv, n)
	}
}

func TestRetransmissionRecoversFromCellLoss(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{RetransmitTimeout: 500 * time.Microsecond})
	// Drop cells 3-7 on host 1's downlink: several early messages vanish
	// and must be recovered by go-back-N.
	i := 0
	tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
		i++
		return i >= 3 && i <= 7
	})
	const n = 20
	var got []uint32
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		got = append(got, arg)
	})
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for len(got) < n && p.Now() < 100*time.Millisecond {
			us[1].PollWait(p, time.Millisecond)
		}
		// Keep servicing the network briefly: polling-based UAM only acks
		// and absorbs retransmissions while the application polls, so a
		// peer that is still Flushing needs us alive (§5.1.2).
		for k := 0; k < 30; k++ {
			us[1].Poll(p)
			p.Sleep(200 * time.Microsecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for k := 0; k < n; k++ {
			if err := us[0].Request(p, 1, 1, uint32(k), []byte("payload")); err != nil {
				t.Error(err)
				return
			}
		}
		us[0].Flush(p, 1)
	})
	tb.Eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for k, v := range got {
		if v != uint32(k) {
			t.Fatalf("message %d out of order: arg %d (reliable stream must be in-order, exactly-once)", k, v)
		}
	}
	if us[0].Stats().Retransmits == 0 {
		t.Fatal("loss injected but no retransmissions recorded")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	tb, us := fixture(t, 2, uam.Config{BulkMax: 1024})
	defer tb.Eng.Shutdown()
	us[0].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	if err := us[0].Request(nil, 1, 1, 0, make([]byte, 2048)); !errors.Is(err, uam.ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestEightNodeAllToAll(t *testing.T) {
	tb, us := fixture(t, 8, uam.Config{})
	const per = 5
	want := 7 * per
	recv := make([]int, 8)
	for i := range us {
		i := i
		us[i].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
			recv[i]++
		})
	}
	for i := range us {
		i := i
		tb.Hosts[i].Spawn("node", func(p *sim.Proc) {
			for _, dst := range us[i].Peers() {
				for k := 0; k < per; k++ {
					if err := us[i].Request(p, dst, 1, uint32(k), []byte("x")); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for recv[i] < want && p.Now() < 100*time.Millisecond {
				us[i].PollWait(p, time.Millisecond)
			}
			us[i].FlushAll(p)
			for k := 0; k < 30; k++ {
				us[i].Poll(p)
				p.Sleep(200 * time.Microsecond)
			}
		})
	}
	tb.Eng.Run()
	for i, r := range recv {
		if r != want {
			t.Fatalf("node %d received %d, want %d", i, r, want)
		}
	}
}
