package uam

import (
	"time"

	"unet/internal/sim"
)

// Request sends an Active Message request to dst: handler index, a 32-bit
// argument and up to BulkMax bytes of payload. Requests up to 32 bytes ride
// the U-Net single-cell fast path. The call blocks (polling) while the
// flow-control window is full.
func (u *UAM) Request(p *sim.Proc, dst, handler int, arg uint32, data []byte) error {
	pe, err := u.peerFor(dst)
	if err != nil {
		return err
	}
	if handler <= 0 || handler > 255 {
		return ErrBadHandler
	}
	u.stats.ReqSent++
	return u.sendReliable(p, pe, typeReq, uint8(handler), arg, data)
}

// Reply sends the matching reply from within a request handler. Reply
// handlers may not reply again — the live-lock rule of §5.
func (u *UAM) Reply(p *sim.Proc, handler int, arg uint32, data []byte) error {
	if u.replyTo == nil || u.inReply {
		return ErrReplyCtx
	}
	if handler <= 0 || handler > 255 {
		return ErrBadHandler
	}
	u.stats.ReplySent++
	return u.sendReliable(p, u.replyTo, typeReply, uint8(handler), arg, data)
}

// Store performs a GAM bulk store: data is transferred into dst's exposed
// memory at dstOff, segmented into BulkMax-sized reliable messages. When
// handler is non-zero, it is invoked on the destination after the final
// segment with arg as argument. Store returns when the data is queued
// (sender buffers hold it for retransmission); use Flush to wait for
// acknowledgment.
func (u *UAM) Store(p *sim.Proc, dst int, dstOff int, data []byte, handler int, arg uint32) error {
	pe, err := u.peerFor(dst)
	if err != nil {
		return err
	}
	for n := 0; n < len(data) || (len(data) == 0 && n == 0); {
		chunk := len(data) - n
		if chunk > u.cfg.BulkMax {
			chunk = u.cfg.BulkMax
		}
		last := n+chunk == len(data)
		hidx := uint8(0)
		if last && handler != 0 {
			hidx = uint8(handler)
		}
		seg := data[n : n+chunk]
		off := uint32(dstOff + n)
		var a uint32
		if last {
			a = arg
		}
		if err := u.sendStoreSeg(p, pe, hidx, off, a, seg, last); err != nil {
			return err
		}
		n += chunk
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// sendStoreSeg transmits one bulk store segment. The final-segment flag
// travels in the top bit of the handler-invocation contract: handlers are
// only attached to final segments, and arg is delivered with them.
func (u *UAM) sendStoreSeg(p *sim.Proc, pe *peer, handler uint8, dstOff, arg uint32, seg []byte, last bool) error {
	// The destination offset rides in the header argument; the completion
	// argument is appended to the final segment's payload. The assembly
	// buffer is pooled scratch: sendReliable stages it into a window slot
	// before returning, so it can go back on the free list here.
	if last && handler != 0 {
		buf := u.popScratch()
		buf = append(buf, seg...)
		buf = append(buf, byte(arg>>24), byte(arg>>16), byte(arg>>8), byte(arg))
		var err error
		if len(buf) > u.cfg.BulkMax {
			// No room to piggyback: send the data, then a zero-length
			// handler-carrying segment.
			if err = u.sendReliable(p, pe, typeStore, 0, dstOff, seg); err == nil {
				err = u.sendReliable(p, pe, typeStore, handler, dstOff+uint32(len(seg)), buf[len(seg):])
			}
		} else {
			err = u.sendReliable(p, pe, typeStore, handler, dstOff, buf)
		}
		u.putScratch(buf)
		return err
	}
	return u.sendReliable(p, pe, typeStore, 0, dstOff, seg)
}

// handleStore applies a bulk store segment to the exposed memory and, on a
// handler-carrying final segment, dispatches the completion handler.
func (u *UAM) handleStore(p *sim.Proc, pe *peer, h header, data []byte) {
	payload := data
	var arg uint32
	if h.handler != 0 {
		if len(data) < 4 {
			return
		}
		payload = data[:len(data)-4]
		tail := data[len(data)-4:]
		arg = uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3])
	}
	off := int(h.arg)
	if off < 0 || off+len(payload) > len(u.mem) {
		return
	}
	charge(p, u.ep.Host().Params.CopyCost(len(payload)))
	copy(u.mem[off:], payload)
	if h.handler != 0 {
		if fn := u.handlers[h.handler]; fn != nil {
			prev := u.replyTo
			u.replyTo = pe
			fn(u, p, pe.node, arg, payload) //unetlint:allow hotpathalloc user-registered store handler; what user code allocates is the user's budget, not the transport's
			u.replyTo = prev
		}
	}
}

// Get starts a GAM bulk get: n bytes from src's exposed memory at srcOff
// are transferred into this node's memory at dstOff. It returns a tag;
// GetDone reports completion and WaitGet blocks (polling) until then.
func (u *UAM) Get(p *sim.Proc, src int, srcOff, dstOff, n int) (uint32, error) {
	pe, err := u.peerFor(src)
	if err != nil {
		return 0, err
	}
	if dstOff < 0 || dstOff+n > len(u.mem) {
		return 0, ErrMemRange
	}
	u.nextTag++
	tag := u.nextTag
	u.gets[tag] = n
	var req [12]byte
	getReq{srcOff: uint32(srcOff), dstOff: uint32(dstOff), n: uint32(n)}.encode(req[:])
	if err := u.sendReliable(p, pe, typeGetReq, 0, tag, req[:]); err != nil {
		delete(u.gets, tag)
		return 0, err
	}
	return tag, nil
}

// handleGetReq streams the requested region back as reliable get-data
// segments addressed to the requester's memory.
func (u *UAM) handleGetReq(p *sim.Proc, pe *peer, h header, data []byte) {
	req, err := decodeGetReq(data)
	if err != nil {
		return
	}
	src, n, dst := int(req.srcOff), int(req.n), int(req.dstOff)
	if src < 0 || n < 0 || src+n > len(u.mem) {
		return
	}
	sent := 0
	seg := u.popScratch()
	for {
		chunk := n - sent
		if chunk > u.cfg.BulkMax-4 {
			chunk = u.cfg.BulkMax - 4
		}
		// Get-data segments carry the destination offset in the header arg
		// and the tag in the trailing 4 bytes. The staging buffer is pooled
		// scratch, reused across segments (sendReliable stages each into a
		// window slot before returning).
		charge(p, u.ep.Host().Params.CopyCost(chunk))
		seg = append(seg[:0], u.mem[src+sent:src+sent+chunk]...)
		seg = append(seg, byte(h.arg>>24), byte(h.arg>>16), byte(h.arg>>8), byte(h.arg))
		if err := u.sendReliable(p, pe, typeGetData, 0, uint32(dst+sent), seg); err != nil {
			break
		}
		sent += chunk
		if sent >= n {
			break
		}
	}
	u.putScratch(seg)
}

// handleGetData lands one get-data segment in local memory and retires the
// transfer tag when complete.
func (u *UAM) handleGetData(p *sim.Proc, pe *peer, h header, data []byte) {
	if len(data) < 4 {
		return
	}
	payload := data[:len(data)-4]
	tail := data[len(data)-4:]
	tag := uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3])
	off := int(h.arg)
	if off < 0 || off+len(payload) > len(u.mem) {
		return
	}
	charge(p, u.ep.Host().Params.CopyCost(len(payload)))
	copy(u.mem[off:], payload)
	if rem, ok := u.gets[tag]; ok {
		if rem -= len(payload); rem <= 0 {
			delete(u.gets, tag)
		} else {
			u.gets[tag] = rem
		}
	}
}

// GetDone reports whether the transfer identified by tag has completed.
func (u *UAM) GetDone(tag uint32) bool {
	_, pending := u.gets[tag]
	return !pending
}

// WaitGet polls until the transfer identified by tag completes.
func (u *UAM) WaitGet(p *sim.Proc, tag uint32) {
	for !u.GetDone(tag) {
		u.PollWait(p, u.cfg.RetransmitTimeout)
	}
}

// Flush polls until every message queued to dst has been acknowledged —
// the completion point of a sequence of Stores.
func (u *UAM) Flush(p *sim.Proc, dst int) error {
	pe, err := u.peerFor(dst)
	if err != nil {
		return err
	}
	if pe.outstanding() > 0 {
		u.sendAckPing(p, pe)
	}
	var tm sim.Timer
	for pe.outstanding() > 0 {
		if pe.dead {
			tm.Cancel()
			return deadErr(pe)
		}
		tm = u.pollOrTimeout(p, pe, tm)
	}
	tm.Cancel()
	return nil
}

// FlushTimeout is Flush with a deadline; it reports false if messages to
// dst remained unacknowledged when the deadline passed (e.g. because the
// peer stopped servicing the network).
func (u *UAM) FlushTimeout(p *sim.Proc, dst int, d time.Duration) bool {
	pe, err := u.peerFor(dst)
	if err != nil {
		return false
	}
	if pe.outstanding() > 0 {
		u.sendAckPing(p, pe)
	}
	deadline := p.Now() + d
	var tm sim.Timer
	for pe.outstanding() > 0 {
		if pe.dead || p.Now() >= deadline {
			tm.Cancel()
			return false
		}
		tm = u.pollOrTimeout(p, pe, tm)
	}
	tm.Cancel()
	return true
}

// Outstanding reports how many reliable messages to dst await
// acknowledgment.
func (u *UAM) Outstanding(dst int) int {
	pe, err := u.peerFor(dst)
	if err != nil {
		return 0
	}
	return pe.outstanding()
}

// FlushAll is Flush for every peer, in node-id order. Peers declared dead
// are skipped — their unacknowledged messages can never complete; callers
// that care about them use Flush and inspect ErrPeerDead per peer.
func (u *UAM) FlushAll(p *sim.Proc) {
	for _, pe := range u.peerList {
		if pe.outstanding() > 0 && !pe.dead {
			u.sendAckPing(p, pe)
		}
	}
	var tm sim.Timer
	for {
		pending := false
		for _, pe := range u.peerList {
			if pe.outstanding() > 0 && !pe.dead {
				pending = true
				tm = u.pollOrTimeout(p, pe, tm)
			}
		}
		if !pending {
			tm.Cancel()
			return
		}
	}
}
