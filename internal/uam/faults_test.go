package uam_test

import (
	"errors"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/faults"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/uam"
)

// TestDeadPeerFailsInBoundedTime pins the retry cap: a peer that never
// services the network must surface ErrPeerDead after MaxRetries
// backed-off retransmissions, in bounded virtual time, instead of
// retransmitting forever.
func TestDeadPeerFailsInBoundedTime(t *testing.T) {
	cfg := uam.Config{
		RetransmitTimeout: 500 * time.Microsecond,
		RetransmitMax:     4 * time.Millisecond,
		MaxRetries:        5,
	}
	tb, us := fixture(t, 2, cfg)
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})
	// Host 1 deliberately never polls.

	var flushErr error
	var failedAt time.Duration
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := us[0].Request(p, 1, 1, 7, []byte("hello?")); err != nil {
			t.Error(err)
			return
		}
		flushErr = us[0].Flush(p, 1)
		failedAt = p.Now()
	})
	tb.Eng.Run()

	if !errors.Is(flushErr, uam.ErrPeerDead) {
		t.Fatalf("Flush to a dead peer returned %v, want ErrPeerDead", flushErr)
	}
	// 5 retries of one message: intervals 0.5, 0.5, 1, 2, 4 ms ≈ 8 ms.
	if failedAt > 20*time.Millisecond {
		t.Fatalf("peer declared dead at %v, want bounded well under 20ms", failedAt)
	}
	if got := us[0].Stats().Retransmits; got != 5 {
		t.Fatalf("Retransmits = %d, want exactly MaxRetries = 5", got)
	}
	if got := us[0].Outstanding(1); got != 1 {
		t.Fatalf("Outstanding = %d after dead peer, want the staged message still counted", got)
	}

	// Later blocking calls fail immediately rather than stalling again.
	var again error
	var at0, at1 time.Duration
	tb.Hosts[0].Spawn("cli2", func(p *sim.Proc) {
		at0 = p.Now()
		again = us[0].Request(p, 1, 1, 8, nil)
		at1 = p.Now()
	})
	tb.Eng.Run()
	if !errors.Is(again, uam.ErrPeerDead) {
		t.Fatalf("Request after death returned %v, want ErrPeerDead", again)
	}
	if at1-at0 > time.Millisecond {
		t.Fatalf("post-death Request blocked %v, want an immediate failure", at1-at0)
	}
}

// TestRetransmitBackoffGrows watches the sender's wire directly: with a
// silent peer, the gaps between successive go-back-N retransmissions
// must grow exponentially up to the cap.
func TestRetransmitBackoffGrows(t *testing.T) {
	cfg := uam.Config{
		RetransmitTimeout: 500 * time.Microsecond,
		RetransmitMax:     2 * time.Millisecond,
		MaxRetries:        4,
	}
	tb, us := fixture(t, 2, cfg)
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {})

	var sends []time.Duration
	tb.Fabric.Uplink(0).SetLossFunc(func(atm.Cell) bool {
		sends = append(sends, tb.Eng.Now())
		return false
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		us[0].Request(p, 1, 1, 0, nil)
		us[0].Flush(p, 1) // returns ErrPeerDead; checked by the test above
	})
	tb.Eng.Run()

	// Initial send + ack ping + 4 retransmissions of the data cell.
	if len(sends) != 6 {
		t.Fatalf("saw %d transmissions, want 6 (send, ping, 4 retries)", len(sends))
	}
	retries := sends[2:]
	var gaps []time.Duration
	prev := sends[0]
	for _, s := range retries {
		gaps = append(gaps, s-prev)
		prev = s
	}
	// Deadlines: base, base, 2·base, 4·base (capped at RetransmitMax).
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("retransmit gap shrank: %v after %v (gaps %v)", gaps[i], gaps[i-1], gaps)
		}
	}
	if gaps[len(gaps)-1] < 3*gaps[0] {
		t.Fatalf("backoff did not grow: gaps %v", gaps)
	}
	if gaps[len(gaps)-1] > cfg.RetransmitMax+time.Millisecond {
		t.Fatalf("backoff exceeded the cap: gaps %v", gaps)
	}
}

// uamLossResult is everything the seeded-loss golden compares across
// shard counts.
type uamLossResult struct {
	args                   []uint32
	retx, dups, suppressed uint64
	acksSent               uint64
}

// runNthCellLoss drives 10 requests from node 0 to node 1 with exactly
// the 3rd downlink cell dropped by the deterministic NthCell injector.
func runNthCellLoss(t *testing.T, shards int) uamLossResult {
	t.Helper()
	cfg := uam.Config{RetransmitTimeout: 500 * time.Microsecond}
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shards})
	t.Cleanup(tb.Close)
	us := make([]*uam.UAM, 2)
	for i := range us {
		var err error
		us[i], err = uam.New(tb.Hosts[i].NewProcess("am"), i, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := uam.Connect(tb.Manager, us[0], us[1]); err != nil {
		t.Fatal(err)
	}
	tb.Fabric.Downlink(1).SetInjector(faults.NewNthCell(3))

	var res uamLossResult
	done := false
	us[1].RegisterHandler(1, func(u *uam.UAM, p *sim.Proc, src int, arg uint32, data []byte) {
		res.args = append(res.args, arg)
	})
	const n = 10
	// Coarse polling: bursts of arrivals (e.g. the go-back-N replay after
	// the drop) queue up and drain in a single Poll batch, which is the
	// case duplicate-ack suppression exists for.
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for !done {
			us[1].Poll(p)
			p.Sleep(50 * time.Microsecond)
		}
		for i := 0; i < 30; i++ { // keep servicing the tail
			us[1].Poll(p)
			p.Sleep(200 * time.Microsecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := us[0].Request(p, 1, 1, uint32(100+i), nil); err != nil {
				t.Error(err)
			}
		}
		if err := us[0].Flush(p, 1); err != nil {
			t.Error(err)
		}
		done = true
	})
	tb.Eng.Run()

	st0, st1 := us[0].Stats(), us[1].Stats()
	res.retx = st0.Retransmits
	res.dups = st1.Duplicates
	res.suppressed = st1.AcksSuppressed
	res.acksSent = st1.AcksSent
	return res
}

// TestSeededLossNthCellGolden is the UAM seeded-loss golden: dropping
// exactly the 3rd cell must yield in-order exactly-once delivery, a
// reproducible retransmit count, duplicate-ack suppression, and an
// identical outcome at every shard count.
func TestSeededLossNthCellGolden(t *testing.T) {
	base := runNthCellLoss(t, 0)
	if len(base.args) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(base.args))
	}
	for i, a := range base.args {
		if a != uint32(100+i) {
			t.Fatalf("args[%d] = %d: delivery not in-order exactly-once (%v)", i, a, base.args)
		}
	}
	if base.retx == 0 || base.retx > 8 {
		t.Fatalf("Retransmits = %d, want one bounded go-back-N replay (1..8)", base.retx)
	}
	if base.dups == 0 {
		t.Fatal("no duplicates observed despite a window replay")
	}
	if base.dups > 1 && base.suppressed == 0 {
		t.Fatalf("duplicate burst of %d forced an ack per duplicate (0 suppressed)", base.dups)
	}
	for _, shards := range []int{1, 2, 4} {
		got := runNthCellLoss(t, shards)
		if len(got.args) != len(base.args) {
			t.Fatalf("shards=%d delivered %d messages, serial delivered %d", shards, len(got.args), len(base.args))
		}
		for i := range got.args {
			if got.args[i] != base.args[i] {
				t.Fatalf("shards=%d args[%d] = %d, serial %d", shards, i, got.args[i], base.args[i])
			}
		}
		if got.retx != base.retx || got.dups != base.dups || got.suppressed != base.suppressed || got.acksSent != base.acksSent {
			t.Fatalf("shards=%d stats (retx %d dups %d sup %d acks %d) differ from serial (retx %d dups %d sup %d acks %d)",
				shards, got.retx, got.dups, got.suppressed, got.acksSent,
				base.retx, base.dups, base.suppressed, base.acksSent)
		}
	}
}
