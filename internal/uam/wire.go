package uam

import (
	"encoding/binary"
	"fmt"
)

// Message types on the wire.
const (
	typeReq     = iota + 1 // Active Message request
	typeReply              // Active Message reply
	typeAck                // explicit cumulative acknowledgment
	typeStore              // bulk store segment (GAM store)
	typeGetReq             // bulk get request
	typeGetData            // bulk get data segment
	typeAckPing            // unsequenced ack solicitation (sender flush)
)

// flagReqAck, set in the type byte, asks the receiver for a prompt
// explicit acknowledgment. Cumulative acks piggyback on every message, so
// explicit acks are only solicited when the sender's window is half full
// (or at a Flush); this keeps them off the critical path of
// request/reply round trips, where the reverse message is the ack.
const flagReqAck = 0x80

// headerSize is the UAM wire header. It is kept to 8 bytes so that a
// request with up to 32 bytes of payload still fits the U-Net single-cell
// fast path (40-byte inline limit), preserving the paper's single-cell
// request/reply round trips (§5.2).
const headerSize = 8

// header is the UAM wire header:
//
//	byte 0: message type
//	byte 1: handler index
//	byte 2: sequence number (reliable stream, per peer per direction)
//	byte 3: cumulative acknowledgment (next sequence expected from peer)
//	bytes 4-7: 32-bit argument — the AM argument word for requests and
//	           replies, the destination memory offset for bulk segments,
//	           the transfer tag for gets.
type header struct {
	typ     uint8
	reqAck  bool
	handler uint8
	seq     uint8
	ack     uint8
	arg     uint32
}

func (h header) encode(buf []byte) {
	buf[0] = h.typ
	if h.reqAck {
		buf[0] |= flagReqAck
	}
	buf[1] = h.handler
	buf[2] = h.seq
	buf[3] = h.ack
	binary.BigEndian.PutUint32(buf[4:8], h.arg)
}

func decodeHeader(buf []byte) (header, error) {
	if len(buf) < headerSize {
		return header{}, fmt.Errorf("uam: short message (%d bytes)", len(buf))
	}
	return header{
		typ:     buf[0] &^ flagReqAck,
		reqAck:  buf[0]&flagReqAck != 0,
		handler: buf[1],
		seq:     buf[2],
		ack:     buf[3],
		arg:     binary.BigEndian.Uint32(buf[4:8]),
	}, nil
}

// seqLT reports a < b in mod-256 sequence arithmetic.
func seqLT(a, b uint8) bool { return int8(a-b) < 0 }

// seqDiff returns a-b in mod-256 arithmetic as a small signed distance.
func seqDiff(a, b uint8) int { return int(int8(a - b)) }

// getReq is the payload of a typeGetReq message.
type getReq struct {
	srcOff uint32 // offset in the responder's memory
	dstOff uint32 // offset in the requester's memory
	n      uint32 // bytes to transfer
}

func (g getReq) encode(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], g.srcOff)
	binary.BigEndian.PutUint32(buf[4:8], g.dstOff)
	binary.BigEndian.PutUint32(buf[8:12], g.n)
}

func decodeGetReq(buf []byte) (getReq, error) {
	if len(buf) < 12 {
		return getReq{}, fmt.Errorf("uam: short get request (%d bytes)", len(buf))
	}
	return getReq{
		srcOff: binary.BigEndian.Uint32(buf[0:4]),
		dstOff: binary.BigEndian.Uint32(buf[4:8]),
		n:      binary.BigEndian.Uint32(buf[8:12]),
	}, nil
}
