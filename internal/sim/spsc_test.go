package sim

import (
	"runtime"
	"sync"
	"testing"
)

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](8)
	if q.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", q.Cap())
	}
	// Push/pop more than the capacity so head and tail wrap several times.
	next := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < q.Cap(); i++ {
			if !q.Push(next + i) {
				t.Fatalf("round %d: Push(%d) spilled with ring not full", round, next+i)
			}
		}
		for i := 0; i < q.Cap(); i++ {
			v, ok := q.Pop()
			if !ok || v != next+i {
				t.Fatalf("round %d: Pop() = %d,%v, want %d,true", round, v, ok, next+i)
			}
		}
		next += q.Cap()
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop() on empty ring returned ok")
	}
	if q.Pending() {
		t.Fatal("Pending() true on empty ring")
	}
}

func TestSPSCConcurrentFIFO(t *testing.T) {
	q := NewSPSC[uint64](16)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			q.Push(i) // ring or spill; either way enqueued in order
		}
		for !q.FlushSpill() {
			runtime.Gosched() // single-core boxes need the consumer scheduled
		}
	}()
	var got uint64
	for got < total {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != got {
			t.Fatalf("Pop() = %d, want %d (FIFO violated)", v, got)
		}
		got++
	}
	wg.Wait()
}

func TestSPSCFullRingSpills(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < q.Cap(); i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) spilled before the ring filled", i)
		}
	}
	// The ring is full: further pushes must go to the producer-private
	// spill, invisible to the consumer until flushed.
	for i := q.Cap(); i < q.Cap()+5; i++ {
		if q.Push(i) {
			t.Fatalf("Push(%d) reported ring success on a full ring", i)
		}
	}
	if q.SpillLen() != 5 {
		t.Fatalf("SpillLen() = %d, want 5", q.SpillLen())
	}
	if v, ok := q.SpillHead(); !ok || v != q.Cap() {
		t.Fatalf("SpillHead() = %d,%v, want %d,true", v, ok, q.Cap())
	}
	// Drain two, flush: two spilled entries move into the ring, in order.
	for i := 0; i < 2; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if q.FlushSpill() {
		t.Fatal("FlushSpill() claimed empty spill with 3 entries left")
	}
	if q.SpillLen() != 3 {
		t.Fatalf("SpillLen() after partial flush = %d, want 3", q.SpillLen())
	}
	// Drain everything; order must be 2..12 without gaps.
	want := 2
	for {
		v, ok := q.Pop()
		if !ok {
			if q.FlushSpill() && !q.Pending() {
				break
			}
			continue
		}
		if v != want {
			t.Fatalf("Pop() = %d, want %d (spill reordered)", v, want)
		}
		want++
	}
	if want != q.Cap()+5 {
		t.Fatalf("drained %d entries, want %d", want, q.Cap()+5)
	}
}

func TestSPSCPopQuiescentTakesSpill(t *testing.T) {
	q := NewSPSC[int](8)
	for i := 0; i < q.Cap()+3; i++ {
		q.Push(i)
	}
	for i := 0; i < q.Cap()+3; i++ {
		v, ok := q.PopQuiescent()
		if !ok || v != i {
			t.Fatalf("PopQuiescent() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if q.Pending() || q.SpillLen() != 0 {
		t.Fatal("queue not empty after quiescent drain")
	}
}

// TestSPSCSingleProducerAssertion checks the ownership tripwire: a second
// concurrent producer (or consumer) must panic rather than corrupt the
// ring silently.
func TestSPSCSingleProducerAssertion(t *testing.T) {
	q := NewSPSC[int](8)
	// Simulate a producer caught mid-Push by setting the guard, as a second
	// goroutine's entry would observe it.
	q.inPush.Store(true)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second producer Push did not panic")
			}
		}()
		q.Push(1)
	}()
	q.inPush.Store(false)
	q.inPop.Store(true)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second consumer Pop did not panic")
			}
		}()
		q.Pop()
	}()
}
