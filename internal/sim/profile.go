package sim

import (
	"fmt"
	"strings"
	"time"
)

// ShardProfile accumulates one shard's window-protocol counters across
// Run/RunUntil calls. All counters are maintained by the shard's own
// worker goroutine, so the hot path pays plain increments — no atomics,
// no allocation. The wall-clock barrier wait is diagnostic only and never
// feeds virtual time.
type ShardProfile struct {
	Shard         int
	Windows       uint64        // windows executed (rounds that ran events)
	Events        uint64        // events fired inside windows
	EmptyWindows  uint64        // windows that fired nothing
	FastForwards  uint64        // windows whose horizon beat the legacy global m+L
	FusedBarriers uint64        // rounds that crossed a single barrier (no pending traffic)
	Drains        uint64        // mailbox drains performed
	BarrierWait   time.Duration // wall-clock spent inside barrier crossings
}

// EventsPerWindow reports the mean number of events fired per executed
// window.
func (p ShardProfile) EventsPerWindow() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.Events) / float64(p.Windows)
}

// GroupProfile is a snapshot of every shard's window-protocol counters.
type GroupProfile struct {
	Shards []ShardProfile
}

// Profile snapshots the group's per-shard window counters. Call it after
// Run/RunUntil returns (it reads the shard workers' plain counters, which
// are quiescent between runs). Counters accumulate across runs; see
// ResetProfile.
func (g *Group) Profile() GroupProfile {
	out := GroupProfile{Shards: make([]ShardProfile, len(g.prof))}
	copy(out.Shards, g.prof)
	return out
}

// ResetProfile zeroes the accumulated window counters.
func (g *Group) ResetProfile() {
	for i := range g.prof {
		g.prof[i] = ShardProfile{Shard: i}
	}
}

// Total folds every shard's counters into one (Shard is -1 in the result).
func (gp GroupProfile) Total() ShardProfile {
	t := ShardProfile{Shard: -1}
	for _, p := range gp.Shards {
		t.Windows += p.Windows
		t.Events += p.Events
		t.EmptyWindows += p.EmptyWindows
		t.FastForwards += p.FastForwards
		t.FusedBarriers += p.FusedBarriers
		t.Drains += p.Drains
		t.BarrierWait += p.BarrierWait
	}
	return t
}

// String renders the profile as an aligned table — the `unetbench
// -simprof` dump.
func (gp GroupProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %12s %8s %6s %8s %8s %8s %12s %10s\n",
		"shard", "windows", "events", "ev/win", "empty", "fastfwd", "fused", "drains", "barrier-wait", "wait/win")
	row := func(label string, p ShardProfile) {
		perWin := time.Duration(0)
		if p.Windows > 0 {
			perWin = p.BarrierWait / time.Duration(p.Windows)
		}
		fmt.Fprintf(&b, "%-5s %10d %12d %8.1f %6d %8d %8d %8d %12s %10s\n",
			label, p.Windows, p.Events, p.EventsPerWindow(), p.EmptyWindows,
			p.FastForwards, p.FusedBarriers, p.Drains, p.BarrierWait.Round(time.Microsecond), perWin)
	}
	for _, p := range gp.Shards {
		row(fmt.Sprintf("%d", p.Shard), p)
	}
	row("total", gp.Total())
	return b.String()
}
