package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ShardProfile accumulates one shard's window-protocol counters across
// Run/RunUntil calls. All counters are maintained by the shard's own
// worker goroutine, so the hot path pays plain increments — no atomics,
// no allocation. The wall-clock waits are diagnostic only and never feed
// virtual time.
//
// Counter meanings are shared across both sync protocols where they
// apply: BarrierWait is total synchronization wait (barrier crossings
// under SyncBarrier, neighbor stalls under SyncNeighbor); FastForwards
// counts windows that beat the legacy global m+L bound (barrier) or were
// enabled by the quiescence floor (neighbor); FusedBarriers and the
// neighbor-only Stalls/EdgeWait belong to one protocol each and stay zero
// under the other.
type ShardProfile struct {
	Shard         int
	Windows       uint64        // windows executed (rounds that ran events)
	Events        uint64        // events fired inside windows
	EmptyWindows  uint64        // windows that fired nothing
	FastForwards  uint64        // windows widened past the neighbor/legacy bound
	FusedBarriers uint64        // rounds that crossed a single barrier (no pending traffic)
	Drains        uint64        // mailbox/ring drains performed
	Stalls        uint64        // neighbor-mode blocked waits entered
	BarrierWait   time.Duration // wall-clock spent blocked on synchronization
	// EdgeWait attributes neighbor-mode wait to the in-neighbor whose
	// published clock bound the horizon at block time, indexed by source
	// shard id (zero-length under SyncBarrier). It answers "who does this
	// shard actually wait on" — the signal sparse topologies need.
	EdgeWait []time.Duration
}

// EventsPerWindow reports the mean number of events fired per executed
// window.
func (p ShardProfile) EventsPerWindow() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.Events) / float64(p.Windows)
}

// GroupProfile is a snapshot of every shard's window-protocol counters.
type GroupProfile struct {
	Shards []ShardProfile
}

// EdgeStat is one directed influence edge with its accumulated block time,
// as ranked by WorstEdges.
type EdgeStat struct {
	Src, Dst int
	Wait     time.Duration
}

// Profile snapshots the group's per-shard window counters. Call it after
// Run/RunUntil returns (it reads the shard workers' plain counters, which
// are quiescent between runs). Counters accumulate across runs; see
// ResetProfile.
func (g *Group) Profile() GroupProfile {
	out := GroupProfile{Shards: make([]ShardProfile, len(g.prof))}
	copy(out.Shards, g.prof)
	for i := range out.Shards {
		if ew := g.prof[i].EdgeWait; len(ew) > 0 {
			out.Shards[i].EdgeWait = append([]time.Duration(nil), ew...)
		}
	}
	return out
}

// ResetProfile zeroes the accumulated window counters, per-edge waits
// included.
func (g *Group) ResetProfile() {
	for i := range g.prof {
		ew := g.prof[i].EdgeWait
		for j := range ew {
			ew[j] = 0
		}
		g.prof[i] = ShardProfile{Shard: i, EdgeWait: ew}
	}
}

// Total folds every shard's counters into one (Shard is -1 in the result;
// EdgeWait is not folded — edges are per-destination, see WorstEdges).
func (gp GroupProfile) Total() ShardProfile {
	t := ShardProfile{Shard: -1}
	for _, p := range gp.Shards {
		t.Windows += p.Windows
		t.Events += p.Events
		t.EmptyWindows += p.EmptyWindows
		t.FastForwards += p.FastForwards
		t.FusedBarriers += p.FusedBarriers
		t.Drains += p.Drains
		t.Stalls += p.Stalls
		t.BarrierWait += p.BarrierWait
	}
	return t
}

// WorstEdges ranks the directed edges by accumulated block time, worst
// first, dropping zero-wait edges. Ties break by (src, dst) so the
// ranking is deterministic.
func (gp GroupProfile) WorstEdges() []EdgeStat {
	var out []EdgeStat
	for _, p := range gp.Shards {
		for src, w := range p.EdgeWait {
			if w > 0 {
				out = append(out, EdgeStat{Src: src, Dst: p.Shard, Wait: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// String renders the profile as an aligned table — the `unetbench
// -simprof` dump — followed by the per-edge wait ranking when any edge
// accumulated block time (neighbor-mode runs).
func (gp GroupProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %10s %12s %8s %6s %8s %8s %8s %8s %12s %10s\n",
		"shard", "windows", "events", "ev/win", "empty", "fastfwd", "fused", "drains", "stalls", "sync-wait", "wait/win")
	row := func(label string, p ShardProfile) {
		perWin := time.Duration(0)
		if p.Windows > 0 {
			perWin = p.BarrierWait / time.Duration(p.Windows)
		}
		fmt.Fprintf(&b, "%-5s %10d %12d %8.1f %6d %8d %8d %8d %8d %12s %10s\n",
			label, p.Windows, p.Events, p.EventsPerWindow(), p.EmptyWindows,
			p.FastForwards, p.FusedBarriers, p.Drains, p.Stalls,
			p.BarrierWait.Round(time.Microsecond), perWin)
	}
	for _, p := range gp.Shards {
		row(fmt.Sprintf("%d", p.Shard), p)
	}
	row("total", gp.Total())
	if edges := gp.WorstEdges(); len(edges) > 0 {
		b.WriteString("edge waits (src→dst, worst first):\n")
		for _, e := range edges {
			fmt.Fprintf(&b, "  %d→%d %12s\n", e.Src, e.Dst, e.Wait.Round(time.Microsecond))
		}
	}
	return b.String()
}
