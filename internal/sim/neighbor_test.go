package sim

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ringMailbox is the neighbor-capable twin of testMailbox: a cross-shard
// channel whose producer side is an SPSC ring, implementing the full
// CrossSource contract the way fabric's cross links do. The producer shard
// pushes timed callbacks as it runs; the destination drains them at its
// round tops into ordinary engine events.
type ringMailbox struct {
	dst  *Engine
	mb   *Mailbox
	ring *SPSC[shardMsg]
}

func newRingMailbox(g *Group, src, dst *Engine) *ringMailbox {
	m := &ringMailbox{dst: dst, ring: NewSPSC[shardMsg](8)}
	m.mb = g.AddExchangeFrom(src, dst, m)
	return m
}

// send is called by the producing shard during its window. MarkPending is a
// neighbor-mode no-op but keeps the fixture valid under barrier fallback.
func (m *ringMailbox) send(at time.Duration, fn func()) {
	m.mb.MarkPending()
	m.ring.Push(shardMsg{at: at, fn: fn})
}

func (m *ringMailbox) Drain() {
	if m.mb.Neighbor() {
		for {
			msg, ok := m.ring.Pop()
			if !ok {
				break
			}
			m.dst.At(msg.at, msg.fn)
		}
		return
	}
	for {
		msg, ok := m.ring.PopQuiescent()
		if !ok {
			break
		}
		m.dst.At(msg.at, msg.fn)
	}
}

func (m *ringMailbox) Pending() bool      { return m.ring.Pending() }
func (m *ringMailbox) SpillPending() bool { return m.ring.SpillLen() > 0 }
func (m *ringMailbox) FlushSpill() bool   { return m.ring.FlushSpill() }
func (m *ringMailbox) SpillBound() (time.Duration, bool) {
	msg, ok := m.ring.SpillHead()
	return msg.at, ok
}

func TestSyncKindStrings(t *testing.T) {
	for _, k := range []SyncKind{SyncNeighbor, SyncBarrier} {
		got, ok := ParseSyncKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseSyncKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseSyncKind("bogus"); ok {
		t.Fatal("ParseSyncKind accepted a bogus spelling")
	}
	if SyncKind(99).String() != "unknown" {
		t.Fatalf("SyncKind(99).String() = %q", SyncKind(99).String())
	}
}

func TestShardNeighborCrossTrafficRespectsLookahead(t *testing.T) {
	// The neighbor-mode twin of TestShardCrossTrafficRespectsLookahead:
	// every delivery must land at exactly the time a serial simulation
	// would produce, with no barrier protocol underneath.
	const flight = 10 * time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	toRoot := newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(root, s1, flight)
	g.ObserveLookaheadBetween(s1, root, flight)
	if !g.neighborCapable() {
		t.Fatal("ring-mailbox group not neighborCapable")
	}

	var pings, pongs []time.Duration
	for i := 1; i <= 50; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		fire := at // capture
		root.At(at, func() {
			toS1.send(fire+flight, func() {
				pings = append(pings, s1.Now())
				toRoot.send(s1.Now()+flight, func() { pongs = append(pongs, root.Now()) })
			})
		})
	}
	root.Run()

	if len(pings) != 50 || len(pongs) != 50 {
		t.Fatalf("got %d pings, %d pongs, want 50 each", len(pings), len(pongs))
	}
	for i := 0; i < 50; i++ {
		at := time.Duration(i+1) * 100 * time.Microsecond
		if pings[i] != at+flight {
			t.Fatalf("ping %d at %v, want %v", i, pings[i], at+flight)
		}
		if pongs[i] != at+2*flight {
			t.Fatalf("pong %d at %v, want %v", i, pongs[i], at+2*flight)
		}
	}
	// Stalls is a neighbor-only counter: its presence proves the run used
	// the neighbor protocol, not the barrier fallback.
	total := g.Profile().Total()
	if total.FusedBarriers != 0 {
		t.Fatalf("neighbor run crossed %d fused barriers", total.FusedBarriers)
	}
	if total.Events == 0 || total.Drains == 0 {
		t.Fatalf("profile did not record work: %+v", total)
	}
}

func TestShardNeighborMatchesBarrier(t *testing.T) {
	// The same seeded ping-pong under both protocols must yield identical
	// traces — the differential-twin contract SetSync promises.
	const flight = 5 * time.Microsecond
	trial := func(kind SyncKind) []time.Duration {
		root := New(1)
		s1 := root.NewShard(2)
		g := root.Group()
		g.SetSync(kind)
		toS1 := newRingMailbox(g, root, s1)
		toRoot := newRingMailbox(g, s1, root)
		g.ObserveLookaheadBetween(root, s1, flight)
		g.ObserveLookaheadBetween(s1, root, flight)
		var trace []time.Duration
		for i := 1; i <= 30; i++ {
			at := time.Duration(i) * 40 * time.Microsecond
			fire := at
			root.At(at, func() {
				toS1.send(fire+flight, func() {
					trace = append(trace, s1.Now())
					toRoot.send(s1.Now()+flight, func() { trace = append(trace, root.Now()) })
				})
			})
		}
		root.Run()
		return trace
	}
	nbr := trial(SyncNeighbor)
	bar := trial(SyncBarrier)
	if len(nbr) != 60 || len(bar) != 60 {
		t.Fatalf("trace lengths: neighbor=%d barrier=%d, want 60", len(nbr), len(bar))
	}
	for i := range nbr {
		if nbr[i] != bar[i] {
			t.Fatalf("traces diverged at %d: neighbor=%v barrier=%v", i, nbr[i], bar[i])
		}
	}
}

func TestShardNeighborSpillBackpressure(t *testing.T) {
	// One event pushes far more messages than the ring holds (capacity 8),
	// forcing the spill path: the producer's published clock must stay
	// capped until the consumer drains, and every message must still be
	// delivered exactly once at its scheduled time.
	const flight = time.Microsecond
	const burst = 100
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	g.ObserveLookaheadBetween(root, s1, flight)
	// A return edge keeps s1 from free-running ahead of the test's window.
	newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(s1, root, flight)

	var got []time.Duration
	root.At(10*time.Microsecond, func() {
		base := root.Now() + flight
		for i := 0; i < burst; i++ {
			at := base + time.Duration(i)*time.Microsecond
			toS1.send(at, func() { got = append(got, s1.Now()) })
		}
	})
	root.Run()

	if len(got) != burst {
		t.Fatalf("delivered %d messages, want %d", len(got), burst)
	}
	for i, at := range got {
		want := 11*time.Microsecond + time.Duration(i)*time.Microsecond
		if at != want {
			t.Fatalf("message %d delivered at %v, want %v", i, at, want)
		}
	}
	if toS1.ring.SpillLen() != 0 || toS1.ring.Pending() {
		t.Fatal("ring not fully drained after the run")
	}
}

func TestShardNeighborRunUntilClockSemantics(t *testing.T) {
	const flight = time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	g.ObserveLookaheadBetween(root, s1, flight)
	var n atomic.Int32
	root.After(time.Millisecond, func() { n.Add(1) })
	s1.After(2*time.Millisecond, func() { n.Add(1) })
	s1.After(8*time.Millisecond, func() { n.Add(1) })
	root.After(7*time.Millisecond, func() {
		toS1.send(root.Now()+flight, func() { n.Add(1) })
	})
	end := root.RunUntil(5 * time.Millisecond)
	if n.Load() != 2 {
		t.Fatalf("fired %d events before limit, want 2", n.Load())
	}
	if end != 5*time.Millisecond {
		t.Fatalf("RunUntil returned %v, want 5ms", end)
	}
	end = root.Run()
	if n.Load() != 4 || end != 8*time.Millisecond {
		t.Fatalf("after Run: n=%d end=%v", n.Load(), end)
	}
}

func TestShardNeighborPanicAborts(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	toRoot := newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(root, s1, time.Microsecond)
	g.ObserveLookaheadBetween(s1, root, time.Microsecond)
	// Keep both shards exchanging so the healthy one is blocked in
	// waitNeighbor when the other dies.
	for i := 1; i <= 100; i++ {
		at := time.Duration(i) * time.Microsecond
		root.At(at, func() { toS1.send(root.Now()+time.Microsecond, func() {}) })
		s1.At(at, func() { toRoot.send(s1.Now()+time.Microsecond, func() {}) })
	}
	s1.At(50*time.Microsecond, func() { panic("injected shard failure") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("group run did not propagate the shard panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "injected shard failure") {
			t.Fatalf("propagated panic %v does not carry the original failure", r)
		}
	}()
	root.Run()
}

func TestShardNeighborProfileAndReset(t *testing.T) {
	const flight = time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	toRoot := newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(root, s1, flight)
	g.ObserveLookaheadBetween(s1, root, flight)
	for i := 1; i <= 200; i++ {
		at := time.Duration(i) * 3 * time.Microsecond
		root.At(at, func() {
			toS1.send(root.Now()+flight, func() {
				toRoot.send(s1.Now()+flight, func() {})
			})
		})
	}
	root.Run()

	prof := g.Profile()
	total := prof.Total()
	if total.Stalls == 0 {
		t.Fatalf("no stalls recorded on a blocking ping-pong: %+v", total)
	}
	if total.BarrierWait == 0 {
		t.Fatal("stalls recorded but no sync-wait time attributed")
	}
	// Every stall blocks on a real in-neighbor edge, so the per-edge
	// attribution must carry the same wall-clock the totals do.
	var edgeSum time.Duration
	for _, p := range prof.Shards {
		if len(p.EdgeWait) != g.Shards() {
			t.Fatalf("shard %d EdgeWait has %d entries, want %d", p.Shard, len(p.EdgeWait), g.Shards())
		}
		for _, w := range p.EdgeWait {
			edgeSum += w
		}
	}
	if edgeSum == 0 {
		t.Fatal("no wait attributed to any edge")
	}
	if edges := prof.WorstEdges(); len(edges) == 0 {
		t.Fatal("WorstEdges empty despite recorded edge waits")
	} else {
		for i := 1; i < len(edges); i++ {
			if edges[i].Wait > edges[i-1].Wait {
				t.Fatal("WorstEdges not sorted worst-first")
			}
		}
	}
	if !strings.Contains(prof.String(), "edge waits") {
		t.Fatal("profile rendering lacks the edge-wait ranking")
	}

	g.ResetProfile()
	reset := g.Profile()
	if tot := reset.Total(); tot.Stalls != 0 || tot.Windows != 0 || tot.BarrierWait != 0 {
		t.Fatalf("ResetProfile left counters: %+v", tot)
	}
	for _, p := range reset.Shards {
		for src, w := range p.EdgeWait {
			if w != 0 {
				t.Fatalf("ResetProfile left EdgeWait[%d]=%v on shard %d", src, w, p.Shard)
			}
		}
	}
}

func TestShardNeighborSparseTopologyRounds(t *testing.T) {
	// The neighbor-mode twin of TestShardPerPairWiderThanGlobalMin: r and
	// s2 ping over slow 100µs edges while s1 sits on fast 1µs edges but
	// stays silent. Horizons derive from direct in-neighbors plus the
	// quiescence floor, so the idle gaps must cost a handful of rounds, not
	// a creep in 1µs lookahead steps.
	const slow = 100 * time.Microsecond
	const fast = time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	s2 := root.NewShard(3)
	g := root.Group()
	toS2 := newRingMailbox(g, root, s2)
	toRoot := newRingMailbox(g, s2, root)
	g.ObserveLookaheadBetween(root, s2, slow)
	g.ObserveLookaheadBetween(s2, root, slow)
	// The fast pair has live channels (so the edges exist) but no traffic.
	newRingMailbox(g, root, s1)
	newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(root, s1, fast)
	g.ObserveLookaheadBetween(s1, root, fast)

	var pongs []time.Duration
	const pings = 10
	for i := 1; i <= pings; i++ {
		at := time.Duration(i) * 200 * time.Microsecond
		fire := at
		root.At(at, func() {
			toS2.send(fire+slow, func() {
				toRoot.send(s2.Now()+slow, func() { pongs = append(pongs, root.Now()) })
			})
		})
	}
	root.Run()

	if len(pongs) != pings {
		t.Fatalf("got %d pongs, want %d", len(pongs), pings)
	}
	for i, at := range pongs {
		want := time.Duration(i+1)*200*time.Microsecond + 2*slow
		if at != want {
			t.Fatalf("pong %d at %v, want %v", i, at, want)
		}
	}
	prof := g.Profile().Total()
	perShard := prof.Windows / uint64(g.Shards())
	if perShard > 200 {
		t.Fatalf("ran %d windows per shard; a 1µs global-window creep would need ~2000", perShard)
	}
	if prof.FastForwards == 0 {
		t.Fatal("no window was enabled by the quiescence floor")
	}
}

func TestShardNeighborFallbackPairless(t *testing.T) {
	// A group holding a pairless exchange (unknown producer) cannot run the
	// neighbor protocol; under SyncNeighbor it must silently fall back to
	// the barrier protocol and still produce correct results.
	const flight = 10 * time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newTestMailbox(g, s1) // pairless, not a CrossSource
	g.ObserveLookahead(flight)
	if g.neighborCapable() {
		t.Fatal("pairless group reported neighborCapable")
	}

	var hits []time.Duration
	for i := 1; i <= 20; i++ {
		at := time.Duration(i) * 50 * time.Microsecond
		fire := at
		root.At(at, func() { toS1.send(fire+flight, func() { hits = append(hits, s1.Now()) }) })
	}
	root.Run()
	if len(hits) != 20 {
		t.Fatalf("delivered %d messages, want 20", len(hits))
	}
	total := g.Profile().Total()
	if total.Stalls != 0 {
		t.Fatalf("barrier fallback recorded neighbor stalls: %+v", total)
	}
	if total.Drains == 0 {
		t.Fatalf("barrier fallback did no drains: %+v", total)
	}
}

func TestShardNeighborModeSwitch(t *testing.T) {
	// Alternate protocols across runs of one group: leftover ring traffic
	// from a bounded neighbor run must survive the switch to barrier mode
	// (setupBarrier marks neighbor mailboxes pending) and vice versa.
	const flight = time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newRingMailbox(g, root, s1)
	newRingMailbox(g, s1, root)
	g.ObserveLookaheadBetween(root, s1, flight)
	g.ObserveLookaheadBetween(s1, root, flight)

	var got []time.Duration
	record := func() { got = append(got, s1.Now()) }
	for i := 1; i <= 10; i++ {
		at := time.Duration(i) * 10 * time.Microsecond
		root.At(at, func() { toS1.send(root.Now()+flight, record) })
	}
	root.RunUntil(35 * time.Microsecond)
	g.SetSync(SyncBarrier)
	root.RunUntil(75 * time.Microsecond)
	g.SetSync(SyncNeighbor)
	root.Run()

	if len(got) != 10 {
		t.Fatalf("delivered %d messages across mode switches, want 10", len(got))
	}
	for i, at := range got {
		want := time.Duration(i+1)*10*time.Microsecond + flight
		if at != want {
			t.Fatalf("message %d delivered at %v, want %v", i, at, want)
		}
	}
}
