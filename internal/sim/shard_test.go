package sim

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shardMsg is a message crossing shards in tests: fire fn at time at on the
// destination engine.
type shardMsg struct {
	at time.Duration
	fn func()
}

// testMailbox is a minimal cross-shard channel for exercising the window
// protocol directly: the producer shard appends during its window (marking
// the mailbox pending), the destination drains at the barrier. Mirrors
// what fabric's cross links do.
type testMailbox struct {
	dst     *Engine
	mb      *Mailbox
	pending []shardMsg
}

func (m *testMailbox) send(at time.Duration, fn func()) {
	m.pending = append(m.pending, shardMsg{at: at, fn: fn})
	m.mb.MarkPending()
}

func (m *testMailbox) Drain() {
	for _, msg := range m.pending {
		m.dst.At(msg.at, msg.fn)
	}
	m.pending = m.pending[:0]
}

func newTestMailbox(g *Group, dst *Engine) *testMailbox {
	m := &testMailbox{dst: dst}
	m.mb = g.AddExchange(dst, m)
	return m
}

// newTestMailboxFrom registers the mailbox with a known producer so the
// window protocol can apply the src→dst pair lookahead.
func newTestMailboxFrom(g *Group, src, dst *Engine) *testMailbox {
	m := &testMailbox{dst: dst}
	m.mb = g.AddExchangeFrom(src, dst, m)
	return m
}

func TestShardGroupIndependentShards(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	var a, b time.Duration
	root.After(5*time.Millisecond, func() { a = root.Now() })
	s1.After(9*time.Millisecond, func() { b = s1.Now() })
	end := root.Run()
	if a != 5*time.Millisecond || b != 9*time.Millisecond {
		t.Fatalf("events fired at %v / %v", a, b)
	}
	if end != 9*time.Millisecond {
		t.Fatalf("Run returned %v, want 9ms (max over shards)", end)
	}
}

func TestShardEngineRejectsDirectRun(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Run on a shard engine did not panic")
		}
	}()
	s1.Run()
}

func TestShardCrossTrafficRespectsLookahead(t *testing.T) {
	// Shard 0 pings shard 1 every 100µs with a 10µs flight time; each ping
	// triggers a pong back. All deliveries must land at exactly the times a
	// serial simulation would produce.
	const flight = 10 * time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	toS1 := newTestMailbox(g, s1)
	toRoot := newTestMailbox(g, root)
	g.ObserveLookahead(flight)

	var pings, pongs []time.Duration
	var pongBack func()
	pongBack = func() {
		pings = append(pings, s1.Now())
		now := s1.Now()
		toRoot.send(now+flight, func() { pongs = append(pongs, root.Now()) })
	}
	for i := 1; i <= 50; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		fire := at // capture
		root.At(at, func() { toS1.send(fire+flight, pongBack) })
	}
	root.Run()

	if len(pings) != 50 || len(pongs) != 50 {
		t.Fatalf("got %d pings, %d pongs, want 50 each", len(pings), len(pongs))
	}
	for i := 0; i < 50; i++ {
		at := time.Duration(i+1) * 100 * time.Microsecond
		if pings[i] != at+flight {
			t.Fatalf("ping %d at %v, want %v", i, pings[i], at+flight)
		}
		if pongs[i] != at+2*flight {
			t.Fatalf("pong %d at %v, want %v", i, pongs[i], at+2*flight)
		}
	}
}

func TestShardSameTimestampMergeIsRegistrationOrder(t *testing.T) {
	// Two producer shards inject events at the *same* timestamp into the
	// same destination. The merge order must follow exchange registration
	// order, run after run, regardless of goroutine scheduling.
	const flight = time.Microsecond
	trial := func() []int {
		root := New(1)
		a := root.NewShard(2)
		b := root.NewShard(3)
		g := root.Group()
		fromA := newTestMailbox(g, root)
		fromB := newTestMailbox(g, root)
		g.ObserveLookahead(flight)

		var order []int
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * 10 * time.Microsecond
			a.At(at, func() { fromA.send(a.Now()+flight, func() { order = append(order, 0) }) })
			b.At(at, func() { fromB.send(b.Now()+flight, func() { order = append(order, 1) }) })
		}
		root.Run()
		return order
	}
	first := trial()
	if len(first) != 40 {
		t.Fatalf("got %d events, want 40", len(first))
	}
	for i := 0; i < 40; i += 2 {
		// fromA registered before fromB: at every shared timestamp the A
		// event must execute first.
		if first[i] != 0 || first[i+1] != 1 {
			t.Fatalf("merge order at pair %d: %v", i/2, first[i:i+2])
		}
	}
	for run := 0; run < 10; run++ {
		got := trial()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("run %d diverged at %d", run, i)
			}
		}
	}
}

func TestShardRunUntilClockSemantics(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	var n atomic.Int32
	root.After(time.Millisecond, func() { n.Add(1) })
	s1.After(2*time.Millisecond, func() { n.Add(1) })
	s1.After(8*time.Millisecond, func() { n.Add(1) })
	end := root.RunUntil(5 * time.Millisecond)
	if n.Load() != 2 {
		t.Fatalf("fired %d events before limit, want 2", n.Load())
	}
	// Events remain beyond the limit: the clock parks at the limit, exactly
	// as a serial engine's RunUntil would.
	if end != 5*time.Millisecond {
		t.Fatalf("RunUntil returned %v, want 5ms", end)
	}
	end = root.Run()
	if n.Load() != 3 || end != 8*time.Millisecond {
		t.Fatalf("after Run: n=%d end=%v", n.Load(), end)
	}
}

func TestShardPanicAborts(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	newTestMailbox(g, s1)
	g.ObserveLookahead(time.Microsecond)
	// Keep both shards busy so the healthy one is parked at a barrier when
	// the other dies.
	for i := 1; i <= 100; i++ {
		root.At(time.Duration(i)*time.Microsecond, func() {})
		s1.At(time.Duration(i)*time.Microsecond, func() {})
	}
	s1.At(50*time.Microsecond, func() { panic("injected shard failure") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("group run did not propagate the shard panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "injected shard failure") {
			t.Fatalf("propagated panic %v does not carry the original failure", r)
		}
	}()
	root.Run()
}

func TestShardGroupShutdown(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	var stopped atomic.Int32
	root.Spawn("r", func(p *Proc) {
		defer stopped.Add(1)
		p.Sleep(time.Hour)
	})
	s1.Spawn("s", func(p *Proc) {
		defer stopped.Add(1)
		p.Sleep(time.Hour)
	})
	root.RunUntil(time.Millisecond)
	root.Shutdown()
	if stopped.Load() != 2 {
		t.Fatalf("shutdown unwound %d procs, want 2", stopped.Load())
	}
}

func TestShardLookaheadValidation(t *testing.T) {
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ObserveLookahead(0) did not panic")
			}
		}()
		g.ObserveLookahead(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ObserveLookaheadBetween(0) did not panic")
			}
		}()
		g.ObserveLookaheadBetween(root, s1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ObserveLookaheadBetween on the same shard did not panic")
			}
		}()
		g.ObserveLookaheadBetween(s1, s1, time.Microsecond)
	}()
	// Exchanges registered but no lookahead observed: the window protocol
	// has no safe width and must refuse to run.
	newTestMailbox(g, s1)
	defer func() {
		if recover() == nil {
			t.Error("run with exchanges but no lookahead did not panic")
		}
	}()
	root.Run()
}

func TestShardPairLookaheadValidation(t *testing.T) {
	// A pair-registered exchange whose pair never observed a lookahead (and
	// no global floor exists) must refuse to run too.
	root := New(1)
	s1 := root.NewShard(2)
	s2 := root.NewShard(3)
	g := root.Group()
	g.ObserveLookaheadBetween(root, s1, time.Microsecond)
	newTestMailboxFrom(g, s2, root) // s2→root has no observed bound
	defer func() {
		if recover() == nil {
			t.Error("run with an unbounded pair exchange did not panic")
		}
	}()
	root.Run()
}

func TestShardPerPairWiderThanGlobalMin(t *testing.T) {
	// Shards r and s2 exchange pings over slow 100µs links, while a third
	// shard s1 sits on fast 1µs links but stays silent. The old protocol
	// would clamp every window to the global minimum (1µs) and grind ~100
	// rounds per ping; per-pair lookahead must bound r and s2 only by the
	// 100µs paths that can actually reach them.
	const slow = 100 * time.Microsecond
	const fast = time.Microsecond
	root := New(1)
	s1 := root.NewShard(2)
	s2 := root.NewShard(3)
	g := root.Group()
	toS2 := newTestMailboxFrom(g, root, s2)
	toRoot := newTestMailboxFrom(g, s2, root)
	g.ObserveLookaheadBetween(root, s2, slow)
	g.ObserveLookaheadBetween(s2, root, slow)
	// The fast pair contributes only observations, no traffic.
	g.ObserveLookaheadBetween(root, s1, fast)
	g.ObserveLookaheadBetween(s1, root, fast)
	if g.Lookahead() != fast {
		t.Fatalf("Lookahead() = %v, want the global min %v", g.Lookahead(), fast)
	}

	var pongs []time.Duration
	const pings = 10
	for i := 1; i <= pings; i++ {
		at := time.Duration(i) * 200 * time.Microsecond
		fire := at
		root.At(at, func() {
			toS2.send(fire+slow, func() {
				now := s2.Now()
				toRoot.send(now+slow, func() { pongs = append(pongs, root.Now()) })
			})
		})
	}
	root.Run()

	if len(pongs) != pings {
		t.Fatalf("got %d pongs, want %d", len(pongs), pings)
	}
	for i, at := range pongs {
		want := time.Duration(i+1)*200*time.Microsecond + 2*slow
		if at != want {
			t.Fatalf("pong %d at %v, want %v", i, at, want)
		}
	}

	prof := g.Profile()
	total := prof.Total()
	// 10 pings over 2ms of virtual time: the old global-min protocol needed
	// a window per 1µs of progress (thousands of rounds). With per-pair
	// horizons each ping leg is a handful of rounds.
	perShard := total.Windows / uint64(len(prof.Shards))
	if perShard > 200 {
		t.Fatalf("ran %d rounds per shard; per-pair lookahead should need far fewer than the ~2000 a 1µs global window implies", perShard)
	}
	if total.FastForwards == 0 {
		t.Fatal("no window ever fast-forwarded past the legacy global-min horizon")
	}
	if total.Events == 0 || total.Drains == 0 {
		t.Fatalf("profile did not record work: %+v", total)
	}
}

func TestShardProfileFusedBarriers(t *testing.T) {
	// Two shards with traffic only in the first half of the run: rounds
	// after the traffic dies must fuse to a single barrier (no mailbox
	// pending), and idle stretches must fast-forward.
	root := New(1)
	s1 := root.NewShard(2)
	g := root.Group()
	to1 := newTestMailboxFrom(g, root, s1)
	g.ObserveLookaheadBetween(root, s1, 10*time.Microsecond)
	g.ObserveLookaheadBetween(s1, root, 10*time.Microsecond)
	hits := 0
	root.At(50*time.Microsecond, func() { to1.send(root.Now()+10*time.Microsecond, func() { hits++ }) })
	// Purely local events afterwards — no cross traffic, so every remaining
	// round crosses one fused barrier.
	for i := 1; i <= 20; i++ {
		s1.At(time.Duration(i)*time.Millisecond, func() {})
	}
	root.Run()
	if hits != 1 {
		t.Fatalf("cross message fired %d times, want 1", hits)
	}
	p := g.Profile().Total()
	if p.FusedBarriers == 0 {
		t.Fatalf("no round fused its barrier: %+v", p)
	}
	if p.Drains != 1 {
		t.Fatalf("drains = %d, want exactly 1 (one pending mailbox, drained once)", p.Drains)
	}
}
