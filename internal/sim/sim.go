// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine maintains a virtual clock and an ordered event queue. Simulated
// activities run either as plain scheduled callbacks (Engine.After) or as
// processes (Proc): goroutines that are cooperatively scheduled so that
// exactly one of them — or the engine itself — executes at any instant.
// Processes advance the virtual clock by sleeping (charging processing
// costs) and synchronize through conditions (Cond) and bounded FIFOs.
//
// Determinism: events firing at the same virtual time are processed in
// scheduling order, and all randomness flows from the engine's seeded
// source, so a simulation produces bit-identical results across runs.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator instance. Create one with New; it is
// not safe for concurrent use from multiple OS threads — all interaction
// must happen from the goroutine that calls Run or from within simulated
// processes and callbacks, which the engine serializes.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	parked chan struct{}
	// running is the currently executing process, nil while the engine
	// itself (or a callback) runs.
	running *Proc
	procs   map[*Proc]struct{}
	rng     *rand.Rand
	tracer  func(at time.Duration, who, msg string)
	nsteps  uint64
}

// New returns an engine with its virtual clock at zero and randomness
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have fired since the engine was created.
// Useful as a progress/livelock diagnostic in tests.
func (e *Engine) Steps() uint64 { return e.nsteps }

// SetTracer installs fn to observe trace messages emitted via Tracef and
// Proc.Logf. A nil fn disables tracing.
func (e *Engine) SetTracer(fn func(at time.Duration, who, msg string)) { e.tracer = fn }

// Tracef emits a trace message attributed to who.
func (e *Engine) Tracef(who, format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, who, fmt.Sprintf(format, args...))
	}
}

// event is a single queue entry: fn fires at virtual time at. Entries with
// equal times fire in scheduling (seq) order.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// canceled events stay in the heap but do not fire.
	canceled bool
}

// Timer is a handle to a scheduled callback. Cancel prevents a pending
// callback from firing; canceling an already-fired timer is a no-op.
type Timer struct{ ev *event }

// Cancel stops the timer. It reports whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) At(at time.Duration, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Run processes events until the queue is empty (the simulation is
// quiescent: every process is blocked or finished). It returns the final
// virtual time. Run may be called again after scheduling more work.
func (e *Engine) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil processes events with firing times ≤ limit (limit < 0 means no
// limit) and returns the virtual time reached. Events beyond the limit stay
// queued.
func (e *Engine) RunUntil(limit time.Duration) time.Duration {
	for len(e.events) > 0 {
		next := e.events[0]
		if limit >= 0 && next.at > limit {
			if limit > e.now {
				e.now = limit
			}
			return e.now
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		next.canceled = true // fired: a later Cancel reports not-pending
		if next.at > e.now {
			e.now = next.at
		}
		e.nsteps++
		next.fn()
	}
	return e.now
}

// Shutdown terminates every live process (blocked or sleeping) by unwinding
// its goroutine, then discards pending events. Call when a simulation is
// finished to avoid leaking goroutines; the engine must not be used after.
func (e *Engine) Shutdown() {
	for p := range e.procs {
		p.killed = true
	}
	for p := range e.procs {
		if p.started && !p.done {
			e.transfer(p)
		}
		delete(e.procs, p)
	}
	e.events = nil
}

// transfer hands execution to p and waits until p blocks or finishes.
// This is the single point of control transfer between engine and process.
func (e *Engine) transfer(p *Proc) {
	prev := e.running
	e.running = p
	p.resume <- struct{}{}
	<-e.parked
	e.running = prev
	if p.done {
		delete(e.procs, p)
	}
}

// resumeLater schedules p to resume execution at the current virtual time.
func (e *Engine) resumeLater(p *Proc) {
	e.After(0, func() {
		if !p.done {
			e.transfer(p)
		}
	})
}

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. fn runs on its own goroutine but under the
// engine's cooperative scheduling: it executes only while every other
// process is blocked.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.After(0, func() {
		if p.killed || p.started {
			return
		}
		p.started = true
		prev := e.running
		e.running = p
		go p.top(fn)
		<-e.parked
		e.running = prev
		if p.done {
			delete(e.procs, p)
		}
	})
	return p
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
