// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine maintains a virtual clock and an ordered event queue. Simulated
// activities run either as plain scheduled callbacks (Engine.After) or as
// processes (Proc): goroutines that are cooperatively scheduled so that
// exactly one of them — or the engine itself — executes at any instant.
// Processes advance the virtual clock by sleeping (charging processing
// costs) and synchronize through conditions (Cond) and bounded FIFOs.
//
// Determinism: events firing at the same virtual time are processed in
// scheduling order, and all randomness flows from the engine's seeded
// source, so a simulation produces bit-identical results across runs.
//
// The event queue is built for throughput on the simulator's hot path
// (cell-level network models schedule millions of events per simulated
// second of traffic): events live in a free-list-backed arena and are
// recycled after firing, the near-horizon queue is a 4-ary implicit heap
// (shallower than a binary heap, and free of the container/heap interface
// indirection), and process resumption is expressed as a dedicated event
// kind so that Proc.Sleep and wake-ups allocate nothing in steady state.
// Canceled timers still heap-resident stay there but are compacted away
// wholesale once they outnumber the live entries, so long-running
// simulations with many canceled timeouts (TCP retransmission timers,
// condition waits) do not grow the queue unboundedly.
//
// Above the heap sits a pluggable far-horizon store (SchedulerKind): by
// default a hierarchical timer wheel (wheel.go) absorbs events beyond the
// current drain frontier with O(1) insert/cancel, keeping heap depth — and
// hence per-event cost — bounded by the near-term traffic, not by the
// total pending population. Fire order is decided exclusively by the heap,
// so both scheduler kinds produce bit-identical simulations.
//
// One simulation can also be partitioned across several engines — shards —
// that execute on parallel goroutines under a conservative time-window
// protocol while preserving the serial engine's determinism; see shard.go.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator instance. Create one with New; it is
// not safe for concurrent use from multiple OS threads — all interaction
// must happen from the goroutine that calls Run or from within simulated
// processes and callbacks, which the engine serializes.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	// ncanceled counts canceled events still sitting in the heap; when they
	// outnumber the live entries the heap is compacted in one pass.
	ncanceled int
	// free is the event arena's free list. Fired and compacted events are
	// returned here and reused, so steady-state scheduling allocates nothing.
	free *event
	// wheel is the far-horizon event store (nil under SchedulerHeap).
	wheel  *wheel
	parked chan struct{}
	// running is the currently executing process, nil while the engine
	// itself (or a callback) runs.
	running *Proc
	procs   map[*Proc]struct{}
	rng     *rand.Rand
	tracer  func(at time.Duration, who, msg string)
	nsteps  uint64
	// group and shardID place the engine in a sharded simulation (nil /
	// zero for a plain serial engine). See shard.go.
	group   *Group
	shardID int
}

// SchedulerKind selects the engine's far-horizon event store.
type SchedulerKind uint8

const (
	// SchedulerWheel (the default) backs the 4-ary heap with a hierarchical
	// timer wheel: far-future events cost O(1) to schedule and cancel no
	// matter how many millions are pending. See wheel.go.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap keeps every pending event in the 4-ary heap. It exists
	// as the differential-testing twin: a run under SchedulerHeap must be
	// bit-identical to the same run under SchedulerWheel.
	SchedulerHeap
)

// New returns an engine with its virtual clock at zero and randomness
// seeded with seed, using the default wheel-backed scheduler.
func New(seed int64) *Engine { return NewWithScheduler(seed, SchedulerWheel) }

// NewWithScheduler is New with an explicit far-horizon scheduler choice.
// Both kinds fire events in exactly the same (at, seq) order; the choice
// affects only the cost of holding large pending-event populations.
func NewWithScheduler(seed int64, kind SchedulerKind) *Engine {
	e := &Engine{
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
		rng:    rand.New(rand.NewSource(seed)), //unetlint:allow seedflow the engine master stream IS the root every derived stream hangs off; it is seeded once, directly from the caller's plan seed
	}
	if kind == SchedulerWheel {
		e.wheel = newWheel()
	}
	return e
}

// Scheduler reports which far-horizon scheduler the engine runs.
func (e *Engine) Scheduler() SchedulerKind {
	if e.wheel != nil {
		return SchedulerWheel
	}
	return SchedulerHeap
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have fired since the engine was created.
// Useful as a progress/livelock diagnostic in tests.
func (e *Engine) Steps() uint64 { return e.nsteps }

// PendingEvents reports how many entries (live, plus canceled ones still
// awaiting heap compaction) currently sit in the event queue — heap and
// wheel combined. Exposed for queue-growth diagnostics and tests.
func (e *Engine) PendingEvents() int {
	n := len(e.events)
	if e.wheel != nil {
		n += e.wheel.count
	}
	return n
}

// peek returns the earliest pending event without removing it, or nil. It
// establishes the exact global minimum at the heap top, draining wheel
// slots only as far as needed: the shard window protocol publishes this
// value as the shard's next-event time, and a lower bound would stall the
// conservative horizon computation.
func (e *Engine) peek() *event {
	if w := e.wheel; w != nil && w.count > 0 &&
		(len(e.events) == 0 || e.events[0].at > w.nextLB) {
		w.drain(e)
	}
	if len(e.events) == 0 {
		return nil
	}
	return e.events[0]
}

// SetTracer installs fn to observe trace messages emitted via Tracef and
// Proc.Logf. A nil fn disables tracing.
func (e *Engine) SetTracer(fn func(at time.Duration, who, msg string)) { e.tracer = fn }

// Tracef emits a trace message attributed to who.
func (e *Engine) Tracef(who, format string, args ...any) {
	if e.tracer != nil {
		e.tracer(e.now, who, fmt.Sprintf(format, args...))
	}
}

// Event kinds. A kind-dispatched payload (rather than a closure per event)
// is what keeps the engine's hot paths allocation-free: resuming a process
// or invoking a static callback with an argument needs no captured state.
const (
	kindFunc    = iota // call fn()
	kindFuncArg        // call fnArg(arg)
	kindResume         // resume process p
	kindTimeout        // expire condition wait w
)

// event is a single queue entry firing at virtual time at. Entries with
// equal times fire in scheduling (seq) order. Events are pooled: gen
// increments on every recycle so stale Timer handles cannot cancel an
// unrelated reincarnation.
type event struct {
	at    time.Duration
	seq   uint64
	e     *Engine
	kind  uint8
	fn    func()
	fnArg func(any)
	arg   any
	p     *Proc
	w     *waiter
	gen   uint32
	// canceled events stay in the heap but do not fire. (Wheel-resident
	// events are instead unlinked and recycled at Cancel time.)
	canceled bool
	// wslot is the wheel slot this event occupies (level*wheelSlots+slot),
	// or -1 while heap-resident, free, or fired.
	wslot int32
	// next chains the free list and the wheel slot lists; prev back-links
	// the slot lists so wheel cancellation is O(1).
	next *event
	prev *event
}

// alloc takes an event from the arena free list, or grows the arena.
func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		return &event{wslot: -1}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle clears an event and returns it to the arena.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.p = nil
	ev.w = nil
	ev.canceled = false
	ev.wslot = -1
	ev.prev = nil
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Timer is a handle to a scheduled callback. Cancel prevents a pending
// callback from firing; canceling an already-fired timer is a no-op. The
// zero Timer is valid and Cancel on it reports false.
type Timer struct {
	ev  *event
	gen uint32
}

// Cancel stops the timer. It reports whether the callback was still pending.
// A wheel-resident entry is unlinked and recycled immediately; a
// heap-resident one stays queued until it is popped or compacted away.
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.canceled {
		return false
	}
	if ev.wslot >= 0 {
		ev.e.wheel.unlink(ev)
		ev.e.recycle(ev)
		return true
	}
	ev.canceled = true
	if ev.e != nil {
		ev.e.ncanceled++
		ev.e.maybeCompact()
	}
	return true
}

// schedule enqueues a pooled event at absolute time at (clamped to now).
// Events beyond the wheel's drain frontier go to the far-horizon wheel;
// everything else — including all of SchedulerHeap's traffic — goes to the
// near-horizon heap.
func (e *Engine) schedule(at time.Duration) *event {
	if at < e.now {
		at = e.now
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.e = e
	e.seq++
	if w := e.wheel; w != nil && tick(at) > w.cur {
		w.insert(ev)
	} else {
		e.events.push(ev)
	}
	return ev
}

// rearm moves a pending event to a new firing time, consuming a fresh
// sequence number exactly as a Cancel + reschedule pair would — so a run
// using rearm is event-for-event identical to one using the classic churn,
// just without the allocation and heap traffic. It reports false when the
// event is heap-resident (its position is unknown without a search); the
// caller falls back to Cancel + schedule.
func (e *Engine) rearm(ev *event, at time.Duration) bool {
	if ev.wslot < 0 {
		return false
	}
	if at < e.now {
		at = e.now
	}
	ev.seq = e.seq
	e.seq++
	if at != ev.at {
		w := e.wheel
		w.unlink(ev)
		ev.at = at
		if tick(at) > w.cur {
			w.insert(ev)
		} else {
			e.events.push(ev)
		}
	}
	return true
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) At(at time.Duration, fn func()) Timer {
	ev := e.schedule(at)
	ev.kind = kindFunc
	ev.fn = fn
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute virtual time at. With a static
// (non-capturing) fn and a pointer-typed arg this allocates nothing, which
// makes it the scheduling primitive of choice for per-message hot paths.
func (e *Engine) AtArg(at time.Duration, fn func(any), arg any) Timer {
	ev := e.schedule(at)
	ev.kind = kindFuncArg
	ev.fnArg = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// AfterArg schedules fn(arg) to run d from now (negative d clamps to zero).
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.AtArg(e.now+d, fn, arg)
}

// Run processes events until the queue is empty (the simulation is
// quiescent: every process is blocked or finished). It returns the final
// virtual time. Run may be called again after scheduling more work.
func (e *Engine) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil processes events with firing times ≤ limit (limit < 0 means no
// limit) and returns the virtual time reached. Events beyond the limit stay
// queued. On the root engine of a shard group this drives the whole group;
// calling it on a non-root shard is an error.
func (e *Engine) RunUntil(limit time.Duration) time.Duration {
	if e.group != nil {
		if e.group.root != e {
			panic("sim: Run/RunUntil on a shard engine; drive the group's root engine")
		}
		return e.group.run(limit)
	}
	e.runWindow(stopFor(limit))
	e.alignNow(limit)
	return e.now
}

// runWindow processes events with firing times strictly before stop. It is
// the serial engine's whole main loop (RunUntil passes limit+1) and one
// conservative window of a sharded run.
func (e *Engine) runWindow(stop time.Duration) {
	for {
		next := e.peek()
		if next == nil || next.at >= stop {
			return
		}
		e.events.pop()
		if next.canceled {
			e.ncanceled--
			e.recycle(next)
			continue
		}
		if next.kind == kindTimeout && next.w == nil {
			// A detached timeout: its wait was signaled and WaitUntil kept the
			// event armed for lazy re-arming, but no re-arm came. Exactly like
			// a canceled entry — and like the cancel the classic
			// schedule-per-wait pattern would have issued — it is dead weight:
			// it must not advance the clock or count as a step.
			e.recycle(next)
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		e.nsteps++
		// Copy the payload out and recycle before dispatch: the callback may
		// schedule new events, and reusing the just-fired entry keeps the
		// arena hot. A Timer held for this event sees the generation bump
		// and correctly reports not-pending.
		kind, fn, fnArg, arg, p, w := next.kind, next.fn, next.fnArg, next.arg, next.p, next.w
		e.recycle(next)
		switch kind {
		case kindFunc:
			fn()
		case kindFuncArg:
			fnArg(arg)
		case kindResume:
			if !p.done {
				e.transfer(p)
			}
		case kindTimeout:
			if !w.fired {
				w.fired = true
				w.timedOut = true
				w.c.remove(w)
				if !w.p.done {
					e.transfer(w.p)
				}
			}
		}
	}
}

// maybeCompact rebuilds the heap without its canceled entries once they
// outnumber the live ones. Long-running simulations cancel timers
// constantly (every armed-then-acked retransmission timer, every signaled
// timed wait); lazy wholesale compaction keeps cancellation O(1) while
// bounding queue growth to 2× the live event count.
func (e *Engine) maybeCompact() {
	if e.ncanceled*2 <= len(e.events) || len(e.events) < 64 {
		return
	}
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.ncanceled = 0
	e.events.init()
}

// Shutdown terminates every live process (blocked or sleeping) by unwinding
// its goroutine, then discards pending events. Call when a simulation is
// finished to avoid leaking goroutines; the engine must not be used after.
// On the root engine of a shard group it shuts every shard down.
func (e *Engine) Shutdown() {
	if e.group != nil && e.group.root == e {
		e.group.shutdown()
		return
	}
	e.shutdownLocal()
}

func (e *Engine) shutdownLocal() {
	for p := range e.procs {
		p.killed = true
	}
	for p := range e.procs {
		if p.started && !p.done {
			e.transfer(p)
		}
		delete(e.procs, p)
	}
	e.events = nil
	e.ncanceled = 0
	e.free = nil
	if e.wheel != nil {
		e.wheel.reset()
	}
}

// transfer hands execution to p and waits until p blocks or finishes.
// This is the single point of control transfer between engine and process.
func (e *Engine) transfer(p *Proc) {
	prev := e.running
	e.running = p
	p.resume <- struct{}{}
	<-e.parked
	e.running = prev
	if p.done {
		delete(e.procs, p)
	}
}

// resumeLater schedules p to resume execution at the current virtual time.
// This is the allocation-free equivalent of After(0, ...) for wake-ups.
func (e *Engine) resumeLater(p *Proc) {
	ev := e.schedule(e.now)
	ev.kind = kindResume
	ev.p = p
}

// resumeAt schedules p to resume execution at absolute time at.
func (e *Engine) resumeAt(at time.Duration, p *Proc) {
	ev := e.schedule(at)
	ev.kind = kindResume
	ev.p = p
}

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. fn runs on its own goroutine but under the
// engine's cooperative scheduling: it executes only while every other
// process is blocked.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.After(0, func() {
		if p.killed || p.started {
			return
		}
		p.started = true
		prev := e.running
		e.running = p
		go p.top(fn)
		<-e.parked
		e.running = prev
		if p.done {
			delete(e.procs, p)
		}
	})
	return p
}

// eventHeap is a 4-ary implicit min-heap ordered by (at, seq). Four-way
// fanout halves the tree depth of the binary heap it replaces, and the
// hand-rolled sift routines avoid container/heap's interface dispatch on
// every comparison — both measurable on the per-cell scheduling path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return ev
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// init re-establishes the heap property over arbitrary contents (used after
// compaction).
func (h eventHeap) init() {
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}
