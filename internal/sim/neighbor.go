package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Neighbor-synchronized conservative windows (the SyncNeighbor protocol).
//
// The barrier protocol in shard.go stops every shard at every round so a
// leader can fold the global minimum and hand out horizons. That global
// rendezvous is the dominant cost of dense parallel runs — simprof put it
// at ~74% of wall time on the 8-host/4-shard storm — and it charges even
// pairs of shards that never talk. This file replaces it on the common
// path with Chandy–Misra–Bryant-style point-to-point synchronization
// specialized to the group's static exchange graph:
//
//   - Every shard i owns a published clock pub[i]: a promise that no
//     message it has not yet made visible will arrive anywhere before
//     pub[i] + L(i→dst). It advances the clock at its own round tops,
//     with no coordination beyond one atomic store and a wake to its
//     out-neighbors.
//   - Shard i's window horizon is computed from its direct in-neighbors
//     alone: H_i = min over in-edges (pub[j] + L(j→i)). Shards with no
//     path between them never wait on each other; a sparse topology
//     synchronizes only where influence can actually flow.
//   - Cross-shard messages travel through lock-free SPSC rings (spsc.go),
//     pushed at send time by the producing shard and drained by the
//     destination at its round tops. Delivery happens through the
//     engine's cross intake (below), which merges ring heads into the
//     event loop by (arrival time, exchange registration order) — the
//     same deterministic rule the barrier protocol's drain order
//     implements, so goldens stay byte-identical across both modes and
//     every shard count.
//
// Safety invariant. When shard i runs a window bounded by H_i, every
// message that could arrive before H_i is already visible in its intake:
// producer j pushed the message to the ring before publishing any
// pub[j] ≥ send time (pushes precede the publish store in program order,
// and Go's sequentially-consistent atomics make the publish the release
// edge), and arrival = send + link latency ≥ send + L(j→i), so a message
// still invisible after i reads pub[j] has arrival ≥ pub[j] + L(j→i) ≥
// H_i. A full ring breaks the "pushed at send time" half of this, so a
// producer with spilled messages caps its published clock at
// spill-head arrival − L for the affected edge until the spill flushes
// (SpillBound); the consumer then cannot open a window past the invisible
// message.
//
// Progress. A purely neighbor-driven horizon can creep in lookahead-sized
// steps across idle stretches (the classic CMB lookahead creep). The
// escape hatch reuses the group's quiescence machinery: when every shard
// is simultaneously blocked, the last one to block scans the rings and —
// if all are empty — folds the global minimum next-event time m. If m is
// beyond the run limit the group is done; otherwise m becomes gmin, a
// floor every shard may add its minimum in-edge lookahead to
// (H_i ≥ gmin + min L(*→i) is safe because any future message for i
// originates at an event ≥ m). That single fold per idle gap replaces the
// per-round folds of the barrier protocol and restores the fast-forward
// behavior across quiet phases.
//
// Termination mirrors the same scan: all shards blocked + all rings empty
// + global minimum beyond the limit ⇒ done flag + wake-all. The scan runs
// under a mutex off the hot path; the hot path itself crosses no locks —
// publishes are atomic stores, waits are epoch-counted spins that park on
// a per-shard condition variable only after a yield budget, exactly like
// the spin barrier's ladder.

// SyncKind selects the synchronization protocol of a shard group run.
type SyncKind uint8

const (
	// SyncNeighbor (the default) runs the neighbor-synchronized window
	// protocol above: shards coordinate point-to-point over the exchange
	// graph's edges with no global barrier on the common path. Requires
	// every exchange to be registered with a known producer
	// (AddExchangeFrom) and to implement CrossSource; groups that do not
	// qualify fall back to SyncBarrier behavior for the run.
	SyncNeighbor SyncKind = iota
	// SyncBarrier is the PR 6 reference protocol: per-round global
	// barriers with a leader-folded minimum and per-pair horizon matrix.
	// Kept as the differential-testing twin — a run under SyncBarrier must
	// be byte-identical to the same run under SyncNeighbor.
	SyncBarrier
)

// String names the sync kind the way unetbench -sync spells it.
func (k SyncKind) String() string {
	switch k {
	case SyncNeighbor:
		return "neighbor"
	case SyncBarrier:
		return "barrier"
	}
	return "unknown"
}

// ParseSyncKind parses unetbench -sync spellings.
func ParseSyncKind(s string) (SyncKind, bool) {
	switch s {
	case "neighbor":
		return SyncNeighbor, true
	case "barrier":
		return SyncBarrier, true
	}
	return SyncNeighbor, false
}

// SetSync selects the synchronization protocol for subsequent Run/RunUntil
// calls on the group. Must not be called while a run is in progress.
func (g *Group) SetSync(k SyncKind) { g.sync = k }

// SyncMode reports the configured synchronization protocol.
func (g *Group) SyncMode() SyncKind { return g.sync }

// CrossSource is the neighbor-mode contract of an exchange: a cross-shard
// channel whose producer side is a lock-free SPSC ring and whose consumer
// side stages arrivals into the destination engine as ordinary events.
//
// Drain (from Exchange, called only by the destination's worker) moves
// published ring traffic into consumer-side staging and arms delivery
// through the destination engine's own event machinery — cross arrivals
// are just events there, so merge order with local work is the event
// heap's (timestamp, sequence) order in every sync mode.
//
// Producer-shard methods (called only by the source's worker): FlushSpill
// retries moving spilled messages into the ring; SpillBound reports the
// arrival time of the oldest still-spilled message, bounding how far the
// producer may publish.
//
// Pending and SpillPending read only atomics and may be called from any
// shard — the group's quiescence scan uses them.
type CrossSource interface {
	Exchange
	Pending() bool
	SpillPending() bool
	FlushSpill() bool
	SpillBound() (time.Duration, bool)
}

// inEdge is a direct influence edge into a shard: messages from src reach
// this shard no earlier than pub[src] + la.
type inEdge struct {
	src int
	la  int64
}

// outEdge is the producer-side view of one registered exchange, used to
// flush and bound spills at publish points.
type outEdge struct {
	dst int
	la  int64 // the pair's minimum latency — what the consumer's horizon uses
	cs  CrossSource
}

// paddedClock is a published shard clock on its own cache line, so
// neighbor polls of one shard's clock do not false-share with another's.
type paddedClock struct {
	v atomic.Int64
	_ [56]byte
}

// shardSignal is the per-shard wake channel of the neighbor protocol: an
// epoch counter bumped by anyone who changes state this shard might be
// waiting on, plus a condition variable for waiters that exhausted the
// spin/yield ladder. The epoch is read before the waiter samples neighbor
// state, so a publish between sampling and parking cannot be missed.
type shardSignal struct {
	epoch  atomic.Uint64
	parked atomic.Bool
	mu     sync.Mutex
	cond   *sync.Cond
	spin   int
	_      [24]byte // keep adjacent signals off one cache line
}

// notify wakes shard id: bump its epoch, then — only if it is parked —
// take its mutex to order the broadcast against a concurrent Wait entry.
// The sequentially-consistent epoch bump before the parked load pairs with
// the waiter's parked store before its epoch re-check (Dekker-style), so
// either the waiter sees the new epoch or the notifier sees it parked.
func (g *Group) notify(id int) {
	s := &g.sigs[id]
	s.epoch.Add(1)
	if s.parked.Load() {
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty critical section orders the broadcast after any in-flight Wait entry
		s.cond.Broadcast()
	}
}

// notifyAll wakes every shard (termination, gmin updates, aborts).
func (g *Group) notifyAll() {
	for i := range g.sigs {
		g.notify(i)
	}
}

// neighborCapable reports whether every registered exchange names its
// producer and implements CrossSource — the preconditions of neighbor
// mode. Groups with pairless or legacy exchanges run the barrier protocol
// regardless of the configured SyncKind.
func (g *Group) neighborCapable() bool {
	if len(g.shards) < 2 || !g.hasExchanges() {
		return false
	}
	for _, mbs := range g.exchanges {
		for _, mb := range mbs {
			if mb.src < 0 {
				return false
			}
			if _, ok := mb.ex.(CrossSource); !ok {
				return false
			}
		}
	}
	return true
}

// setupNeighbor builds the per-run neighbor state: the direct edge sets
// (deterministically ordered by shard index — no map iteration), published
// clocks, wake signals, and each destination engine's intake. It also
// flips every mailbox into neighbor mode, which turns MarkPending into a
// no-op (ring occupancy replaces the dirty-count protocol).
func (g *Group) setupNeighbor() {
	n := len(g.shards)
	glob := int64(g.lookahead)

	// Direct-edge minimum latency matrix; math.MaxInt64 = no edge. The
	// consumer horizon and the producer spill cap must agree on each
	// pair's latency, so both read this matrix.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := range w[i] {
			w[i][j] = math.MaxInt64
		}
	}
	for dst, mbs := range g.exchanges {
		for _, mb := range mbs {
			ew := glob
			if d, ok := g.pairLA[pairKey{mb.src, dst}]; ok {
				ew = int64(d)
			}
			if ew <= 0 {
				panic("sim: shard group has exchanges but no lookahead")
			}
			if ew < w[mb.src][dst] {
				w[mb.src][dst] = ew
			}
		}
	}

	g.inEdges = make([][]inEdge, n)
	g.outEdges = make([][]outEdge, n)
	g.outNbrs = make([][]int, n)
	g.minInLA = make([]int64, n)
	g.inSrcs = make([][]CrossSource, n)
	g.inSrcIDs = make([][]int, n)
	for dst := 0; dst < n; dst++ {
		min := int64(math.MaxInt64)
		for src := 0; src < n; src++ {
			if w[src][dst] == math.MaxInt64 {
				continue
			}
			g.inEdges[dst] = append(g.inEdges[dst], inEdge{src: src, la: w[src][dst]})
			g.outNbrs[src] = append(g.outNbrs[src], dst)
			if w[src][dst] < min {
				min = w[src][dst]
			}
		}
		g.minInLA[dst] = min
		// Consumer-side exchange handles, in registration order — the order
		// round-top drains stage and arm arrivals, and hence the order
		// same-instant cross deliveries enter the destination's event heap.
		for _, mb := range g.exchanges[dst] {
			cs := mb.ex.(CrossSource)
			g.inSrcs[dst] = append(g.inSrcs[dst], cs)
			g.inSrcIDs[dst] = append(g.inSrcIDs[dst], mb.src)
			g.outEdges[mb.src] = append(g.outEdges[mb.src], outEdge{dst: dst, la: w[mb.src][dst], cs: cs})
		}
	}

	if len(g.pub) != n {
		g.pub = make([]paddedClock, n)
		g.sigs = make([]shardSignal, n)
		for i := range g.sigs {
			g.sigs[i].cond = sync.NewCond(&g.sigs[i].mu)
		}
	}
	spin := 16
	if runtime.GOMAXPROCS(0) >= n {
		spin = 1024
	}
	for i := range g.sigs {
		g.sigs[i].spin = spin
		g.pub[i].v.Store(0)
	}
	g.waiting.Store(0)
	g.gmin.Store(0)
	g.ndone.Store(false)
	for i := range g.prof {
		if len(g.prof[i].EdgeWait) != n {
			g.prof[i].EdgeWait = make([]time.Duration, n)
		}
	}
	for _, mbs := range g.exchanges {
		for _, mb := range mbs {
			mb.neighbor = true
		}
	}
}

// setupBarrier reverts neighbor-mode plumbing before a barrier-protocol
// run. A mailbox leaving neighbor mode is marked pending unconditionally:
// its ring may hold messages a previous neighbor run left unpublished or
// undrained beyond its limit, and the barrier protocol only drains marked
// mailboxes.
func (g *Group) setupBarrier() {
	for _, mbs := range g.exchanges {
		for _, mb := range mbs {
			if mb.neighbor {
				mb.neighbor = false
				mb.MarkPending()
			}
		}
	}
}

// runShardNeighbor is the per-shard worker loop of the neighbor protocol.
// Each round: snapshot the wake epoch, compute the horizon from direct
// in-neighbor clocks (lifted by the quiescence floor when one is set),
// drain in-rings into the engine as armed delivery events, publish own
// progress, then either run a window up to the horizon or wait for a
// neighbor to move.
func (g *Group) runShardNeighbor(id int, limit time.Duration) {
	e := g.shards[id]
	prof := &g.prof[id]
	sig := &g.sigs[id]
	stop := stopFor(limit)
	in := g.inEdges[id]
	srcs := g.inSrcs[id]
	srcIDs := g.inSrcIDs[id]
	out := g.outEdges[id]
	minIn := g.minInLA[id]
	for {
		if g.ndone.Load() {
			e.alignNow(limit)
			return
		}
		// The epoch snapshot precedes every neighbor-state read below: any
		// relevant change after this point bumps the epoch and aborts a
		// subsequent wait immediately.
		ep := sig.epoch.Load()

		// Horizon from direct in-neighbors; remember the binding edge for
		// the per-edge wait attribution.
		h := int64(math.MaxInt64)
		blockSrc := -1
		for _, ed := range in {
			if hv := satAdd(g.pub[ed.src].v.Load(), ed.la); hv < h {
				h, blockSrc = hv, ed.src
			}
		}
		floored := false
		if len(in) > 0 && minIn != math.MaxInt64 {
			if f := satAdd(g.gmin.Load(), minIn); f > h {
				h = f
				floored = true
			}
		}

		// Move ring traffic into the engine: drains stage published cells
		// and arm their delivery events, so the heap peek below already
		// covers cross arrivals. A producer stuck on a full ring is woken so
		// it can flush the freed space at its next publish point.
		for i, s := range srcs {
			if s.Pending() {
				s.Drain()
				prof.Drains++
				if s.SpillPending() {
					g.notify(srcIDs[i])
				}
			}
		}

		// Earliest pending work, cross arrivals included.
		t := noEvent
		if ev := e.peek(); ev != nil {
			t = int64(ev.at)
		}
		g.nextAt[id].Store(t)

		// Publish progress: nothing new can leave this shard before its next
		// event, nor cross an edge whose spill still hides messages. The
		// store is this shard's release edge for all ring pushes so far.
		p := t
		if h < p {
			p = h
		}
		for _, oe := range out {
			if !oe.cs.FlushSpill() {
				if b, ok := oe.cs.SpillBound(); ok {
					if c := int64(b) - oe.la; c < p {
						p = c
					}
				}
			}
		}
		if p > g.pub[id].v.Load() {
			g.pub[id].v.Store(p)
			for _, d := range g.outNbrs[id] {
				g.notify(d)
			}
		}

		bound := stop
		if h < int64(stop) {
			bound = time.Duration(h)
		}
		if t < int64(bound) {
			if floored {
				prof.FastForwards++
			}
			n0 := e.nsteps
			e.runWindow(bound)
			prof.Windows++
			if ev := e.nsteps - n0; ev > 0 {
				prof.Events += ev
			} else {
				prof.EmptyWindows++
			}
			continue
		}
		g.waitNeighbor(prof, sig, blockSrc, ep, limit)
	}
}

// waitNeighbor blocks a shard whose horizon has caught up with its work:
// spin briefly, yield for a while, then park on the shard's signal until a
// neighbor publishes, the quiescence floor moves, the run completes, or
// the group aborts. The n-th shard to block runs the quiescence scan. The
// wall-clock reads exist only for the profiler; nothing derived from them
// may feed virtual time.
//
//unetlint:allow nondeterminism wall-clock stall profiling only; never feeds virtual time or event order
func (g *Group) waitNeighbor(prof *ShardProfile, sig *shardSignal, blockSrc int, ep uint64, limit time.Duration) {
	t0 := time.Now()
	prof.Stalls++
	// The generation bump must precede the waiting increment: a scan that
	// sees waiting==n afterwards is guaranteed to also see this entry's
	// bump, so an escape/re-enter cycle can never restore waiting==n
	// without moving the generation (the ABA the scan guards against).
	g.waitGen.Add(1)
	if g.waiting.Add(1) == int32(len(g.shards)) {
		g.quiescentScan(limit)
	}
	for spins := 0; ; spins++ {
		if sig.epoch.Load() != ep || g.ndone.Load() {
			break
		}
		if g.aborted.Load() {
			g.waiting.Add(-1)
			panic("sim: peer shard failed")
		}
		if spins < sig.spin {
			continue
		}
		if spins < sig.spin+yieldBudget {
			runtime.Gosched()
			continue
		}
		sig.mu.Lock()
		sig.parked.Store(true)
		for sig.epoch.Load() == ep && !g.ndone.Load() && !g.aborted.Load() {
			sig.cond.Wait()
		}
		sig.parked.Store(false)
		sig.mu.Unlock()
	}
	g.waiting.Add(-1)
	d := time.Since(t0)
	prof.BarrierWait += d
	if blockSrc >= 0 {
		prof.EdgeWait[blockSrc] += d
	}
}

// quiescentScan runs when every shard is simultaneously blocked — the only
// situation where neighbor clocks alone cannot make progress. Under the
// scan mutex (re-verifying the all-blocked condition): if any ring still
// holds traffic, wake the parties and let the drain/flush resolve it;
// otherwise fold the global minimum next-event time. Beyond the limit (or
// absent) ⇒ the run is complete; otherwise it becomes the quiescence
// floor gmin, licensing every shard's horizon up to gmin + its minimum
// in-edge lookahead — any future message originates at an event ≥ gmin.
func (g *Group) quiescentScan(limit time.Duration) {
	g.scanMu.Lock()
	defer g.scanMu.Unlock()
	// Generation snapshot BEFORE the all-blocked check: any wait entry the
	// commit guard must detect then bumps the generation strictly between
	// this load and the guard's re-load.
	gen0 := g.waitGen.Load()
	if g.ndone.Load() || g.waiting.Load() != int32(len(g.shards)) {
		return
	}
	pending := false
	for dst := range g.inSrcs {
		for i, s := range g.inSrcs[dst] {
			if s.Pending() {
				pending = true
				g.notify(dst)
				if s.SpillPending() {
					g.notify(g.inSrcIDs[dst][i])
				}
			}
		}
	}
	if pending {
		return
	}
	m := noEvent
	for i := range g.nextAt {
		if v := g.nextAt[i].Load(); v < m {
			m = v
		}
	}
	// Re-verify all-blocked before committing. The entry check is only a
	// snapshot: a shard notified by an earlier publish may break out of its
	// wait concurrently with this scan, drain a ring, run a window (pushing
	// fresh cells the sweep above never saw), and even RE-ENTER the wait —
	// restoring waiting==n. The waiting re-load catches a shard still
	// mid-round (it decrements before touching any ring or clock); the
	// generation re-load catches the full escape/re-enter cycle, whose
	// entry bump lands strictly between gen0 and this load. If neither
	// changed, no shard left the wait during the scan, so the sweep and the
	// fold observed one frozen, consistent state. On abort the re-entering
	// shard's own waiting.Add(1)==n triggers a fresh scan, so no wakeup is
	// lost.
	if g.waiting.Load() != int32(len(g.shards)) || g.waitGen.Load() != gen0 {
		return
	}
	if m == noEvent || (limit >= 0 && m > int64(limit)) {
		g.ndone.Store(true)
		g.notifyAll()
		return
	}
	if m > g.gmin.Load() {
		g.gmin.Store(m)
		g.notifyAll()
		return
	}
	// m == gmin: the commit that set this floor already woke every shard,
	// and the floor makes the m-owner runnable (its horizon is at least
	// gmin + its min in-edge lookahead > m = its next event). This scan ran
	// in the post-commit transient, before the owner was scheduled; its
	// wakeup is in flight, so stay SILENT. Notifying here is not merely
	// redundant — it bumps this scanner's own epoch, making it break out of
	// its wait instantly, re-enter, and scan again: a self-sustaining hot
	// loop that starves the runnable shard of the CPU for a full quantum.
}
