package sim

import (
	"testing"
	"time"
)

// The BenchmarkEngine_* family tracks the engine's wall-clock fast path:
// steady-state event scheduling, timer cancellation, and the process
// context switch. All report allocations — the pooled event arena and the
// reusable wait records are supposed to make every one of these 0 allocs/op
// in steady state.

// BenchmarkEngine_ScheduleFire measures one-event-at-a-time schedule+fire
// throughput through the pooled arena (alloc, heap push, pop, recycle).
func BenchmarkEngine_ScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, fn)
		}
	}
	e.After(time.Microsecond, fn)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_ScheduleFireArg is the closure-free variant: a static
// callback with its state passed through the event's arg slot.
func BenchmarkEngine_ScheduleFireArg(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	type st struct {
		e *Engine
		n int
	}
	s := &st{e: e}
	var fn func(any)
	fn = func(a any) {
		s := a.(*st)
		s.n++
		if s.n < b.N {
			s.e.AfterArg(time.Microsecond, fn, s)
		}
	}
	e.AfterArg(time.Microsecond, fn, s)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_TimerCancel schedules far-future timers and cancels them
// immediately: the lazy-compaction path that keeps canceled entries from
// accumulating in the heap.
func BenchmarkEngine_TimerCancel(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(time.Duration(i)*time.Second, nop)
		tm.Cancel()
	}
	if e.PendingEvents() > 64 {
		b.Fatalf("canceled timers accumulated: %d pending", e.PendingEvents())
	}
}

// BenchmarkEngine_ProcContextSwitch bounces a bounded FIFO between two
// processes: each element is two blocking handoffs (full → put wakes get,
// empty → get wakes put), the simulator's equivalent of a context switch.
func BenchmarkEngine_ProcContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	defer e.Shutdown()
	q := NewFIFO[int](1)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_SleepResume measures the pooled resume event: one process
// sleeping in a tight loop.
func BenchmarkEngine_SleepResume(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	defer e.Shutdown()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}
