package sim

import (
	"testing"
	"time"
)

// The BenchmarkEngine_* family tracks the engine's wall-clock fast path:
// steady-state event scheduling, timer cancellation, and the process
// context switch. All report allocations — the pooled event arena and the
// reusable wait records are supposed to make every one of these 0 allocs/op
// in steady state.

// BenchmarkEngine_ScheduleFire measures one-event-at-a-time schedule+fire
// throughput through the pooled arena (alloc, heap push, pop, recycle).
func BenchmarkEngine_ScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, fn)
		}
	}
	e.After(time.Microsecond, fn)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_ScheduleFireArg is the closure-free variant: a static
// callback with its state passed through the event's arg slot.
func BenchmarkEngine_ScheduleFireArg(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	type st struct {
		e *Engine
		n int
	}
	s := &st{e: e}
	var fn func(any)
	fn = func(a any) {
		s := a.(*st)
		s.n++
		if s.n < b.N {
			s.e.AfterArg(time.Microsecond, fn, s)
		}
	}
	e.AfterArg(time.Microsecond, fn, s)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_TimerCancel schedules far-future timers and cancels them
// immediately: the lazy-compaction path that keeps canceled entries from
// accumulating in the heap.
func BenchmarkEngine_TimerCancel(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(time.Duration(i)*time.Second, nop)
		tm.Cancel()
	}
	if e.PendingEvents() > 64 {
		b.Fatalf("canceled timers accumulated: %d pending", e.PendingEvents())
	}
}

// BenchmarkEngine_ProcContextSwitch bounces a bounded FIFO between two
// processes: each element is two blocking handoffs (full → put wakes get,
// empty → get wakes put), the simulator's equivalent of a context switch.
func BenchmarkEngine_ProcContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	defer e.Shutdown()
	q := NewFIFO[int](1)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngine_SleepResume measures the pooled resume event: one process
// sleeping in a tight loop.
func BenchmarkEngine_SleepResume(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	defer e.Shutdown()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// --- far-horizon scheduler: 4-ary heap vs hierarchical timer wheel ---

// benchScheduler measures steady-state schedule+fire throughput while a
// constant population of `pending` timers stays queued: every fired event
// re-arms itself with a jittered far deadline, so the structure holds
// `pending` entries throughout. The heap pays O(log pending) per
// operation; the wheel pays amortized O(1), which is the whole point of
// BenchmarkScheduler_*1M.
func benchScheduler(b *testing.B, kind SchedulerKind, pending int) {
	b.ReportAllocs()
	e := NewWithScheduler(1, kind)
	const spread = 100 * time.Millisecond
	gap := spread / time.Duration(pending)
	if gap <= 0 {
		gap = 1
	}
	fired := 0
	x := uint64(1)
	var fn func(any)
	fn = func(any) {
		fired++
		x = x*6364136223846793005 + 1442695040888963407
		// Log-uniform re-arm horizon, 1µs .. ~65ms: a hot subset of timers
		// cycles on short deadlines while the bulk of the population parks
		// far out — the million-idle-timeouts shape the wheel exists for.
		d := time.Microsecond << ((x >> 32) % 17)
		e.AfterArg(d+time.Duration(x%1000), fn, nil)
	}
	for i := 0; i < pending; i++ {
		e.AfterArg(time.Duration(i+1)*gap, fn, nil)
	}
	b.ResetTimer()
	for fired < b.N {
		e.RunUntil(e.Now() + spread/64)
	}
}

func BenchmarkScheduler_Heap1k(b *testing.B)    { benchScheduler(b, SchedulerHeap, 1_000) }
func BenchmarkScheduler_Wheel1k(b *testing.B)   { benchScheduler(b, SchedulerWheel, 1_000) }
func BenchmarkScheduler_Heap100k(b *testing.B)  { benchScheduler(b, SchedulerHeap, 100_000) }
func BenchmarkScheduler_Wheel100k(b *testing.B) { benchScheduler(b, SchedulerWheel, 100_000) }
func BenchmarkScheduler_Heap1M(b *testing.B)    { benchScheduler(b, SchedulerHeap, 1_000_000) }
func BenchmarkScheduler_Wheel1M(b *testing.B)   { benchScheduler(b, SchedulerWheel, 1_000_000) }

// benchSchedulerCancel measures the arm-then-cancel timeout pattern that
// dominates the UAM/TCP data path: with `pending` idle timers parked far
// out, each op arms one more timeout and cancels it before it can fire
// (the common case — I/O completes first). The wheel cancels in O(1)
// (unlink and recycle, independent of population); the heap-only
// scheduler pays an O(log pending) sift on every arm plus an amortized
// O(pending) compaction sweep once canceled entries outnumber live ones.
func benchSchedulerCancel(b *testing.B, kind SchedulerKind, pending int) {
	b.ReportAllocs()
	e := NewWithScheduler(1, kind)
	nop := func() {}
	for i := 0; i < pending; i++ {
		e.After(time.Hour+time.Duration(i), nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Minute+time.Duration(i&4095), nop).Cancel()
	}
}

func BenchmarkSchedulerCancel_Heap1k(b *testing.B)    { benchSchedulerCancel(b, SchedulerHeap, 1_000) }
func BenchmarkSchedulerCancel_Wheel1k(b *testing.B)   { benchSchedulerCancel(b, SchedulerWheel, 1_000) }
func BenchmarkSchedulerCancel_Heap100k(b *testing.B)  { benchSchedulerCancel(b, SchedulerHeap, 100_000) }
func BenchmarkSchedulerCancel_Wheel100k(b *testing.B) { benchSchedulerCancel(b, SchedulerWheel, 100_000) }
func BenchmarkSchedulerCancel_Heap1M(b *testing.B)    { benchSchedulerCancel(b, SchedulerHeap, 1_000_000) }
func BenchmarkSchedulerCancel_Wheel1M(b *testing.B)   { benchSchedulerCancel(b, SchedulerWheel, 1_000_000) }
