package sim

import "sync/atomic"

// SPSC is a bounded lock-free single-producer/single-consumer ring, the
// transport under cross-shard mailboxes in the neighbor-synchronized window
// protocol (see neighbor.go). The producing shard pushes messages as it
// runs its window; the consuming shard pops them at its own round
// boundaries without stopping the producer — no lock, no barrier, no
// syscall on the common path.
//
// Ownership contract: exactly one goroutine may call the producer methods
// (Push, FlushSpill, SpillHead) and exactly one may call the consumer
// methods (Pop). Push and Pop carry reentrance guards that panic on a
// detected second producer or consumer — a cheap tripwire for the single
// writer discipline the lock-freedom rests on. Pending and SpillLen read
// only atomics and are safe from any goroutine (the termination scan uses
// them).
//
// Memory ordering: the producer writes the slot, then advances tail; the
// consumer reads head/tail, then the slot. Go's sync/atomic operations are
// sequentially consistent, so the tail advance is the release edge that
// publishes the slot contents and the consumer's tail load is the matching
// acquire — the ring is race-detector-clean under concurrent push/pop.
//
// When the ring is full, Push spills into a producer-private overflow
// slice instead of blocking: a producer that waited for ring space could
// deadlock against a consumer waiting for the producer's horizon to
// advance. Spilled messages stay invisible to the consumer until the
// producer moves them into the ring with FlushSpill (at its next publish
// point); the window protocol caps the producer's published horizon while
// a spill is outstanding so the consumer never advances past messages it
// cannot yet see.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // next slot to pop; advanced only by the consumer
	tail atomic.Uint64 // next slot to push; advanced only by the producer

	// spill is the producer-private overflow, drained FIFO ahead of any new
	// push so order is preserved. spillOff indexes the first unflushed entry;
	// spillLen mirrors the outstanding count for cross-goroutine observers.
	spill    []T
	spillOff int
	spillLen atomic.Int32

	// inPush/inPop detect a second concurrent producer or consumer.
	inPush atomic.Bool
	inPop  atomic.Bool
}

// NewSPSC returns a ring with capacity rounded up to a power of two (at
// least 8).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity (spill excluded).
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Push appends v, reporting whether it reached the ring: false means the
// ring was full and v went to the producer-private spill (after an attempt
// to flush any earlier spill first, so FIFO order holds). Producer only.
func (q *SPSC[T]) Push(v T) bool {
	if !q.inPush.CompareAndSwap(false, true) {
		panic("sim: concurrent SPSC.Push; the ring has exactly one producer")
	}
	ok := (q.spillLen.Load() == 0 || q.flushLocked()) && q.tryPush(v)
	if !ok {
		q.spill = append(q.spill, v)
		q.spillLen.Store(int32(len(q.spill) - q.spillOff))
	}
	q.inPush.Store(false)
	return ok
}

func (q *SPSC[T]) tryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// FlushSpill moves spilled entries into the ring in order, reporting
// whether the spill is now empty. Producer only; called at the producer's
// publish points so backpressure resolves as soon as the consumer drains.
func (q *SPSC[T]) FlushSpill() bool {
	if q.spillLen.Load() == 0 {
		return true
	}
	if !q.inPush.CompareAndSwap(false, true) {
		panic("sim: concurrent SPSC.FlushSpill; the ring has exactly one producer")
	}
	ok := q.flushLocked()
	q.inPush.Store(false)
	return ok
}

func (q *SPSC[T]) flushLocked() bool {
	var zero T
	for q.spillOff < len(q.spill) {
		if !q.tryPush(q.spill[q.spillOff]) {
			q.spillLen.Store(int32(len(q.spill) - q.spillOff))
			return false
		}
		q.spill[q.spillOff] = zero
		q.spillOff++
	}
	q.spill = q.spill[:0]
	q.spillOff = 0
	q.spillLen.Store(0)
	return true
}

// SpillHead returns the oldest spilled entry without removing it. Producer
// only (the spill is producer-private state).
func (q *SPSC[T]) SpillHead() (T, bool) {
	var zero T
	if q.spillOff >= len(q.spill) {
		return zero, false
	}
	return q.spill[q.spillOff], true
}

// Pop removes the oldest ring entry. Consumer only; it never touches the
// spill — spilled entries become poppable only after the producer flushes
// them.
func (q *SPSC[T]) Pop() (T, bool) {
	if !q.inPop.CompareAndSwap(false, true) {
		panic("sim: concurrent SPSC.Pop; the ring has exactly one consumer")
	}
	var zero T
	h := q.head.Load()
	if h == q.tail.Load() {
		q.inPop.Store(false)
		return zero, false
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero
	q.head.Store(h + 1)
	q.inPop.Store(false)
	return v, true
}

// PopQuiescent removes the oldest entry, taking from the producer-private
// spill once the ring is empty. Callable only when the producer is
// provably stopped — the barrier protocol drains at a window barrier,
// where the barrier crossing itself orders the producer's writes before
// the consumer's reads.
func (q *SPSC[T]) PopQuiescent() (T, bool) {
	if v, ok := q.Pop(); ok {
		return v, true
	}
	var zero T
	if q.spillOff >= len(q.spill) {
		return zero, false
	}
	v := q.spill[q.spillOff]
	q.spill[q.spillOff] = zero
	q.spillOff++
	if q.spillOff == len(q.spill) {
		q.spill = q.spill[:0]
		q.spillOff = 0
	}
	q.spillLen.Store(int32(len(q.spill) - q.spillOff))
	return v, true
}

// Pending reports whether any entry is outstanding — ring or spill. Safe
// from any goroutine; the group's quiescence scan relies on it.
func (q *SPSC[T]) Pending() bool {
	return q.tail.Load() != q.head.Load() || q.spillLen.Load() > 0
}

// SpillLen reports the outstanding spill count. Safe from any goroutine.
func (q *SPSC[T]) SpillLen() int { return int(q.spillLen.Load()) }
