package sim

import (
	"testing"
	"time"
)

const us = time.Microsecond

func TestClockStartsAtZero(t *testing.T) {
	e := New(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.After(3*us, func() { got = append(got, 3) })
	e.After(1*us, func() { got = append(got, 1) })
	e.After(2*us, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*us {
		t.Fatalf("final time = %v, want 3µs", e.Now())
	}
}

func TestSameTimeFIFOOrder(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*us, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(1*us, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestAtClampsPast(t *testing.T) {
	e := New(1)
	e.After(10*us, func() {
		e.At(2*us, func() {
			if e.Now() != 10*us {
				t.Errorf("past event fired at %v, want clamp to 10µs", e.Now())
			}
		})
	})
	e.Run()
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var at1, at2 time.Duration
	e.Spawn("p", func(p *Proc) {
		at1 = p.Now()
		p.Sleep(7 * us)
		at2 = p.Now()
	})
	e.Run()
	if at1 != 0 || at2 != 7*us {
		t.Fatalf("times = %v, %v; want 0, 7µs", at1, at2)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * us)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * us)
		trace = append(trace, "b1")
		p.Sleep(2 * us)
		trace = append(trace, "b3")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var c Cond
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Wait(&c)
			woken++
		})
	}
	e.After(1*us, func() { c.Signal() })
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	if c.Waiting() != 2 {
		t.Fatalf("Waiting() = %d, want 2", c.Waiting())
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var c Cond
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Wait(&c)
			woken++
		})
	}
	e.After(1*us, func() { c.Broadcast() })
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestWaitTimeoutTimesOut(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var c Cond
	var signaled bool
	var woke time.Duration
	e.Spawn("p", func(p *Proc) {
		signaled = p.WaitTimeout(&c, 5*us)
		woke = p.Now()
	})
	e.Run()
	if signaled {
		t.Fatal("WaitTimeout reported signal, want timeout")
	}
	if woke != 5*us {
		t.Fatalf("woke at %v, want 5µs", woke)
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var c Cond
	var signaled bool
	e.Spawn("p", func(p *Proc) {
		signaled = p.WaitTimeout(&c, 5*us)
	})
	e.After(2*us, func() { c.Signal() })
	e.Run()
	if !signaled {
		t.Fatal("WaitTimeout reported timeout, want signal")
	}
	if e.Now() != 2*us {
		// The signaled wake cancels the pending timeout, so the simulation
		// goes quiescent at the signal time instead of idling to 5µs.
		t.Fatalf("final time = %v, want 2µs", e.Now())
	}
}

func TestFIFOBlockingHandoff(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	q := NewFIFO[int](0)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1 * us)
			q.Put(p, i*10)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got = %v, want [10 20 30]", got)
	}
}

func TestFIFOBoundedBackpressure(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	q := NewFIFO[int](2)
	var produced, consumed int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i) // blocks once the 2-slot queue fills
			produced++
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * us)
			_ = q.Get(p)
			consumed++
		}
	})
	e.Run()
	if produced != 5 || consumed != 5 {
		t.Fatalf("produced=%d consumed=%d, want 5/5", produced, consumed)
	}
}

func TestFIFOTryPutOverflowDrops(t *testing.T) {
	q := NewFIFO[int](2)
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("TryPut rejected with room available")
	}
	if q.TryPut(3) {
		t.Fatal("TryPut accepted into full queue")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops() = %d, want 1", q.Drops())
	}
	if q.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", q.Len())
	}
}

func TestFIFOTryGetEmpty(t *testing.T) {
	q := NewFIFO[string](0)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.TryPut("x")
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v; want \"x\", true", v, ok)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := New(1)
	fired := 0
	e.After(1*us, func() { fired++ })
	e.After(10*us, func() { fired++ })
	at := e.RunUntil(5 * us)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if at != 5*us {
		t.Fatalf("RunUntil returned %v, want 5µs", at)
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("after Run fired = %d, want 2", fired)
	}
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	e := New(1)
	var c Cond
	cleaned := false
	e.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(&c) // never signaled
	})
	e.Run()
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Shutdown")
	}
}

func TestShutdownBeforeStart(t *testing.T) {
	e := New(1)
	ran := false
	e.Spawn("never", func(p *Proc) { ran = true })
	e.Shutdown() // proc never started; must not deadlock
	if ran {
		t.Fatal("process ran despite shutdown before start")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New(42)
		defer e.Shutdown()
		var ts []time.Duration
		q := NewFIFO[int](4)
		e.Spawn("producer", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(time.Duration(e.Rand().Intn(100)) * us)
				q.Put(p, i)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 50; i++ {
				_ = q.Get(p)
				ts = append(ts, p.Now())
			}
		})
		e.Run()
		return ts
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d, %d; want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNestedSpawnFromProc(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	childRan := false
	e.Spawn("parent", func(p *Proc) {
		e.Spawn("child", func(c *Proc) {
			c.Sleep(1 * us)
			childRan = true
		})
		p.Sleep(5 * us)
	})
	e.Run()
	if !childRan {
		t.Fatal("child spawned from process did not run")
	}
}

func TestTracer(t *testing.T) {
	e := New(1)
	defer e.Shutdown()
	var msgs []string
	e.SetTracer(func(at time.Duration, who, msg string) { msgs = append(msgs, who+":"+msg) })
	e.Spawn("p", func(p *Proc) { p.Logf("hello %d", 7) })
	e.Run()
	if len(msgs) != 1 || msgs[0] != "p:hello 7" {
		t.Fatalf("msgs = %v", msgs)
	}
}

func TestWaitTimeoutCleansUpWaiters(t *testing.T) {
	// Timed-out waiters must not accumulate on the condition (a long
	// polling loop would otherwise leak entries).
	e := New(1)
	defer e.Shutdown()
	var c Cond
	e.Spawn("poller", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.WaitTimeout(&c, 1*us)
		}
	})
	e.Run()
	if n := len(c.waiters); n != 0 {
		t.Fatalf("%d stale waiters left on the condition", n)
	}
}

func TestCancelAfterFireReportsNotPending(t *testing.T) {
	e := New(1)
	tm := e.After(1*us, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire reported still-pending")
	}
}

func TestRunUntilNeverRewindsClock(t *testing.T) {
	e := New(1)
	e.After(10*us, func() {})
	e.Run()
	if got := e.RunUntil(2 * us); got != 10*us {
		t.Fatalf("RunUntil rewound the clock to %v", got)
	}
}

// TestSchedulerSteadyStateAllocs gates the zero-allocation contract of the
// steady-state scheduling path under both scheduler kinds: schedule near
// (heap) and far (wheel), cancel, and fire — all through the pooled arena
// with no per-operation allocation once warm.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind SchedulerKind
	}{{"wheel", SchedulerWheel}, {"heap", SchedulerHeap}} {
		e := NewWithScheduler(1, tc.kind)
		nop := func() {}
		// Warm the arena, heap slice and wheel slots to capacity.
		for i := 0; i < 256; i++ {
			e.After(time.Duration(i+1)*time.Millisecond, nop).Cancel()
			e.After(time.Duration(i+1)*time.Microsecond, nop)
		}
		e.Run()
		allocs := testing.AllocsPerRun(200, func() {
			e.After(time.Microsecond, nop)    // near horizon → heap
			e.After(50*time.Millisecond, nop) // far horizon → wheel
			tm := e.After(time.Second, nop)
			tm.Cancel() // wheel cancel: unlink + immediate recycle
			e.RunUntil(e.Now() + 100*time.Millisecond)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
