package sim

// FIFO is a bounded or unbounded queue connecting simulated producers and
// consumers. Processes block on Put when a bounded queue is full and on Get
// when it is empty; callbacks (non-process contexts such as wire-delivery
// events) use TryPut/TryGet, whose failure models hardware FIFO overflow.
type FIFO[T any] struct {
	items    []T
	capacity int // 0 means unbounded
	nonEmpty Cond
	nonFull  Cond
	drops    uint64
}

// NewFIFO returns a queue holding at most capacity items; capacity ≤ 0
// means unbounded.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &FIFO[T]{capacity: capacity}
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) }

// Cap returns the capacity (0 = unbounded).
func (q *FIFO[T]) Cap() int { return q.capacity }

// Drops returns how many TryPut calls failed because the queue was full.
func (q *FIFO[T]) Drops() uint64 { return q.drops }

func (q *FIFO[T]) full() bool { return q.capacity > 0 && len(q.items) >= q.capacity }

// TryPut appends v if there is room and reports whether it was accepted.
// A rejected item counts as a drop.
func (q *FIFO[T]) TryPut(v T) bool {
	if q.full() {
		q.drops++
		return false
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
	return true
}

// Put appends v, blocking the process while the queue is full.
func (q *FIFO[T]) Put(p *Proc, v T) {
	for q.full() {
		p.Wait(&q.nonFull)
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
}

// TryGet removes and returns the oldest item, if any.
func (q *FIFO[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	q.nonFull.Signal()
	return v, true
}

// Get removes and returns the oldest item, blocking the process while the
// queue is empty.
func (q *FIFO[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		p.Wait(&q.nonEmpty)
	}
	v, _ := q.TryGet()
	return v
}

// NotEmpty exposes the condition signaled when an item arrives, for callers
// that multiplex waits across several queues.
func (q *FIFO[T]) NotEmpty() *Cond { return &q.nonEmpty }
