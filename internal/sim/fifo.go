package sim

// FIFO is a bounded or unbounded queue connecting simulated producers and
// consumers. Processes block on Put when a bounded queue is full and on Get
// when it is empty; callbacks (non-process contexts such as wire-delivery
// events) use TryPut/TryGet, whose failure models hardware FIFO overflow.
//
// Storage is a power-of-two ring buffer: steady-state producer/consumer
// traffic allocates nothing once the ring has grown to the high-water mark.
type FIFO[T any] struct {
	ring     []T // len(ring) is 0 or a power of two
	head     int // index of the oldest element
	n        int // number of queued elements
	capacity int // 0 means unbounded
	nonEmpty Cond
	nonFull  Cond
	drops    uint64
}

// NewFIFO returns a queue holding at most capacity items; capacity ≤ 0
// means unbounded.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &FIFO[T]{capacity: capacity}
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return q.n }

// Cap returns the capacity (0 = unbounded).
func (q *FIFO[T]) Cap() int { return q.capacity }

// Drops returns how many TryPut calls failed because the queue was full.
func (q *FIFO[T]) Drops() uint64 { return q.drops }

func (q *FIFO[T]) full() bool { return q.capacity > 0 && q.n >= q.capacity }

// push appends v, growing the ring if necessary.
func (q *FIFO[T]) push(v T) {
	if q.n == len(q.ring) {
		grown := make([]T, max(4, 2*len(q.ring)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
		}
		q.ring = grown
		q.head = 0
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = v
	q.n++
}

// TryPut appends v if there is room and reports whether it was accepted.
// A rejected item counts as a drop.
func (q *FIFO[T]) TryPut(v T) bool {
	if q.full() {
		q.drops++
		return false
	}
	q.push(v)
	q.nonEmpty.Signal()
	return true
}

// Put appends v, blocking the process while the queue is full.
func (q *FIFO[T]) Put(p *Proc, v T) {
	for q.full() {
		p.Wait(&q.nonFull)
	}
	q.push(v)
	q.nonEmpty.Signal()
}

// TryGet removes and returns the oldest item, if any.
func (q *FIFO[T]) TryGet() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.ring[q.head]
	q.ring[q.head] = zero
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	q.nonFull.Signal()
	return v, true
}

// Get removes and returns the oldest item, blocking the process while the
// queue is empty.
func (q *FIFO[T]) Get(p *Proc) T {
	for q.n == 0 {
		p.Wait(&q.nonEmpty)
	}
	v, _ := q.TryGet()
	return v
}

// NotEmpty exposes the condition signaled when an item arrives, for callers
// that multiplex waits across several queues.
func (q *FIFO[T]) NotEmpty() *Cond { return &q.nonEmpty }
