package sim

import (
	"testing"
	"time"
)

// TestTimerCancelReuseAtSameTimestamp is the regression test for the pooled
// arena's generation check under lazy cancel compaction: canceling more
// than half the queue triggers a wholesale compaction that recycles the
// canceled entries; new timers scheduled at the *same* timestamp then reuse
// those exact event structs. A stale Timer handle held across the recycle
// must report not-pending and must not cancel the reincarnated event — the
// generation check wins over heap position every time.
func TestTimerCancelReuseAtSameTimestamp(t *testing.T) {
	e := New(1)
	const at = time.Millisecond
	const n = 100
	fired := make(map[int]bool)
	order := []int{}

	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = e.At(at, func() { fired[i] = true; order = append(order, i) })
	}
	// Cancel 80 of 100: compaction triggers as soon as canceled entries
	// outnumber live ones (needs ≥ 64 queued), well before the last Cancel.
	for i := 0; i < 80; i++ {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel %d reported not-pending on a pending timer", i)
		}
	}
	if e.PendingEvents() >= n {
		t.Fatalf("compaction never ran: %d entries still queued", e.PendingEvents())
	}

	// Reuse: these allocations come out of the arena free list — the very
	// structs the canceled timers still point at — at the same timestamp.
	for i := 0; i < 80; i++ {
		i := i
		e.At(at, func() { fired[n+i] = true; order = append(order, n+i) })
	}
	// The stale handles point at recycled (and now re-armed) events. Their
	// generation is old: Cancel must be a no-op on the new events.
	for i := 0; i < 80; i++ {
		if timers[i].Cancel() {
			t.Fatalf("stale Cancel %d claimed to cancel a reincarnated event", i)
		}
	}
	// Canceling an already-canceled (or fired) timer again stays false.
	if timers[0].Cancel() {
		t.Fatal("double Cancel reported pending")
	}

	e.Run()
	if len(order) != 100 {
		t.Fatalf("%d events fired, want 100 (20 survivors + 80 reused)", len(order))
	}
	// Survivors fire first (older seq), in scheduling order; then the
	// reused timers in their scheduling order.
	for k := 0; k < 20; k++ {
		if order[k] != 80+k {
			t.Fatalf("position %d fired id %d, want survivor %d", k, order[k], 80+k)
		}
	}
	for k := 0; k < 80; k++ {
		if order[20+k] != n+k {
			t.Fatalf("position %d fired id %d, want reused %d", 20+k, order[20+k], n+k)
		}
	}
	for i := 80; i < n; i++ {
		if !fired[i] {
			t.Fatalf("survivor %d never fired", i)
		}
	}
}

// TestTimerCompactionPreservesSameTimestampOrder forces a compaction (which
// re-heapifies the live entries) in the middle of a same-timestamp batch
// and checks that the surviving events still fire in scheduling order.
func TestTimerCompactionPreservesSameTimestampOrder(t *testing.T) {
	e := New(1)
	const at = time.Millisecond
	var order []int
	var timers []Timer
	for i := 0; i < 128; i++ {
		i := i
		timers = append(timers, e.At(at, func() { order = append(order, i) }))
	}
	// Cancel every even-indexed timer: 64 canceled vs 64 live triggers the
	// lazy compaction threshold exactly once the count tips over.
	for i := 0; i < 128; i += 2 {
		timers[i].Cancel()
	}
	e.Run()
	if len(order) != 64 {
		t.Fatalf("%d events fired, want 64", len(order))
	}
	for k, id := range order {
		if id != 2*k+1 {
			t.Fatalf("position %d fired id %d, want %d (scheduling order)", k, id, 2*k+1)
		}
	}
}

// TestAfterZeroOrdering pins the After(0) contract: a zero-delay callback
// scheduled from within a callback fires at the same virtual time but after
// every event already queued for that instant, in scheduling order.
func TestAfterZeroOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.At(time.Microsecond, func() {
		order = append(order, "first")
		e.After(0, func() { order = append(order, "zero-a") })
		e.After(0, func() { order = append(order, "zero-b") })
	})
	e.At(time.Microsecond, func() { order = append(order, "second") })
	end := e.Run()
	want := []string{"first", "second", "zero-a", "zero-b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != time.Microsecond {
		t.Fatalf("After(0) advanced the clock: end = %v", end)
	}
}

// TestAfterZeroResumeOrdering pins the same-instant ordering between a
// process resume and a callback: resume events take their sequence number
// when Sleep runs, not when the process was spawned. Here the callback is
// queued for T before the process (started at t=0) calls Sleep, so at T the
// callback fires first — scheduling order, not creation order.
func TestAfterZeroResumeOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Microsecond) // resume seq assigned here, at t=0, after cb's
		order = append(order, "proc")
	})
	e.At(time.Microsecond, func() { order = append(order, "cb") })
	e.Run()
	if len(order) != 2 || order[0] != "cb" || order[1] != "proc" {
		t.Fatalf("order = %v, want [cb proc] (seq assigned at Sleep time)", order)
	}
}
