package sim

import (
	"testing"
	"time"
)

// TestTimerCancelReuseAtSameTimestamp is the regression test for the pooled
// arena's generation check under lazy cancel compaction: canceling more
// than half the queue triggers a wholesale compaction that recycles the
// canceled entries; new timers scheduled at the *same* timestamp then reuse
// those exact event structs. A stale Timer handle held across the recycle
// must report not-pending and must not cancel the reincarnated event — the
// generation check wins over heap position every time.
func TestTimerCancelReuseAtSameTimestamp(t *testing.T) {
	e := New(1)
	const at = time.Millisecond
	const n = 100
	fired := make(map[int]bool)
	order := []int{}

	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = e.At(at, func() { fired[i] = true; order = append(order, i) })
	}
	// Cancel 80 of 100: compaction triggers as soon as canceled entries
	// outnumber live ones (needs ≥ 64 queued), well before the last Cancel.
	for i := 0; i < 80; i++ {
		if !timers[i].Cancel() {
			t.Fatalf("Cancel %d reported not-pending on a pending timer", i)
		}
	}
	if e.PendingEvents() >= n {
		t.Fatalf("compaction never ran: %d entries still queued", e.PendingEvents())
	}

	// Reuse: these allocations come out of the arena free list — the very
	// structs the canceled timers still point at — at the same timestamp.
	for i := 0; i < 80; i++ {
		i := i
		e.At(at, func() { fired[n+i] = true; order = append(order, n+i) })
	}
	// The stale handles point at recycled (and now re-armed) events. Their
	// generation is old: Cancel must be a no-op on the new events.
	for i := 0; i < 80; i++ {
		if timers[i].Cancel() {
			t.Fatalf("stale Cancel %d claimed to cancel a reincarnated event", i)
		}
	}
	// Canceling an already-canceled (or fired) timer again stays false.
	if timers[0].Cancel() {
		t.Fatal("double Cancel reported pending")
	}

	e.Run()
	if len(order) != 100 {
		t.Fatalf("%d events fired, want 100 (20 survivors + 80 reused)", len(order))
	}
	// Survivors fire first (older seq), in scheduling order; then the
	// reused timers in their scheduling order.
	for k := 0; k < 20; k++ {
		if order[k] != 80+k {
			t.Fatalf("position %d fired id %d, want survivor %d", k, order[k], 80+k)
		}
	}
	for k := 0; k < 80; k++ {
		if order[20+k] != n+k {
			t.Fatalf("position %d fired id %d, want reused %d", 20+k, order[20+k], n+k)
		}
	}
	for i := 80; i < n; i++ {
		if !fired[i] {
			t.Fatalf("survivor %d never fired", i)
		}
	}
}

// TestTimerCompactionPreservesSameTimestampOrder forces a compaction (which
// re-heapifies the live entries) in the middle of a same-timestamp batch
// and checks that the surviving events still fire in scheduling order.
func TestTimerCompactionPreservesSameTimestampOrder(t *testing.T) {
	e := New(1)
	const at = time.Millisecond
	var order []int
	var timers []Timer
	for i := 0; i < 128; i++ {
		i := i
		timers = append(timers, e.At(at, func() { order = append(order, i) }))
	}
	// Cancel every even-indexed timer: 64 canceled vs 64 live triggers the
	// lazy compaction threshold exactly once the count tips over.
	for i := 0; i < 128; i += 2 {
		timers[i].Cancel()
	}
	e.Run()
	if len(order) != 64 {
		t.Fatalf("%d events fired, want 64", len(order))
	}
	for k, id := range order {
		if id != 2*k+1 {
			t.Fatalf("position %d fired id %d, want %d (scheduling order)", k, id, 2*k+1)
		}
	}
}

// TestAfterZeroOrdering pins the After(0) contract: a zero-delay callback
// scheduled from within a callback fires at the same virtual time but after
// every event already queued for that instant, in scheduling order.
func TestAfterZeroOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.At(time.Microsecond, func() {
		order = append(order, "first")
		e.After(0, func() { order = append(order, "zero-a") })
		e.After(0, func() { order = append(order, "zero-b") })
	})
	e.At(time.Microsecond, func() { order = append(order, "second") })
	end := e.Run()
	want := []string{"first", "second", "zero-a", "zero-b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != time.Microsecond {
		t.Fatalf("After(0) advanced the clock: end = %v", end)
	}
}

// TestAfterZeroResumeOrdering pins the same-instant ordering between a
// process resume and a callback: resume events take their sequence number
// when Sleep runs, not when the process was spawned. Here the callback is
// queued for T before the process (started at t=0) calls Sleep, so at T the
// callback fires first — scheduling order, not creation order.
func TestAfterZeroResumeOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Microsecond) // resume seq assigned here, at t=0, after cb's
		order = append(order, "proc")
	})
	e.At(time.Microsecond, func() { order = append(order, "cb") })
	e.Run()
	if len(order) != 2 || order[0] != "cb" || order[1] != "proc" {
		t.Fatalf("order = %v, want [cb proc] (seq assigned at Sleep time)", order)
	}
}

// --- hierarchical timer wheel edge cases ---

// wheelOf returns the engine's wheel, skipping the test when the engine is
// heap-only.
func wheelOf(t *testing.T, e *Engine) *wheel {
	t.Helper()
	if e.wheel == nil {
		t.Fatal("engine built without a wheel")
	}
	return e.wheel
}

// TestWheelBucketAndCascadeBoundaries schedules events exactly on level-0
// tick boundaries and on the level-0→level-1 cascade boundary (tick 64,
// where the XOR level rule first promotes an event to a higher level) and
// pins exact firing times and (at, seq) order across the cascade.
func TestWheelBucketAndCascadeBoundaries(t *testing.T) {
	e := New(1)
	wheelOf(t, e)
	const tick0 = time.Duration(1) << granBits // 4096ns
	ats := []time.Duration{
		tick0 - 1,         // last instant of the current tick
		tick0,             // first instant of tick 1 (wheel level 0)
		tick0 + 1,         //
		63 * tick0,        // last level-0 slot from cur=0
		64*tick0 - 1,      //
		64 * tick0,        // cascade boundary: level 1 from cur=0
		64*tick0 + 1,      //
		64*64*tick0 - 1,   // last level-1 instant
		64 * 64 * tick0,   // level-2 boundary
		64*64*tick0 + 123, //
	}
	var fired []time.Duration
	for _, at := range ats {
		at := at
		e.At(at, func() {
			if e.Now() != at {
				t.Errorf("event for %v fired at %v", at, e.Now())
			}
			fired = append(fired, at)
		})
	}
	e.Run()
	if len(fired) != len(ats) {
		t.Fatalf("fired %d of %d events", len(fired), len(ats))
	}
	for i := range ats {
		if fired[i] != ats[i] {
			t.Fatalf("fire order %v, want %v", fired, ats)
		}
	}
}

// TestWheelHeapHandoffSameTimestampOrder pins (at, seq) ordering for events
// at the same timestamp when some are wheel-resident (scheduled far ahead)
// and some are heap-resident (scheduled from a callback inside the same
// tick): the handoff must preserve pure scheduling order.
func TestWheelHeapHandoffSameTimestampOrder(t *testing.T) {
	e := New(1)
	wheelOf(t, e)
	const tick0 = time.Duration(1) << granBits
	T := 2 * tick0 // tick 2: far enough to start wheel-resident
	var order []string
	e.At(T, func() {
		order = append(order, "wheel-first")
		// Scheduled at the current instant from inside the tick: the wheel
		// frontier has advanced to this tick, so these go straight to the
		// heap — same timestamp, later seq.
		e.At(T, func() { order = append(order, "heap-same-at") })
		// Same tick, later instant: still heap-resident.
		e.At(T+tick0-1, func() { order = append(order, "heap-same-tick") })
		// Next tick: wheel again (heap→wheel handoff).
		e.At(T+tick0, func() { order = append(order, "wheel-next-tick") })
	})
	e.At(T, func() { order = append(order, "wheel-second") })
	e.Run()
	want := []string{"wheel-first", "wheel-second", "heap-same-at", "heap-same-tick", "wheel-next-tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWheelCancelBypassesCompaction pins the wheel cancel contract: a
// wheel-resident cancel unlinks and recycles immediately (PendingEvents
// drops at once, no compaction debt), and a heap compaction triggered by
// near-horizon cancels leaves wheel-resident entries untouched.
func TestWheelCancelBypassesCompaction(t *testing.T) {
	e := New(1)
	wheelOf(t, e)
	const tick0 = time.Duration(1) << granBits

	// 1000 far-horizon timers, all canceled: the wheel must shed them
	// immediately — no deferred half-dead population.
	far := make([]Timer, 1000)
	for i := range far {
		far[i] = e.After(time.Duration(i+2)*tick0, func() { t.Error("canceled wheel timer fired") })
	}
	for i := range far {
		if !far[i].Cancel() {
			t.Fatalf("wheel Cancel %d reported not-pending", i)
		}
	}
	if n := e.PendingEvents(); n != 0 {
		t.Fatalf("wheel cancels left %d pending events (no immediate recycle)", n)
	}

	// Mix: ≥64 heap-resident (same-tick) timers plus wheel-resident ones.
	// Canceling most of the heap population trips the lazy compaction;
	// wheel entries must survive it and fire in order.
	var order []int
	near := make([]Timer, 100)
	for i := range near {
		i := i
		near[i] = e.After(time.Duration(i+1), func() { order = append(order, i) }) // sub-tick: heap
	}
	e.After(5*tick0, func() { order = append(order, 1000) }) // wheel
	for i := 0; i < 80; i++ {
		near[i].Cancel()
	}
	if n := e.PendingEvents(); n >= 101 {
		t.Fatalf("compaction never ran: %d entries queued", n)
	}
	e.Run()
	if len(order) != 21 {
		t.Fatalf("fired %d events, want 21 (20 heap survivors + 1 wheel)", len(order))
	}
	for k := 0; k < 20; k++ {
		if order[k] != 80+k {
			t.Fatalf("position %d fired id %d, want %d", k, order[k], 80+k)
		}
	}
	if order[20] != 1000 {
		t.Fatalf("wheel timer fired out of order: %v", order)
	}
}

// TestAfterZeroSelfScheduling pins After(0) self-scheduling: a callback
// that re-arms itself with zero delay runs again at the same virtual
// instant (after already-queued same-instant events), and the clock never
// advances.
func TestAfterZeroSelfScheduling(t *testing.T) {
	e := New(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(0, step)
		}
	}
	e.At(time.Microsecond, step)
	end := e.Run()
	if count != 5 {
		t.Fatalf("self-scheduling ran %d times, want 5", count)
	}
	if end != time.Microsecond {
		t.Fatalf("After(0) self-scheduling advanced the clock to %v", end)
	}
}

// TestSchedulerDifferentialFiringOrder drives an identical seeded
// schedule/cancel/sleep workload through a heap-only and a wheel engine and
// asserts the observable firing sequences are identical — the sim-level
// heap-equivalence check backing the golden suite.
func TestSchedulerDifferentialFiringOrder(t *testing.T) {
	runIt := func(kind SchedulerKind) ([]int, time.Duration) {
		e := NewWithScheduler(1, kind)
		var order []int
		var timers []Timer
		// A deterministic pseudo-random-ish spread from a tiny LCG (no
		// wall-clock, no global rand): mixes sub-tick, same-tick, far-wheel
		// and cascade-crossing deadlines, plus cancels and re-arms.
		x := uint64(12345)
		next := func(mod int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int((x >> 33) % uint64(mod))
		}
		for i := 0; i < 500; i++ {
			i := i
			at := time.Duration(next(1 << 22))
			timers = append(timers, e.At(at, func() { order = append(order, i) }))
		}
		for i := 0; i < 500; i += 3 {
			timers[i].Cancel()
		}
		e.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(time.Duration(next(1 << 18)))
				order = append(order, 10_000+i)
			}
		})
		end := e.Run()
		return order, end
	}
	ho, he := runIt(SchedulerHeap)
	wo, we := runIt(SchedulerWheel)
	if he != we {
		t.Fatalf("virtual end differs: heap=%v wheel=%v", he, we)
	}
	if len(ho) != len(wo) {
		t.Fatalf("firing counts differ: heap=%d wheel=%d", len(ho), len(wo))
	}
	for i := range ho {
		if ho[i] != wo[i] {
			t.Fatalf("firing order diverges at %d: heap=%d wheel=%d", i, ho[i], wo[i])
		}
	}
}
