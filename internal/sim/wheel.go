package sim

import (
	"math"
	"math/bits"
	"time"
)

// Hierarchical timer wheel (Varghese & Lauck), the engine's far-horizon
// event store. The 4-ary heap stays the near-horizon sorter — it alone
// decides firing order — while the wheel holds everything scheduled beyond
// the current drain frontier in unsorted per-slot lists, making insertion
// and cancellation O(1) regardless of how many million events are pending.
//
// Layout: wheelLevels levels of wheelSlots slots each. A level-0 slot spans
// one tick of 2^granBits nanoseconds; each higher level spans wheelSlots
// times its child's range, so the top level covers every representable
// time.Duration and overflow cannot occur. Slots are indexed by the event's
// absolute tick (at >> granBits): level = position of the highest bit in
// which the tick differs from the frontier cur, slot = that tick field.
// This "differing bit" rule (rather than a delta magnitude) guarantees a
// slot's span never straddles the frontier, so a slot drains exactly once.
//
// Invariants the rest of the engine relies on:
//
//   - Every heap event has tick ≤ cur; every wheel event has tick > cur.
//     Corollary: two events with the same firing time are always in the
//     same structure, so the heap's (at, seq) order is the global order and
//     fire order is bit-identical to the heap-only scheduler's.
//   - drain moves events heap-ward only until the heap top is the exact
//     global minimum (not a lower bound) — shard horizon computation
//     publishes that top, and a mere lower bound could stall the window
//     protocol forever.
//   - Slot lists are doubly linked (event.next/event.prev), so Cancel on a
//     wheel-resident event unlinks and recycles it immediately: canceled
//     far timers never pile up, and the heap's lazy-compaction pressure
//     from timeout churn (every signaled timed wait) disappears.
//
// The wheel performs no virtual-time accounting and must never read wall
// clocks: cascades are pure data-structure motion between schedule and
// fire, both of which happen at engine-controlled virtual instants.
const (
	// granBits is the level-0 slot width: 2^12 ns ≈ 4.1 µs per tick.
	// Near-term traffic (cell hops, sub-µs costs) lands in the current tick
	// and goes straight to the heap; protocol timers (2 ms retransmits and
	// up) go to the wheel.
	granBits = 12
	// slotBits is the per-level fanout: 64 slots, one occupancy word each.
	slotBits   = 6
	wheelSlots = 1 << slotBits
	// wheelLevels is chosen so granBits + wheelLevels*slotBits ≥ 63: the
	// top level's span covers all of time.Duration and no event can
	// overflow the wheel.
	wheelLevels = 9

	// noWheelEvent is nextLB's value while the wheel is empty.
	noWheelEvent = time.Duration(math.MaxInt64)
)

type wheel struct {
	// cur is the drain frontier in ticks. It trails the engine clock in
	// busy stretches and jumps ahead of it when drain fast-forwards to a
	// far-future slot; only the tick ≤ cur ⇒ heap invariant matters.
	cur uint64
	// count is the number of events resident in slots.
	count int
	// nextLB is a lower bound on the earliest wheel event's firing time,
	// used as the peek fast path. It may be stale-low after cancellations
	// (costing a bitmap scan, never correctness).
	nextLB time.Duration
	// occ[l] has bit s set iff slots[l*wheelSlots+s] is non-empty.
	occ   [wheelLevels]uint64
	slots [wheelLevels * wheelSlots]*event
}

func newWheel() *wheel { return &wheel{nextLB: noWheelEvent} }

// tick converts a firing time to its wheel tick.
func tick(at time.Duration) uint64 { return uint64(at) >> granBits }

// insert links ev into the slot for its firing time. Caller guarantees
// tick(ev.at) > w.cur.
//
//unetlint:hotpath timer arm; runs on every scheduled event
func (w *wheel) insert(ev *event) {
	t := tick(ev.at)
	x := t ^ w.cur
	lvl := uint((bits.Len64(x) - 1) / slotBits)
	s := (t >> (lvl * slotBits)) & (wheelSlots - 1)
	idx := int32(lvl)*wheelSlots + int32(s)
	head := w.slots[idx]
	ev.next = head
	ev.prev = nil
	if head != nil {
		head.prev = ev
	}
	w.slots[idx] = ev
	ev.wslot = idx
	w.occ[lvl] |= 1 << s
	w.count++
	if ev.at < w.nextLB {
		w.nextLB = ev.at
	}
}

// unlink removes a wheel-resident event from its slot in O(1).
//
//unetlint:hotpath timer cancel; runs on every retired or re-armed timer
func (w *wheel) unlink(ev *event) {
	idx := ev.wslot
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		w.slots[idx] = ev.next
		if ev.next == nil {
			lvl := idx / wheelSlots
			w.occ[lvl] &^= 1 << uint(idx%wheelSlots)
		}
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.next, ev.prev, ev.wslot = nil, nil, -1
	w.count--
}

// nextSlot locates the earliest occupied slot. Levels are time-ordered
// (every level-l event precedes every level-(l+1) event: level l holds only
// ticks inside cur's level-(l+1) window, higher levels only ticks beyond
// it), and within a level every occupied slot index is strictly ahead of
// cur's position, so the first set bit of the first non-empty level wins.
// Caller guarantees count > 0.
func (w *wheel) nextSlot() (lvl uint, s uint64, startTick uint64) {
	for l := uint(0); l < wheelLevels; l++ {
		m := w.occ[l]
		if m == 0 {
			continue
		}
		s := uint64(bits.TrailingZeros64(m))
		shift := l * slotBits
		span := uint64(1)<<(shift+slotBits) - 1
		return l, s, w.cur&^span | s<<shift
	}
	panic("sim: wheel occupancy bitmap empty with count > 0")
}

// drain advances the frontier slot by slot — cascading multi-tick slots
// into finer levels, pushing due-tick events to the heap — until the heap
// top is the exact global minimum (or the wheel empties). Each event
// cascades at most once per level on its way down, so the amortized cost
// per event is O(wheelLevels) pointer moves ≈ O(1), independent of the
// pending-event population.
func (w *wheel) drain(e *Engine) {
	for w.count > 0 {
		lvl, s, startTick := w.nextSlot()
		lb := time.Duration(startTick << granBits)
		if len(e.events) > 0 && e.events[0].at <= lb {
			// Heap top fires at or before anything the wheel still holds
			// (same-time events are never split across the two structures,
			// so ≤ cannot mask a lower-seq wheel event).
			w.nextLB = lb
			return
		}
		w.cur = startTick
		idx := int32(lvl)*wheelSlots + int32(s)
		ev := w.slots[idx]
		w.slots[idx] = nil
		w.occ[lvl] &^= 1 << s
		for ev != nil {
			next := ev.next
			ev.next, ev.prev, ev.wslot = nil, nil, -1
			w.count--
			if tick(ev.at) > w.cur {
				w.insert(ev)
			} else {
				e.events.push(ev)
			}
			ev = next
		}
	}
	w.nextLB = noWheelEvent
}

// reset drops every wheel-resident event reference (Shutdown path).
func (w *wheel) reset() {
	*w = wheel{nextLB: noWheelEvent}
}
