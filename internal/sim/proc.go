package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated process: application code that consumes virtual time
// via Sleep and blocks on Conds and FIFOs. A Proc's function runs on a
// dedicated goroutine, but the engine guarantees that at most one process
// executes at a time, so simulated code needs no locking.
type Proc struct {
	e       *Engine
	name    string
	resume  chan struct{}
	started bool
	done    bool
	killed  bool
	// w is the process's reusable condition-wait record. A blocked process
	// waits on exactly one condition, so one embedded record (instead of an
	// allocation per Wait) suffices; WaitTimeout cancels its timer on a
	// signaled wake so no stale reference to w survives the call.
	w waiter
}

// procKilled is the panic payload used to unwind a process during Shutdown.
type procKilled struct{}

// top is the goroutine entry point wrapping the user function.
func (p *Proc) top(fn func(*Proc)) {
	defer func() {
		p.done = true
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); !ok {
				// Re-panic on the engine side would deadlock the handshake;
				// deliver the panic on this goroutine with context instead.
				p.e.parked <- struct{}{}
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
			}
		}
		p.e.parked <- struct{}{}
	}()
	fn(p)
}

// park blocks the process until the engine transfers control back. It is
// the single suspension point; every blocking primitive funnels through it.
func (p *Proc) park() {
	p.e.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Logf emits a trace message attributed to this process.
func (p *Proc) Logf(format string, args ...any) { p.e.Tracef(p.name, format, args...) }

// Sleep advances the process's position in virtual time by d: it models the
// process spending d of CPU (or waiting) time. Other processes and events
// run in the interim. Non-positive d yields without advancing the clock.
// Sleep allocates nothing: the wake-up is a pooled resume event.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.resumeAt(p.e.now+d, p)
	p.park()
}

// Yield reschedules the process at the current virtual time, letting other
// ready events run first.
func (p *Proc) Yield() { p.Sleep(0) }

// waiter records one process blocked on a Cond.
type waiter struct {
	p        *Proc
	c        *Cond
	fired    bool
	timedOut bool
}

// Cond is a condition variable for simulated processes. Its zero value is
// ready to use. As with sync.Cond, waiters must re-check their predicate
// upon waking, because another process may run between the signal and the
// resume.
type Cond struct {
	waiters []*waiter
}

// popFront removes and returns the oldest waiter, keeping the slice's
// front capacity so steady-state wait/signal traffic allocates nothing.
func (c *Cond) popFront() *waiter {
	w := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	return w
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.popFront()
		if w.fired {
			continue
		}
		w.fired = true
		w.p.e.resumeLater(w.p)
		return
	}
}

// Broadcast wakes every waiting process. The waiter slice is emptied in
// place, keeping its capacity: resumeLater only schedules (no process runs
// during the loop), so no new waiter can be appended mid-broadcast, and
// steady-state wait/broadcast traffic allocates nothing.
func (c *Cond) Broadcast() {
	ws := c.waiters
	for i, w := range ws {
		ws[i] = nil
		if w.fired {
			continue
		}
		w.fired = true
		w.p.e.resumeLater(w.p)
	}
	c.waiters = ws[:0]
}

// remove deletes one waiter (used when its timeout fires).
func (c *Cond) remove(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Waiting reports how many processes are blocked on the condition.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters {
		if !w.fired {
			n++
		}
	}
	return n
}

// Wait blocks the process until the condition is signaled.
func (p *Proc) Wait(c *Cond) {
	p.w = waiter{p: p, c: c}
	c.waiters = append(c.waiters, &p.w)
	p.park()
}

// WaitTimeout blocks until the condition is signaled or d elapses. It
// reports true if the wake was a signal and false on timeout. A timed-out
// waiter is removed from the condition immediately, and a signaled wake
// cancels the pending timeout, so polling loops accumulate neither stale
// waiters nor live timers.
func (p *Proc) WaitTimeout(c *Cond, d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	ok, tm := p.WaitUntil(c, p.e.now+d, Timer{})
	if ok {
		tm.Cancel()
	}
	return ok
}

// WaitUntil blocks until the condition is signaled or virtual time reaches
// the absolute deadline at, lazily re-arming the timeout event carried in
// tm instead of scheduling a fresh one. It reports true on a signaled wake
// together with the still-armed timer, which the caller threads into its
// next WaitUntil (typically with the same deadline — then re-arming is a
// sequence-number bump, no queue motion at all); on timeout it reports
// false and the zero Timer, the event having fired.
//
// On a signaled wake the armed event is detached from its waiter, so
// until the next re-arm it is inert: should it reach its firing time
// first, the engine discards it exactly as it discards a canceled entry —
// no clock advance, no step. The caller should still Cancel a timer it
// will not re-arm, for queue hygiene. Each call consumes exactly one event
// sequence number, the same as a WaitTimeout, so a simulation using
// WaitUntil fires events in bit-identical order to one re-scheduling every
// wake the classic way.
func (p *Proc) WaitUntil(c *Cond, at time.Duration, tm Timer) (bool, Timer) {
	p.w = waiter{p: p, c: c}
	c.waiters = append(c.waiters, &p.w)
	ev := tm.ev
	armed := ev != nil && ev.gen == tm.gen && !ev.canceled && ev.e == p.e &&
		ev.kind == kindTimeout && ev.w == nil
	if armed && !p.e.rearm(ev, at) {
		// Heap-resident (near-horizon or SchedulerHeap): fall back to the
		// classic cancel + reschedule, which consumes the same one sequence
		// number as the rearm fast path.
		tm.Cancel()
		armed = false
	}
	if !armed {
		ev = p.e.schedule(at)
		ev.kind = kindTimeout
		tm = Timer{ev: ev, gen: ev.gen}
	}
	ev.w = &p.w
	p.park()
	if p.w.timedOut {
		return false, Timer{}
	}
	if ev.gen == tm.gen {
		ev.w = nil
	}
	return true, tm
}
