package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated process: application code that consumes virtual time
// via Sleep and blocks on Conds and FIFOs. A Proc's function runs on a
// dedicated goroutine, but the engine guarantees that at most one process
// executes at a time, so simulated code needs no locking.
type Proc struct {
	e       *Engine
	name    string
	resume  chan struct{}
	started bool
	done    bool
	killed  bool
	// w is the process's reusable condition-wait record. A blocked process
	// waits on exactly one condition, so one embedded record (instead of an
	// allocation per Wait) suffices; WaitTimeout cancels its timer on a
	// signaled wake so no stale reference to w survives the call.
	w waiter
}

// procKilled is the panic payload used to unwind a process during Shutdown.
type procKilled struct{}

// top is the goroutine entry point wrapping the user function.
func (p *Proc) top(fn func(*Proc)) {
	defer func() {
		p.done = true
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); !ok {
				// Re-panic on the engine side would deadlock the handshake;
				// deliver the panic on this goroutine with context instead.
				p.e.parked <- struct{}{}
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
			}
		}
		p.e.parked <- struct{}{}
	}()
	fn(p)
}

// park blocks the process until the engine transfers control back. It is
// the single suspension point; every blocking primitive funnels through it.
func (p *Proc) park() {
	p.e.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Logf emits a trace message attributed to this process.
func (p *Proc) Logf(format string, args ...any) { p.e.Tracef(p.name, format, args...) }

// Sleep advances the process's position in virtual time by d: it models the
// process spending d of CPU (or waiting) time. Other processes and events
// run in the interim. Non-positive d yields without advancing the clock.
// Sleep allocates nothing: the wake-up is a pooled resume event.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.resumeAt(p.e.now+d, p)
	p.park()
}

// Yield reschedules the process at the current virtual time, letting other
// ready events run first.
func (p *Proc) Yield() { p.Sleep(0) }

// waiter records one process blocked on a Cond.
type waiter struct {
	p        *Proc
	c        *Cond
	fired    bool
	timedOut bool
}

// Cond is a condition variable for simulated processes. Its zero value is
// ready to use. As with sync.Cond, waiters must re-check their predicate
// upon waking, because another process may run between the signal and the
// resume.
type Cond struct {
	waiters []*waiter
}

// popFront removes and returns the oldest waiter, keeping the slice's
// front capacity so steady-state wait/signal traffic allocates nothing.
func (c *Cond) popFront() *waiter {
	w := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	return w
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.popFront()
		if w.fired {
			continue
		}
		w.fired = true
		w.p.e.resumeLater(w.p)
		return
	}
}

// Broadcast wakes every waiting process. The waiter slice is emptied in
// place, keeping its capacity: resumeLater only schedules (no process runs
// during the loop), so no new waiter can be appended mid-broadcast, and
// steady-state wait/broadcast traffic allocates nothing.
func (c *Cond) Broadcast() {
	ws := c.waiters
	for i, w := range ws {
		ws[i] = nil
		if w.fired {
			continue
		}
		w.fired = true
		w.p.e.resumeLater(w.p)
	}
	c.waiters = ws[:0]
}

// remove deletes one waiter (used when its timeout fires).
func (c *Cond) remove(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Waiting reports how many processes are blocked on the condition.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters {
		if !w.fired {
			n++
		}
	}
	return n
}

// Wait blocks the process until the condition is signaled.
func (p *Proc) Wait(c *Cond) {
	p.w = waiter{p: p, c: c}
	c.waiters = append(c.waiters, &p.w)
	p.park()
}

// WaitTimeout blocks until the condition is signaled or d elapses. It
// reports true if the wake was a signal and false on timeout. A timed-out
// waiter is removed from the condition immediately, and a signaled wake
// cancels the pending timeout, so polling loops accumulate neither stale
// waiters nor live timers.
func (p *Proc) WaitTimeout(c *Cond, d time.Duration) bool {
	p.w = waiter{p: p, c: c}
	c.waiters = append(c.waiters, &p.w)
	if d < 0 {
		d = 0
	}
	ev := p.e.schedule(p.e.now + d)
	ev.kind = kindTimeout
	ev.w = &p.w
	tm := Timer{ev: ev, gen: ev.gen}
	p.park()
	if !p.w.timedOut {
		// Signaled: the timeout event still references p.w; cancel it so the
		// record can be reused by the next wait. The canceled entry is
		// reclaimed by the engine's lazy compaction.
		tm.Cancel()
	}
	return !p.w.timedOut
}
