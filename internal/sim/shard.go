package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded execution: a Group partitions one simulation across several
// Engines ("shards"), each with its own event arena, heap and process set,
// and runs them on parallel goroutines under a conservative time-window
// protocol.
//
// The scheme exploits the same property of the modeled system that the
// paper's cluster architecture rests on: hosts interact only through links
// with a fixed minimum latency (cell serialization plus fiber propagation),
// so an event executing at virtual time t in one shard cannot affect
// another shard before t+L, where L is the latency of the cheapest path
// between them. Lookahead is tracked per shard pair: every cross-shard
// link registers its latency as a directed edge, and at run time the group
// closes the edge set into an all-pairs minimum-latency matrix. Each
// round, every shard publishes its earliest pending event time T_i and
// processes all events strictly before its own horizon
//
//	H_i = min over j≠i of (T_j + L*[j][i])
//
// where L*[j][i] is the matrix entry — the cheapest multi-hop latency from
// shard j to shard i. A shard hemmed in only by distant neighbors gets a
// wide window; a shard nobody can reach free-runs to completion. When
// every T_j lies far in the future the horizons jump there with them, so
// the group fast-forwards across idle stretches instead of grinding
// through empty fixed-width windows.
//
// Within a window shards share no mutable state, so they run without
// locks; determinism is preserved because cross-shard traffic is drained
// into the destination heaps in a fixed registration order at barriers,
// and destination engines assign their usual (timestamp, sequence)
// tie-break to injected events. The protocol is deadlock-free by
// construction (no shard ever waits for a message; the shard holding the
// globally earliest event always has a horizon beyond it) and needs no
// null messages.
//
// Window crossings are kept cheap: a round costs a single barrier when no
// exchange has traffic pending anywhere (the common case in sparse
// phases), and two when a drain phase is needed. The global
// minimum-next-event reduction is folded once by the last shard to arrive
// at a barrier instead of being rescanned by every shard, and the barrier
// itself spins only within a budget before parking on a condition
// variable, so oversubscribed runs stop burning cores.

// Exchange moves messages that crossed a shard boundary into their
// destination engine. Drain is called by the destination shard's worker
// goroutine at a window barrier, when no producer is running; every
// message it delivers must be scheduled at or after the new window's start
// (guaranteed when producers respect the group lookahead). Exchanges
// registered for the same destination are drained in registration order,
// which is what makes cross-shard injection deterministic.
type Exchange interface {
	Drain()
}

// Mailbox is the producer-side handle of a registered exchange. The
// producing shard must call MarkPending after appending the first message
// of a window; the destination only drains exchanges whose mailbox is
// marked, and a round in which no mailbox anywhere is marked crosses a
// single fused barrier instead of two.
type Mailbox struct {
	ex    Exchange
	g     *Group
	src   int // producing shard, -1 when unknown (pairless registration)
	dirty atomic.Bool
	// neighbor marks the mailbox as running under the neighbor-synchronized
	// protocol, where ring occupancy replaces the dirty-count handshake.
	// Written by the root goroutine during run() setup, before workers
	// spawn; read by the producer shard (MarkPending) and the exchange's
	// Drain to pick the protocol path.
	neighbor bool
}

// MarkPending flags the exchange as holding undrained traffic. It must be
// called by the producing shard (each exchange has exactly one producer)
// between appending a message and reaching the next window barrier; it is
// idempotent and costs one atomic load once marked. Under the neighbor
// protocol it is a no-op — consumers poll ring occupancy directly.
func (m *Mailbox) MarkPending() {
	if m.neighbor {
		return
	}
	if !m.dirty.Load() {
		m.dirty.Store(true)
		m.g.dirtyCount.Add(1)
	}
}

// Neighbor reports whether the mailbox currently runs under the neighbor
// protocol. Exchanges use it to pick their Drain path.
func (m *Mailbox) Neighbor() bool { return m.neighbor }

// pairKey indexes the per-pair lookahead observations.
type pairKey struct{ src, dst int }

// Group coordinates the shards of one simulation. Create it implicitly via
// Engine.NewShard on the root engine; drive it by calling Run/RunUntil on
// the root.
type Group struct {
	root      *Engine
	shards    []*Engine
	lookahead time.Duration             // global floor from ObserveLookahead
	pairLA    map[pairKey]time.Duration // direct per-pair minima
	minLA     time.Duration             // min over every observed bound (diagnostic + fast-forward baseline)
	exchanges [][]*Mailbox              // per destination shard id, drained in registration order

	// Per-run state. la is the closed all-pairs latency matrix (laInf for
	// unreachable). roundDirty/roundMin/horizons are written only by the
	// barrier leader — the last shard to arrive, which runs while every
	// other shard is stopped inside the barrier — and read by every shard
	// after the release, so they need no atomics of their own.
	la     [][]time.Duration
	selfLA []time.Duration // cheapest relay cycle through each shard
	nextAt []atomic.Int64
	//unetlint:leaderfold leader's scratch snapshot of nextAt
	tAt []int64
	//unetlint:leaderfold per-shard windows computed by the fold
	horizons   []int64
	dirtyCount atomic.Int32
	//unetlint:leaderfold round verdict: cross-shard traffic pending
	roundDirty bool
	//unetlint:leaderfold round verdict: earliest pending event
	roundMin int64
	barrier  *spinBarrier
	prof     []ShardProfile
	aborted  atomic.Bool
	failure  atomic.Value // string

	// Neighbor-protocol state (see neighbor.go). sync selects the protocol;
	// the rest is rebuilt by setupNeighbor at the top of each neighbor run,
	// before any worker goroutine exists. pub/sigs/waiting/gmin/ndone are
	// the only cross-shard-mutable pieces and are all atomics or
	// mutex-guarded; the edge sets are immutable during a run.
	sync     SyncKind
	pub      []paddedClock   // published per-shard clocks, cache-line padded
	sigs     []shardSignal   // per-shard wake channels
	waiting  atomic.Int32    // shards currently blocked in waitNeighbor
	waitGen  atomic.Uint64   // wait entries; guards quiescentScan vs ABA on waiting
	gmin     atomic.Int64    // quiescence floor: global min next-event time
	ndone    atomic.Bool     // neighbor-run termination flag
	scanMu   sync.Mutex      // serializes quiescentScan
	inEdges  [][]inEdge      // direct in-edges per shard, ordered by source
	outEdges [][]outEdge     // producer-side exchange handles per shard
	outNbrs  [][]int         // distinct out-neighbor shard ids per shard
	minInLA  []int64         // min in-edge lookahead per shard (floor lift)
	inSrcs   [][]CrossSource // consumer-side exchanges per shard, registration order
	inSrcIDs [][]int         // producing shard of each inSrcs entry
}

// NewShard creates a new shard engine attached to e's group, creating the
// group on first use (e becomes shard 0, the root). Only the root engine
// may be driven with Run/RunUntil; shard engines are populated with
// processes and events and then executed by the group. Shards must be
// created before the first Run.
func (e *Engine) NewShard(seed int64) *Engine {
	if e.group == nil {
		e.group = &Group{root: e, shards: []*Engine{e}, exchanges: make([][]*Mailbox, 1)}
		e.shardID = 0
	}
	g := e.group
	if g.root != e {
		panic("sim: NewShard must be called on the group's root engine")
	}
	s := NewWithScheduler(seed, e.Scheduler())
	s.group = g
	s.shardID = len(g.shards)
	g.shards = append(g.shards, s)
	g.exchanges = append(g.exchanges, nil)
	return s
}

// Group returns the shard group e belongs to (nil for a plain serial
// engine).
func (e *Engine) Group() *Group { return e.group }

// ShardID returns e's index within its group (0 for the root or a plain
// serial engine).
func (e *Engine) ShardID() int { return e.shardID }

// Shards reports the number of engines in the group, including the root.
func (g *Group) Shards() int { return len(g.shards) }

// Root returns the group's root engine.
func (g *Group) Root() *Engine { return g.root }

// AddExchange registers ex to be drained into dst at every window barrier,
// with an unknown producer: the group must carry a global lookahead
// (ObserveLookahead), which is applied between every shard pair. dst must
// be an engine of this group. Registration order fixes the drain order,
// and with it the deterministic tie-break between same-timestamp
// injections from different sources. The returned Mailbox must be marked
// by the producer whenever traffic is appended.
func (g *Group) AddExchange(dst *Engine, ex Exchange) *Mailbox {
	return g.addExchange(-1, dst, ex)
}

// AddExchangeFrom registers ex like AddExchange, but names the producing
// shard so the window protocol can bound dst's horizon with the
// src→dst pair lookahead (ObserveLookaheadBetween) instead of the global
// minimum.
func (g *Group) AddExchangeFrom(src, dst *Engine, ex Exchange) *Mailbox {
	if src.group != g {
		panic("sim: AddExchangeFrom source is not a member of this group")
	}
	return g.addExchange(src.shardID, dst, ex)
}

func (g *Group) addExchange(src int, dst *Engine, ex Exchange) *Mailbox {
	if dst.group != g {
		panic("sim: AddExchange destination is not a member of this group")
	}
	mb := &Mailbox{ex: ex, g: g, src: src}
	g.exchanges[dst.shardID] = append(g.exchanges[dst.shardID], mb)
	return mb
}

// ObserveLookahead lower-bounds every cross-shard path with d: any message
// from any shard to any other must be scheduled at least d after the event
// that sent it. Pairless exchanges (AddExchange) rely on it; pairwise
// observations can only tighten individual entries below it, never widen
// them past a tighter global floor.
func (g *Group) ObserveLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: cross-shard lookahead must be positive")
	}
	if g.lookahead == 0 || d < g.lookahead {
		g.lookahead = d
	}
	if g.minLA == 0 || d < g.minLA {
		g.minLA = d
	}
}

// ObserveLookaheadBetween lower-bounds the direct src→dst path with d:
// every message sent from src to dst at time t must be scheduled at t+d or
// later. Unlike ObserveLookahead it constrains only that pair — shards
// linked by slow paths keep wide windows even when some other pair is
// tightly coupled. Multi-hop influence is handled at run time by closing
// the observed edges into an all-pairs minimum-latency matrix.
func (g *Group) ObserveLookaheadBetween(src, dst *Engine, d time.Duration) {
	if d <= 0 {
		panic("sim: cross-shard lookahead must be positive")
	}
	if src.group != g || dst.group != g {
		panic("sim: ObserveLookaheadBetween endpoints must be members of this group")
	}
	if src == dst {
		panic("sim: ObserveLookaheadBetween endpoints are the same shard")
	}
	if g.pairLA == nil {
		g.pairLA = make(map[pairKey]time.Duration)
	}
	k := pairKey{src.shardID, dst.shardID}
	if cur, ok := g.pairLA[k]; !ok || d < cur {
		g.pairLA[k] = d
	}
	if g.minLA == 0 || d < g.minLA {
		g.minLA = d
	}
}

// Lookahead returns the tightest lookahead observed on any path — the
// width the old global-window protocol would have used. Individual shard
// pairs may enjoy wider windows; see Profile for how often they do.
func (g *Group) Lookahead() time.Duration { return g.minLA }

const noEvent = int64(math.MaxInt64)

// laInf marks an unreachable pair in the closed lookahead matrix.
const laInf = time.Duration(math.MaxInt64)

// buildMatrix validates the exchange/lookahead contract and closes the
// influence graph into the all-pairs minimum-latency matrix: entry [j][i]
// is the cheapest latency of any exchange path (multi-hop included) from
// shard j to shard i, laInf when no path exists. Only registered
// exchanges contribute edges — an observed latency with no channel cannot
// carry influence — weighted by the pair observation when one exists, the
// global floor otherwise. A pairless exchange (unknown producer) is an
// edge from every other shard at the global floor. selfLA[i] is the
// cheapest cycle through i: events in shard i's own heap can come back to
// bite it via a relay (host → switch → same host), so its horizon must
// respect T_i + selfLA[i] too.
func (g *Group) buildMatrix() {
	n := len(g.shards)
	if g.la == nil || len(g.la) != n {
		g.la = make([][]time.Duration, n)
		for i := range g.la {
			g.la[i] = make([]time.Duration, n)
		}
		g.selfLA = make([]time.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				g.la[i][j] = 0
			} else {
				g.la[i][j] = laInf
			}
		}
	}
	glob := g.lookahead
	for dst, mbs := range g.exchanges {
		for _, mb := range mbs {
			if mb.src < 0 {
				// Unknown producer: anyone may feed this exchange.
				if glob <= 0 {
					panic("sim: shard group has exchanges but no lookahead")
				}
				for j := 0; j < n; j++ {
					if j != dst && glob < g.la[j][dst] {
						g.la[j][dst] = glob
					}
				}
				continue
			}
			w := laInf
			if d, ok := g.pairLA[pairKey{mb.src, dst}]; ok {
				w = d
			} else if glob > 0 {
				w = glob
			}
			if w == laInf {
				// The window protocol has no safe width for this path.
				panic("sim: shard group has exchanges but no lookahead")
			}
			if w < g.la[mb.src][dst] {
				g.la[mb.src][dst] = w
			}
		}
	}
	// Floyd–Warshall over the (tiny) shard graph: multi-hop influence —
	// host → switch shard → host — must bound horizons even when the relay
	// shard's own heap is empty.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if g.la[i][k] == laInf {
				continue
			}
			for j := 0; j < n; j++ {
				if g.la[k][j] == laInf {
					continue
				}
				if via := g.la[i][k] + g.la[k][j]; via < g.la[i][j] {
					g.la[i][j] = via
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		cyc := laInf
		for k := 0; k < n; k++ {
			if k == i || g.la[i][k] == laInf || g.la[k][i] == laInf {
				continue
			}
			if c := g.la[i][k] + g.la[k][i]; c < cyc {
				cyc = c
			}
		}
		g.selfLA[i] = cyc
	}
}

// run executes the sharded simulation until global quiescence, or until
// every pending event lies beyond limit (limit < 0 means no limit). It is
// entered through Run/RunUntil on the root engine. The calling goroutine
// drives shard 0; every other shard gets a worker goroutine that lives for
// the duration of the call (windows reuse them — the per-window cost is
// one fused barrier crossing when no cross-shard traffic is pending, two
// when a drain phase is needed).
func (g *Group) run(limit time.Duration) time.Duration {
	n := len(g.shards)
	neighbor := g.sync == SyncNeighbor && g.neighborCapable()
	if g.hasExchanges() && !neighbor {
		g.buildMatrix()
	} else if !g.hasExchanges() {
		g.la = nil
	}
	if g.nextAt == nil || len(g.nextAt) != n {
		g.nextAt = make([]atomic.Int64, n)
		g.tAt = make([]int64, n)      //unetlint:allow barrierstate setup-phase allocation before any shard goroutine exists; no barrier is live
		g.horizons = make([]int64, n) //unetlint:allow barrierstate setup-phase allocation before any shard goroutine exists; no barrier is live
	}
	if g.prof == nil || len(g.prof) != n {
		g.prof = make([]ShardProfile, n)
		for i := range g.prof {
			g.prof[i].Shard = i
		}
	}
	if neighbor {
		g.setupNeighbor()
	} else {
		g.setupBarrier()
	}
	worker := g.runShard
	if neighbor {
		worker = g.runShardNeighbor
	}
	g.barrier = newSpinBarrier(int32(n), g)
	var wg sync.WaitGroup
	for id := 1; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer g.abortOnPanic()
			worker(id, limit)
		}(id)
	}
	func() {
		defer g.abortOnPanic()
		worker(0, limit)
	}()
	wg.Wait()
	if g.aborted.Load() {
		msg, _ := g.failure.Load().(string)
		panic("sim: shard aborted: " + msg)
	}
	now := g.root.now
	for _, s := range g.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}

func (g *Group) hasExchanges() bool {
	for _, mbs := range g.exchanges {
		if len(mbs) > 0 {
			return true
		}
	}
	return false
}

// abortOnPanic converts a shard panic into a group-wide abort so the
// remaining shards do not spin on a barrier that will never fill. The panic
// is swallowed here — a worker goroutine must not crash the process — and
// re-raised by run on the caller's goroutine once every shard has stopped.
// Only the first failure is recorded; the cascade panics the other shards
// raise when they observe the abort are not it.
func (g *Group) abortOnPanic() {
	if r := recover(); r != nil {
		if g.aborted.CompareAndSwap(false, true) {
			g.failure.Store(fmt.Sprint(r))
		}
		if g.barrier != nil {
			g.barrier.kill()
		}
		// Neighbor-mode waiters park on per-shard signals, not the barrier.
		if g.sigs != nil {
			g.notifyAll()
		}
	}
}

// runShard is the per-shard worker loop. Each round: publish the earliest
// pending event, cross a barrier whose last arriver (the leader) snapshots
// whether any mailbox holds traffic and — on clean rounds — folds the
// global minimum and every shard's horizon in one pass; drain and
// republish only when traffic is pending; then process events up to this
// shard's own per-pair horizon.
//
// The leader folds roundMin and the horizons while every other shard is
// stopped inside the barrier, and shards read only those leader-written
// values afterwards. Reading nextAt directly after the release would race:
// a fast shard can finish its window and republish for the next round
// while a slow one is still computing this round's horizon.
func (g *Group) runShard(id int, limit time.Duration) {
	e := g.shards[id]
	prof := &g.prof[id]
	if g.la == nil {
		// No cross-shard paths: the shards are independent simulations and
		// can each run to completion in one pass.
		n0 := e.nsteps
		e.runWindow(stopFor(limit))
		e.alignNow(limit)
		prof.Windows++
		prof.Events += e.nsteps - n0
		return
	}
	stop := stopFor(limit)
	inbox := g.exchanges[id]
	legacy := int64(g.minLA)
	for {
		// Publish the earliest pending event (canceled heap entries included
		// — harmlessly conservative) and cross the round barrier. peek
		// fast-forwards through the wheel's occupancy bitmaps so the
		// published time is the exact minimum, never a slot lower bound: a
		// lower bound could hold the globally-earliest shard's horizon below
		// its true next event forever.
		next := noEvent
		if ev := e.peek(); ev != nil {
			next = int64(ev.at)
		}
		g.nextAt[id].Store(next)
		g.barrierWait(prof, g.leaderVerdict)

		if g.roundDirty {
			// Drain phase: move cross-shard traffic into this heap, then
			// republish so horizons account for the injected events. The
			// second barrier's leader folds the post-drain times.
			drained := false
			for _, mb := range inbox {
				if mb.dirty.Load() {
					mb.ex.Drain()
					mb.dirty.Store(false)
					g.dirtyCount.Add(-1)
					drained = true
					prof.Drains++
				}
			}
			if drained {
				next = noEvent
				if ev := e.peek(); ev != nil {
					next = int64(ev.at)
				}
				g.nextAt[id].Store(next)
			}
			g.barrierWait(prof, g.computeRound)
		} else {
			prof.FusedBarriers++
		}

		// Every shard reads the same leader-folded verdict, so termination
		// needs no extra coordination.
		m := g.roundMin
		if m == noEvent || (limit >= 0 && m > int64(limit)) {
			e.alignNow(limit)
			return
		}

		h := g.horizons[id]
		horizon := stop
		if hd := time.Duration(h); hd < stop {
			horizon = hd
		}
		if h > satAdd(m, legacy) {
			prof.FastForwards++
		}
		n0 := e.nsteps
		e.runWindow(horizon)
		prof.Windows++
		if ev := e.nsteps - n0; ev > 0 {
			prof.Events += ev
		} else {
			prof.EmptyWindows++
		}
	}
}

// leaderVerdict runs on the last shard to arrive at the round barrier:
// with all producers quiescent it snapshots whether any mailbox holds
// undrained traffic, and on clean rounds — where published times are
// already complete — folds the round's minimum and horizons so the drain
// phase and its barrier can be skipped entirely.
func (g *Group) leaderVerdict() {
	g.roundDirty = g.dirtyCount.Load() > 0
	if !g.roundDirty {
		g.computeRound()
	}
}

// computeRound folds the published next-event times into the round's
// global minimum and every shard's per-pair horizon — once, on the barrier
// leader, instead of every shard rescanning the array after an extra
// crossing. computeRound only ever runs when every mailbox is empty (the
// round was clean, or the drain phase just completed), so all future
// influence on shard i must originate from an event currently queued in
// some shard j's heap: it cannot arrive before T_j + L*[j][i], and — via
// the cheapest relay cycle — shard i's own events cannot come back before
// T_i + selfLA[i]. Shards nobody can reach (or whose influencers are all
// idle) get an unbounded horizon and fast-forward.
func (g *Group) computeRound() {
	n := len(g.shards)
	m := noEvent
	for i := 0; i < n; i++ {
		g.tAt[i] = g.nextAt[i].Load()
		if g.tAt[i] < m {
			m = g.tAt[i]
		}
	}
	g.roundMin = m
	for i := 0; i < n; i++ {
		h := int64(math.MaxInt64)
		if g.selfLA[i] != laInf && g.tAt[i] != noEvent {
			h = satAdd(g.tAt[i], int64(g.selfLA[i]))
		}
		for j := 0; j < n; j++ {
			if j == i || g.la[j][i] == laInf || g.tAt[j] == noEvent {
				continue
			}
			if hv := satAdd(g.tAt[j], int64(g.la[j][i])); hv < h {
				h = hv
			}
		}
		g.horizons[i] = h
	}
}

// barrierWait crosses the group barrier, attributing the wall-clock wait
// to the shard's profile. The wall-clock reads exist only for the
// profiler; nothing derived from them may feed virtual time.
//
//unetlint:allow nondeterminism wall-clock barrier-wait profiling only; never feeds virtual time or event order
func (g *Group) barrierWait(prof *ShardProfile, leader func()) {
	t0 := time.Now()
	g.barrier.wait(leader)
	prof.BarrierWait += time.Since(t0)
}

// satAdd adds two non-negative int64 durations, saturating at MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// stopFor converts RunUntil's inclusive limit into runWindow's exclusive
// bound.
func stopFor(limit time.Duration) time.Duration {
	if limit < 0 || limit >= math.MaxInt64-1 {
		return time.Duration(math.MaxInt64)
	}
	return limit + 1
}

// alignNow reproduces serial RunUntil's clock semantics at the end of a
// bounded run: the clock advances to the limit only when events remain
// beyond it.
func (e *Engine) alignNow(limit time.Duration) {
	if limit >= 0 && limit > e.now && e.PendingEvents() > 0 {
		e.now = limit
	}
}

// shutdown terminates every shard's processes (root last, matching the
// order resources were created in reverse).
func (g *Group) shutdown() {
	for i := len(g.shards) - 1; i >= 1; i-- {
		g.shards[i].shutdownLocal()
	}
	g.root.shutdownLocal()
}

// spinBarrier is a sense-reversing barrier tuned for short simulation
// windows: arrivals spin briefly (cheap when all shards run on their own
// core), yield for a while, and finally park on a condition variable so
// oversubscribed machines — including GOMAXPROCS=1 race runs — stop
// burning cores on windows they cannot advance. The last arriver runs the
// round's leader closure (dirty-verdict snapshot, min reduction) before
// releasing, which is what lets a round cost a single crossing. The
// atomics double as the happens-before edges that hand mailbox ownership
// between producer and consumer shards.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
	g     *Group
	spin  int // pure-spin iterations before yielding
	mu    sync.Mutex
	cond  *sync.Cond
}

// yieldBudget is how many runtime.Gosched rounds a waiter tries after its
// spin budget before parking. On an oversubscribed machine a yield usually
// hands the core straight to the releasing shard, which is far cheaper
// than a futex sleep/wake pair.
const yieldBudget = 64

func newSpinBarrier(n int32, g *Group) *spinBarrier {
	b := &spinBarrier{n: n, g: g}
	b.cond = sync.NewCond(&b.mu)
	// With a core per shard, spinning through a whole window is cheaper
	// than any sleep; without, fall through to yielding almost at once.
	if runtime.GOMAXPROCS(0) >= int(n) {
		b.spin = 1024
	} else {
		b.spin = 16
	}
	return b
}

// wait blocks until every shard has arrived. The last arriver runs leader
// (if non-nil) before releasing the others — leader's writes are ordered
// before the release, so every shard reads them coherently after wait
// returns.
func (b *spinBarrier) wait(leader func()) {
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		if leader != nil {
			leader()
		}
		// The generation bump is published under the mutex so a waiter that
		// checked it while holding the lock cannot miss the broadcast.
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spins := 0; ; spins++ {
		if b.gen.Load() != gen {
			return
		}
		if b.g != nil && b.g.aborted.Load() {
			panic("sim: peer shard failed")
		}
		if spins < b.spin {
			continue
		}
		if spins < b.spin+yieldBudget {
			runtime.Gosched()
			continue
		}
		// Park until released (or the group aborts). Re-check the
		// generation under the lock: the releaser bumps it there.
		b.mu.Lock()
		for b.gen.Load() == gen && !(b.g != nil && b.g.aborted.Load()) {
			b.cond.Wait()
		}
		b.mu.Unlock()
	}
}

// kill wakes every parked waiter after an abort so they can observe the
// failure and unwind instead of sleeping forever.
func (b *spinBarrier) kill() {
	b.mu.Lock()
	b.mu.Unlock() //nolint:staticcheck // empty critical section orders the broadcast after any in-flight Wait
	b.cond.Broadcast()
}
