package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded execution: a Group partitions one simulation across several
// Engines ("shards"), each with its own event arena, heap and process set,
// and runs them on parallel goroutines under a conservative time-window
// protocol.
//
// The scheme exploits the same property of the modeled system that the
// paper's cluster architecture rests on: hosts interact only through links
// with a fixed minimum latency (cell serialization plus fiber propagation),
// so an event executing at virtual time t in one shard cannot affect
// another shard before t+L, where L is the minimum cross-shard link
// latency — the group's lookahead. Each round, every shard processes all
// events strictly before H = m+L (m being the globally earliest pending
// event), then a barrier is crossed and cross-shard traffic that
// accumulated in per-pair mailboxes is drained into the destination heaps.
// Within a window shards share no mutable state, so they run without locks;
// determinism is preserved because drains happen in a fixed registration
// order and destination engines assign their usual (timestamp, sequence)
// tie-break to injected events.
//
// The protocol is deadlock-free by construction (no shard ever waits for a
// message; windows always advance past the earliest event) and needs no
// null messages.

// Exchange moves messages that crossed a shard boundary into their
// destination engine. Drain is called by the destination shard's worker
// goroutine at a window barrier, when no producer is running; every
// message it delivers must be scheduled at or after the new window's start
// (guaranteed when producers respect the group lookahead). Exchanges
// registered for the same destination are drained in registration order,
// which is what makes cross-shard injection deterministic.
type Exchange interface {
	Drain()
}

// Group coordinates the shards of one simulation. Create it implicitly via
// Engine.NewShard on the root engine; drive it by calling Run/RunUntil on
// the root.
type Group struct {
	root      *Engine
	shards    []*Engine
	lookahead time.Duration
	exchanges [][]Exchange // per shard id, drained in registration order

	nextAt  []atomic.Int64
	barrier *spinBarrier
	aborted atomic.Bool
	failure atomic.Value // string
}

// NewShard creates a new shard engine attached to e's group, creating the
// group on first use (e becomes shard 0, the root). Only the root engine
// may be driven with Run/RunUntil; shard engines are populated with
// processes and events and then executed by the group. Shards must be
// created before the first Run.
func (e *Engine) NewShard(seed int64) *Engine {
	if e.group == nil {
		e.group = &Group{root: e, shards: []*Engine{e}, exchanges: make([][]Exchange, 1)}
		e.shardID = 0
	}
	g := e.group
	if g.root != e {
		panic("sim: NewShard must be called on the group's root engine")
	}
	s := New(seed)
	s.group = g
	s.shardID = len(g.shards)
	g.shards = append(g.shards, s)
	g.exchanges = append(g.exchanges, nil)
	return s
}

// Group returns the shard group e belongs to (nil for a plain serial
// engine).
func (e *Engine) Group() *Group { return e.group }

// ShardID returns e's index within its group (0 for the root or a plain
// serial engine).
func (e *Engine) ShardID() int { return e.shardID }

// Shards reports the number of engines in the group, including the root.
func (g *Group) Shards() int { return len(g.shards) }

// Root returns the group's root engine.
func (g *Group) Root() *Engine { return g.root }

// AddExchange registers ex to be drained into dst at every window barrier.
// dst must be an engine of this group. Registration order fixes the drain
// order, and with it the deterministic tie-break between same-timestamp
// injections from different sources.
func (g *Group) AddExchange(dst *Engine, ex Exchange) {
	if dst.group != g {
		panic("sim: AddExchange destination is not a member of this group")
	}
	g.exchanges[dst.shardID] = append(g.exchanges[dst.shardID], ex)
}

// ObserveLookahead lower-bounds the group window width with the latency of
// one cross-shard path: the group lookahead becomes the minimum of all
// observed values. Every cross-shard message sent at time t must be
// scheduled at t+d or later, for the d passed here by its path.
func (g *Group) ObserveLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: cross-shard lookahead must be positive")
	}
	if g.lookahead == 0 || d < g.lookahead {
		g.lookahead = d
	}
}

// Lookahead returns the group's conservative window width.
func (g *Group) Lookahead() time.Duration { return g.lookahead }

const noEvent = int64(math.MaxInt64)

// run executes the sharded simulation until global quiescence, or until
// every pending event lies beyond limit (limit < 0 means no limit). It is
// entered through Run/RunUntil on the root engine. The calling goroutine
// drives shard 0; every other shard gets a worker goroutine that lives for
// the duration of the call (windows reuse them — the per-window cost is
// two barrier crossings, not goroutine churn).
func (g *Group) run(limit time.Duration) time.Duration {
	if g.hasExchanges() && g.lookahead <= 0 {
		panic("sim: shard group has exchanges but no lookahead")
	}
	n := len(g.shards)
	if g.nextAt == nil || len(g.nextAt) != n {
		g.nextAt = make([]atomic.Int64, n)
	}
	g.barrier = &spinBarrier{n: int32(n), g: g}
	var wg sync.WaitGroup
	for id := 1; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer g.abortOnPanic()
			g.runShard(id, limit)
		}(id)
	}
	func() {
		defer g.abortOnPanic()
		g.runShard(0, limit)
	}()
	wg.Wait()
	if g.aborted.Load() {
		msg, _ := g.failure.Load().(string)
		panic("sim: shard aborted: " + msg)
	}
	now := g.root.now
	for _, s := range g.shards {
		if s.now > now {
			now = s.now
		}
	}
	return now
}

func (g *Group) hasExchanges() bool {
	for _, exs := range g.exchanges {
		if len(exs) > 0 {
			return true
		}
	}
	return false
}

// abortOnPanic converts a shard panic into a group-wide abort so the
// remaining shards do not spin on a barrier that will never fill. The panic
// is swallowed here — a worker goroutine must not crash the process — and
// re-raised by run on the caller's goroutine once every shard has stopped.
// Only the first failure is recorded; the cascade panics the other shards
// raise when they observe the abort are not it.
func (g *Group) abortOnPanic() {
	if r := recover(); r != nil {
		if g.aborted.CompareAndSwap(false, true) {
			g.failure.Store(fmt.Sprint(r))
		}
	}
}

// runShard is the per-shard worker loop: drain, publish, agree on the next
// window, process it. Two barrier crossings per window.
func (g *Group) runShard(id int, limit time.Duration) {
	e := g.shards[id]
	lookahead := g.lookahead
	if lookahead <= 0 {
		// No cross-shard paths: the shards are independent simulations and
		// can each run to completion in one pass.
		e.runWindow(stopFor(limit))
		e.alignNow(limit)
		return
	}
	for {
		// Barrier phase A: producers are quiescent; move cross-shard traffic
		// into this shard's heap, then publish the earliest pending event.
		for _, ex := range g.exchanges[id] {
			ex.Drain()
		}
		next := noEvent
		if len(e.events) > 0 {
			next = int64(e.events[0].at)
		}
		g.nextAt[id].Store(next)
		g.barrier.wait()

		// Phase B: every shard sees the same published times and reaches the
		// same verdict, so termination needs no extra coordination.
		m := noEvent
		for i := range g.nextAt {
			if v := g.nextAt[i].Load(); v < m {
				m = v
			}
		}
		if m == noEvent || (limit >= 0 && m > int64(limit)) {
			e.alignNow(limit)
			return
		}
		h := time.Duration(m) + lookahead
		if stop := stopFor(limit); h > stop {
			h = stop
		}
		e.runWindow(h)
		g.barrier.wait() // end of window: appends to mailboxes are complete
	}
}

// stopFor converts RunUntil's inclusive limit into runWindow's exclusive
// bound.
func stopFor(limit time.Duration) time.Duration {
	if limit < 0 || limit >= math.MaxInt64-1 {
		return time.Duration(math.MaxInt64)
	}
	return limit + 1
}

// alignNow reproduces serial RunUntil's clock semantics at the end of a
// bounded run: the clock advances to the limit only when events remain
// beyond it.
func (e *Engine) alignNow(limit time.Duration) {
	if limit >= 0 && len(e.events) > 0 && limit > e.now {
		e.now = limit
	}
}

// shutdown terminates every shard's processes (root last, matching the
// order resources were created in reverse).
func (g *Group) shutdown() {
	for i := len(g.shards) - 1; i >= 1; i-- {
		g.shards[i].shutdownLocal()
	}
	g.root.shutdownLocal()
}

// spinBarrier is a sense-reversing barrier tuned for short simulation
// windows: arrivals spin briefly (cheap when all shards run on their own
// core) and fall back to yielding, so oversubscribed machines — including
// GOMAXPROCS=1 race runs — make progress. The atomics double as the
// happens-before edges that hand mailbox ownership between producer and
// consumer shards.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
	g     *Group
}

func (b *spinBarrier) wait() {
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == gen; spins++ {
		if b.g != nil && b.g.aborted.Load() {
			panic("sim: peer shard failed")
		}
		if spins > 128 {
			runtime.Gosched()
		}
	}
}
