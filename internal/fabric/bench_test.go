package fabric

import (
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// trainCounter is a TrainSink that counts delivered cells.
type trainCounter struct {
	cells int
	last  time.Duration
}

func (t *trainCounter) DeliverCell(c atm.Cell) { t.cells++ }

func (t *trainCounter) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	t.cells += len(cells)
	t.last = first + time.Duration(len(cells)-1)*spacing
}

// BenchmarkLink_CellThroughput streams back-to-back cells into a
// train-capable sink: the steady state is one pooled delivery event per
// burst and zero allocations per cell.
func BenchmarkLink_CellThroughput(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	var sink trainCounter
	l := NewLink(e, "bench", DefaultLinkParams(), &sink)
	c := atm.Cell{VCI: 5}
	b.ResetTimer()
	const burst = 32
	for i := 0; i < b.N; i += burst {
		for j := 0; j < burst; j++ {
			l.Send(c)
		}
		e.Run() // drain deliveries
	}
	b.StopTimer()
	if sink.cells == 0 {
		b.Fatal("no cells delivered")
	}
}

// BenchmarkLink_CellThroughputPerCell is the same stream into a sink that
// only understands single cells, costing one (pooled) event per cell.
func BenchmarkLink_CellThroughputPerCell(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	n := 0
	l := NewLink(e, "bench", DefaultLinkParams(), SinkFunc(func(c atm.Cell) { n++ }))
	c := atm.Cell{VCI: 5}
	b.ResetTimer()
	const burst = 32
	for i := 0; i < b.N; i += burst {
		for j := 0; j < burst; j++ {
			l.Send(c)
		}
		e.Run()
	}
	b.StopTimer()
	if n == 0 {
		b.Fatal("no cells delivered")
	}
}

// BenchmarkSwitch_TrainForward pushes cell trains through an uplink, the
// switch, and a downlink into a train-capable sink — the full fabric path
// of a streaming experiment.
func BenchmarkSwitch_TrainForward(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	var sink trainCounter
	sw := NewSwitch(e, "sw", 2, DefaultSwitchLatency, DefaultLinkParams(),
		[]CellSink{&trainCounter{}, &sink})
	if err := sw.Route(0, 7, 1); err != nil {
		b.Fatal(err)
	}
	up := NewLink(e, "up", DefaultLinkParams(), sw.PortSink(0))
	c := atm.Cell{VCI: 7}
	b.ResetTimer()
	const burst = 32
	for i := 0; i < b.N; i += burst {
		for j := 0; j < burst; j++ {
			up.Send(c)
		}
		e.Run()
	}
	b.StopTimer()
	if sink.cells == 0 {
		b.Fatal("no cells forwarded")
	}
}
