package fabric

import (
	"strings"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

const us = time.Microsecond

type collector struct {
	cells []atm.Cell
	times []time.Duration
	e     *sim.Engine
}

func (c *collector) DeliverCell(cell atm.Cell) {
	c.cells = append(c.cells, cell)
	c.times = append(c.times, c.e.Now())
}

func TestLinkDeliversAfterSerializationAndPropagation(t *testing.T) {
	e := sim.New(1)
	col := &collector{e: e}
	lp := LinkParams{CellTime: 3 * us, Propagation: 1 * us}
	l := NewLink(e, "l", lp, col)
	l.Send(atm.Cell{VCI: 7})
	e.Run()
	if len(col.cells) != 1 {
		t.Fatalf("delivered %d cells, want 1", len(col.cells))
	}
	if col.times[0] != 4*us {
		t.Fatalf("delivered at %v, want 4µs", col.times[0])
	}
	if col.cells[0].VCI != 7 {
		t.Fatalf("VCI = %d, want 7", col.cells[0].VCI)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	e := sim.New(1)
	col := &collector{e: e}
	lp := LinkParams{CellTime: 3 * us, Propagation: 0}
	l := NewLink(e, "l", lp, col)
	for i := 0; i < 5; i++ {
		l.Send(atm.Cell{})
	}
	e.Run()
	for i, at := range col.times {
		want := time.Duration(i+1) * 3 * us
		if at != want {
			t.Fatalf("cell %d delivered at %v, want %v", i, at, want)
		}
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	e := sim.New(1)
	col := &collector{e: e}
	l := NewLink(e, "l", LinkParams{CellTime: 1 * us}, col)
	for i := 0; i < 10; i++ {
		var c atm.Cell
		c.Payload[0] = byte(i)
		l.Send(c)
	}
	e.Run()
	for i, c := range col.cells {
		if int(c.Payload[0]) != i {
			t.Fatalf("cell %d carries payload %d", i, c.Payload[0])
		}
	}
}

func TestLinkBacklogAndWaitReady(t *testing.T) {
	e := sim.New(1)
	defer e.Shutdown()
	col := &collector{e: e}
	l := NewLink(e, "l", LinkParams{CellTime: 2 * us}, col)
	var after time.Duration
	e.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			l.Send(atm.Cell{})
		}
		if got := l.Backlog(); got != 8*us {
			t.Errorf("Backlog = %v, want 8µs", got)
		}
		l.WaitReady(p, 2) // drain until ≤ 2 cells queued
		after = p.Now()
	})
	e.Run()
	if after != 4*us {
		t.Fatalf("WaitReady returned at %v, want 4µs", after)
	}
}

func TestLinkLossRate(t *testing.T) {
	e := sim.New(7)
	col := &collector{e: e}
	l := NewLink(e, "l", LinkParams{CellTime: 1 * us}, col)
	l.SetLossRate(0.5)
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(atm.Cell{})
	}
	e.Run()
	st := l.Stats()
	if st.CellsSent != n {
		t.Fatalf("CellsSent = %d, want %d", st.CellsSent, n)
	}
	if st.CellsLost < n/3 || st.CellsLost > 2*n/3 {
		t.Fatalf("CellsLost = %d, want roughly %d", st.CellsLost, n/2)
	}
	if uint64(len(col.cells)) != n-st.CellsLost {
		t.Fatalf("delivered %d, want %d", len(col.cells), n-st.CellsLost)
	}
}

func TestLinkDeterministicLoss(t *testing.T) {
	e := sim.New(1)
	col := &collector{e: e}
	l := NewLink(e, "l", LinkParams{CellTime: 1 * us}, col)
	i := 0
	l.SetLossFunc(func(atm.Cell) bool { i++; return i == 2 })
	for j := 0; j < 3; j++ {
		l.Send(atm.Cell{VCI: atm.VCI(j)})
	}
	e.Run()
	if len(col.cells) != 2 || col.cells[0].VCI != 0 || col.cells[1].VCI != 2 {
		t.Fatalf("delivered VCIs %v, want [0 2]", col.cells)
	}
}

func TestSwitchRoutesByVCI(t *testing.T) {
	e := sim.New(1)
	a, b := &collector{e: e}, &collector{e: e}
	lp := LinkParams{CellTime: 1 * us}
	sw := NewSwitch(e, "sw", 2, 2*us, lp, []CellSink{a, b})
	if err := sw.Route(1, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := sw.Route(0, 11, 1); err != nil {
		t.Fatal(err)
	}
	sw.PortSink(0).DeliverCell(atm.Cell{VCI: 11})
	sw.PortSink(1).DeliverCell(atm.Cell{VCI: 10})
	e.Run()
	if len(a.cells) != 1 || a.cells[0].VCI != 10 {
		t.Fatalf("port 0 got %v", a.cells)
	}
	if len(b.cells) != 1 || b.cells[0].VCI != 11 {
		t.Fatalf("port 1 got %v", b.cells)
	}
	// latency 2µs + output serialization 1µs
	if a.times[0] != 3*us {
		t.Fatalf("port 0 delivery at %v, want 3µs", a.times[0])
	}
}

func TestSwitchDropsUnknownVCI(t *testing.T) {
	e := sim.New(1)
	a := &collector{e: e}
	sw := NewSwitch(e, "sw", 1, 0, LinkParams{CellTime: 1 * us}, []CellSink{a})
	sw.PortSink(0).DeliverCell(atm.Cell{VCI: 99})
	e.Run()
	if len(a.cells) != 0 {
		t.Fatal("unrouted cell was delivered")
	}
	if sw.UnknownVCICells() != 1 {
		t.Fatalf("UnknownVCICells = %d, want 1", sw.UnknownVCICells())
	}
}

func TestSwitchRejectsBadPort(t *testing.T) {
	e := sim.New(1)
	sw := NewSwitch(e, "sw", 1, 0, LinkParams{}, []CellSink{&collector{e: e}})
	if err := sw.Route(0, 1, 5); err == nil {
		t.Fatal("Route accepted out-of-range port")
	}
	if err := sw.Route(0, 1, -1); err == nil {
		t.Fatal("Route accepted negative port")
	}
	if err := sw.Route(3, 1, 0); err == nil {
		t.Fatal("Route accepted out-of-range input port")
	}
}

func TestSwitchOutputContention(t *testing.T) {
	// Two cells arriving simultaneously for the same output must serialize.
	e := sim.New(1)
	a := &collector{e: e}
	sw := NewSwitch(e, "sw", 1, 0, LinkParams{CellTime: 3 * us}, []CellSink{a})
	sw.Route(0, 1, 0)
	sw.PortSink(0).DeliverCell(atm.Cell{VCI: 1})
	sw.PortSink(0).DeliverCell(atm.Cell{VCI: 1})
	e.Run()
	if len(a.times) != 2 || a.times[0] != 3*us || a.times[1] != 6*us {
		t.Fatalf("delivery times %v, want [3µs 6µs]", a.times)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e, "cl", 4, LinkParams{CellTime: 1 * us, Propagation: 0}, 2*us)
	col := &collector{e: e}
	cl.SetHostSink(2, col)
	if err := cl.Route(0, 42, 2); err != nil {
		t.Fatal(err)
	}
	cl.Uplink(0).Send(atm.Cell{VCI: 42})
	e.Run()
	if len(col.cells) != 1 {
		t.Fatalf("host 2 received %d cells, want 1", len(col.cells))
	}
	// uplink 1µs + switch 2µs + downlink 1µs
	if col.times[0] != 4*us {
		t.Fatalf("delivered at %v, want 4µs", col.times[0])
	}
}

func TestClusterUndeliveredWithoutSink(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e, "cl", 2, LinkParams{CellTime: 1 * us}, 0)
	cl.Route(0, 5, 1) // no sink registered for host 1
	cl.Uplink(0).Send(atm.Cell{VCI: 5})
	e.Run()
	if cl.UndeliveredCells() != 1 {
		t.Fatalf("UndeliveredCells = %d, want 1", cl.UndeliveredCells())
	}
}

func TestPerInputPortProtection(t *testing.T) {
	// §3.2: with switch routes provisioned per input port, a third host
	// cannot inject cells on another pair's channel — its input port has
	// no route for that VCI.
	e := sim.New(1)
	cl := NewCluster(e, "cl", 3, LinkParams{CellTime: 1 * us}, 0)
	col := &collector{e: e}
	cl.SetHostSink(1, col)
	cl.Route(0, 40, 1)                   // channel host0 → host1 on VCI 40
	cl.Uplink(0).Send(atm.Cell{VCI: 40}) // legitimate
	cl.Uplink(2).Send(atm.Cell{VCI: 40}) // forged by host 2
	e.Run()
	if len(col.cells) != 1 {
		t.Fatalf("host 1 received %d cells, want only the legitimate one", len(col.cells))
	}
	if cl.Switch.UnknownVCICells() != 1 {
		t.Fatalf("forged cell not dropped: UnknownVCICells = %d", cl.Switch.UnknownVCICells())
	}
}

func TestDefaultCellTimeMatchesPeakBandwidth(t *testing.T) {
	// 48 bytes per DefaultCellTime should be ~15.2 MB/s (paper §4.2.1).
	bw := 48.0 / DefaultCellTime.Seconds() / 1e6
	if bw < 15.0 || bw > 15.4 {
		t.Fatalf("peak payload bandwidth = %.2f MB/s, want ~15.2", bw)
	}
}

func TestClusterSingleSwitchInvariant(t *testing.T) {
	// The cluster is strictly single-switch: one port per host, enforced
	// with a message that points multi-switch builders at internal/topo.
	e := sim.New(1)
	cl := NewCluster(e, "cl", 2, LinkParams{CellTime: 1 * us}, 0)
	if cl.Switch.Ports() != cl.Size() {
		t.Fatalf("switch has %d ports for %d hosts", cl.Switch.Ports(), cl.Size())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-range host accessor did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "single-switch") || !strings.Contains(msg, "internal/topo") {
			t.Fatalf("panic %v does not state the single-switch invariant", r)
		}
	}()
	cl.Uplink(2) // beyond the switch's port range
}
