package fabric

import (
	"fmt"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// echoSink records every arrival and bounces it straight back on the host's
// uplink with a reply VCI, so traffic crosses the shard boundary in both
// directions and reply timing depends on arrival timing.
type echoSink struct {
	e     *sim.Engine
	up    *Link
	reply atm.VCI
	log   *[]string
	name  string
}

func (s *echoSink) DeliverCell(c atm.Cell) {
	*s.log = append(*s.log, fmt.Sprintf("%s %v vci=%d seq=%d", s.name, s.e.Now(), c.VCI, c.Payload[0]))
	if s.reply != 0 {
		r := c
		r.VCI = s.reply
		s.up.Send(r)
	}
}

// runEchoCluster builds a 2-host star, has host 0 fire bursts of cells at
// host 1, host 1 echo each back, and returns the merged delivery log of both
// hosts. sharded selects whether each host lives on its own engine.
func runEchoCluster(sharded bool) []string {
	root := sim.New(1)
	var hostEng []*sim.Engine
	if sharded {
		hostEng = []*sim.Engine{root.NewShard(2), root.NewShard(3)}
	} else {
		hostEng = []*sim.Engine{nil, nil}
	}
	cl := NewShardedCluster(root, "cl", hostEng, DefaultLinkParams(), DefaultSwitchLatency)
	cl.Route(0, 40, 1)
	cl.Route(1, 41, 0)

	var log0, log1 []string
	cl.SetHostSink(0, &echoSink{e: cl.HostEngine(0), up: cl.Uplink(0), log: &log0, name: "h0"})
	cl.SetHostSink(1, &echoSink{e: cl.HostEngine(1), up: cl.Uplink(1), reply: 41, log: &log1, name: "h1"})

	// Bursts of back-to-back cells every 100µs: the echoes of one burst are
	// still in flight when the next burst departs, so windows carry traffic
	// in both directions at once.
	h0 := cl.HostEngine(0)
	for b := 0; b < 20; b++ {
		at := time.Duration(b) * 100 * time.Microsecond
		burst := b
		h0.At(at, func() {
			for k := 0; k < 4; k++ {
				var c atm.Cell
				c.VCI = 40
				c.Payload[0] = byte(4*burst + k)
				cl.Uplink(0).Send(c)
			}
		})
	}
	root.Run()
	return append(log0, log1...)
}

func TestShardedClusterMatchesSerial(t *testing.T) {
	serial := runEchoCluster(false)
	sharded := runEchoCluster(true)
	if len(serial) != len(sharded) {
		t.Fatalf("serial delivered %d cells, sharded %d", len(serial), len(sharded))
	}
	if len(serial) != 160 { // 80 cells at h1 + 80 echoes at h0
		t.Fatalf("delivered %d cells, want 160", len(serial))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("delivery %d differs:\n  serial : %s\n  sharded: %s", i, serial[i], sharded[i])
		}
	}
}

func TestCrossLinkTimingMatchesLocal(t *testing.T) {
	// A cross link must deliver at exactly the times a local link produces:
	// the transmit half owns serialization, the receive half replays flight.
	lp := LinkParams{CellTime: 3 * us, Propagation: 1 * us}

	le := sim.New(1)
	lcol := &collector{e: le}
	ll := NewLink(le, "l", lp, lcol)
	for i := 0; i < 5; i++ {
		ll.Send(atm.Cell{VCI: atm.VCI(i)})
	}
	le.Run()

	root := sim.New(1)
	dst := root.NewShard(2)
	ccol := &collector{e: dst}
	cl := NewCrossLink(root, dst, "x", lp, ccol)
	for i := 0; i < 5; i++ {
		cl.Send(atm.Cell{VCI: atm.VCI(i)})
	}
	root.Run()

	if len(ccol.times) != len(lcol.times) {
		t.Fatalf("cross delivered %d, local %d", len(ccol.times), len(lcol.times))
	}
	for i := range lcol.times {
		if ccol.times[i] != lcol.times[i] || ccol.cells[i].VCI != lcol.cells[i].VCI {
			t.Fatalf("cell %d: cross (%v, %d) vs local (%v, %d)",
				i, ccol.times[i], ccol.cells[i].VCI, lcol.times[i], lcol.cells[i].VCI)
		}
	}
}

func TestCrossLinkLookaheadRegistered(t *testing.T) {
	lp := LinkParams{CellTime: 3 * us, Propagation: 1 * us}
	root := sim.New(1)
	dst := root.NewShard(2)
	NewCrossLink(root, dst, "x", lp, &collector{e: dst})
	if got := root.Group().Lookahead(); got != 4*us {
		t.Fatalf("Lookahead = %v, want 4µs", got)
	}
	// A second, slower path must not widen the window.
	NewCrossLink(dst, root, "y", LinkParams{CellTime: 9 * us, Propagation: 1 * us}, &collector{e: root})
	if got := root.Group().Lookahead(); got != 4*us {
		t.Fatalf("Lookahead after second link = %v, want 4µs (min)", got)
	}
}

func TestCrossLinkPerPairLookahead(t *testing.T) {
	// Two host shards hang off the root: s1 over fast 4µs links (which stay
	// silent), s2 over slow 100µs links carrying an echo workload. The old
	// protocol clamped every window to the global minimum (4µs) and needed
	// ~25 rounds per slow flight; per-pair registration must bound root and
	// s2 only by the 100µs paths that reach them.
	fast := LinkParams{CellTime: 3 * us, Propagation: 1 * us}
	slow := LinkParams{CellTime: 3 * us, Propagation: 97 * us}
	root := sim.New(1)
	s1 := root.NewShard(2)
	s2 := root.NewShard(3)
	g := root.Group()

	NewCrossLink(root, s1, "f-down", fast, &collector{e: s1})
	NewCrossLink(s1, root, "f-up", fast, &collector{e: root})
	var echoes []string
	up2 := NewCrossLink(s2, root, "s-up", slow, &echoSink{e: root, log: &echoes, name: "rt"})
	down2 := NewCrossLink(root, s2, "s-down", slow, nil)
	down2.peer.sink = &echoSink{e: s2, up: up2, reply: 7, log: &echoes, name: "s2"}

	if g.Lookahead() != 4*us {
		t.Fatalf("Lookahead = %v, want the global min 4µs", g.Lookahead())
	}
	const trips = 10
	for i := 0; i < trips; i++ {
		at := time.Duration(i) * 500 * time.Microsecond
		root.At(at, func() {
			var c atm.Cell
			c.VCI = 5
			down2.Send(c)
		})
	}
	root.Run()

	if len(echoes) != 2*trips {
		t.Fatalf("delivered %d cells, want %d", len(echoes), 2*trips)
	}
	prof := g.Profile()
	perShard := prof.Total().Windows / uint64(len(prof.Shards))
	if perShard > 400 {
		t.Fatalf("ran %d rounds per shard; per-pair lookahead should need far fewer than the ~1250 a 4µs global window implies", perShard)
	}
	if prof.Total().FastForwards == 0 {
		t.Fatal("no window ever fast-forwarded past the legacy global-min horizon")
	}
}

func TestCrossLinkRejectsBadEndpoints(t *testing.T) {
	root := sim.New(1)
	dst := root.NewShard(2)
	other := sim.New(3) // not in the group
	for _, tc := range []struct {
		name   string
		src, d *sim.Engine
	}{
		{"foreign src", other, dst},
		{"foreign dst", root, other},
		{"same shard", root, root},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewCrossLink did not panic", tc.name)
				}
			}()
			NewCrossLink(tc.src, tc.d, "x", DefaultLinkParams(), &collector{e: tc.d})
		}()
	}
}

func TestSwitchRejectsForeignShardLink(t *testing.T) {
	root := sim.New(1)
	s1 := root.NewShard(2)
	l := NewLink(s1, "l", DefaultLinkParams(), &collector{e: s1})
	defer func() {
		if recover() == nil {
			t.Fatal("switch accepted an output link transmitting on another shard")
		}
	}()
	NewSwitchWithLinks(root, "sw", DefaultSwitchLatency, []*Link{l})
}
