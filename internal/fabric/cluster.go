package fabric

import (
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// Cluster wires n hosts to one switch with full-duplex fiber, the topology
// of the paper's 8-node ATM cluster (five SPARCstation-20s and three
// SPARCstation-10s on an ASX-200). NIC models attach afterwards: each host
// sends on its Uplink and receives through the sink registered with
// SetHostSink.
//
// Cluster is deliberately single-switch: every host occupies exactly one
// port of the one switch, so host indices and switch ports coincide and a
// route is always a single table entry. That invariant is enforced at
// construction (the switch's port count must equal the host count) and in
// every host-indexed accessor. Fabrics with more than one switch — Clos
// stages, rings, island overlays — are built by internal/topo, which
// compiles a topology spec onto the same Link/Switch primitives and
// installs multi-hop routes; Cluster never grows a second switch.
type Cluster struct {
	Engine    *sim.Engine
	Switch    *Switch
	uplinks   []*Link
	hostSinks []CellSink
	// hostEng is the shard engine each host's processes and NIC run on
	// (all equal to Engine in a serial cluster).
	hostEng []*sim.Engine
	undeliv uint64
}

// hostPort indirects a switch output port to the host sink registered
// later with SetHostSink. It passes cell trains through when the host sink
// understands them (the NIC models do) and otherwise falls back to
// scheduling per-cell deliveries at the train's arrival times.
type hostPort struct {
	c *Cluster
	i int
}

func (h hostPort) DeliverCell(cell atm.Cell) {
	s := h.c.hostSinks[h.i]
	if s == nil {
		h.c.undeliv++
		return
	}
	s.DeliverCell(cell)
}

func (h hostPort) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	s := h.c.hostSinks[h.i]
	if s == nil {
		h.c.undeliv += uint64(len(cells))
		return
	}
	if ts, ok := s.(TrainSink); ok {
		ts.DeliverTrain(cells, first, spacing)
		return
	}
	// Per-cell fallback: cells[k] for k > 0 arrive in the future, so they
	// must be re-scheduled (the train slice is only valid during this call,
	// hence the per-cell copy into the closure). Scheduling goes to the
	// host's own shard engine — the train was delivered there.
	for k := 1; k < len(cells); k++ {
		cell := cells[k]
		h.c.hostEng[h.i].At(first+time.Duration(k)*spacing, func() { h.DeliverCell(cell) })
	}
	h.DeliverCell(cells[0])
}

// NewCluster builds an n-host star around one switch, everything on one
// engine.
func NewCluster(e *sim.Engine, name string, n int, lp LinkParams, switchLatency time.Duration) *Cluster {
	return NewShardedCluster(e, name, make([]*sim.Engine, n), lp, switchLatency)
}

// NewShardedCluster builds a star whose hosts may live on different shard
// engines of root's group: host i's NIC and processes run on hostEng[i]
// (nil or root means colocated with the switch). The switch always runs on
// root. Links to and from a remote host become cross-shard links, whose
// fixed latency (cell serialization + fiber propagation) is exactly the
// lookahead the group's conservative window protocol synchronizes on — the
// paper's own decoupling argument (§3): hosts interact only through the
// switch over links of at least one cell time.
//
// Exchange registration order is fixed — switch→host mailboxes in host
// order, then host→switch mailboxes in host order — so cross-shard arrivals
// that tie on timestamps are injected in a deterministic order regardless
// of shard count or scheduling.
func NewShardedCluster(root *sim.Engine, name string, hostEng []*sim.Engine, lp LinkParams, switchLatency time.Duration) *Cluster {
	n := len(hostEng)
	c := &Cluster{Engine: root, hostSinks: make([]CellSink, n), hostEng: make([]*sim.Engine, n)}
	out := make([]*Link, n)
	for i := 0; i < n; i++ {
		he := hostEng[i]
		if he == nil {
			he = root
		}
		c.hostEng[i] = he
		pname := fmt.Sprintf("%s.sw.port%d", name, i)
		if he != root {
			out[i] = NewCrossLink(root, he, pname, lp, hostPort{c: c, i: i})
		} else {
			out[i] = NewLink(root, pname, lp, hostPort{c: c, i: i})
		}
	}
	c.Switch = NewSwitchWithLinks(root, name+".sw", switchLatency, out)
	if c.Switch.Ports() != n {
		panic(fmt.Sprintf("fabric: cluster %s wired %d switch ports for %d hosts; Cluster is strictly single-switch with one port per host — multi-switch fabrics are built by internal/topo", name, c.Switch.Ports(), n))
	}
	for i := 0; i < n; i++ {
		uname := fmt.Sprintf("%s.up%d", name, i)
		if c.hostEng[i] != root {
			c.uplinks = append(c.uplinks, NewCrossLink(c.hostEng[i], root, uname, lp, c.Switch.PortSink(i)))
		} else {
			c.uplinks = append(c.uplinks, NewLink(root, uname, lp, c.Switch.PortSink(i)))
		}
	}
	return c
}

// checkHost enforces the single-switch invariant at the accessor surface:
// a host index is a port of the one switch, nothing else.
func (c *Cluster) checkHost(host int, op string) {
	if host < 0 || host >= len(c.uplinks) {
		panic(fmt.Sprintf("fabric: %s host %d out of range [0,%d); Cluster is strictly single-switch with one port per host — multi-switch fabrics are built by internal/topo", op, host, len(c.uplinks)))
	}
}

// HostEngine returns the shard engine host's NIC and processes must run on.
func (c *Cluster) HostEngine(host int) *sim.Engine {
	c.checkHost(host, "HostEngine")
	return c.hostEng[host]
}

// Size returns the number of host ports.
func (c *Cluster) Size() int { return len(c.uplinks) }

// Uplink returns host's transmit link into the switch.
func (c *Cluster) Uplink(host int) *Link {
	c.checkHost(host, "Uplink")
	return c.uplinks[host]
}

// Downlink returns the switch output link toward host (for loss injection).
func (c *Cluster) Downlink(host int) *Link {
	c.checkHost(host, "Downlink")
	return c.Switch.OutputLink(host)
}

// SetHostSink registers the receive sink (a NIC input FIFO) for host.
func (c *Cluster) SetHostSink(host int, s CellSink) {
	c.checkHost(host, "SetHostSink")
	c.hostSinks[host] = s
}

// Route programs the switch to deliver vci, arriving from host `from`, to
// host `to`. Per-input-port routes extend protection across the network
// (§3.2). On the single switch the host indices are the switch ports —
// the one-entry special case of the multi-hop route walk internal/topo
// performs.
func (c *Cluster) Route(from int, vci atm.VCI, to int) error {
	return c.Switch.Route(from, vci, to)
}

// Unroute removes a provisioned route again (channel tear-down).
func (c *Cluster) Unroute(from int, vci atm.VCI) {
	c.Switch.Unroute(from, vci)
}

// UndeliveredCells counts cells that reached a port with no attached NIC.
func (c *Cluster) UndeliveredCells() uint64 { return c.undeliv }
