package fabric

import (
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// Cluster wires n hosts to one switch with full-duplex fiber, the topology
// of the paper's 8-node ATM cluster (five SPARCstation-20s and three
// SPARCstation-10s on an ASX-200). NIC models attach afterwards: each host
// sends on its Uplink and receives through the sink registered with
// SetHostSink.
type Cluster struct {
	Engine    *sim.Engine
	Switch    *Switch
	uplinks   []*Link
	hostSinks []CellSink
	undeliv   uint64
}

// hostPort indirects a switch output port to the host sink registered
// later with SetHostSink. It passes cell trains through when the host sink
// understands them (the NIC models do) and otherwise falls back to
// scheduling per-cell deliveries at the train's arrival times.
type hostPort struct {
	c *Cluster
	i int
}

func (h hostPort) DeliverCell(cell atm.Cell) {
	s := h.c.hostSinks[h.i]
	if s == nil {
		h.c.undeliv++
		return
	}
	s.DeliverCell(cell)
}

func (h hostPort) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	s := h.c.hostSinks[h.i]
	if s == nil {
		h.c.undeliv += uint64(len(cells))
		return
	}
	if ts, ok := s.(TrainSink); ok {
		ts.DeliverTrain(cells, first, spacing)
		return
	}
	// Per-cell fallback: cells[k] for k > 0 arrive in the future, so they
	// must be re-scheduled (the train slice is only valid during this call,
	// hence the per-cell copy into the closure).
	for k := 1; k < len(cells); k++ {
		cell := cells[k]
		h.c.Engine.At(first+time.Duration(k)*spacing, func() { h.DeliverCell(cell) })
	}
	h.DeliverCell(cells[0])
}

// NewCluster builds an n-host star around one switch.
func NewCluster(e *sim.Engine, name string, n int, lp LinkParams, switchLatency time.Duration) *Cluster {
	c := &Cluster{Engine: e, hostSinks: make([]CellSink, n)}
	sinks := make([]CellSink, n)
	for i := 0; i < n; i++ {
		sinks[i] = hostPort{c: c, i: i}
	}
	c.Switch = NewSwitch(e, name+".sw", n, switchLatency, lp, sinks)
	for i := 0; i < n; i++ {
		c.uplinks = append(c.uplinks, NewLink(e, fmt.Sprintf("%s.up%d", name, i), lp, c.Switch.PortSink(i)))
	}
	return c
}

// Size returns the number of host ports.
func (c *Cluster) Size() int { return len(c.uplinks) }

// Uplink returns host's transmit link into the switch.
func (c *Cluster) Uplink(host int) *Link { return c.uplinks[host] }

// Downlink returns the switch output link toward host (for loss injection).
func (c *Cluster) Downlink(host int) *Link { return c.Switch.OutputLink(host) }

// SetHostSink registers the receive sink (a NIC input FIFO) for host.
func (c *Cluster) SetHostSink(host int, s CellSink) { c.hostSinks[host] = s }

// Route programs the switch to deliver vci, arriving from host `from`, to
// host `to`. Per-input-port routes extend protection across the network
// (§3.2).
func (c *Cluster) Route(from int, vci atm.VCI, to int) error {
	return c.Switch.Route(from, vci, to)
}

// UndeliveredCells counts cells that reached a port with no attached NIC.
func (c *Cluster) UndeliveredCells() uint64 { return c.undeliv }
