// Package fabric models the network substrate of the paper's testbed: the
// 140 Mbit/s TAXI fiber links and the Fore ASX-200 ATM switch that connect
// the cluster's workstations. Links serialize cells at line rate (which is
// what makes the fiber saturate, Figure 4) and can inject cell loss; the
// switch forwards by VCI with a fixed cut-through latency and per-output
// queueing.
package fabric

import (
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// DefaultCellTime is the per-cell serialization time of the 140 Mbit/s TAXI
// fiber. Calibration: the paper quotes a 15.2 MB/s peak AAL5 payload
// bandwidth (§4.2.1), i.e. 48 bytes of payload every ~3.16 µs.
const DefaultCellTime = 3158 * time.Nanosecond

// DefaultPropagation is the one-way fiber propagation delay for a
// machine-room scale link (tens of meters).
const DefaultPropagation = 200 * time.Nanosecond

// CellSink receives cells off a link. NIC input FIFOs and switch ports
// implement it. Delivery happens in engine-callback context.
type CellSink interface {
	DeliverCell(c atm.Cell)
}

// TrainSink is implemented by sinks that can absorb a whole back-to-back
// cell train in one call. A link that finds consecutive in-flight cells
// spaced exactly one CellTime apart delivers them together: DeliverTrain is
// invoked at the arrival time of cells[0], and cells[i] is defined to arrive
// at first + i*spacing. The sink must account for those arrival times
// arithmetically (they are in the future for i > 0). The cells slice is
// owned by the link and valid only for the duration of the call.
//
// The contract makes train delivery virtual-time-neutral: a sink that
// processes cell i as if it had been handed over at first + i*spacing
// reproduces the per-cell delivery schedule exactly, while the engine pays
// for one event per train rather than one per cell.
type TrainSink interface {
	CellSink
	DeliverTrain(cells []atm.Cell, first, spacing time.Duration)
}

// SinkFunc adapts a function to the CellSink interface.
type SinkFunc func(c atm.Cell)

// DeliverCell calls f(c).
//
//unetlint:allow costcharge adapter only; any processing cost belongs to the wrapped function
func (f SinkFunc) DeliverCell(c atm.Cell) { f(c) }

// LinkParams configures a link's timing.
type LinkParams struct {
	// CellTime is the serialization time of one 53-byte cell.
	CellTime time.Duration
	// Propagation is the one-way flight time.
	Propagation time.Duration
}

// DefaultLinkParams returns 140 Mbit/s TAXI fiber timing.
func DefaultLinkParams() LinkParams {
	return LinkParams{CellTime: DefaultCellTime, Propagation: DefaultPropagation}
}

// LinkStats counts link activity.
type LinkStats struct {
	CellsSent uint64
	CellsLost uint64
	// CellsDuplicated counts extra copies enqueued by an impairment
	// injector (each copy also appears in the receiver's cell count).
	CellsDuplicated uint64
}

// Verdict is an impairment decision for one cell about to leave a
// transmitter: drop it, deliver a second copy, and/or delay its arrival.
type Verdict struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration // extra arrival delay beyond propagation
}

// Injector decides the fate of each transmitted cell; internal/faults
// provides implementations. Judge may mutate the cell in place (bit
// corruption) — the link passes a private copy. Implementations must be
// deterministic functions of their own seeded state and the (cell,
// departure-time) sequence they observe — never of the engine's RNG, the
// wall clock, or anything shard-dependent — so fault outcomes are
// byte-identical at every shard count. Judging must charge no virtual
// time: impairments reshape the delivery schedule, they never stall the
// transmitter.
type Injector interface {
	Judge(c *atm.Cell, depart time.Duration) Verdict
}

// inflight is one cell on the wire, tagged with its arrival time at the far
// end (last bit out of the transmitter plus propagation).
type inflight struct {
	c      atm.Cell
	arrive time.Duration
}

// Link is a unidirectional serializing link: cells handed to Send depart in
// order at line rate and are delivered to the sink one propagation delay
// after their last bit leaves. The transmit queue is unbounded — the sender
// (a NIC model) is responsible for pacing itself via Backlog, mirroring a
// NIC output FIFO of finite depth.
//
// In-flight cells live in a ring ordered by arrival time (serialization
// makes arrivals monotonic), drained by a single armed delivery event
// instead of one event per cell. When the sink implements TrainSink, a
// back-to-back run — consecutive arrivals spaced exactly CellTime — is
// handed over in one call.
type Link struct {
	e        *sim.Engine
	name     string
	p        LinkParams
	sink     CellSink
	tsink    TrainSink // sink, if it also implements TrainSink
	nextFree time.Duration
	lossFn   func(atm.Cell) bool
	inj      Injector
	stats    LinkStats

	// lastArrive clamps impaired arrivals: the in-flight ring is ordered by
	// arrival time, and a fiber never reorders, so a jittered cell delays
	// everything behind it rather than being overtaken.
	lastArrive time.Duration

	// scratch is the private cell copy handed to the injector. It lives on
	// the (already heap-allocated) Link so the Judge interface call never
	// forces SendAt's cell parameter to escape — the steady-state data path
	// stays allocation-free whether or not an injector is installed.
	scratch atm.Cell

	pend  []inflight // power-of-two ring of cells on the wire
	head  int
	n     int
	armed bool
	train []atm.Cell // scratch slice reused across DeliverTrain calls

	// Cross-shard mode (see NewCrossLink): the transmit side keeps the
	// serialization arithmetic (nextFree, stats, loss) but pushes in-flight
	// cells into a lock-free SPSC ring instead of the local pend ring; peer
	// is the receive half in the destination shard, which owns the pend
	// ring, the delivery machinery and (in barrier mode) the train
	// grouping. A local link has peer == nil.
	peer *Link
	ring *sim.SPSC[inflight]
	// mbox is the group mailbox handle for a tx half: marked pending on
	// ring pushes so barrier-mode clean rounds can skip the drain phase (a
	// no-op under the neighbor protocol, where consumers poll the ring).
	mbox *sim.Mailbox
}

// NewLink creates a link delivering into sink.
func NewLink(e *sim.Engine, name string, p LinkParams, sink CellSink) *Link {
	if p.CellTime <= 0 {
		p.CellTime = DefaultCellTime
	}
	l := &Link{e: e, name: name, p: p, sink: sink}
	l.tsink, _ = sink.(TrainSink)
	return l
}

// NewCrossLink creates a link whose transmitter lives in shard engine src
// and whose receiver (sink) lives in shard engine dst. The returned Link is
// the transmit half: senders use it exactly like a local link — Send/SendAt
// serialize against nextFree, Backlog/WaitReady pace the output FIFO, loss
// applies at the transmitter — but cells in flight cross the shard boundary
// through a group mailbox drained at window barriers, and the receive half
// replays them through the standard in-flight ring so delivery times and
// train grouping are the ones a local link would have produced.
//
// The link's latency (CellTime + Propagation) is registered as the
// src→dst pair lookahead: a cell sent at time t arrives no earlier than
// t + CellTime + Propagation, which is exactly the bound the conservative
// window protocol needs — and registering it per pair lets shards joined
// only by slow paths keep windows wider than the global minimum.
func NewCrossLink(src, dst *sim.Engine, name string, p LinkParams, sink CellSink) *Link {
	if p.CellTime <= 0 {
		p.CellTime = DefaultCellTime
	}
	g := src.Group()
	if g == nil || dst.Group() != g {
		panic("fabric: cross link endpoints must share a shard group")
	}
	if src == dst {
		panic("fabric: cross link endpoints are the same shard; use NewLink")
	}
	peer := &Link{e: dst, name: name, p: p, sink: sink}
	peer.tsink, _ = sink.(TrainSink)
	l := &Link{e: src, name: name, p: p, peer: peer, ring: sim.NewSPSC[inflight](256)}
	l.mbox = g.AddExchangeFrom(src, dst, crossExchange{l})
	g.ObserveLookaheadBetween(src, dst, p.CellTime+p.Propagation)
	return l
}

// Engine returns the engine the link's transmitter runs on. NIC models use
// it to assert shard affinity: a host must transmit on a link of its own
// shard.
func (l *Link) Engine() *sim.Engine { return l.e }

// Name returns the link's wiring name. Names are fixed by the topology,
// not the shard layout, which is what lets fault plans key their per-link
// random streams on them and stay byte-identical at every shard count.
func (l *Link) Name() string { return l.name }

// crossExchange moves one cross-shard link's ring traffic into the receive
// half. It always runs on the destination shard's worker goroutine; the
// synchronization that orders it after the transmitter's pushes depends on
// the group's sync protocol, and the exchange implements sim.CrossSource
// so the neighbor protocol can drive it.
//
// Both protocols deliver through the same machinery: Drain stages ring
// entries into the receive half's pend ring and arms the classic delivery
// event, so arrivals replay with the delivery times, train grouping and
// same-instant event ordering a local link would have produced —
// byte-identical across serial, barrier and neighbor runs. The protocols
// differ only in when Drain runs and what it may take: at a window barrier
// with the producer stopped, ring and spill alike are safe to move
// (PopQuiescent); at a neighbor-mode round top the producer keeps running,
// so only the published ring entries are taken (Pop) and spilled cells
// stay with the producer until it flushes them itself.
type crossExchange struct{ l *Link }

func (x crossExchange) Drain() {
	l := x.l
	peer := l.peer
	if l.mbox.Neighbor() {
		for {
			f, ok := l.ring.Pop()
			if !ok {
				break
			}
			peer.push(f)
		}
	} else {
		for {
			f, ok := l.ring.PopQuiescent()
			if !ok {
				break
			}
			peer.push(f)
		}
	}
	if peer.n > 0 && !peer.armed {
		peer.armed = true
		peer.e.AtArg(peer.pend[peer.head].arrive, linkFire, peer)
	}
}

// Pending reports outstanding ring or spill traffic (any shard).
func (x crossExchange) Pending() bool { return x.l.ring.Pending() }

// SpillPending reports producer-side spilled traffic (any shard).
func (x crossExchange) SpillPending() bool { return x.l.ring.SpillLen() > 0 }

// FlushSpill retries moving spilled cells into the ring (producer shard
// only).
func (x crossExchange) FlushSpill() bool { return x.l.ring.FlushSpill() }

// SpillBound reports the arrival time of the oldest spilled cell, which
// caps how far the producer may publish (producer shard only).
func (x crossExchange) SpillBound() (time.Duration, bool) {
	f, ok := x.l.ring.SpillHead()
	return f.arrive, ok
}

// Params returns the link's timing parameters.
func (l *Link) Params() LinkParams { return l.p }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetLossFunc installs a per-cell drop predicate (nil disables loss).
// Dropped cells consume wire time but never reach the sink, like cells
// discarded by a congested switch or a marginal fiber.
func (l *Link) SetLossFunc(fn func(atm.Cell) bool) { l.lossFn = fn }

// SetLossRate makes the link drop cells independently with probability
// rate, using the engine's deterministic randomness.
func (l *Link) SetLossRate(rate float64) {
	if rate <= 0 {
		l.lossFn = nil
		return
	}
	l.lossFn = func(atm.Cell) bool { return l.e.Rand().Float64() < rate }
}

// SetInjector installs an impairment injector (nil disables it). The
// injector judges every cell after the loss predicate, at its departure
// time.
func (l *Link) SetInjector(inj Injector) { l.inj = inj }

// Send enqueues c for transmission and returns the virtual time at which
// its last bit leaves the transmitter. Delivery to the sink is scheduled
// automatically.
func (l *Link) Send(c atm.Cell) time.Duration {
	return l.SendAt(c, l.e.Now())
}

// SendAt enqueues c as if Send had been called at virtual time start (which
// must not precede the current time). It lets a sender that has computed a
// whole departure schedule arithmetically — a NIC draining its transmit
// FIFO, the switch forwarding a train — enqueue the cells in one callback
// instead of sleeping between them: serialization against nextFree yields
// exactly the departure times the per-cell calls would have produced.
func (l *Link) SendAt(c atm.Cell, start time.Duration) time.Duration {
	if now := l.e.Now(); start < now {
		start = now
	}
	if l.nextFree > start {
		start = l.nextFree
	}
	depart := start + l.p.CellTime
	l.nextFree = depart
	l.stats.CellsSent++
	if l.lossFn != nil && l.lossFn(c) {
		l.stats.CellsLost++
		return depart
	}
	if l.inj != nil {
		l.scratch = c
		v := l.inj.Judge(&l.scratch, depart)
		if v.Drop {
			l.stats.CellsLost++
			return depart
		}
		arrive := depart + l.p.Propagation + v.Delay
		if arrive < l.lastArrive {
			arrive = l.lastArrive
		}
		l.lastArrive = arrive
		l.enqueue(l.scratch, arrive)
		if v.Duplicate {
			l.stats.CellsDuplicated++
			l.lastArrive = arrive + l.p.CellTime
			l.enqueue(l.scratch, l.lastArrive)
		}
		return depart
	}
	l.enqueue(c, depart+l.p.Propagation)
	return depart
}

// enqueue hands an in-flight cell to the delivery machinery: the
// cross-shard SPSC ring on a tx half, the local pend ring (arming the
// delivery event) otherwise.
func (l *Link) enqueue(c atm.Cell, arrive time.Duration) {
	if l.peer != nil {
		l.mbox.MarkPending()
		l.ring.Push(inflight{c: c, arrive: arrive})
		return
	}
	l.push(inflight{c: c, arrive: arrive})
	if !l.armed {
		l.armed = true
		l.e.AtArg(l.pend[l.head].arrive, linkFire, l)
	}
}

// push appends to the in-flight ring, growing it when full.
func (l *Link) push(f inflight) {
	if l.n == len(l.pend) {
		grown := make([]inflight, max(4, 2*len(l.pend)))
		for i := 0; i < l.n; i++ {
			grown[i] = l.pend[(l.head+i)&(len(l.pend)-1)]
		}
		l.pend = grown
		l.head = 0
	}
	l.pend[(l.head+l.n)&(len(l.pend)-1)] = f
	l.n++
}

// pop removes the oldest in-flight cell.
func (l *Link) pop() inflight {
	f := l.pend[l.head]
	l.pend[l.head] = inflight{}
	l.head = (l.head + 1) & (len(l.pend) - 1)
	l.n--
	return f
}

// linkFire is the static delivery callback shared by all links, so arming
// the delivery event allocates nothing.
func linkFire(a any) { a.(*Link).fire() }

// fire delivers the front of the in-flight ring. It runs at the arrival
// time of the oldest cell. Consecutive cells spaced exactly one CellTime
// apart form a train; if the sink understands trains the whole run is
// delivered here, otherwise only the head cell is (and the event re-arms
// for the next). Re-arming happens before delivery so a sink that feeds the
// link again observes consistent state.
func (l *Link) fire() {
	now := l.e.Now()
	if l.tsink == nil {
		f := l.pop()
		l.rearm()
		l.sink.DeliverCell(f.c)
		return
	}
	l.train = append(l.train[:0], l.pop().c)
	next := now + l.p.CellTime
	for l.n > 0 && l.pend[l.head].arrive == next {
		l.train = append(l.train, l.pop().c)
		next += l.p.CellTime
	}
	l.rearm()
	l.tsink.DeliverTrain(l.train, now, l.p.CellTime)
}

// rearm schedules the next delivery, if cells remain in flight.
func (l *Link) rearm() {
	if l.n > 0 {
		l.e.AtArg(l.pend[l.head].arrive, linkFire, l)
	} else {
		l.armed = false
	}
}

// NextFree returns the virtual time at which the transmitter finishes its
// committed work — the earliest start a further SendAt could get. Senders
// that pace themselves arithmetically (instead of sleeping via WaitReady)
// use it to compute output-FIFO stalls in closed form.
func (l *Link) NextFree() time.Duration { return l.nextFree }

// Backlog returns how long the transmitter is already committed beyond the
// current instant — the serialization debt of queued cells. NIC models use
// it to stall when their shallow output FIFO would be full.
func (l *Link) Backlog() time.Duration {
	if l.nextFree <= l.e.Now() {
		return 0
	}
	return l.nextFree - l.e.Now()
}

// WaitReady blocks the process until the transmit backlog is at most
// maxCells cells' worth of time, modeling a bounded output FIFO. Each link
// has a single transmitting process, so the backlog only drains while that
// process is blocked here: the exact wake time is computed once and slept
// once, rather than polled.
func (l *Link) WaitReady(p *sim.Proc, maxCells int) {
	limit := time.Duration(maxCells) * l.p.CellTime
	if b := l.Backlog(); b > limit {
		p.Sleep(b - limit)
	}
}
