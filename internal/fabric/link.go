// Package fabric models the network substrate of the paper's testbed: the
// 140 Mbit/s TAXI fiber links and the Fore ASX-200 ATM switch that connect
// the cluster's workstations. Links serialize cells at line rate (which is
// what makes the fiber saturate, Figure 4) and can inject cell loss; the
// switch forwards by VCI with a fixed cut-through latency and per-output
// queueing.
package fabric

import (
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// DefaultCellTime is the per-cell serialization time of the 140 Mbit/s TAXI
// fiber. Calibration: the paper quotes a 15.2 MB/s peak AAL5 payload
// bandwidth (§4.2.1), i.e. 48 bytes of payload every ~3.16 µs.
const DefaultCellTime = 3158 * time.Nanosecond

// DefaultPropagation is the one-way fiber propagation delay for a
// machine-room scale link (tens of meters).
const DefaultPropagation = 200 * time.Nanosecond

// CellSink receives cells off a link. NIC input FIFOs and switch ports
// implement it. Delivery happens in engine-callback context.
type CellSink interface {
	DeliverCell(c atm.Cell)
}

// SinkFunc adapts a function to the CellSink interface.
type SinkFunc func(c atm.Cell)

// DeliverCell calls f(c).
func (f SinkFunc) DeliverCell(c atm.Cell) { f(c) }

// LinkParams configures a link's timing.
type LinkParams struct {
	// CellTime is the serialization time of one 53-byte cell.
	CellTime time.Duration
	// Propagation is the one-way flight time.
	Propagation time.Duration
}

// DefaultLinkParams returns 140 Mbit/s TAXI fiber timing.
func DefaultLinkParams() LinkParams {
	return LinkParams{CellTime: DefaultCellTime, Propagation: DefaultPropagation}
}

// LinkStats counts link activity.
type LinkStats struct {
	CellsSent uint64
	CellsLost uint64
}

// Link is a unidirectional serializing link: cells handed to Send depart in
// order at line rate and are delivered to the sink one propagation delay
// after their last bit leaves. The transmit queue is unbounded — the sender
// (a NIC model) is responsible for pacing itself via Backlog, mirroring a
// NIC output FIFO of finite depth.
type Link struct {
	e        *sim.Engine
	name     string
	p        LinkParams
	sink     CellSink
	nextFree time.Duration
	lossFn   func(atm.Cell) bool
	stats    LinkStats
}

// NewLink creates a link delivering into sink.
func NewLink(e *sim.Engine, name string, p LinkParams, sink CellSink) *Link {
	if p.CellTime <= 0 {
		p.CellTime = DefaultCellTime
	}
	return &Link{e: e, name: name, p: p, sink: sink}
}

// Params returns the link's timing parameters.
func (l *Link) Params() LinkParams { return l.p }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetLossFunc installs a per-cell drop predicate (nil disables loss).
// Dropped cells consume wire time but never reach the sink, like cells
// discarded by a congested switch or a marginal fiber.
func (l *Link) SetLossFunc(fn func(atm.Cell) bool) { l.lossFn = fn }

// SetLossRate makes the link drop cells independently with probability
// rate, using the engine's deterministic randomness.
func (l *Link) SetLossRate(rate float64) {
	if rate <= 0 {
		l.lossFn = nil
		return
	}
	l.lossFn = func(atm.Cell) bool { return l.e.Rand().Float64() < rate }
}

// Send enqueues c for transmission and returns the virtual time at which
// its last bit leaves the transmitter. Delivery to the sink is scheduled
// automatically.
func (l *Link) Send(c atm.Cell) time.Duration {
	start := l.e.Now()
	if l.nextFree > start {
		start = l.nextFree
	}
	depart := start + l.p.CellTime
	l.nextFree = depart
	l.stats.CellsSent++
	if l.lossFn != nil && l.lossFn(c) {
		l.stats.CellsLost++
		return depart
	}
	l.e.At(depart+l.p.Propagation, func() { l.sink.DeliverCell(c) })
	return depart
}

// Backlog returns how long the transmitter is already committed beyond the
// current instant — the serialization debt of queued cells. NIC models use
// it to stall when their shallow output FIFO would be full.
func (l *Link) Backlog() time.Duration {
	if l.nextFree <= l.e.Now() {
		return 0
	}
	return l.nextFree - l.e.Now()
}

// WaitReady blocks the process until the transmit backlog is at most
// maxCells cells' worth of time, modeling a bounded output FIFO.
func (l *Link) WaitReady(p *sim.Proc, maxCells int) {
	limit := time.Duration(maxCells) * l.p.CellTime
	for {
		b := l.Backlog()
		if b <= limit {
			return
		}
		p.Sleep(b - limit)
	}
}
