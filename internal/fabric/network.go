package fabric

import (
	"unet/internal/atm"
	"unet/internal/sim"
)

// Network is the fabric surface the connection manager and the NIC attach
// path program: a set of host attachment points (indexed 0..Size-1) plus
// VCI route provisioning between them. Two implementations exist — the
// single-switch Cluster in this package (the paper's testbed) and the
// topo-compiled multi-switch Fabric (internal/topo), whose Route installs
// a per-stage entry at every switch along the computed path. Code written
// against Network (unet.Manager, nic.Attach, the testbed fixtures) runs
// unchanged on either.
type Network interface {
	// Size returns the number of host attachment points.
	Size() int
	// Uplink returns host's transmit link into the fabric.
	Uplink(host int) *Link
	// SetHostSink registers the receive sink (a NIC input FIFO) for host.
	SetHostSink(host int, s CellSink)
	// HostEngine returns the shard engine the host's NIC and processes
	// must run on.
	HostEngine(host int) *sim.Engine
	// Downlink returns the last-hop link toward host (for loss and fault
	// injection at the receive side).
	Downlink(host int) *Link
	// Route provisions vci, arriving from host `from`, to be delivered to
	// host `to` — at every forwarding stage between them.
	Route(from int, vci atm.VCI, to int) error
	// Unroute removes the channel's per-stage entries again.
	Unroute(from int, vci atm.VCI)
}

var _ Network = (*Cluster)(nil)
