package fabric

import (
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/sim"
)

// DefaultSwitchLatency is the ASX-200 cut-through forwarding latency per
// cell, calibrated so that the SBA-100 trap-level one-way time across the
// switch lands at the paper's 21 µs (Table 1) together with the trap costs.
const DefaultSwitchLatency = 2 * time.Microsecond

// Switch is a VCI-routing output-queued ATM switch. Each output port is a
// Link to the attached host; contention for an output port is resolved by
// that link's serialization. Cells on unrouted VCIs are counted and
// dropped, as a real switch would discard cells on unconfigured channels.
//
// Routes are keyed by (input port, VCI), as in a real ATM switch: a VCI is
// only valid on the input port it was provisioned for. This is what lets
// carefully controlled route set-up extend U-Net's protection across the
// network (§3.2) — a host cannot inject cells on another pair's channel,
// because its input port has no route for that VCI.
type Switch struct {
	e       *sim.Engine
	name    string
	latency time.Duration
	routes  map[routeKey]int
	out     []*Link
	unknown uint64
	free    *fwdJob // recycled forwarding jobs

	// qcells bounds each output port's queue: a cell is tail-dropped when
	// the port's serialization backlog already holds qcells cells' worth of
	// time. 0 means unbounded (the seed behavior).
	qcells int
	qdrops []uint64 // per-port tail drops
}

type routeKey struct {
	in  int
	vci atm.VCI
}

// fwdJob carries one run of same-route cells across the switch's forwarding
// latency. Jobs are pooled on the switch: forwarding a train in steady
// state allocates nothing. The job fires at the forwarding time of its
// first cell and enqueues the rest arithmetically via SendAt — the output
// link's serialization yields the same departure times as per-cell
// forwarding events would have.
type fwdJob struct {
	s       *Switch
	link    *Link
	port    int
	cells   []atm.Cell
	start   time.Duration // forwarding time of cells[0]
	spacing time.Duration
	next    *fwdJob
}

// fwdFire is the static callback shared by all forwarding jobs.
func fwdFire(a any) {
	j := a.(*fwdJob)
	t := j.start
	s := j.s
	qlimit := time.Duration(s.qcells) * j.link.p.CellTime
	for _, c := range j.cells {
		// Finite output queue: if the port's committed serialization debt at
		// the forwarding instant already covers qcells cells, this cell finds
		// the queue full and is tail-dropped. Its arrival slot stays empty —
		// the link is not charged for a cell that never entered the queue.
		if qlimit > 0 && j.link.NextFree()-t >= qlimit {
			s.qdrops[j.port]++
			t += j.spacing
			continue
		}
		j.link.SendAt(c, t)
		t += j.spacing
	}
	j.cells = j.cells[:0]
	j.link = nil
	j.next = s.free
	s.free = j
}

func (s *Switch) getJob() *fwdJob {
	j := s.free
	if j == nil {
		return &fwdJob{s: s}
	}
	s.free = j.next
	j.next = nil
	return j
}

// NewSwitch creates a switch with nports output ports, each serialized by a
// link with params lp delivering into the corresponding sink.
func NewSwitch(e *sim.Engine, name string, nports int, latency time.Duration, lp LinkParams, sinks []CellSink) *Switch {
	if len(sinks) != nports {
		panic(fmt.Sprintf("fabric: %d sinks for %d ports", len(sinks), nports))
	}
	out := make([]*Link, nports)
	for i := 0; i < nports; i++ {
		out[i] = NewLink(e, fmt.Sprintf("%s.port%d", name, i), lp, sinks[i])
	}
	return NewSwitchWithLinks(e, name, latency, out)
}

// NewSwitchWithLinks creates a switch over pre-built output links — the
// constructor sharded clusters use, where an output port toward a host in
// another shard is a cross-shard link. Every link's transmitter must run on
// e, the switch's own shard.
func NewSwitchWithLinks(e *sim.Engine, name string, latency time.Duration, out []*Link) *Switch {
	for _, l := range out {
		if l.Engine() != e {
			panic(fmt.Sprintf("fabric: switch %s output link %s transmits on a foreign shard", name, l.name))
		}
	}
	return &Switch{e: e, name: name, latency: latency, routes: make(map[routeKey]int), out: out, qdrops: make([]uint64, len(out))}
}

// SetOutputQueueCells bounds every output port's queue to n cells; cells
// forwarded to a port whose backlog is full are tail-dropped and counted
// in QueueDrops. n <= 0 restores the unbounded queue.
func (s *Switch) SetOutputQueueCells(n int) {
	if n < 0 {
		n = 0
	}
	s.qcells = n
}

// QueueDrops reports cells tail-dropped at an output port's finite queue.
func (s *Switch) QueueDrops(port int) uint64 { return s.qdrops[port] }

// TotalQueueDrops sums tail drops over all output ports.
func (s *Switch) TotalQueueDrops() uint64 {
	var sum uint64
	for _, d := range s.qdrops {
		sum += d
	}
	return sum
}

// Route installs (or replaces) the output port for a VCI arriving on input
// port in. In the paper the collection of operating systems programs switch
// paths during channel set-up (§3.2); the unet kernel agent calls this.
func (s *Switch) Route(in int, vci atm.VCI, port int) error {
	if port < 0 || port >= len(s.out) {
		return fmt.Errorf("fabric: route %d → invalid port %d", vci, port)
	}
	if in < 0 || in >= len(s.out) {
		return fmt.Errorf("fabric: route %d from invalid input port %d", vci, in)
	}
	s.routes[routeKey{in: in, vci: vci}] = port
	return nil
}

// Unroute removes a VCI route (channel tear-down).
func (s *Switch) Unroute(in int, vci atm.VCI) { delete(s.routes, routeKey{in: in, vci: vci}) }

// Lookup reports the output port installed for (in, vci), if any. The
// multi-hop tear-down walk in internal/topo uses it to follow a route's
// own table entries from stage to stage.
func (s *Switch) Lookup(in int, vci atm.VCI) (int, bool) {
	port, ok := s.routes[routeKey{in: in, vci: vci}]
	return port, ok
}

// UnknownVCICells reports cells dropped for lack of a route.
func (s *Switch) UnknownVCICells() uint64 { return s.unknown }

// OutputLink exposes a port's output link, e.g. for loss injection.
func (s *Switch) OutputLink(port int) *Link { return s.out[port] }

// Ports returns the switch's port count.
func (s *Switch) Ports() int { return len(s.out) }

// portSink is the receive side of one input port. It implements TrainSink
// so the uplink can hand over whole cell trains.
type portSink struct {
	s  *Switch
	in int
}

func (ps portSink) DeliverCell(c atm.Cell) { ps.s.deliver(ps.in, c, ps.s.e.Now()) }

func (ps portSink) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	ps.s.deliverTrain(ps.in, cells, first, spacing)
}

// PortSink returns the CellSink for input port in: uplinks must deliver
// through their port's sink so the switch can enforce per-input-port
// routes.
func (s *Switch) PortSink(in int) CellSink {
	return portSink{s: s, in: in}
}

// deliver forwards a single cell arriving at time at on input port in.
func (s *Switch) deliver(in int, c atm.Cell, at time.Duration) {
	port, ok := s.routes[routeKey{in: in, vci: c.VCI}]
	if !ok {
		s.unknown++
		return
	}
	j := s.getJob()
	j.link = s.out[port]
	j.port = port
	j.cells = append(j.cells, c)
	j.start = at + s.latency
	j.spacing = 0
	s.e.AtArg(j.start, fwdFire, j)
}

// deliverTrain forwards a back-to-back train: cells[i] arrives at
// first + i*spacing. Consecutive cells bound for the same output port are
// forwarded by one pooled job; cells on unrouted VCIs are dropped and break
// the run (their wire slot stays empty, exactly as per-cell forwarding
// would leave it).
func (s *Switch) deliverTrain(in int, cells []atm.Cell, first, spacing time.Duration) {
	for i := 0; i < len(cells); {
		port, ok := s.routes[routeKey{in: in, vci: cells[i].VCI}]
		if !ok {
			s.unknown++
			i++
			continue
		}
		run := i + 1
		for run < len(cells) {
			p2, ok2 := s.routes[routeKey{in: in, vci: cells[run].VCI}]
			if !ok2 || p2 != port {
				break
			}
			run++
		}
		j := s.getJob()
		j.link = s.out[port]
		j.port = port
		j.cells = append(j.cells, cells[i:run]...)
		j.start = first + time.Duration(i)*spacing + s.latency
		j.spacing = spacing
		s.e.AtArg(j.start, fwdFire, j)
		i = run
	}
}
