package topo

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/sim"
)

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"no hosts", &Spec{Name: "x", Switches: []SwitchSpec{{Name: "s"}}}, "no hosts"},
		{"no switches", &Spec{Name: "x", Hosts: []HostSpec{{Switch: "s"}}}, "no switches"},
		{"dup switch", &Spec{
			Switches: []SwitchSpec{{Name: "s"}, {Name: "s"}},
			Hosts:    []HostSpec{{Switch: "s"}},
		}, "duplicate switch"},
		{"unknown attach", &Spec{
			Switches: []SwitchSpec{{Name: "s"}},
			Hosts:    []HostSpec{{Switch: "nope"}},
		}, "unknown switch"},
		{"bad trunk", &Spec{
			Switches: []SwitchSpec{{Name: "s"}},
			Hosts:    []HostSpec{{Switch: "s"}},
			Trunks:   []TrunkSpec{{A: "s", B: "ghost"}},
		}, "not a switch"},
		{"self trunk", &Spec{
			Switches: []SwitchSpec{{Name: "s"}},
			Hosts:    []HostSpec{{Switch: "s"}},
			Trunks:   []TrunkSpec{{A: "s", B: "s"}},
		}, "to itself"},
		{"partitioned", &Spec{
			Switches: []SwitchSpec{{Name: "a"}, {Name: "b"}},
			Hosts:    []HostSpec{{Switch: "a"}, {Switch: "b"}},
		}, "unreachable"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := Clos2(2, 2, 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("Clos2(2,2,1).Validate() = %v", err)
	}
}

func TestGeneratorShapes(t *testing.T) {
	c2 := Clos2(4, 4, 2)
	if len(c2.Hosts) != 16 || len(c2.Switches) != 6 || len(c2.Trunks) != 8 {
		t.Fatalf("Clos2(4,4,2): %d hosts %d switches %d trunks", len(c2.Hosts), len(c2.Switches), len(c2.Trunks))
	}
	if c2.Stages() != 2 {
		t.Fatalf("Clos2 stages = %d", c2.Stages())
	}
	c3 := Clos3(2, 2, 2, 2)
	if len(c3.Hosts) != 8 || c3.Stages() != 3 {
		t.Fatalf("Clos3(2,2,2,2): %d hosts, %d stages", len(c3.Hosts), c3.Stages())
	}
	// 2 pods × (2 leaves + 1 agg) + 2 cores = 8 switches; trunks: 4 leaf–agg + 4 agg–core.
	if len(c3.Switches) != 8 || len(c3.Trunks) != 8 {
		t.Fatalf("Clos3(2,2,2,2): %d switches %d trunks", len(c3.Switches), len(c3.Trunks))
	}
	r := Ring(8, 2)
	if len(r.Hosts) != 16 || len(r.Trunks) != 8 {
		t.Fatalf("Ring(8,2): %d hosts %d trunks", len(r.Hosts), len(r.Trunks))
	}
	isle := Island(8, 2)
	// Ring trunks plus 4 antipodal chords.
	if len(isle.Trunks) != 12 {
		t.Fatalf("Island(8,2): %d trunks, want 12", len(isle.Trunks))
	}
	two := Ring(2, 1)
	if len(two.Trunks) != 1 {
		t.Fatalf("Ring(2,1): %d trunks, want 1 (no duplicate reverse trunk)", len(two.Trunks))
	}
	for _, spec := range []*Spec{c2, c3, r, isle, two} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Kind, err)
		}
	}
	if _, err := Generate("bogus", 2, 2, 1); err == nil {
		t.Fatalf("Generate(bogus) accepted")
	}
}

// sinkRec records delivered cells with their arrival times.
type sinkRec struct {
	e     *sim.Engine
	cells []atm.Cell
	times []time.Duration
}

func (s *sinkRec) DeliverCell(c atm.Cell) {
	s.cells = append(s.cells, c)
	s.times = append(s.times, s.e.Now())
}

func TestMultiHopDelivery(t *testing.T) {
	e := sim.New(1)
	spec := Clos2(2, 1, 1) // h0 on leaf0, h1 on leaf1, one spine
	f := MustCompile(e, spec, nil, nil)
	if got := f.Path(0, 1); len(got) != 3 {
		t.Fatalf("Path(0,1) = %v, want 3 switches (leaf0 spine0 leaf1)", got)
	}
	if err := f.Route(0, 40, 1); err != nil {
		t.Fatal(err)
	}
	rec := &sinkRec{e: e}
	f.SetHostSink(1, rec)
	f.SetHostSink(0, &sinkRec{e: e})

	f.Uplink(0).Send(atm.Cell{VCI: 40, EOP: true})
	end := e.Run()
	if len(rec.cells) != 1 || rec.cells[0].VCI != 40 {
		t.Fatalf("host 1 received %v", rec.cells)
	}
	// End-to-end latency: 3 serializations + uplink/downlink propagation +
	// 2 trunk propagations... lower-bounded by the sum of per-stage
	// charges; assert every stage charged virtual time rather than pinning
	// the exact constant.
	min := 3*fabric.DefaultCellTime + 3*fabric.DefaultSwitchLatency + 2*DefaultTrunkPropagation
	if rec.times[0] < min {
		t.Fatalf("3-hop delivery at %v, want >= %v (every stage must charge)", rec.times[0], min)
	}
	if end != rec.times[0] {
		t.Fatalf("engine ran past delivery: %v vs %v", end, rec.times[0])
	}

	// Protection stage by stage: the same VCI from the wrong source host
	// dies at the first switch with no route installed for (h1's port, 40).
	f.Uplink(1).Send(atm.Cell{VCI: 40, EOP: true})
	e.Run()
	if len(rec.cells) != 1 {
		t.Fatalf("wrong-port cell was delivered")
	}
	var unknown uint64
	for _, sw := range f.Switches {
		unknown += sw.UnknownVCICells()
	}
	if unknown != 1 {
		t.Fatalf("unknown VCI cells = %d, want 1", unknown)
	}
}

func TestRouteInstallsPerStageEntries(t *testing.T) {
	e := sim.New(1)
	spec := Clos3(2, 2, 1, 2) // inter-pod paths cross 5 switches
	f := MustCompile(e, spec, nil, nil)
	from, to := 0, f.Size()-1
	path := f.Path(from, to)
	if len(path) != 5 {
		t.Fatalf("inter-pod path %v, want 5 switches (leaf agg core agg leaf)", path)
	}
	if err := f.Route(from, 50, to); err != nil {
		t.Fatal(err)
	}
	// Every switch on the path holds exactly the entries Route installed:
	// follow them hop by hop.
	sw, in := f.hostSw[from], f.hostPort[from]
	for range path {
		out, ok := f.Switches[sw].Lookup(in, 50)
		if !ok {
			t.Fatalf("switch %d has no entry for (port %d, vci 50)", sw, in)
		}
		if out < len(f.hostAt[sw]) {
			if sw != f.hostSw[to] || out != f.hostPort[to] {
				t.Fatalf("route ends at switch %d port %d, want host %d", sw, out, to)
			}
			break
		}
		k := out - len(f.hostAt[sw])
		sw, in = f.peerSw[sw][k], f.peerPort[sw][k]
	}
	f.Unroute(from, 50)
	for j := range f.Switches {
		for p := 0; p < f.Switches[j].Ports(); p++ {
			if _, ok := f.Switches[j].Lookup(p, 50); ok {
				t.Fatalf("switch %d port %d still routes vci 50 after Unroute", j, p)
			}
		}
	}
}

func TestForwardingSpreadsSpines(t *testing.T) {
	spec := Clos2(4, 1, 4)
	f := MustCompile(sim.New(1), spec, nil, nil)
	// The rotated trunk declarations must elect different spines for
	// different destination racks — not all paths through spine0.
	spines := make(map[int]bool)
	for dst := 0; dst < 4; dst++ {
		for src := 0; src < 4; src++ {
			if src == dst {
				continue
			}
			p := f.Path(src, dst)
			spines[p[1]] = true
		}
	}
	if len(spines) < 2 {
		t.Fatalf("all inter-rack paths use one spine: %v", spines)
	}
}

func TestPlace(t *testing.T) {
	spec := Clos2(8, 4, 2)
	hostShard, swShard := Place(spec, 4)
	swIdx := make(map[string]int, len(spec.Switches))
	for j := range spec.Switches {
		swIdx[spec.Switches[j].Name] = j
	}
	for i := range spec.Hosts {
		if hostShard[i] != swShard[swIdx[spec.Hosts[i].Switch]] {
			t.Fatalf("host %d on shard %d, its ToR on %d", i, hostShard[i], swShard[swIdx[spec.Hosts[i].Switch]])
		}
	}
	for j := range spec.Switches {
		if spec.Switches[j].Stage > 0 && swShard[j] != -1 {
			t.Fatalf("stage-%d switch %q placed on shard %d, want root", spec.Switches[j].Stage, spec.Switches[j].Name, swShard[j])
		}
	}
	// 8 ToRs over 4 shards: contiguous blocks of 2.
	for r := 0; r < 8; r++ {
		if got := swShard[swIdx[fmt.Sprintf("leaf%d", r)]]; got != r/2 {
			t.Fatalf("leaf%d on shard %d, want %d", r, got, r/2)
		}
	}
	hs1, ss1 := Place(spec, 1)
	for i := range hs1 {
		if hs1[i] != -1 {
			t.Fatalf("k=1 host %d not rooted", i)
		}
	}
	for j := range ss1 {
		if ss1[j] != -1 {
			t.Fatalf("k=1 switch %d not rooted", j)
		}
	}
}

func TestShardedCompileDeliversIdentically(t *testing.T) {
	// The same storm of cells through a 2-shard compile must arrive with
	// the exact times the serial compile produced.
	run := func(k int) []time.Duration {
		root := sim.New(7)
		spec := Clos2(2, 2, 2)
		hostShard, swShard := Place(spec, k)
		hostEng := make([]*sim.Engine, len(spec.Hosts))
		swEng := make([]*sim.Engine, len(spec.Switches))
		var shards []*sim.Engine
		for j := 0; j < k; j++ {
			shards = append(shards, root.NewShard(7+int64(j)+1))
		}
		for i, s := range hostShard {
			if s >= 0 {
				hostEng[i] = shards[s]
			}
		}
		for i, s := range swShard {
			if s >= 0 {
				swEng[i] = shards[s]
			}
		}
		f := MustCompile(root, spec, hostEng, swEng)
		recs := make([]*sinkRec, f.Size())
		for i := range recs {
			recs[i] = &sinkRec{e: f.HostEngine(i)}
			f.SetHostSink(i, recs[i])
		}
		vci := atm.VCI(40)
		for a := 0; a < f.Size(); a++ {
			for b := 0; b < f.Size(); b++ {
				if a == b {
					continue
				}
				if err := f.Route(a, vci, b); err != nil {
					t.Fatal(err)
				}
				av, bv, v := a, b, vci
				f.HostEngine(a).At(0, func() {
					for c := 0; c < 8; c++ {
						f.Uplink(av).Send(atm.Cell{VCI: v, EOP: true, Payload: [48]byte{byte(av), byte(bv), byte(c)}})
					}
				})
				vci++
			}
		}
		root.Run()
		var all []time.Duration
		for _, r := range recs {
			all = append(all, r.times...)
		}
		return all
	}
	serial := run(1)
	sharded := run(2)
	if len(serial) == 0 {
		t.Fatal("no deliveries")
	}
	if len(serial) != len(sharded) {
		t.Fatalf("serial delivered %d cells, sharded %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("delivery %d: serial %v, sharded %v", i, serial[i], sharded[i])
		}
	}
}
