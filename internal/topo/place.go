package topo

// Place computes the topology-aware shard assignment for k shards:
// hostShard[i] and swShard[j] are shard indices in [0, k), or -1 for the
// root engine. The rule is locality-first — every stage-0 (top-of-rack)
// switch lands on the same shard as all of its hosts, assigned in
// contiguous declared-order blocks, while stage>0 switches run on the
// root engine. Host↔ToR links then stay shard-local (dense traffic, no
// synchronization), and only the sparse trunk edges cross shards — edges
// whose DefaultTrunkPropagation-wide latency becomes the pair lookahead
// that keeps the conservative windows wide.
//
// With k <= 1 everything is rooted (serial execution).
func Place(spec *Spec, k int) (hostShard, swShard []int) {
	hostShard = make([]int, len(spec.Hosts))
	swShard = make([]int, len(spec.Switches))
	for j := range swShard {
		swShard[j] = -1
	}
	if k <= 1 {
		for i := range hostShard {
			hostShard[i] = -1
		}
		return hostShard, swShard
	}
	// Contiguous blocks over the stage-0 switches in declared order: ToR r
	// of nToR goes to shard r*k/nToR, so shard populations differ by at
	// most one rack.
	var tors []int
	swIdx := make(map[string]int, len(spec.Switches))
	for j := range spec.Switches {
		swIdx[spec.Switches[j].Name] = j
		if spec.Switches[j].Stage == 0 {
			tors = append(tors, j)
		}
	}
	for r, j := range tors {
		swShard[j] = r * k / len(tors)
	}
	for i := range spec.Hosts {
		hostShard[i] = swShard[swIdx[spec.Hosts[i].Switch]]
	}
	return hostShard, swShard
}
