package topo

import (
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/sim"
)

// Fabric is a compiled topology: the spec's switches instantiated as
// fabric.Switch instances, its trunks as serializing links between switch
// ports, and its hosts as uplink/downlink pairs on their attaching
// switch. Fabric implements fabric.Network, so the U-Net manager and the
// NIC attach path treat it exactly like the single-switch cluster; the
// only behavioral difference is that Route installs one table entry per
// switch along the computed path instead of a single entry.
type Fabric struct {
	Engine *sim.Engine
	Spec   *Spec
	// Switches holds the compiled switches in spec declaration order.
	Switches []*fabric.Switch

	swEng   []*sim.Engine
	hostEng []*sim.Engine
	uplinks []*fabric.Link

	hostSinks []fabric.CellSink
	hostSw    []int // host → attaching switch index
	hostPort  []int // host → its port on that switch

	// Per-switch port layout: ports [0, len(hostAt[s])) carry hosts (in
	// declared host order), the rest carry trunk endpoints (in declared
	// trunk order). peerSw/peerPort resolve a trunk port to the far side.
	hostAt   [][]int
	peerSw   [][]int
	peerPort [][]int

	// next[s][d] is the output port at switch s toward destination switch
	// d — the per-destination forwarding plan Route walks when it installs
	// a VCI's per-stage table entries. next[s][s] is -1 (the final hop is
	// the destination host's own port, not a trunk).
	next [][]int

	undeliv uint64
}

var _ fabric.Network = (*Fabric)(nil)

// hostPortSink indirects a switch output port to the host sink registered
// later with SetHostSink, mirroring the single-switch cluster's hostPort:
// trains pass through when the sink understands them, and otherwise fall
// back to per-cell deliveries scheduled on the host's own shard engine.
type hostPortSink struct {
	f *Fabric
	i int
}

func (h hostPortSink) DeliverCell(cell atm.Cell) {
	s := h.f.hostSinks[h.i]
	if s == nil {
		h.f.undeliv++
		return
	}
	s.DeliverCell(cell)
}

func (h hostPortSink) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	s := h.f.hostSinks[h.i]
	if s == nil {
		h.f.undeliv += uint64(len(cells))
		return
	}
	if ts, ok := s.(fabric.TrainSink); ok {
		ts.DeliverTrain(cells, first, spacing)
		return
	}
	for k := 1; k < len(cells); k++ {
		cell := cells[k]
		h.f.hostEng[h.i].At(first+time.Duration(k)*spacing, func() { h.DeliverCell(cell) })
	}
	h.DeliverCell(cells[0])
}

// trunkSink indirects a trunk link's receive side to the peer switch's
// input port. The indirection is what breaks the construction cycle: a
// switch's output links must exist before the switch is built, but a
// trunk's far-end switch may not exist yet — the sink resolves it at
// delivery time instead. Trains delegate to the switch port's own train
// path, so multi-hop delivery schedules are the ones direct wiring would
// have produced.
type trunkSink struct {
	f    *Fabric
	sw   int
	port int
}

func (t trunkSink) DeliverCell(c atm.Cell) {
	t.f.Switches[t.sw].PortSink(t.port).DeliverCell(c)
}

func (t trunkSink) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	t.f.Switches[t.sw].PortSink(t.port).(fabric.TrainSink).DeliverTrain(cells, first, spacing)
}

// Compile instantiates spec onto the fabric primitives. hostEng[i] is the
// shard engine host i's NIC and processes run on and swEng[j] the engine
// switch j forwards on (nil entries, or nil slices, mean the root
// engine). Any edge whose endpoints live on different engines becomes a
// cross-shard link, which registers the link latency as the pair's
// lookahead — the trunk propagation is what keeps inter-shard windows
// wide. Construction iterates hosts, switches and trunks strictly in
// declared order, so two compiles of the same spec wire identical event
// and exchange registration sequences.
func Compile(root *sim.Engine, spec *Spec, hostEng, swEng []*sim.Engine) (*Fabric, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	name := spec.Name
	if name == "" {
		name = "topo"
	}
	nh, ns := len(spec.Hosts), len(spec.Switches)
	if hostEng == nil {
		hostEng = make([]*sim.Engine, nh)
	}
	if swEng == nil {
		swEng = make([]*sim.Engine, ns)
	}
	if len(hostEng) != nh || len(swEng) != ns {
		return nil, fmt.Errorf("topo: %d host / %d switch engines for %d hosts / %d switches", len(hostEng), len(swEng), nh, ns)
	}
	f := &Fabric{
		Engine:    root,
		Spec:      spec,
		Switches:  make([]*fabric.Switch, ns),
		swEng:     make([]*sim.Engine, ns),
		hostEng:   make([]*sim.Engine, nh),
		uplinks:   make([]*fabric.Link, nh),
		hostSinks: make([]fabric.CellSink, nh),
		hostSw:    make([]int, nh),
		hostPort:  make([]int, nh),
		hostAt:    make([][]int, ns),
		peerSw:    make([][]int, ns),
		peerPort:  make([][]int, ns),
	}
	for j := 0; j < ns; j++ {
		f.swEng[j] = engineOr(swEng[j], root)
	}
	for i := 0; i < nh; i++ {
		f.hostEng[i] = engineOr(hostEng[i], root)
	}

	swIdx := make(map[string]int, ns)
	for j := range spec.Switches {
		swIdx[spec.Switches[j].Name] = j
	}

	// Port layout: hosts first (declared order), then trunk endpoints
	// (declared order). Recorded before any link exists so trunk sinks can
	// name their far-end port up front.
	for i := range spec.Hosts {
		sw := swIdx[spec.Hosts[i].Switch]
		f.hostSw[i] = sw
		f.hostPort[i] = len(f.hostAt[sw])
		f.hostAt[sw] = append(f.hostAt[sw], i)
	}
	type trunkEnd struct{ sw, port, peer, peerPort, trunk int }
	var ends [][2]trunkEnd
	for t := range spec.Trunks {
		a, b := swIdx[spec.Trunks[t].A], swIdx[spec.Trunks[t].B]
		pa := len(f.hostAt[a]) + len(f.peerSw[a])
		f.peerSw[a] = append(f.peerSw[a], b)
		pb := len(f.hostAt[b]) + len(f.peerSw[b])
		f.peerSw[b] = append(f.peerSw[b], a)
		f.peerPort[a] = append(f.peerPort[a], pb)
		f.peerPort[b] = append(f.peerPort[b], pa)
		ends = append(ends, [2]trunkEnd{
			{sw: a, port: pa, peer: b, peerPort: pb, trunk: t},
			{sw: b, port: pb, peer: a, peerPort: pa, trunk: t},
		})
	}

	// Build each switch over its pre-built output links: host ports
	// deliver through hostPortSink, trunk ports through trunkSink into the
	// far switch. A link whose endpoints live on different engines is a
	// cross-shard link.
	for j := 0; j < ns; j++ {
		swName := fmt.Sprintf("%s.%s", name, spec.Switches[j].Name)
		var out []*fabric.Link
		for p, host := range f.hostAt[j] {
			lname := fmt.Sprintf("%s.port%d", swName, p)
			out = append(out, newLinkBetween(f.swEng[j], f.hostEng[host], lname, spec.hostLink(host), hostPortSink{f: f, i: host}))
		}
		for k, peer := range f.peerSw[j] {
			p := len(f.hostAt[j]) + k
			lname := fmt.Sprintf("%s.port%d", swName, p)
			// Trunk timing comes from the declared trunk; find it via the
			// recorded endpoint list (k-th trunk endpoint of switch j).
			var lp fabric.LinkParams
			for _, pair := range ends {
				for _, e := range pair {
					if e.sw == j && e.port == p {
						lp = spec.trunkLink(e.trunk)
					}
				}
			}
			out = append(out, newLinkBetween(f.swEng[j], f.swEng[peer], lname, lp, trunkSink{f: f, sw: peer, port: f.peerPort[j][k]}))
		}
		f.Switches[j] = fabric.NewSwitchWithLinks(f.swEng[j], swName, spec.switchLatency(j), out)
		if q := spec.Switches[j].QueueCells; q > 0 {
			f.Switches[j].SetOutputQueueCells(q)
		}
	}

	// Host uplinks into the attaching switch's host port.
	for i := range spec.Hosts {
		sw := f.hostSw[i]
		uname := fmt.Sprintf("%s.up%d", name, i)
		f.uplinks[i] = newLinkBetween(f.hostEng[i], f.swEng[sw], uname, spec.hostLink(i), f.Switches[sw].PortSink(f.hostPort[i]))
	}

	f.buildForwarding()
	return f, nil
}

// MustCompile is Compile for generated specs that cannot fail validation.
func MustCompile(root *sim.Engine, spec *Spec, hostEng, swEng []*sim.Engine) *Fabric {
	f, err := Compile(root, spec, hostEng, swEng)
	if err != nil {
		panic(err)
	}
	return f
}

func engineOr(e, root *sim.Engine) *sim.Engine {
	if e == nil {
		return root
	}
	return e
}

// newLinkBetween builds a link from src to dst engine: a plain link when
// they coincide, a cross-shard link (registering its latency as the pair
// lookahead) when they differ.
func newLinkBetween(src, dst *sim.Engine, name string, lp fabric.LinkParams, sink fabric.CellSink) *fabric.Link {
	if src == dst {
		return fabric.NewLink(src, name, lp, sink)
	}
	return fabric.NewCrossLink(src, dst, name, lp, sink)
}

// buildForwarding computes next[s][d] — the output port at switch s
// toward destination switch d — by a BFS from each destination over the
// trunk graph. Neighbors are explored in declared trunk-endpoint order
// and the first parent found wins, so the plan is a pure function of the
// spec; generators exploit the tie-break by rotating their trunk
// declarations (Clos racks elect different spines per destination).
func (f *Fabric) buildForwarding() {
	ns := len(f.Switches)
	f.next = make([][]int, ns)
	for s := 0; s < ns; s++ {
		f.next[s] = make([]int, ns)
		for d := range f.next[s] {
			f.next[s][d] = -1
		}
	}
	for d := 0; d < ns; d++ {
		seen := make([]bool, ns)
		seen[d] = true
		frontier := []int{d}
		for len(frontier) > 0 {
			cur := frontier[0]
			frontier = frontier[1:]
			for k, peer := range f.peerSw[cur] {
				if seen[peer] {
					continue
				}
				seen[peer] = true
				// The trunk cur—peer, seen from peer's side, is peer's
				// port toward cur; cur is one hop closer to d, so that
				// port is peer's next hop.
				f.next[peer][d] = f.peerPort[cur][k]
				frontier = append(frontier, peer)
			}
		}
	}
}

// Path returns the switch indices a cell traverses from host `from` to
// host `to`, in order. Reporting and tests use it; Route walks the same
// plan.
func (f *Fabric) Path(from, to int) []int {
	path := []int{f.hostSw[from]}
	sw := f.hostSw[from]
	for sw != f.hostSw[to] {
		out := f.next[sw][f.hostSw[to]]
		if out < 0 {
			return nil
		}
		k := out - len(f.hostAt[sw])
		sw = f.peerSw[sw][k]
		path = append(path, sw)
	}
	return path
}

// Size returns the number of hosts.
func (f *Fabric) Size() int { return len(f.uplinks) }

// Stages returns the number of switch stages in the compiled spec.
func (f *Fabric) Stages() int { return f.Spec.Stages() }

// HostEngine returns the shard engine host's NIC and processes must run on.
func (f *Fabric) HostEngine(host int) *sim.Engine { return f.hostEng[host] }

// Uplink returns host's transmit link into its attaching switch.
func (f *Fabric) Uplink(host int) *fabric.Link { return f.uplinks[host] }

// Downlink returns the last-hop link toward host: its attaching switch's
// output port (for loss and fault injection).
func (f *Fabric) Downlink(host int) *fabric.Link {
	return f.Switches[f.hostSw[host]].OutputLink(f.hostPort[host])
}

// TrunkCount returns the number of declared trunks.
func (f *Fabric) TrunkCount() int { return len(f.Spec.Trunks) }

// TrunkLink returns the A→B direction link of declared trunk t (for fault
// injection on inter-switch paths). The B→A direction is the peer port's
// output link on B.
func (f *Fabric) TrunkLink(t int) *fabric.Link {
	// Trunk t's A-side port: count host ports plus earlier trunk endpoints
	// on A. Recover it from the peer tables: walk A's trunk ports in order
	// and take the t-th declared trunk's slot.
	swIdx := make(map[string]int, len(f.Spec.Switches))
	for j := range f.Spec.Switches {
		swIdx[f.Spec.Switches[j].Name] = j
	}
	a := swIdx[f.Spec.Trunks[t].A]
	k := 0
	for i := 0; i < t; i++ {
		if swIdx[f.Spec.Trunks[i].A] == a || swIdx[f.Spec.Trunks[i].B] == a {
			k++
		}
	}
	return f.Switches[a].OutputLink(len(f.hostAt[a]) + k)
}

// SetHostSink registers the receive sink (a NIC input FIFO) for host.
func (f *Fabric) SetHostSink(host int, s fabric.CellSink) { f.hostSinks[host] = s }

// Route installs vci, arriving from host `from`, to be delivered at host
// `to`: the multi-hop generalization of the cluster's single table entry.
// Each switch along the computed path gets one (input port, VCI) → output
// port entry, so the channel remains protected stage by stage — a cell
// can only follow the route if it entered at the provisioned port of the
// first switch, exactly §3.2's carefully-controlled route set-up
// stretched across stages.
func (f *Fabric) Route(from int, vci atm.VCI, to int) error {
	sw, in := f.hostSw[from], f.hostPort[from]
	dst := f.hostSw[to]
	for sw != dst {
		out := f.next[sw][dst]
		if out < 0 {
			return fmt.Errorf("topo: no path from switch %d to %d for vci %d", sw, dst, vci)
		}
		if err := f.Switches[sw].Route(in, vci, out); err != nil {
			return err
		}
		k := out - len(f.hostAt[sw])
		sw, in = f.peerSw[sw][k], f.peerPort[sw][k]
	}
	return f.Switches[dst].Route(in, vci, f.hostPort[to])
}

// Unroute removes a multi-hop route again (channel tear-down), walking
// the same path Route installed. The destination is recovered from the
// installed entries themselves: each stage's table names the next.
func (f *Fabric) Unroute(from int, vci atm.VCI) {
	sw, in := f.hostSw[from], f.hostPort[from]
	for {
		out, ok := f.Switches[sw].Lookup(in, vci)
		f.Switches[sw].Unroute(in, vci)
		if !ok || out < len(f.hostAt[sw]) {
			return
		}
		k := out - len(f.hostAt[sw])
		sw, in = f.peerSw[sw][k], f.peerPort[sw][k]
	}
}

// UndeliveredCells counts cells that reached a host port with no attached
// NIC.
func (f *Fabric) UndeliveredCells() uint64 { return f.undeliv }

// SetOutputQueueCells bounds every output-port queue of every switch to n
// cells (testbed fault plans apply their global bound through this;
// per-switch spec QueueCells already applied at compile time are
// overwritten).
func (f *Fabric) SetOutputQueueCells(n int) {
	for _, s := range f.Switches {
		s.SetOutputQueueCells(n)
	}
}

// TotalQueueDrops sums finite-queue tail drops over every switch.
func (f *Fabric) TotalQueueDrops() uint64 {
	var sum uint64
	for _, s := range f.Switches {
		sum += s.TotalQueueDrops()
	}
	return sum
}
