package topo

import "fmt"

// Clos2 generates a 2-stage Clos (leaf–spine) fabric: racks top-of-rack
// switches with perRack hosts each, and spine spine switches, every leaf
// trunked to every spine. Any leaf pair is two hops apart through any of
// the spine switches; routing picks the spine deterministically (declared
// trunk order), spreading rack pairs over spines so no single spine
// carries every inter-rack path.
func Clos2(racks, perRack, spine int) *Spec {
	if racks < 1 || perRack < 1 || spine < 1 {
		panic(fmt.Sprintf("topo: Clos2(%d, %d, %d) needs at least one rack, host and spine", racks, perRack, spine))
	}
	s := &Spec{Name: "clos2", Kind: "clos2"}
	for r := 0; r < racks; r++ {
		s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("leaf%d", r), Stage: 0})
	}
	for j := 0; j < spine; j++ {
		s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("spine%d", j), Stage: 1})
	}
	for r := 0; r < racks; r++ {
		for h := 0; h < perRack; h++ {
			s.Hosts = append(s.Hosts, HostSpec{Switch: fmt.Sprintf("leaf%d", r)})
		}
		// Leaf r's uplinks are declared spine-rotated so the first — and
		// thus BFS-preferred — spine differs per rack: rack pairs spread
		// over the spine layer instead of all electing spine0.
		for j := 0; j < spine; j++ {
			s.Trunks = append(s.Trunks, TrunkSpec{A: fmt.Sprintf("leaf%d", r), B: fmt.Sprintf("spine%d", (r+j)%spine)})
		}
	}
	return s
}

// Clos3 generates a 3-stage folded-Clos (fat-tree-style) fabric: pods
// pods, each with leafPerPod leaf switches of perRack hosts and one
// aggregation switch trunked to every leaf in the pod; core core switches
// trunk every pod's aggregation switch together. Intra-pod paths are two
// hops (leaf–agg–leaf), inter-pod paths four (leaf–agg–core–agg–leaf).
func Clos3(pods, leafPerPod, perRack, core int) *Spec {
	if pods < 1 || leafPerPod < 1 || perRack < 1 || core < 1 {
		panic(fmt.Sprintf("topo: Clos3(%d, %d, %d, %d) needs at least one pod, leaf, host and core", pods, leafPerPod, perRack, core))
	}
	s := &Spec{Name: "clos3", Kind: "clos3"}
	for p := 0; p < pods; p++ {
		for l := 0; l < leafPerPod; l++ {
			s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("p%dleaf%d", p, l), Stage: 0})
		}
		s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("p%dagg", p), Stage: 1})
	}
	for c := 0; c < core; c++ {
		s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("core%d", c), Stage: 2})
	}
	for p := 0; p < pods; p++ {
		for l := 0; l < leafPerPod; l++ {
			for h := 0; h < perRack; h++ {
				s.Hosts = append(s.Hosts, HostSpec{Switch: fmt.Sprintf("p%dleaf%d", p, l)})
			}
			s.Trunks = append(s.Trunks, TrunkSpec{A: fmt.Sprintf("p%dleaf%d", p, l), B: fmt.Sprintf("p%dagg", p)})
		}
		// Core uplinks rotated per pod, like Clos2's spine rotation.
		for c := 0; c < core; c++ {
			s.Trunks = append(s.Trunks, TrunkSpec{A: fmt.Sprintf("p%dagg", p), B: fmt.Sprintf("core%d", (p+c)%core)})
		}
	}
	return s
}

// Ring generates a ring of islands island switches with perIsland hosts
// each, every switch trunked to its successor. Paths take the shorter way
// around; the antipodal tie goes to the clockwise direction (declared
// trunk order).
func Ring(islands, perIsland int) *Spec {
	s := ringSpec(islands, perIsland, "ring")
	return s
}

// Island generates the netislands-style overlay fabric: a ring of island
// switches plus antipodal chord trunks that halve the worst-case hop
// count, the shape of a gossip overlay whose islands mostly talk to ring
// neighbors but occasionally cross the diameter. With fewer than four
// islands the chords degenerate and the plain ring is returned.
func Island(islands, perIsland int) *Spec {
	s := ringSpec(islands, perIsland, "island")
	if islands >= 4 {
		half := islands / 2
		for i := 0; i < islands/2; i++ {
			s.Trunks = append(s.Trunks, TrunkSpec{A: fmt.Sprintf("isle%d", i), B: fmt.Sprintf("isle%d", (i+half)%islands)})
		}
	}
	return s
}

func ringSpec(islands, perIsland int, kind string) *Spec {
	if islands < 1 || perIsland < 1 {
		panic(fmt.Sprintf("topo: %s(%d, %d) needs at least one island and host", kind, islands, perIsland))
	}
	s := &Spec{Name: kind, Kind: kind}
	for i := 0; i < islands; i++ {
		s.Switches = append(s.Switches, SwitchSpec{Name: fmt.Sprintf("isle%d", i), Stage: 0})
	}
	for i := 0; i < islands; i++ {
		for h := 0; h < perIsland; h++ {
			s.Hosts = append(s.Hosts, HostSpec{Switch: fmt.Sprintf("isle%d", i)})
		}
	}
	if islands > 1 {
		for i := 0; i < islands; i++ {
			if islands == 2 && i == 1 {
				break // both directions of a 2-ring are the same trunk
			}
			s.Trunks = append(s.Trunks, TrunkSpec{A: fmt.Sprintf("isle%d", i), B: fmt.Sprintf("isle%d", (i+1)%islands)})
		}
	}
	return s
}

// Generate builds the named topology shape: "clos2" (racks × perRack
// hosts, spine spines), "clos3" (racks pods of two leaves each, spine
// cores), "ring" and "island" (racks islands × perRack hosts). It is the
// single entry point cmd/unetbench's -topo flag resolves through.
func Generate(kind string, racks, perRack, spine int) (*Spec, error) {
	switch kind {
	case "clos2":
		return Clos2(racks, perRack, spine), nil
	case "clos3":
		leafPerPod := 2
		pods := (racks + leafPerPod - 1) / leafPerPod
		return Clos3(pods, leafPerPod, perRack, spine), nil
	case "ring":
		return Ring(racks, perRack), nil
	case "island":
		return Island(racks, perRack), nil
	}
	return nil, fmt.Errorf("topo: unknown topology kind %q (have clos2, clos3, ring, island)", kind)
}
