// Package topo is the declarative multi-switch topology layer: a topology
// graph spec — hosts, switches, trunks, with per-stage link timing and
// finite output queues — plus generators for the datacenter shapes the
// paper's single ASX-200 cannot express (2- and 3-stage Clos/fat-tree
// fabrics, ring and island overlays), and a compiler that instantiates the
// spec onto the existing fabric primitives. Compiled fabrics implement
// fabric.Network, so the U-Net manager, the NIC attach path and every
// testbed fixture run on them unchanged; routes become multi-hop — one
// per-stage table entry installed at every switch along the computed path
// (§3.2's carefully-controlled route set-up, stretched across stages).
//
// Everything in the spec is ordered: hosts, switches and trunks are
// slices iterated in declared order, name lookups go through an index
// built once, and path computation breaks ties by declared adjacency
// order. Compilation is therefore a pure function of the spec — two
// compiles of the same spec produce byte-identical simulations at every
// shard count (DESIGN.md §15).
package topo

import (
	"fmt"
	"time"

	"unet/internal/fabric"
)

// DefaultTrunkPropagation is the one-way flight time of an inter-switch
// trunk: tens of rows of machine room rather than tens of meters of rack,
// an order of magnitude beyond fabric.DefaultPropagation. Wide trunk
// latency is what buys the shard protocol wide windows on the sparse
// inter-rack edges — the per-pair lookahead matrix is derived from it.
const DefaultTrunkPropagation = 2 * time.Microsecond

// HostSpec attaches one host to a switch.
type HostSpec struct {
	// Name is the host's unique name (defaults to "h<i>" when empty).
	Name string
	// Switch names the attaching (top-of-rack) switch.
	Switch string
	// Link overrides the host↔switch link timing; zero fields fall back
	// to the spec's HostLink.
	Link fabric.LinkParams
}

// SwitchSpec declares one switch.
type SwitchSpec struct {
	// Name is the switch's unique name.
	Name string
	// Stage is the switch's distance from the hosts: 0 for a
	// top-of-rack/leaf switch, 1 for aggregation/spine, 2 for core. Shard
	// placement keeps each stage-0 switch with its hosts on one shard and
	// pins higher stages to the root engine.
	Stage int
	// Latency is the cut-through forwarding latency (0 means
	// fabric.DefaultSwitchLatency).
	Latency time.Duration
	// QueueCells bounds every output-port queue of this switch (tail drop
	// on overflow); 0 keeps the queue unbounded. Per-stage bounds model
	// the shallow buffers where incast hurts: at the aggregation layer.
	QueueCells int
}

// TrunkSpec declares a full-duplex inter-switch trunk: one serializing
// link in each direction between switches A and B.
type TrunkSpec struct {
	A, B string
	// Link overrides the trunk timing; zero fields fall back to the
	// spec's TrunkLink.
	Link fabric.LinkParams
}

// Spec is a declarative topology: the complete graph a fabric is compiled
// from. The zero value of every default field falls back to the paper's
// calibrated constants.
type Spec struct {
	// Name prefixes every link and switch name (defaults to "topo").
	Name string
	// Kind labels the generated shape ("clos2", "clos3", "ring",
	// "island", or "" for hand-built specs); reporting only.
	Kind string
	// HostLink is the default host↔switch timing (zero = 140 Mbit/s TAXI).
	HostLink fabric.LinkParams
	// TrunkLink is the default switch↔switch timing (zero = TAXI cell
	// time with DefaultTrunkPropagation flight).
	TrunkLink fabric.LinkParams
	// SwitchLatency is the default per-switch forwarding latency
	// (0 = fabric.DefaultSwitchLatency).
	SwitchLatency time.Duration

	Hosts    []HostSpec
	Switches []SwitchSpec
	Trunks   []TrunkSpec
}

// Stages returns the number of distinct switch stages in the spec.
func (s *Spec) Stages() int {
	max := -1
	for i := range s.Switches {
		if s.Switches[i].Stage > max {
			max = s.Switches[i].Stage
		}
	}
	return max + 1
}

// hostLink resolves host h's link timing.
func (s *Spec) hostLink(h int) fabric.LinkParams {
	lp := s.Hosts[h].Link
	if lp.CellTime == 0 && lp.Propagation == 0 {
		lp = s.HostLink
	}
	if lp.CellTime == 0 {
		lp.CellTime = fabric.DefaultCellTime
	}
	if lp.Propagation == 0 {
		lp.Propagation = fabric.DefaultPropagation
	}
	return lp
}

// trunkLink resolves trunk t's link timing.
func (s *Spec) trunkLink(t int) fabric.LinkParams {
	lp := s.Trunks[t].Link
	if lp.CellTime == 0 && lp.Propagation == 0 {
		lp = s.TrunkLink
	}
	if lp.CellTime == 0 {
		lp.CellTime = fabric.DefaultCellTime
	}
	if lp.Propagation == 0 {
		lp.Propagation = DefaultTrunkPropagation
	}
	return lp
}

// switchLatency resolves switch i's forwarding latency.
func (s *Spec) switchLatency(i int) time.Duration {
	if s.Switches[i].Latency != 0 {
		return s.Switches[i].Latency
	}
	if s.SwitchLatency != 0 {
		return s.SwitchLatency
	}
	return fabric.DefaultSwitchLatency
}

// Validate checks the spec's structural invariants: non-empty, unique
// names, resolvable attachments and trunk endpoints, and a connected
// switch graph (every host pair must have a path).
func (s *Spec) Validate() error {
	if len(s.Hosts) == 0 {
		return fmt.Errorf("topo: spec %q has no hosts", s.Name)
	}
	if len(s.Switches) == 0 {
		return fmt.Errorf("topo: spec %q has no switches", s.Name)
	}
	swIdx := make(map[string]int, len(s.Switches))
	for i := range s.Switches {
		sw := &s.Switches[i]
		if sw.Name == "" {
			return fmt.Errorf("topo: switch %d has no name", i)
		}
		if _, dup := swIdx[sw.Name]; dup {
			return fmt.Errorf("topo: duplicate switch name %q", sw.Name)
		}
		if sw.Stage < 0 {
			return fmt.Errorf("topo: switch %q has negative stage %d", sw.Name, sw.Stage)
		}
		swIdx[sw.Name] = i
	}
	hostNames := make(map[string]bool, len(s.Hosts))
	for i := range s.Hosts {
		h := &s.Hosts[i]
		name := h.Name
		if name == "" {
			name = fmt.Sprintf("h%d", i)
		}
		if hostNames[name] {
			return fmt.Errorf("topo: duplicate host name %q", name)
		}
		hostNames[name] = true
		if _, ok := swIdx[h.Switch]; !ok {
			return fmt.Errorf("topo: host %q attaches to unknown switch %q", name, h.Switch)
		}
	}
	adj := make([][]int, len(s.Switches))
	for i := range s.Trunks {
		t := &s.Trunks[i]
		a, ok := swIdx[t.A]
		if !ok {
			return fmt.Errorf("topo: trunk %d endpoint %q is not a switch", i, t.A)
		}
		b, ok := swIdx[t.B]
		if !ok {
			return fmt.Errorf("topo: trunk %d endpoint %q is not a switch", i, t.B)
		}
		if a == b {
			return fmt.Errorf("topo: trunk %d connects switch %q to itself", i, t.A)
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// Connectivity over the switch graph: BFS from the first host's
	// switch must reach every switch that has hosts attached (isolated
	// spare switches would be pointless but harmless; unreachable hosts
	// are an error).
	seen := make([]bool, len(s.Switches))
	start := swIdx[s.Hosts[0].Switch]
	seen[start] = true
	frontier := []int{start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				frontier = append(frontier, nb)
			}
		}
	}
	for i := range s.Hosts {
		if sw := swIdx[s.Hosts[i].Switch]; !seen[sw] {
			return fmt.Errorf("topo: host %d's switch %q is unreachable from host 0's switch %q", i, s.Hosts[i].Switch, s.Hosts[0].Switch)
		}
	}
	return nil
}
