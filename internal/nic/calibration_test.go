package nic_test

import (
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/nic"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

const us = float64(time.Microsecond)

// within asserts got is within tol (fractional) of want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	lo, hi := want*(1-tol), want*(1+tol)
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want %.2f ± %.0f%%", name, got, want, tol*100)
	}
}

func rttUS(t *testing.T, nicp nic.Params, size, rounds int) float64 {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	return float64(pr.PingPong(rounds, size)) / us
}

func streamMBps(t *testing.T, nicp nic.Params, size, count int) testbed.StreamResult {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	return pr.Stream(count, size)
}

// --- SBA-200 with U-Net firmware (§4.2.3, Figure 3/4, Table 3) ---

func TestSBA200SingleCellRTT65us(t *testing.T) {
	got := rttUS(t, nic.SBA200Params(), 32, 50)
	within(t, "single-cell RTT", got, 65, 0.05)
}

func TestSBA200FortyByteMessageStillSingleCell(t *testing.T) {
	got := rttUS(t, nic.SBA200Params(), 40, 50)
	within(t, "40B RTT", got, 65, 0.05)
}

func TestSBA200MultiCellRTT120usAt48B(t *testing.T) {
	got := rttUS(t, nic.SBA200Params(), 48, 50)
	within(t, "48B RTT", got, 120, 0.05)
}

func TestSBA200PerCellSlope6us(t *testing.T) {
	// "Longer messages ... cost roughly an extra 6 µs per additional cell"
	// (§4.2.3). Compare 48 B (2 cells) with 960 B (21 cells): 19 extra
	// cells.
	r48 := rttUS(t, nic.SBA200Params(), 48, 30)
	r960 := rttUS(t, nic.SBA200Params(), 960, 30)
	slope := (r960 - r48) / 19
	within(t, "per-cell RTT slope", slope, 6.3, 0.10)
}

func TestSBA200SaturatesFiberAt800B(t *testing.T) {
	// "with packet sizes as low as 800 bytes, the fiber can be saturated"
	// (§4.2.3). AAL5 limit at 800 B = 800 / (17 cells × 3.158 µs).
	res := streamMBps(t, nic.SBA200Params(), 800, 400)
	if res.Dropped != 0 {
		t.Fatalf("raw U-Net stream dropped %d messages", res.Dropped)
	}
	limit := 800.0 / (17 * 3.158)
	within(t, "800B bandwidth", res.MBps(), limit, 0.05)
}

func TestSBA200Peak15MBpsAt4K(t *testing.T) {
	// Table 3: Raw AAL5 120 Mbit/s with 4 KB packets.
	res := streamMBps(t, nic.SBA200Params(), 4096, 300)
	if res.Dropped != 0 {
		t.Fatalf("stream dropped %d messages", res.Dropped)
	}
	within(t, "4KB bandwidth", res.MBps(), 15.0, 0.05)
}

func TestSBA200SmallMessagesBelowLimit(t *testing.T) {
	// Below ~500 B the i960 per-message cost dominates and bandwidth falls
	// short of the AAL5 limit (Figure 4's gap at small sizes).
	res := streamMBps(t, nic.SBA200Params(), 256, 400)
	limit := 256.0 / (6 * 3.158)
	if res.MBps() >= limit*0.95 {
		t.Fatalf("256B bandwidth %.2f MB/s ≥ 95%% of AAL5 limit %.2f — no small-message gap",
			res.MBps(), limit)
	}
	if res.Dropped != 0 {
		t.Fatalf("stream dropped %d messages", res.Dropped)
	}
}

func TestSBA200SignalAddsThirtyMicrosecondsPerEnd(t *testing.T) {
	// §4.2.3: signals instead of polling add ~30 µs on each end. Compare a
	// one-way latency with signal upcall against polling pickup; the
	// difference is exactly SignalDelivery.
	p := unet.DefaultNodeParams()
	if p.SignalDelivery != 30*time.Microsecond {
		t.Fatalf("SignalDelivery = %v, want 30µs", p.SignalDelivery)
	}
}

// --- Fore original firmware (§4.2.1) ---

func TestForeFirmwareRTT160us(t *testing.T) {
	got := rttUS(t, nic.ForeParams(), 32, 50)
	within(t, "Fore single-cell RTT", got, 160, 0.05)
}

func TestForeFirmware13MBpsAt4K(t *testing.T) {
	res := streamMBps(t, nic.ForeParams(), 4096, 300)
	within(t, "Fore 4KB bandwidth", res.MBps(), 13.0, 0.08)
}

func TestForeSlowerThanUNetFirmware(t *testing.T) {
	fore := rttUS(t, nic.ForeParams(), 32, 30)
	unetFW := rttUS(t, nic.SBA200Params(), 32, 30)
	if fore < 2*unetFW {
		t.Fatalf("Fore RTT %.1fµs not ≥ 2× U-Net firmware RTT %.1fµs (paper: ~2.5×)", fore, unetFW)
	}
}

// --- SBA-100 (§4.1, Table 1) ---

func TestSBA100SingleCellRTT66us(t *testing.T) {
	got := rttUS(t, nic.SBA100Params(), 32, 50)
	within(t, "SBA-100 single-cell RTT", got, 66, 0.05)
}

func TestSBA100Bandwidth6_8MBpsAt1K(t *testing.T) {
	res := streamMBps(t, nic.SBA100Params(), 1024, 300)
	within(t, "SBA-100 1KB bandwidth", res.MBps(), 6.8, 0.08)
}

func TestSBA100OneWayBreakdown(t *testing.T) {
	// Table 1: 21 µs trap-level + 7 µs AAL5 send + 5 µs AAL5 receive =
	// 33 µs one way. The model folds these into its params; the RTT checks
	// the sum, and here we check the printed breakdown stays faithful.
	p := nic.SBA100Params()
	send := p.TxPerCell.Seconds() * 1e6
	recv := p.RxPerCell.Seconds() * 1e6
	within(t, "AAL5 send overhead", send, 7, 0.05)
	within(t, "AAL5 recv overhead", recv, 5, 0.05)
}

// --- generic device behaviour ---

func TestDeviceStatsCount(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pr.PingPong(10, 48) // 11 rounds including warm-up, 2 cells each way
	st0 := tb.Devices[0].Stats()
	st1 := tb.Devices[1].Stats()
	if st0.PDUsOut != 11 || st1.PDUsOut != 11 {
		t.Fatalf("PDUsOut = %d/%d, want 11/11", st0.PDUsOut, st1.PDUsOut)
	}
	if st0.CellsOut != 22 || st0.CellsIn != 22 {
		t.Fatalf("cells = out %d in %d, want 22/22", st0.CellsOut, st0.CellsIn)
	}
	if st0.BadPDUs != 0 || st0.UnknownVCIs != 0 {
		t.Fatalf("unexpected errors in stats: %+v", st0)
	}
}

func TestCellLossDropsWholePDU(t *testing.T) {
	// §7.8 / Romanow & Floyd: one lost cell discards the whole AAL5 PDU,
	// which the receiving endpoint accounts as a reassembly drop.
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
		i++
		return i == 4 // lose the 4th cell on the wire
	})
	res := pr.Stream(3, 500) // 3 messages × 11 cells
	if res.Delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", res.Delivered)
	}
	st := pr.EpB.Stats()
	if st.DroppedReassembly != 1 {
		t.Fatalf("DroppedReassembly = %d, want 1", st.DroppedReassembly)
	}
}

func TestInputFIFOOverflowDrops(t *testing.T) {
	// A 4-cell input FIFO on the receiving NIC must overflow under a
	// multi-cell burst and drop cells (then whole PDUs at reassembly).
	nicp := nic.SBA200Params()
	nicp.InFIFODepth = 4
	nicp.RxPerCell = 20 * time.Microsecond // slow receiver
	tb := testbed.New(testbed.Config{Hosts: 2, NIC: &nicp})
	defer tb.Close()
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := pr.Stream(20, 480)
	if res.Delivered == 20 {
		t.Fatal("no loss despite 4-cell input FIFO and slow receive path")
	}
	if tb.Devices[1].Stats().InFIFODrops == 0 {
		t.Fatal("InFIFODrops not accounted")
	}
}

func TestRoundRobinFairnessAcrossEndpoints(t *testing.T) {
	// Two endpoints on the same host blast simultaneously; the firmware's
	// round-robin send-queue scan (§4.2.2) must give both comparable
	// service rather than starving one.
	tb := testbed.New(testbed.Config{Hosts: 2})
	defer tb.Close()
	pr1, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	blast := func(pr *testbed.Pair) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: []byte{byte(i)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}
	tb.Hosts[0].Spawn("blast1", blast(pr1))
	tb.Hosts[0].Spawn("blast2", blast(pr2))
	drain := func(pr *testbed.Pair) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				testbed.Recycle(p, pr.EpB, pr.EpB.Recv(p))
			}
		}
	}
	tb.Hosts[1].Spawn("drain1", drain(pr1))
	tb.Hosts[1].Spawn("drain2", drain(pr2))

	// Stop mid-stream and compare progress.
	tb.Eng.RunUntil(1500 * time.Microsecond)
	s1 := pr1.EpA.Stats().Sent
	s2 := pr2.EpA.Stats().Sent
	if s1 == 0 || s2 == 0 {
		t.Fatalf("an endpoint was starved: %d vs %d", s1, s2)
	}
	ratio := float64(s1) / float64(s2)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("unfair service: %d vs %d PDUs", s1, s2)
	}
	tb.Eng.Run()
}
