package nic_test

import (
	"testing"

	"unet/internal/faults"
	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

// TestCrcDropRecyclesEagerly pins the receive-side CRC failure path
// (DESIGN.md §11): a wire-corrupted payload bit must be caught by the
// real AAL5 CRC-32, counted as Stats.CrcDrops, and every pooled resource
// the half-built PDU held — the reassembly slab above all — must go
// straight back to the arena (Live()==0), leaving the device ready for
// the next message.
func TestCrcDropRecyclesEagerly(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1000 // 21 cells per message
	const count = 4

	// Flip one payload bit of cell 25 on the switch→host1 link: a mid-PDU
	// cell of the second message. Its EOP cell then fails the CRC-32.
	inj := faults.NewNthCellCorrupt(25, 9)
	tb.Fabric.Downlink(1).SetInjector(inj)

	tb.Hosts[0].Spawn("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: size}); err != nil {
				panic(err)
			}
		}
	})
	tb.Eng.Run()

	st := tb.Devices[1].Stats()
	if st.CrcDrops != 1 || st.BadPDUs != 1 {
		t.Fatalf("CrcDrops = %d, BadPDUs = %d, want 1, 1", st.CrcDrops, st.BadPDUs)
	}
	if got := inj.Stats().Corrupted; got != 1 {
		t.Fatalf("injector corrupted %d cells, want 1", got)
	}
	if got := pr.EpB.Stats().Received; got != count-1 {
		t.Fatalf("delivered %d messages, want %d (one lost to CRC)", got, count-1)
	}
	dev := tb.Devices[1]
	if live := dev.OffsetsStats().Live(); live != count-1 {
		t.Fatalf("offset pool Live = %d with %d queued descriptors, want %d", live, count-1, count-1)
	}

	// Drain and verify nothing leaked: the corrupt PDU's slab went back the
	// moment the CRC failed, the delivered ones return through Consume.
	tb.Hosts[1].Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < count-1; i++ {
			rd := pr.EpB.Recv(p)
			testbed.Recycle(p, pr.EpB, rd)
		}
	})
	tb.Eng.Run()
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena Live = %d after a CRC drop, want 0", live)
	}
	if live := dev.OffsetsStats().Live(); live != 0 {
		t.Fatalf("offset pool Live = %d after drain, want 0", live)
	}

	// The device must be whole: a further message still delivers.
	tb.Hosts[0].Spawn("again", func(p *sim.Proc) {
		if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: size}); err != nil {
			panic(err)
		}
	})
	tb.Eng.Run()
	if got := pr.EpB.Stats().Received; got != count {
		t.Fatalf("post-drop delivery failed: received = %d, want %d", got, count)
	}
	tb.Hosts[1].Spawn("drain2", func(p *sim.Proc) {
		rd := pr.EpB.Recv(p)
		testbed.Recycle(p, pr.EpB, rd)
	})
	tb.Eng.Run()
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena Live = %d at the end, want 0", live)
	}
}
