package nic_test

import (
	"testing"

	"unet/internal/sim"
	"unet/internal/testbed"
	"unet/internal/unet"
)

// Pool-lifecycle tests for the drop paths in the receive pipeline
// (DESIGN.md §10): whenever the NIC cannot deliver a PDU — free queue
// empty, receive queue full — every pooled resource it took (reassembly
// slab, offset list, popped buffers) must go straight back, so a lossy
// steady state stays allocation-free and nothing leaks.

// drain receives n messages on ep and recycles everything, then runs the
// engine to quiescence.
func drain(tb *testbed.Testbed, ep *unet.Endpoint, n int, check func(unet.RecvDesc)) {
	ep.Host().Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			rd := ep.Recv(p)
			if check != nil {
				check(rd)
			}
			testbed.Recycle(p, ep, rd)
		}
	})
	tb.Eng.Run()
}

// TestBufferExhaustionRecycles drives deliverBuffered out of free buffers:
// the partially-popped buffers and the offset list must return to their
// pools, the drop must be counted, and the free queue must be whole enough
// to accept the next message that fits.
func TestBufferExhaustionRecycles(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{}, 2) // only two receive buffers
	if err != nil {
		t.Fatal(err)
	}
	bufSize := pr.EpB.Config().RecvBufSize
	tooBig := 3 * bufSize // needs three buffers; pops two, then fails
	fits := 2 * bufSize

	tb.Hosts[0].Spawn("send", func(p *sim.Proc) {
		if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: tooBig}); err != nil {
			panic(err)
		}
	})
	tb.Eng.Run()

	if got := pr.EpB.Stats().DroppedNoBuffer; got != 1 {
		t.Fatalf("DroppedNoBuffer = %d, want 1", got)
	}
	dev := tb.Devices[1]
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena holds %d slab(s) after a no-buffer drop, want 0", live)
	}
	if live := dev.OffsetsStats().Live(); live != 0 {
		t.Fatalf("offset pool holds %d list(s) after a no-buffer drop, want 0", live)
	}

	// The two popped buffers went back to the free queue: a two-buffer
	// message must now be deliverable.
	tb.Hosts[0].Spawn("send", func(p *sim.Proc) {
		if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: fits}); err != nil {
			panic(err)
		}
	})
	tb.Eng.Run()
	if got := pr.EpB.Stats().Received; got != 1 {
		t.Fatalf("delivered = %d after refilling from the drop path, want 1", got)
	}
	if live := dev.OffsetsStats().Live(); live != 1 {
		t.Fatalf("offset pool Live = %d with one queued descriptor, want 1", live)
	}
	drain(tb, pr.EpB, 1, func(rd unet.RecvDesc) {
		if rd.Length != fits || len(rd.Buffers) != 2 {
			t.Errorf("recv = %d B in %d buffers, want %d B in 2", rd.Length, len(rd.Buffers), fits)
		}
	})
	if live := dev.OffsetsStats().Live(); live != 0 {
		t.Fatalf("offset pool Live = %d after Consume, want 0", live)
	}
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena Live = %d after drain, want 0", live)
	}
}

// TestRecvQueueOverflowRecyclesBuffered overflows a two-slot receive queue
// with buffered PDUs: overflowed messages must push their scattered
// buffers and offset lists back immediately, while the two queued
// descriptors hold exactly two offset lists until the application
// consumes them.
func TestRecvQueueOverflowRecyclesBuffered(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{RecvQueueCap: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1000 // multi-cell, one receive buffer

	tb.Hosts[0].Spawn("burst", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Offset: pr.StageA, Length: size}); err != nil {
				panic(err)
			}
		}
	})
	tb.Eng.Run()

	st := pr.EpB.Stats()
	if st.DroppedQueueFull != 4 || st.Received != 2 {
		t.Fatalf("received %d / dropped %d, want 2 / 4", st.Received, st.DroppedQueueFull)
	}
	dev := tb.Devices[1]
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena Live = %d after scatter, want 0 (slabs recycled)", live)
	}
	if live := dev.OffsetsStats().Live(); live != 2 {
		t.Fatalf("offset pool Live = %d, want 2 (one list per queued descriptor)", live)
	}
	drain(tb, pr.EpB, 2, nil)
	if live := dev.OffsetsStats().Live(); live != 0 {
		t.Fatalf("offset pool Live = %d after drain, want 0", live)
	}
}

// TestRecvQueueOverflowRecyclesInline does the same for the single-cell
// fast path, where the queued descriptor owns the reassembly slab itself:
// overflow must recycle the slab at once, and Consume must return the two
// queued ones.
func TestRecvQueueOverflowRecyclesInline(t *testing.T) {
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	pr, err := tb.NewPair(0, 1, unet.EndpointConfig{RecvQueueCap: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := pr.EpA.Segment()[pr.StageA : pr.StageA+32]

	tb.Hosts[0].Spawn("burst", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := pr.EpA.SendBlock(p, unet.SendDesc{Channel: pr.ChA, Inline: payload}); err != nil {
				panic(err)
			}
		}
	})
	tb.Eng.Run()

	st := pr.EpB.Stats()
	if st.DroppedQueueFull != 4 || st.Received != 2 {
		t.Fatalf("received %d / dropped %d, want 2 / 4", st.Received, st.DroppedQueueFull)
	}
	dev := tb.Devices[1]
	if live := dev.ArenaStats().Live(); live != 2 {
		t.Fatalf("payload arena Live = %d, want 2 (one slab per queued inline descriptor)", live)
	}
	drain(tb, pr.EpB, 2, func(rd unet.RecvDesc) {
		if rd.Inline == nil || rd.Length != 32 {
			t.Errorf("recv = %d B, inline=%v, want 32 B inline", rd.Length, rd.Inline != nil)
		}
	})
	if live := dev.ArenaStats().Live(); live != 0 {
		t.Fatalf("payload arena Live = %d after Consume, want 0", live)
	}
}
