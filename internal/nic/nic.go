// Package nic provides the network-interface models behind U-Net: the Fore
// SBA-200 running the paper's custom firmware (§4.2.2), the same board
// running Fore's original firmware (the §4.2.1 baseline), and the simpler
// programmed-I/O SBA-100 (§4.1).
//
// All three share one processing engine, Device: a simulated on-board (or,
// for the SBA-100, trap-level host) processor that drains endpoint send
// queues, segments messages into AAL5 cells onto the uplink, reassembles
// arriving cells, and delivers descriptors into endpoint receive queues.
// The models differ only in their Params cost tables and fast-path
// capabilities; every constant is calibrated against a measurement quoted
// in the paper (see the constructors in params.go).
package nic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/sim"
	"unet/internal/unet"
)

// directHeaderSize prefixes direct-access PDUs with the 64-bit deposit
// offset (§3.6).
const directHeaderSize = 8

// Stats counts device-level events.
type Stats struct {
	CellsOut     uint64
	CellsIn      uint64
	PDUsOut      uint64
	PDUsIn       uint64
	InFIFODrops  uint64 // cells lost to input FIFO overflow
	BadPDUs      uint64 // AAL5 CRC/length failures (lost or corrupt cells)
	CrcDrops     uint64 // subset of BadPDUs: CRC-32 mismatch (corrupt payload)
	UnknownVCIs  uint64 // cells on unregistered VCIs
	DirectDenied uint64 // direct-access PDUs to non-direct endpoints
	// Doorbells counts KickTx rings; DoorbellsCoalesced counts the rings
	// absorbed by an already-pending doorbell (the processor learns of the
	// whole burst from one signal, as the SBA-200 firmware's polling loop
	// picks up every queued descriptor per sweep, §4.2.2).
	Doorbells          uint64
	DoorbellsCoalesced uint64
}

// vciEntry is one row of the dense demultiplex table: the route to the
// owning endpoint plus the per-VCI AAL5 reassembly state, all in one cache
// line's reach. Indexing by VCI replaces the two map lookups the receive
// path used to make per cell, and embedding the reassembler removes the
// per-VCI lazy allocation.
type vciEntry struct {
	ep     *unet.Endpoint
	ch     unet.ChannelID
	open   bool
	direct bool
	reasm  atm.Reassembler
}

// arrival is one cell in the input FIFO, tagged with its wire arrival time.
// Train intake stamps cells with future arrival times; the processor never
// consumes a cell before its stamp.
type arrival struct {
	c      atm.Cell
	arrive time.Duration
}

// Device is a NIC model servicing the U-Net endpoints of one host. It
// implements unet.Device.
type Device struct {
	name   string
	e      *sim.Engine
	host   *unet.Host
	params Params
	uplink *fabric.Link

	// Input FIFO: a power-of-two ring of timestamped cells. Kept inline
	// (rather than a sim.FIFO) so whole cell trains can be accepted in one
	// call with exact overflow accounting.
	in    []arrival
	ihead int
	inn   int
	work  sim.Cond

	eps   []*unet.Endpoint
	txRR  int
	stats Stats

	// Dense VCI demultiplex table, indexed by VCI. The manager hands out
	// receive VCIs sequentially from a small base, so the table stays
	// compact. lastVCI/lastEnt cache the most recent lookup: cells arrive
	// in VCI-contiguous trains, so the cache hits for every cell of a
	// multi-cell PDU after the first. Any table mutation (open/close/grow)
	// must invalidate the cache — entries move when the slice reallocates.
	table   []vciEntry
	lastVCI atm.VCI
	lastEnt *vciEntry

	// txDoorbell latches KickTx rings between processor sweeps: set when an
	// endpoint enqueues send work, cleared only by a send scan that finds
	// every queue empty. While clear, the processor skips the O(endpoints)
	// scan entirely. Virtual time is unaffected — the scan is cost-free and
	// a clear doorbell means it would have found nothing.
	txDoorbell bool

	// arena recycles inline payload slabs (single-cell fast path and
	// reassembly buffers); offPool recycles the Buffers offset lists of
	// multi-buffer descriptors. Both flow out through RecvDescs and back
	// via Endpoint.Consume → RecycleInline/RecycleOffsets (DESIGN.md §10).
	arena   unet.BufPool
	offPool unet.OffsetsPool

	// dcFree is a free list of delayed-cell boxes for the DeliverTrain
	// overflow fallback, replacing a per-cell closure allocation.
	dcFree *delayedCell

	txCells []atm.Cell // segmentation scratch, reused across sends
	txData  []byte     // DMA/header staging scratch, reused across sends
}

var _ unet.Device = (*Device)(nil)
var _ unet.DescRecycler = (*Device)(nil)
var _ fabric.TrainSink = (*Device)(nil)

// New creates a device sending on uplink. Call Start (or use Attach) to
// run its processor.
func New(e *sim.Engine, host *unet.Host, params Params, uplink *fabric.Link) *Device {
	if uplink.Engine() != e {
		panic(fmt.Sprintf("nic: %s/%s transmits on a foreign shard's uplink", host.Name, params.Name))
	}
	d := &Device{
		name:   host.Name + "/" + params.Name,
		e:      e,
		host:   host,
		params: params,
		uplink: uplink,
	}
	return d
}

// Attach wires a device of the given parameters to a fabric attachment
// point (a single-switch cluster port or a topo-compiled fabric's host
// index): it creates the device, registers it as the host's cell sink and
// the host's device, records the host with the manager, and starts the
// on-board processor.
func Attach(h *unet.Host, cl fabric.Network, m *unet.Manager, port int, params Params) *Device {
	d := New(h.Eng, h, params, cl.Uplink(port))
	cl.SetHostSink(port, d)
	h.SetDevice(d)
	if m != nil {
		m.Register(h, port)
	}
	d.Start()
	return d
}

// Start spawns the device's processing loop.
func (d *Device) Start() { d.e.Spawn(d.name, d.run) }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// Params returns the device's cost table.
func (d *Device) Params() Params { return d.params }

// --- unet.Device management interface ---

// AttachEndpoint begins servicing ep.
func (d *Device) AttachEndpoint(ep *unet.Endpoint) error {
	if len(d.eps) >= d.params.MaxEndpoints {
		return fmt.Errorf("nic %s: endpoint table full (%d)", d.name, d.params.MaxEndpoints)
	}
	d.eps = append(d.eps, ep)
	return nil
}

// DetachEndpoint stops servicing ep and forgets its channels.
func (d *Device) DetachEndpoint(ep *unet.Endpoint) {
	for i, e := range d.eps {
		if e == ep {
			d.eps = append(d.eps[:i], d.eps[i+1:]...)
			break
		}
	}
	for i := range d.table {
		if ent := &d.table[i]; ent.open && ent.ep == ep {
			d.closeEntry(ent)
		}
	}
	d.lastEnt = nil
}

// OpenChannel registers the receive tag rx as belonging to (ep, ch).
func (d *Device) OpenChannel(ep *unet.Endpoint, ch unet.ChannelID, tx, rx atm.VCI) error {
	if int(rx) >= len(d.table) {
		grown := make([]vciEntry, int(rx)+1)
		copy(grown, d.table)
		d.table = grown
	}
	ent := &d.table[rx]
	if ent.open && ent.ep != ep {
		return errors.New("nic: VCI already registered to another endpoint")
	}
	ent.ep, ent.ch, ent.open = ep, ch, true
	ent.reasm.SetSource(&d.arena)
	d.lastEnt = nil // table may have reallocated
	return nil
}

// closeEntry clears one table row, returning any partial-PDU slab to the
// arena.
func (d *Device) closeEntry(ent *vciEntry) {
	ent.reasm.Reset()
	*ent = vciEntry{}
}

// CloseChannel removes the tag registration.
func (d *Device) CloseChannel(ep *unet.Endpoint, ch unet.ChannelID) {
	for i := range d.table {
		if ent := &d.table[i]; ent.open && ent.ep == ep && ent.ch == ch {
			d.closeEntry(ent)
		}
	}
	d.lastEnt = nil
}

// route looks up the table entry for v, or nil if the VCI is unregistered.
//
//unetlint:hotpath per-cell demux lookup; runs once per arriving cell
func (d *Device) route(v atm.VCI) *vciEntry {
	if d.lastEnt != nil && v == d.lastVCI {
		return d.lastEnt
	}
	if int(v) >= len(d.table) || !d.table[v].open {
		return nil
	}
	d.lastVCI, d.lastEnt = v, &d.table[v]
	return d.lastEnt
}

// KickTx wakes the processor: ep's send queue became non-empty. Rings are
// coalesced through the txDoorbell latch — if one is already pending, the
// processor will pick this descriptor up in the same sweep.
//
//unetlint:hotpath doorbell ring; runs on every user-level send
func (d *Device) KickTx(ep *unet.Endpoint) {
	d.stats.Doorbells++
	if d.txDoorbell {
		d.stats.DoorbellsCoalesced++
		return
	}
	d.txDoorbell = true
	d.work.Signal()
}

// SingleCellMax reports the inline-descriptor fast-path limit.
func (d *Device) SingleCellMax() int { return d.params.SingleCellMax }

// MTU reports the largest message the device segments.
func (d *Device) MTU() int { return d.params.MTU }

// MaxEndpoints reports the endpoint table size.
func (d *Device) MaxEndpoints() int { return d.params.MaxEndpoints }

// push appends a timestamped cell to the input ring, growing it as needed
// up to the FIFO depth.
func (d *Device) push(a arrival) {
	if d.inn == len(d.in) {
		grown := make([]arrival, max(8, 2*len(d.in)))
		for i := 0; i < d.inn; i++ {
			grown[i] = d.in[(d.ihead+i)&(len(d.in)-1)]
		}
		d.in = grown
		d.ihead = 0
	}
	d.in[(d.ihead+d.inn)&(len(d.in)-1)] = a
	d.inn++
}

// pop removes the oldest queued cell.
func (d *Device) pop() arrival {
	a := d.in[d.ihead]
	d.in[d.ihead] = arrival{}
	d.ihead = (d.ihead + 1) & (len(d.in) - 1)
	d.inn--
	return a
}

// DeliverCell implements fabric.CellSink: a cell arrived off the fiber
// into the input FIFO. Overflow drops the cell, as the real FIFO would.
//
//unetlint:allow costcharge FIFO intake is free; per-cell processing cost is charged by the processor loop in processCell
func (d *Device) DeliverCell(c atm.Cell) {
	if d.inn >= d.params.InFIFODepth {
		d.stats.InFIFODrops++
		return
	}
	d.push(arrival{c: c, arrive: d.e.Now()})
	d.work.Signal()
}

// DeliverTrain implements fabric.TrainSink: a back-to-back run of cells is
// queued in one call, each stamped with its arrival time (cells[i] arrives
// at first + i*spacing; the processor will not touch it earlier).
//
// Accepting the whole train up front is exact as long as it fits: FIFO
// occupancy can only fall between now and the later cells' arrivals (the
// processor drains, nothing else fills), so per-cell delivery could not
// have dropped any of these cells either. When the train does not fit, fall
// back to per-cell delivery events, which reproduce overflow drops
// cell-by-cell exactly as the unbatched fabric did.
//
//unetlint:allow costcharge FIFO intake is free; per-cell processing cost is charged by the processor loop in processCell
func (d *Device) DeliverTrain(cells []atm.Cell, first, spacing time.Duration) {
	if d.inn+len(cells) > d.params.InFIFODepth {
		for k := 1; k < len(cells); k++ {
			d.deliverCellAt(cells[k], first+time.Duration(k)*spacing)
		}
		d.DeliverCell(cells[0])
		return
	}
	for i := range cells {
		d.push(arrival{c: cells[i], arrive: first + time.Duration(i)*spacing})
	}
	d.work.Signal()
}

// delayedCell boxes one cell scheduled for future delivery, recycled
// through the device's free list so the DeliverTrain overflow fallback
// allocates nothing in steady state.
type delayedCell struct {
	d    *Device
	c    atm.Cell
	next *delayedCell
}

// fireDelayedCell is the static AtArg callback delivering a boxed cell.
// The box returns to the free list before delivery so the handler chain
// can reuse it immediately.
func fireDelayedCell(a any) {
	dc := a.(*delayedCell)
	d, c := dc.d, dc.c
	dc.d = nil
	dc.next = d.dcFree
	d.dcFree = dc
	d.DeliverCell(c)
}

// deliverCellAt schedules a single-cell delivery at a future instant using
// a pooled box and a closure-free engine callback.
func (d *Device) deliverCellAt(c atm.Cell, at time.Duration) {
	dc := d.dcFree
	if dc == nil {
		dc = &delayedCell{}
	} else {
		d.dcFree = dc.next
		dc.next = nil
	}
	dc.d, dc.c = d, c
	d.e.AtArg(at, fireDelayedCell, dc)
}

// --- processing loop ---

// run is the on-board processor (the i960 in the SBA-200; the trap-level
// host CPU in the SBA-100): it alternates draining the input FIFO —
// reception has priority, as in the firmware — with servicing one send
// descriptor per round from the endpoints, round-robin.
//
// Per-cell costs are accounted arithmetically on a virtual cursor rather
// than with one Sleep per cell: the cursor advances by each cell's cost,
// and the process synchronizes (sleeps to the cursor) only before an
// observable action — delivering a PDU, popping a send descriptor, or
// going idle. The observable timeline is identical to sleep-per-cell; the
// engine just runs one context switch per PDU instead of several per cell.
func (d *Device) run(p *sim.Proc) {
	for {
		progress := false
		// Drain every cell that has arrived by the processor's current
		// position in virtual time, re-checking after each synchronizing
		// sleep (more cells may have arrived in the interim — the same
		// cells a sleep-per-cell processor would find in its input FIFO).
		for d.inn > 0 && d.in[d.ihead].arrive <= p.Now() {
			cursor := p.Now()
			for d.inn > 0 && d.in[d.ihead].arrive <= cursor {
				cursor = d.processCell(p, d.pop().c, cursor)
			}
			d.syncTo(p, cursor)
			progress = true
		}
		// The send scan runs only while the doorbell is pending: a clear
		// doorbell guarantees every send queue is empty (the last scan found
		// them so, and enqueues since would have rung). Clearing only on an
		// empty scan keeps the service order — and hence the timeline —
		// identical to the unconditional scan.
		if d.txDoorbell {
			if ep := d.nextTxEndpoint(); ep != nil {
				d.handleTx(p, ep)
				progress = true
			} else {
				d.txDoorbell = false
			}
		}
		if !progress {
			if d.inn > 0 {
				// The head cell is stamped in the future: sleep until it
				// arrives, unless send work shows up first.
				p.WaitTimeout(&d.work, d.in[d.ihead].arrive-p.Now())
			} else {
				p.Wait(&d.work)
			}
		}
	}
}

// syncTo sleeps the processor forward to the cost cursor, making the
// virtual clock agree with the accounted work before an observable action.
func (d *Device) syncTo(p *sim.Proc, cursor time.Duration) {
	if cursor > p.Now() {
		p.Sleep(cursor - p.Now())
	}
}

func (d *Device) nextTxEndpoint() *unet.Endpoint {
	n := len(d.eps)
	for i := 0; i < n; i++ {
		ep := d.eps[(d.txRR+i)%n]
		if ep.DevSendPending() {
			d.txRR = (d.txRR + i + 1) % n
			return ep
		}
	}
	return nil
}

// handleTx services one send descriptor: the single-cell fast path stores
// descriptor-resident data straight into a cell (§4.2.2); larger messages
// are fetched from the communication segment (host-memory DMA, charged in
// TxFixed/TxPerCell) and segmented. The uplink's bounded output FIFO
// paces the processor when the fiber backs up.
func (d *Device) handleTx(p *sim.Proc, ep *unet.Endpoint) {
	desc, ok := ep.DevPopSend()
	if !ok {
		return
	}
	tx, _, ok := ep.ChannelVCIs(desc.Channel)
	if !ok {
		return // channel closed while queued
	}
	d.stats.PDUsOut++
	cursor := p.Now()
	if desc.Inline != nil && d.params.SingleCellMax > 0 {
		cursor += d.params.TxSingleCell
		d.txCells = atm.SegmentAppend(d.txCells[:0], tx, desc.Inline)
		d.sendCells(p, d.txCells, cursor)
		return
	}
	d.txData = d.txData[:0]
	if desc.Direct {
		d.txData = binary.BigEndian.AppendUint64(d.txData, uint64(desc.DstOffset))
	}
	if desc.Inline != nil {
		d.txData = append(d.txData, desc.Inline...) // fast path absent on this device
	} else {
		d.txData = ep.DevReadSegmentAppend(d.txData, desc.Offset, desc.Length)
	}
	cursor += d.params.TxFixed
	d.txCells = atm.SegmentAppend(d.txCells[:0], tx, d.txData)
	if desc.Direct {
		for i := range d.txCells {
			d.txCells[i].Direct = true
		}
	}
	d.sendCells(p, d.txCells, cursor)
}

// sendCells puts cells on the uplink. The per-cell processor cost and the
// output-FIFO stall (formerly a Sleep and a WaitReady per cell) are folded
// into the cursor in closed form — the device is the uplink's only sender,
// so its committed-work horizon (NextFree) is fully known — and each cell
// is enqueued with SendAt at exactly the time Send would have been called.
// One synchronizing sleep at the end lands the processor where the
// sleep-per-cell loop would have left it.
func (d *Device) sendCells(p *sim.Proc, cells []atm.Cell, cursor time.Duration) {
	limit := time.Duration(d.params.OutFIFOCells) * d.uplink.Params().CellTime
	for i := range cells {
		cursor += d.params.TxPerCell
		if ready := d.uplink.NextFree() - limit; cursor < ready {
			cursor = ready // stall: output FIFO full
		}
		d.uplink.SendAt(cells[i], cursor)
		d.stats.CellsOut++
	}
	d.syncTo(p, cursor)
}

// processCell accounts and processes one arriving cell, advancing the cost
// cursor and returning it. Single-cell PDUs take the receive fast path:
// deposited directly into the next receive-queue entry with no buffer
// allocation (§4.2.2). Multi-cell PDUs accumulate per VCI and are scattered
// into free-queue buffers on completion. Mid-PDU cells have no observable
// effect, so their cost is pure cursor arithmetic; the process synchronizes
// to the cursor only when a completed (or failed) PDU reaches an endpoint.
//
//unetlint:hotpath per-cell receive demux + SAR; the steady-state receive path
func (d *Device) processCell(p *sim.Proc, c atm.Cell, cursor time.Duration) time.Duration {
	d.stats.CellsIn++
	ent := d.route(c.VCI)
	if ent == nil {
		d.stats.UnknownVCIs++
		return cursor
	}
	fastPath := ent.reasm.Pending() == 0 && c.EOP && !c.Direct && d.params.SingleCellMax > 0
	if fastPath {
		cursor += d.params.RxSingleCell
	} else {
		cursor += d.params.RxPerCell
	}
	if ent.reasm.Pending() == 0 {
		ent.direct = c.Direct
	}
	payload, err := ent.reasm.Add(c)
	if err != nil {
		// Add has already reset the reassembler, returning its slab to the
		// arena — the drop path holds no pooled state past this point.
		d.stats.BadPDUs++
		if errors.Is(err, atm.ErrBadCRC) {
			d.stats.CrcDrops++
		}
		d.syncTo(p, cursor)
		ent.ep.DevDropReassembly()
		return cursor
	}
	if payload == nil {
		return cursor // mid-PDU
	}
	// The reassembler drew its slab from the arena and has detached it:
	// from here the slab is this function's to deliver or return.
	d.stats.PDUsIn++
	if fastPath && len(payload) <= d.params.SingleCellMax {
		d.syncTo(p, cursor)
		// Deliver the detached slab itself — no copy; the application hands
		// it back through Endpoint.Consume → RecycleInline.
		if !ent.ep.DevDeliver(unet.RecvDesc{Channel: ent.ch, Length: len(payload), Inline: payload}) {
			d.arena.PutBuf(payload) // receive queue full: reclaim the slab
		}
		return cursor
	}
	cursor += d.params.RxFixed
	d.syncTo(p, cursor)
	if ent.direct {
		d.deliverDirect(ent, payload)
	} else {
		d.deliverBuffered(ent, payload)
	}
	d.arena.PutBuf(payload) // scatter (or drop) complete; slab back to the arena
	return cursor
}

// deliverDirect deposits a §3.6 direct-access PDU at the sender-specified
// segment offset, if the endpoint allows it.
func (d *Device) deliverDirect(ent *vciEntry, payload []byte) {
	if len(payload) < directHeaderSize || !ent.ep.Config().DirectAccess {
		d.stats.DirectDenied++
		ent.ep.DevDropNoBuffer()
		return
	}
	off := int(binary.BigEndian.Uint64(payload))
	data := payload[directHeaderSize:]
	if off < 0 || off+len(data) > len(ent.ep.Segment()) {
		d.stats.DirectDenied++
		ent.ep.DevDropNoBuffer()
		return
	}
	ent.ep.DevWriteSegment(off, data)
	ent.ep.DevDeliver(unet.RecvDesc{
		Channel: ent.ch, Length: len(data), Direct: true, DirectOffset: off,
	})
}

// deliverBuffered scatters a PDU into free-queue buffers and pushes the
// descriptor. Arrivals with no free buffers are dropped (§3.4: the process
// provides receive buffers explicitly; run out and you lose messages).
// The offset list rides in the descriptor and returns through
// Endpoint.Consume → RecycleOffsets; on any drop path it goes straight
// back to the pool here.
func (d *Device) deliverBuffered(ent *vciEntry, payload []byte) {
	bufSize := ent.ep.Config().RecvBufSize
	need := (len(payload) + bufSize - 1) / bufSize
	if need == 0 {
		need = 1
	}
	offs := d.offPool.GetOffsets()
	for i := 0; i < need; i++ {
		off, ok := ent.ep.DevPopFree()
		if !ok {
			// Out of buffers: return what we took and drop the message.
			for _, o := range offs {
				ent.ep.PushFree(nil, o)
			}
			d.offPool.PutOffsets(offs)
			ent.ep.DevDropNoBuffer()
			return
		}
		offs = append(offs, off)
	}
	for i, off := range offs {
		lo := i * bufSize
		hi := lo + bufSize
		if hi > len(payload) {
			hi = len(payload)
		}
		ent.ep.DevWriteSegment(off, payload[lo:hi])
	}
	if !ent.ep.DevDeliver(unet.RecvDesc{Channel: ent.ch, Length: len(payload), Buffers: offs}) {
		// Receive queue overflow: recycle the buffers and the list.
		for _, o := range offs {
			ent.ep.PushFree(nil, o)
		}
		d.offPool.PutOffsets(offs)
	}
}

// --- unet.DescRecycler (DESIGN.md §10) ---

// RecycleInline returns a consumed descriptor's inline slab to the arena.
func (d *Device) RecycleInline(buf []byte) { d.arena.PutBuf(buf) }

// RecycleOffsets returns a consumed descriptor's offset list to its pool.
func (d *Device) RecycleOffsets(offs []int) { d.offPool.PutOffsets(offs) }

// ArenaStats exposes the payload-slab pool counters (tests use Live to
// prove delivered descriptors all come home).
func (d *Device) ArenaStats() unet.PoolStats { return d.arena.Stats() }

// OffsetsStats exposes the offset-list pool counters.
func (d *Device) OffsetsStats() unet.PoolStats { return d.offPool.Stats() }

// OneWayWireTime estimates the fiber+switch flight time of the last cell
// of an n-byte PDU, used by calibration tests.
func OneWayWireTime(n int, lp fabric.LinkParams, switchLatency time.Duration) time.Duration {
	cells := atm.CellsFor(n)
	if cells == 0 {
		cells = 1
	}
	return time.Duration(cells)*lp.CellTime + lp.Propagation + switchLatency + lp.CellTime + lp.Propagation
}
