package nic

import (
	"time"

	"unet/internal/atm"
)

// Params is a NIC cost table. The processing engine charges these times;
// everything else (cell serialization, switch latency) is charged by the
// fabric. Every value is calibrated against a paper measurement noted on
// the constructor that sets it.
type Params struct {
	// Name labels the device model.
	Name string

	// TxSingleCell is the processor time to service an inline (single-cell
	// fast path) send descriptor: read the i960-resident descriptor,
	// build the cell, compute CRC in hardware, push to the output FIFO.
	TxSingleCell time.Duration
	// TxFixed is the per-message cost of the general send path: descriptor
	// processing and host-memory DMA set-up.
	TxFixed time.Duration
	// TxPerCell is the incremental processor cost per cell on the general
	// path (DMA bursts from host memory, FIFO pushes). When smaller than
	// the fiber's cell time, the link is the streaming bottleneck and the
	// fiber saturates (Figure 4).
	TxPerCell time.Duration

	// RxSingleCell is the receive fast path: a single-cell message is
	// transferred directly into the next receive-queue entry, skipping
	// buffer allocation (§4.2.2).
	RxSingleCell time.Duration
	// RxFixed is the per-message completion cost of the general receive
	// path: free-queue pop and descriptor DMA into the receive queue.
	RxFixed time.Duration
	// RxPerCell is the incremental cost per received cell (payload DMA).
	RxPerCell time.Duration

	// SingleCellMax is the largest message carried inline in descriptors;
	// 0 disables both fast paths.
	SingleCellMax int
	// MTU is the largest AAL5 PDU the device will segment.
	MTU int
	// InFIFODepth is the input FIFO capacity in cells; overflow drops.
	InFIFODepth int
	// OutFIFOCells bounds how far the processor runs ahead of the fiber.
	OutFIFOCells int
	// MaxEndpoints is the endpoint table size (on-board memory, §4.2.4).
	MaxEndpoints int
}

// SBA200Params returns the cost table of the SBA-200 running the paper's
// custom U-Net firmware (§4.2.2), calibrated to reproduce §4.2.3:
//
//   - single-cell round trip 65 µs (32.5 µs one way, composed of the
//     descriptor push, TxSingleCell, ~8.7 µs of wire, RxSingleCell and the
//     receiver's poll);
//   - 48-byte messages at 120 µs round trip (the multi-cell path's
//     buffer/DMA management is far costlier on the 25 MHz i960);
//   - ~6 µs of round-trip time per additional cell (wire-dominated);
//   - fiber saturation from ~800-byte packets (TxFixed amortizes below
//     the per-cell serialization slack).
func SBA200Params() Params {
	return Params{
		Name:          "sba200",
		TxSingleCell:  13 * time.Microsecond,
		TxFixed:       25 * time.Microsecond,
		TxPerCell:     1500 * time.Nanosecond,
		RxSingleCell:  9700 * time.Nanosecond,
		RxFixed:       19 * time.Microsecond,
		RxPerCell:     1500 * time.Nanosecond,
		SingleCellMax: atm.SingleCellMax,
		MTU:           atm.MaxPDU,
		InFIFODepth:   292,
		OutFIFOCells:  36,
		MaxEndpoints:  16,
	}
}

// ForeParams returns the cost table of the SBA-200 running Fore's original
// firmware (§4.2.1): the kernel-firmware interface is patterned after BSD
// mbufs and System V streams bufs, and the i960 traverses those linked
// structures with DMA. Calibration: ~160 µs single-cell round trip and
// 13 MB/s with 4 Kbyte packets. No single-cell fast path.
func ForeParams() Params {
	return Params{
		Name:          "fore",
		TxFixed:       31 * time.Microsecond,
		TxPerCell:     3300 * time.Nanosecond, // above the 3.16 µs cell time: never saturates
		RxFixed:       36 * time.Microsecond,
		RxPerCell:     3300 * time.Nanosecond,
		SingleCellMax: 0,
		MTU:           atm.MaxPDU,
		InFIFODepth:   292,
		OutFIFOCells:  36,
		MaxEndpoints:  16,
	}
}

// SBA100Params returns the cost table of the SBA-100 (§4.1): no DMA, no
// on-board processor — the "device processor" here is the host CPU in fast
// kernel traps doing programmed I/O and software AAL5 CRC. Calibration
// (Table 1): 21 µs trap-level one-way across the switch, +7 µs AAL5 send
// and +5 µs AAL5 receive overhead per cell (33%/40% of which is the
// software CRC), 66 µs single-cell round trip, and a send-limited
// 6.8 MB/s at 1 Kbyte packets.
func SBA100Params() Params {
	return Params{
		Name:          "sba100",
		TxFixed:       5300 * time.Nanosecond, // trap entry + FIFO store latency
		TxPerCell:     6800 * time.Nanosecond, // AAL5 SAR + CRC + PIO per cell
		RxFixed:       6500 * time.Nanosecond, // trap exit + FIFO drain latency
		RxPerCell:     5 * time.Microsecond,   // AAL5 receive overhead per cell
		SingleCellMax: 0,
		MTU:           atm.MaxPDU,
		InFIFODepth:   292,
		OutFIFOCells:  36,
		MaxEndpoints:  16,
	}
}

// SBA100CRCShareTx and SBA100CRCShareRx are the fractions of the SBA-100
// AAL5 overheads spent computing the CRC in software (§4.1: "33% of the
// send overhead and 40% of the receive overhead ... is due to CRC
// computation"). Used by the Table 1 harness to print the cost breakup.
const (
	SBA100CRCShareTx = 0.33
	SBA100CRCShareRx = 0.40
)
