package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags range statements over maps whose body has an
// order-dependent effect: scheduling or sending something, writing output,
// or appending derived data to a slice that outlives the loop. Go
// randomizes map iteration order per run, so any such loop feeds scheduler
// or output order from a random permutation and silently breaks the golden
// outputs.
//
// The canonical fix — collect the keys, sort, iterate the sorted slice —
// stays clean by construction: an append whose only appended value is the
// range key carries no order-dependent content (the collected keys are
// about to be sorted), and the sorted iteration itself ranges over a
// slice. Loops whose effect genuinely is order-independent carry an
// //unetlint:allow mapiter annotation saying why.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration whose body schedules events, writes output or accumulates derived data",
	Run:  runMapIter,
}

// effectCallPrefixes match (case-insensitively) callee names that schedule
// work, move data or write output.
var effectCallPrefixes = []string{
	"send", "emit", "write", "print", "log", "trace", "post", "sched",
	"deliver", "push", "enqueue", "signal", "retransmit", "transmit",
	"poll", "fire", "charge", "spawn", "record", "report", "flush",
}

// effectCallExact are engine scheduling entry points.
var effectCallExact = map[string]bool{
	"At": true, "AtArg": true, "After": true, "AfterArg": true, "Run": true, "RunUntil": true,
}

func runMapIter(pass *Pass) {
	if !inSimScope(pass.Unit.PkgPath) {
		return
	}
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Unit.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			var keyObj types.Object
			if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
				keyObj = pass.Unit.Info.Defs[id]
				if keyObj == nil {
					keyObj = pass.Unit.Info.Uses[id]
				}
			}
			if effect := orderEffect(pass, rs.Body, keyObj); effect != "" {
				pass.Reportf(rs.Pos(), "map iteration order is random per run and this body %s; iterate sorted keys instead", effect)
			}
			return true
		})
	}
}

// orderEffect scans a map-range body for an order-dependent effect and
// describes the first one found ("" when the body is order-neutral).
func orderEffect(pass *Pass, body *ast.BlockStmt, keyObj types.Object) string {
	var effect string
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "sends on a channel"
		case *ast.CallExpr:
			var name string
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			default:
				return true
			}
			if name == "append" {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pass.Unit.Info.Uses[id].(*types.Builtin); isBuiltin {
						for _, arg := range n.Args[1:] {
							if !isKeyRef(pass, arg, keyObj) {
								effect = "appends values derived from the iteration to a slice"
								return false
							}
						}
						return true
					}
				}
			}
			if effectCallExact[name] {
				effect = "schedules events (" + name + ")"
				return false
			}
			lower := strings.ToLower(name)
			for _, p := range effectCallPrefixes {
				if strings.HasPrefix(lower, p) {
					effect = "calls " + name
					return false
				}
			}
		}
		return true
	})
	return effect
}

// isKeyRef reports whether expr is exactly a reference to the range key
// variable (appending bare keys is the canonical collect-then-sort idiom).
func isKeyRef(pass *Pass, expr ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Unit.Info.Uses[id]
	if obj == nil {
		obj = pass.Unit.Info.Defs[id]
	}
	return obj == keyObj
}
