package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Unit is one type-checked body of Go source the analyzers run over: a
// package together with its in-package test files, or the external
// (package foo_test) test package of the same directory.
type Unit struct {
	// PkgPath is the canonical import path of the directory's package; an
	// external test unit shares the path of the package under test and sets
	// ForTest.
	PkgPath string
	ForTest bool
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// LoadDir is the directory the load was rooted at (the module directory
	// for Load, the fixture root for LoadFixture). Whole-program analyzers
	// that shell out to the go tool (hotpathalloc) run it there.
	LoadDir string

	dirMu      sync.Mutex
	directives []directive
	dirDiags   []Diagnostic
	dirBuilt   bool
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	Module       *struct{ Path string }
}

// goListPackages shells out to the go tool for package metadata and
// compiled export data. -export is what lets the type checker resolve every
// import without golang.org/x/tools: the gc importer reads the build
// cache's export files directly.
func goListPackages(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,GoFiles,TestGoFiles,XTestGoFiles,TestImports,XTestImports,Module",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// depImporter resolves imports from compiled export data located via
// `go list -export`. Paths missing from the preloaded index (test-only and
// fixture imports) are listed on demand.
type depImporter struct {
	dir     string
	exports map[string]string
	gc      types.Importer
}

func newDepImporter(fset *token.FileSet, dir string, pkgs []*listPkg) *depImporter {
	d := &depImporter{dir: dir, exports: make(map[string]string)}
	d.add(pkgs)
	d.gc = importer.ForCompiler(fset, "gc", d.lookup)
	return d
}

func (d *depImporter) add(pkgs []*listPkg) {
	for _, p := range pkgs {
		if p.Export != "" {
			d.exports[p.ImportPath] = p.Export
		}
	}
}

func (d *depImporter) lookup(path string) (io.ReadCloser, error) {
	f := d.exports[path]
	if f == "" {
		pkgs, err := goListPackages(d.dir, []string{path})
		if err != nil {
			return nil, err
		}
		d.add(pkgs)
		f = d.exports[path]
	}
	if f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

func (d *depImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return d.gc.Import(path)
}

// Load type-checks every in-module package matching patterns (with its test
// files) and returns the units ready for analysis. dir is any directory
// inside the module; patterns are go package patterns such as ./... or
// unet/... .
func Load(dir string, patterns ...string) ([]*Unit, error) {
	fset := token.NewFileSet()
	pkgs, err := goListPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	index := make(map[string]*listPkg, len(pkgs))
	for _, p := range pkgs {
		index[p.ImportPath] = p
	}

	// Test files import packages -deps does not cover (testing, and
	// anything only tests use); fetch their export data in one extra pass.
	var missing []string
	seen := make(map[string]bool)
	for _, p := range pkgs {
		if p.Module == nil {
			continue
		}
		for _, imp := range append(append([]string(nil), p.TestImports...), p.XTestImports...) {
			if imp == "C" || imp == "unsafe" || index[imp] != nil || seen[imp] {
				continue
			}
			seen[imp] = true
			missing = append(missing, imp)
		}
	}
	imp := newDepImporter(fset, dir, pkgs)
	if len(missing) > 0 {
		sort.Strings(missing)
		more, err := goListPackages(dir, missing)
		if err != nil {
			return nil, err
		}
		imp.add(more)
	}

	var units []*Unit
	for _, p := range pkgs {
		if p.Module == nil {
			continue
		}
		if files := append(append([]string(nil), p.GoFiles...), p.TestGoFiles...); len(files) > 0 {
			u, err := checkUnit(fset, imp, p.Dir, p.ImportPath, files, false)
			if err == nil {
				u.LoadDir = dir
			}
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if len(p.XTestGoFiles) > 0 {
			u, err := checkUnit(fset, imp, p.Dir, p.ImportPath, p.XTestGoFiles, true)
			if err == nil {
				u.LoadDir = dir
			}
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].PkgPath != units[j].PkgPath {
			return units[i].PkgPath < units[j].PkgPath
		}
		return !units[i].ForTest && units[j].ForTest
	})
	return units, nil
}

// checkUnit parses and type-checks one unit.
func checkUnit(fset *token.FileSet, imp types.Importer, dir, pkgPath string, fileNames []string, forTest bool) (*Unit, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	checkPath := pkgPath
	if forTest {
		checkPath += "_test"
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", checkPath, err)
	}
	return &Unit{
		PkgPath: pkgPath,
		ForTest: forTest,
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}, nil
}

// LoadFixture loads an analyzer test fixture tree: every directory under
// root that contains .go files becomes one unit whose PkgPath is its
// slash-separated path relative to root. Fixture packages may import only
// the standard library.
func LoadFixture(root string) ([]*Unit, error) {
	fset := token.NewFileSet()
	imp := newDepImporter(fset, root, nil)
	byDir := make(map[string][]string)
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() && strings.HasSuffix(path, ".go") {
			d := filepath.Dir(path)
			byDir[d] = append(byDir[d], fi.Name())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var units []*Unit
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		sort.Strings(byDir[d])
		u, err := checkUnit(fset, imp, d, filepath.ToSlash(rel), byDir[d], false)
		if err != nil {
			return nil, err
		}
		u.LoadDir = root
		units = append(units, u)
	}
	return units, nil
}
