package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural engine. A Program is built once per lint run over every
// loaded unit: an index of all source-level functions (declarations and
// function literals), a conservative call graph connecting them across
// package boundaries, and the directive-driven fact sets (hot-path roots,
// leader-folded fields) the whole-program analyzers consume.
//
// Cross-package call edges cannot rely on *types.Func identity: a function
// declared in package B is one object in B's own source-checked unit and a
// different, export-data object in every unit that imports B. Nodes are
// therefore keyed by types.Func.FullName(), which both universes render
// identically, and edges resolve lazily through that key.
//
// The graph is conservative in the class-hierarchy sense: a call through an
// interface method adds an edge to every source-declared method of the same
// name whose receiver loosely implements the interface (loose = named types
// compare by package path and name rather than object identity, again
// because the two universes never share objects). Calls through plain
// function values resolve to nothing and are recorded as dynamic sites, so
// analyzers that need a sound reachability proof (hotpathalloc) can treat
// them as holes instead of silently ignoring them.

// FuncNode is one function in the program: a declared function or method,
// or a function literal (whose enclosing declaration, if any, carries an
// edge to it — a literal's behavior is attributed to its creation site).
type FuncNode struct {
	ID   string      // FullName for declarations, pkg#file:line:col for literals
	Fn   *types.Func // nil for literals
	Unit *Unit
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt

	Parent *FuncNode // enclosing function of a literal, nil otherwise

	Calls []Edge      // resolved static + interface (CHA) call edges
	Dyn   []token.Pos // calls through function values: unresolvable callees

	InTestFile bool // declared in a _test.go file (or an external test unit)
}

// Name returns a human-readable name for diagnostics.
func (n *FuncNode) Name() string {
	if n.Fn != nil {
		return n.Fn.FullName()
	}
	return n.ID
}

// Edge is one resolved call site.
type Edge struct {
	CalleeID string
	Call     *ast.CallExpr // the call site (argument exprs for taint queries)
	Caller   *FuncNode
	Iface    bool // resolved via class-hierarchy analysis, not a static target
}

// Program is the whole-program view shared by the interprocedural
// analyzers.
type Program struct {
	Units []*Unit
	Fset  *token.FileSet
	Dir   string // directory the units were loaded from (module root for Load)

	Nodes   map[string]*FuncNode
	nodes   []*FuncNode            // stable order
	callers map[string][]Edge      // reverse edges
	byFile  map[string][]*FuncNode // position lookup per file

	// Directive-driven fact sets.
	HotPath      map[string]bool // node IDs annotated //unetlint:hotpath
	LeaderFields map[string]bool // "pkgpath.Type.field" annotated //unetlint:leaderfold
	LeaderArgs   map[string]bool // node IDs passed as a `leader func()` argument

	diags []Diagnostic // misplaced-directive findings from program build
}

// BuildProgram indexes the units and constructs the call graph.
func BuildProgram(units []*Unit) *Program {
	p := &Program{
		Units:        units,
		Nodes:        make(map[string]*FuncNode),
		callers:      make(map[string][]Edge),
		byFile:       make(map[string][]*FuncNode),
		HotPath:      make(map[string]bool),
		LeaderFields: make(map[string]bool),
		LeaderArgs:   make(map[string]bool),
	}
	if len(units) > 0 {
		p.Fset = units[0].Fset
		p.Dir = units[0].LoadDir
	}

	// Pass 1: collect nodes for every declaration and literal.
	for _, u := range units {
		for _, f := range u.Files {
			fname := u.Fset.Position(f.Pos()).Filename
			testFile := u.ForTest || strings.HasSuffix(fname, "_test.go")
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok || d.Body == nil {
						continue
					}
					node := &FuncNode{ID: fn.FullName(), Fn: fn, Unit: u, Decl: d, Body: d.Body, InTestFile: testFile}
					p.addNode(node)
					p.collectLiterals(u, node, d.Body, testFile)
				case *ast.GenDecl:
					// Package-level function literals (var handlers = func(){…},
					// or literals inside composite-literal struct fields) get
					// top-level nodes of their own so no analyzer's walk can
					// lose them.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							p.collectLiteralsExpr(u, nil, v, testFile)
						}
					}
				}
			}
		}
	}

	// Pass 2: resolve calls.
	methodIndex := p.buildMethodIndex()
	for _, node := range p.nodes {
		p.resolveCalls(node, methodIndex)
	}
	for _, node := range p.nodes {
		for _, e := range node.Calls {
			p.callers[e.CalleeID] = append(p.callers[e.CalleeID], e)
		}
	}

	// Pass 3: directive-driven facts.
	p.collectMarkers()
	return p
}

func (p *Program) addNode(n *FuncNode) {
	if _, dup := p.Nodes[n.ID]; dup {
		// Two declarations can share a FullName only across test/non-test
		// variants of a package; keep the first (non-test units sort first).
		return
	}
	p.Nodes[n.ID] = n
	p.nodes = append(p.nodes, n)
	file := p.Fset.Position(p.nodeSpan(n)).Filename
	p.byFile[file] = append(p.byFile[file], n)
}

func (p *Program) nodeSpan(n *FuncNode) token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// litID builds a stable key for a function literal.
func (p *Program) litID(u *Unit, lit *ast.FuncLit) string {
	pos := u.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s#%s:%d:%d", u.PkgPath, pos.Filename, pos.Line, pos.Column)
}

// collectLiterals finds function literals nested in body (not descending
// into them recursively here; each literal recurses for its own children)
// and registers them as nodes parented to encloser.
func (p *Program) collectLiterals(u *Unit, encloser *FuncNode, body ast.Node, testFile bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if lit == encloserLit(encloser) {
			return true // the node itself
		}
		node := &FuncNode{ID: p.litID(u, lit), Unit: u, Lit: lit, Body: lit.Body, Parent: encloser, InTestFile: testFile}
		p.addNode(node)
		return false // node recurses for its own nested literals
	})
	// Recurse for the literals just added.
	for _, child := range p.byFile[p.Fset.Position(body.Pos()).Filename] {
		if child.Parent == encloser && child.Lit != nil && child.Lit.Pos() >= body.Pos() && child.Lit.End() <= body.End() {
			p.collectLiterals(u, child, child.Body, testFile)
		}
	}
}

func (p *Program) collectLiteralsExpr(u *Unit, encloser *FuncNode, expr ast.Expr, testFile bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &FuncNode{ID: p.litID(u, lit), Unit: u, Lit: lit, Body: lit.Body, Parent: encloser, InTestFile: testFile}
		p.addNode(node)
		p.collectLiterals(u, node, lit.Body, testFile)
		return false
	})
}

func encloserLit(n *FuncNode) *ast.FuncLit {
	if n == nil {
		return nil
	}
	return n.Lit
}

// ownStmts walks node's body without descending into nested function
// literals (which are nodes of their own).
func (p *Program) ownStmts(node *FuncNode, visit func(ast.Node) bool) {
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node.Lit {
			return false
		}
		return visit(n)
	})
}

// resolveCalls records node's outgoing edges: static calls, interface calls
// via CHA, immediately-invoked literals, and — when nothing resolves — a
// dynamic-call site.
func (p *Program) resolveCalls(node *FuncNode, mi *methodIndex) {
	u := node.Unit
	p.ownStmts(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A literal created inside this node behaves as if called here,
		// whether it runs now, deferred, or as a stored callback.
		// (Creation-site attribution; see package comment.)
		fun := ast.Unparen(call.Fun)
		if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		p.recordLeaderArgs(node, call)
		switch fn := fun.(type) {
		case *ast.Ident:
			switch obj := u.Info.Uses[fn].(type) {
			case *types.Func:
				node.Calls = append(node.Calls, Edge{CalleeID: obj.FullName(), Call: call, Caller: node})
				return true
			case *types.Builtin:
				return true
			case *types.TypeName:
				return true
			case *types.Var:
				node.Calls = append(node.Calls, p.edgeForFuncValue(node, call, obj)...)
				if len(node.Calls) == 0 || node.Calls[len(node.Calls)-1].Call != call {
					node.Dyn = append(node.Dyn, call.Pos())
				}
				return true
			}
			node.Dyn = append(node.Dyn, call.Pos())
		case *ast.SelectorExpr:
			if obj, ok := u.Info.Uses[fn.Sel].(*types.Func); ok {
				// Interface method call? Resolve implementors too.
				if sel, ok := u.Info.Selections[fn]; ok {
					if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
						for _, m := range mi.implementors(sel.Recv(), fn.Sel.Name) {
							node.Calls = append(node.Calls, Edge{CalleeID: m.ID, Call: call, Caller: node, Iface: true})
						}
						return true
					}
				}
				node.Calls = append(node.Calls, Edge{CalleeID: obj.FullName(), Call: call, Caller: node})
				return true
			}
			if _, ok := u.Info.Uses[fn.Sel].(*types.Var); ok {
				node.Dyn = append(node.Dyn, call.Pos()) // func-typed field or variable
				return true
			}
			if _, ok := u.Info.Uses[fn.Sel].(*types.TypeName); ok {
				return true
			}
			node.Dyn = append(node.Dyn, call.Pos())
		case *ast.FuncLit:
			node.Calls = append(node.Calls, Edge{CalleeID: p.litID(u, fn), Call: call, Caller: node})
		default:
			node.Dyn = append(node.Dyn, call.Pos())
		}
		return true
	})
}

// edgeForFuncValue resolves calls through a local variable that was only
// ever assigned one statically-known function (v := pkg.F; …; v()) — the
// single idiom worth resolving; anything fancier stays a dynamic site.
func (p *Program) edgeForFuncValue(node *FuncNode, call *ast.CallExpr, obj *types.Var) []Edge {
	var target *types.Func
	single := true
	p.ownStmts(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !single {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			lobj := node.Unit.Info.Defs[id]
			if lobj == nil {
				lobj = node.Unit.Info.Uses[id]
			}
			if lobj != obj || i >= len(as.Rhs) {
				continue
			}
			var rid *ast.Ident
			switch r := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.Ident:
				rid = r
			case *ast.SelectorExpr:
				rid = r.Sel
			}
			if rid == nil {
				single = false
				continue
			}
			if fn, ok := node.Unit.Info.Uses[rid].(*types.Func); ok {
				if target != nil && target.FullName() != fn.FullName() {
					single = false
				}
				target = fn
			} else {
				single = false
			}
		}
		return true
	})
	if single && target != nil {
		return []Edge{{CalleeID: target.FullName(), Call: call, Caller: node}}
	}
	return nil
}

// recordLeaderArgs marks functions passed at a parameter named "leader"
// (the barrier-leader convention barrierstate encodes).
func (p *Program) recordLeaderArgs(node *FuncNode, call *ast.CallExpr) {
	sig := p.callSignature(node.Unit, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		param := sig.Params().At(i)
		if param.Name() != "leader" {
			continue
		}
		if _, isFunc := param.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		if id := p.funcValueID(node.Unit, arg); id != "" {
			p.LeaderArgs[id] = true
		}
	}
}

// callSignature resolves the signature of the function being called.
func (p *Program) callSignature(u *Unit, call *ast.CallExpr) *types.Signature {
	tv, ok := u.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// funcValueID resolves an expression used as a function value (method
// value, function identifier, or literal) to a node ID.
func (p *Program) funcValueID(u *Unit, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[e].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[e.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.FuncLit:
		return p.litID(u, e)
	}
	return ""
}

// Callers returns the recorded call sites targeting id.
func (p *Program) Callers(id string) []Edge { return p.callers[id] }

// NodeAt returns the innermost function containing pos (nil when pos lies
// outside any indexed function, e.g. package scope).
func (p *Program) NodeAt(pos token.Pos) *FuncNode {
	file := p.Fset.Position(pos).Filename
	var best *FuncNode
	var bestSpan token.Pos = 1 << 62
	for _, n := range p.byFile[file] {
		var lo, hi token.Pos
		if n.Decl != nil {
			lo, hi = n.Decl.Pos(), n.Decl.End()
		} else {
			lo, hi = n.Lit.Pos(), n.Lit.End()
		}
		if pos < lo || pos > hi {
			continue
		}
		if span := hi - lo; span < bestSpan {
			best, bestSpan = n, span
		}
	}
	return best
}

// UnitAt returns the unit owning pos's file, preferring non-test units.
func (p *Program) UnitAt(pos token.Pos) *Unit {
	file := p.Fset.Position(pos).Filename
	var fallback *Unit
	for _, u := range p.Units {
		for _, f := range u.Files {
			if p.Fset.Position(f.Pos()).Filename == file {
				if !u.ForTest {
					return u
				}
				fallback = u
			}
		}
	}
	return fallback
}

// collectMarkers resolves the //unetlint:hotpath and //unetlint:leaderfold
// directives into the fact sets, reporting misplaced ones.
func (p *Program) collectMarkers() {
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, directivePrefix)
					if !ok {
						continue
					}
					verb, _, _ := strings.Cut(rest, " ")
					switch verb {
					case "hotpath":
						p.markHotPath(u, f, c)
					case "leaderfold":
						p.markLeaderFold(u, f, c)
					}
				}
			}
		}
	}
}

// markHotPath attaches a hotpath directive to the function whose doc
// comment (or the line directly above whose declaration) carries it.
func (p *Program) markHotPath(u *Unit, f *ast.File, c *ast.Comment) {
	line := u.Fset.Position(c.Pos()).Line
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		declLine := u.Fset.Position(fd.Pos()).Line
		inDoc := fd.Doc != nil &&
			line >= u.Fset.Position(fd.Doc.Pos()).Line &&
			line <= u.Fset.Position(fd.Doc.End()).Line
		if inDoc || line == declLine-1 {
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				p.HotPath[fn.FullName()] = true
				return
			}
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: "unetlint",
		Pos:      u.Fset.Position(c.Pos()),
		Message:  "//unetlint:hotpath must sit in (or directly above) a function declaration's doc comment",
	})
}

// markLeaderFold attaches a leaderfold directive to the struct field
// declared on its own line or the line below.
func (p *Program) markLeaderFold(u *Unit, f *ast.File, c *ast.Comment) {
	line := u.Fset.Position(c.Pos()).Line
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			fl := u.Fset.Position(field.Pos()).Line
			inDoc := field.Doc != nil &&
				line >= u.Fset.Position(field.Doc.Pos()).Line &&
				line <= u.Fset.Position(field.Doc.End()).Line
			if fl != line && fl != line+1 && !inDoc {
				continue
			}
			for _, name := range field.Names {
				p.LeaderFields[leaderFieldKey(u.Pkg.Path(), ts.Name.Name, name.Name)] = true
				found = true
			}
		}
		return !found
	})
	if !found {
		p.diags = append(p.diags, Diagnostic{
			Analyzer: "unetlint",
			Pos:      u.Fset.Position(c.Pos()),
			Message:  "//unetlint:leaderfold must sit on (or directly above) a struct field declaration",
		})
	}
}

func leaderFieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// methodIndex supports class-hierarchy resolution of interface calls.
type methodIndex struct {
	prog    *Program
	byName  map[string][]methodCand
	checked map[string][]*FuncNode // memo: ifaceKey+name -> implementors
}

type methodCand struct {
	node *FuncNode
	recv types.Type // the receiver's named (or pointer-to-named) type
}

func (p *Program) buildMethodIndex() *methodIndex {
	mi := &methodIndex{prog: p, byName: make(map[string][]methodCand), checked: make(map[string][]*FuncNode)}
	for _, n := range p.nodes {
		if n.Fn == nil {
			continue
		}
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		mi.byName[n.Fn.Name()] = append(mi.byName[n.Fn.Name()], methodCand{node: n, recv: sig.Recv().Type()})
	}
	return mi
}

// implementors returns the source-declared methods named name whose
// receiver type loosely implements iface.
func (mi *methodIndex) implementors(iface types.Type, name string) []*FuncNode {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := looseTypeKey(iface) + "." + name
	if got, ok := mi.checked[key]; ok {
		return got
	}
	var ifaceSig *types.Signature
	for i := 0; i < it.NumMethods(); i++ {
		if it.Method(i).Name() == name {
			ifaceSig, _ = it.Method(i).Type().(*types.Signature)
		}
	}
	var out []*FuncNode
	if ifaceSig != nil {
		for _, cand := range mi.byName[name] {
			candSig, ok := cand.node.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			if !looseSigMatch(candSig, ifaceSig) {
				continue
			}
			if looseImplements(mi.byName, cand.recv, it) {
				out = append(out, cand.node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	mi.checked[key] = out
	return out
}

// looseImplements reports whether the concrete receiver type recv provides
// every method of it (by name and loose signature), using the
// source-declared method index. It errs toward true only when signatures
// genuinely match shape-for-shape.
func looseImplements(byName map[string][]methodCand, recv types.Type, it *types.Interface) bool {
	for i := 0; i < it.NumMethods(); i++ {
		m := it.Method(i)
		mSig, ok := m.Type().(*types.Signature)
		if !ok {
			return false
		}
		found := false
		for _, cand := range byName[m.Name()] {
			if looseTypeKey(derefNamed(cand.recv)) != looseTypeKey(derefNamed(recv)) {
				continue
			}
			if candSig, ok := cand.node.Fn.Type().(*types.Signature); ok && looseSigMatch(candSig, mSig) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return it.NumMethods() > 0
}

func derefNamed(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// looseSigMatch compares two signatures ignoring receivers, with named
// types equal iff their package path and name agree (object identity is
// meaningless across source and export-data universes).
func looseSigMatch(a, b *types.Signature) bool {
	if a.Params().Len() != b.Params().Len() || a.Results().Len() != b.Results().Len() || a.Variadic() != b.Variadic() {
		return false
	}
	for i := 0; i < a.Params().Len(); i++ {
		if looseTypeKey(a.Params().At(i).Type()) != looseTypeKey(b.Params().At(i).Type()) {
			return false
		}
	}
	for i := 0; i < a.Results().Len(); i++ {
		if looseTypeKey(a.Results().At(i).Type()) != looseTypeKey(b.Results().At(i).Type()) {
			return false
		}
	}
	return true
}

// looseTypeKey renders a type as a structural string in which named types
// appear as path.Name — the cross-universe equality the engine needs.
func looseTypeKey(t types.Type) string {
	return looseKey(t, 0)
}

func looseKey(t types.Type, depth int) string {
	if depth > 8 {
		return "..."
	}
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	case *types.Alias:
		return looseKey(types.Unalias(t), depth)
	case *types.Pointer:
		return "*" + looseKey(t.Elem(), depth+1)
	case *types.Slice:
		return "[]" + looseKey(t.Elem(), depth+1)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), looseKey(t.Elem(), depth+1))
	case *types.Map:
		return "map[" + looseKey(t.Key(), depth+1) + "]" + looseKey(t.Elem(), depth+1)
	case *types.Chan:
		return "chan " + looseKey(t.Elem(), depth+1)
	case *types.Basic:
		return t.Name()
	case *types.Signature:
		var b strings.Builder
		b.WriteString("func(")
		for i := 0; i < t.Params().Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(looseKey(t.Params().At(i).Type(), depth+1))
		}
		b.WriteByte(')')
		for i := 0; i < t.Results().Len(); i++ {
			b.WriteByte(' ')
			b.WriteString(looseKey(t.Results().At(i).Type(), depth+1))
		}
		return b.String()
	case *types.Interface:
		var names []string
		for i := 0; i < t.NumMethods(); i++ {
			names = append(names, t.Method(i).Name())
		}
		sort.Strings(names)
		return "interface{" + strings.Join(names, ";") + "}"
	case *types.Struct:
		var b strings.Builder
		b.WriteString("struct{")
		for i := 0; i < t.NumFields(); i++ {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(t.Field(i).Name())
			b.WriteByte(' ')
			b.WriteString(looseKey(t.Field(i).Type(), depth+1))
		}
		b.WriteByte('}')
		return b.String()
	case nil:
		return "<nil>"
	default:
		return t.String()
	}
}
