package nic

import "math/rand"

// NewLinkRand's seed parameter is proven derived across the package
// boundary: every caller in the program passes a faults.DeriveSeed result.
func NewLinkRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// NewBadRand is identical but one cross-package caller passes a literal,
// so the parameter is not proven derived.
func NewBadRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "parameter seed is not proven derived" "parameter seed is not proven derived"
}
