package fabric

import (
	"math/rand"

	"seedtaint/internal/faults"
	"seedtaint/internal/nic"
)

// Build exercises the cross-package taint: the good helper only ever sees
// derived seeds; the bad helper gets a literal from here.
func Build(plan int64) (*rand.Rand, *rand.Rand) {
	good := nic.NewLinkRand(faults.DeriveSeed(plan, "link0"))
	bad := nic.NewBadRand(7)
	return good, bad
}
