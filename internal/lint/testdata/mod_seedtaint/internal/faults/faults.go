package faults

// DeriveSeed folds the plan seed with a stable name; seedflow roots on
// the internal/faults package-path suffix.
func DeriveSeed(seed int64, name string) int64 {
	h := uint64(seed) * 1099511628211
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return int64(h)
}
