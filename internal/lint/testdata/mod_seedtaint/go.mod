module seedtaint

go 1.24
