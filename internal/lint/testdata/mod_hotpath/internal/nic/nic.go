package nic

import "fmt"

type Cell struct{ B [48]byte }

type Dev struct {
	buf  []Cell
	cb   func(int)
	sink *Cell
}

// Push is allocation-free: it reuses the preallocated ring.
//
//unetlint:hotpath fixture: steady-state intake
func (d *Dev) Push(c Cell) {
	if len(d.buf) < cap(d.buf) {
		d.buf = d.buf[:len(d.buf)+1]
		d.buf[len(d.buf)-1] = c
	}
}

// Leak pins its argument to the heap.
//
//unetlint:hotpath fixture: allocating hot function
func (d *Dev) Leak(c Cell) { // want "heap allocation"
	d.sink = &c
}

// Deep reaches an allocation two static calls down.
//
//unetlint:hotpath fixture: transitive allocation
func (d *Dev) Deep() { d.mid() } // want "heap allocation"

func (d *Dev) mid() { d.leaf() } // want "heap allocation"

func (d *Dev) leaf() {
	d.sink = new(Cell) // want "heap allocation"
}

// Dyn calls through a function value: a hole the proof must report.
//
//unetlint:hotpath fixture: dynamic dispatch
func (d *Dev) Dyn() {
	d.cb(1) // want "cannot follow"
}

// Boom allocates only to panic; a panicking simulator has no steady state
// to protect, so this is exempt.
//
//unetlint:hotpath fixture: panic-only allocation
func (d *Dev) Boom(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad cell count %d", n))
	}
}
