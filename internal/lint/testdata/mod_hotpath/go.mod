module hotpathfix

go 1.24
