// wheel.go pins the scheduler-seam boundary of the cost model: re-arming
// a delivery timer — timer-wheel bookkeeping, slot unlinks, re-inserts —
// is free scheduler machinery, not a virtual-time charge. A cell-moving
// method whose only "work" is wheel bookkeeping still models infinitely
// fast hardware and must be flagged; the wire time has to come from a
// calibrated cost parameter as on every other fast path.
package fabric

type wheelSlot struct {
	head *deliveryTimer
}

type deliveryTimer struct {
	deadline uint64
	next     *deliveryTimer
}

type wheelLink struct {
	slots    [64]wheelSlot
	cur      uint64
	armed    *deliveryTimer
	cellTime int64
	inbox    []Cell
}

// rearm unlinks the link's delivery timer and re-inserts it one slot
// ahead of the drain frontier: pure scheduler bookkeeping, no cost
// evidence anywhere.
func (l *wheelLink) rearm() {
	tm := l.armed
	s := (l.cur + 1) % 64
	tm.deadline = l.cur + 1
	tm.next = l.slots[s].head
	l.slots[s].head = tm
}

// Deliver moves a cell and re-arms the delivery timer, but wheel ops are
// not a virtual-time charge — the cell crosses the wire for free.
func (l *wheelLink) Deliver(c Cell) { // want `Deliver moves cells but never charges a virtual-time cost`
	l.inbox = append(l.inbox, c)
	l.rearm()
}

// DeliverTimed schedules the same re-arm against the calibrated per-cell
// wire time — the cost-parameter reference is the charging evidence.
func (l *wheelLink) DeliverTimed(c Cell) {
	l.inbox = append(l.inbox, c)
	l.armed.deadline = l.cur + uint64(l.cellTime)
	l.rearm()
}
