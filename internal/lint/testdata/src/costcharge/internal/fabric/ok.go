package fabric

import "time"

type okLink struct {
	cellTime time.Duration
	nextFree time.Duration
	prof     *shardProfile
	outbox   []Cell
}

// Send serializes the cell against the transmitter — charging the
// calibrated cell time — and only then bumps the profiler counter.
func (l *okLink) Send(c Cell) time.Duration {
	depart := l.nextFree + l.cellTime
	l.nextFree = depart
	l.outbox = append(l.outbox, c)
	l.prof.events++
	return depart
}

// Drain replays already-paid-for cells into the destination shard: a
// deliberately free intake, annotated with where the cost was charged.
//
//unetlint:allow costcharge window drain replays cells whose wire time was charged at the transmitter
func (l *okLink) Drain(cells []Cell) {
	l.outbox = append(l.outbox, cells...)
	l.prof.drains++
}
