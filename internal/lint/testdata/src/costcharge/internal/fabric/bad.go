// Package fabric mirrors the cross-shard window path: handing cells
// between shards is still cell movement, and bumping window-profiler
// counters is not a virtual-time charge — the wire time must be accounted
// like on any other fast path.
package fabric

import "time"

// Cell mirrors atm.Cell; costcharge matches cell parameters by named-type
// name.
type Cell struct{ payload [48]byte }

// shardProfile mirrors the window profiler's counters: diagnostics only,
// never a cost model.
type shardProfile struct {
	drains uint64
	events uint64
	wait   time.Duration
}

type crossLink struct {
	prof   *shardProfile
	outbox []Cell
}

// Enqueue hands a cell to the cross-shard outbox but accounts no wire
// time: only the profiler moves, which charges nothing.
func (l *crossLink) Enqueue(c Cell) { // want `Enqueue moves cells but never charges a virtual-time cost`
	l.outbox = append(l.outbox, c)
	l.prof.drains++
}
