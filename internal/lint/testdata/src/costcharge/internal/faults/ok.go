// Package faults mirrors the injector shapes: a Judge method is on the
// transmitter's critical path and must never spend virtual time. Reading
// timing parameters (CellTime, a jitter bound) is fine — that is schedule
// arithmetic, not stalling.
package faults

import "time"

// Cell mirrors atm.Cell; costcharge matches cell parameters by named-type
// name.
type Cell struct{ payload [48]byte }

type proc struct{}

func (proc) Sleep(time.Duration) {}

// Verdict mirrors fabric.Verdict.
type Verdict struct {
	Drop  bool
	Delay time.Duration
}

// Jitter delays cells without ever stalling anyone: it only reshapes the
// delivery schedule via the verdict.
type Jitter struct {
	bound time.Duration
	cells uint64
}

func (j *Jitter) Judge(c *Cell, depart time.Duration) Verdict {
	j.cells++
	_ = c
	return Verdict{Delay: j.bound}
}

// Corruptor mutates the cell in place — free, as all judging must be.
type Corruptor struct{}

func (Corruptor) Judge(c *Cell, depart time.Duration) Verdict {
	c.payload[0] ^= 1
	return Verdict{}
}
