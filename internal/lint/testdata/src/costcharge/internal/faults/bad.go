package faults

import "time"

// Staller breaks the injector contract: its Judge spends virtual time on
// the transmitter's critical path.
type Staller struct {
	p proc
}

func (s *Staller) Judge(c *Cell, depart time.Duration) Verdict { // want `Judge judges cells but spends virtual time`
	s.p.Sleep(time.Microsecond)
	_ = c
	return Verdict{}
}

// Indirect spends through a same-package helper: transitive evidence
// convicts it just the same.
type Indirect struct {
	p proc
}

func (i *Indirect) Judge(c *Cell, depart time.Duration) Verdict { // want `Judge judges cells but spends virtual time`
	i.stall()
	_ = c
	return Verdict{}
}

func (i *Indirect) stall() { i.p.Sleep(time.Microsecond) }
