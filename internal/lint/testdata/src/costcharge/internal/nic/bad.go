package nic

import "time"

// Cell mirrors the shape of atm.Cell; costcharge matches cell parameters by
// named-type name.
type Cell struct{ payload [48]byte }

type proc struct{}

func (proc) Sleep(time.Duration) {}

// Dev is a minimal NIC-like device with a calibrated per-cell cost.
type Dev struct {
	perCellCost time.Duration
	now         time.Duration
}

func (d *Dev) Forward(c Cell) { // want `Forward moves cells but never charges a virtual-time cost`
	_ = c
}

// Send delegates to SendAt, which charges: transitive evidence across
// same-package calls counts.
func (d *Dev) Send(c Cell) time.Duration {
	return d.SendAt(c, d.now)
}

// SendAt charges by referencing the calibrated per-cell cost parameter.
func (d *Dev) SendAt(c Cell, at time.Duration) time.Duration {
	_ = c
	d.now = at + d.perCellCost
	return d.now
}

// Deliver charges by sleeping the processor.
func (d *Dev) Deliver(c Cell, p proc) {
	_ = c
	p.Sleep(d.perCellCost)
}

// Absorb charges through cursor arithmetic.
func (d *Dev) Absorb(cells []Cell) {
	cursor := d.now
	for range cells {
		cursor += time.Microsecond
	}
	d.now = cursor
}

// sink is unexported: not a public fast path.
func (d *Dev) sink(c Cell) { _ = c }

// Reset takes no cell: not a fast path.
func (d *Dev) Reset() { d.now = 0 }

// Intake is a deliberately free intake path, annotated with where the cost
// is charged instead.
//
//unetlint:allow costcharge FIFO intake only; the drain loop charges the per-cell cost
func (d *Dev) Intake(c Cell) { _ = c }
