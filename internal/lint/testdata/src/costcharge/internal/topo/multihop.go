// Package topo mirrors the multi-hop forwarding path of the compiled
// fabrics: a route crosses several switch stages, and every stage a cell
// is forwarded through must charge its cut-through latency — a single
// free stage models an infinitely fast switch and skews every multi-hop
// figure. Route set-up is the opposite case: a control-path operation
// that moves no cells and legitimately charges nothing.
package topo

import "time"

// Cell mirrors atm.Cell; costcharge matches cell parameters by named-type
// name.
type Cell struct{ payload [48]byte }

// stage is one switch hop on a compiled multi-hop path.
type stage struct {
	latency  time.Duration
	nextFree time.Duration
	out      []Cell
}

// Forward carries a cell across one stage, charging the stage's
// forwarding latency against the output serialization cursor — the clean
// multi-hop hop.
func (s *stage) Forward(c Cell) time.Duration {
	at := s.nextFree + s.latency
	s.nextFree = at
	s.out = append(s.out, c)
	return at
}

// ForwardFree hands the cell onward with no charge: a free intermediate
// stage, exactly the defect that would make a 3-stage Clos path cost the
// same as a single-switch hop.
func (s *stage) ForwardFree(c Cell) { // want `ForwardFree moves cells but never charges a virtual-time cost`
	s.out = append(s.out, c)
}

// InstallRoute programs this stage's (port, VCI) table entry for the path
// the probe cell describes. The probe parameterizes the entry and never
// crosses the wire, so the control path charges nothing.
//
//unetlint:allow costcharge route set-up is the control path; the probe cell parameterizes the table entry and is never transmitted
func (s *stage) InstallRoute(port int, probe Cell) {
	s.out = s.out[:0]
	_ = probe
}
