// Package atm sits outside costcharge's nic/fabric scope: cell codecs are
// pure data transforms and legitimately charge nothing.
package atm

type Cell struct{ payload [48]byte }

type Codec struct{}

func (Codec) Encode(c Cell) []byte { return c.payload[:] }
