// Package app sits outside the simulation scope; host tooling may read the
// wall clock freely.
package app

import "time"

func Uptime(start time.Time) time.Duration { return time.Since(start) }
