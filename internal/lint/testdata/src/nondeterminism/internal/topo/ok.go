package topo

type trunk struct{ a, b int }

// pickSpineDeclared breaks the equal-cost tie by declared adjacency
// order: the first spine in the trunk declaration list wins — a pure
// function of the spec, byte-identical on every compile.
func pickSpineDeclared(spines []int) int {
	return spines[0]
}

// walkDeclared visits trunks strictly in declared slice order, the
// compile discipline the real package follows for hosts, switches and
// trunks alike.
func walkDeclared(trunks []trunk) (sum int) {
	for _, t := range trunks {
		sum += t.a + t.b
	}
	return sum
}
