// Package topo mirrors the topology compiler's tie-breaking discipline:
// equal-cost path choices must be pure functions of the declared spec,
// never of entropy — two compiles of the same spec have to wire identical
// fabrics or the goldens break.
package topo

import "math/rand"

// pickSpineRandom breaks an equal-cost spine tie with the process-global
// RNG: the same spec would route differently on every run.
func pickSpineRandom(spines []int) int {
	return spines[rand.Intn(len(spines))] // want `global rand\.Intn is process-seeded`
}
