// wheel.go mirrors the hierarchical timer wheel's cascade: redistributing
// a slot chain when the drain frontier crosses a level boundary is pure
// tick arithmetic over virtual deadlines. A wall-clock read anywhere in
// the cascade would let host timing leak into event order, so the
// nondeterminism analyzer bans it here exactly as on any other sim path —
// unless annotated as diagnostics-only.
package sim

import "time"

type wheelEvent struct {
	at   time.Duration
	next *wheelEvent
}

type tinyWheel struct {
	cur   uint64
	slots [64]*wheelEvent
	prof  profile
}

// cascadeTimed stamps the redistribution with the host clock — banned:
// the cascade runs on the event path and anything it computes can feed
// virtual time.
func (w *tinyWheel) cascadeTimed(slot int) {
	t0 := time.Now() // want `time\.Now reads the wall clock`
	for ev := w.slots[slot]; ev != nil; ev = ev.next {
		w.reinsert(ev)
	}
	w.slots[slot] = nil
	w.prof.barrierWait += time.Since(t0) // want `time\.Since reads the wall clock`
}

// cascade is the legal shape: level selection and slot placement derive
// only from the event's virtual deadline and the wheel's drain frontier.
func (w *tinyWheel) cascade(slot int) {
	for ev := w.slots[slot]; ev != nil; {
		next := ev.next
		w.reinsert(ev)
		ev = next
	}
	w.slots[slot] = nil
}

// cascadeProfiled may time itself for the window profiler, but only under
// an annotation declaring the reading diagnostic-only.
//
//unetlint:allow nondeterminism wall-clock cascade profiling only; never feeds virtual time
func (w *tinyWheel) cascadeProfiled(slot int) {
	t0 := time.Now()
	w.cascade(slot)
	w.prof.barrierWait += time.Since(t0)
}

func (w *tinyWheel) reinsert(ev *wheelEvent) {
	tick := uint64(ev.at) >> 12
	s := (w.cur + tick) % 64
	ev.next = w.slots[s]
	w.slots[s] = ev
}
