// Package sim mirrors the shard runtime's window profiler. The shard
// runtime is exempt from the rawgo analyzer (it owns OS-level
// concurrency) but NOT from nondeterminism: wall-clock reads are banned
// even here unless annotated, because profiler counters must never feed
// virtual time.
package sim

import "time"

type profile struct {
	barrierWait time.Duration
	windows     uint64
}

// unannotatedWait times a barrier crossing without declaring that the
// reading is diagnostic-only: both reads must be flagged.
func (p *profile) unannotatedWait(cross func()) {
	t0 := time.Now() // want `time\.Now reads the wall clock`
	cross()
	p.barrierWait += time.Since(t0) // want `time\.Since reads the wall clock`
	p.windows++
}
