// ring.go mirrors the neighbor-synchronized protocol's cross-shard
// delivery path: an SPSC ring drained at the consumer's round tops. The
// drain is deterministic by construction — pops follow the ring's
// head/tail arithmetic (FIFO in push order) and delivery times are the
// messages' virtual arrival stamps — so goroutine interleaving can change
// WHEN a message becomes visible to the consumer, never the order or the
// virtual time it is delivered at. The clean drain therefore needs no
// annotation and must produce zero diagnostics; the variants that let host
// time steer the drain are the regressions the analyzer must catch.
package sim

import "time"

type ringMsg struct {
	at  time.Duration // virtual arrival stamp, assigned by the producer
	seq uint64
}

// spscRing is the fixture's stand-in for sim.SPSC: a power-of-two buffer
// with head/tail cursors (the real ring's atomics don't change the
// ordering argument — visibility timing is the only thing they affect).
type spscRing struct {
	buf  [8]ringMsg
	head uint64
	tail uint64
}

func (r *spscRing) pop() (ringMsg, bool) {
	if r.head == r.tail {
		return ringMsg{}, false
	}
	m := r.buf[r.head&7]
	r.head++
	return m, true
}

type ringGroup struct {
	prof profile
}

func (g *ringGroup) schedule(at time.Duration, seq uint64) {}

// drain stages every visible ring message as an engine event: pure ring
// arithmetic plus virtual arrival stamps. However the OS interleaves
// producer and consumer, the messages come out in push order with
// producer-assigned times — nothing here can observe the interleaving, so
// no annotation is needed.
func (g *ringGroup) drain(r *spscRing) {
	for {
		m, ok := r.pop()
		if !ok {
			break
		}
		g.schedule(m.at, m.seq)
	}
}

// drainTimed cuts the drain off by host time — banned: which messages make
// this round now depends on the OS scheduler, and the set of staged events
// (hence virtual behavior) differs run to run.
func (g *ringGroup) drainTimed(r *spscRing, budget time.Duration) {
	t0 := time.Now() // want `time\.Now reads the wall clock`
	for {
		if time.Since(t0) > budget { // want `time\.Since reads the wall clock`
			break
		}
		m, ok := r.pop()
		if !ok {
			break
		}
		g.schedule(m.at, m.seq)
	}
}

// stallProfiled mirrors waitNeighbor: a blocked shard may time its stall
// for the profiler, but only under an annotation declaring the reading
// diagnostic-only.
//
//unetlint:allow nondeterminism wall-clock stall profiling only; never feeds virtual time or event order
func (g *ringGroup) stallProfiled(wait func()) {
	t0 := time.Now()
	wait()
	g.prof.barrierWait += time.Since(t0)
}
