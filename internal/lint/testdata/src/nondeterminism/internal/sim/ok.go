package sim

import "time"

type group struct {
	prof profile
}

// barrierWait attributes a crossing's wall-clock wait to the shard's
// profile. The function-doc directive covers the whole body: the reads
// exist only for the profiler and nothing derived from them may feed
// virtual time.
//
//unetlint:allow nondeterminism wall-clock barrier-wait profiling only; never feeds virtual time
func (g *group) barrierWait(cross func()) {
	t0 := time.Now()
	cross()
	g.prof.barrierWait += time.Since(t0)
	g.prof.windows++
}
