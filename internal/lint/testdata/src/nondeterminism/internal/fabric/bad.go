package fabric

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func entropy() (int, error) {
	buf := make([]byte, 8)
	if _, err := crand.Read(buf); err != nil { // want `crypto/rand\.Read is hardware entropy`
		return 0, err
	}
	return rand.Intn(10) + os.Getpid(), nil // want `global rand\.Intn is process-seeded` `os\.Getpid is process/host identity`
}
