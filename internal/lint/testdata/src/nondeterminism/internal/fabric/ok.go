package fabric

import (
	"math/rand"
	"time"
)

// Duration values and arithmetic never touch the wall clock: the virtual
// clock itself is a time.Duration.
const cellTime = 3158 * time.Nanosecond

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func deadline(now time.Duration) time.Duration {
	return now + 2*cellTime
}

// measure times fn on the host wall clock for progress reporting; the
// result is never fed back into simulated state.
//
//unetlint:allow nondeterminism host-side stopwatch; result is reporting only, never simulated state
func measure(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
