package fabric

// Malformed directives are findings themselves: every suppression must name
// a real analyzer and document its reason. (The `want-prev` comments below
// anchor to the directive line above them, because a line comment runs to
// end of line and cannot carry a trailing expectation.)

//unetlint:allow
// want-prev `needs an analyzer name and a reason`

//unetlint:allow nondeterminism
// want-prev `allow nondeterminism is missing its reason`

//unetlint:allow bogus because reasons
// want-prev "names unknown analyzer \"bogus\""

//unetlint:frobnicate whatever
// want-prev "unknown unetlint directive \"frobnicate\""
