// Package faults shows the injector seeding idiom the nondeterminism
// analyzer permits: every impairment model owns a *rand.Rand built from an
// explicitly derived seed, never the global process-seeded source.
package faults

import (
	"hash/fnv"
	"math/rand"
)

// deriveSeed mixes the fault seed with the link name so each link gets an
// independent but reproducible stream.
func deriveSeed(seed int64, link string) int64 {
	h := fnv.New64a()
	h.Write([]byte(link))
	return seed ^ int64(h.Sum64())
}

// iid drops cells independently from its own seeded stream.
type iid struct {
	rng  *rand.Rand
	rate float64
}

func newIID(seed int64, link string, rate float64) *iid {
	return &iid{rng: rand.New(rand.NewSource(deriveSeed(seed, link))), rate: rate}
}

func (l *iid) drop() bool { return l.rng.Float64() < l.rate }
