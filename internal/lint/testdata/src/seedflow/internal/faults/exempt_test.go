package faults

import "math/rand"

// Test files pin literal seeds on purpose; seedflow exempts them.
func seedForTest() *rand.Rand { return rand.New(rand.NewSource(1)) }
