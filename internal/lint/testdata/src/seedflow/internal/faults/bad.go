package faults

import "math/rand"

func rawLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "literal seed 42" "literal seed 42"
}

const fixedSeed = 7

func namedConst() rand.Source {
	return rand.NewSource(fixedSeed) // want "constant fixedSeed"
}

// badHelper's parameter is not proven derived: one call site below passes
// a raw literal, so every construction through it is flagged.
func badHelper(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) } // want "parameter s is not proven derived" "parameter s is not proven derived"

func useBadHelperDerived(seed int64) *rand.Rand { return badHelper(DeriveSeed(seed, "ok")) }

func useBadHelperRaw() *rand.Rand { return badHelper(1234) }

// mixup: two underived operands cannot conjure a derived seed.
func mixup(a, b int64) rand.Source {
	return rand.NewSource(a ^ b) // want "arithmetic over underived operands"
}
