package faults

import "math/rand"

// master is an intentional root, like the engine's master stream.
func master() *rand.Rand {
	return rand.New(rand.NewSource(99)) //unetlint:allow seedflow fixture master root seeded directly from the plan
}
