package faults

import "math/rand"

// DeriveSeed mirrors the real root: fixture packages cannot import the
// repo, and seedflow roots on the package-path suffix internal/faults.
func DeriveSeed(seed int64, name string) int64 {
	h := uint64(seed) * 1099511628211
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return int64(h)
}

// NewRand is the canonical derived construction.
func NewRand(seed int64, link string) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, link)))
}

// salted: arithmetic over a derived operand stays derived.
func salted(seed int64) *rand.Rand {
	s := DeriveSeed(seed, "salted") ^ 0x9e3779b9
	return rand.New(rand.NewSource(s + 1))
}

// helper's parameter is proven derived: every call site in the program
// passes a DeriveSeed result.
func helper(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }

func useHelper(seed int64) *rand.Rand { return helper(DeriveSeed(seed, "h")) }

// derive wraps the root; its result is derived at calls to it.
func derive(seed int64) int64 { return DeriveSeed(seed, "wrapped") }

func viaWrapper(seed int64) rand.Source { return rand.NewSource(derive(seed)) }
