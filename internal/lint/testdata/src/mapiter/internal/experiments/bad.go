package experiments

import "fmt"

type eng struct{}

func (eng) At(int, func()) {}

func emitAll(m map[int]int) {
	for k, v := range m { // want `this body calls Printf`
		fmt.Printf("%d %d\n", k, v)
	}
}

func collectVals(m map[int]int) []int {
	var out []int
	for _, v := range m { // want `appends values derived from the iteration`
		out = append(out, v)
	}
	return out
}

func schedule(e eng, m map[int]func()) {
	for at, fn := range m { // want `schedules events \(At\)`
		e.At(at, fn)
	}
}

func feed(m map[int]int, ch chan<- int) {
	for _, v := range m { // want `sends on a channel`
		ch <- v
	}
}
