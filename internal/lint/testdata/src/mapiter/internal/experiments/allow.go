package experiments

import "fmt"

func dump(m map[int]int) {
	//unetlint:allow mapiter debug dump for humans; consumers sort the output downstream
	for k, v := range m {
		fmt.Println(k, v)
	}
}
