package experiments

import (
	"fmt"
	"sort"
)

// keysOf is the canonical fix: collecting bare keys for sorting is
// order-neutral by construction.
func keysOf(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// emitSorted ranges over the sorted slice, not the map.
func emitSorted(m map[int]int) {
	for _, k := range keysOf(m) {
		fmt.Println(k, m[k])
	}
}

// total folds with a commutative operator and no effectful calls.
func total(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
