package topo

// compileDeclared builds the same table by walking the declared name
// slice and using the map only to resolve names — the order is the
// spec's, and the compile is deterministic.
func compileDeclared(names []string, idx map[string]int, vci int) []entry {
	var table []entry
	for _, name := range names {
		table = append(table, entry{in: 0, vci: vci, out: idx[name]})
	}
	return table
}
