// Package topo mirrors the topology compiler's iteration discipline:
// specs are compiled by walking declared-order slices, and name→index
// maps exist for lookup only. Ranging such a map to build anything
// ordered — a routing table, a port layout — feeds Go's randomized map
// order into the wiring and breaks compile determinism.
package topo

// entry is one (input port, VCI) → output port routing table row.
type entry struct{ in, vci, out int }

// compileByMap builds a per-stage routing table by ranging the name→port
// lookup map: the table rows land in randomized map order instead of the
// declared spec order.
func compileByMap(ports map[string]int, vci int) []entry {
	var table []entry
	for _, port := range ports { // want `appends values derived from the iteration`
		table = append(table, entry{in: 0, vci: vci, out: port})
	}
	return table
}
