// Package app sits outside the simulation scope; unordered emission is the
// host tooling's own business.
package app

import "fmt"

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
