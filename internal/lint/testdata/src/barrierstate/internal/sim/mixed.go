package sim

// The closure rule is ALL callers, iterated to a fixpoint: a helper is a
// leader only when every path to it starts at a `leader func()` argument.
// tally below is reached both from a leader fold (leadEntry → leadFold →
// tally) and from a plain shard path (shardPath → tally), so it is outside
// the set and its write must be flagged — even though a leader does call it.

func (g *group) leadEntry(b *barrier) {
	b.wait(g.leadFold)
}

// leadFold is a leader entry (passed at the `leader func()` parameter); the
// call below does NOT pull tally into the set because tally has a
// non-leader caller too.
func (g *group) leadFold() {
	g.tally()
}

// shardPath is ordinary per-shard code: not a leader, taints tally.
func (g *group) shardPath() {
	g.tally()
}

func (g *group) tally() {
	g.roundMin++ // want "write to leader-folded field"
}
