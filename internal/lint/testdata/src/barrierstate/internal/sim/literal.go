package sim

// runLit passes a function literal as the leader; writes inside the
// literal are leader writes, writes outside are not.
func (g *group) runLit(b *barrier) {
	b.wait(func() {
		g.roundMin = 4
	})
	g.roundMin = 5 // want "write to leader-folded field"
}
