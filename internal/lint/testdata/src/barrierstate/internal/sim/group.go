package sim

type group struct {
	//unetlint:leaderfold round verdict folded by the barrier leader
	roundMin int64
	plain    int64
}

type barrier struct{}

// wait mimics the real spinBarrier: the last arriver runs leader while
// every other shard is stopped inside the barrier.
func (b *barrier) wait(leader func()) {
	leader()
}

func (g *group) run(b *barrier) {
	b.wait(g.fold)
	g.plain = 1
	g.roundMin = 2 // want "write to leader-folded field"
}

// fold is a leader entry: it is passed at a `leader func()` parameter.
func (g *group) fold() {
	g.roundMin = 3
	g.helper()
}

// helper joins the leader set by closure: its only caller is a leader.
func (g *group) helper() {
	g.roundMin++
}

func (g *group) addr() *int64 {
	return &g.roundMin // want "address taken of leader-folded field"
}

// setup writes before any shard goroutine exists are allowed explicitly.
func (g *group) setup() {
	g.roundMin = 0 //unetlint:allow barrierstate setup phase, no barrier live yet
}
