package fabric

import "sync"

var mu sync.Mutex // want `sync\.Mutex outside the sim shard runtime`

func spawn() {
	ch := make(chan int)    // want `channel type outside the sim shard runtime`
	go func() { ch <- 1 }() // want `raw go statement` `channel send`
	<-ch                    // want `channel receive`
	close(ch)               // want `close of channel`
	select {}               // want `select outside the sim shard runtime`
}

func drain(ch chan int) { // want `channel type outside the sim shard runtime`
	for range ch { // want `range over channel`
	}
}
