package fabric

// fanout runs fns concurrently on the host and waits for all of them; the
// results are indexed by caller convention, so completion order never
// reaches any output.
//
//unetlint:allow rawgo host-side worker pool; indexed results make completion order invisible
func fanout(fns []func()) {
	done := make(chan int)
	for i, fn := range fns {
		go func(i int, fn func()) {
			fn()
			done <- i
		}(i, fn)
	}
	for range fns {
		<-done
	}
}
