// ring.go covers the cross-shard ring producer idiom. Model code that
// hits a full ring must not spin the OS scheduler until the consumer
// catches up — that couples virtual progress to host scheduling. The
// correct shape is the one internal/sim's SPSC uses: overflow into a
// producer-private spill slice and let the window protocol flush it.
package fabric

import "runtime"

type ringBuf struct {
	buf   [8]uint64
	head  uint64
	tail  uint64
	spill []uint64
}

func (r *ringBuf) full() bool { return r.tail-r.head == uint64(len(r.buf)) }

// busyProducer yields to the OS scheduler until the consumer frees a
// slot — banned: delivery now depends on how the host interleaves the
// two goroutines.
func (r *ringBuf) busyProducer(v uint64) {
	for r.full() {
		runtime.Gosched() // want `runtime\.Gosched outside the sim shard runtime`
	}
	r.buf[r.tail&7] = v
	r.tail++
}

// spillProducer is the sanctioned shape: a full ring overflows into a
// producer-private slice, no scheduler steering, no primitives.
func (r *ringBuf) spillProducer(v uint64) {
	if r.full() || len(r.spill) > 0 {
		r.spill = append(r.spill, v)
		return
	}
	r.buf[r.tail&7] = v
	r.tail++
}
