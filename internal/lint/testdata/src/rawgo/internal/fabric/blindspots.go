package fabric

import "runtime"

// Regression coverage for goroutines hidden in places a declaration-level
// walk would miss: deferred closures, function literals stored in struct
// fields, and package-level handler variables.

type launcher struct {
	start func()
}

func deferred() {
	defer func() {
		go work() // want "raw go statement"
	}()
}

func fieldLiteral() launcher {
	return launcher{
		start: func() {
			go work() // want "raw go statement"
		},
	}
}

var packageHandler = func() {
	go work() // want "raw go statement"
}

func work() {}

func yields() {
	runtime.Gosched() // want "must not steer the OS scheduler"
}

func pins() {
	runtime.LockOSThread() // want "must not steer the OS scheduler"
}

func cores() int {
	return runtime.GOMAXPROCS(0) // want "must not steer the OS scheduler"
}

// Reading memory statistics is not scheduler interaction.
func memOK() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
