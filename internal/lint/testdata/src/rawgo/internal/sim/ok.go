// Package sim stands in for the shard runtime: the one simulation package
// where OS concurrency is legal, because the conservative window protocol
// orders it.
package sim

import "sync"

func barrier(workers int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	wg.Wait()
}
