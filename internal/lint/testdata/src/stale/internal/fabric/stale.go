package fabric

import "sync"

// The rawgo allow below suppresses a real finding; the mapiter allow
// suppresses nothing and must be reported as stale.

var mu sync.Mutex //unetlint:allow rawgo fixture: this suppression is exercised

func idle() int {
	x := 1 //unetlint:allow mapiter nothing on this line ever fires
	return x
}
