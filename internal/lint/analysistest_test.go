package lint_test

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"unet/internal/lint"
)

// runFixture is a minimal analysistest: it loads testdata/src/<name>,
// runs one analyzer, and checks the reported diagnostics against the
// fixture's expectation comments. `// want "re" …` expects diagnostics on
// its own line; `// want-prev "re" …` expects them on the line above (for
// lines that cannot carry a trailing comment, such as malformed unetlint
// directives, which run to end of line). Regexes may be double- or
// back-quoted; every want must be matched and every diagnostic wanted.
func runFixture(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	units, err := lint.LoadFixture(root)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s is empty", root)
	}
	diags := lint.RunUnits(units, []*lint.Analyzer{a})
	checkWants(t, a, units, diags)
}

// runModuleFixture loads a real module under testdata (needed when the
// fixture's packages import each other, or when the analyzer shells out to
// the go tool — plain fixture trees support neither) and checks one
// analyzer's diagnostics against its want comments.
func runModuleFixture(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	root := filepath.Join("testdata", name)
	units, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module fixture %s: %v", root, err)
	}
	if len(units) == 0 {
		t.Fatalf("module fixture %s is empty", root)
	}
	diags := lint.RunUnits(units, []*lint.Analyzer{a})
	checkWants(t, a, units, diags)
}

// checkWants matches reported diagnostics against the fixtures'
// expectation comments.
func checkWants(t *testing.T, a *lint.Analyzer, units []*lint.Unit, diags []lint.Diagnostic) {
	t.Helper()
	type loc struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[loc][]*want)
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					res, prev, ok := parseWants(t, c.Text)
					if !ok {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					l := loc{pos.Filename, pos.Line}
					if prev {
						l.line--
					}
					for _, re := range res {
						wants[l] = append(wants[l], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		l := loc{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[l] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for l, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no %s diagnostic matching %q", l.file, l.line, a.Name, w.re)
			}
		}
	}
}

var wantQuoted = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts the expectation regexes from a comment, reporting
// whether they apply to the previous line.
func parseWants(t *testing.T, text string) (res []*regexp.Regexp, prev bool, ok bool) {
	t.Helper()
	var rest string
	if i := strings.Index(text, "// want-prev "); i >= 0 {
		rest, prev = text[i+len("// want-prev "):], true
	} else if i := strings.Index(text, "// want "); i >= 0 {
		rest = text[i+len("// want "):]
	} else {
		return nil, false, false
	}
	for _, q := range wantQuoted.FindAllString(rest, -1) {
		pat := q[1 : len(q)-1]
		if q[0] == '"' {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				t.Fatalf("bad want pattern %s: %v", q, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", pat, err)
		}
		res = append(res, re)
	}
	if len(res) == 0 {
		t.Fatalf("want comment with no patterns: %s", text)
	}
	return res, prev, true
}

func TestNondeterminismFixtures(t *testing.T) { runFixture(t, lint.Nondeterminism, "nondeterminism") }

func TestRawGoFixtures(t *testing.T) { runFixture(t, lint.RawGo, "rawgo") }

func TestMapIterFixtures(t *testing.T) { runFixture(t, lint.MapIter, "mapiter") }

func TestCostChargeFixtures(t *testing.T) { runFixture(t, lint.CostCharge, "costcharge") }

func TestSeedFlowFixtures(t *testing.T) { runFixture(t, lint.SeedFlow, "seedflow") }

func TestSeedFlowCrossPackage(t *testing.T) { runModuleFixture(t, lint.SeedFlow, "mod_seedtaint") }

func TestBarrierStateFixtures(t *testing.T) { runFixture(t, lint.BarrierState, "barrierstate") }

func TestHotPathAllocFixtures(t *testing.T) { runModuleFixture(t, lint.HotPathAlloc, "mod_hotpath") }

// TestStaleAllows checks that an allow which suppresses a real finding is
// silent while one that suppresses nothing is reported stale.
func TestStaleAllows(t *testing.T) {
	units, err := lint.LoadFixture(filepath.Join("testdata", "src", "stale"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunUnitsOpts(units, lint.All, lint.Options{Stale: true})
	var stale []string
	for _, d := range diags {
		if !strings.Contains(d.Message, "stale //unetlint:allow") {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		stale = append(stale, d.Message)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "mapiter") {
		t.Errorf("want exactly one stale mapiter allow, got %q", stale)
	}
}
