package lint

import "strings"

// simScope names the packages whose code runs in simulated time: the event
// engine, the fabric/NIC/protocol models, and the experiment drivers that
// emit the paper's tables and figures. Only code in these packages (any
// path containing an internal/<name> segment, including subpackages such
// as internal/ip/tcp) is subject to the determinism analyzers; cmd,
// examples and the splitc application layer run on the wall clock.
var simScope = map[string]bool{
	"sim":         true,
	"fabric":      true,
	"topo":        true,
	"faults":      true,
	"nic":         true,
	"atm":         true,
	"unet":        true,
	"uam":         true,
	"ip":          true,
	"kernelpath":  true,
	"experiments": true,
}

// inSimScope reports whether pkgPath is one of the simulation packages.
func inSimScope(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && simScope[segs[i+1]] {
			return true
		}
	}
	return false
}

// simSegment returns the simulation package name pkgPath falls under
// ("sim", "fabric", …), or "" when out of scope.
func simSegment(pkgPath string) string {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && simScope[segs[i+1]] {
			return segs[i+1]
		}
	}
	return ""
}
