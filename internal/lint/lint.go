// Package lint implements unetlint, the repo's determinism lint suite:
// static analyzers that machine-check the invariants behind the simulator's
// byte-identical golden outputs (DESIGN.md §9, §13).
//
// The simulator's headline guarantee — Table 3 and Figures 3/4/7 reproduce
// bit-for-bit at any shard count — rests on rules no Go compiler enforces:
// simulated code must take time only from the virtual clock, randomness
// only from the engine's seeded source, concurrency only through the shard
// runtime's conservative-window protocol, and must never let Go's
// randomized map iteration order reach an event or an output. The
// analyzers in this package check those rules on every build.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// diagnostics, testdata fixtures with // want comments) but is built on the
// standard library alone: packages are loaded via `go list -deps -export`
// and type-checked against the build cache's compiled export data. Since
// PR 8 the suite is interprocedural: a Program (see program.go) indexes
// every function and a conservative cross-package call graph, and
// whole-program analyzers (seedflow, hotpathalloc, barrierstate,
// costcharge) run over it instead of one package at a time.
//
// # Annotation grammar
//
// Three directives exist:
//
//	//unetlint:allow <analyzer> <reason...>
//	//unetlint:hotpath <reason...>
//	//unetlint:leaderfold <reason...>
//
// allow suppresses diagnostics of the named analyzer on its own line, on
// the line directly below it, or — when it appears in (or directly above) a
// function declaration's doc comment — anywhere in that function. A
// directive without a reason, or naming an unknown analyzer, is itself a
// diagnostic: every suppression is forced to document why the invariant
// does not apply. An allow that no longer suppresses anything is stale and
// is itself reported when the full suite runs (Options.Stale).
//
// hotpath marks a function as part of the zero-allocation steady-state
// data path: hotpathalloc proves nothing it can reach allocates.
// leaderfold marks a struct field as barrier-leader-owned: barrierstate
// proves only leader closures write it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one named invariant check. Run executes once per unit;
// RunProgram executes once over the whole program. An analyzer sets
// exactly one of the two.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// All is the unetlint suite, in reporting order. It is populated in init
// to break the static initialization cycle between the analyzers (whose
// Run closures validate directives against the suite) and the suite list.
var All []*Analyzer

func init() {
	All = []*Analyzer{Nondeterminism, RawGo, MapIter, CostCharge, SeedFlow, HotPathAlloc, BarrierState}
}

// Diagnostic is one finding, resolved to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sink collects diagnostics from concurrently-running passes.
type sink struct {
	mu    sync.Mutex
	diags []Diagnostic
}

func (s *sink) add(d Diagnostic) {
	s.mu.Lock()
	s.diags = append(s.diags, d)
	s.mu.Unlock()
}

// Pass is one analyzer run over one unit.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit
	out      *sink
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Unit.suppressed(p.Analyzer.Name, pos) {
		return
	}
	p.out.add(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Unit.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass is one whole-program analyzer run.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	out      *sink
}

// Reportf records a finding at pos unless an allow directive in the unit
// owning pos covers it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	u := p.Prog.UnitAt(pos)
	if u != nil && u.suppressed(p.Analyzer.Name, pos) {
		return
	}
	p.out.add(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //unetlint:allow comment.
type directive struct {
	analyzer string
	file     string
	line     int
	pos      token.Position
	used     bool
}

const directivePrefix = "//unetlint:"

// directiveVerbs are the recognized directives. hotpath and leaderfold are
// consumed by the program builder (program.go); allow is handled here.
var directiveVerbs = map[string]bool{"allow": true, "hotpath": true, "leaderfold": true}

// buildDirectives scans a unit's comments for unetlint directives,
// recording valid ones and reporting malformed ones. It runs once per
// unit; validity is judged against the full suite regardless of which
// analyzers execute.
func (u *Unit) buildDirectives() {
	if u.dirBuilt {
		return
	}
	u.dirBuilt = true
	valid := make(map[string]bool, len(All))
	for _, a := range All {
		valid[a.Name] = true
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				if !directiveVerbs[verb] {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("unknown unetlint directive %q (have allow, hotpath, leaderfold)", verb),
					})
					continue
				}
				fields := strings.Fields(args)
				if verb != "allow" {
					// hotpath/leaderfold are resolved against declarations by
					// the program builder; here only demand the reason.
					if len(fields) == 0 {
						u.dirDiags = append(u.dirDiags, Diagnostic{
							Analyzer: "unetlint", Pos: pos,
							Message: fmt.Sprintf("//unetlint:%s needs a reason", verb),
						})
					}
					continue
				}
				if len(fields) == 0 {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: "//unetlint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if !valid[fields[0]] {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("//unetlint:allow names unknown analyzer %q", fields[0]),
					})
					continue
				}
				if len(fields) < 2 {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("//unetlint:allow %s is missing its reason", fields[0]),
					})
					continue
				}
				u.directives = append(u.directives, directive{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
					pos:      pos,
				})
			}
		}
	}
}

// suppressed reports whether an allow directive for analyzer covers pos:
// same line, the line above, or the doc/declaration line of the enclosing
// function. Matching directives are marked used for the stale check.
func (u *Unit) suppressed(analyzer string, pos token.Pos) bool {
	u.dirMu.Lock()
	defer u.dirMu.Unlock()
	u.buildDirectives()
	if len(u.directives) == 0 {
		return false
	}
	position := u.Fset.Position(pos)
	match := func(line int) bool {
		hit := false
		for i := range u.directives {
			d := &u.directives[i]
			if d.analyzer == analyzer && d.file == position.Filename && d.line == line {
				d.used = true
				hit = true
			}
		}
		return hit
	}
	if match(position.Line) || match(position.Line-1) {
		return true
	}
	for _, f := range u.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			declLine := u.Fset.Position(fd.Pos()).Line
			if match(declLine) {
				return true
			}
			if fd.Doc != nil {
				start := u.Fset.Position(fd.Doc.Pos()).Line
				end := u.Fset.Position(fd.Doc.End()).Line
				hit := false
				for l := start; l <= end; l++ {
					if match(l) {
						hit = true
					}
				}
				if hit {
					return true
				}
			}
		}
	}
	return false
}

// staleDirectives returns the allow directives never consulted by a
// suppressed finding. Only meaningful after the full suite ran: an allow
// for an analyzer that did not execute is trivially unused.
func (u *Unit) staleDirectives() []Diagnostic {
	u.dirMu.Lock()
	defer u.dirMu.Unlock()
	var out []Diagnostic
	for i := range u.directives {
		d := &u.directives[i]
		if !d.used {
			out = append(out, Diagnostic{
				Analyzer: "unetlint",
				Pos:      d.pos,
				Message:  fmt.Sprintf("stale //unetlint:allow %s: it no longer suppresses any finding; delete it", d.analyzer),
			})
		}
	}
	return out
}

// Options configure a lint run.
type Options struct {
	// Stale reports allow directives that suppressed nothing. Enable only
	// when every analyzer runs over the whole repository — a subset run
	// leaves other analyzers' allows legitimately unused.
	Stale bool
	// Parallel fans the analyzers out over worker goroutines.
	Parallel bool
}

// RunUnits executes the given analyzers over the units and returns all
// findings (including malformed-directive diagnostics), sorted by position.
func RunUnits(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	return RunUnitsOpts(units, analyzers, Options{})
}

// RunUnitsOpts is RunUnits with explicit Options.
func RunUnitsOpts(units []*Unit, analyzers []*Analyzer, opts Options) []Diagnostic {
	out := &sink{}
	for _, u := range units {
		u.dirMu.Lock()
		u.buildDirectives()
		u.dirMu.Unlock()
		out.diags = append(out.diags, u.dirDiags...)
	}

	needProg := false
	for _, a := range analyzers {
		if a.RunProgram != nil {
			needProg = true
		}
	}
	var prog *Program
	if needProg {
		prog = BuildProgram(units)
		out.diags = append(out.diags, prog.diags...)
	}

	// One task per (per-unit analyzer, unit) pair plus one per
	// whole-program analyzer; diagnostics land in the shared sink and the
	// final sort restores deterministic order regardless of scheduling.
	var tasks []func()
	for _, a := range analyzers {
		a := a
		if a.RunProgram != nil {
			tasks = append(tasks, func() { a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, out: out}) })
			continue
		}
		for _, u := range units {
			u := u
			tasks = append(tasks, func() { a.Run(&Pass{Analyzer: a, Unit: u, out: out}) })
		}
	}
	if opts.Parallel && len(tasks) > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(tasks) {
			workers = len(tasks)
		}
		ch := make(chan func())
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for task := range ch {
					task()
				}
			}()
		}
		for _, task := range tasks {
			ch <- task
		}
		close(ch)
		wg.Wait()
	} else {
		for _, task := range tasks {
			task()
		}
	}

	if opts.Stale {
		for _, u := range units {
			out.diags = append(out.diags, u.staleDirectives()...)
		}
	}

	diags := out.diags
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// A directive-bearing unit shared between runs would duplicate its
	// directive diagnostics; drop exact duplicates.
	out2 := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out2 = append(out2, d)
	}
	return out2
}
