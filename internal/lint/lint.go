// Package lint implements unetlint, the repo's determinism lint suite:
// static analyzers that machine-check the invariants behind the simulator's
// byte-identical golden outputs (DESIGN.md §9).
//
// The simulator's headline guarantee — Table 3 and Figures 3/4/7 reproduce
// bit-for-bit at any shard count — rests on rules no Go compiler enforces:
// simulated code must take time only from the virtual clock, randomness
// only from the engine's seeded source, concurrency only through the shard
// runtime's conservative-window protocol, and must never let Go's
// randomized map iteration order reach an event or an output. The
// analyzers in this package check those rules on every build.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// diagnostics, testdata fixtures with // want comments) but is built on the
// standard library alone: packages are loaded via `go list -deps -export`
// and type-checked against the build cache's compiled export data.
//
// # Annotation grammar
//
// A finding is suppressed by an allow directive naming the analyzer and
// giving a reason:
//
//	//unetlint:allow <analyzer> <reason...>
//
// The directive applies to diagnostics on its own line, on the line
// directly below it, or — when it appears in (or directly above) a
// function declaration's doc comment — anywhere in that function. A
// directive without a reason, or naming an unknown analyzer, is itself a
// diagnostic: every suppression is forced to document why the invariant
// does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the unetlint suite, in reporting order. It is populated in init
// to break the static initialization cycle between the analyzers (whose
// Run closures validate directives against the suite) and the suite list.
var All []*Analyzer

func init() {
	All = []*Analyzer{Nondeterminism, RawGo, MapIter, CostCharge}
}

// Diagnostic is one finding, resolved to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer run over one unit.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit
	diags    *[]Diagnostic
}

// Reportf records a finding at pos unless an allow directive for this
// analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Unit.suppressed(p.Analyzer.Name, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Unit.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //unetlint:allow comment.
type directive struct {
	analyzer string
	file     string
	line     int
}

const directivePrefix = "//unetlint:"

// buildDirectives scans a unit's comments for unetlint directives,
// recording valid ones and reporting malformed ones. It runs once per
// unit; validity is judged against the full suite regardless of which
// analyzers execute.
func (u *Unit) buildDirectives() {
	if u.dirBuilt {
		return
	}
	u.dirBuilt = true
	valid := make(map[string]bool, len(All))
	for _, a := range All {
		valid[a.Name] = true
	}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "allow" {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("unknown unetlint directive %q (only //unetlint:allow exists)", verb),
					})
					continue
				}
				fields := strings.Fields(args)
				if len(fields) == 0 {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: "//unetlint:allow needs an analyzer name and a reason",
					})
					continue
				}
				if !valid[fields[0]] {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("//unetlint:allow names unknown analyzer %q", fields[0]),
					})
					continue
				}
				if len(fields) < 2 {
					u.dirDiags = append(u.dirDiags, Diagnostic{
						Analyzer: "unetlint", Pos: pos,
						Message: fmt.Sprintf("//unetlint:allow %s is missing its reason", fields[0]),
					})
					continue
				}
				u.directives = append(u.directives, directive{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
}

// suppressed reports whether an allow directive for analyzer covers pos:
// same line, the line above, or the doc/declaration line of the enclosing
// function.
func (u *Unit) suppressed(analyzer string, pos token.Pos) bool {
	u.buildDirectives()
	if len(u.directives) == 0 {
		return false
	}
	position := u.Fset.Position(pos)
	match := func(line int) bool {
		for _, d := range u.directives {
			if d.analyzer == analyzer && d.file == position.Filename && d.line == line {
				return true
			}
		}
		return false
	}
	if match(position.Line) || match(position.Line-1) {
		return true
	}
	for _, f := range u.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			declLine := u.Fset.Position(fd.Pos()).Line
			if match(declLine) {
				return true
			}
			if fd.Doc != nil {
				start := u.Fset.Position(fd.Doc.Pos()).Line
				end := u.Fset.Position(fd.Doc.End()).Line
				for l := start; l <= end; l++ {
					if match(l) {
						return true
					}
				}
			}
		}
	}
	return false
}

// RunUnits executes the given analyzers over the units and returns all
// findings (including malformed-directive diagnostics), sorted by position.
func RunUnits(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, u := range units {
		u.buildDirectives()
		diags = append(diags, u.dirDiags...)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Unit: u, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// A directive-bearing unit shared between runs would duplicate its
	// directive diagnostics; drop exact duplicates.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
