package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawGo flags concurrency primitives — go statements, channels, select,
// and the sync/sync.atomic packages — in simulation packages outside
// internal/sim. The shard runtime (sim.Group) is the only place OS-level
// concurrency may touch a simulation: it alone guarantees, via the
// conservative time-window protocol, that parallel execution merges into
// the exact event order a serial run would produce. A goroutine or channel
// anywhere else in the models introduces OS-scheduler ordering into
// simulated behavior.
//
// The check is syntactic over whole files, so goroutines launched from
// deferred closures, function literals stored in struct fields, and
// package-level handler variables are all in scope — and the program index
// (see program.go) additionally registers every such literal as a call
// graph node, so the whole-program analyzers cannot lose them either.
// Calls that steer the OS scheduler directly (runtime.Gosched and friends)
// are banned alongside the primitives: yielding the OS thread from model
// code is the same ordering leak as a channel, just better disguised.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "flag raw goroutines, channels, select, sync primitives and scheduler calls outside the internal/sim shard runtime",
	Run:  runRawGo,
}

// bannedRuntimeFuncs are runtime package calls that manipulate the OS
// scheduler from model code.
var bannedRuntimeFuncs = map[string]bool{
	"Gosched":        true,
	"Goexit":         true,
	"LockOSThread":   true,
	"UnlockOSThread": true,
	"GOMAXPROCS":     true,
	"NumGoroutine":   true,
}

func runRawGo(pass *Pass) {
	if !inSimScope(pass.Unit.PkgPath) || simSegment(pass.Unit.PkgPath) == "sim" {
		return
	}
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement outside the sim shard runtime; run concurrent work as sim processes or behind sim.Group")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send outside the sim shard runtime")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive outside the sim shard runtime")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select outside the sim shard runtime")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type outside the sim shard runtime; use sim.FIFO or sim.Cond for simulated synchronization")
			case *ast.RangeStmt:
				if tv, ok := pass.Unit.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel outside the sim shard runtime")
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pass.Unit.Info.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(n.Pos(), "close of channel outside the sim shard runtime")
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := pass.Unit.Info.Uses[id].(*types.PkgName); ok {
						switch pn.Imported().Path() {
						case "sync", "sync/atomic":
							pass.Reportf(n.Pos(), "%s.%s outside the sim shard runtime; simulated synchronization belongs to the engine", pn.Imported().Path(), n.Sel.Name)
						case "runtime":
							if bannedRuntimeFuncs[n.Sel.Name] {
								pass.Reportf(n.Pos(), "runtime.%s outside the sim shard runtime; model code must not steer the OS scheduler", n.Sel.Name)
							}
						}
					}
				}
			}
			return true
		})
	}
}
