package lint

import (
	"go/ast"
	"go/types"
)

// bannedTimeFuncs are the package-level time functions that read or wait on
// the wall clock. time.Duration values and arithmetic are of course fine —
// the virtual clock is a time.Duration.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandFuncs are the math/rand constructors that build a seeded
// source; everything else at package level draws from the global,
// process-seeded source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// bannedOSFuncs are os identity/entropy reads that differ across processes
// and hosts.
var bannedOSFuncs = map[string]bool{
	"Getpid":   true,
	"Getppid":  true,
	"Hostname": true,
}

// Nondeterminism forbids wall-clock reads, unseeded randomness and process
// identity inside the simulation packages. All time must come from the
// engine's virtual clock and all randomness from Engine.Rand (or another
// explicitly seeded source); anything else makes two runs of the same
// simulation diverge and breaks the golden outputs.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock time, global math/rand and process entropy in simulation packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if !inSimScope(pass.Unit.PkgPath) {
		return
	}
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (time.Time.Sub etc.) never reach the wall clock by themselves
			}
			name := fn.Name()
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[name] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulated code must use the engine's virtual clock", name)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[name] {
					pass.Reportf(call.Pos(), "global rand.%s is process-seeded; draw from Engine.Rand (or an explicitly seeded *rand.Rand)", name)
				}
			case "crypto/rand":
				pass.Reportf(call.Pos(), "crypto/rand.%s is hardware entropy; simulated code must use seeded randomness", name)
			case "os":
				if bannedOSFuncs[name] {
					pass.Reportf(call.Pos(), "os.%s is process/host identity; it must not influence simulated behavior", name)
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the function a call expression invokes, or nil when
// the callee is not a named function (a func-valued variable, a builtin, a
// type conversion).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Unit.Info.Uses[id].(*types.Func)
	return fn
}
