package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow is the determinism contract of PR 5 made checkable: every PRNG
// constructed inside the simulation packages must be seeded from the
// deterministic derivation tree — faults.DeriveSeed (which folds the plan
// seed with a stable per-link/per-host name) or a draw from an engine
// stream (Engine.Rand) — never from a raw constant, wall-clock value or
// unproven parameter. A rand.New(rand.NewSource(42)) buried in a model
// runs identically today and silently diverges the day two call sites
// collide on the constant; a seed that bypasses DeriveSeed breaks the
// byte-identical-at-any-shard-count guarantee because per-link streams are
// what keep fault outcomes independent of shard placement.
//
// The analysis is an interprocedural taint check run over the program call
// graph. At every math/rand constructor call in sim scope (NewSource, New,
// NewPCG, NewChaCha8), each seed argument must be *derived*:
//
//   - a call to faults.DeriveSeed, or to Engine.Rand (an engine stream);
//   - a method call on a derived receiver (rng.Int63() of a derived rng);
//   - arithmetic/conversions over at least one derived operand (the
//     seed^salt idiom keeps derivation);
//   - a local whose every assignment is derived;
//   - a call to a function whose every return of that value is derived; or
//   - a parameter that every call site in the program passes a derived
//     argument for (cross-package taint through helpers).
//
// Test files are exempt: tests pin their own literal seeds on purpose.
// Intentional roots (the engine's own master-seed stream) carry an
// //unetlint:allow seedflow annotation naming why they are roots.
var SeedFlow = &Analyzer{
	Name:       "seedflow",
	Doc:        "prove every PRNG in sim scope is seeded through faults.DeriveSeed or an engine stream",
	RunProgram: runSeedFlow,
}

// seedConstructors are the math/rand constructors whose arguments are
// seeds (or seed-carrying sources).
var seedConstructors = map[string]bool{
	"NewSource":  true,
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

type seedFlow struct {
	pass *ProgramPass
	prog *Program
	// paramMemo caches parameter derivation verdicts; the in-progress
	// marker breaks recursion cycles conservatively (underived).
	paramMemo map[string]map[int]paramState
	// retMemo caches whether a function's returned values are all derived.
	retMemo map[string]paramState
}

type paramState int8

const (
	stateUnknown paramState = iota
	stateInProgress
	stateDerived
	stateUnderived
)

func runSeedFlow(pass *ProgramPass) {
	sf := &seedFlow{
		pass:      pass,
		prog:      pass.Prog,
		paramMemo: make(map[string]map[int]paramState),
		retMemo:   make(map[string]paramState),
	}
	for _, node := range sf.prog.nodes {
		if node.InTestFile || !inSimScope(node.Unit.PkgPath) {
			continue
		}
		sf.checkNode(node)
	}
}

func (sf *seedFlow) checkNode(node *FuncNode) {
	u := node.Unit
	sf.prog.ownStmts(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(u, call)
		if fn == nil || fn.Pkg() == nil || !seedConstructors[fn.Name()] {
			return true
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
		default:
			return true
		}
		for _, arg := range call.Args {
			if why := sf.derived(node, arg, nil); why != "" {
				sf.pass.Reportf(call.Pos(),
					"rand.%s seed does not flow through faults.DeriveSeed or an engine stream (%s); derive it from the plan seed and a stable name",
					fn.Name(), why)
				break
			}
		}
		return true
	})
}

// derived reports why expr is NOT derived ("" when it is). visiting guards
// against assignment cycles.
func (sf *seedFlow) derived(node *FuncNode, expr ast.Expr, visiting map[types.Object]bool) string {
	u := node.Unit
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return "literal seed " + e.Value
	case *ast.BinaryExpr:
		// Arithmetic preserves derivation when either side carries it; two
		// underived operands cannot conjure a derived seed.
		if sf.derived(node, e.X, visiting) == "" || sf.derived(node, e.Y, visiting) == "" {
			return ""
		}
		return "arithmetic over underived operands"
	case *ast.UnaryExpr:
		return sf.derived(node, e.X, visiting)
	case *ast.CallExpr:
		if tv, ok := u.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return sf.derived(node, e.Args[0], visiting) // conversion
			}
			return "conversion"
		}
		fn := calleeOf(u, e)
		if fn == nil {
			return "call through a function value"
		}
		if isSeedRoot(fn) {
			return ""
		}
		// A draw from a derived stream is derived: rng.Int63() etc.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if sf.derived(node, sel.X, visiting) == "" {
					return ""
				}
			}
		}
		// Nested constructor: rand.New(rand.NewSource(x)) — the inner call
		// judges its own arguments; the outer sees a derived source only if
		// the inner arguments are derived.
		if fn.Pkg() != nil && seedConstructors[fn.Name()] &&
			(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") {
			for _, arg := range e.Args {
				if why := sf.derived(node, arg, visiting); why != "" {
					return why
				}
			}
			return ""
		}
		if sf.returnsDerived(fn.FullName()) == stateDerived {
			return ""
		}
		return "call to " + fn.Name() + " whose result is not proven derived"
	case *ast.Ident:
		obj := u.Info.Uses[e]
		if obj == nil {
			obj = u.Info.Defs[e]
		}
		switch obj := obj.(type) {
		case *types.Const:
			return "constant " + obj.Name()
		case *types.Var:
			if idx, owner := sf.paramIndex(node, obj); idx >= 0 {
				if sf.paramDerived(owner, idx) == stateDerived {
					return ""
				}
				return "parameter " + obj.Name() + " is not proven derived at every call site"
			}
			return sf.localDerived(node, obj, visiting)
		case nil:
			return "unresolved identifier " + e.Name
		}
		return "non-variable " + e.Name
	case *ast.SelectorExpr:
		// A field read: no flow tracking through struct state; rely on
		// helper functions (plan.Seed flows through faults.NewRand, which
		// calls DeriveSeed itself).
		return "field " + e.Sel.Name + " read (seed state in structs is not tracked; route it through faults.DeriveSeed)"
	case *ast.IndexExpr:
		return "indexed value"
	case *ast.CompositeLit:
		// [32]byte{…} for NewChaCha8: derived only if every element is.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if sf.derived(node, el, visiting) == "" {
				return ""
			}
		}
		return "composite literal of underived elements"
	}
	return "unrecognized seed expression"
}

// paramIndex reports whether obj is a parameter of node or of an enclosing
// function (closures capture their encloser's parameters), returning its
// index and the owning node.
func (sf *seedFlow) paramIndex(node *FuncNode, obj *types.Var) (int, *FuncNode) {
	for n := node; n != nil; n = n.Parent {
		var ft *ast.FuncType
		if n.Decl != nil {
			ft = n.Decl.Type
		} else {
			ft = n.Lit.Type
		}
		idx := 0
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				def := n.Unit.Info.Defs[name]
				if def == obj {
					return idx, n
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	return -1, nil
}

// paramDerived decides whether parameter i of the function with the given
// node is passed a derived argument at every recorded call site. A
// function with no recorded call sites (dead code, or called only through
// values the graph cannot see) is conservatively underived.
func (sf *seedFlow) paramDerived(node *FuncNode, i int) paramState {
	if node.Decl == nil {
		// Closures: no reliable call-site argument mapping; conservative.
		return stateUnderived
	}
	id := node.ID
	m := sf.paramMemo[id]
	if m == nil {
		m = make(map[int]paramState)
		sf.paramMemo[id] = m
	}
	switch m[i] {
	case stateDerived, stateUnderived:
		return m[i]
	case stateInProgress:
		return stateUnderived // recursion: conservative
	}
	m[i] = stateInProgress
	edges := sf.prog.Callers(id)
	verdict := stateUnderived
	if len(edges) > 0 {
		verdict = stateDerived
		for _, e := range edges {
			if i >= len(e.Call.Args) {
				verdict = stateUnderived // variadic mismatch: conservative
				break
			}
			if why := sf.derived(e.Caller, e.Call.Args[i], nil); why != "" {
				verdict = stateUnderived
				break
			}
		}
	}
	m[i] = verdict
	return verdict
}

// localDerived checks every assignment to a local variable within the
// node (and its enclosers, for captured locals): the variable is derived
// only when each right-hand side assigned to it is. visiting breaks
// self-referential assignment chains (x = x ^ salt) conservatively.
func (sf *seedFlow) localDerived(node *FuncNode, obj *types.Var, visiting map[types.Object]bool) string {
	if visiting[obj] {
		return "self-referential assignment to " + obj.Name()
	}
	if visiting == nil {
		visiting = make(map[types.Object]bool)
	}
	visiting[obj] = true
	defer delete(visiting, obj)

	assigned := false
	why := ""
	for n := node; n != nil && why == ""; n = n.Parent {
		owner := n
		sf.prog.ownStmts(owner, func(x ast.Node) bool {
			if why != "" {
				return false
			}
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lobj := owner.Unit.Info.Defs[id]
				if lobj == nil {
					lobj = owner.Unit.Info.Uses[id]
				}
				if lobj != types.Object(obj) {
					continue
				}
				assigned = true
				if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
					why = obj.Name() + " assigned from a multi-value expression"
					return false
				}
				if i < len(as.Rhs) {
					if w := sf.derived(owner, as.Rhs[i], visiting); w != "" {
						why = obj.Name() + " assigned an underived value (" + w + ")"
						return false
					}
				}
			}
			return true
		})
		if why != "" {
			break
		}
	}
	if why != "" {
		return why
	}
	if !assigned {
		return "variable " + obj.Name() + " has no visible derived assignment"
	}
	return ""
}

func (sf *seedFlow) returnsDerived(id string) paramState {
	if st, ok := sf.retMemo[id]; ok {
		if st == stateInProgress {
			return stateUnderived
		}
		return st
	}
	node := sf.prog.Nodes[id]
	if node == nil || node.Body == nil {
		sf.retMemo[id] = stateUnderived
		return stateUnderived
	}
	sf.retMemo[id] = stateInProgress
	verdict := stateUnderived
	found := false
	allDerived := true
	sf.prog.ownStmts(node, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		found = true
		for _, r := range ret.Results {
			if why := sf.derived(node, r, nil); why != "" {
				allDerived = false
			}
		}
		return true
	})
	if found && allDerived {
		verdict = stateDerived
	}
	sf.retMemo[id] = verdict
	return verdict
}

// isSeedRoot reports whether fn is a derivation root: faults.DeriveSeed or
// an engine stream accessor.
func isSeedRoot(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if fn.Name() == "DeriveSeed" && strings.HasSuffix(path, "internal/faults") {
		return true
	}
	if fn.Name() == "Rand" && strings.HasSuffix(path, "internal/sim") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}

// calleeOf resolves the *types.Func a call invokes within unit u (nil for
// builtins, conversions and function values).
func calleeOf(u *Unit, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := u.Info.Uses[id].(*types.Func)
	return fn
}
