package lint_test

import (
	"testing"

	"unet/internal/lint"
)

// TestRepoIsLintClean is the guard the Makefile's lint target relies on: the
// full unetlint suite must exit clean on the repository itself. Intentional
// exceptions carry //unetlint:allow annotations with reasons; a new finding
// here means either a real determinism hazard or a suppression that has not
// been documented.
func TestRepoIsLintClean(t *testing.T) {
	units, err := lint.Load(".", "unet/...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range lint.RunUnits(units, lint.All) {
		t.Errorf("%s", d)
	}
}
