package lint_test

import (
	"testing"
	"time"

	"unet/internal/lint"
)

// TestRepoIsLintClean is the guard the Makefile's lint target relies on: the
// full unetlint suite — stale-suppression check included — must exit clean
// on the repository itself. Intentional exceptions carry //unetlint:allow
// annotations with reasons; a new finding here means a real determinism
// hazard, a suppression that has not been documented, or an allow that
// outlived the finding it suppressed.
func TestRepoIsLintClean(t *testing.T) {
	units, err := lint.Load(".", "unet/...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range lint.RunUnitsOpts(units, lint.All, lint.Options{Stale: true, Parallel: true}) {
		t.Errorf("%s", d)
	}
}

// TestUnetlintWallTime bounds the full-suite wall time so the
// interprocedural engine (call-graph build, escape-fact extraction) never
// quietly turns `make lint` into a coffee break. The budget is generous —
// load + type-check + program build + a cache-replayed -gcflags=-m compile
// fit in a few seconds on any warm build cache.
func TestUnetlintWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time budget needs a warm build cache")
	}
	start := time.Now()
	units, err := lint.Load(".", "unet/...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	lint.RunUnitsOpts(units, lint.All, lint.Options{Stale: true, Parallel: true})
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("full lint suite took %v; budget is 90s", elapsed)
	}
}

// BenchmarkUnetlint measures one full-suite run over the repository,
// loading included: the number CI watches when the engine grows.
func BenchmarkUnetlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		units, err := lint.Load(".", "unet/...")
		if err != nil {
			b.Fatalf("loading packages: %v", err)
		}
		lint.RunUnitsOpts(units, lint.All, lint.Options{Stale: true, Parallel: true})
	}
}
