package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BarrierState enforces the leader-fold discipline PR 6's fused barriers
// introduced. At a fused barrier exactly one shard — the leader — runs the
// fold closure while the others spin; state the fold reduces into
// (sim.Group's roundDirty, roundMin, horizons, tAt) is correct only because
// no non-leader writes it between barriers. That invariant lives entirely
// in convention: nothing stops a future per-shard code path from writing
// g.roundMin and silently corrupting the fold on some interleavings but
// not others.
//
// Fields annotated //unetlint:leaderfold may be written (or have their
// address taken) only inside the leader set:
//
//   - entries: every function passed as an argument at a parameter named
//     `leader` with function type (the spinBarrier.wait(leader func())
//     convention), and
//   - closure: any function all of whose recorded callers are already in
//     the leader set, iterated to a fixpoint over the program call graph.
//
// Setup-phase writes (allocating the slices before shards exist) carry
// //unetlint:allow barrierstate annotations stating why no barrier is
// live. Reads are unrestricted: the barrier's release fence orders them.
var BarrierState = &Analyzer{
	Name:       "barrierstate",
	Doc:        "fields annotated //unetlint:leaderfold may only be written from barrier-leader closures",
	RunProgram: runBarrierState,
}

func runBarrierState(pass *ProgramPass) {
	prog := pass.Prog
	if len(prog.LeaderFields) == 0 {
		return
	}
	leaders := leaderSet(prog)

	for _, u := range prog.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkLeaderWrite(pass, u, leaders, lhs, "write to")
					}
				case *ast.IncDecStmt:
					checkLeaderWrite(pass, u, leaders, st.X, "write to")
				case *ast.UnaryExpr:
					if st.Op == token.AND {
						checkLeaderWrite(pass, u, leaders, st.X, "address taken of")
					}
				}
				return true
			})
		}
	}
}

// leaderSet computes entries (LeaderArgs) plus the called-only-from-leaders
// closure.
func leaderSet(prog *Program) map[string]bool {
	leaders := make(map[string]bool, len(prog.LeaderArgs))
	for id := range prog.LeaderArgs {
		leaders[id] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if leaders[n.ID] {
				continue
			}
			callers := prog.Callers(n.ID)
			if len(callers) == 0 {
				continue
			}
			all := true
			for _, e := range callers {
				if !leaders[e.Caller.ID] {
					all = false
					break
				}
			}
			if all {
				leaders[n.ID] = true
				changed = true
			}
		}
	}
	return leaders
}

// checkLeaderWrite reports expr if it denotes a leader-folded field and the
// enclosing function is outside the leader set.
func checkLeaderWrite(pass *ProgramPass, u *Unit, leaders map[string]bool, expr ast.Expr, what string) {
	se, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel, ok := u.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	named, ok := derefNamed(sel.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	key := leaderFieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), se.Sel.Name)
	if !pass.Prog.LeaderFields[key] {
		return
	}
	node := pass.Prog.NodeAt(se.Pos())
	if node == nil || node.InTestFile {
		return
	}
	// A literal nested in a leader is a leader when the literal itself made
	// the set (via closure over its creation edge); check the node and its
	// ancestors so deeply nested fold helpers resolve.
	for n := node; n != nil; n = n.Parent {
		if leaders[n.ID] {
			return
		}
	}
	pass.Reportf(se.Pos(), "%s leader-folded field %s.%s outside the barrier-leader closure (only functions reached solely from a `leader func()` argument may mutate it)",
		what, named.Obj().Name(), se.Sel.Name)
}

// leaderFieldList renders the marked fields for diagnostics/tests.
func leaderFieldList(prog *Program) []string {
	out := make([]string, 0, len(prog.LeaderFields))
	for k := range prog.LeaderFields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
