package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CostCharge checks the paper's processing-overhead model (§2.1): every
// exported NIC/fabric method that moves cells — the fast paths — must
// account virtual time for the work, either directly (advancing a cost
// cursor, sleeping, referencing a calibrated cost/latency parameter) or by
// delegating to anything that does. A data-moving method that charges
// nothing models infinitely fast hardware and skews every calibrated
// figure.
//
// A method is considered a fast path when it is an exported method whose
// parameters include a cell (a named type Cell, possibly a slice or
// pointer). Charging evidence propagates over the whole-program call graph,
// so a switch method that delegates its accounting to a faults helper that
// in turn advances a NIC cursor is still proven charged — same-package
// delegation is no longer a requirement. Intake paths that legitimately
// cost nothing (a FIFO accepting an already-paid-for arrival) carry an
// //unetlint:allow costcharge annotation naming where the cost is charged
// instead.
//
// internal/faults is held to the opposite contract: an injector judges
// cells on the transmitter's critical path, and the Injector interface
// promises that judging charges no virtual time — impairments reshape the
// delivery schedule, they never stall the transmitter. There a cell-taking
// method that reaches a time-spending call — through any number of
// packages — is the defect.
var CostCharge = &Analyzer{
	Name:       "costcharge",
	Doc:        "require exported NIC/fabric cell-moving methods to charge virtual-time cost; forbid fault injectors from spending it",
	RunProgram: runCostCharge,
}

// chargeCalls are callee names that unambiguously spend virtual time.
var chargeCalls = map[string]bool{
	"Sleep":      true,
	"SleepUntil": true,
	"WaitReady":  true,
	"syncTo":     true,
	"charge":     true,
	"Charge":     true,
}

// costNameSuffixes mark selectors that read a calibrated timing parameter.
var costNameSuffixes = []string{"Cost", "Time", "Latency", "Overhead", "PerCell", "Fixed"}

// costIdents are local names whose mention shows cursor arithmetic.
var costIdents = map[string]bool{"cursor": true, "latency": true}

func runCostCharge(pass *ProgramPass) {
	prog := pass.Prog

	// Direct evidence per node, program-wide: whether the body itself
	// charges cost (any evidence) and whether it spends virtual time (an
	// unambiguous time-spending call — the stricter signal the injector rule
	// needs, since injectors may read timing parameters like CellTime
	// without ever stalling anyone).
	charges := make(map[string]bool)
	spends := make(map[string]bool)
	for _, n := range prog.nodes {
		if directlyCharges(n) {
			charges[n.ID] = true
		}
		if directlySpends(n) {
			spends[n.ID] = true
		}
	}

	// Propagate over the call graph: a function charges (or spends) if
	// anything it reaches does, across package boundaries. Callee IDs with
	// no source node (stdlib, export-data-only) contribute nothing.
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			for _, e := range n.Calls {
				if charges[e.CalleeID] && !charges[n.ID] {
					charges[n.ID] = true
					changed = true
				}
				if spends[e.CalleeID] && !spends[n.ID] {
					spends[n.ID] = true
					changed = true
				}
			}
		}
	}

	for _, n := range prog.nodes {
		if n.Decl == nil || n.InTestFile || n.Decl.Recv == nil {
			continue
		}
		fn := n.Fn
		switch simSegment(n.Unit.PkgPath) {
		case "faults":
			if spends[n.ID] && hasCellParam(fn) {
				pass.Reportf(n.Decl.Name.Pos(), "fault-injector method %s judges cells but spends virtual time (directly or transitively); impairments must reshape the delivery schedule, never stall the transmitter", n.Decl.Name.Name)
			}
		case "nic", "fabric", "topo":
			if n.Decl.Name.IsExported() && !charges[n.ID] && hasCellParam(fn) {
				pass.Reportf(n.Decl.Name.Pos(), "exported fast-path method %s moves cells but never charges a virtual-time cost (no cursor arithmetic, sleep, or cost-parameter reference, directly or transitively)", n.Decl.Name.Name)
			}
		}
	}
}

// directlySpends reports whether the node's body contains an unambiguous
// time-spending call (Sleep, charge, …) — the evidence that convicts a
// fault injector, which must never stall the transmitter.
func directlySpends(node *FuncNode) bool {
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			var name string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if chargeCalls[name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// directlyCharges reports whether the node's body contains first-hand
// charging evidence.
func directlyCharges(node *FuncNode) bool {
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			var name string
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if chargeCalls[name] {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				if _, isPkg := node.Unit.Info.Uses[id].(*types.PkgName); isPkg {
					return true // time.Duration etc.: a package reference, not a cost table
				}
			}
			if isCostName(n.Sel.Name) {
				found = true
				return false
			}
		case *ast.Ident:
			if costIdents[n.Name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isCostName(name string) bool {
	if costIdents[name] {
		return true
	}
	for _, suf := range costNameSuffixes {
		if strings.HasSuffix(name, suf) && name != suf {
			return true
		}
	}
	return false
}

// hasCellParam reports whether fn takes a cell (Cell, *Cell, or []Cell by
// named-type name) among its parameters.
func hasCellParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Cell" {
			return true
		}
	}
	return false
}
