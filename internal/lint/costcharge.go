package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CostCharge checks the paper's processing-overhead model (§2.1): every
// exported NIC/fabric method that moves cells — the fast paths — must
// account virtual time for the work, either directly (advancing a cost
// cursor, sleeping, referencing a calibrated cost/latency parameter) or by
// delegating to a method in the same package that does. A data-moving
// method that charges nothing models infinitely fast hardware and skews
// every calibrated figure.
//
// A method is considered a fast path when it is an exported method whose
// parameters include a cell (a named type Cell, possibly a slice or
// pointer). Charging evidence is searched transitively across same-package
// calls; intake paths that legitimately cost nothing (a FIFO accepting an
// already-paid-for arrival) carry an //unetlint:allow costcharge
// annotation naming where the cost is charged instead.
//
// internal/faults is held to the opposite contract: an injector judges
// cells on the transmitter's critical path, and the Injector interface
// promises that judging charges no virtual time — impairments reshape the
// delivery schedule, they never stall the transmitter. There a cell-taking
// method that reaches a time-spending call is the defect.
var CostCharge = &Analyzer{
	Name: "costcharge",
	Doc:  "require exported NIC/fabric cell-moving methods to charge virtual-time cost; forbid fault injectors from spending it",
	Run:  runCostCharge,
}

// chargeCalls are callee names that unambiguously spend virtual time.
var chargeCalls = map[string]bool{
	"Sleep":      true,
	"SleepUntil": true,
	"WaitReady":  true,
	"syncTo":     true,
	"charge":     true,
	"Charge":     true,
}

// costNameSuffixes mark selectors that read a calibrated timing parameter.
var costNameSuffixes = []string{"Cost", "Time", "Latency", "Overhead", "PerCell", "Fixed"}

// costIdents are local names whose mention shows cursor arithmetic.
var costIdents = map[string]bool{"cursor": true, "latency": true}

func runCostCharge(pass *Pass) {
	seg := simSegment(pass.Unit.PkgPath)
	if (seg != "nic" && seg != "fabric" && seg != "faults") || pass.Unit.ForTest {
		return
	}

	// Collect every function declared in the unit, whether it directly
	// charges cost (any evidence) and whether it directly spends virtual
	// time (an unambiguous time-spending call — the stricter signal the
	// injector rule needs, since injectors may read timing parameters like
	// CellTime without ever stalling anyone).
	decls := make(map[*types.Func]*ast.FuncDecl)
	charges := make(map[*types.Func]bool)
	spends := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Unit.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if directlyCharges(pass, fd) {
				charges[fn] = true
			}
			if directlySpends(fd) {
				spends[fn] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeFunc(pass, call); callee != nil {
						callees[fn] = append(callees[fn], callee)
					}
				}
				return true
			})
		}
	}

	// Propagate: a function charges (or spends) if anything it calls
	// (within this package) does.
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			for _, callee := range callees[fn] {
				if charges[callee] && !charges[fn] {
					charges[fn] = true
					changed = true
				}
				if spends[callee] && !spends[fn] {
					spends[fn] = true
					changed = true
				}
			}
		}
	}

	if seg == "faults" {
		for fn, fd := range decls {
			if fd.Recv == nil || !spends[fn] || !hasCellParam(fn) {
				continue
			}
			if strings.HasSuffix(pass.Unit.Fset.Position(fd.Pos()).Filename, "_test.go") {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "fault-injector method %s judges cells but spends virtual time (directly or via same-package calls); impairments must reshape the delivery schedule, never stall the transmitter", fd.Name.Name)
		}
		return
	}

	for fn, fd := range decls {
		if fd.Recv == nil || !fd.Name.IsExported() || charges[fn] {
			continue
		}
		if strings.HasSuffix(pass.Unit.Fset.Position(fd.Pos()).Filename, "_test.go") {
			continue
		}
		if !hasCellParam(fn) {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "exported fast-path method %s moves cells but never charges a virtual-time cost (no cursor arithmetic, sleep, or cost-parameter reference, directly or via same-package calls)", fd.Name.Name)
	}
}

// directlySpends reports whether fd's body contains an unambiguous
// time-spending call (Sleep, charge, …) — the evidence that convicts a
// fault injector, which must never stall the transmitter.
func directlySpends(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			var name string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if chargeCalls[name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// directlyCharges reports whether fd's body contains first-hand charging
// evidence.
func directlyCharges(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			var name string
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if chargeCalls[name] {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				if _, isPkg := pass.Unit.Info.Uses[id].(*types.PkgName); isPkg {
					return true // time.Duration etc.: a package reference, not a cost table
				}
			}
			if isCostName(n.Sel.Name) {
				found = true
				return false
			}
		case *ast.Ident:
			if costIdents[n.Name] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isCostName(name string) bool {
	if costIdents[name] {
		return true
	}
	for _, suf := range costNameSuffixes {
		if strings.HasSuffix(name, suf) && name != suf {
			return true
		}
	}
	return false
}

// hasCellParam reports whether fn takes a cell (Cell, *Cell, or []Cell by
// named-type name) among its parameters.
func hasCellParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		switch u := t.(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Cell" {
			return true
		}
	}
	return false
}
