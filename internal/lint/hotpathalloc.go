package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// HotPathAlloc turns the PR 4 zero-allocation contract from a runtime gate
// into a lint-time proof. Functions annotated //unetlint:hotpath — the NIC
// demux, the AAL5 segmenter/reassembler, the UAM send/receive path, the
// timer-wheel insert/cancel — form the steady-state data path that
// TestSteadyStateAllocs measures at 0 allocs/round; but AllocsPerRun only
// convicts allocations on paths the test happens to exercise, and only
// after the code has shipped far enough to run. This analyzer reports the
// violation at the allocation site instead: it compiles the module with
// -gcflags=-m, maps every "escapes to heap"/"moved to heap" site onto the
// program's function index, and walks the call graph from each hotpath
// root, reporting every reachable heap allocation.
//
// Soundness boundaries, by construction:
//
//   - Allocations that only feed panic are ignored: a panicking simulator
//     has no steady state to protect.
//   - Calls through plain function values resolve to no callee; each such
//     site inside hot-path reach is reported as a hole in the proof (the
//     AtArg callback idiom — a static top-level function passed with its
//     argument — stays resolvable and is the sanctioned escape hatch).
//   - Interface calls fan out to every loosely-implementing method
//     (class-hierarchy analysis), which can over-approximate but never
//     misses a source-declared implementor.
//   - Intentional cold-path allocations inside hot functions (pool/arena
//     growth, teardown errors) carry //unetlint:allow hotpathalloc
//     annotations naming why the steady state never takes them.
//   - Escape data comes from the compiler itself, so append growth and
//     interface boxing the AST cannot see are still only visible when the
//     compiler reports an escape; stack-growth reallocation is invisible to
//     both and remains the runtime gate's job.
//
// Without a go.mod at the load root (plain fixture trees) no escape facts
// exist and only dynamic-call holes are reported.
var HotPathAlloc = &Analyzer{
	Name:       "hotpathalloc",
	Doc:        "prove functions annotated //unetlint:hotpath reach no heap allocation (escape analysis over the call graph)",
	RunProgram: runHotPathAlloc,
}

// allocSite is one compiler-reported heap allocation mapped into the
// function index.
type allocSite struct {
	pos token.Pos
	msg string
}

func runHotPathAlloc(pass *ProgramPass) {
	prog := pass.Prog
	if len(prog.HotPath) == 0 {
		return
	}
	allocs := escapeFacts(pass)

	// Roots in deterministic order.
	roots := make([]string, 0, len(prog.HotPath))
	for id := range prog.HotPath {
		roots = append(roots, id)
	}
	sort.Strings(roots)

	for _, rootID := range roots {
		root := prog.Nodes[rootID]
		if root == nil {
			continue
		}
		// BFS from the root; via[] remembers the first caller that reached
		// each node so findings can name the chain's head.
		seen := map[string]bool{rootID: true}
		queue := []*FuncNode{root}
		via := map[string]string{}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, site := range allocs[n.ID] {
				detail := ""
				if n.ID != rootID {
					detail = fmt.Sprintf(" (reached via %s)", chainString(via, n.ID, rootID))
				}
				pass.Reportf(site.pos, "heap allocation on the //unetlint:hotpath path rooted at %s: %s%s",
					shortName(root), site.msg, detail)
			}
			for _, dyn := range n.Dyn {
				pass.Reportf(dyn, "call through a function value inside the //unetlint:hotpath path rooted at %s: the allocation proof cannot follow it",
					shortName(root))
			}
			for _, e := range n.Calls {
				callee := prog.Nodes[e.CalleeID]
				if callee == nil || seen[e.CalleeID] || callee.InTestFile {
					continue
				}
				seen[e.CalleeID] = true
				via[e.CalleeID] = n.ID
				queue = append(queue, callee)
			}
		}
	}
}

func shortName(n *FuncNode) string {
	if n.Fn != nil {
		name := n.Fn.FullName()
		// Trim the module prefix for readability: (*unet/internal/nic.Device).x
		// → (*nic.Device).x
		name = strings.ReplaceAll(name, "unet/internal/", "")
		return name
	}
	return n.ID
}

// chainString renders root → … → id as the two ends plus hop count.
func chainString(via map[string]string, id, rootID string) string {
	hops := 0
	first := id
	for cur := id; cur != rootID && hops < 32; hops++ {
		first = cur
		cur = via[cur]
		if cur == "" {
			break
		}
	}
	if hops <= 1 {
		return "a direct call"
	}
	return fmt.Sprintf("%d calls through %s", hops, strings.ReplaceAll(first, "unet/internal/", ""))
}

// escapeMu serializes the go-build shell-out: several concurrent lint runs
// (tests) would otherwise race on the build cache for no benefit.
var escapeMu sync.Mutex

// escapeCache memoizes parsed escape facts per load directory within one
// process: the multichecker and the repo-clean test share one extraction.
var escapeCache = map[string]map[string][]allocSite{}

// escapeFacts compiles the module at the program's load root with
// -gcflags=-m and maps each reported escape site to its enclosing function
// node. The go build cache replays compiler diagnostics, so repeat runs
// cost a cache probe, not a compile.
func escapeFacts(pass *ProgramPass) map[string][]allocSite {
	prog := pass.Prog
	if prog.Dir == "" {
		return nil
	}
	// The load directory may be anywhere inside the module; the compiler
	// must run at the module root, and its diagnostics are relative to it.
	modDir, modPath, err := goModule(prog.Dir)
	if err != nil || modDir == "" {
		return nil // fixture tree without a module: no escape facts
	}
	escapeMu.Lock()
	defer escapeMu.Unlock()
	if facts, ok := escapeCache[modDir]; ok {
		return facts
	}

	cmd := exec.Command("go", "build", "-gcflags="+modPath+"/...=-m", "./...")
	cmd.Dir = modDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		pass.Reportf(token.NoPos, "hotpathalloc: go build -gcflags=-m failed: %v\n%s", err, stderr.String())
		return nil
	}

	facts := make(map[string][]allocSite)
	for _, line := range strings.Split(stderr.String(), "\n") {
		msg, kind := escapeMessage(line)
		if kind == "" {
			continue
		}
		file, lineNo, col, ok := splitPosPrefix(line)
		if !ok {
			continue
		}
		pos := prog.resolvePos(filepath.Join(modDir, file), lineNo, col)
		if pos == token.NoPos {
			continue
		}
		node := prog.NodeAt(pos)
		if node == nil {
			continue // package-scope initialization
		}
		if allocFeedsPanic(node, pos) {
			continue
		}
		facts[node.ID] = append(facts[node.ID], allocSite{pos: pos, msg: msg})
	}
	escapeCache[modDir] = facts
	return facts
}

// goModule reads the root directory and path of the module containing dir
// via the go tool ("", "", nil outside any module).
func goModule(dir string) (modDir, modPath string, err error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}\t{{.Path}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", "", err
	}
	modDir, modPath, _ = strings.Cut(strings.TrimSpace(string(out)), "\t")
	return modDir, modPath, nil
}

// escapeMessage classifies one -m line, returning a human message for
// allocation reports ("" when the line is not an allocation).
func escapeMessage(line string) (msg, kind string) {
	switch {
	case strings.HasSuffix(line, " escapes to heap"):
		i := strings.Index(line, ": ")
		if i < 0 {
			return "", ""
		}
		return strings.TrimSpace(line[i+2:]), "escape"
	case strings.Contains(line, "moved to heap: "):
		i := strings.Index(line, "moved to heap: ")
		return "moved to heap: " + line[i+len("moved to heap: "):], "moved"
	}
	return "", ""
}

// splitPosPrefix parses the file:line:col: prefix of a compiler
// diagnostic.
func splitPosPrefix(line string) (file string, lineNo, col int, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) < 4 {
		return "", 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[1]+" "+parts[2], "%d %d", &lineNo, &col); err != nil {
		return "", 0, 0, false
	}
	return parts[0], lineNo, col, true
}

// resolvePos converts an absolute file path plus line/column to a
// token.Pos within the program's fileset.
func (p *Program) resolvePos(absFile string, line, col int) token.Pos {
	var pos token.Pos = token.NoPos
	p.Fset.Iterate(func(tf *token.File) bool {
		if tf.Name() != absFile {
			return true
		}
		if line > tf.LineCount() {
			return false
		}
		lp := tf.LineStart(line)
		pos = lp + token.Pos(col-1)
		return false
	})
	return pos
}

// allocFeedsPanic reports whether the allocation at pos exists only as an
// argument to panic (a Sprintf feeding panic is not steady-state
// allocation — a panicking simulator is already dead).
func allocFeedsPanic(node *FuncNode, pos token.Pos) bool {
	for _, n := range enclosingPath(node.Body, pos) {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && node.Unit.Info.Uses[id] == types.Universe.Lookup("panic") {
				return true
			}
		}
	}
	return false
}

// enclosingPath returns the chain of nodes from root down to the innermost
// node containing pos.
func enclosingPath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || pos < c.Pos() || pos >= c.End() {
				return c == n
			}
			if c != n {
				path = append(path, c)
				walk(c)
				return false
			}
			return true
		})
	}
	path = append(path, root)
	walk(root)
	return path
}
