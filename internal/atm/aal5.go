package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AAL5 reassembly and validation errors.
var (
	// ErrPDUTooLong reports a payload exceeding the AAL5 length field.
	ErrPDUTooLong = errors.New("atm: AAL5 PDU exceeds 65535 bytes")
	// ErrBadCRC reports an AAL5 CRC-32 mismatch on reassembly. ATM discards
	// the entire PDU in this case — the behaviour behind Romanow & Floyd's
	// observation (paper §7.8) that one lost cell costs a whole segment.
	ErrBadCRC = errors.New("atm: AAL5 CRC-32 mismatch")
	// ErrBadLength reports an AAL5 length field inconsistent with the
	// number of cells received (typically a lost cell).
	ErrBadLength = errors.New("atm: AAL5 length inconsistent with cells received")
)

// Segment builds the AAL5 PDU for payload and splits it into cells on vci.
// The last cell carries the pad bytes, the 8-byte CPCS trailer (UU=0,
// CPI=0, 16-bit length, CRC-32) and the end-of-PDU mark. Segment panics if
// payload exceeds MaxPDU; callers are expected to enforce their MTU first.
func Segment(vci VCI, payload []byte) []Cell {
	if len(payload) > MaxPDU {
		panic(fmt.Sprintf("atm: Segment called with %d-byte payload", len(payload)))
	}
	ncells := CellsFor(len(payload))
	if ncells == 0 {
		ncells = 1 // a zero-byte PDU still occupies one cell (trailer only)
	}
	pdu := make([]byte, ncells*PayloadSize)
	copy(pdu, payload)
	binary.BigEndian.PutUint16(pdu[len(pdu)-4-2:], uint16(len(payload)))
	crc := CRC32(pdu[:len(pdu)-4])
	binary.BigEndian.PutUint32(pdu[len(pdu)-4:], crc)

	cells := make([]Cell, ncells)
	for i := range cells {
		cells[i].VCI = vci
		copy(cells[i].Payload[:], pdu[i*PayloadSize:])
	}
	cells[ncells-1].EOP = true
	return cells
}

// Reassembler accumulates the cells of one AAL5 PDU on a single VCI.
// The zero value is ready to use. The caller (a NIC model) keeps one
// Reassembler per receive VCI, mirroring the per-VCI reassembly state the
// SBA-200 firmware maintains.
type Reassembler struct {
	buf   []byte
	cells int
}

// Pending reports how many cells of an incomplete PDU are buffered.
func (r *Reassembler) Pending() int { return r.cells }

// Reset discards any partial PDU.
func (r *Reassembler) Reset() {
	r.buf = r.buf[:0]
	r.cells = 0
}

// Add feeds the next cell. When c completes a PDU (c.EOP), Add validates
// the trailer and returns the payload; otherwise it returns (nil, nil).
// On validation failure the partial state is discarded and an error
// describing the corruption is returned.
func (r *Reassembler) Add(c Cell) ([]byte, error) {
	r.buf = append(r.buf, c.Payload[:]...)
	r.cells++
	if !c.EOP {
		return nil, nil
	}
	pdu := r.buf
	n := int(binary.BigEndian.Uint16(pdu[len(pdu)-4-2:]))
	defer r.Reset()
	if CellsFor(n) != r.cells && !(n == 0 && r.cells == 1) {
		return nil, fmt.Errorf("%w: length=%d cells=%d", ErrBadLength, n, r.cells)
	}
	want := binary.BigEndian.Uint32(pdu[len(pdu)-4:])
	if got := CRC32(pdu[:len(pdu)-4]); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadCRC, got, want)
	}
	out := make([]byte, n)
	copy(out, pdu[:n])
	return out, nil
}
