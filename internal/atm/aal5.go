package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AAL5 reassembly and validation errors.
var (
	// ErrPDUTooLong reports a payload exceeding the AAL5 length field.
	ErrPDUTooLong = errors.New("atm: AAL5 PDU exceeds 65535 bytes")
	// ErrBadCRC reports an AAL5 CRC-32 mismatch on reassembly. ATM discards
	// the entire PDU in this case — the behaviour behind Romanow & Floyd's
	// observation (paper §7.8) that one lost cell costs a whole segment.
	ErrBadCRC = errors.New("atm: AAL5 CRC-32 mismatch")
	// ErrBadLength reports an AAL5 length field inconsistent with the
	// number of cells received (typically a lost cell).
	ErrBadLength = errors.New("atm: AAL5 length inconsistent with cells received")
)

// Segment builds the AAL5 PDU for payload and splits it into cells on vci.
// The last cell carries the pad bytes, the 8-byte CPCS trailer (UU=0,
// CPI=0, 16-bit length, CRC-32) and the end-of-PDU mark. Segment panics if
// payload exceeds MaxPDU; callers are expected to enforce their MTU first.
func Segment(vci VCI, payload []byte) []Cell {
	return SegmentAppend(nil, vci, payload)
}

// SegmentAppend is Segment writing into dst, which it extends and returns
// (like append). Cell payloads are assembled in place — no intermediate PDU
// staging buffer — so a caller that recycles dst across messages segments
// with zero allocations in steady state.
//
//unetlint:hotpath AAL5 segmentation; runs on every message send
func SegmentAppend(dst []Cell, vci VCI, payload []byte) []Cell {
	if len(payload) > MaxPDU {
		panic(fmt.Sprintf("atm: Segment called with %d-byte payload", len(payload)))
	}
	ncells := CellsFor(len(payload))
	if ncells == 0 {
		ncells = 1 // a zero-byte PDU still occupies one cell (trailer only)
	}
	base := len(dst)
	for cap(dst)-base < ncells {
		dst = append(dst[:cap(dst)], Cell{})
	}
	dst = dst[:base+ncells]

	crc := uint32(0xFFFFFFFF)
	rest := payload
	for i := 0; i < ncells; i++ {
		c := &dst[base+i]
		c.VCI = vci
		c.EOP = false
		c.Direct = false
		n := copy(c.Payload[:], rest)
		rest = rest[n:]
		clear(c.Payload[n:]) // zero padding (and trailer space, filled below)
		if i < ncells-1 {
			crc = CRC32Update(crc, c.Payload[:])
		}
	}
	last := &dst[base+ncells-1]
	last.EOP = true
	binary.BigEndian.PutUint16(last.Payload[PayloadSize-6:], uint16(len(payload)))
	crc = CRC32Update(crc, last.Payload[:PayloadSize-4]) ^ 0xFFFFFFFF
	binary.BigEndian.PutUint32(last.Payload[PayloadSize-4:], crc)
	return dst
}

// BufSource provides and recycles reassembly buffers, letting many
// reassemblers share one arena of slabs instead of each growing a private
// buffer to its high-water mark. GetBuf returns a zero-length slab (of
// whatever capacity the arena has on hand — the reassembler grows it by
// appending); PutBuf takes a zero-length slab back.
type BufSource interface {
	GetBuf() []byte
	PutBuf(buf []byte)
}

// Reassembler accumulates the cells of one AAL5 PDU on a single VCI.
// The zero value is ready to use. The caller (a NIC model) keeps one
// Reassembler per receive VCI, mirroring the per-VCI reassembly state the
// SBA-200 firmware maintains.
type Reassembler struct {
	buf   []byte
	cells int
	src   BufSource
}

// Pending reports how many cells of an incomplete PDU are buffered.
func (r *Reassembler) Pending() int { return r.cells }

// SetSource makes the reassembler draw its buffer from src at the start of
// each PDU — and, crucially, changes the ownership contract of Add: on a
// completed PDU the backing slab detaches and transfers to the caller, who
// returns it to the source (typically after delivering or scattering the
// payload) with PutBuf(payload[:0]). Call SetSource only while no PDU is
// pending.
func (r *Reassembler) SetSource(s BufSource) { r.src = s }

// Reset discards any partial PDU, returning a pooled buffer to its source.
func (r *Reassembler) Reset() {
	if r.src != nil {
		if r.buf != nil {
			r.src.PutBuf(r.buf[:0])
		}
		r.buf = nil
	} else {
		r.buf = r.buf[:0]
	}
	r.cells = 0
}

// Add feeds the next cell. When c completes a PDU (c.EOP), Add validates
// the trailer and returns the payload; otherwise it returns (nil, nil).
// On validation failure the partial state is discarded and an error
// describing the corruption is returned.
//
// Without a buffer source, the returned payload aliases the reassembler's
// internal buffer and is valid only until the next Add or Reset on this
// reassembler; callers that retain it (rather than scattering it into
// their own buffers) must copy. With SetSource, the payload's backing slab
// is the caller's to keep — and to hand back to the source when consumed —
// so no copy is ever needed.
//
//unetlint:hotpath AAL5 reassembly; runs on every arriving cell
func (r *Reassembler) Add(c Cell) ([]byte, error) {
	if r.buf == nil && r.src != nil {
		r.buf = r.src.GetBuf()
	}
	r.buf = append(r.buf, c.Payload[:]...)
	r.cells++
	if !c.EOP {
		return nil, nil
	}
	pdu := r.buf
	n := int(binary.BigEndian.Uint16(pdu[len(pdu)-4-2:]))
	if CellsFor(n) != r.cells && !(n == 0 && r.cells == 1) {
		r.Reset()
		return nil, fmt.Errorf("%w: length=%d cells=%d", ErrBadLength, n, r.cells)
	}
	want := binary.BigEndian.Uint32(pdu[len(pdu)-4:])
	if got := CRC32(pdu[:len(pdu)-4]); got != want {
		r.Reset()
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrBadCRC, got, want)
	}
	if r.src != nil {
		// Ownership of the slab moves to the caller; keep the full capacity
		// reachable (no three-index cap) so PutBuf recovers the whole slab.
		r.buf = nil
		r.cells = 0
		return pdu[:n], nil
	}
	r.Reset()
	return pdu[:n:n], nil
}
