package atm

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCellsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1},
		{1, 1},
		{40, 1}, // 40 + 8 trailer = 48: exactly one cell
		{41, 2}, // spills the trailer into a second cell
		{48, 2}, // the paper's "longer messages start at 120µs for 48 bytes"
		{88, 2}, // 88 + 8 = 96: exactly two cells
		{89, 3},
		{800, 17}, // saturation-size packet in Figure 4
		{4096, 86},
		{4160, 87}, // UAM buffer size behind the Figure 4 dip
	}
	for _, c := range cases {
		if got := CellsFor(c.n); got != c.want {
			t.Errorf("CellsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCellsForNegative(t *testing.T) {
	if got := CellsFor(-1); got != 0 {
		t.Fatalf("CellsFor(-1) = %d, want 0", got)
	}
}

func TestWireBytes(t *testing.T) {
	if got := WireBytes(40); got != 53 {
		t.Fatalf("WireBytes(40) = %d, want 53", got)
	}
	if got := WireBytes(48); got != 106 {
		t.Fatalf("WireBytes(48) = %d, want 106", got)
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0x00},
		{0xFF},
		[]byte("hello, ATM"),
		bytes.Repeat([]byte{0xA5}, 48),
		bytes.Repeat([]byte{0x3C, 0x99}, 4096),
	}
	for _, in := range inputs {
		if got, want := CRC32(in), crc32.ChecksumIEEE(in); got != want {
			t.Errorf("CRC32(%d bytes) = %08x, want %08x", len(in), got, want)
		}
	}
}

func TestCRC32UpdateIncremental(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	whole := CRC32(data)
	state := uint32(0xFFFFFFFF)
	for _, b := range data {
		state = CRC32Update(state, []byte{b})
	}
	if got := state ^ 0xFFFFFFFF; got != whole {
		t.Fatalf("incremental CRC = %08x, want %08x", got, whole)
	}
}

func TestCRC32Quick(t *testing.T) {
	f := func(data []byte) bool { return CRC32(data) == crc32.ChecksumIEEE(data) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, vci VCI, payload []byte) []byte {
	t.Helper()
	cells := Segment(vci, payload)
	var r Reassembler
	for i, c := range cells {
		if c.VCI != vci {
			t.Fatalf("cell %d VCI = %d, want %d", i, c.VCI, vci)
		}
		wantEOP := i == len(cells)-1
		if c.EOP != wantEOP {
			t.Fatalf("cell %d EOP = %v, want %v", i, c.EOP, wantEOP)
		}
		out, err := r.Add(c)
		if err != nil {
			t.Fatalf("Add cell %d: %v", i, err)
		}
		if (out != nil) != wantEOP && !(wantEOP && len(payload) == 0) {
			t.Fatalf("cell %d returned PDU = %v, want at EOP only", i, out != nil)
		}
		if wantEOP {
			return out
		}
	}
	t.Fatal("no EOP cell")
	return nil
}

func TestSegmentReassembleSizes(t *testing.T) {
	for _, n := range []int{0, 1, 39, 40, 41, 47, 48, 49, 88, 89, 100, 800, 1024, 4096, 4164, 5000, MaxPDU} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i*7 + n)
		}
		got := roundTrip(t, VCI(5), payload)
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: reassembled payload differs", n)
		}
	}
}

func TestSegmentCellCount(t *testing.T) {
	for _, n := range []int{0, 1, 40, 41, 48, 4096} {
		cells := Segment(1, make([]byte, n))
		want := CellsFor(n)
		if n == 0 {
			want = 1
		}
		if len(cells) != want {
			t.Fatalf("Segment(%d bytes) = %d cells, want %d", n, len(cells), want)
		}
	}
}

func TestSegmentTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Segment accepted an oversized PDU")
		}
	}()
	Segment(1, make([]byte, MaxPDU+1))
}

func TestReassembleCorruptPayload(t *testing.T) {
	cells := Segment(1, bytes.Repeat([]byte{0x42}, 100))
	cells[0].Payload[10] ^= 0x01
	var r Reassembler
	var err error
	for _, c := range cells {
		_, err = r.Add(c)
	}
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending() = %d after error, want 0 (state reset)", r.Pending())
	}
}

func TestReassembleLostCell(t *testing.T) {
	cells := Segment(1, bytes.Repeat([]byte{0x42}, 200)) // 5 cells
	var r Reassembler
	var err error
	for i, c := range cells {
		if i == 2 {
			continue // drop a middle cell
		}
		_, err = r.Add(c)
	}
	if err == nil {
		t.Fatal("reassembly of PDU with lost cell succeeded")
	}
	if !errors.Is(err, ErrBadLength) && !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want length or CRC error", err)
	}
}

func TestReassemblerReuseAfterSuccess(t *testing.T) {
	var r Reassembler
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100+i)
		var got []byte
		for _, c := range Segment(9, payload) {
			out, err := r.Add(c)
			if err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
			if out != nil {
				got = out
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: payload mismatch", i)
		}
	}
}

func TestReassemblerQuick(t *testing.T) {
	f := func(payload []byte, vci uint16) bool {
		if len(payload) > MaxPDU {
			payload = payload[:MaxPDU]
		}
		var r Reassembler
		var got []byte
		for _, c := range Segment(VCI(vci), payload) {
			out, err := r.Add(c)
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBytePDU(t *testing.T) {
	got := roundTrip(t, 3, nil)
	if len(got) != 0 {
		t.Fatalf("zero-byte PDU reassembled to %d bytes", len(got))
	}
}

func BenchmarkSegment4K(b *testing.B) {
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Segment(1, payload)
	}
}

func BenchmarkReassemble4K(b *testing.B) {
	cells := Segment(1, make([]byte, 4096))
	var r Reassembler
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			if _, err := r.Add(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
