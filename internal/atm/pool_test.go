package atm

import (
	"bytes"
	"testing"
)

// testSource is a minimal BufSource: a LIFO of slabs with get/put/alloc
// accounting (the unet arena implements the same contract; atm cannot
// import it without a cycle).
type testSource struct {
	free   [][]byte
	gets   int
	puts   int
	allocs int
}

func (s *testSource) GetBuf() []byte {
	s.gets++
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		return b
	}
	s.allocs++
	return nil
}

func (s *testSource) PutBuf(b []byte) {
	s.puts++
	s.free = append(s.free, b[:0])
}

// TestReassemblerPooledDetach checks the SetSource ownership contract: a
// completed PDU's slab detaches at full capacity (ready for reuse without
// regrowth), successive PDUs recycle the same slab through the source, and
// the pool sees exactly one allocation across many PDUs.
func TestReassemblerPooledDetach(t *testing.T) {
	var src testSource
	var r Reassembler
	r.SetSource(&src)

	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}

	const rounds = 8
	for round := 0; round < rounds; round++ {
		var pdu []byte
		for _, c := range Segment(VCI(3), payload) {
			out, err := r.Add(c)
			if err != nil {
				t.Fatalf("round %d: Add: %v", round, err)
			}
			if out != nil {
				pdu = out
			}
		}
		if !bytes.Equal(pdu, payload) {
			t.Fatalf("round %d: reassembled payload differs", round)
		}
		// The slab is detached: the reassembler must not touch it again
		// even if a new PDU starts before we return it.
		if len(pdu) == cap(pdu) {
			t.Fatalf("round %d: detached slab has no spare capacity (len=cap=%d); padding was trimmed, not detached", round, len(pdu))
		}
		src.PutBuf(pdu[:0])
	}

	if src.allocs != 1 {
		t.Fatalf("pool allocated %d slabs over %d PDUs, want 1 (slab recycled)", src.allocs, rounds)
	}
	if src.gets != rounds || src.puts != rounds {
		t.Fatalf("gets/puts = %d/%d, want %d/%d", src.gets, src.puts, rounds, rounds)
	}
}

// TestReassemblerResetReturnsSlab checks that discarding a partial PDU
// hands the pooled slab back instead of stranding it.
func TestReassemblerResetReturnsSlab(t *testing.T) {
	var src testSource
	var r Reassembler
	r.SetSource(&src)

	cells := Segment(VCI(3), make([]byte, 500))
	for _, c := range cells[:len(cells)-1] { // withhold EOP
		if _, err := r.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if r.Pending() == 0 {
		t.Fatal("no partial PDU pending before Reset")
	}
	r.Reset()
	if got := src.gets - src.puts; got != 0 {
		t.Fatalf("source holds %d outstanding slab(s) after Reset, want 0", got)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset, want 0", r.Pending())
	}
}
