// Package atm models the ATM wire format used by the U-Net prototypes:
// 53-byte cells carrying 48-byte payloads on virtual channels, and the AAL5
// adaptation layer (segmentation, reassembly and CRC-32) that both Fore
// SBA-100/SBA-200 interfaces transported packets with.
package atm

// Wire and adaptation-layer size constants.
const (
	// CellSize is the full ATM cell size on the wire (5-byte header +
	// 48-byte payload).
	CellSize = 53
	// HeaderSize is the ATM cell header size.
	HeaderSize = 5
	// PayloadSize is the cell payload capacity.
	PayloadSize = 48
	// TrailerSize is the AAL5 CPCS trailer size (UU, CPI, length, CRC-32).
	TrailerSize = 8
	// SingleCellMax is the largest AAL5 PDU payload that fits in one cell
	// alongside the trailer. The U-Net firmware's single-cell fast path
	// (paper §4.2.2) applies to messages up to this size.
	SingleCellMax = PayloadSize - TrailerSize
	// MaxPDU is the largest AAL5 payload (16-bit length field).
	MaxPDU = 65535
)

// VCI is an ATM virtual channel identifier. ATM is connection oriented:
// a VCI names a one-way connection set up out of band (in U-Net, by the
// kernel during channel registration).
type VCI uint16

// Cell is one ATM cell. Only the fields the simulation needs are modeled:
// the VCI, the AAL5 end-of-PDU indication (PTI user bit), and the payload.
type Cell struct {
	VCI VCI
	EOP bool // end of AAL5 PDU (ATM-layer-user-to-user PTI bit)
	// Direct marks a direct-access U-Net PDU (§3.6): the payload begins
	// with a deposit-offset header. Modeled as a reserved PTI codepoint.
	Direct  bool
	Payload [PayloadSize]byte
}

// CellsFor returns the number of cells an n-byte AAL5 PDU occupies on the
// wire: payload plus 8-byte trailer, padded up to a whole number of cells.
// This quantization is what produces the sawtooth in the paper's AAL5
// bandwidth-limit curve (Figure 4).
func CellsFor(n int) int {
	if n < 0 {
		return 0
	}
	return (n + TrailerSize + PayloadSize - 1) / PayloadSize
}

// WireBytes returns the total bytes transmitted on the fiber for an n-byte
// AAL5 PDU, counting full 53-byte cells.
func WireBytes(n int) int { return CellsFor(n) * CellSize }
