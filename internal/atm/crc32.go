package atm

import "encoding/binary"

// AAL5 protects each PDU with a CRC-32 using the IEEE 802.3 generator
// polynomial, bit-reflected, initialized to all ones and finally
// complemented. The implementation below is written out (table-driven,
// reflected algorithm) rather than delegating to hash/crc32; the test suite
// cross-checks it against the standard library.
//
// On the SBA-100 this checksum had to be computed in software and accounted
// for 33% of the send and 40% of the receive AAL5 overhead (paper §4.1);
// the SBA-200 computes it in hardware. The NIC models charge time
// accordingly, but both use this code to actually protect the bits so that
// corruption injected by the fabric is detected end to end. Because every
// simulated payload byte flows through it (twice: segmentation and
// reassembly), the byte loop uses the slicing-by-8 variant: eight table
// lookups consume eight input bytes per iteration.

// crcPoly is the reflected IEEE 802.3 polynomial.
const crcPoly = 0xEDB88320

// crcTables[0] is the classic byte-at-a-time table; tables 1-7 extend it so
// that eight bytes can be folded into the state per step (slicing-by-8).
var crcTables = makeCRCTables()

func makeCRCTables() *[8][256]uint32 {
	var t [8][256]uint32
	for i := range t[0] {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crcPoly
			} else {
				crc >>= 1
			}
		}
		t[0][i] = crc
	}
	for i := range t[0] {
		crc := t[0][i]
		for k := 1; k < 8; k++ {
			crc = t[0][crc&0xFF] ^ (crc >> 8)
			t[k][i] = crc
		}
	}
	return &t
}

// CRC32 returns the AAL5 CRC-32 of data.
func CRC32(data []byte) uint32 {
	return CRC32Update(0xFFFFFFFF, data) ^ 0xFFFFFFFF
}

// CRC32Update folds data into a running CRC state (pre-inversion form).
// Start from 0xFFFFFFFF and complement the final value, or use CRC32.
func CRC32Update(state uint32, data []byte) uint32 {
	t := crcTables
	for len(data) >= 8 {
		lo := binary.LittleEndian.Uint32(data) ^ state
		hi := binary.LittleEndian.Uint32(data[4:])
		state = t[7][lo&0xFF] ^
			t[6][(lo>>8)&0xFF] ^
			t[5][(lo>>16)&0xFF] ^
			t[4][lo>>24] ^
			t[3][hi&0xFF] ^
			t[2][(hi>>8)&0xFF] ^
			t[1][(hi>>16)&0xFF] ^
			t[0][hi>>24]
		data = data[8:]
	}
	for _, b := range data {
		state = t[0][(state^uint32(b))&0xFF] ^ (state >> 8)
	}
	return state
}
