package atm

// AAL5 protects each PDU with a CRC-32 using the IEEE 802.3 generator
// polynomial, bit-reflected, initialized to all ones and finally
// complemented. The implementation below is written out (table-driven,
// reflected algorithm) rather than delegating to hash/crc32; the test suite
// cross-checks it against the standard library.
//
// On the SBA-100 this checksum had to be computed in software and accounted
// for 33% of the send and 40% of the receive AAL5 overhead (paper §4.1);
// the SBA-200 computes it in hardware. The NIC models charge time
// accordingly, but both use this code to actually protect the bits so that
// corruption injected by the fabric is detected end to end.

// crcPoly is the reflected IEEE 802.3 polynomial.
const crcPoly = 0xEDB88320

var crcTable = makeCRCTable()

func makeCRCTable() *[256]uint32 {
	var t [256]uint32
	for i := range t {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crcPoly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return &t
}

// CRC32 returns the AAL5 CRC-32 of data.
func CRC32(data []byte) uint32 {
	return CRC32Update(0xFFFFFFFF, data) ^ 0xFFFFFFFF
}

// CRC32Update folds data into a running CRC state (pre-inversion form).
// Start from 0xFFFFFFFF and complement the final value, or use CRC32.
func CRC32Update(state uint32, data []byte) uint32 {
	for _, b := range data {
		state = crcTable[(state^uint32(b))&0xFF] ^ (state >> 8)
	}
	return state
}
