package atm

import (
	"bytes"
	"testing"
)

// FuzzAAL5RoundTrip checks the AAL5 segmentation/reassembly pair on
// arbitrary payloads: a segmented PDU must reassemble byte-identically, a
// single flipped payload bit must fail validation (the CRC-32 covers
// payload, padding and trailer), and a dropped cell must either fail the
// length check or leave the reassembler pending.
func FuzzAAL5RoundTrip(f *testing.F) {
	f.Add(uint16(5), []byte("hello"))
	f.Add(uint16(0), []byte{})
	f.Add(uint16(99), bytes.Repeat([]byte{0xAB}, 200))
	f.Add(uint16(1), make([]byte, SingleCellMax))
	f.Add(uint16(4097), make([]byte, PayloadSize-TrailerSize+1))
	f.Fuzz(func(t *testing.T, vci uint16, payload []byte) {
		if len(payload) > MaxPDU {
			payload = payload[:MaxPDU]
		}
		cells := Segment(VCI(vci), payload)
		if want := max(CellsFor(len(payload)), 1); len(cells) != want {
			t.Fatalf("Segment produced %d cells, want %d", len(cells), want)
		}

		var r Reassembler
		for i, c := range cells {
			got, err := r.Add(c)
			if i < len(cells)-1 {
				if got != nil || err != nil {
					t.Fatalf("cell %d/%d completed early: payload=%v err=%v", i, len(cells), got != nil, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("reassembly failed: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(payload))
			}
		}

		// One flipped payload bit anywhere in the PDU (including padding and
		// trailer) must be caught. The bit index is derived from the inputs so
		// the check stays deterministic per corpus entry.
		bit := int(vci) % (len(cells) * PayloadSize * 8)
		flipped := append([]Cell(nil), cells...)
		flipped[bit/(PayloadSize*8)].Payload[bit/8%PayloadSize] ^= 1 << (bit % 8)
		var rf Reassembler
		for i, c := range flipped {
			got, err := rf.Add(c)
			if i < len(flipped)-1 {
				continue
			}
			if err == nil {
				t.Fatalf("flipped bit %d went undetected (returned %d bytes)", bit, len(got))
			}
		}

		// A dropped cell must never yield a PDU: dropping the EOP cell leaves
		// the reassembler pending, dropping any other fails the length check.
		if len(cells) >= 2 {
			drop := int(vci) % len(cells)
			var rd Reassembler
			for i, c := range cells {
				if i == drop {
					continue
				}
				got, err := rd.Add(c)
				if i == len(cells)-1 && err == nil {
					t.Fatalf("dropped cell %d went undetected (returned %d bytes)", drop, len(got))
				}
			}
			if drop == len(cells)-1 && rd.Pending() != len(cells)-1 {
				t.Fatalf("dropped EOP cell: pending=%d want %d", rd.Pending(), len(cells)-1)
			}
		}
	})
}

// FuzzCellHeader checks the wire header codec: every encodable header
// decodes back to the same routing fields, and every single-bit corruption
// of the 40 header bits is rejected (the HEC's CRC-8 detects all single-bit
// errors, and the canonical-form checks backstop the GFC/VPI/PTI/CLP
// fields).
func FuzzCellHeader(f *testing.F) {
	f.Add(uint16(0), false, false)
	f.Add(uint16(40), true, false)
	f.Add(uint16(0xFFFF), true, true)
	f.Add(uint16(4097), false, true)
	f.Fuzz(func(t *testing.T, vci uint16, eop, direct bool) {
		c := Cell{VCI: VCI(vci), EOP: eop, Direct: direct}
		h := c.EncodeHeader()
		got, err := DecodeHeader(h)
		if err != nil {
			t.Fatalf("decoding canonical header % x: %v", h, err)
		}
		if got != c {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, c)
		}
		for bit := 0; bit < HeaderSize*8; bit++ {
			bad := h
			bad[bit/8] ^= 1 << (bit % 8)
			if _, err := DecodeHeader(bad); err == nil {
				t.Fatalf("single-bit corruption at bit %d went undetected", bit)
			}
		}

		w := c.EncodeCell()
		cc, err := DecodeCell(w)
		if err != nil || cc != c {
			t.Fatalf("full-cell round trip: got %+v err=%v", cc, err)
		}
	})
}
