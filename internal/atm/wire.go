package atm

import (
	"errors"
	"fmt"
)

// Cell header wire codec (ITU-T I.361 UNI format, 5 bytes):
//
//	byte 0: GFC(4) | VPI[7:4]
//	byte 1: VPI[3:0] | VCI[15:12]
//	byte 2: VCI[11:4]
//	byte 3: VCI[3:0] | PTI(3) | CLP(1)
//	byte 4: HEC — CRC-8 over bytes 0–3, polynomial x^8+x^2+x+1, XOR 0x55
//	        (the I.432 coset, so an all-zero header does not self-verify)
//
// The simulation normally moves Cell structs, not bytes; the codec exists
// for the host-DMA experiments and as the ground truth the fuzz tests pin
// down. Canonical form is what the testbed's point-to-point UNI produces:
// GFC = 0, VPI = 0, CLP = 0. The AAL5 user bit (PTI bit 0) carries EOP, and
// the simulator's direct-access mark (§3.6) is modeled as the otherwise
// reserved PTI bit 2. Decode rejects anything non-canonical, which makes
// DecodeHeader(EncodeHeader(c)) the identity and every encodable header a
// decodable one.

// Header decode errors.
var (
	// ErrBadHEC reports a header checksum mismatch. The HEC's CRC-8 detects
	// all single-bit header corruptions; real interfaces drop such cells
	// silently, which the loss model represents upstream.
	ErrBadHEC = errors.New("atm: cell header HEC mismatch")
	// ErrHeaderFormat reports a header outside the canonical form the
	// simulated network produces (nonzero GFC, VPI, CLP, or a PTI codepoint
	// the model does not use).
	ErrHeaderFormat = errors.New("atm: non-canonical cell header")
)

// hec computes the header error control byte over the first four header
// bytes.
func hec(h []byte) byte {
	var crc byte
	for _, b := range h[:HeaderSize-1] {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc ^ 0x55
}

// EncodeHeader packs the cell's routing fields into the canonical 5-byte
// UNI header.
func (c Cell) EncodeHeader() [HeaderSize]byte {
	var h [HeaderSize]byte
	pti := byte(0)
	if c.EOP {
		pti |= 1
	}
	if c.Direct {
		pti |= 4
	}
	h[1] = byte(c.VCI >> 12)
	h[2] = byte(c.VCI >> 4)
	h[3] = byte(c.VCI)<<4 | pti<<1
	h[4] = hec(h[:])
	return h
}

// DecodeHeader parses a 5-byte UNI header, returning a Cell with the
// routing fields set (and a zero payload). It verifies the HEC and rejects
// non-canonical headers, so it is the exact inverse of EncodeHeader.
func DecodeHeader(h [HeaderSize]byte) (Cell, error) {
	if h[4] != hec(h[:]) {
		return Cell{}, fmt.Errorf("%w: got %02x want %02x", ErrBadHEC, h[4], hec(h[:]))
	}
	if h[0] != 0 || h[1]&0xF0 != 0 {
		return Cell{}, fmt.Errorf("%w: nonzero GFC/VPI", ErrHeaderFormat)
	}
	if h[3]&1 != 0 {
		return Cell{}, fmt.Errorf("%w: CLP set", ErrHeaderFormat)
	}
	pti := h[3] >> 1 & 7
	if pti&2 != 0 {
		return Cell{}, fmt.Errorf("%w: unsupported PTI %03b", ErrHeaderFormat, pti)
	}
	var c Cell
	c.VCI = VCI(h[1])<<12 | VCI(h[2])<<4 | VCI(h[3]>>4)
	c.EOP = pti&1 != 0
	c.Direct = pti&4 != 0
	return c, nil
}

// EncodeCell serializes the full 53-byte cell: header then payload.
func (c Cell) EncodeCell() [CellSize]byte {
	var w [CellSize]byte
	h := c.EncodeHeader()
	copy(w[:HeaderSize], h[:])
	copy(w[HeaderSize:], c.Payload[:])
	return w
}

// DecodeCell parses a full 53-byte cell.
func DecodeCell(w [CellSize]byte) (Cell, error) {
	var h [HeaderSize]byte
	copy(h[:], w[:HeaderSize])
	c, err := DecodeHeader(h)
	if err != nil {
		return Cell{}, err
	}
	copy(c.Payload[:], w[HeaderSize:])
	return c, nil
}
