package ip

import (
	"time"

	"unet/internal/sim"
	"unet/internal/unet"
)

// UNetConduit carries IP datagrams over one U-Net channel (§7.1): packets
// are staged in the communication segment on the way out and gathered from
// receive buffers on the way in, exactly the "one copy" base-level path.
// Following the prototype, packets always use buffer descriptors (the IP
// module does not exploit the single-cell inline optimization), which is
// why the U-Net UDP round trip starts at ~138 µs rather than 65 µs
// (Figure 9, Table 3).
type UNetConduit struct {
	ep    *unet.Endpoint
	ch    unet.ChannelID
	local uint32
	rem   uint32

	stage     int // staging ring base
	stageSize int
	stageNext int

	closed bool
}

// stageRing sizes the send staging region: enough slots that a buffer is
// never reused while its descriptor may still be queued.
const stageSlots = 72

// NewUNetConduit builds a conduit over an existing endpoint/channel pair.
// stageBase is the segment offset where the conduit may stage outgoing
// packets (it uses stageSlots × MTU bytes).
func NewUNetConduit(ep *unet.Endpoint, ch unet.ChannelID, local, remote uint32, stageBase int) *UNetConduit {
	return &UNetConduit{
		ep:        ep,
		ch:        ch,
		local:     local,
		rem:       remote,
		stage:     stageBase,
		stageSize: stageSlots * MTU,
	}
}

// LocalAddr returns the local host address.
func (c *UNetConduit) LocalAddr() uint32 { return c.local }

// RemoteAddr returns the peer host address.
func (c *UNetConduit) RemoteAddr() uint32 { return c.rem }

// MTU returns the IP-over-U-Net MTU.
func (c *UNetConduit) MTU() int { return MTU }

// Send stages pkt in the communication segment and queues a descriptor.
func (c *UNetConduit) Send(p *sim.Proc, pkt []byte) error {
	if c.closed {
		return ErrClosed
	}
	if len(pkt) > MTU {
		return ErrTooLong
	}
	if c.stageNext+len(pkt) > c.stageSize {
		c.stageNext = 0
	}
	off := c.stage + c.stageNext
	c.stageNext += len(pkt)
	if err := c.ep.Compose(p, off, pkt); err != nil {
		return err
	}
	return c.ep.SendBlock(p, unet.SendDesc{Channel: c.ch, Offset: off, Length: len(pkt)})
}

// gather copies a received datagram out of U-Net buffers and recycles
// them. The copy is charged; true zero-copy consumers would read the
// buffers in place (§3.4), but the socket API semantics the transports
// provide require the data to outlive the buffer.
func (c *UNetConduit) gather(p *sim.Proc, rd unet.RecvDesc) []byte {
	if rd.Inline != nil {
		out := make([]byte, len(rd.Inline))
		charge(p, c.ep.Host().Params.CopyCost(len(rd.Inline)))
		copy(out, rd.Inline)
		c.ep.Consume(rd)
		return out
	}
	out := make([]byte, rd.Length)
	n := 0
	bufSize := c.ep.Config().RecvBufSize
	for _, off := range rd.Buffers {
		chunk := rd.Length - n
		if chunk > bufSize {
			chunk = bufSize
		}
		if err := c.ep.ReadBuf(p, off, out[n:n+chunk]); err != nil {
			panic(err)
		}
		n += chunk
		if err := c.ep.PushFree(p, off); err != nil {
			panic(err)
		}
	}
	c.ep.Consume(rd)
	return out
}

// Recv blocks up to timeout for the next datagram; a negative timeout
// blocks until one arrives.
func (c *UNetConduit) Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool) {
	if timeout < 0 {
		return c.gather(p, c.ep.Recv(p)), true
	}
	rd, ok := c.ep.RecvTimeout(p, timeout)
	if !ok {
		return nil, false
	}
	return c.gather(p, rd), true
}

// RecvDeadline blocks until the absolute deadline for the next datagram,
// threading the caller's reusable timeout event through the endpoint wait
// (see DeadlineConduit).
func (c *UNetConduit) RecvDeadline(p *sim.Proc, deadline time.Duration, tm sim.Timer) ([]byte, bool, sim.Timer) {
	rd, ok, tm := c.ep.RecvDeadline(p, deadline, tm)
	if !ok {
		return nil, false, tm
	}
	return c.gather(p, rd), true, tm
}

// TryRecv polls the receive queue once.
func (c *UNetConduit) TryRecv(p *sim.Proc) ([]byte, bool) {
	rd, ok := c.ep.PollRecv(p)
	if !ok {
		return nil, false
	}
	return c.gather(p, rd), true
}

func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// Endpoint exposes the underlying U-Net endpoint (for statistics and
// diagnostics).
func (c *UNetConduit) Endpoint() *unet.Endpoint { return c.ep }
