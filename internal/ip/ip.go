// Package ip implements the IP-over-U-Net layer of paper §7 and the
// plumbing shared by the UDP and TCP modules.
//
// Following §7.1/§7.5, a single U-Net communication channel carries all IP
// traffic between two applications; the sending side of IP collapses into
// the transport protocols (here: the transports call Conduit directly with
// an assembled header), there is no send-side fragmentation, and the MTU
// is 9 KB. The same transport modules also run over the in-kernel path
// model (internal/kernelpath), which is how the kernel curves of
// Figures 6-9 are produced from identical protocol logic — the performance
// difference is purely the execution environment, the paper's central
// point (§7.2).
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"unet/internal/sim"
)

// MTU is the IP-over-U-Net maximum datagram (§7.5: "IP over U-Net exports
// an MTU of 9Kbytes").
const MTU = 9 * 1024

// HeaderSize is the modeled IPv4 header (no options).
const HeaderSize = 20

// Protocol numbers.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// Errors returned by the IP layer.
var (
	ErrTooLong = errors.New("ip: datagram exceeds MTU (no send-side fragmentation, §7.5)")
	ErrClosed  = errors.New("ip: conduit closed")
)

// Header is the modeled IPv4 header: the fields the experiments exercise.
type Header struct {
	Proto    uint8
	TTL      uint8
	Length   int
	Src, Dst uint32 // host addresses
}

// Encode writes the header into buf[:HeaderSize].
func (h Header) Encode(buf []byte) {
	buf[0] = 0x45
	buf[1] = 0
	binary.BigEndian.PutUint16(buf[2:], uint16(h.Length))
	binary.BigEndian.PutUint16(buf[4:], 0)
	binary.BigEndian.PutUint16(buf[6:], 0)
	buf[8] = h.TTL
	buf[9] = h.Proto
	binary.BigEndian.PutUint16(buf[10:], 0) // header checksum elided in model
	binary.BigEndian.PutUint32(buf[12:], h.Src)
	binary.BigEndian.PutUint32(buf[16:], h.Dst)
}

// ParseHeader decodes an IPv4 header.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("ip: short header (%d bytes)", len(buf))
	}
	if buf[0] != 0x45 {
		return Header{}, fmt.Errorf("ip: bad version/IHL byte %#x", buf[0])
	}
	return Header{
		Proto:  buf[9],
		TTL:    buf[8],
		Length: int(binary.BigEndian.Uint16(buf[2:])),
		Src:    binary.BigEndian.Uint32(buf[12:]),
		Dst:    binary.BigEndian.Uint32(buf[16:]),
	}, nil
}

// Conduit moves whole IP datagrams between one pair of hosts. The U-Net
// implementation (UNetConduit) stages packets in a communication segment;
// the kernel implementation (internal/kernelpath) charges the traditional
// in-kernel path. Transports are single-threaded per conduit, polling like
// the rest of the U-Net software stack.
type Conduit interface {
	// Send transmits one datagram (header already assembled by the
	// caller).
	Send(p *sim.Proc, pkt []byte) error
	// Recv blocks up to timeout for the next datagram; ok is false on
	// timeout. A negative timeout blocks indefinitely (used by service
	// processes that wake only on arrivals).
	Recv(p *sim.Proc, timeout time.Duration) ([]byte, bool)
	// TryRecv polls without blocking.
	TryRecv(p *sim.Proc) ([]byte, bool)
	// MTU is the largest datagram accepted.
	MTU() int
	// Host identifies the local end (for cost charging and addresses).
	LocalAddr() uint32
	RemoteAddr() uint32
}

// DeadlineConduit is an optional Conduit extension for transports that
// block repeatedly against a rolling deadline (TCP's granularity-hop pump).
// RecvDeadline threads a reusable timeout event through successive waits:
// re-arming it is an O(1) scheduler operation, where the plain Recv path
// schedules and cancels a fresh event per call. Callers keep the returned
// Timer and pass it back in; Cancel it when done blocking.
type DeadlineConduit interface {
	RecvDeadline(p *sim.Proc, deadline time.Duration, tm sim.Timer) ([]byte, bool, sim.Timer)
}

// InternetChecksum is the 16-bit one's-complement sum used by UDP and TCP
// (§7.6). The cost model charges 1 µs per 100 bytes separately; this
// computes the actual value so corruption is detectable end to end.
func InternetChecksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
