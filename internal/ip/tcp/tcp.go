// Package tcp implements TCP over the ip.Conduit abstraction (paper
// §7.7-7.8): reliability through cumulative acknowledgments, flow control
// through advertised receive windows, slow start and congestion avoidance,
// fast retransmit, and a retransmission timer whose granularity is a
// configuration parameter — 1 ms for U-Net TCP versus the BSD kernel's
// 500 ms pr_slow_timeout, the mismatch §7.8 calls out.
//
// The U-Net configuration (DefaultParams) uses 2048-byte segments, an
// 8 Kbyte window and disabled delayed acknowledgments: because U-Net acks
// are cheap single-cell messages, acking every segment keeps the send
// window updated "in the most timely manner possible" and an 8 K window
// already sustains maximum bandwidth (Figure 8). The kernel configuration
// (internal/kernelpath.TCPParams) differs only in these constants.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"unet/internal/ip"
	"unet/internal/sim"
)

// HeaderSize is the TCP header (no options).
const HeaderSize = 20

// Flag bits.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagACK = 1 << 4
)

// Errors returned by the TCP layer.
var (
	ErrClosed   = errors.New("tcp: connection closed")
	ErrTimeout  = errors.New("tcp: operation timed out")
	ErrState    = errors.New("tcp: operation invalid in this state")
	ErrPeerDead = errors.New("tcp: peer unresponsive, retry limit exceeded")
)

// Params is the TCP configuration and cost model.
type Params struct {
	// MSS is the maximum segment size. §7.8: "The standard configuration
	// for U-Net TCP uses 2048 byte segments" — large segments risk whole-
	// segment loss from single dropped cells (Romanow & Floyd).
	MSS int
	// WindowBytes is the receive buffer, which is also the advertised
	// window — under U-Net "a direct reflection of the buffer space at
	// the application" (§7.4).
	WindowBytes int
	// SendBufBytes bounds buffered unacknowledged+unsent data.
	SendBufBytes int
	// TimerGranularity quantizes all protocol timers (§7.8: 1 ms for
	// U-Net TCP, 500 ms for the BSD kernel's pr_slow_timeout).
	TimerGranularity time.Duration
	// DelayedAck enables the BSD delayed-acknowledgment strategy (ack
	// every second segment or after DelayedAckDelay). U-Net TCP disables
	// it (§7.8).
	DelayedAck      bool
	DelayedAckDelay time.Duration
	// WindowScale left-shifts the advertised window (RFC 1323-style),
	// the §7.8 extension needed "across wide-area links where the high
	// latencies no longer permit the use of small windows". Both ends of
	// a connection must be configured identically (the model elides the
	// SYN option negotiation).
	WindowScale uint
	// ProcTx and ProcRx are per-segment protocol processing costs.
	// Calibrated so U-Net TCP round trips start at ~157 µs (Table 3).
	ProcTx, ProcRx time.Duration
	// Checksum enables the Internet checksum (cost per byte as UDP §7.6).
	Checksum        bool
	ChecksumPerByte time.Duration
	// MaxTimeouts bounds consecutive retransmission timeouts without ack
	// progress. Past the limit the connection is declared dead and
	// blocking operations return ErrPeerDead — the backoff already made
	// the final intervals long, so retrying forever only hides the
	// failure from the application.
	MaxTimeouts int
}

// DefaultParams returns the U-Net TCP configuration (§7.8).
func DefaultParams() Params {
	return Params{
		MSS:              2048,
		WindowBytes:      8 << 10,
		SendBufBytes:     64 << 10,
		TimerGranularity: time.Millisecond,
		DelayedAck:       false,
		DelayedAckDelay:  200 * time.Millisecond,
		ProcTx:           8 * time.Microsecond,
		ProcRx:           8 * time.Microsecond,
		Checksum:         true,
		ChecksumPerByte:  10 * time.Nanosecond,
		MaxTimeouts:      12,
	}
}

// Stats counts protocol events.
type Stats struct {
	SegsOut, SegsIn     uint64
	AcksOut, AcksIn     uint64
	Retransmits         uint64
	FastRetransmits     uint64
	Timeouts            uint64
	DupAcksIn           uint64
	OutOfOrderDropped   uint64
	BadChecksum         uint64
	WindowProbes        uint64
	DelayedAcksDeferred uint64
}

// state machine.
type state int

const (
	stClosed state = iota
	stListen
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait
	stCloseWait
	stDone
)

// Conn is one TCP connection over a conduit.
type Conn struct {
	io     ip.Conduit
	params Params
	st     state

	// dio is io's DeadlineConduit extension when available; recvTm is the
	// reusable timeout event the pump threads through successive waits so a
	// granularity hop re-arms one scheduler entry instead of scheduling and
	// canceling a fresh one. A stale armed timer is inert (detached timeouts
	// are discarded like canceled ones), so it survives across pump calls.
	dio    ip.DeadlineConduit
	recvTm sim.Timer

	localPort, remotePort uint16

	// Send sequence state.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndWnd   int
	sendQ    []byte // data buffered from sndUna onward
	sentHi   uint32 // highest sequence handed to the network (== sndNxt)
	cwnd     int
	ssthresh int
	dupAcks  int

	// Round-trip estimation (Jacobson/Karels), in microseconds.
	srtt, rttvar float64
	rtSeq        uint32
	rtStart      time.Duration
	rtActive     bool
	rtoTicks     int

	retransDeadline time.Duration
	persistDeadline time.Duration

	// Liveness: consecutive retransmission timeouts without ack progress.
	consecTimeouts int
	dead           bool

	// Receive state.
	irs         uint32
	rcvNxt      uint32
	rcvBuf      []byte
	finRcvd     bool
	finRcvdSeq  uint32
	ackPending  int
	ackDeadline time.Duration
	lastWndAdv  int

	stats Stats
}

// New creates an unconnected TCP endpoint over conduit c.
func New(c ip.Conduit, localPort, remotePort uint16, params Params) *Conn {
	if params.MSS <= 0 {
		params.MSS = 2048
	}
	if params.WindowBytes <= 0 {
		params.WindowBytes = 8 << 10
	}
	if params.SendBufBytes <= 0 {
		params.SendBufBytes = 64 << 10
	}
	if params.TimerGranularity <= 0 {
		params.TimerGranularity = time.Millisecond
	}
	if params.DelayedAckDelay <= 0 {
		params.DelayedAckDelay = 200 * time.Millisecond
	}
	if params.MaxTimeouts <= 0 {
		params.MaxTimeouts = 12
	}
	// Before the first round-trip sample the retransmission timer is
	// conservative (BSD initializes to seconds), so a long-latency path
	// does not suffer spurious timeouts during the handshake and first
	// flight.
	initTicks := int(time.Second / params.TimerGranularity)
	if initTicks < 2 {
		initTicks = 2
	}
	dio, _ := c.(ip.DeadlineConduit)
	return &Conn{
		io:         c,
		dio:        dio,
		params:     params,
		st:         stClosed,
		localPort:  localPort,
		remotePort: remotePort,
		rtoTicks:   initTicks,
	}
}

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// State reports whether the connection is established.
func (c *Conn) Established() bool { return c.st == stEstablished || c.st == stCloseWait }

// Dead reports whether the connection exhausted its retransmission retry
// budget (MaxTimeouts consecutive timeouts without ack progress).
func (c *Conn) Dead() bool { return c.dead }

// --- sequence arithmetic ---

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// --- wire format ---

type segment struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            uint8
	wnd              uint16
	payload          []byte
}

func (c *Conn) emit(p *sim.Proc, seg segment) error {
	charge(p, c.params.ProcTx)
	total := ip.HeaderSize + HeaderSize + len(seg.payload)
	pkt := make([]byte, total)
	ip.Header{
		Proto: ip.ProtoTCP, TTL: 64, Length: total,
		Src: c.io.LocalAddr(), Dst: c.io.RemoteAddr(),
	}.Encode(pkt)
	t := pkt[ip.HeaderSize:]
	binary.BigEndian.PutUint16(t[0:], seg.srcPort)
	binary.BigEndian.PutUint16(t[2:], seg.dstPort)
	binary.BigEndian.PutUint32(t[4:], seg.seq)
	binary.BigEndian.PutUint32(t[8:], seg.ack)
	t[12] = 5 << 4
	t[13] = seg.flags
	binary.BigEndian.PutUint16(t[14:], seg.wnd)
	copy(t[HeaderSize:], seg.payload)
	if c.params.Checksum {
		charge(p, time.Duration(HeaderSize+len(seg.payload))*c.params.ChecksumPerByte)
		binary.BigEndian.PutUint16(t[16:], ip.InternetChecksum(t))
	}
	c.stats.SegsOut++
	if seg.flags&flagACK != 0 && len(seg.payload) == 0 {
		c.stats.AcksOut++
	}
	return c.io.Send(p, pkt)
}

func parseSegment(pkt []byte) (segment, error) {
	if len(pkt) < ip.HeaderSize+HeaderSize {
		return segment{}, fmt.Errorf("tcp: short segment (%d bytes)", len(pkt))
	}
	t := pkt[ip.HeaderSize:]
	return segment{
		srcPort: binary.BigEndian.Uint16(t[0:]),
		dstPort: binary.BigEndian.Uint16(t[2:]),
		seq:     binary.BigEndian.Uint32(t[4:]),
		ack:     binary.BigEndian.Uint32(t[8:]),
		flags:   t[13],
		wnd:     binary.BigEndian.Uint16(t[14:]),
		payload: t[HeaderSize:],
	}, nil
}

// --- timers ---

// quantize rounds a deadline up to the next timer tick, modeling coarse
// kernel protocol timers (§7.8).
func (c *Conn) quantize(t time.Duration) time.Duration {
	g := c.params.TimerGranularity
	return (t + g - 1) / g * g
}

func (c *Conn) rto() time.Duration {
	return time.Duration(c.rtoTicks) * c.params.TimerGranularity
}

func (c *Conn) armRetransmit(p *sim.Proc) {
	c.retransDeadline = c.quantize(p.Now() + c.rto())
}

// --- receive window ---

func (c *Conn) rcvWindow() int {
	w := c.params.WindowBytes - len(c.rcvBuf)
	if w < 0 {
		w = 0
	}
	if max := 0xFFFF << c.params.WindowScale; w > max {
		w = max
	}
	return w
}

// wndField encodes a window for the 16-bit header field.
func (c *Conn) wndField(w int) uint16 { return uint16(w >> c.params.WindowScale) }

// wndValue decodes a received window field.
func (c *Conn) wndValue(f uint16) int { return int(f) << c.params.WindowScale }

// --- public API ---

// Dial performs the active open and blocks until established.
func (c *Conn) Dial(p *sim.Proc, timeout time.Duration) error {
	if c.st != stClosed {
		return ErrState
	}
	c.iss = 1000
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.st = stSynSent
	c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
		seq: c.iss, flags: flagSYN, wnd: c.wndField(c.rcvWindow())})
	c.armRetransmit(p)
	deadline := p.Now() + timeout
	for c.st != stEstablished {
		if c.dead {
			return ErrPeerDead
		}
		if p.Now() >= deadline {
			return ErrTimeout
		}
		c.pump(p, deadline-p.Now())
		c.timers(p)
	}
	return nil
}

// Accept performs the passive open and blocks until established.
func (c *Conn) Accept(p *sim.Proc, timeout time.Duration) error {
	if c.st != stClosed {
		return ErrState
	}
	c.st = stListen
	deadline := p.Now() + timeout
	for c.st != stEstablished {
		if c.dead {
			return ErrPeerDead
		}
		if p.Now() >= deadline {
			return ErrTimeout
		}
		c.pump(p, deadline-p.Now())
		c.timers(p)
	}
	return nil
}

// Write queues data for transmission, blocking (and polling) while the
// send buffer is full. It returns when all of data is buffered.
func (c *Conn) Write(p *sim.Proc, data []byte) error {
	if c.st != stEstablished && c.st != stCloseWait {
		return ErrState
	}
	for len(data) > 0 {
		if c.dead {
			return ErrPeerDead
		}
		space := c.params.SendBufBytes - len(c.sendQ)
		if space <= 0 {
			c.pump(p, c.params.TimerGranularity)
			c.timers(p)
			c.output(p)
			continue
		}
		n := min(space, len(data))
		c.sendQ = append(c.sendQ, data[:n]...)
		data = data[n:]
		c.output(p)
	}
	return nil
}

// Flush blocks until every buffered byte is acknowledged.
func (c *Conn) Flush(p *sim.Proc, timeout time.Duration) error {
	deadline := p.Now() + timeout
	for len(c.sendQ) > 0 {
		if c.dead {
			return ErrPeerDead
		}
		if p.Now() >= deadline {
			return ErrTimeout
		}
		c.output(p)
		c.pump(p, minDur(deadline-p.Now(), c.params.TimerGranularity))
		c.timers(p)
	}
	return nil
}

// Read returns up to len(buf) bytes, blocking up to timeout. n == 0 with
// nil error indicates timeout; ErrClosed reports a drained, finished
// stream.
func (c *Conn) Read(p *sim.Proc, buf []byte, timeout time.Duration) (int, error) {
	deadline := p.Now() + timeout
	for len(c.rcvBuf) == 0 {
		if c.finRcvd {
			return 0, ErrClosed
		}
		if c.dead {
			return 0, ErrPeerDead
		}
		if p.Now() >= deadline {
			return 0, nil
		}
		c.pump(p, minDur(deadline-p.Now(), c.params.TimerGranularity))
		c.timers(p)
	}
	n := copy(buf, c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	// Consuming data reopens window: advertise promptly once a segment's
	// worth (or a previously closed window) is available again, so the
	// sender never stalls into its retransmission timer (§7.4: the receive
	// window directly reflects application buffer space).
	if (c.lastWndAdv == 0 && c.rcvWindow() > 0) ||
		c.rcvWindow()-c.lastWndAdv >= c.params.MSS {
		c.sendAck(p)
	}
	return n, nil
}

// Close sends FIN after all data and waits for it to be acknowledged.
func (c *Conn) Close(p *sim.Proc, timeout time.Duration) error {
	if c.st != stEstablished && c.st != stCloseWait {
		return ErrState
	}
	if err := c.Flush(p, timeout); err != nil {
		return err
	}
	finSeq := c.sndNxt
	c.sndNxt++
	c.st = stFinWait
	c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
		seq: finSeq, ack: c.rcvNxt, flags: flagFIN | flagACK, wnd: c.wndField(c.rcvWindow())})
	c.armRetransmit(p)
	deadline := p.Now() + timeout
	for seqLT(c.sndUna, c.sndNxt) {
		if c.dead {
			return ErrPeerDead
		}
		if p.Now() >= deadline {
			return ErrTimeout
		}
		c.pump(p, minDur(deadline-p.Now(), c.params.TimerGranularity))
		c.timers(p)
	}
	c.st = stDone
	c.recvTm.Cancel()
	return nil
}

// Poll processes pending input, timers and output opportunities.
func (c *Conn) Poll(p *sim.Proc) {
	for {
		pkt, ok := c.io.TryRecv(p)
		if !ok {
			break
		}
		c.input(p, pkt)
	}
	c.timers(p)
	c.output(p)
	c.maybeAck(p)
}

// pump waits up to d for one packet and then drains. Pending
// acknowledgments are flushed before blocking: if the application produced
// reply data since the last pump they have already piggybacked, otherwise
// the peer must not wait longer than our poll interval.
func (c *Conn) pump(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		d = c.params.TimerGranularity
	}
	c.maybeAck(p)
	// Wake for a pending delayed-ack deadline even if nothing arrives.
	if c.ackPending > 0 && c.ackDeadline > 0 {
		if until := c.ackDeadline - p.Now(); until > 0 && until < d {
			d = until
		}
	}
	var pkt []byte
	var ok bool
	if c.dio != nil {
		pkt, ok, c.recvTm = c.dio.RecvDeadline(p, p.Now()+d, c.recvTm)
	} else {
		pkt, ok = c.io.Recv(p, d)
	}
	if ok {
		c.input(p, pkt)
		for {
			more, ok := c.io.TryRecv(p)
			if !ok {
				break
			}
			c.input(p, more)
		}
	}
	// No ack flush here: freshly pended acknowledgments wait for the next
	// poll boundary so application replies can piggyback them (§7.4).
	c.output(p)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// SeqLT and SeqLEQ expose the modular sequence comparisons for testing.
func SeqLT(a, b uint32) bool  { return seqLT(a, b) }
func SeqLEQ(a, b uint32) bool { return seqLEQ(a, b) }

// DebugState exposes the transmission-control variables — the §7.4 point
// that user-level protocols can surface internal state to the application
// ("retransmission counters, round trip timers, and buffer allocation
// statistics are all readily available").
func (c *Conn) DebugState() (cwnd, ssthresh, sndWnd, inflight, buffered int, srttUS float64) {
	return c.cwnd, c.ssthresh, c.sndWnd, int(c.sndNxt - c.sndUna), len(c.sendQ), c.srtt
}
