package tcp_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unet/internal/atm"
	"unet/internal/fabric"
	"unet/internal/ip/tcp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

func pair(t *testing.T, params tcp.Params) (*testbed.Testbed, *tcp.Conn, *tcp.Conn) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tb, tcp.New(ca, 5000, 80, params), tcp.New(cb, 80, 5000, params)
}

// transfer runs a bulk transfer of total bytes in chunks of writeSize and
// returns (received data, elapsed from first write to last byte read).
func transfer(t *testing.T, tb *testbed.Testbed, a, b *tcp.Conn, total, writeSize int) ([]byte, time.Duration) {
	t.Helper()
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i*13 + i>>8)
	}
	var got []byte
	var start, end time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 30*time.Second
		for len(got) < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 200*time.Millisecond)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n > 0 {
				got = append(got, buf[:n]...)
				end = p.Now()
			}
		}
		// Service the tail: a user-level TCP only acts when the application
		// drives it, so keep polling briefly to ack the final segments and
		// absorb any retransmissions.
		for k := 0; k < 300; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		start = p.Now()
		for off := 0; off < total; off += writeSize {
			hi := off + writeSize
			if hi > total {
				hi = total
			}
			if err := a.Write(p, src[off:hi]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := a.Flush(p, 20*time.Second); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatalf("data corrupted: got %d bytes, want %d", len(got), total)
	}
	return got, end - start
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	tb, a, b := pair(t, tcp.DefaultParams())
	transfer(t, tb, a, b, 1000, 1000)
	if !a.Established() || !b.Established() {
		t.Fatal("connection not established")
	}
}

func TestBulkTransfer1M(t *testing.T) {
	tb, a, b := pair(t, tcp.DefaultParams())
	_, elapsed := transfer(t, tb, a, b, 1<<20, 8192)
	bw := float64(1<<20) / elapsed.Seconds() / 1e6
	// Figure 8: U-Net TCP reaches 14-15 MB/s with an 8 KB window.
	if bw < 13.5 || bw > 15.5 {
		t.Fatalf("U-Net TCP bandwidth = %.2f MB/s, want 14-15", bw)
	}
}

func TestLossRecovery(t *testing.T) {
	tb, a, b := pair(t, tcp.DefaultParams())
	// Drop a handful of cells mid-stream on B's downlink: whole segments
	// vanish (AAL5) and TCP must recover.
	i := 0
	tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
		i++
		return i >= 100 && i < 103
	})
	transfer(t, tb, a, b, 128<<10, 8192)
	st := a.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
}

func TestFastRetransmitBeatsTimer(t *testing.T) {
	params := tcp.DefaultParams()
	params.WindowBytes = 16 << 10 // keep ≥ 4 segments in flight behind a loss
	tb, a, b := pair(t, params)
	i := 0
	tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
		i++
		return i == 1500 // one lost cell mid-stream → one lost segment, window open
	})
	_, elapsed := transfer(t, tb, a, b, 128<<10, 8192)
	st := a.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("expected a fast retransmit, stats %+v", st)
	}
	// Recovery must not have cost a full coarse timeout.
	if elapsed > 50*time.Millisecond {
		t.Fatalf("transfer took %v — recovered by timeout, not fast retransmit", elapsed)
	}
}

func TestCoarseTimerHurtsRecovery(t *testing.T) {
	// §7.8: with BSD's 500 ms pr_slow_timeout, a loss the fast-retransmit
	// logic cannot repair (a lost retransmission) stalls the connection
	// for ~a second. Compare 1 ms vs 500 ms granularity under identical
	// double loss.
	run := func(gran time.Duration) time.Duration {
		params := tcp.DefaultParams()
		params.TimerGranularity = gran
		tb, a, b := pair(t, params)
		i := 0
		tb.Fabric.Downlink(1).SetLossFunc(func(atm.Cell) bool {
			i++
			// Lose a segment and its fast retransmission.
			return i >= 100 && i < 200
		})
		_, elapsed := transfer(t, tb, a, b, 64<<10, 8192)
		return elapsed
	}
	fine := run(time.Millisecond)
	coarse := run(500 * time.Millisecond)
	if coarse < 10*fine {
		t.Fatalf("coarse timer recovery %v not ≫ fine %v", coarse, fine)
	}
	if coarse < 400*time.Millisecond {
		t.Fatalf("coarse-timer recovery %v should include a ~500ms+ stall", coarse)
	}
}

func TestWindowLimitsThroughput(t *testing.T) {
	// Shrinking the window below the bandwidth-delay product must cut
	// bandwidth (the premise of Figure 8's window sweep).
	small := tcp.DefaultParams()
	small.WindowBytes = 2048
	tb1, a1, b1 := pair(t, small)
	_, e1 := transfer(t, tb1, a1, b1, 128<<10, 8192)

	big := tcp.DefaultParams()
	tb2, a2, b2 := pair(t, big)
	_, e2 := transfer(t, tb2, a2, b2, 128<<10, 8192)
	if e1 <= e2 {
		t.Fatalf("2K window (%v) not slower than 8K window (%v)", e1, e2)
	}
	bwSmall := float64(128<<10) / e1.Seconds() / 1e6
	if bwSmall > 8 {
		t.Fatalf("2K-window bandwidth %.2f MB/s suspiciously high", bwSmall)
	}
}

func TestZeroWindowAndProbe(t *testing.T) {
	// A slow reader closes the window; the sender must survive via window
	// updates (and probes) without data loss.
	params := tcp.DefaultParams()
	params.WindowBytes = 4096
	tb, a, b := pair(t, params)
	total := 64 << 10
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i)
	}
	var got []byte
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 1024)
		for len(got) < total {
			p.Sleep(300 * time.Microsecond) // slow consumer
			n, err := b.Read(p, buf, 100*time.Millisecond)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, buf[:n]...)
		}
		for k := 0; k < 300; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		if err := a.Write(p, src); err != nil {
			t.Error(err)
		}
		if err := a.Flush(p, time.Second); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatalf("slow-reader transfer corrupted (%d bytes)", len(got))
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	tb, a, b := pair(t, tcp.DefaultParams())
	var readErr error
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 100)
		n, _ := b.Read(p, buf, 50*time.Millisecond)
		if n != 5 {
			t.Errorf("read %d bytes, want 5", n)
		}
		_, readErr = b.Read(p, buf, 50*time.Millisecond)
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		a.Write(p, []byte("hello"))
		if err := a.Close(p, 100*time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if !errors.Is(readErr, tcp.ErrClosed) {
		t.Fatalf("read after FIN: %v, want ErrClosed", readErr)
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	run := func(delayed bool) uint64 {
		params := tcp.DefaultParams()
		params.DelayedAck = delayed
		tb, a, b := pair(t, params)
		transfer(t, tb, a, b, 64<<10, 8192)
		return b.Stats().AcksOut
	}
	eager := run(false)
	lazy := run(true)
	if lazy >= eager {
		t.Fatalf("delayed acks (%d) not fewer than eager acks (%d)", lazy, eager)
	}
}

func TestSlowStartRampsCwnd(t *testing.T) {
	tb, a, b := pair(t, tcp.DefaultParams())
	transfer(t, tb, a, b, 64<<10, 8192)
	st := a.Stats()
	if st.Timeouts != 0 {
		t.Fatalf("clean transfer suffered %d timeouts", st.Timeouts)
	}
	if st.SegsOut < 32 {
		t.Fatalf("SegsOut = %d, want ≥ 32 for 64 KB at 2 KB MSS", st.SegsOut)
	}
}

func TestUNetTCPSmallMessageRTT(t *testing.T) {
	// Table 3: TCP round-trip latency 157 µs for small messages.
	tb, a, b := pair(t, tcp.DefaultParams())
	const rounds = 40
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		for i := 0; i < rounds+1; i++ {
			n := 0
			for n < 4 {
				m, err := b.Read(p, buf[n:4], 100*time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				n += m
			}
			b.Write(p, buf[:4])
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			a.Write(p, []byte{1, 2, 3, 4})
			n := 0
			for n < 4 {
				m, err := a.Read(p, buf[n:4], 100*time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				n += m
			}
		}
		rtt = (p.Now() - start) / rounds
	})
	tb.Eng.Run()
	us := float64(rtt) / float64(time.Microsecond)
	if us < 157*0.95 || us > 157*1.05 {
		t.Fatalf("TCP small-message RTT = %.1f µs, want 157 ± 5%%", us)
	}
}

// wanPair builds a TCP pair over a long-latency path (a metropolitan /
// wide-area fiber), where the bandwidth-delay product exceeds the 16-bit
// window field — the §7.8 scenario for window scaling.
func wanPair(t *testing.T, params tcp.Params, propagation time.Duration) (*testbed.Testbed, *tcp.Conn, *tcp.Conn) {
	t.Helper()
	lp := fabric.DefaultLinkParams()
	lp.Propagation = propagation
	tb := testbed.New(testbed.Config{Hosts: 2, Link: &lp})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tb, tcp.New(ca, 5000, 80, params), tcp.New(cb, 80, 5000, params)
}

func TestWindowScaleSustainsWANBandwidth(t *testing.T) {
	// 4 ms propagation per hop (host-switch-host) → ~16 ms RTT → BDP ≈
	// 15 MB/s × 16 ms = 240 KB, far beyond the 64 KB unscaled maximum.
	const prop = 4 * time.Millisecond
	run := func(window int, scale uint) float64 {
		params := tcp.DefaultParams()
		params.WindowBytes = window
		params.WindowScale = scale
		params.SendBufBytes = 768 << 10
		tb, a, b := wanPair(t, params, prop)
		const total = 8 << 20
		_, elapsed := transfer(t, tb, a, b, total, 16384)
		return float64(total) / elapsed.Seconds() / 1e6
	}
	unscaled := run(60<<10, 0)
	scaled := run(384<<10, 3)
	// Unscaled: capped near window/RTT = 60 KB / 16 ms ≈ 3.7 MB/s.
	if unscaled > 5 {
		t.Errorf("unscaled WAN bandwidth %.2f MB/s too high — window cap missing", unscaled)
	}
	// Scaled: the 384 KB window covers the BDP and the fiber limits again.
	if scaled < 11 {
		t.Errorf("scaled WAN bandwidth %.2f MB/s — window scaling ineffective", scaled)
	}
	if scaled < 2*unscaled {
		t.Errorf("window scaling gained too little: %.2f vs %.2f MB/s", scaled, unscaled)
	}
}

func TestWindowScaleLANUnchanged(t *testing.T) {
	// On the LAN the scaled configuration must not disturb the calibrated
	// behaviour.
	params := tcp.DefaultParams()
	params.WindowScale = 2
	params.WindowBytes = 8 << 10
	tb, a, b := pair(t, params)
	_, elapsed := transfer(t, tb, a, b, 256<<10, 8192)
	bw := float64(256<<10) / elapsed.Seconds() / 1e6
	if bw < 13.5 || bw > 15.5 {
		t.Fatalf("LAN bandwidth with scaling = %.2f MB/s, want 14-15", bw)
	}
}
