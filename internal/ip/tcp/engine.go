package tcp

import (
	"time"

	"unet/internal/ip"
	"unet/internal/sim"
)

// This file holds the protocol engine: segment input processing,
// congestion control, the output routine and the timer machinery.

// input processes one arriving IP packet.
func (c *Conn) input(p *sim.Proc, pkt []byte) {
	hdr, err := ip.ParseHeader(pkt)
	if err != nil || hdr.Proto != ip.ProtoTCP {
		return
	}
	seg, err := parseSegment(pkt)
	if err != nil {
		return
	}
	charge(p, c.params.ProcRx)
	if c.params.Checksum {
		charge(p, time.Duration(HeaderSize+len(seg.payload))*c.params.ChecksumPerByte)
		t := pkt[ip.HeaderSize:]
		want := uint16(t[16])<<8 | uint16(t[17])
		t[16], t[17] = 0, 0
		if got := ip.InternetChecksum(t); got != want {
			c.stats.BadChecksum++
			return
		}
	}
	if seg.dstPort != c.localPort {
		return
	}
	c.stats.SegsIn++

	switch c.st {
	case stListen:
		if seg.flags&flagSYN != 0 {
			c.irs = seg.seq
			c.rcvNxt = seg.seq + 1
			c.iss = 2000
			c.sndUna, c.sndNxt = c.iss, c.iss+1
			c.sndWnd = c.wndValue(seg.wnd)
			c.st = stSynRcvd
			c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
				seq: c.iss, ack: c.rcvNxt, flags: flagSYN | flagACK, wnd: c.wndField(c.rcvWindow())})
			c.armRetransmit(p)
		}
		return
	case stSynSent:
		if seg.flags&flagSYN != 0 && seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.irs = seg.seq
			c.rcvNxt = seg.seq + 1
			c.sndUna = seg.ack
			c.sndWnd = c.wndValue(seg.wnd)
			c.establish()
			c.sendAck(p)
		}
		return
	case stSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.sndUna = seg.ack
			c.sndWnd = c.wndValue(seg.wnd)
			c.establish()
			// fall through to process any piggybacked payload
		}
	}

	if seg.flags&flagACK != 0 {
		c.processAck(p, seg)
	}
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		c.processData(p, seg)
	}
}

// establish finalizes the handshake: congestion window opens at one
// segment (slow start).
func (c *Conn) establish() {
	c.st = stEstablished
	c.cwnd = c.params.MSS
	// Initial slow-start threshold is effectively unbounded (BSD uses the
	// maximum window): the peer's advertised window, not an arbitrary
	// constant, should end slow start on a loss-free path.
	c.ssthresh = 1 << 30
	c.retransDeadline = 0
	c.lastWndAdv = c.rcvWindow()
}

// processAck handles acknowledgment, window update, congestion control and
// round-trip measurement.
func (c *Conn) processAck(p *sim.Proc, seg segment) {
	c.stats.AcksIn++
	c.sndWnd = c.wndValue(seg.wnd)
	ack := seg.ack
	if seqLEQ(ack, c.sndUna) {
		if ack == c.sndUna && len(c.sendQ) > 0 && seqLT(c.sndUna, c.sndNxt) {
			c.stats.DupAcksIn++
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit(p)
			}
		}
		return
	}
	if seqLT(c.sndNxt, ack) {
		return // acks something never sent
	}
	acked := int(ack - c.sndUna)
	c.sndUna = ack
	c.dupAcks = 0
	c.consecTimeouts = 0 // ack progress refills the retry budget
	if acked <= len(c.sendQ) {
		c.sendQ = c.sendQ[acked:]
	} else {
		c.sendQ = nil // SYN/FIN sequence space
	}
	// RTT sample (Karn: only for segments never retransmitted — rtActive
	// is cleared on any retransmission).
	if c.rtActive && seqLT(c.rtSeq, ack) {
		c.updateRTT(float64(p.Now()-c.rtStart) / float64(time.Microsecond))
		c.rtActive = false
	}
	// Congestion control: slow start below ssthresh, linear above.
	if c.cwnd < c.ssthresh {
		c.cwnd += c.params.MSS
	} else {
		c.cwnd += c.params.MSS * c.params.MSS / c.cwnd
	}
	if seqLT(c.sndUna, c.sndNxt) {
		c.armRetransmit(p)
	} else {
		c.retransDeadline = 0
		c.persistDeadline = 0
	}
	c.output(p)
}

// updateRTT applies the Jacobson/Karels estimator and rounds the RTO up to
// timer ticks — with a 500 ms granularity the RTO is never less than a
// full second after the first backoff, the §7.8 pathology.
func (c *Conn) updateRTT(sampleUS float64) {
	if c.srtt == 0 {
		c.srtt = sampleUS
		c.rttvar = sampleUS / 2
	} else {
		err := sampleUS - c.srtt
		c.srtt += err / 8
		if err < 0 {
			err = -err
		}
		c.rttvar += (err - c.rttvar) / 4
	}
	rtoUS := c.srtt + 4*c.rttvar
	g := float64(c.params.TimerGranularity) / float64(time.Microsecond)
	ticks := int(rtoUS/g) + 1
	if ticks < 2 {
		ticks = 2
	}
	c.rtoTicks = ticks
}

// processData handles in-sequence payload and FIN. Out-of-order segments
// are dropped (the cumulative-ack retransmission recovers them) with an
// immediate duplicate ack.
func (c *Conn) processData(p *sim.Proc, seg segment) {
	seqEnd := seg.seq + uint32(len(seg.payload))
	switch {
	case seg.seq == c.rcvNxt:
		accept := len(seg.payload)
		if room := c.params.WindowBytes - len(c.rcvBuf); accept > room {
			accept = room
		}
		if accept > 0 {
			c.rcvBuf = append(c.rcvBuf, seg.payload[:accept]...)
			c.rcvNxt += uint32(accept)
		}
		if accept < len(seg.payload) {
			// Window overrun: the excess is dropped and will be resent.
			c.sendAck(p)
			return
		}
		if seg.flags&flagFIN != 0 && seqEnd == c.rcvNxt {
			c.finRcvd = true
			c.rcvNxt++
			c.st = stCloseWait
			c.sendAck(p)
			return
		}
		// Do not ack inline: the acknowledgment is deferred to the next
		// poll boundary so that application data written in the meantime
		// piggybacks it — the §7.4 advantage of integrating the protocol
		// with the application. Under the delayed-ack policy the flush
		// additionally waits for a second segment or the 200 ms timer.
		c.ackPending++
		if c.params.DelayedAck && c.ackPending < 2 {
			c.stats.DelayedAcksDeferred++
			if c.ackDeadline == 0 {
				// Delayed acks ride the BSD pr_fast_timeout (200 ms), not
				// the coarse slow timer (§7.8).
				g := c.params.DelayedAckDelay
				c.ackDeadline = (p.Now()/g + 1) * g
			}
		}
	case seqLT(seg.seq, c.rcvNxt):
		// Duplicate (retransmission overlap): re-ack.
		c.sendAck(p)
	default:
		// Out of order: drop and emit a duplicate ack.
		c.stats.OutOfOrderDropped++
		c.sendAck(p)
	}
}

// sendAck emits a pure acknowledgment with the current window.
func (c *Conn) sendAck(p *sim.Proc) {
	c.ackPending = 0
	c.ackDeadline = 0
	c.lastWndAdv = c.rcvWindow()
	c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
		seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK, wnd: c.wndField(c.lastWndAdv)})
}

// maybeAck flushes a pending acknowledgment at a poll boundary: promptly
// when delayed acks are off, and on the every-second-segment / 200 ms rule
// when they are on.
func (c *Conn) maybeAck(p *sim.Proc) {
	if c.ackPending == 0 {
		return
	}
	if !c.params.DelayedAck || c.ackPending >= 2 ||
		(c.ackDeadline != 0 && p.Now() >= c.ackDeadline) {
		c.sendAck(p)
	}
}

// output transmits as much buffered data as the send window, congestion
// window and MSS allow.
func (c *Conn) output(p *sim.Proc) {
	if c.st != stEstablished && c.st != stCloseWait && c.st != stFinWait {
		return
	}
	for {
		inflight := int(c.sndNxt - c.sndUna)
		unsent := len(c.sendQ) - inflight
		if unsent <= 0 {
			return
		}
		wnd := min(c.sndWnd, c.cwnd)
		avail := wnd - inflight
		if avail <= 0 {
			if c.sndWnd == 0 && c.persistDeadline == 0 {
				c.persistDeadline = c.quantize(p.Now() + c.rto())
			}
			return
		}
		n := min(min(unsent, avail), c.params.MSS)
		seq := c.sndNxt
		payload := c.sendQ[inflight : inflight+n]
		if !c.rtActive {
			c.rtActive = true
			c.rtSeq = seq
			c.rtStart = p.Now()
		}
		c.sndNxt += uint32(n)
		c.ackPending = 0 // piggybacked
		c.lastWndAdv = c.rcvWindow()
		c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
			seq: seq, ack: c.rcvNxt, flags: flagACK, wnd: c.wndField(c.lastWndAdv), payload: payload})
		if c.retransDeadline == 0 {
			c.armRetransmit(p)
		}
	}
}

// timers fires the retransmission and persist timers. Acknowledgments are
// deliberately not flushed here — they wait for the next poll boundary so
// that application replies can piggyback them.
func (c *Conn) timers(p *sim.Proc) {
	now := p.Now()
	if c.retransDeadline != 0 && now >= c.retransDeadline {
		c.timeout(p)
	}
	if c.persistDeadline != 0 && now >= c.persistDeadline {
		c.windowProbe(p)
	}
}

// timeout implements the retransmission timeout: multiplicative backoff,
// slow-start restart, go-back-N from the last cumulative ack.
func (c *Conn) timeout(p *sim.Proc) {
	c.stats.Timeouts++
	inflight := int(c.sndNxt - c.sndUna)
	if inflight <= 0 && c.st == stEstablished {
		c.retransDeadline = 0
		return
	}
	c.consecTimeouts++
	if c.consecTimeouts > c.params.MaxTimeouts {
		// The retry budget is spent: the peer is unreachable. Stop the
		// timers and let the blocking operations surface ErrPeerDead.
		c.dead = true
		c.retransDeadline = 0
		c.persistDeadline = 0
		return
	}
	c.ssthresh = maxInt(inflight/2, 2*c.params.MSS)
	c.cwnd = c.params.MSS
	c.rtActive = false
	// Duplicate acks counted before the timeout refer to the flight we are
	// about to resend; left in place they could trigger a bogus fast
	// retransmit on the first post-recovery duplicate.
	c.dupAcks = 0
	if c.rtoTicks < 1<<16 {
		c.rtoTicks *= 2
	}
	c.stats.Retransmits++
	switch c.st {
	case stSynSent, stSynRcvd, stFinWait:
		// Control flags (and any trailing data) are resent explicitly;
		// the FIN case keeps its sequence accounting intact.
		c.retransmitHead(p)
	default:
		// Go back N: everything past the last cumulative acknowledgment
		// is presumed lost (the receiver discards out-of-order segments),
		// so pull snd_nxt back and let output stream the window again.
		c.sndNxt = c.sndUna
		c.output(p)
	}
	c.armRetransmit(p)
}

// fastRetransmit resends the lost segment after three duplicate acks
// without waiting for the (coarse) timer.
func (c *Conn) fastRetransmit(p *sim.Proc) {
	c.stats.FastRetransmits++
	c.ssthresh = maxInt(int(c.sndNxt-c.sndUna)/2, 2*c.params.MSS)
	c.cwnd = c.ssthresh
	c.rtActive = false
	c.retransmitHead(p)
	c.armRetransmit(p)
}

// retransmitHead resends the first unacknowledged segment (or control
// flag).
func (c *Conn) retransmitHead(p *sim.Proc) {
	c.stats.Retransmits++
	switch c.st {
	case stSynSent:
		c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
			seq: c.iss, flags: flagSYN, wnd: c.wndField(c.rcvWindow())})
		return
	case stSynRcvd:
		c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
			seq: c.iss, ack: c.rcvNxt, flags: flagSYN | flagACK, wnd: c.wndField(c.rcvWindow())})
		return
	}
	n := min(len(c.sendQ), c.params.MSS)
	if n == 0 {
		if c.st == stFinWait {
			c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
				seq: c.sndNxt - 1, ack: c.rcvNxt, flags: flagFIN | flagACK, wnd: c.wndField(c.rcvWindow())})
		}
		return
	}
	c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
		seq: c.sndUna, ack: c.rcvNxt, flags: flagACK, wnd: c.wndField(c.rcvWindow()),
		payload: c.sendQ[:n]})
}

// windowProbe sends one byte beyond the closed window to solicit a window
// update (the BSD persist behaviour).
func (c *Conn) windowProbe(p *sim.Proc) {
	c.persistDeadline = c.quantize(p.Now() + c.rto())
	inflight := int(c.sndNxt - c.sndUna)
	if len(c.sendQ)-inflight <= 0 || c.sndWnd > 0 {
		c.persistDeadline = 0
		return
	}
	c.stats.WindowProbes++
	c.emit(p, segment{srcPort: c.localPort, dstPort: c.remotePort,
		seq: c.sndNxt, ack: c.rcvNxt, flags: flagACK, wnd: c.wndField(c.rcvWindow()),
		payload: c.sendQ[inflight : inflight+1]})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
