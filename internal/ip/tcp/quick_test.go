package tcp_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"unet/internal/atm"
	"unet/internal/ip/tcp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

// Property: for arbitrary write-size sequences and arbitrary (bounded)
// cell-loss patterns, the byte stream arrives intact and in order.
func TestStreamIntegrityProperty(t *testing.T) {
	prop := func(seed int64, lossPct uint8, sizes []uint16) bool {
		// Cell loss amplifies through AAL5: one lost cell discards the
		// whole segment (§7.8), so a 2 KB segment (44 cells) sees
		// 1-(1-r)^44 segment loss. Keep r in the sub-percent range the
		// protocol can realistically recover from.
		rate := float64(lossPct%10) / 1000 // 0-0.9% cell loss
		if len(sizes) == 0 {
			sizes = []uint16{1}
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		total := 0
		var src []byte
		for i, sz := range sizes {
			n := int(sz)%6000 + 1
			total += n
			chunk := make([]byte, n)
			for j := range chunk {
				chunk[j] = byte(i*31 + j)
			}
			src = append(src, chunk...)
		}

		tb := testbed.New(testbed.Config{Hosts: 2, Seed: seed})
		defer tb.Close()
		ca, cb, err := tb.NewIPConduitPair(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		a := tcp.New(ca, 5000, 80, tcp.DefaultParams())
		b := tcp.New(cb, 80, 5000, tcp.DefaultParams())
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		loss := func(atm.Cell) bool { return rng.Float64() < rate }
		tb.Fabric.Downlink(0).SetLossFunc(loss)
		tb.Fabric.Downlink(1).SetLossFunc(loss)

		var got []byte
		tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
			if err := b.Accept(p, 5*time.Second); err != nil {
				return
			}
			buf := make([]byte, 32<<10)
			deadline := p.Now() + 60*time.Second
			for len(got) < total && p.Now() < deadline {
				n, err := b.Read(p, buf, 500*time.Millisecond)
				if err != nil {
					return
				}
				got = append(got, buf[:n]...)
			}
			for k := 0; k < 80; k++ {
				b.Poll(p)
				p.Sleep(time.Millisecond)
			}
		})
		tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
			if err := a.Dial(p, 5*time.Second); err != nil {
				return
			}
			off := 0
			for _, sz := range sizes {
				n := int(sz)%6000 + 1
				if err := a.Write(p, src[off:off+n]); err != nil {
					return
				}
				off += n
			}
			a.Flush(p, 60*time.Second)
		})
		tb.Eng.Run()
		if !bytes.Equal(got, src) {
			t.Logf("seed=%d rate=%.2f total=%d: got %d bytes (retrans=%d timeouts=%d)",
				seed, rate, total, len(got), a.Stats().Retransmits, a.Stats().Timeouts)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence arithmetic survives wraparound — a long transfer that
// crosses the 32-bit sequence space boundary stays correct. (The initial
// sequence number is near the top of the space via a connection that has
// already moved its window; modeled by transferring > 2^32 bytes being
// impractical, we instead check the helpers directly.)
func TestSeqArithmeticWraparound(t *testing.T) {
	if !tcp.SeqLT(0xFFFFFF00, 0x00000010) {
		t.Fatal("seqLT fails across wraparound")
	}
	if tcp.SeqLT(0x00000010, 0xFFFFFF00) {
		t.Fatal("seqLT inverted across wraparound")
	}
	if !tcp.SeqLEQ(5, 5) {
		t.Fatal("seqLEQ not reflexive")
	}
}
