package tcp_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"unet/internal/faults"
	"unet/internal/ip/tcp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

// tcpLossResult is everything the seeded-loss golden compares across
// shard counts.
type tcpLossResult struct {
	ok    bool
	data  []byte
	stats tcp.Stats
}

// runTCPNthCellLoss transfers 32 KB with exactly one downlink cell
// dropped mid-PDU: the AAL5 CRC-32 then discards the whole segment at
// the NIC and TCP must recover by retransmission.
func runTCPNthCellLoss(t *testing.T, shards int) tcpLossResult {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2, Shards: shards})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tcp.New(ca, 5000, 80, tcp.DefaultParams()), tcp.New(cb, 80, 5000, tcp.DefaultParams())
	tb.Fabric.Downlink(1).SetInjector(faults.NewNthCell(50))

	const total = 32 << 10
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i*13 + i>>8)
	}
	var res tcpLossResult
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 10*time.Second
		for len(res.data) < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 100*time.Millisecond)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			res.data = append(res.data, buf[:n]...)
		}
		for k := 0; k < 50; k++ { // ack the tail
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		if err := a.Write(p, src); err != nil {
			t.Error(err)
			return
		}
		if err := a.Flush(p, 10*time.Second); err != nil {
			t.Error(err)
			return
		}
		res.ok = true
	})
	tb.Eng.Run()
	res.stats = a.Stats()

	if !res.ok || !bytes.Equal(res.data, src) {
		t.Fatalf("shards=%d: transfer incomplete (ok=%v, %d/%d bytes intact)",
			shards, res.ok, len(res.data), total)
	}
	return res
}

// TestSeededLossNthCellGolden is the TCP seeded-loss golden: one dropped
// cell kills one segment, TCP recovers it, the full byte stream arrives
// intact, and the recovery (retransmit counts included) is identical at
// every shard count.
func TestSeededLossNthCellGolden(t *testing.T) {
	base := runTCPNthCellLoss(t, 0)
	if base.stats.Retransmits+base.stats.FastRetransmits == 0 {
		t.Fatal("no retransmissions despite a dropped data segment")
	}
	if base.stats.Retransmits > 8 {
		t.Fatalf("Retransmits = %d for a single lost segment, want a bounded recovery", base.stats.Retransmits)
	}
	for _, shards := range []int{1, 2, 4} {
		got := runTCPNthCellLoss(t, shards)
		if got.stats != base.stats {
			t.Fatalf("shards=%d stats %+v differ from serial %+v", shards, got.stats, base.stats)
		}
	}
}

// TestDeadPeerFailsInBoundedTime pins the TCP retry cap: a peer that
// stops servicing its connection after the handshake must surface
// ErrPeerDead after MaxTimeouts backed-off retransmission timeouts, in
// bounded virtual time, instead of retransmitting forever.
func TestDeadPeerFailsInBoundedTime(t *testing.T) {
	params := tcp.DefaultParams()
	params.MaxTimeouts = 5
	tb, a, b := pair(t, params)

	var flushErr error
	var deadAfter time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		// Service one small exchange (this also gives the client's RTT
		// estimator a sample, pulling its RTO down from the conservative
		// pre-handshake second), then stop: the peer never services the
		// connection again.
		buf := make([]byte, 4<<10)
		got := 0
		for got < 2048 {
			n, err := b.Read(p, buf, 100*time.Millisecond)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got += n
		}
		for k := 0; k < 10; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		if err := a.Write(p, make([]byte, 2048)); err != nil {
			t.Error(err)
			return
		}
		if err := a.Flush(p, time.Second); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(20 * time.Millisecond) // let the server's poll tail finish
		start := p.Now()
		if err := a.Write(p, make([]byte, 4<<10)); err != nil && !errors.Is(err, tcp.ErrPeerDead) {
			t.Error(err)
			return
		}
		flushErr = a.Flush(p, time.Hour)
		deadAfter = p.Now() - start
	})
	tb.Eng.Run()

	if !errors.Is(flushErr, tcp.ErrPeerDead) {
		t.Fatalf("Flush to a dead peer returned %v, want ErrPeerDead", flushErr)
	}
	if !a.Dead() {
		t.Fatal("Dead() = false after the retry budget was spent")
	}
	// 5 timeouts with doubling RTO starting from ~2 ticks of 1 ms each:
	// well under a second of virtual time, nowhere near the 1 h budget.
	if deadAfter > time.Second {
		t.Fatalf("peer declared dead after %v, want bounded well under 1s", deadAfter)
	}
	if got := a.Stats().Timeouts; got < 5 {
		t.Fatalf("Timeouts = %d, want at least MaxTimeouts = 5", got)
	}

	// Later blocking calls fail immediately rather than stalling again.
	var again error
	tb.Hosts[0].Spawn("cli2", func(p *sim.Proc) {
		again = a.Write(p, []byte("more"))
	})
	tb.Eng.Run()
	if !errors.Is(again, tcp.ErrPeerDead) {
		t.Fatalf("Write after death returned %v, want ErrPeerDead", again)
	}
}

// TestTimeoutClearsStaleDupAcks pins the recovery-path fix: duplicate
// acks counted before a retransmission timeout belong to the old flight
// and must not accumulate toward a bogus fast retransmit afterwards.
func TestTimeoutClearsStaleDupAcks(t *testing.T) {
	// Two separated losses in the same transfer: the first is recovered
	// (building up duplicate-ack state), the second forces a timeout. If
	// the dup-ack counter survived the timeout, the post-recovery
	// duplicates would fire a spurious fast retransmit of already-acked
	// data. The assertion is indirect but tight: the transfer completes
	// byte-identically with a bounded retransmission count.
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := tcp.DefaultParams()
	a, b := tcp.New(ca, 5000, 80, params), tcp.New(cb, 80, 5000, params)
	ch := faults.NewChain(faults.NewNthCell(50), faults.NewNthCell(200))
	tb.Fabric.Downlink(1).SetInjector(ch)

	const total = 48 << 10
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var got []byte
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if err := b.Accept(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64<<10)
		deadline := p.Now() + 10*time.Second
		for len(got) < total && p.Now() < deadline {
			n, err := b.Read(p, buf, 100*time.Millisecond)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, buf[:n]...)
		}
		for k := 0; k < 50; k++ {
			b.Poll(p)
			p.Sleep(time.Millisecond)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := a.Dial(p, 100*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		if err := a.Write(p, src); err != nil {
			t.Error(err)
			return
		}
		if err := a.Flush(p, 10*time.Second); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()

	if !bytes.Equal(got, src) {
		t.Fatalf("transfer corrupted: %d/%d bytes intact", len(got), total)
	}
	st := a.Stats()
	if ch.Stats().Dropped != 2 {
		t.Fatalf("injector dropped %d cells, want 2", ch.Stats().Dropped)
	}
	if st.Retransmits+st.FastRetransmits == 0 {
		t.Fatal("no retransmissions despite two dropped segments")
	}
	if st.Retransmits+st.FastRetransmits > 12 {
		t.Fatalf("%d retransmits for two lost segments: recovery is not bounded",
			st.Retransmits+st.FastRetransmits)
	}
}
