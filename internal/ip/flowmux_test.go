package ip_test

import (
	"bytes"
	"testing"
	"time"

	"unet/internal/ip"
	"unet/internal/ip/tcp"
	"unet/internal/ip/udp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

func muxPair(t *testing.T) (*testbed.Testbed, *ip.FlowMux, *ip.FlowMux) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tb, ip.NewFlowMux(ca), ip.NewFlowMux(cb)
}

func TestFlowLabelRoundTrip(t *testing.T) {
	pkt := make([]byte, ip.HeaderSize+10)
	ip.Header{Proto: ip.ProtoUDP, Length: len(pkt), Src: 1, Dst: 2}.Encode(pkt)
	ip.SetFlowLabel(pkt, 0xABCDEF)
	if got := ip.FlowLabel(pkt); got != 0xABCDEF {
		t.Fatalf("FlowLabel = %#x, want 0xABCDEF", got)
	}
	// The label must not corrupt the fields the stacks parse.
	hdr, err := ip.ParseHeader(pkt)
	if err != nil || hdr.Src != 1 || hdr.Dst != 2 || hdr.Proto != ip.ProtoUDP {
		t.Fatalf("header corrupted by flow label: %+v, %v", hdr, err)
	}
}

func TestFlowDemultiplexing(t *testing.T) {
	tb, ma, mb := muxPair(t)
	fa1, _ := ma.Open(1)
	fa2, _ := ma.Open(2)
	fb1, _ := mb.Open(1)
	fb2, _ := mb.Open(2)

	// Two independent UDP stacks share the single U-Net channel.
	sa1 := udp.NewStack(fa1, udp.DefaultParams())
	sa2 := udp.NewStack(fa2, udp.DefaultParams())
	sb1 := udp.NewStack(fb1, udp.DefaultParams())
	sb2 := udp.NewStack(fb2, udp.DefaultParams())
	ska1, _ := sa1.Bind(10, 0)
	ska2, _ := sa2.Bind(10, 0)
	skb1, _ := sb1.Bind(20, 0)
	skb2, _ := sb2.Bind(20, 0)

	var got1, got2 []byte
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		got1, _, _ = skb1.RecvFrom(p, 10*time.Millisecond)
		got2, _, _ = skb2.RecvFrom(p, 10*time.Millisecond)
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		ska1.SendTo(p, 20, []byte("flow one"))
		ska2.SendTo(p, 20, []byte("flow two"))
	})
	tb.Eng.Run()
	if string(got1) != "flow one" || string(got2) != "flow two" {
		t.Fatalf("demux failed: %q / %q", got1, got2)
	}
	if st := mb.Stats(); st.Dispatched != 2 || st.Fallback != 0 {
		t.Fatalf("mux stats %+v", st)
	}
}

func TestUnresolvedFlowFallsBackToKernel(t *testing.T) {
	// §7.1: packets whose tag does not resolve go to the kernel endpoint.
	tb, ma, mb := muxPair(t)
	fa9, _ := ma.Open(9) // sender side only; receiver never opens flow 9
	fb1, _ := mb.Open(1)
	var kernelGot []byte
	mb.SetFallback(func(p *sim.Proc, pkt []byte) {
		kernelGot = append([]byte(nil), pkt...)
	})
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		fb1.Recv(p, 5*time.Millisecond) // pumps the shared channel
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		pkt := make([]byte, ip.HeaderSize+4)
		ip.Header{Proto: ip.ProtoUDP, Length: len(pkt), Src: fa9.LocalAddr(), Dst: fa9.RemoteAddr()}.Encode(pkt)
		copy(pkt[ip.HeaderSize:], "orph")
		if err := fa9.Send(p, pkt); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.Run()
	if kernelGot == nil {
		t.Fatal("unresolved flow not handed to the kernel fallback")
	}
	if ip.FlowLabel(kernelGot) != 9 {
		t.Fatalf("fallback packet has flow %d, want 9", ip.FlowLabel(kernelGot))
	}
	if st := mb.Stats(); st.Fallback != 1 {
		t.Fatalf("mux stats %+v, want 1 fallback", st)
	}
}

func TestTwoTCPConnectionsShareOneChannel(t *testing.T) {
	// The pay-off of flow demultiplexing: multiple TCP connections over a
	// single pair of U-Net endpoints, without per-connection channels.
	tb, ma, mb := muxPair(t)
	fa1, _ := ma.Open(1)
	fa2, _ := ma.Open(2)
	fb1, _ := mb.Open(1)
	fb2, _ := mb.Open(2)

	a1 := tcp.New(fa1, 1001, 81, tcp.DefaultParams())
	a2 := tcp.New(fa2, 1002, 82, tcp.DefaultParams())
	b1 := tcp.New(fb1, 81, 1001, tcp.DefaultParams())
	b2 := tcp.New(fb2, 82, 1002, tcp.DefaultParams())

	mk := func(tag byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = tag ^ byte(i)
		}
		return out
	}
	src1, src2 := mk(0x11, 40<<10), mk(0x22, 40<<10)
	var got1, got2 []byte

	serve := func(conn *tcp.Conn, into *[]byte, total int) func(*sim.Proc) {
		return func(p *sim.Proc) {
			if err := conn.Accept(p, time.Second); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 32<<10)
			deadline := p.Now() + 10*time.Second
			for len(*into) < total && p.Now() < deadline {
				n, err := conn.Read(p, buf, 100*time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				*into = append(*into, buf[:n]...)
			}
			for k := 0; k < 50; k++ {
				conn.Poll(p)
				p.Sleep(time.Millisecond)
			}
		}
	}
	tb.Hosts[1].Spawn("srv1", serve(b1, &got1, len(src1)))
	tb.Hosts[1].Spawn("srv2", serve(b2, &got2, len(src2)))

	send := func(conn *tcp.Conn, data []byte) func(*sim.Proc) {
		return func(p *sim.Proc) {
			if err := conn.Dial(p, time.Second); err != nil {
				t.Error(err)
				return
			}
			if err := conn.Write(p, data); err != nil {
				t.Error(err)
			}
			conn.Flush(p, 10*time.Second)
		}
	}
	tb.Hosts[0].Spawn("cli1", send(a1, src1))
	tb.Hosts[0].Spawn("cli2", send(a2, src2))

	tb.Eng.Run()
	if !bytes.Equal(got1, src1) {
		t.Fatalf("connection 1 corrupted (%d bytes)", len(got1))
	}
	if !bytes.Equal(got2, src2) {
		t.Fatalf("connection 2 corrupted (%d bytes)", len(got2))
	}
}

func TestDuplicateFlowRejected(t *testing.T) {
	_, ma, _ := muxPair(t)
	if _, err := ma.Open(5); err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Open(5); err == nil {
		t.Fatal("duplicate flow accepted")
	}
}
