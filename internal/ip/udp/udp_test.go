package udp_test

import (
	"bytes"
	"testing"
	"time"

	"unet/internal/ip"
	"unet/internal/ip/udp"
	"unet/internal/sim"
	"unet/internal/testbed"
)

func pair(t *testing.T) (*testbed.Testbed, *udp.Stack, *udp.Stack) {
	t.Helper()
	tb := testbed.New(testbed.Config{Hosts: 2})
	t.Cleanup(tb.Close)
	ca, cb, err := tb.NewIPConduitPair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tb, udp.NewStack(ca, udp.DefaultParams()), udp.NewStack(cb, udp.DefaultParams())
}

func TestDatagramRoundTrip(t *testing.T) {
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1000, 0)
	skb, _ := sb.Bind(2000, 0)
	var got []byte
	var gotSrc uint16
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		data, src, ok := skb.RecvFrom(p, 10*time.Millisecond)
		if !ok {
			t.Error("no datagram received")
			return
		}
		got, gotSrc = data, src
		skb.SendTo(p, src, []byte("world"))
	})
	var reply []byte
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		if err := ska.SendTo(p, 2000, []byte("hello")); err != nil {
			t.Error(err)
		}
		data, _, ok := ska.RecvFrom(p, 10*time.Millisecond)
		if ok {
			reply = data
		}
	})
	tb.Eng.Run()
	if !bytes.Equal(got, []byte("hello")) || gotSrc != 1000 {
		t.Fatalf("server got %q from %d", got, gotSrc)
	}
	if !bytes.Equal(reply, []byte("world")) {
		t.Fatalf("client got %q", reply)
	}
}

func TestPortDemux(t *testing.T) {
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1, 0)
	sk1, _ := sb.Bind(10, 0)
	sk2, _ := sb.Bind(20, 0)
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		ska.SendTo(p, 10, []byte("a"))
		ska.SendTo(p, 10, []byte("c"))
		ska.SendTo(p, 20, []byte("b"))
	})
	var got1, got2 []string
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if d, _, ok := sk1.RecvFrom(p, time.Millisecond); ok {
				got1 = append(got1, string(d))
				continue
			}
			if d, _, ok := sk2.RecvFrom(p, time.Millisecond); ok {
				got2 = append(got2, string(d))
			}
		}
	})
	tb.Eng.Run()
	if len(got1) != 2 || got1[0] != "a" || got1[1] != "c" {
		t.Fatalf("socket 10 got %v", got1)
	}
	if len(got2) != 1 || got2[0] != "b" {
		t.Fatalf("socket 20 got %v", got2)
	}
	// Back-to-back datagrams to the same port hit the one-entry pcb cache;
	// the port change misses (§7.6).
	if st := sb.Stats(); st.PCBHits != 1 || st.PCBMisses != 2 {
		t.Fatalf("pcb cache stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestUnboundPortDropped(t *testing.T) {
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		ska.SendTo(p, 999, []byte("void"))
		ska.SendTo(p, 2, []byte("real"))
	})
	var got []byte
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		got, _, _ = skb.RecvFrom(p, 10*time.Millisecond)
	})
	tb.Eng.Run()
	if !bytes.Equal(got, []byte("real")) {
		t.Fatalf("got %q", got)
	}
	if sb.Stats().NoPort != 1 {
		t.Fatalf("NoPort = %d, want 1", sb.Stats().NoPort)
	}
}

func TestAppBufferOverflowDrops(t *testing.T) {
	// Receive buffering is bounded only by the application's own buffer
	// (§7.3). A socket the application neglects overflows while a polled
	// one keeps flowing: flood port 2 (tiny buffer, never read) while the
	// application reads port 3, whose RecvFrom pumps the shared conduit.
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1, 0)
	flooded, _ := sb.Bind(2, 3000) // room for ~3 × 1000-byte datagrams
	polled, _ := sb.Bind(3, 0)
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			ska.SendTo(p, 2, make([]byte, 1000))
		}
		ska.SendTo(p, 3, []byte("done"))
	})
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		if _, _, ok := polled.RecvFrom(p, 10*time.Millisecond); !ok {
			t.Error("polled socket never received")
		}
	})
	tb.Eng.Run()
	if flooded.Drops() == 0 {
		t.Fatal("no drops despite tiny application buffer")
	}
	if flooded.Pending()+int(flooded.Drops()) != 8 {
		t.Fatalf("pending %d + dropped %d != 8", flooded.Pending(), flooded.Drops())
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	// Corrupt a UDP payload below the AAL5 layer... not possible without
	// also failing the AAL5 CRC, so corrupt at the conduit level: verify
	// the checksum math directly instead.
	pkt := []byte{1, 2, 3, 4, 5}
	sum := ip.InternetChecksum(pkt)
	pkt[2] ^= 0x40
	if ip.InternetChecksum(pkt) == sum {
		t.Fatal("checksum unchanged after corruption")
	}
}

func TestOversizedDatagramRejected(t *testing.T) {
	tb, sa, _ := pair(t)
	defer tb.Eng.Shutdown()
	ska, _ := sa.Bind(1, 0)
	if err := ska.SendTo(nil, 2, make([]byte, ip.MTU)); err != udp.ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong (headers leave no room)", err)
	}
}

func TestChecksumDisabledSkipsCost(t *testing.T) {
	// §7.6: checksumming can be switched off. Compare virtual time of two
	// sends differing only in the checksum flag.
	run := func(checksum bool) time.Duration {
		tb := testbed.New(testbed.Config{Hosts: 2})
		defer tb.Close()
		ca, cb, err := tb.NewIPConduitPair(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		params := udp.DefaultParams()
		params.Checksum = checksum
		sa, sb := udp.NewStack(ca, params), udp.NewStack(cb, params)
		ska, _ := sa.Bind(1, 0)
		skb, _ := sb.Bind(2, 0)
		var done time.Duration
		tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
			skb.RecvFrom(p, 10*time.Millisecond)
			done = p.Now()
		})
		tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
			ska.SendTo(p, 2, make([]byte, 4000))
		})
		tb.Eng.Run()
		return done
	}
	with, without := run(true), run(false)
	saved := with - without
	// 1 µs per 100 bytes on ~4 KB at each end ≈ 80 µs.
	if saved < 50*time.Microsecond || saved > 120*time.Microsecond {
		t.Fatalf("checksum elision saved %v, want ~80µs", saved)
	}
}

func TestUNetUDPSmallMessageRTT(t *testing.T) {
	// Table 3: UDP round-trip latency 138 µs for small messages.
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	const rounds = 40
	var rtt time.Duration
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < rounds+1; i++ {
			data, src, ok := skb.RecvFrom(p, 10*time.Millisecond)
			if !ok {
				t.Error("echo server timed out")
				return
			}
			skb.SendTo(p, src, data)
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		var start time.Duration
		for i := 0; i < rounds+1; i++ {
			if i == 1 {
				start = p.Now()
			}
			ska.SendTo(p, 2, []byte{1, 2, 3, 4})
			if _, _, ok := ska.RecvFrom(p, 10*time.Millisecond); !ok {
				t.Error("client timed out")
				return
			}
		}
		rtt = (p.Now() - start) / rounds
	})
	tb.Eng.Run()
	us := float64(rtt) / float64(time.Microsecond)
	if us < 138*0.95 || us > 138*1.05 {
		t.Fatalf("UDP small-message RTT = %.1f µs, want 138 ± 5%%", us)
	}
}

func TestUNetUDPBandwidthNearAAL5Limit(t *testing.T) {
	// Figure 7: U-Net UDP is lossless and tracks the raw U-Net limit.
	tb, sa, sb := pair(t)
	ska, _ := sa.Bind(1, 0)
	skb, _ := sb.Bind(2, 0)
	const count, size = 200, 4000
	var start, end time.Duration
	bytes := 0
	tb.Hosts[1].Spawn("srv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			d, _, ok := skb.RecvFrom(p, 100*time.Millisecond)
			if !ok {
				return
			}
			if i == 0 {
				start = p.Now()
			} else {
				bytes += len(d)
			}
			end = p.Now()
		}
	})
	tb.Hosts[0].Spawn("cli", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < count; i++ {
			if err := ska.SendTo(p, 2, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	tb.Eng.Run()
	bw := float64(bytes) / (end - start).Seconds() / 1e6
	if bw < 13.5 || bw > 15.5 {
		t.Fatalf("U-Net UDP bandwidth = %.2f MB/s, want ~14-15", bw)
	}
	if sb.Stats().Received != count {
		t.Fatalf("received %d of %d — U-Net UDP must be lossless here", sb.Stats().Received, count)
	}
}
