// Package udp implements UDP over the ip.Conduit abstraction (paper
// §7.6): a port demultiplexing layer above IP plus the 16-bit Internet
// checksum. Demultiplexing uses a one-entry PCB cache per conduit, the
// optimization of Partridge & Pink the paper adopts; the checksum costs
// 1 µs per 100 bytes of data on the modeled SPARCstation-20 and can be
// switched off by applications that protect data at a higher level or
// trust the AAL5 CRC.
//
// Unlike the kernel implementation, receive buffering is bounded by the
// application's own buffer size rather than a scarce kernel socket buffer
// (§7.3) — the stack only drops when the application lets its own buffer
// fill.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"unet/internal/ip"
	"unet/internal/sim"
)

// HeaderSize is the UDP header size.
const HeaderSize = 8

// Errors returned by the UDP layer.
var (
	ErrPortInUse = errors.New("udp: port already bound")
	ErrTooLong   = errors.New("udp: datagram exceeds MTU")
	ErrNoSocket  = errors.New("udp: port not bound")
)

// Params is the UDP cost model.
type Params struct {
	// ProcTx and ProcRx are the per-packet protocol processing costs
	// (header build/parse, pcb lookup). Calibrated so that U-Net UDP
	// round trips start at ~138 µs (Table 3) over the ~120 µs raw
	// multi-cell path.
	ProcTx, ProcRx time.Duration
	// PCBMiss is the extra cost of a demultiplexing miss in the one-entry
	// pcb cache (§7.6).
	PCBMiss time.Duration
	// Checksum enables the Internet checksum over header and data; the
	// per-byte cost comes from the host's NodeParams-equivalent field.
	Checksum bool
	// ChecksumPerByte is the software checksumming cost (§7.6: 1 µs per
	// 100 bytes).
	ChecksumPerByte time.Duration
}

// DefaultParams returns the U-Net UDP configuration.
func DefaultParams() Params {
	return Params{
		ProcTx:          10900 * time.Nanosecond,
		ProcRx:          10900 * time.Nanosecond,
		PCBMiss:         2 * time.Microsecond,
		Checksum:        true,
		ChecksumPerByte: 10 * time.Nanosecond,
	}
}

// Stack is the UDP instance bound to one conduit.
type Stack struct {
	conduit ip.Conduit
	params  Params
	socks   map[uint16]*Socket
	// pcbCache is the one-entry destination-port cache.
	pcbCache uint16
	stats    Stats
}

// Stats counts stack events.
type Stats struct {
	Sent, Received uint64
	BadChecksum    uint64
	NoPort         uint64
	PCBHits        uint64
	PCBMisses      uint64
}

// NewStack creates a UDP stack over a conduit.
func NewStack(c ip.Conduit, params Params) *Stack {
	return &Stack{conduit: c, params: params, socks: make(map[uint16]*Socket)}
}

// Stats returns a snapshot of the stack counters.
func (s *Stack) Stats() Stats { return s.stats }

// Socket is a bound UDP endpoint.
type Socket struct {
	stack    *Stack
	port     uint16
	buf      []dgram
	bufBytes int
	bufCap   int
	drops    uint64
}

type dgram struct {
	srcPort uint16
	data    []byte
}

// Bind allocates a socket on port with an application receive buffer of
// bufCap bytes (0 selects a generous 1 MB default — §7.3's point that the
// application's resources, not the kernel's, set the limit).
func (s *Stack) Bind(port uint16, bufCap int) (*Socket, error) {
	if _, busy := s.socks[port]; busy {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	if bufCap <= 0 {
		bufCap = 1 << 20
	}
	sk := &Socket{stack: s, port: port, bufCap: bufCap}
	s.socks[port] = sk
	return sk, nil
}

// Close releases the port.
func (sk *Socket) Close() { delete(sk.stack.socks, sk.port) }

// Drops reports datagrams discarded because the application buffer was
// full.
func (sk *Socket) Drops() uint64 { return sk.drops }

// Pending reports buffered datagrams.
func (sk *Socket) Pending() int { return len(sk.buf) }

// SendTo transmits data to dstPort on the conduit's peer.
func (sk *Socket) SendTo(p *sim.Proc, dstPort uint16, data []byte) error {
	s := sk.stack
	total := ip.HeaderSize + HeaderSize + len(data)
	if total > s.conduit.MTU() {
		return ErrTooLong
	}
	charge(p, s.params.ProcTx)
	pkt := make([]byte, total)
	ip.Header{
		Proto: ip.ProtoUDP, TTL: 64, Length: total,
		Src: s.conduit.LocalAddr(), Dst: s.conduit.RemoteAddr(),
	}.Encode(pkt)
	u := pkt[ip.HeaderSize:]
	binary.BigEndian.PutUint16(u[0:], sk.port)
	binary.BigEndian.PutUint16(u[2:], dstPort)
	binary.BigEndian.PutUint16(u[4:], uint16(HeaderSize+len(data)))
	copy(u[HeaderSize:], data)
	if s.params.Checksum {
		charge(p, time.Duration(HeaderSize+len(data))*s.params.ChecksumPerByte)
		binary.BigEndian.PutUint16(u[6:], ip.InternetChecksum(u[HeaderSize:]))
	}
	s.stats.Sent++
	return s.conduit.Send(p, pkt)
}

// pump processes one arrival from the conduit, delivering to the bound
// socket. Returns false on timeout.
func (s *Stack) pump(p *sim.Proc, timeout time.Duration) bool {
	pkt, ok := s.conduit.Recv(p, timeout)
	if !ok {
		return false
	}
	s.deliver(p, pkt)
	return true
}

func (s *Stack) deliver(p *sim.Proc, pkt []byte) {
	hdr, err := ip.ParseHeader(pkt)
	if err != nil || hdr.Proto != ip.ProtoUDP || len(pkt) < ip.HeaderSize+HeaderSize {
		return
	}
	charge(p, s.params.ProcRx)
	u := pkt[ip.HeaderSize:]
	srcPort := binary.BigEndian.Uint16(u[0:])
	dstPort := binary.BigEndian.Uint16(u[2:])
	if dstPort == s.pcbCache {
		s.stats.PCBHits++
	} else {
		s.stats.PCBMisses++
		charge(p, s.params.PCBMiss)
		s.pcbCache = dstPort
	}
	if s.params.Checksum {
		want := binary.BigEndian.Uint16(u[6:])
		if want != 0 {
			charge(p, time.Duration(len(u)-6)*s.params.ChecksumPerByte)
			binary.BigEndian.PutUint16(u[6:], 0)
			if got := ip.InternetChecksum(u[HeaderSize:]); got != want {
				s.stats.BadChecksum++
				return
			}
		}
	}
	sk, ok := s.socks[dstPort]
	if !ok {
		s.stats.NoPort++
		return
	}
	data := u[HeaderSize:]
	if sk.bufBytes+len(data) > sk.bufCap {
		sk.drops++
		return
	}
	sk.buf = append(sk.buf, dgram{srcPort: srcPort, data: data})
	sk.bufBytes += len(data)
	s.stats.Received++
}

// RecvFrom blocks (pumping the conduit) up to timeout for a datagram on
// this socket.
func (sk *Socket) RecvFrom(p *sim.Proc, timeout time.Duration) (data []byte, srcPort uint16, ok bool) {
	deadline := p.Now() + timeout
	for len(sk.buf) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 {
			return nil, 0, false
		}
		sk.stack.pump(p, remain)
	}
	d := sk.buf[0]
	sk.buf = sk.buf[1:]
	sk.bufBytes -= len(d.data)
	return d.data, d.srcPort, true
}

func charge(p *sim.Proc, d time.Duration) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}
